"""Reproduce the paper's headline numbers in one run.

A fast, self-contained tour through every major claim — Table 1, the AG
lemmas, self-stabilization, restricted bandwidth, arbdefective colorings,
and the SET-LOCAL model.  (The full parameter sweeps live in ``benchmarks/``
and EXPERIMENTS.md; this script is the five-minute version.)

    python examples/reproduce_paper.py
"""

from repro import (
    delta_plus_one_coloring,
    delta_plus_one_exact_no_reduction,
    graphgen,
    one_plus_eps_delta_coloring,
)
from repro.baselines import KuhnWattenhoferReduction, bek_delta_plus_one
from repro.core import AdditiveGroupColoring, StandardColorReduction
from repro.edge import edge_coloring_congest
from repro.linial import LinialColoring
from repro.mathutil import log_star
from repro.runtime import ColoringPipeline, Visibility
from repro.runtime.graph import DynamicGraph
from repro.selfstab import FaultCampaign, SelfStabEngine, SelfStabExactColoring


def banner(text):
    print("\n" + "=" * 72)
    print(text)
    print("=" * 72)


def table_1():
    banner("Table 1 - locally-iterative (Delta+1)-coloring rounds")
    print("%6s  %22s  %18s  %12s" % ("Delta", "Linial+StdRed O(D^2)", "KW O(D log D)", "paper O(D)"))
    for delta in (8, 16, 32):
        graph = graphgen.random_regular(132, delta, seed=delta)
        ids = list(range(graph.n))
        quad = ColoringPipeline([LinialColoring(), StandardColorReduction()]).run(graph, ids)
        kw = ColoringPipeline([LinialColoring(), KuhnWattenhoferReduction()]).run(graph, ids)
        paper = delta_plus_one_coloring(graph)
        print("%6d  %22d  %18d  %12d"
              % (delta, quad.total_rounds, kw.total_rounds, paper.total_rounds))


def corollary_3_6():
    banner("Corollary 3.6 - O(Delta) + log* n (n-sweep on cycles, Delta=2)")
    for n in (64, 1024, 16384):
        graph = graphgen.cycle_graph(n)
        result = delta_plus_one_coloring(graph)
        print("  n=%6d  log* n=%d  rounds=%d  colors=%d"
              % (n, log_star(n), result.total_rounds, result.num_colors))


def section_7_exact():
    banner("Section 7 - exact (Delta+1) without the standard reduction")
    graph = graphgen.random_regular(96, 12, seed=3)
    result = delta_plus_one_exact_no_reduction(graph, check_proper_each_round=True)
    print("  Delta=12: %d colors in %d rounds, proper after EVERY round"
          % (result.num_colors, result.total_rounds))


def theorem_4_3_selfstab():
    banner("Theorems 4.3/7.5 - self-stabilizing exact coloring")
    n, delta = 40, 6
    graph = DynamicGraph(n, delta)
    import random

    rng = random.Random(5)
    for v in range(n):
        graph.add_vertex(v)
    for u in range(n):
        for v in range(u + 1, n):
            if rng.random() < 0.15 and graph.degree(u) < delta and graph.degree(v) < delta:
                graph.add_edge(u, v)
    algorithm = SelfStabExactColoring(n, delta)
    engine = SelfStabEngine(graph, algorithm)
    cold = engine.run_to_quiescence()
    campaign = FaultCampaign(9)
    campaign.corrupt_random_rams(engine, n)  # corrupt EVERYTHING
    recovery = engine.run_to_quiescence()
    print("  cold start: %d rounds; full-RAM corruption: recovered in %d rounds"
          % (cold, recovery))
    print("  (bound budget O(Delta + log* n) = %d)" % algorithm.stabilization_bound())


def theorem_5_3_edge():
    banner("Theorem 5.3 - (2 Delta - 1)-edge-coloring with tiny messages")
    graph = graphgen.random_regular(64, 6, seed=4)
    result = edge_coloring_congest(graph)
    print("  %d colors (2D-1=%d), %d CONGEST rounds, %d bits/edge total, "
          "max message %d bits"
          % (result.num_colors, 2 * graph.max_degree - 1, result.total_rounds,
             result.total_bits_per_edge, result.max_message_bits))


def theorem_6_4_arbdefective():
    banner("Theorem 6.4 (shape) - sublinear rounds via ArbAG")
    for delta in (9, 36):
        graph = graphgen.random_regular(120, delta, seed=delta)
        linear = delta_plus_one_coloring(graph)
        sub = one_plus_eps_delta_coloring(graph)
        print("  Delta=%2d: linear route %d rounds | arbdefective route %d "
              "Delta-rounds (palette %d)"
              % (delta, linear.total_rounds, sub.ag_side_rounds, sub.palette_size))


def set_local():
    banner("SET-LOCAL (weak LOCAL) - first linear-in-Delta algorithm")
    graph = graphgen.random_regular(132, 24, seed=6)
    engine_start = ColoringPipeline([LinialColoring()]).run(
        graph, list(range(graph.n)), visibility=Visibility.SET_LOCAL
    )
    palette = engine_start.stage_results[0][0].out_palette_size
    paper = ColoringPipeline([AdditiveGroupColoring(), StandardColorReduction()]).run(
        graph, engine_start.colors, in_palette_size=palette,
        visibility=Visibility.SET_LOCAL,
    )
    kw = ColoringPipeline([KuhnWattenhoferReduction()]).run(
        graph, engine_start.colors, in_palette_size=palette,
        visibility=Visibility.SET_LOCAL,
    )
    print("  Delta=24 under set visibility: paper %d rounds vs KW %d rounds"
          % (paper.total_rounds, kw.total_rounds))


def versus_bek():
    banner("vs. the non-locally-iterative [5,44,9] divide-and-conquer")
    graph = graphgen.random_regular(240, 16, seed=7)
    paper = delta_plus_one_coloring(graph)
    bek = bek_delta_plus_one(graph)
    print("  Delta=16: paper %d rounds (locally-iterative) vs BEK %d rounds"
          % (paper.total_rounds, bek.rounds))


def main():
    table_1()
    corollary_3_6()
    section_7_exact()
    theorem_4_3_selfstab()
    theorem_5_3_edge()
    theorem_6_4_arbdefective()
    set_local()
    versus_bek()
    adjustment_radii()
    determinism()
    print("\nAll claims reproduced. Full sweeps: pytest benchmarks/ --benchmark-only")




def adjustment_radii():
    banner("Adjustment radii (Theorems 4.3/4.6): localized faults stay local")
    from repro.selfstab import SelfStabMIS

    g = DynamicGraph(30, 2)
    for v in range(30):
        g.add_vertex(v)
    for v in range(29):
        g.add_edge(v, v + 1)
    algorithm = SelfStabExactColoring(30, 2)
    engine = SelfStabEngine(g, algorithm)
    engine.run_to_quiescence()
    engine.corrupt(15, engine.rams[16])
    engine.reset_touched()
    engine.corrupt(15, engine.rams[16])
    engine.run_to_quiescence()
    print("  exact coloring: radius %d (claimed 1)" % engine.adjustment_radius([15]))

    g2 = DynamicGraph(30, 2)
    for v in range(30):
        g2.add_vertex(v)
    for v in range(29):
        g2.add_edge(v, v + 1)
    mis = SelfStabMIS(30, 2)
    e2 = SelfStabEngine(g2, mis)
    e2.run_to_quiescence()
    e2.reset_touched()
    e2.corrupt(15, (e2.rams[15][0], "MIS"))
    e2.run_to_quiescence()
    print("  MIS:            radius %d (claimed 2)" % e2.adjustment_radius([15]))


def determinism():
    banner("Determinism (Section 1.2.1): one RAM-clone fault")
    from repro.baselines import RandomTrialSelfStabColoring

    g = DynamicGraph(2, 1)
    g.add_vertex(0)
    g.add_vertex(1)
    g.add_edge(0, 1)
    rand_engine = SelfStabEngine(g, RandomTrialSelfStabColoring(2, 1))
    rand_engine.run_to_quiescence(max_rounds=200)
    rand_engine.corrupt(0, rand_engine.rams[1])
    for _ in range(300):
        rand_engine.step()
    print("  randomized (RNG in RAM): %s after 300 fault-free rounds"
          % ("still deadlocked" if not rand_engine.is_legal() else "recovered"))

    g2 = DynamicGraph(2, 1)
    g2.add_vertex(0)
    g2.add_vertex(1)
    g2.add_edge(0, 1)
    det_engine = SelfStabEngine(g2, SelfStabExactColoring(2, 1))
    det_engine.run_to_quiescence()
    det_engine.corrupt(0, det_engine.rams[1])
    rounds = det_engine.run_to_quiescence()
    print("  this paper (deterministic): recovered in %d rounds" % rounds)


if __name__ == "__main__":
    main()
