"""TDMA slot assignment in a wireless sensor network.

The classical application from the paper's introduction: nodes within radio
range must transmit in different time slots, i.e. a proper vertex coloring
of the unit-disk interference graph; the number of colors is the TDMA frame
length, so exactly Delta + 1 slots is the greedy-optimal target.

This example builds a unit-disk network with a radio fan-out cap, computes
an exact (Delta + 1)-slot schedule with the Section 7 hybrid pipeline (no
standard color reduction), and reports the frame length and per-slot load.

    python examples/sensor_network_tdma.py
"""

from collections import Counter

from repro import delta_plus_one_exact_no_reduction, graphgen
from repro.analysis import is_proper_coloring


def main():
    network = graphgen.unit_disk_graph(n=150, radius=0.14, seed=7, degree_cap=10)
    delta = network.max_degree
    print("Sensor field: %d motes, %d interference links, max fan-out %d"
          % (network.n, network.m, delta))

    result = delta_plus_one_exact_no_reduction(network)
    slots = result.colors
    assert is_proper_coloring(network, slots)

    frame = max(slots) + 1
    print("TDMA frame length: %d slots (Delta + 1 = %d)" % (frame, delta + 1))
    print("Convergence: %d synchronous rounds" % result.total_rounds)

    load = Counter(slots)
    print("Per-slot transmitter counts:")
    for slot in range(frame):
        bar = "#" * load[slot]
        print("   slot %2d: %3d %s" % (slot, load[slot], bar))

    # Sanity: no two interfering motes share a slot.
    clashes = [(u, v) for u, v in network.edges if slots[u] == slots[v]]
    print("Interfering pairs sharing a slot: %d" % len(clashes))
    assert not clashes


if __name__ == "__main__":
    main()
