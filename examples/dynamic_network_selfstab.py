"""Self-stabilizing coloring of a dynamic ad-hoc network under fire.

Simulates the fully-dynamic self-stabilizing scenario of Section 4: an
ad-hoc network whose nodes crash, rejoin and re-link while an adversary
corrupts memory — and a (Delta+1)-coloring that repairs itself within
O(Delta + log* n) rounds of the last fault, touching only the fault's
neighborhood (adjustment radius 1).

    python examples/dynamic_network_selfstab.py
"""

import random

from repro.runtime.graph import DynamicGraph
from repro.selfstab import FaultCampaign, SelfStabEngine, SelfStabExactColoring

N_BOUND = 60
DELTA_BOUND = 6


def build_network(seed):
    graph = DynamicGraph(N_BOUND, DELTA_BOUND)
    rng = random.Random(seed)
    for v in range(45):
        graph.add_vertex(v)
    vertices = graph.vertices()
    for u in vertices:
        for v in vertices:
            if (
                u < v
                and rng.random() < 0.12
                and graph.degree(u) < DELTA_BOUND
                and graph.degree(v) < DELTA_BOUND
            ):
                graph.add_edge(u, v)
    return graph


def main():
    graph = build_network(seed=3)
    algorithm = SelfStabExactColoring(N_BOUND, DELTA_BOUND)
    engine = SelfStabEngine(graph, algorithm)
    campaign = FaultCampaign(seed=11)

    rounds = engine.run_to_quiescence()
    print("Cold start: legal (Delta+1)-coloring after %d rounds "
          "(bound budget: %d)" % (rounds, algorithm.stabilization_bound()))

    events = [
        ("memory corruption x8", lambda: campaign.corrupt_random_rams(engine, 8)),
        ("node churn (2 crash, 2 join)", lambda: campaign.churn_vertices(engine, 2, 2)),
        ("link churn (3 drop, 3 add)", lambda: campaign.churn_edges(engine, 3, 3)),
        ("memory corruption x20", lambda: campaign.corrupt_random_rams(engine, 20)),
    ]
    for label, inject in events:
        inject()
        rounds = engine.run_to_quiescence()
        colors = algorithm.final_colors(graph, engine.rams)
        palette = max(colors.values()) + 1 if colors else 0
        print("Event: %-30s -> re-stabilized in %2d rounds, %d nodes, "
              "palette %d <= Delta+1 = %d"
              % (label, rounds, graph.n, palette, DELTA_BOUND + 1))

    # Localized fault: show the adjustment radius.
    victim = graph.vertices()[0]
    neighbor = graph.neighbors(victim)
    if neighbor:
        engine.corrupt(victim, engine.rams[neighbor[0]])
        engine.reset_touched()
        engine.corrupt(victim, engine.rams[neighbor[0]])
        engine.run_to_quiescence()
        print("Localized fault at node %d: adjustment radius %d (Theorem 4.3: 1)"
              % (victim, engine.adjustment_radius([victim])))


if __name__ == "__main__":
    main()
