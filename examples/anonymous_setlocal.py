"""Coloring an anonymous network: the SET-LOCAL model (Section 1.2.3).

Some networks give nodes no IDs and no way to tell identical messages from
different neighbors apart — only the *set* of received values is visible
(the weak LOCAL model of Hefetz et al.).  Most coloring algorithms break
here; the AG family does not, because its step is a pure function of the
color set.  This example runs the whole pipeline under structurally-enforced
set visibility and compares against the pre-paper best (Kuhn–Wattenhofer).

    python examples/anonymous_setlocal.py
"""

from repro import graphgen
from repro.analysis import is_proper_coloring
from repro.baselines import KuhnWattenhoferReduction
from repro.core import AdditiveGroupColoring, StandardColorReduction
from repro.linial import LinialColoring
from repro.runtime import ColoringEngine, ColoringPipeline, Visibility


def main():
    graph = graphgen.random_regular(n=90, d=9, seed=13)
    delta = graph.max_degree
    print("Anonymous network: %d nodes, Delta = %d" % (graph.n, delta))

    # SET-LOCAL assumes a proper O(Delta^2)-coloring is given; derive one
    # (Linial itself only needs the color set, so it runs here too).
    engine = ColoringEngine(graph, visibility=Visibility.SET_LOCAL)
    linial = LinialColoring()
    start = engine.run(linial, list(range(graph.n)))
    print("Given O(Delta^2)-coloring: %d colors" % linial.out_palette_size)

    paper = ColoringPipeline(
        [AdditiveGroupColoring(), StandardColorReduction()]
    ).run(
        graph,
        start.int_colors,
        in_palette_size=linial.out_palette_size,
        visibility=Visibility.SET_LOCAL,
    )
    assert is_proper_coloring(graph, paper.colors)
    print("This paper (AG + reduction): %d rounds -> %d colors"
          % (paper.total_rounds, max(paper.colors) + 1))

    kw = ColoringPipeline([KuhnWattenhoferReduction()]).run(
        graph,
        start.int_colors,
        in_palette_size=linial.out_palette_size,
        visibility=Visibility.SET_LOCAL,
    )
    print("Previous best (Kuhn-Wattenhofer): %d rounds -> %d colors"
          % (kw.total_rounds, max(kw.colors) + 1))
    print("Speedup: %.1fx — linear in Delta vs Delta log Delta."
          % (kw.total_rounds / max(1, paper.total_rounds)))


if __name__ == "__main__":
    main()
