"""Quickstart: color a graph with Delta + 1 colors, locally-iteratively.

Runs the paper's headline pipeline (Corollary 3.6: Linial -> Additive-Group
-> standard reduction) on a random bounded-degree network and shows what the
library verifies along the way.

    python examples/quickstart.py
"""

from repro import delta_plus_one_coloring, graphgen
from repro.analysis import count_colors, is_proper_coloring
from repro.mathutil import log_star


def main():
    graph = graphgen.random_regular(n=96, d=8, seed=42)
    print("Network: %d nodes, %d links, Delta = %d" % (graph.n, graph.m, graph.max_degree))

    # check_proper_each_round asserts the locally-iterative contract: the
    # coloring is proper after every single round (Lemma 3.2).
    result = delta_plus_one_coloring(graph, check_proper_each_round=True)

    assert is_proper_coloring(graph, result.colors)
    print("Proper coloring with %d colors (palette [0, %d])"
          % (count_colors(result.colors), graph.max_degree))
    print("Rounds by stage:")
    for stage, rounds in result.rounds_by_stage().items():
        print("   %-20s %d" % (stage, rounds))
    print("Total: %d rounds  (paper bound: O(Delta) + log* n;"
          " log* %d = %d)" % (result.total_rounds, graph.n, log_star(graph.n)))

    sample = {v: result.colors[v] for v in list(graph.vertices())[:8]}
    print("First few assignments:", sample)


if __name__ == "__main__":
    main()
