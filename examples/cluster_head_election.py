"""Self-healing cluster-head election in a sensor network.

Cluster-head election is the textbook MIS application: every sensor is
either a head (coordinating its radio neighborhood) or adjacent to one, and
no two heads interfere.  The paper's self-stabilizing MIS (Theorem 4.5)
keeps this invariant under node failures, reboots with corrupted memory,
and radio-link churn — re-electing within O(Delta + log* n) rounds of the
last fault, with changes confined to distance 2 of it (Theorem 4.6).

    python examples/cluster_head_election.py
"""

import random

from repro.runtime.graph import DynamicGraph
from repro.selfstab import FaultCampaign, SelfStabEngine, SelfStabMIS

N_BOUND, DELTA_BOUND = 50, 5


def build_field(seed):
    rng = random.Random(seed)
    graph = DynamicGraph(N_BOUND, DELTA_BOUND)
    for v in range(40):
        graph.add_vertex(v)
    for u in graph.vertices():
        for v in graph.vertices():
            if (
                u < v
                and rng.random() < 0.12
                and graph.degree(u) < DELTA_BOUND
                and graph.degree(v) < DELTA_BOUND
            ):
                graph.add_edge(u, v)
    return graph


def describe(algorithm, graph, engine, label):
    heads = algorithm.mis_members(graph, engine.rams)
    covered = sum(
        1
        for v in graph.vertices()
        if v in heads or any(u in heads for u in graph.neighbors(v))
    )
    print("  %-28s %2d heads, %d/%d sensors covered"
          % (label, len(heads), covered, graph.n))
    assert covered == graph.n


def main():
    graph = build_field(seed=13)
    algorithm = SelfStabMIS(N_BOUND, DELTA_BOUND)
    engine = SelfStabEngine(graph, algorithm)
    rounds = engine.run_to_quiescence()
    print("Sensor field: %d nodes, %d links" % (graph.n, len(graph.edges())))
    print("Initial election converged in %d rounds:" % rounds)
    describe(algorithm, graph, engine, "initial")

    campaign = FaultCampaign(seed=29)
    scenarios = [
        ("3 heads reboot with bad RAM", lambda: campaign.corrupt_random_rams(engine, 3)),
        ("2 nodes crash, 2 join", lambda: campaign.churn_vertices(engine, 2, 2)),
        ("radio links rewired", lambda: campaign.churn_edges(engine, 3, 3)),
    ]
    for label, inject in scenarios:
        inject()
        rounds = engine.run_to_quiescence()
        describe(algorithm, graph, engine, "%s (+%d rounds)" % (label, rounds))

    # A localized fault: force a non-head into head status illegally.
    victim = graph.vertices()[0]
    engine.corrupt(victim, (engine.rams[victim][0], "MIS"))
    engine.reset_touched()
    engine.corrupt(victim, (engine.rams[victim][0], "MIS"))
    engine.run_to_quiescence()
    radius = engine.adjustment_radius([victim])
    print("Rogue head at node %d: repaired with adjustment radius %d "
          "(Theorem 4.6: <= 2)" % (victim, radius))
    assert radius <= 2


if __name__ == "__main__":
    main()
