"""Round-robin gossip scheduling in a peer-to-peer overlay.

Kuhn–Wattenhofer's motivation for locally-iterative algorithms names
peer-to-peer networks explicitly.  Here is the classic use: peers gossip
pairwise, one partner per round.  A proper edge coloring of the overlay *is*
a gossip schedule — color ``c`` = "these pairs talk in round ``c``" — and
(2*Delta-1) colors mean every link is served within 2*Delta-1 rounds, no
coordinator involved.

This example builds a random overlay, computes the schedule with the
Section 5 CONGEST edge coloring, validates it (nobody talks to two partners
at once; every link gets a slot), and prints the per-round pairings.

    python examples/p2p_gossip_schedule.py
"""

from collections import defaultdict

from repro import graphgen
from repro.analysis import is_proper_edge_coloring
from repro.edge import edge_coloring_congest


def main():
    overlay = graphgen.bounded_degree_random(n=30, delta=5, target_edges=60, seed=21)
    delta = overlay.max_degree
    print("P2P overlay: %d peers, %d links, max fan-out %d"
          % (overlay.n, overlay.m, delta))

    result = edge_coloring_congest(overlay, exact=True)
    assert is_proper_edge_coloring(overlay, result.edge_colors)
    schedule = defaultdict(list)
    for edge, slot in result.edge_colors.items():
        schedule[slot].append(edge)

    frame = result.palette_size
    print("Gossip frame: %d rounds (2*Delta-1 = %d); computed in %d "
          "CONGEST rounds with %d-bit messages"
          % (frame, 2 * delta - 1, result.total_rounds, result.max_message_bits))

    for slot in range(frame):
        pairs = schedule.get(slot, [])
        busy = set()
        for u, v in pairs:
            assert u not in busy and v not in busy  # one partner per round
            busy.update((u, v))
        shown = "  ".join("%d<->%d" % pair for pair in pairs[:8])
        more = "  (+%d more)" % (len(pairs) - 8) if len(pairs) > 8 else ""
        print("  round %2d: %2d exchanges   %s%s" % (slot, len(pairs), shown, more))

    served = sum(len(pairs) for pairs in schedule.values())
    print("All %d links served within the frame: %s" % (overlay.m, served == overlay.m))
    assert served == overlay.m


if __name__ == "__main__":
    main()
