"""Link scheduling with bandwidth-frugal edge coloring (Section 5).

In link scheduling (Gandham et al., INFOCOM'05 — cited by the paper), each
communication link needs a time slot such that no two links sharing an
endpoint transmit together: a proper edge coloring, with 2*Delta - 1 slots
from the distributed greedy bound.

The Section 5 algorithm computes it with *tiny* messages: after an initial
ID exchange, the AG phase sends a single bit per link per round and the
exact phase two bits — suitable for the CONGEST and Bit-Round models.  This
example prints the full bit ledger next to the schedule.

    python examples/link_scheduling_edge_coloring.py
"""

from collections import Counter

from repro import graphgen
from repro.analysis import is_proper_edge_coloring
from repro.edge import edge_coloring_bit_round, edge_coloring_congest


def main():
    network = graphgen.random_regular(n=64, d=6, seed=5)
    delta = network.max_degree
    print("Mesh: %d routers, %d links, Delta = %d" % (network.n, network.m, delta))

    result = edge_coloring_congest(network, exact=True)
    assert is_proper_edge_coloring(network, result.edge_colors)
    print("Link schedule: %d slots (classical bound 2*Delta-1 = %d)"
          % (result.num_colors, 2 * delta - 1))
    print("CONGEST rounds: %d; largest message: %d bits"
          % (result.total_rounds, result.max_message_bits))

    print("Per-stage ledger (rounds / bits exchanged per link):")
    for stage in result.rounds_by_stage:
        print("   %-18s %3d rounds   %4d bits"
              % (stage, result.rounds_by_stage[stage],
                 result.bits_per_edge_by_stage[stage]))
    print("Total bits per link: %d" % result.total_bits_per_edge)

    _, bit_rounds = edge_coloring_bit_round(network, exact=True)
    _, bit_rounds_known = edge_coloring_bit_round(
        network, exact=True, neighbor_ids_known=True
    )
    print("Bit-Round model: %d rounds (%d if neighbor IDs pre-shared)"
          % (bit_rounds, bit_rounds_known))

    load = Counter(result.edge_colors.values())
    busiest = load.most_common(1)[0]
    print("Busiest slot %d carries %d links; %d slots in use."
          % (busiest[0], busiest[1], len(load)))


if __name__ == "__main__":
    main()
