"""[E-BEK] The paper's headline vs the non-locally-iterative state of the art.

Before this paper, O(Delta + log* n) (Delta+1)-coloring required the
defective-coloring divide-and-conquer of [5, 44, 9] — not locally-iterative
(mid-run the graph holds a patchwork of per-subgraph states, not a proper
coloring).  This bench races the paper's locally-iterative pipeline against
our BEK-style implementation: same linear-in-Delta shape, with the paper
additionally maintaining a proper coloring every round and running in
SET-LOCAL.
"""

from bench_util import report

from repro import delta_plus_one_coloring
from repro.baselines import bek_delta_plus_one
from repro.graphgen import random_regular

DELTAS = (8, 16, 24, 32)
N = 240  # large enough that the defective stage's ~O((Delta/p)^2) classes
#          (a Delta-independent constant ~121 with p = Delta/4) are visible
#          as the dominating constant of the BEK merge.


def run_comparison():
    rows = []
    data = {}
    for delta in DELTAS:
        graph = random_regular(N, delta, seed=delta)
        paper = delta_plus_one_coloring(graph, check_proper_each_round=True)
        bek = bek_delta_plus_one(graph)
        assert max(paper.colors) <= delta and max(bek.colors) <= delta
        data[delta] = (paper.total_rounds, bek.rounds)
        rows.append((delta, paper.total_rounds, bek.rounds, bek.depth))
    return rows, data


def test_paper_vs_bek(benchmark):
    rows, data = benchmark.pedantic(run_comparison, rounds=1, iterations=1)
    report(
        "E-BEK",
        "Locally-iterative (paper) vs divide-and-conquer [5,44,9] (n=%d)" % N,
        ("Delta", "paper rounds (proper every round)", "BEK rounds", "BEK depth"),
        rows,
        notes=(
            "Both are O(Delta + log* n); only the paper's is locally-"
            "iterative (verified proper after every round during the run)."
        ),
    )
    for delta, (paper_rounds, bek_rounds) in data.items():
        # Same asymptotic class: neither blows past ~linear in Delta.
        assert paper_rounds <= 8 * delta + 16
        assert bek_rounds <= 60 * delta + 60
    # The paper's constants are much smaller in practice.
    assert all(r[1] < r[2] for r in rows)
