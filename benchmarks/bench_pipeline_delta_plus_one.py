"""[E-PIPE] Corollary 3.6: (Delta+1)-coloring in O(Delta) + log* n rounds.

Two sweeps:

* fixed Delta (cycles, Delta = 2), n growing geometrically — the total round
  count must track log* n + O(1) (flat, tiny), not n;
* fixed n, Delta growing — the round count must track O(Delta).

Both the standard-reduction pipeline (Corollary 3.6) and the exact hybrid
pipeline (Section 7) are measured.
"""

from bench_util import report

from repro import delta_plus_one_coloring, delta_plus_one_exact_no_reduction
from repro.analysis import is_proper_coloring
from repro.graphgen import cycle_graph, random_regular
from repro.mathutil import log_star

NS = (32, 256, 2048, 16384)
DELTAS = (4, 8, 16, 32)
N_FIXED = 144


def run_n_sweep():
    rows = []
    for n in NS:
        graph = cycle_graph(n)
        result = delta_plus_one_coloring(graph)
        assert is_proper_coloring(graph, result.colors)
        assert max(result.colors) <= 2
        exact = delta_plus_one_exact_no_reduction(graph)
        assert max(exact.colors) <= 2
        rows.append(
            (n, log_star(n), result.total_rounds, exact.total_rounds)
        )
    return rows


def run_delta_sweep():
    rows = []
    for delta in DELTAS:
        graph = random_regular(N_FIXED, delta, seed=delta)
        result = delta_plus_one_coloring(graph)
        assert is_proper_coloring(graph, result.colors)
        assert max(result.colors) <= delta
        exact = delta_plus_one_exact_no_reduction(graph)
        assert max(exact.colors) <= delta
        rows.append((delta, result.total_rounds, exact.total_rounds))
    return rows


def test_log_star_dependence_on_n(benchmark):
    rows = benchmark.pedantic(run_n_sweep, rounds=1, iterations=1)
    report(
        "E-PIPE-n",
        "(Delta+1)-coloring on cycles: rounds vs n at Delta=2",
        ("n", "log* n", "Cor 3.6 rounds", "Sec 7 exact rounds"),
        rows,
        notes="Rounds must stay ~flat as n grows 512x (the log* regime).",
    )
    spread = max(r[2] for r in rows) - min(r[2] for r in rows)
    assert spread <= 2 * (log_star(NS[-1]) - log_star(NS[0])) + 4
    assert max(r[2] for r in rows) <= 24  # tiny despite n = 16384


def test_linear_dependence_on_delta(benchmark):
    rows = benchmark.pedantic(run_delta_sweep, rounds=1, iterations=1)
    report(
        "E-PIPE-delta",
        "(Delta+1)-coloring: rounds vs Delta at n=%d" % N_FIXED,
        ("Delta", "Cor 3.6 rounds", "Sec 7 exact rounds"),
        rows,
    )
    by_delta = {r[0]: r for r in rows}
    for delta, total, exact_total in rows:
        assert total <= 8 * delta + log_star(N_FIXED) + 12
        assert exact_total <= 14 * delta + log_star(N_FIXED) + 16
    # Roughly linear: quadrupling Delta must not blow up superlinearly (x6).
    assert by_delta[32][1] <= 6 * max(1, by_delta[8][1])
