"""[E-3AG] Corollaries 7.2 / 7.3: the 3-dimensional AG algorithm.

3AG(p) reduces p^3 colors to p colors in at most 2p rounds with one uniform
step.  Measured: rounds vs Delta from genuinely-p^3-spread colorings, and
the exact pipeline (AG -> hybrid) vs the plain standard reduction on the
same inputs (the Section 7 "no standard reduction" route).
"""

import random

from bench_util import report

from repro.analysis import is_proper_coloring
from repro.core.ag3 import ThreeDimensionalAG
from repro.graphgen import random_regular
from repro.runtime import ColoringEngine
from repro.runtime.algorithm import NetworkInfo

DELTAS = (3, 6, 12, 18)
N = 96


def run_sweep():
    rows = []
    for delta in DELTAS:
        graph = random_regular(N, delta, seed=delta)
        probe = ThreeDimensionalAG()
        probe.configure(NetworkInfo(graph.n, delta, graph.n))
        p = probe.p
        rng = random.Random(delta)
        spread = sorted(rng.sample(range(p ** 3), graph.n))
        coloring = [spread[v] for v in range(graph.n)]

        engine = ColoringEngine(graph, check_proper_each_round=True)
        stage = ThreeDimensionalAG()
        result = engine.run(stage, coloring, in_palette_size=p ** 3)
        assert is_proper_coloring(graph, result.int_colors)
        rows.append(
            (delta, p, p ** 3, stage.p, result.rounds_used, 2 * stage.p)
        )
    return rows


def test_3ag_cubic_to_linear(benchmark):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    report(
        "E-3AG",
        "3AG: p^3 colors -> p colors within 2p rounds, one uniform step (n=%d)" % N,
        ("Delta", "p", "input colors p^3", "output colors p", "rounds", "bound 2p"),
        rows,
        notes=(
            "Corollary 7.2 (with the convergent phase-1 conflict rule — see "
            "the reproduction note in repro.core.ag3)."
        ),
    )
    for delta, p, _, out, rounds, bound in rows:
        assert rounds <= bound
        assert out == p
        assert p <= 4 * delta + 24  # p = Theta(Delta)
