"""[E-SS-COL] Theorem 4.3: self-stabilizing coloring in O(Delta + log* n).

Three measurements:

* stabilization rounds after an all-RAM-equal catastrophe on paths of growing
  length, for the paper's algorithm vs the classical rank-greedy baseline —
  the baseline cascades linearly in n, the paper's algorithm stays flat;
* stabilization rounds vs Delta after heavy random corruption (the O(Delta)
  term), for both the O(Delta)-color core and the exact (Delta+1) core;
* adjustment radius of a localized fault (Theorem 4.3: exactly 1).
"""

import random

from bench_util import report

from repro.baselines import RankGreedySelfStabColoring
from repro.runtime.backends import resolve_backend
from repro.runtime.graph import DynamicGraph
from repro.selfstab import (
    FaultCampaign,
    SelfStabColoring,
    SelfStabExactColoring,
)

PATH_SIZES = (40, 80, 160, 320)
DELTAS = (3, 5, 8, 12)
N_FOR_DELTA = 60


def dynamic_path(n):
    g = DynamicGraph(n, 2)
    for v in range(n):
        g.add_vertex(v)
    for v in range(n - 1):
        g.add_edge(v, v + 1)
    return g


def build_dynamic(n, delta_bound, p_edge, seed):
    g = DynamicGraph(n, delta_bound)
    rng = random.Random(seed)
    for v in range(n):
        g.add_vertex(v)
    for u in range(n):
        for v in range(u + 1, n):
            if (
                rng.random() < p_edge
                and g.degree(u) < delta_bound
                and g.degree(v) < delta_bound
            ):
                g.add_edge(u, v)
    return g


def run_path_catastrophe():
    rows = []
    for n in PATH_SIZES:
        g_paper, g_base = dynamic_path(n), dynamic_path(n)
        paper = SelfStabColoring(n, 2)
        baseline = RankGreedySelfStabColoring(n, 2)
        e_paper = resolve_backend("selfstab", "auto")(g_paper, paper)
        e_base = resolve_backend("selfstab", "auto")(g_base, baseline)
        for v in range(n):
            e_paper.corrupt(v, paper.plan.offsets[0])  # all-equal core colors
            e_base.corrupt(v, 0)
        r_paper = e_paper.run_to_quiescence()
        r_base = e_base.run_to_quiescence(max_rounds=12 * n)
        rows.append((n, r_paper, r_base))
    return rows


def run_delta_sweep():
    rows = []
    for delta in DELTAS:
        g = build_dynamic(N_FOR_DELTA, delta, 0.2, seed=delta)
        worst = {"plain": 0, "exact": 0}
        for key, factory in (
            ("plain", SelfStabColoring),
            ("exact", SelfStabExactColoring),
        ):
            algorithm = factory(N_FOR_DELTA, delta)
            engine = resolve_backend("selfstab", "auto")(g, algorithm)
            engine.run_to_quiescence()
            campaign = FaultCampaign(seed=delta)
            for _ in range(3):
                campaign.corrupt_random_rams(engine, N_FOR_DELTA // 2)
                worst[key] = max(worst[key], engine.run_to_quiescence())
        rows.append((delta, worst["plain"], worst["exact"]))
    return rows


def run_adjustment_radius():
    radii = []
    g = dynamic_path(60)
    algorithm = SelfStabColoring(60, 2)
    engine = resolve_backend("selfstab", "auto")(g, algorithm)
    engine.run_to_quiescence()
    for victim in (10, 25, 40):
        engine.corrupt(victim, engine.rams[victim + 1])
        engine.reset_touched()
        engine.corrupt(victim, engine.rams[victim + 1])
        engine.run_to_quiescence()
        radii.append(engine.adjustment_radius([victim]))
    return radii


def test_catastrophe_paper_vs_baseline(benchmark):
    rows = benchmark.pedantic(run_path_catastrophe, rounds=1, iterations=1)
    report(
        "E-SS-COL-n",
        "Self-stab coloring: all-RAM-equal catastrophe on paths (Delta=2)",
        ("n", "this paper (rounds)", "rank-greedy baseline (rounds)"),
        rows,
        notes=(
            "Paper bound: O(Delta + log* n) — flat in n.  Classical "
            "baselines: Theta(n) cascades."
        ),
    )
    by_n = {r[0]: r for r in rows}
    # Baseline grows ~linearly; paper stays flat.
    assert by_n[320][2] >= 4 * by_n[40][2] / 2
    assert by_n[320][2] > 320 / 6
    assert by_n[320][1] <= by_n[40][1] + 10
    assert all(r[1] < r[2] for r in rows)


def test_stabilization_vs_delta(benchmark):
    rows = benchmark.pedantic(run_delta_sweep, rounds=1, iterations=1)
    report(
        "E-SS-COL-delta",
        "Self-stab coloring: worst stabilization after heavy corruption (n=%d)"
        % N_FOR_DELTA,
        ("Delta", "O(Delta)-core rounds", "exact (Delta+1)-core rounds"),
        rows,
    )
    for delta, plain, exact in rows:
        assert plain <= 10 * delta + 30
        assert exact <= 40 * delta + 60


def test_adjustment_radius_is_one(benchmark):
    radii = benchmark.pedantic(run_adjustment_radius, rounds=1, iterations=1)
    report(
        "E-SS-COL-radius",
        "Self-stab coloring: adjustment radius of a localized fault",
        ("fault #", "radius"),
        list(enumerate(radii)),
        notes="Theorem 4.3: adjustment radius 1.",
    )
    assert all(r <= 1 for r in radii)
