"""[E-OOCORE] Out-of-core tier: one planet-scale graph on a single box.

Runs ``cor36`` (the full Corollary 3.6 pipeline) and the ``greedy``
first-fit oracle through ``backend="oocore"`` — memory-mapped CSR shards,
double-buffered color planes, halo exchange between rounds — at grid points
up to the acceptance size n = 10^7, with ``REPRO_OOCORE_BUDGET`` pinned to
**25% of the in-memory footprint** (``112 * (n + 2m)`` bytes: CSR + the
batch engine's resident planes).  The budget is enforced *inside* the
engine: it refuses to start if the planned resident set exceeds it, so
every entry here is a certificate that the run fit.

At every parity-sized point (n <= 10^6 here) the same graph is also solved
by the in-memory batch engine and the outcomes must be **bit-identical**
(colors, rounds, palette) before a number is recorded; the 10^7 acceptance
entries record ``parity: "skipped"`` — the differential already covers
every kernel on the same code path at smaller n.

Timing starts after the shard directory exists (``ensure_sharded`` caches
it on disk): the entry measures the solve, not graph generation — matching
the warm-cache convention of the other benches.  ``throughput_mvps`` is
vertices colored per second (in millions); it stands in the speedup slot of
``check_regression.py``, which only compares it across machines of the same
core count.  Peak RSS is recorded per entry (``/proc`` high-water mark —
monotonic across entries, so the first big entry is the meaningful one).

Run directly (``python benchmarks/bench_oocore.py``), via pytest
(``pytest benchmarks/bench_oocore.py -s``), or as the CI smoke check
(``python benchmarks/bench_oocore.py --smoke``: tiny graph, four shards,
tight explicit budget, parity asserted, nothing written).
``--telemetry PATH`` appends the tier's shard-I/O and halo counters as
JSONL — CI uploads it as an artifact.
"""

import json
import os
import sys
import time

import pytest

from bench_util import report

from repro.graphgen import random_regular
from repro.runtime.csr import numpy_available

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
JSON_PATH = os.path.join(REPO_ROOT, "BENCH_oocore.json")

SEED = 7

#: Entries above this size skip the in-memory differential: the point of
#: the tier is graphs whose batch-engine footprint no longer fits the box
#: (or the budget), and the same code path is parity-checked below it.
PARITY_LIMIT = 10**6

#: The acceptance budget: a quarter of what the in-memory batch engine
#: would keep resident for the same graph.
BUDGET_FRACTION = 0.25

#: Small entries would round the fractional budget below the engine's
#: irreducible working set (one shard's local CSR + planes); the floor
#: keeps the knob meaningful without failing trivially at small n.
BUDGET_FLOOR = 64 << 20

# (algorithm, n, Delta) — check_regression's smoke mode keeps the smallest
# (n, Delta) per algorithm, so both kernels stay exercised.
GRID = (
    ("cor36", 50000, 8),
    ("cor36", 200000, 16),
    ("cor36", 10000000, 8),
    ("greedy", 50000, 8),
    ("greedy", 200000, 16),
    ("greedy", 10000000, 8),
)

SMOKE_N, SMOKE_DELTA = 2000, 8


def _shards_for(n):
    """Shard count per grid point: enough that one shard's slice is small."""
    return 16 if n >= 10**6 else 4


def _sharded_graph(n, delta):
    """The (disk-cached) shard directory for one grid point."""
    from repro.oocore import ensure_sharded

    spec = {"family": "regular", "n": n, "degree": delta, "seed": SEED}
    return ensure_sharded(spec, shards=_shards_for(n))


def _identity_coloring(n):
    """``arange`` identity initial coloring: recipes' default builds the same
    ids as a Python list, which at n = 10^7 is ~360 MB of boxed ints —
    passing the array keeps the bench's peak-RSS column about the tier, not
    about CPython object headers."""
    import numpy as np

    return np.arange(n, dtype=np.int64)


def _solve_oocore(algorithm, sharded):
    """Run one algorithm through the oocore tier; returns (colors, rounds)."""
    if algorithm == "cor36":
        from repro.recipes import delta_plus_one_coloring

        result = delta_plus_one_coloring(
            sharded, backend="oocore",
            initial_coloring=_identity_coloring(sharded.n),
        )
        return list(result.colors), result.total_rounds
    if algorithm == "greedy":
        from repro.baselines.greedy import greedy_coloring

        # rounds := sequential visits, matching the registry's BaselineReport.
        return greedy_coloring(sharded, backend="oocore"), sharded.n
    raise ValueError("unknown algorithm %r" % algorithm)


def _solve_batch(algorithm, graph):
    """The in-memory differential twin of :func:`_solve_oocore`."""
    if algorithm == "cor36":
        from repro.recipes import delta_plus_one_coloring

        result = delta_plus_one_coloring(
            graph, backend="batch",
            initial_coloring=_identity_coloring(graph.n),
        )
        return list(result.colors), result.total_rounds
    from repro.baselines.greedy import greedy_coloring

    return greedy_coloring(graph), graph.n


#: Grid points at or below this n get one untimed solve first: their timed
#: sections are sub-second, where a cold page cache on the shard files and
#: CPython's slow first pass through the kernels flip the throughput ratio
#: the regression gate compares (same rationale as bench_frontier).
WARM_LIMIT = 50000


def run_grid(grid=GRID):
    """Measure every grid point; returns the list of result dicts."""
    from repro.oocore import peak_rss_bytes

    entries = []
    for algorithm, n, delta in grid:
        sharded = _sharded_graph(n, delta)
        budget = max(
            int(BUDGET_FRACTION * sharded.in_memory_nbytes), BUDGET_FLOOR
        )
        os.environ["REPRO_OOCORE_BUDGET"] = str(budget)
        try:
            if n <= WARM_LIMIT:
                _solve_oocore(algorithm, sharded)
            start = time.perf_counter()
            colors, rounds = _solve_oocore(algorithm, sharded)
            elapsed = time.perf_counter() - start
        finally:
            os.environ.pop("REPRO_OOCORE_BUDGET", None)
        if n <= PARITY_LIMIT:
            expected_colors, expected_rounds = _solve_batch(
                algorithm, random_regular(n, delta, seed=SEED)
            )
            assert colors == expected_colors, (
                "oocore %s colors diverged from batch at n=%d" % (algorithm, n)
            )
            assert rounds == expected_rounds, (algorithm, n, rounds)
            parity = "match"
        else:
            parity = "skipped"
        entries.append(
            {
                "algorithm": algorithm,
                "n": n,
                "delta": delta,
                "shards": sharded.shards,
                "budget_bytes": budget,
                "in_memory_bytes": sharded.in_memory_nbytes,
                "cpus": os.cpu_count() or 1,
                "rounds": rounds,
                "num_colors": len(set(colors)),
                "parity": parity,
                "oocore_seconds": round(elapsed, 6),
                "throughput_mvps": round((n / 1e6) / max(elapsed, 1e-9), 4),
                "peak_rss_bytes": peak_rss_bytes(),
            }
        )
    return entries


def write_results(entries):
    """Persist BENCH_oocore.json (repo root) and the human-readable table."""
    payload = {
        "benchmark": "oocore-tier",
        "sweep": "cor36 + greedy via backend=oocore on random_regular, "
        "budget = max(25%% of in-memory footprint, %dM)" % (BUDGET_FLOOR >> 20),
        "units": {
            "oocore_seconds": "wall clock for the solve (shards already on disk)",
            "throughput_mvps": "vertices colored per second, millions",
            "budget_bytes": "REPRO_OOCORE_BUDGET enforced by the engine",
        },
        "cpus": os.cpu_count() or 1,
        "entries": entries,
    }
    with open(JSON_PATH, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    rows = [
        (
            e["algorithm"],
            e["n"],
            e["delta"],
            e["shards"],
            "%dM" % (e["budget_bytes"] >> 20),
            "%dM" % (e["peak_rss_bytes"] >> 20),
            e["rounds"],
            e["num_colors"],
            e["parity"],
            round(e["oocore_seconds"], 3),
            e["throughput_mvps"],
        )
        for e in entries
    ]
    report(
        "E-OOCORE",
        "Out-of-core tier: memory-mapped shards under a 25%% budget",
        ("alg", "n", "Delta", "shards", "budget", "rss", "rounds",
         "colors", "parity", "secs", "Mv/s"),
        rows,
        notes="BENCH_oocore.json at the repo root carries the same data "
        "machine-readably; parity entries were solved twice (oocore and "
        "in-memory batch) and matched bit for bit, the 10^7 acceptance "
        "entries ran under a budget of a quarter of the batch engine's "
        "resident footprint.",
    )
    return payload


def run_smoke(telemetry_path=None):
    """Tiny parity pass for CI: four shards, tight budget, nothing written."""
    if not numpy_available():
        print("smoke: NumPy unavailable, oocore tier not exercised")
        return
    from repro import obs
    from repro.oocore import ensure_sharded

    spec = {"family": "regular", "n": SMOKE_N, "degree": SMOKE_DELTA, "seed": SEED}
    sharded = ensure_sharded(spec, shards=4)
    os.environ["REPRO_OOCORE_BUDGET"] = str(BUDGET_FLOOR)
    try:
        with obs.capture() as tel:
            for algorithm in ("cor36", "greedy"):
                colors, rounds = _solve_oocore(algorithm, sharded)
                expected, expected_rounds = _solve_batch(
                    algorithm,
                    random_regular(SMOKE_N, SMOKE_DELTA, seed=SEED),
                )
                assert colors == expected, algorithm
                assert rounds == expected_rounds, algorithm
                print(
                    "smoke: %s bit-identical through %d shards at n=%d"
                    % (algorithm, sharded.shards, SMOKE_N)
                )
    finally:
        os.environ.pop("REPRO_OOCORE_BUDGET", None)
    if telemetry_path:
        snapshot = tel.snapshot()
        with open(telemetry_path, "w") as handle:
            for event in tel.events:
                handle.write(json.dumps(event) + "\n")
            for kind in ("counters", "gauges", "histograms"):
                for record in snapshot.get(kind, []):
                    handle.write(
                        json.dumps(dict(record, record_kind=kind)) + "\n"
                    )
        print("smoke: telemetry written to %s" % telemetry_path)


@pytest.mark.skipif(not numpy_available(), reason="oocore tier needs NumPy")
def test_oocore_grid():
    """Full-grid run: writes the baseline, asserts the acceptance points."""
    entries = run_grid()
    write_results(entries)
    big = [e for e in entries if e["n"] >= 10**7]
    assert big, "grid must include the n=10^7 acceptance points"
    for entry in big:
        assert entry["budget_bytes"] <= entry["in_memory_bytes"] // 4 + 1
    assert all(e["parity"] == "match" for e in entries if e["n"] <= PARITY_LIMIT)


def _parse_args(argv):
    telemetry = None
    if "--telemetry" in argv:
        telemetry = argv[argv.index("--telemetry") + 1]
    return "--smoke" in argv, telemetry


if __name__ == "__main__":
    smoke, telemetry = _parse_args(sys.argv[1:])
    if smoke:
        run_smoke(telemetry_path=telemetry)
        raise SystemExit(0)
    write_results(run_grid())
