"""[E-CONGEST-V] Section 3's communication-efficiency remark, for vertices.

"A node does not have to send its new color to all of its neighbors.
Rather it is enough to send only one bit..."  Measured on the AG stage of
the Corollary 3.6 pipeline: the metered bits per edge (one full pair
exchange + one bit per subsequent round) against the naive alternative that
re-broadcasts a full color every round.  The executable bit protocol
(`repro.bitround.vertex_coloring`) realizes the metered numbers.
"""

import math

from bench_util import report

from repro import delta_plus_one_coloring
from repro.bitround.vertex_coloring import run_vertex_coloring_bit_protocol
from repro.graphgen import random_regular

DELTAS = (4, 8, 16, 24)
N = 96


def run_sweep():
    rows = []
    for delta in DELTAS:
        graph = random_regular(N, delta, seed=delta)
        result = delta_plus_one_coloring(graph)
        ag_stage, ag_run = next(
            (stage, run)
            for stage, run in result.stage_results
            if stage.name == "additive-group"
        )
        metered = ag_run.metrics.total_bits / (2 * graph.m)
        width = max(
            1,
            math.ceil(
                math.log2(max(2, ag_stage.info.in_palette_size))
            ),
        )
        naive = ag_run.rounds_used * width
        bit_run = run_vertex_coloring_bit_protocol(graph)
        rows.append(
            (
                delta,
                ag_run.rounds_used,
                round(metered, 1),
                naive,
                bit_run.bit_rounds_by_phase["additive-group"],
            )
        )
    return rows


def test_ag_stage_communication(benchmark):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    report(
        "E-CONGEST-V",
        "AG-stage communication per edge (n=%d): 1-bit updates vs naive" % N,
        (
            "Delta",
            "AG rounds",
            "bits/edge (1-bit updates)",
            "bits/edge (naive full-color)",
            "bit-protocol AG bit-rounds",
        ),
        rows,
        notes=(
            '"it is enough to send only one bit indicating whether its '
            'color became final or that it changed" (Section 3).'
        ),
    )
    for delta, rounds, metered, naive, bit_rounds in rows:
        if rounds >= 2:
            assert metered < naive  # the 1-bit updates genuinely save bits
        # The executable protocol's AG phase: one pair exchange + 1b rounds.
        assert bit_rounds <= metered + rounds + 2
