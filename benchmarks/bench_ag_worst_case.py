"""[E-AG-WORST] How tight is Corollary 3.5's q-round bound in practice?

Searches for slow AG inputs: on cliques (the densest conflict structure)
and random regular graphs, tries structured adversarial initial colorings —
maximal second-coordinate collisions, arithmetic patterns, near-miss
rotations — plus a random sample, and reports the worst observed round
count against the proven bound of ``q`` rounds.

Observation reproduced: even adversarial starts converge in a small fraction
of ``q`` — conflicts die geometrically because every rotation is by a
*distinct* first coordinate.  The q bound is safe, not tight.
"""

import random

from bench_util import report

from repro.analysis import is_proper_coloring
from repro.core.ag import AdditiveGroupColoring
from repro.graphgen import complete_graph, random_regular
from repro.runtime import ColoringEngine


def adversarial_colorings(graph, q, rng):
    """Yield (name, proper q^2-coloring) candidates designed to stall AG."""
    n = graph.n
    # 1. Distinct a, as few distinct b's as possible: maximal initial conflicts.
    for b_values in (1, 2, 3):
        if n <= q:
            yield (
                "%d b-values" % b_values,
                [(v % q) * q + (v % b_values) for v in range(n)],
            )
    # 2. Anti-diagonal: b = -a mod q, so rotations chase each other.
    if n <= q:
        yield ("anti-diagonal", [(v % q) * q + ((-v) % q) for v in range(n)])
    # 3. Pairs (a, a): rotation walks b along the diagonal.
    if n <= q:
        yield ("diagonal", [(v % q) * q + (v % q) for v in range(n)])
    # 4. Random samples.
    for i in range(6):
        yield ("random-%d" % i, rng.sample(range(q * q), n))


def run_search():
    rng = random.Random(0)
    rows = []
    for name, graph in (
        ("K12", complete_graph(12)),
        ("K20", complete_graph(20)),
        ("reg-96-10", random_regular(96, 10, seed=1)),
    ):
        probe = AdditiveGroupColoring()
        engine = ColoringEngine(graph, check_proper_each_round=True)
        worst_rounds, worst_name, q = 0, "-", None
        for label, coloring in adversarial_colorings(
            graph, 2 * graph.max_degree + 1, rng
        ):
            stage = AdditiveGroupColoring()
            result = engine.run(
                stage,
                coloring,
                in_palette_size=max(coloring) + 1,
            )
            assert is_proper_coloring(graph, result.int_colors)
            q = stage.q
            if result.rounds_used > worst_rounds:
                worst_rounds, worst_name = result.rounds_used, label
        rows.append((name, graph.max_degree, q, worst_rounds, worst_name))
    return rows


def test_ag_worst_case_search(benchmark):
    rows = benchmark.pedantic(run_search, rounds=1, iterations=1)
    report(
        "E-AG-WORST",
        "Adversarial search for slow AG inputs (worst of structured + random)",
        ("graph", "Delta", "q (bound)", "worst rounds", "worst pattern"),
        rows,
        notes="Corollary 3.5 guarantees <= q rounds; observed worst cases sit far below.",
    )
    for name, delta, q, worst, _ in rows:
        assert worst <= q  # the theorem
        assert worst >= 1  # the adversarial inputs do create work
