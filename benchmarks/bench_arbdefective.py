"""[E-ARB] Lemmas 6.1–6.3: ArbAG, the arbdefective Additive-Group algorithm.

Sweeps the tolerance p at fixed Delta and Delta at p = sqrt(Delta), and
reports the three quantities of Section 6: AG-side rounds (2*ceil(Delta/p)+1
bound), output palette (O(Delta/p)), and the measured arbdefect (class
degeneracy, O(p)).
"""

import math

from bench_util import report

from repro.analysis import arbdefect_upper_bound
from repro.core.arbdefective import ArbAGColoring
from repro.defective import DefectiveLinialColoring
from repro.graphgen import random_regular
from repro.runtime import ColoringEngine

N = 120
DELTA_FIXED = 24
DELTAS = (9, 16, 25, 36)


def run_once(graph, tolerance):
    engine = ColoringEngine(graph)
    defective = DefectiveLinialColoring(tolerance)
    dres = engine.run(defective, list(range(graph.n)))
    arb = ArbAGColoring(tolerance)
    ares = engine.run(arb, dres.int_colors, in_palette_size=defective.out_palette_size)
    arbdefect = arbdefect_upper_bound(graph, ares.int_colors)
    return dres.rounds_used, ares.rounds_used, arb.q, arbdefect


def run_p_sweep():
    graph = random_regular(N, DELTA_FIXED, seed=1)
    rows = []
    for p in (1, 2, 5, 12, 24):
        lin_rounds, ag_rounds, palette, arbdefect = run_once(graph, p)
        bound = 2 * math.ceil(DELTA_FIXED / p) + 1
        rows.append((p, lin_rounds, ag_rounds, bound, palette, arbdefect))
    return rows


def run_delta_sweep():
    rows = []
    for delta in DELTAS:
        graph = random_regular(N, delta, seed=delta)
        p = int(round(math.sqrt(delta)))
        lin_rounds, ag_rounds, palette, arbdefect = run_once(graph, p)
        rows.append((delta, p, ag_rounds, 2 * math.ceil(delta / p) + 1, palette, arbdefect))
    return rows


def test_arbag_tolerance_tradeoff(benchmark):
    rows = benchmark.pedantic(run_p_sweep, rounds=1, iterations=1)
    report(
        "E-ARB-p",
        "ArbAG at Delta=%d: tolerance p vs rounds / palette / arbdefect" % DELTA_FIXED,
        ("p", "log*-stage rounds", "AG-stage rounds", "bound 2*ceil(D/p)+1", "palette q", "arbdefect (degeneracy)"),
        rows,
        notes="Lemma 6.1/6.2: rounds <= 2*ceil(Delta/p)+1, arbdefect O(p).",
    )
    for p, _, ag_rounds, bound, palette, arbdefect in rows:
        assert ag_rounds <= bound
        assert arbdefect <= 4 * p + 8  # O(p) with the construction constants
    # Larger p => fewer rounds and fewer colors.
    assert rows[-1][2] <= rows[0][2]
    assert rows[-1][4] <= rows[0][4]


def test_arbag_sqrt_delta_setting(benchmark):
    rows = benchmark.pedantic(run_delta_sweep, rounds=1, iterations=1)
    report(
        "E-ARB-delta",
        "ArbAG at p=sqrt(Delta): the Theorem 6.4 building block (n=%d)" % N,
        ("Delta", "p", "AG-stage rounds", "bound", "palette q", "arbdefect"),
        rows,
        notes="O(sqrt(Delta))-arbdefective O(sqrt(Delta))-coloring in O(sqrt(Delta)) AG rounds.",
    )
    for delta, p, ag_rounds, bound, palette, arbdefect in rows:
        root = math.sqrt(delta)
        assert ag_rounds <= bound <= 2 * root + 5
        assert palette <= 8 * root + 12
        assert arbdefect <= 6 * root + 10
