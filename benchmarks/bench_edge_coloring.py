"""[E-EDGE] Theorem 5.3 / Lemmas 5.1–5.2: bandwidth-efficient edge coloring.

Measured against the paper's ledger:

* CONGEST rounds vs Delta at fixed n — O(Delta + log* n);
* CONGEST rounds vs n at fixed Delta — the log* plateau;
* bits per edge (Bit-Round rounds) vs n — O(Delta + log n), and
  O(Delta + log log n) when neighbor IDs are known;
* max single-message size — CONGEST compliance.
"""

import math

from bench_util import report

from repro.analysis import is_proper_edge_coloring
from repro.edge import edge_coloring_bit_round, edge_coloring_congest
from repro.graphgen import random_regular
from repro.mathutil import log_star

DELTAS = (4, 6, 8, 12)
N_FIXED = 72
NS = (32, 128, 512)
DELTA_FIXED = 4


def run_delta_sweep():
    rows = []
    for delta in DELTAS:
        graph = random_regular(N_FIXED, delta, seed=delta)
        result = edge_coloring_congest(graph, exact=True)
        assert is_proper_edge_coloring(graph, result.edge_colors)
        rows.append(
            (
                delta,
                result.total_rounds,
                result.palette_size,
                2 * delta - 1,
                result.max_message_bits,
            )
        )
    return rows


def run_n_sweep():
    rows = []
    for n in NS:
        graph = random_regular(n, DELTA_FIXED, seed=n)
        congest = edge_coloring_congest(graph, exact=True)
        _, bit_rounds = edge_coloring_bit_round(graph, exact=True)
        _, bit_rounds_ids = edge_coloring_bit_round(
            graph, exact=True, neighbor_ids_known=True
        )
        rows.append(
            (
                n,
                log_star(n),
                congest.total_rounds,
                bit_rounds,
                bit_rounds_ids,
                math.ceil(math.log2(n)),
            )
        )
    return rows


def test_congest_rounds_vs_delta(benchmark):
    rows = benchmark.pedantic(run_delta_sweep, rounds=1, iterations=1)
    report(
        "E-EDGE-delta",
        "CONGEST (2*Delta-1)-edge-coloring: rounds vs Delta (n=%d)" % N_FIXED,
        ("Delta", "rounds", "palette", "2*Delta-1", "max message bits"),
        rows,
        notes="Theorem 5.3: O(Delta + log* n) rounds with O(log n)-bit messages.",
    )
    for delta, rounds, palette, bound, msg_bits in rows:
        assert palette <= bound
        assert rounds <= 30 * delta + 30
        assert msg_bits <= 2 * math.ceil(math.log2(N_FIXED)) + 8  # CONGEST


def test_bit_round_complexity_vs_n(benchmark):
    rows = benchmark.pedantic(run_n_sweep, rounds=1, iterations=1)
    report(
        "E-EDGE-n",
        "Edge coloring vs n at Delta=%d: CONGEST rounds and Bit-Round rounds"
        % DELTA_FIXED,
        ("n", "log* n", "CONGEST rounds", "Bit-Round", "Bit-Round (IDs known)", "log2 n"),
        rows,
        notes=(
            "Bit-Round grows with log n (the unavoidable ID exchange); with "
            "IDs known it grows only with log log n (Lemma 5.2)."
        ),
    )
    by_n = {r[0]: r for r in rows}
    # CONGEST rounds stay ~flat in n.
    assert by_n[NS[-1]][2] <= by_n[NS[0]][2] + 8
    # Bit-Round grows by ~the extra ID bits, and IDs-known stays below.
    for n, _, _, bits, bits_ids, logn in rows:
        assert bits_ids < bits
        assert bits <= 60 * DELTA_FIXED + 8 * logn + 60
