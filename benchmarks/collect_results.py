"""Stitch all benchmark tables into one report.

Run after ``pytest benchmarks/ --benchmark-only``:

    python benchmarks/collect_results.py
    python benchmarks/collect_results.py --check-regressions   # + perf gate

``--check-regressions`` additionally runs the bench regression gate
(:mod:`check_regression`) in smoke mode against the committed
``BENCH_*.json`` baselines, appends its verdict to the report, and exits
non-zero if any regression is found.

Produces ``benchmarks/results/REPORT.md`` with every experiment table in
DESIGN.md's index order.
"""

import argparse
import os
import sys

RESULTS_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)), "results")

ORDER = [
    "T1",
    "E-AG",
    "E-AG-WORST",
    "E-PIPE-n",
    "E-PIPE-delta",
    "E-SS-COL-n",
    "E-SS-COL-delta",
    "E-SS-COL-radius",
    "E-RADIUS",
    "E-DET",
    "E-RAND-delta",
    "E-RAND-n",
    "E-SS-BURST",
    "E-SS-MIS",
    "E-SS-MIS-radius",
    "E-SS-MM",
    "E-SS-EC",
    "E-EDGE-delta",
    "E-EDGE-n",
    "E-BITPROTO",
    "E-CONGEST-V",
    "E-ARB-p",
    "E-ARB-delta",
    "E-SUBL",
    "E-3AG",
    "E-SETLOCAL",
    "E-MEM",
    "E-ABL-eps",
    "E-ABL-floor",
    "E-ABL-finish",
    "E-ABL-completion",
    "E-BEK",
    "E-APPS",
    "E-SCALE",
    "E-ENGINE",
    "E-PIPELINE",
    "E-SELFSTAB-SPEED",
    "E-PARALLEL",
    "E-FRONTIER",
    "E-OOCORE",
]


def collect(results_dir=RESULTS_DIR):
    """Return the combined report text; raises if no tables exist."""
    sections = []
    missing = []
    for exp_id in ORDER:
        path = os.path.join(results_dir, "%s.txt" % exp_id)
        if not os.path.exists(path):
            missing.append(exp_id)
            continue
        with open(path) as handle:
            sections.append("```\n" + handle.read().rstrip() + "\n```")
    if not sections:
        raise FileNotFoundError(
            "no benchmark tables found in %s — run "
            "`pytest benchmarks/ --benchmark-only` first" % results_dir
        )
    header = [
        "# Benchmark report",
        "",
        "Regenerated tables for every experiment in DESIGN.md's index.",
        "",
    ]
    if missing:
        header.append("Missing (bench not yet run): %s" % ", ".join(missing))
        header.append("")
    return "\n\n".join(["\n".join(header)] + sections) + "\n"


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--check-regressions",
        action="store_true",
        help="run the bench regression gate (smoke mode) and append its "
        "verdict to the report; non-zero exit on regression",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.5,
        help="fractional drift allowed by the regression gate (default 0.5)",
    )
    args = parser.parse_args(argv)
    text = collect()
    failures = []
    if args.check_regressions:
        import check_regression

        failures, verdict = check_regression.run_checks(
            tolerance=args.tolerance, smoke=True
        )
        text += "\n## Bench regression gate\n\n```\n" + verdict.rstrip() + "\n```\n"
    out_path = os.path.join(RESULTS_DIR, "REPORT.md")
    with open(out_path, "w") as handle:
        handle.write(text)
    print("wrote %s (%d bytes)" % (out_path, len(text)))
    if failures:
        print("regression gate FAILED (%d failures)" % len(failures))
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
