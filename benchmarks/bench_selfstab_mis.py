"""[E-SS-MIS] Theorems 4.5 / 4.6: self-stabilizing MIS.

Measures stabilization rounds vs Delta after corruption storms (the
O(Delta + log* n) claim) and the adjustment radius of localized status
faults (exactly <= 2).
"""

from bench_util import report

from repro.runtime.backends import resolve_backend
from repro.selfstab import FaultCampaign, SelfStabMIS

from bench_selfstab_coloring import build_dynamic, dynamic_path

DELTAS = (3, 5, 8, 12)
N = 60


def run_delta_sweep():
    rows = []
    for delta in DELTAS:
        g = build_dynamic(N, delta, 0.2, seed=100 + delta)
        algorithm = SelfStabMIS(N, delta)
        engine = resolve_backend("selfstab", "auto")(g, algorithm)
        initial = engine.run_to_quiescence()
        campaign = FaultCampaign(seed=delta)
        worst = 0
        for _ in range(3):
            campaign.corrupt_random_rams(engine, N // 2)
            worst = max(worst, engine.run_to_quiescence())
        rows.append((delta, initial, worst, algorithm.stabilization_bound()))
    return rows


def run_radius():
    g = dynamic_path(50)
    algorithm = SelfStabMIS(50, 2)
    engine = resolve_backend("selfstab", "auto")(g, algorithm)
    engine.run_to_quiescence()
    radii = []
    for victim in (10, 25, 40):
        fake = (engine.rams[victim][0], "MIS")
        engine.corrupt(victim, fake)
        engine.reset_touched()
        engine.corrupt(victim, fake)
        engine.run_to_quiescence()
        radii.append(engine.adjustment_radius([victim]))
    return radii


def test_mis_stabilization_vs_delta(benchmark):
    rows = benchmark.pedantic(run_delta_sweep, rounds=1, iterations=1)
    report(
        "E-SS-MIS",
        "Self-stab MIS: stabilization rounds (n=%d)" % N,
        ("Delta", "from scratch", "worst after corruption", "proven-style bound"),
        rows,
        notes="Theorem 4.5: O(Delta + log* n); previous works: O(n) or more.",
    )
    for delta, initial, worst, bound in rows:
        assert worst <= bound
        assert worst <= 14 * delta + 40  # far below n-scale


def test_mis_adjustment_radius(benchmark):
    radii = benchmark.pedantic(run_radius, rounds=1, iterations=1)
    report(
        "E-SS-MIS-radius",
        "Self-stab MIS: adjustment radius of forced-MIS faults",
        ("fault #", "radius"),
        list(enumerate(radii)),
        notes="Theorem 4.6: the adjustment radius is 2.",
    )
    assert all(r <= 2 for r in radii)
