"""[E-SUBL] Theorem 6.4 (shape): sublinear-in-Delta proper coloring.

Compares the Delta-dependent round counts of

* the linear route (AG + standard reduction, Corollary 3.6), and
* the arbdefective route (defective -> ArbAG -> class completion) with
  p = sqrt(Delta) — O(sqrt(Delta))-shaped per the paper (the palette is
  C * Delta for a construction constant C; see EXPERIMENTS.md for the
  honest accounting vs [3]/[22]).

Shape assertion: as Delta grows 9x, the arbdefective route's Delta-dependent
rounds grow far slower than the linear route's.
"""

from bench_util import report

from repro import delta_plus_one_coloring, one_plus_eps_delta_coloring
from repro.analysis import is_proper_coloring
from repro.graphgen import random_regular

DELTAS = (4, 9, 16, 25, 36)
N = 120


def run_sweep():
    rows = []
    data = {}
    for delta in DELTAS:
        graph = random_regular(N, delta, seed=delta)
        linear = delta_plus_one_coloring(graph)
        sub = one_plus_eps_delta_coloring(graph)
        assert is_proper_coloring(graph, sub.colors)
        linear_rounds = linear.total_rounds
        sub_rounds = sub.ag_side_rounds
        data[delta] = (linear_rounds, sub_rounds)
        rows.append(
            (
                delta,
                linear_rounds,
                sub_rounds,
                sub.palette_size,
                round(sub.palette_size / max(1, delta), 2),
            )
        )
    return rows, data


def test_sublinear_shape(benchmark):
    rows, data = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    report(
        "E-SUBL",
        "Theorem 6.4 shape: Delta-dependent rounds, linear vs arbdefective route (n=%d)" % N,
        ("Delta", "linear route rounds", "arbdefective route rounds", "palette", "palette/Delta"),
        rows,
        notes=(
            "The arbdefective route trades palette size (C * Delta colors) "
            "for O(sqrt(Delta))-shaped round counts."
        ),
    )
    lin_small, sub_small = data[DELTAS[0]]
    lin_big, sub_big = data[DELTAS[-1]]
    lin_growth = lin_big / max(1, lin_small)
    sub_growth = sub_big / max(1, sub_small)
    assert sub_growth < lin_growth  # sublinear vs linear growth in Delta
    for delta, (lin, sub) in data.items():
        assert sub <= 6 * delta ** 0.5 + 14
