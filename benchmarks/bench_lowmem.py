"""[E-MEM] End of Section 3: O(1) words of local memory per vertex.

Runs the full Corollary 3.6 pipeline through the metered streaming steps and
reports the peak per-vertex workspace, in bits and in Theta(log n)-bit
words, across growing n and Delta.  The paper's claim: the peak stays a
fixed handful of words no matter how the network grows.
"""

from bench_util import report

from repro.analysis import is_proper_coloring
from repro.graphgen import random_regular
from repro.lowmem import delta_plus_one_coloring_low_memory

CONFIGS = ((24, 4), (48, 6), (96, 8), (192, 12))


def run_sweep():
    rows = []
    for n, delta in CONFIGS:
        graph = random_regular(n, delta, seed=n)
        result = delta_plus_one_coloring_low_memory(graph)
        assert is_proper_coloring(graph, result.colors)
        assert max(result.colors) <= graph.max_degree
        rows.append(
            (n, delta, result.rounds, result.peak_bits, result.word_bits, result.peak_words)
        )
    return rows


def test_constant_words_per_vertex(benchmark):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    report(
        "E-MEM",
        "O(1)-word execution of Corollary 3.6 (peak per-vertex workspace)",
        ("n", "Delta", "rounds", "peak bits", "word bits", "peak words"),
        rows,
        notes="Claim (end of Section 3): O(1) words of Theta(log n) bits each.",
    )
    words = [r[5] for r in rows]
    assert max(words) <= 12
    assert max(words) - min(words) <= 4  # flat across an 8x size range
