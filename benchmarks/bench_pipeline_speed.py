"""[E-PIPELINE] Reference vs batch engine on the full Corollary 3.6 pipeline.

Times the headline Linial -> AG -> standard-reduction pipeline end to end on
an (n, Delta) grid, reference engine against the fully vectorized batch path
(every stage now has ``step_batch``), verifying bit-for-bit identical
colorings while measuring wall clock.  Writes the machine-readable
``BENCH_pipeline.json`` at the repo root so the end-to-end perf trajectory is
tracked PR-over-PR, plus the usual table under ``benchmarks/results/``.

Run directly (``python benchmarks/bench_pipeline_speed.py``), via pytest
(``pytest benchmarks/bench_pipeline_speed.py -s``), or as the CI smoke check
(``python benchmarks/bench_pipeline_speed.py --smoke``: a tiny grid, parity
asserted, nothing written — fails fast on kernel drift).
"""

import json
import os
import sys
import time

import pytest

from bench_util import report

from repro.analysis import is_proper_coloring
from repro.core.pipeline import delta_plus_one_coloring
from repro.graphgen import circulant_graph
from repro.runtime.csr import numpy_available

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
JSON_PATH = os.path.join(REPO_ROOT, "BENCH_pipeline.json")

# (n, Delta): circulant graphs are Delta-regular, deterministic, and cheap to
# build, so the grid isolates pipeline cost rather than generator cost.  The
# identity initial coloring makes Linial start from the full n-sized palette.
GRID = (
    (2000, 16),
    (8000, 32),
    (20000, 64),
)

SMOKE_GRID = ((300, 8),)


def _grid_graph(n, delta):
    graph = circulant_graph(n, tuple(range(1, delta // 2 + 1)))
    assert graph.max_degree == delta
    return graph


def _time_pipeline(graph, backend):
    start = time.perf_counter()
    result = delta_plus_one_coloring(graph, backend=backend)
    elapsed = time.perf_counter() - start
    return result, elapsed


def run_grid(grid=GRID):
    """Measure every grid point; returns the list of result dicts."""
    entries = []
    for n, delta in grid:
        graph = _grid_graph(n, delta)
        # Warm the per-graph CSR cache: built once per topology, shared by
        # every stage of every subsequent run — not per-run pipeline cost.
        graph.csr()
        ref_result, ref_elapsed = _time_pipeline(graph, "reference")
        bat_result, bat_elapsed = _time_pipeline(graph, "batch")
        assert is_proper_coloring(graph, ref_result.colors)
        assert ref_result.num_colors <= delta + 1
        assert bat_result.colors == ref_result.colors
        assert bat_result.total_rounds == ref_result.total_rounds
        assert bat_result.rounds_by_stage() == ref_result.rounds_by_stage()
        entries.append(
            {
                "n": n,
                "delta": delta,
                "m": graph.m,
                "total_rounds": ref_result.total_rounds,
                "rounds_by_stage": ref_result.rounds_by_stage(),
                "num_colors": ref_result.num_colors,
                "reference_seconds": round(ref_elapsed, 6),
                "batch_seconds": round(bat_elapsed, 6),
                "speedup": round(ref_elapsed / max(bat_elapsed, 1e-9), 2),
            }
        )
    return entries


def write_results(entries):
    """Persist BENCH_pipeline.json (repo root) and the human-readable table."""
    payload = {
        "benchmark": "pipeline-speed",
        "pipeline": "linial -> additive-group -> standard-reduction",
        "units": {"seconds": "wall clock", "speedup": "reference/batch"},
        "entries": entries,
    }
    with open(JSON_PATH, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    rows = [
        (
            e["n"],
            e["delta"],
            e["m"],
            e["total_rounds"],
            e["num_colors"],
            round(e["reference_seconds"] * 1000, 1),
            round(e["batch_seconds"] * 1000, 1),
            "%.1fx" % e["speedup"],
        )
        for e in entries
    ]
    report(
        "E-PIPELINE",
        "Reference vs batch engine, full Corollary 3.6 pipeline "
        "(identity initial coloring)",
        ("n", "Delta", "m", "rounds", "colors", "ref ms", "batch ms", "speedup"),
        rows,
        notes="BENCH_pipeline.json at the repo root carries the same data "
        "machine-readably for PR-over-PR tracking.",
    )
    return payload


def run_smoke():
    """Tiny-n parity pass for CI: both backends, full pipeline, no files.

    Without NumPy only the reference side runs (the batch backend is
    unavailable by construction); the invocation still exercises the full
    pipeline so the scalar path stays covered in the no-numpy CI job.
    """
    for n, delta in SMOKE_GRID:
        graph = _grid_graph(n, delta)
        ref_result, _ = _time_pipeline(graph, "reference")
        assert is_proper_coloring(graph, ref_result.colors)
        assert ref_result.num_colors <= delta + 1
        if not numpy_available():
            print("smoke: reference backend OK (NumPy unavailable, batch skipped)")
            continue
        bat_result, _ = _time_pipeline(graph, "batch")
        assert bat_result.colors == ref_result.colors
        assert bat_result.to_dict() == ref_result.to_dict()
        print("smoke: reference and batch backends identical at n=%d" % n)


@pytest.mark.requires_numpy
def test_pipeline_speed_grid():
    if not numpy_available():
        pytest.skip("NumPy unavailable (or disabled via REPRO_DISABLE_NUMPY)")
    entries = run_grid()
    write_results(entries)
    big = [e for e in entries if e["n"] >= 20000 and e["delta"] >= 64]
    assert big, "grid must include the n>=20000, Delta>=64 acceptance point"
    for entry in big:
        assert entry["speedup"] >= 5, entry


if __name__ == "__main__":
    if "--smoke" in sys.argv[1:]:
        run_smoke()
        raise SystemExit(0)
    if not numpy_available():
        raise SystemExit("NumPy unavailable; install with `pip install repro[fast]`")
    write_results(run_grid())
