"""[T1] Table 1: locally-iterative (Delta+1)-coloring round counts.

Regenerates the paper's Table 1 empirically: for growing Delta, the rounds
needed by the three locally-iterative routes from an ID coloring to a proper
(Delta+1)-coloring —

* Linial + standard reduction  (Goldberg et al. / Linial: O(Delta^2) + log* n)
* Linial + Kuhn–Wattenhofer    (SV barrier: O(Delta log Delta) + log* n)
* Linial + AG + std reduction  (this paper: O(Delta) + log* n)

Shape assertions: the paper's route beats KW, which beats the quadratic
route, and the advantage widens with Delta.
"""

from bench_util import report

from repro.analysis import is_proper_coloring
from repro.baselines import KuhnWattenhoferReduction
from repro.core import AdditiveGroupColoring, StandardColorReduction
from repro.graphgen import random_regular
from repro.linial import LinialColoring
from repro.runtime import ColoringPipeline

DELTAS = (4, 8, 16, 24, 32)
N = 132


def route_rounds(graph, stages):
    pipeline = ColoringPipeline(stages)
    result = pipeline.run(graph, list(range(graph.n)))
    assert is_proper_coloring(graph, result.colors)
    assert max(result.colors) <= graph.max_degree
    return result.total_rounds


def run_table1():
    rows = []
    per_delta = {}
    for delta in DELTAS:
        graph = random_regular(N, delta, seed=delta)
        quadratic = route_rounds(
            graph, [LinialColoring(), StandardColorReduction()]
        )
        kw = route_rounds(graph, [LinialColoring(), KuhnWattenhoferReduction()])
        paper = route_rounds(
            graph,
            [LinialColoring(), AdditiveGroupColoring(), StandardColorReduction()],
        )
        per_delta[delta] = (quadratic, kw, paper)
        rows.append((delta, quadratic, kw, paper))
    return rows, per_delta


def test_table1_locally_iterative(benchmark):
    rows, per_delta = benchmark.pedantic(run_table1, rounds=1, iterations=1)
    report(
        "T1",
        "Locally-iterative (Delta+1)-coloring rounds (n=%d regular graphs)" % N,
        ("Delta", "Linial+StdReduction O(D^2)", "Kuhn-Wattenhofer O(D log D)", "This paper O(D)"),
        rows,
        notes=(
            "Paper bound: O(Delta) + log* n vs the Szegedy-Vishwanathan "
            "barrier O(Delta log Delta) + log* n."
        ),
    )
    # Shape: strict ordering at the largest Delta, widening advantage.
    big = DELTAS[-1]
    quadratic, kw, paper = per_delta[big]
    assert paper < kw < quadratic
    small = DELTAS[0]
    q0, k0, p0 = per_delta[small]
    assert (kw - paper) >= (k0 - p0)  # the gap grows with Delta
    # The paper's route stays linear-in-Delta with a small constant.
    for delta in DELTAS:
        assert per_delta[delta][2] <= 8 * delta + 16
