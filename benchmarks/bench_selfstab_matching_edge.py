"""[E-SS-MM] Theorem 4.7: self-stabilizing maximal matching and edge coloring.

Both run on the line-graph mirror; the effective max degree there is
``2 * (Delta - 1)``, so the O(Delta + log* n) stabilization carries over.
Measured: stabilization rounds vs Delta for both problems, from scratch and
after corruption storms, plus the (2*Delta-1) palette of the exact edge
coloring.
"""

from bench_util import report

from repro.analysis import is_maximal_matching
from repro.selfstab import FaultCampaign, SelfStabEdgeColoring, SelfStabMaximalMatching

from bench_selfstab_coloring import build_dynamic

DELTAS = (3, 4, 6)
N = 26


def run_matching():
    rows = []
    for delta in DELTAS:
        base = build_dynamic(N, delta, 0.25, seed=delta)
        mm = SelfStabMaximalMatching(base)
        initial = mm.run_to_quiescence()
        campaign = FaultCampaign(seed=delta)
        worst = 0
        for _ in range(2):
            campaign.corrupt_random_rams(mm.engine, 10)
            worst = max(worst, mm.run_to_quiescence())
        snapshot, index = base.snapshot()
        matched = [(index[u], index[v]) for u, v in mm.matching()]
        assert is_maximal_matching(snapshot, matched)
        rows.append((delta, initial, worst))
    return rows


def run_edge_coloring():
    rows = []
    for delta in DELTAS:
        base = build_dynamic(N, delta, 0.25, seed=10 + delta)
        ec = SelfStabEdgeColoring(base, exact=True)
        initial = ec.run_to_quiescence()
        campaign = FaultCampaign(seed=delta)
        worst = 0
        for _ in range(2):
            campaign.corrupt_random_rams(ec.engine, 10)
            worst = max(worst, ec.run_to_quiescence())
        colors = ec.edge_colors()
        palette = max(colors.values()) + 1 if colors else 0
        rows.append((delta, initial, worst, palette, 2 * delta - 1))
    return rows


def test_selfstab_matching(benchmark):
    rows = benchmark.pedantic(run_matching, rounds=1, iterations=1)
    report(
        "E-SS-MM",
        "Self-stab maximal matching via line-graph MIS (n=%d)" % N,
        ("Delta", "from scratch", "worst after corruption"),
        rows,
        notes="Theorem 4.7: O(Delta + log* n) stabilization; radius 3.",
    )
    for delta, initial, worst in rows:
        assert worst <= 40 * delta + 60


def test_selfstab_edge_coloring(benchmark):
    rows = benchmark.pedantic(run_edge_coloring, rounds=1, iterations=1)
    report(
        "E-SS-EC",
        "Self-stab (2*Delta-1)-edge-coloring via line-graph coloring (n=%d)" % N,
        ("Delta", "from scratch", "worst after corruption", "colors used", "palette 2D-1"),
        rows,
    )
    for delta, initial, worst, used, palette in rows:
        assert used <= palette
        assert worst <= 80 * delta + 80
