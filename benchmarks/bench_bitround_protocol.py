"""[E-BITPROTO] Theorem 5.3 as an execution: the bit-level protocol run.

Unlike E-EDGE (the analytic ledger), this runs the Section 5 edge coloring
through actual one-bit-per-edge-per-round channels (replicas synchronized
only by delivered bits, divergence asserted every round) and reports the
realized bit-round counts: O(Delta + log n) total, with the AG phase at
exactly one bit-round per AG round.
"""

from bench_util import report

from repro.analysis import is_proper_edge_coloring
from repro.bitround import run_edge_coloring_bit_protocol
from repro.edge import edge_coloring_congest
from repro.graphgen import random_regular

CONFIGS = ((32, 4), (64, 4), (128, 4), (64, 6), (64, 8))


def run_sweep():
    rows = []
    for n, delta in CONFIGS:
        graph = random_regular(n, delta, seed=n + delta)
        run = run_edge_coloring_bit_protocol(graph, exact=True)
        congest = edge_coloring_congest(graph, exact=True)
        assert run.edge_colors == congest.edge_colors
        assert is_proper_edge_coloring(graph, run.edge_colors)
        rows.append(
            (
                n,
                delta,
                run.rounds_by_phase.get("id-exchange", 0),
                run.rounds_by_phase["cole-vishkin"],
                run.rounds_by_phase["ag"],
                run.rounds_by_phase["exact-hybrid"],
                run.total_bit_rounds,
            )
        )
    return rows


def test_bit_protocol_execution(benchmark):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    report(
        "E-BITPROTO",
        "Bit-level execution of the Section 5 protocol (bit-rounds by phase)",
        ("n", "Delta", "IDs", "Cole-Vishkin", "AG (1b/rnd)", "hybrid (2b/rnd)", "total"),
        rows,
        notes=(
            "Output is bit-identical to the CONGEST pipeline; replicas stay "
            "synchronized through delivered bits only."
        ),
    )
    by_config = {(r[0], r[1]): r for r in rows}
    # n growth adds only the extra ID/CV bits at fixed Delta.
    assert by_config[(128, 4)][6] <= by_config[(32, 4)][6] + 40
    # Delta growth is the linear term.
    assert by_config[(64, 8)][6] <= 4 * by_config[(64, 4)][6]
