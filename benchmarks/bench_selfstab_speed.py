"""[E-SELFSTAB-SPEED] Reference vs batch engine on the self-stabilization layer.

Times a cold start plus a heavy corruption-burst recovery of
:class:`SelfStabColoring` on circulant topologies, reference engine against
the vectorized :class:`BatchSelfStabEngine`, verifying bit-for-bit identical
round counts and final RAM states while measuring wall clock.  Writes the
machine-readable ``BENCH_selfstab.json`` at the repo root so the
self-stabilization perf trajectory is tracked PR-over-PR, plus the usual
table under ``benchmarks/results/``.

Run directly (``python benchmarks/bench_selfstab_speed.py``), via pytest
(``pytest benchmarks/bench_selfstab_speed.py -s``), or as the CI smoke check
(``python benchmarks/bench_selfstab_speed.py --smoke``: one tiny topology,
parity asserted, nothing written — fails fast on kernel drift).
"""

import json
import os
import sys
import time

import pytest

from bench_util import report

from repro.runtime.csr import numpy_available
from repro.runtime.graph import DynamicGraph
from repro.runtime.backends import resolve_backend
from repro.selfstab import FaultCampaign, SelfStabColoring

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
JSON_PATH = os.path.join(REPO_ROOT, "BENCH_selfstab.json")

# (n, Delta): circulant topologies are Delta-regular and deterministic, so
# the grid isolates engine cost rather than generator cost.  The burst hits
# a tenth of the network, mixing stolen-neighbor RAMs with garbage — the
# recovery therefore exercises Check-Error, the interval descent and the
# AG core in the same run.
GRID = (
    (2000, 16),
    (8000, 32),
    (20000, 64),
)

SMOKE_GRID = ((120, 6),)


def _circulant_dynamic(n, delta):
    graph = DynamicGraph(n, delta)
    for v in range(n):
        graph.add_vertex(v)
    for offset in range(1, delta // 2 + 1):
        for v in range(n):
            u = (v + offset) % n
            if not graph.has_edge(v, u):
                graph.add_edge(v, u)
    for v in range(n):
        if graph.degree(v) != delta:
            raise AssertionError("not %d-regular at %d" % (delta, v))
    return graph


def _measure(graph, n, delta, backend):
    algorithm = SelfStabColoring(n, delta)
    engine = resolve_backend("selfstab", backend)(graph, algorithm)
    start = time.perf_counter()
    cold_rounds = engine.run_to_quiescence()
    campaign = FaultCampaign(seed=n)
    campaign.corrupt_random_rams(engine, max(1, n // 10))
    burst_rounds = engine.run_to_quiescence()
    elapsed = time.perf_counter() - start
    return {
        "cold_rounds": cold_rounds,
        "burst_rounds": burst_rounds,
        "rams": dict(engine.rams),
        "seconds": elapsed,
    }


def run_grid(grid=GRID):
    """Measure every grid point; returns the list of result dicts."""
    entries = []
    for n, delta in grid:
        graph = _circulant_dynamic(n, delta)
        ref = _measure(graph, n, delta, "reference")
        bat = _measure(graph, n, delta, "batch")
        assert bat["cold_rounds"] == ref["cold_rounds"]
        assert bat["burst_rounds"] == ref["burst_rounds"]
        assert bat["rams"] == ref["rams"]
        entries.append(
            {
                "n": n,
                "delta": delta,
                "m": n * delta // 2,
                "cold_rounds": ref["cold_rounds"],
                "burst_rounds": ref["burst_rounds"],
                "reference_seconds": round(ref["seconds"], 6),
                "batch_seconds": round(bat["seconds"], 6),
                "speedup": round(ref["seconds"] / max(bat["seconds"], 1e-9), 2),
            }
        )
    return entries


def write_results(entries):
    """Persist BENCH_selfstab.json (repo root) and the human-readable table."""
    payload = {
        "benchmark": "selfstab-speed",
        "scenario": "cold start + 10% corruption burst, SelfStabColoring",
        "units": {"seconds": "wall clock", "speedup": "reference/batch"},
        "entries": entries,
    }
    with open(JSON_PATH, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    rows = [
        (
            e["n"],
            e["delta"],
            e["m"],
            e["cold_rounds"],
            e["burst_rounds"],
            round(e["reference_seconds"] * 1000, 1),
            round(e["batch_seconds"] * 1000, 1),
            "%.1fx" % e["speedup"],
        )
        for e in entries
    ]
    report(
        "E-SELFSTAB-SPEED",
        "Reference vs batch self-stab engine "
        "(SelfStabColoring, cold start + 10% burst)",
        ("n", "Delta", "m", "cold", "burst", "ref ms", "batch ms", "speedup"),
        rows,
        notes="BENCH_selfstab.json at the repo root carries the same data "
        "machine-readably for PR-over-PR tracking.",
    )
    return payload


def run_smoke():
    """Tiny parity pass for CI: both backends, burst included, no files.

    Without NumPy only the reference side runs (the batch backend is
    unavailable by construction); the invocation still exercises the full
    fault-and-recover loop so the scalar path stays covered in the no-numpy
    CI job.
    """
    for n, delta in SMOKE_GRID:
        graph = _circulant_dynamic(n, delta)
        ref = _measure(graph, n, delta, "reference")
        if not numpy_available():
            print("smoke: reference backend OK (NumPy unavailable, batch skipped)")
            continue
        bat = _measure(graph, n, delta, "batch")
        assert bat["cold_rounds"] == ref["cold_rounds"]
        assert bat["burst_rounds"] == ref["burst_rounds"]
        assert bat["rams"] == ref["rams"]
        print("smoke: reference and batch engines identical at n=%d" % n)


@pytest.mark.requires_numpy
def test_selfstab_speed_grid():
    if not numpy_available():
        pytest.skip("NumPy unavailable (or disabled via REPRO_DISABLE_NUMPY)")
    entries = run_grid()
    write_results(entries)
    big = [e for e in entries if e["n"] >= 20000 and e["delta"] >= 64]
    assert big, "grid must include the n>=20000, Delta>=64 acceptance point"
    for entry in big:
        assert entry["speedup"] >= 8, entry


if __name__ == "__main__":
    if "--smoke" in sys.argv[1:]:
        run_smoke()
        raise SystemExit(0)
    if not numpy_available():
        raise SystemExit("NumPy unavailable; install with `pip install repro[fast]`")
    write_results(run_grid())
