"""[E-APPS] Static MIS and maximal matching from the coloring core.

Not a table of the paper per se, but the round-accounting sanity check for
its application claims: coloring + class sweep gives MIS (and, on the line
graph, maximal matching) in O(Delta + log* n) total rounds — the static
counterparts of Theorems 4.5/4.7.
"""

from bench_util import report

from repro.analysis import is_maximal_independent_set, is_maximal_matching
from repro.apps import locally_iterative_maximal_matching, locally_iterative_mis
from repro.graphgen import random_regular
from repro.mathutil import log_star

DELTAS = (4, 8, 16, 24)
N = 96


def run_sweep():
    rows = []
    for delta in DELTAS:
        graph = random_regular(N, delta, seed=delta)
        mis = locally_iterative_mis(graph)
        assert is_maximal_independent_set(graph, mis.members)
        mm = locally_iterative_maximal_matching(graph)
        assert is_maximal_matching(graph, mm.edges)
        rows.append(
            (
                delta,
                mis.total_rounds,
                len(mis.members),
                mm.total_rounds,
                len(mm.edges),
            )
        )
    return rows


def test_static_mis_and_matching(benchmark):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    report(
        "E-APPS",
        "Static MIS / maximal matching rounds (n=%d)" % N,
        ("Delta", "MIS rounds", "MIS size", "MM rounds", "MM size"),
        rows,
        notes="Coloring + class sweep: O(Delta + log* n) end to end.",
    )
    for delta, mis_rounds, _, mm_rounds, _ in rows:
        assert mis_rounds <= 10 * delta + log_star(N) + 16
        assert mm_rounds <= 40 * delta + log_star(N) + 40
