"""[E-RAND] Deterministic f(Delta) + log* n vs randomized O(log n) — the
incomparability the paper discusses.

Section 1.2.2 notes that randomized ~O(log n)-ish bounds are "incomparable
to running time of the form f(Delta) + O(log* n)".  Measured concretely:
at fixed n, the randomized trial coloring's rounds are ~flat in Delta while
the paper's pipeline is linear in Delta — so randomization wins for huge
Delta; at fixed small Delta, the paper's rounds are ~flat in n while the
randomized rounds track log n — so determinism wins on large sparse
networks (and is immune to the E-DET RAM-coin attack).
"""

from bench_util import report

from repro import delta_plus_one_coloring
from repro.analysis import is_proper_coloring
from repro.baselines import random_trial_coloring
from repro.graphgen import cycle_graph, random_regular
from repro.mathutil import log_star

DELTAS = (4, 8, 16, 32)
N_FIXED = 96
NS = (64, 512, 4096)


def run_delta_sweep():
    rows = []
    for delta in DELTAS:
        graph = random_regular(N_FIXED, delta, seed=delta)
        det = delta_plus_one_coloring(graph)
        rand_worst = 0
        for trial_seed in range(3):
            colors, rounds = random_trial_coloring(graph, seed=trial_seed)
            assert is_proper_coloring(graph, colors)
            rand_worst = max(rand_worst, rounds)
        rows.append((delta, det.total_rounds, rand_worst))
    return rows


def run_n_sweep():
    rows = []
    for n in NS:
        graph = cycle_graph(n)
        det = delta_plus_one_coloring(graph)
        rand_worst = 0
        for trial_seed in range(3):
            colors, rounds = random_trial_coloring(graph, seed=trial_seed)
            assert is_proper_coloring(graph, colors)
            rand_worst = max(rand_worst, rounds)
        rows.append((n, log_star(n), det.total_rounds, rand_worst))
    return rows


def test_delta_crossover(benchmark):
    rows = benchmark.pedantic(run_delta_sweep, rounds=1, iterations=1)
    report(
        "E-RAND-delta",
        "Deterministic (paper) vs randomized trial coloring: rounds vs Delta (n=%d)"
        % N_FIXED,
        ("Delta", "paper (deterministic)", "randomized (worst of 3 seeds)"),
        rows,
    )
    by_delta = {r[0]: r for r in rows}
    # Randomized stays ~flat in Delta; the paper's grows linearly.
    assert by_delta[32][2] <= 3 * max(1, by_delta[4][2])
    assert by_delta[32][1] >= 2 * by_delta[4][1]


def test_n_behavior(benchmark):
    rows = benchmark.pedantic(run_n_sweep, rounds=1, iterations=1)
    report(
        "E-RAND-n",
        "Deterministic vs randomized on cycles (Delta=2): rounds vs n",
        ("n", "log* n", "paper (deterministic)", "randomized (worst of 3 seeds)"),
        rows,
        notes=(
            "The paper's rounds track log* n (flat); randomized rounds track "
            "log n.  Neither dominates: the bounds are incomparable."
        ),
    )
    by_n = {r[0]: r for r in rows}
    assert by_n[4096][2] <= by_n[64][2] + 4  # deterministic flat in n
    # Randomized grows with n (log n coupon-ish behavior on cycles).
    assert by_n[4096][3] >= by_n[64][3]
