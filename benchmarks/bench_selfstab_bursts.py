"""[E-SS-BURST] Sensitivity of stabilization time to fault-burst size.

Section 1.2.1 emphasizes that "an arbitrarily large number of faults and
dynamic updates may occur in parallel".  This bench corrupts growing
fractions of the network (up to 100%) and shows the stabilization time is
essentially flat in burst size — it depends on Delta and log* n, not on how
much of the network was destroyed.  Includes the O(1)-memory variant to
show the metered implementation pays no time penalty.
"""

from bench_util import report

from repro.runtime.backends import resolve_backend
from repro.selfstab import (
    FaultCampaign,
    SelfStabColoring,
    SelfStabExactColoring,
)
from repro.selfstab.lowmem import SelfStabColoringConstantMemory

from bench_selfstab_coloring import build_dynamic

N = 60
DELTA = 6
FRACTIONS = (0.1, 0.25, 0.5, 1.0)


def run_bursts():
    rows = []
    for fraction in FRACTIONS:
        count = max(1, int(N * fraction))
        worst = {}
        for key, factory in (
            ("plain", SelfStabColoring),
            ("exact", SelfStabExactColoring),
            ("o1-mem", SelfStabColoringConstantMemory),
        ):
            g = build_dynamic(N, DELTA, 0.2, seed=17)
            # The dispatcher picks batch kernels where supported and falls
            # back to the scalar engine for the O(1)-memory variant; the
            # row[4] == row[2] assertion below holds because both backends
            # are bit-identical.
            algorithm = factory(N, DELTA)
            engine = resolve_backend("selfstab", "auto")(g, algorithm)
            engine.run_to_quiescence()
            campaign = FaultCampaign(seed=int(fraction * 100))
            rounds = 0
            for _ in range(3):
                campaign.corrupt_random_rams(engine, count)
                rounds = max(rounds, engine.run_to_quiescence())
            worst[key] = rounds
        rows.append(
            (
                "%d%%" % int(fraction * 100),
                count,
                worst["plain"],
                worst["exact"],
                worst["o1-mem"],
            )
        )
    return rows


def test_burst_size_insensitivity(benchmark):
    rows = benchmark.pedantic(run_bursts, rounds=1, iterations=1)
    report(
        "E-SS-BURST",
        "Stabilization vs corruption burst size (n=%d, Delta=%d)" % (N, DELTA),
        ("burst", "vertices hit", "O(Delta) core", "exact core", "O(1)-memory core"),
        rows,
        notes="Stabilization depends on Delta + log* n, not on burst size.",
    )
    plains = [r[2] for r in rows]
    exacts = [r[3] for r in rows]
    # Corrupting 10x more vertices must not cost 3x more rounds.
    assert max(plains) <= 3 * max(1, min(plains))
    assert max(exacts) <= 3 * max(1, min(exacts))
    # The O(1)-memory variant tracks the plain one exactly.
    for row in rows:
        assert row[4] == row[2]
