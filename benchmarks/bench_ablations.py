"""[E-ABL] Ablations of the design choices DESIGN.md calls out.

1. **Palette/time tradeoff (Corollary 7.3)** — epsilon sweep: squeezing AG's
   modulus towards (1+eps)Delta shrinks the palette and inflates the round
   bound by ~1/eps.
2. **The 2*Delta+1 floor is load-bearing** — same AG run with the floor
   removed entirely (modulus just above sqrt(k)): on dense graphs vertices
   exceed the conflict budget and convergence degrades or fails within the
   q-round window.
3. **Exact hybrid vs standard reduction** — the two (Delta+1) finishes of
   Corollary 3.6 / Section 7 compared head-to-head on rounds and bits.
"""

from bench_util import report

from repro.analysis import is_proper_coloring
from repro.core import (
    AdditiveGroupColoring,
    ExactDeltaPlusOneHybrid,
    StandardColorReduction,
)
from repro.core.ag import ag_prime_for
from repro.graphgen import complete_graph, random_regular
from repro.linial import LinialColoring
from repro.mathutil.primes import next_prime_at_least
from repro.runtime import ColoringEngine, ColoringPipeline


def run_epsilon_sweep():
    graph = random_regular(72, 24, seed=1)
    rows = []
    for epsilon in (0.25, 0.5, 1.0, None):
        engine = ColoringEngine(graph, check_proper_each_round=True)
        stage = AdditiveGroupColoring(epsilon=epsilon)
        result = engine.run(stage, list(range(graph.n)))
        assert is_proper_coloring(graph, result.int_colors)
        rows.append(
            (
                "default" if epsilon is None else epsilon,
                stage.q,
                round(stage.q / graph.max_degree, 2),
                result.rounds_used,
                stage.rounds_bound,
            )
        )
    return rows


def run_floor_ablation():
    """Remove the 2*Delta+1 floor on a clique: the densest conflict pattern."""
    rows = []
    for n in (10, 14, 18):
        graph = complete_graph(n)
        delta = graph.max_degree
        k = graph.n

        with_floor = ag_prime_for(k, delta)
        without_floor = next_prime_at_least(max(2, int(k ** 0.5)))

        def run_with_modulus(q, max_rounds):
            # Conflict-heavy proper start: distinct a per vertex, only three
            # distinct b values (when q allows), so most pairs collide.
            colors = [(v % q, v % min(3, q)) for v in range(graph.n)]
            if len(set(colors)) != graph.n:
                colors = [(c // q, c % q) for c in range(graph.n)]
            for round_index in range(max_rounds):
                if all(a == 0 for a, _ in colors):
                    return round_index, True
                new = []
                for v in graph.vertices():
                    a, b = colors[v]
                    conflict = any(
                        colors[u][1] == b for u in graph.neighbors(v)
                    )
                    new.append((a, (b + a) % q) if conflict else (0, b))
                colors = new
            done = all(a == 0 for a, _ in colors)
            # A "finished" run must also be proper to count as success.
            if done:
                finals = [b for _, b in colors]
                done = all(
                    finals[u] != finals[v] for u, v in graph.edges
                )
            return max_rounds, done

        budget = 3 * with_floor
        rounds_ok, ok = run_with_modulus(with_floor, budget)
        rounds_bad, bad_ok = run_with_modulus(without_floor, budget)
        rows.append(
            (
                n,
                with_floor,
                "%d (ok)" % rounds_ok if ok else "FAILED",
                without_floor,
                "%d (ok)" % rounds_bad if bad_ok else ">%d / improper" % budget,
            )
        )
    return rows


def run_finish_comparison():
    rows = []
    for delta in (6, 12, 24):
        graph = random_regular(96, delta, seed=delta)
        std = ColoringPipeline(
            [LinialColoring(), AdditiveGroupColoring(), StandardColorReduction()]
        ).run(graph, list(range(graph.n)))
        hybrid = ColoringPipeline(
            [LinialColoring(), AdditiveGroupColoring(), ExactDeltaPlusOneHybrid()]
        ).run(graph, list(range(graph.n)))
        assert max(std.colors) <= delta and max(hybrid.colors) <= delta
        rows.append(
            (delta, std.total_rounds, hybrid.total_rounds, std.total_bits, hybrid.total_bits)
        )
    return rows


def test_epsilon_palette_time_tradeoff(benchmark):
    rows = benchmark.pedantic(run_epsilon_sweep, rounds=1, iterations=1)
    report(
        "E-ABL-eps",
        "Corollary 7.3 tradeoff: AG modulus vs rounds (Delta=24, n=72)",
        ("epsilon", "q", "q/Delta", "rounds used", "rounds bound"),
        rows,
    )
    qs = [r[1] for r in rows]
    assert qs == sorted(qs)  # palette grows back towards the default
    assert rows[0][4] >= rows[-1][4]  # the bound pays for the squeeze


def test_modulus_floor_is_load_bearing(benchmark):
    rows = benchmark.pedantic(run_floor_ablation, rounds=1, iterations=1)
    report(
        "E-ABL-floor",
        "Negative control: AG with vs without the q > 2*Delta floor (cliques)",
        ("clique n", "q (floored)", "floored outcome", "q (no floor)", "no-floor outcome"),
        rows,
        notes=(
            "Without q > 2*Delta the two-conflicts-per-window argument "
            "(Lemmas 3.3/3.4) breaks: cliques stall or finish improper."
        ),
    )
    assert all("ok" in r[2] for r in rows)  # floored version always converges
    assert any("ok" not in str(r[4]) for r in rows)  # unfloored fails somewhere


def test_exact_finishes_compared(benchmark):
    rows = benchmark.pedantic(run_finish_comparison, rounds=1, iterations=1)
    report(
        "E-ABL-finish",
        "Finishing stage: standard reduction vs exact hybrid (n=96)",
        ("Delta", "std rounds", "hybrid rounds", "std bits", "hybrid bits"),
        rows,
    )
    for delta, std_rounds, hybrid_rounds, _, _ in rows:
        assert std_rounds <= 8 * delta + 16
        assert hybrid_rounds <= 14 * delta + 16


def run_completion_comparison():
    from repro import one_plus_eps_delta_coloring
    from repro.graphgen import random_regular as rr

    rows = []
    for delta in (9, 16, 25):
        graph = rr(90, delta, seed=delta)
        for backend in ("orientation", "hpartition"):
            result = one_plus_eps_delta_coloring(graph, completion=backend)
            assert is_proper_coloring(graph, result.colors)
            rows.append(
                (
                    delta,
                    backend,
                    result.stage_rounds["class-completion"],
                    result.palette_size,
                )
            )
    return rows


def test_completion_backends_compared(benchmark):
    rows = benchmark.pedantic(run_completion_comparison, rounds=1, iterations=1)
    report(
        "E-ABL-completion",
        "Theorem 6.4 class completion: orientation greedy vs H-partition",
        ("Delta", "backend", "completion rounds", "total palette"),
        rows,
        notes=(
            "Orientation greedy: tighter palette, depth-bound rounds; "
            "H-partition [BE'08]: O(log n)-layer rounds, (2+eps)a palette."
        ),
    )
    by_key = {(r[0], r[1]): r for r in rows}
    for delta in (9, 16, 25):
        orient = by_key[(delta, "orientation")]
        hpart = by_key[(delta, "hpartition")]
        assert orient[3] <= hpart[3] * 2  # palettes in the same ballpark
        assert hpart[2] <= 60  # log-n-ish rounds
