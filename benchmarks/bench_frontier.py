"""[E-FRONTIER] Table-1 frontier sweep: every vectorized module, batch vs reference.

One sweep over the full registered-algorithm surface — the paper pipeline's
k-knob family plus the long tail vectorized onto the CSR batch engine
(baselines, defective, edge, bitround) — measuring, per algorithm and
topology, the four frontier axes of Table 1:

* **rounds** — the algorithm's own round notion (communication rounds,
  sequential visits for the greedy oracle, stabilization rounds, ...);
* **palette** — distinct colors in the final coloring (``num_colors``);
* **bandwidth** — the exact per-edge bit ledger where the module meters one
  (``bitround``, ``edge``), otherwise the CONGEST message-width bound
  ``ceil(log2 n)``;
* **wall-clock** — reference tier vs batch tier, plus their ratio.

Every row is measured through :func:`repro.parallel.jobs.resolve_algorithm`
— the same registry ``repro.run`` / ``run_sweep`` / the CLI dispatch into —
and asserts the two tiers' ``to_dict()`` summaries are bit-for-bit equal
before recording a single number.

Grid sizes: vertex modules run the acceptance point n=20000 / Delta=64.
The edge, bitround and bitround-edge modules run their largest
*re-measurable* points instead (n=4000 / Delta=24, n=4000 / Delta=16 and
n=2000 / Delta=16): their reference tiers push every message through real
per-edge channel/replica objects, so the full grid would stop being
regenerable — the bitround reference at n=20000 / Delta=64 runs for ~11
minutes (measured once: 650s reference vs 0.35s batch, ~1860x), and the
edge reference executes on the line graph (~``n * Delta^2 / 2`` edges).
The committed points already clear 5x and the ratios grow with size.

The ``one-plus-eps-k*`` / ``sublinear-k4`` rows sweep the Maus-style ``k``
knob (O(k*Delta) colors vs O(Delta/k) + log* n rounds) on one small
topology — the rounds/palette trade-off is the datum, not the wall clock.

Run directly (``python benchmarks/bench_frontier.py``), via pytest
(``pytest benchmarks/bench_frontier.py -s``), or as the CI smoke check
(``python benchmarks/bench_frontier.py --smoke``: the smallest point of
every algorithm, parity asserted, nothing written).  The committed
``BENCH_frontier.json`` at the repo root is regression-gated by
``check_regression.py``.
"""

import json
import math
import os
import sys
import time

import pytest

from bench_util import report

from repro.graphgen import random_regular
from repro.parallel.jobs import resolve_algorithm
from repro.runtime.csr import numpy_available

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
JSON_PATH = os.path.join(REPO_ROOT, "BENCH_frontier.json")

# Row label -> (registry algorithm, fixed params).  The label is the entry
# key in BENCH_frontier.json (one algorithm may appear under several knob
# settings).
ROWS = {
    "greedy": ("greedy", {}),
    "random-trial": ("random-trial", {}),
    "bek": ("bek", {}),
    "kuhn-wattenhofer": ("kuhn-wattenhofer", {}),
    "defective": ("defective", {}),
    "selfstab-rank": ("selfstab-rank", {}),
    "one-plus-eps-k1": ("one-plus-eps", {"k": 1}),
    "one-plus-eps-k2": ("one-plus-eps", {"k": 2}),
    "one-plus-eps-k4": ("one-plus-eps", {"k": 4}),
    "one-plus-eps-k8": ("one-plus-eps", {"k": 8}),
    "sublinear-k4": ("sublinear", {"k": 4}),
    "edge": ("edge", {}),
    "bitround": ("bitround", {}),
    "bitround-edge": ("bitround-edge", {}),
}

SMALL = (2000, 16)
HEADLINE = (20000, 64)

# (label, n, Delta) — the flat grid; check_regression's smoke mode keeps the
# smallest (n, Delta) per label so every kernel still gets exercised.
GRID = (
    # greedy has no SMALL point: at n=2000 the wave-parallel kernel and the
    # warm pure-Python loop are within noise of each other (~2 ms either
    # way), so the speedup ratio the smoke gate compares is a coin flip.
    ("greedy",) + HEADLINE,
    ("random-trial",) + SMALL,
    ("random-trial",) + HEADLINE,
    ("bek",) + SMALL,
    ("bek",) + HEADLINE,
    ("kuhn-wattenhofer",) + SMALL,
    ("kuhn-wattenhofer",) + HEADLINE,
    ("defective",) + SMALL,
    ("defective",) + HEADLINE,
    ("selfstab-rank",) + SMALL,
    ("selfstab-rank",) + HEADLINE,
    ("one-plus-eps-k1",) + SMALL,
    ("one-plus-eps-k2",) + SMALL,
    ("one-plus-eps-k4",) + SMALL,
    ("one-plus-eps-k8",) + SMALL,
    ("sublinear-k4",) + SMALL,
    ("edge", 600, 8),
    ("edge", 4000, 24),
    ("bitround", 600, 8),
    ("bitround", 4000, 16),
    ("bitround-edge", 600, 8),
    ("bitround-edge",) + SMALL,
)

# The modules this PR vectorized must clear 5x at their largest grid point.
SPEEDUP_FLOOR = 5.0
NEW_MODULES = (
    "greedy",
    "random-trial",
    "bek",
    "kuhn-wattenhofer",
    "defective",
    "selfstab-rank",
    "edge",
    "bitround",
    "bitround-edge",
)


def _bits(x):
    return max(1, int(math.ceil(math.log2(max(2, x)))))


def _bandwidth_bits(result, n):
    """Exact bit ledger when the module meters one, else the width bound."""
    total = getattr(result, "total_bit_rounds", None)
    if total is None:
        total = getattr(result, "total_bits_per_edge", None)
    if total is not None:
        return int(total)
    return _bits(max(2, n))


_GRAPHS = {}


def _graph(n, delta):
    """One seeded Delta-regular topology per size, CSR pre-warmed and cached
    so generator cost never leaks into either tier's timing."""
    key = (n, delta)
    if key not in _GRAPHS:
        graph = random_regular(n, delta, seed=n + delta)
        if numpy_available():
            graph.csr()
        _GRAPHS[key] = graph
    return _GRAPHS[key]


#: Rows at or below this n get one untimed run of each tier first: their
#: timed sections are a few tens of milliseconds, where CPython's adaptive
#: interpreter makes the first call up to 3x slower than every later one —
#: enough to flip the recorded speedup depending on what ran earlier in the
#: process (full grid vs check_regression's smoke selection).
WARM_LIMIT = 2000


def run_grid(grid=GRID):
    """Measure the (label, n, Delta) triples; assert cross-tier parity."""
    entries = []
    for label, n, delta in grid:
        algorithm, params = ROWS[label]
        fn = resolve_algorithm(algorithm)
        graph = _graph(n, delta)
        if n <= WARM_LIMIT:
            fn(graph, backend="batch", seed=7, **params)
            fn(graph, backend="reference", seed=7, **params)
        start = time.perf_counter()
        batch = fn(graph, backend="batch", seed=7, **params)
        batch_elapsed = time.perf_counter() - start
        start = time.perf_counter()
        reference = fn(graph, backend="reference", seed=7, **params)
        ref_elapsed = time.perf_counter() - start
        if reference.to_dict() != batch.to_dict():
            raise AssertionError(
                "tier mismatch for %s at n=%d Delta=%d" % (label, n, delta)
            )
        entries.append(
            {
                "algorithm": label,
                "n": n,
                "delta": delta,
                "m": graph.m,
                "rounds": batch.rounds,
                "num_colors": batch.num_colors,
                "bandwidth_bits": _bandwidth_bits(batch, n),
                "reference_seconds": round(ref_elapsed, 6),
                "batch_seconds": round(batch_elapsed, 6),
                "speedup": round(ref_elapsed / max(batch_elapsed, 1e-9), 2),
            }
        )
    return entries


def write_results(entries):
    """Persist BENCH_frontier.json (repo root) and the human-readable table."""
    payload = {
        "benchmark": "frontier-sweep",
        "units": {
            "seconds": "wall clock",
            "speedup": "reference/batch",
            "bandwidth_bits": "exact ledger (bitround/edge) or "
            "ceil(log2 n) message width",
        },
        "entries": entries,
    }
    with open(JSON_PATH, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    rows = [
        (
            e["algorithm"],
            e["n"],
            e["delta"],
            e["rounds"],
            e["num_colors"],
            e["bandwidth_bits"],
            round(e["reference_seconds"] * 1000, 1),
            round(e["batch_seconds"] * 1000, 1),
            "%.1fx" % e["speedup"],
        )
        for e in entries
    ]
    report(
        "E-FRONTIER",
        "Table-1 frontier sweep: rounds / palette / bandwidth / wall clock "
        "per registered algorithm, reference vs batch",
        ("algorithm", "n", "Delta", "rounds", "colors", "bits",
         "ref ms", "batch ms", "speedup"),
        rows,
        notes="BENCH_frontier.json at the repo root carries the same data "
        "machine-readably; check_regression.py gates it per "
        "(algorithm, n, Delta).",
    )
    return payload


def _largest_point(entries, label):
    rows = [e for e in entries if e["algorithm"] == label]
    return max(rows, key=lambda e: (e["n"], e["delta"])) if rows else None


@pytest.mark.requires_numpy
def test_frontier_grid():
    if not numpy_available():
        pytest.skip("NumPy unavailable (or disabled via REPRO_DISABLE_NUMPY)")
    entries = run_grid()
    write_results(entries)
    for label in NEW_MODULES:
        entry = _largest_point(entries, label)
        assert entry is not None, label
        assert entry["speedup"] >= SPEEDUP_FLOOR, (label, entry)
    # The k knob trades palette for rounds, Maus-style: larger k buys a
    # smaller conflict budget — more colors, fewer conflict rounds.
    knob = sorted(
        (e for e in entries if e["algorithm"].startswith("one-plus-eps-k")),
        key=lambda e: int(e["algorithm"].rsplit("k", 1)[1]),
    )
    assert len(knob) == 4
    assert knob[0]["num_colors"] <= knob[-1]["num_colors"]


def _smoke():
    grid = {}
    for label, n, delta in GRID:
        grid.setdefault(label, (label, n, delta))
    points = sorted(grid.values())
    if not numpy_available():
        # No-NumPy job: the batch tier (the timing subject) is absent, but
        # the whole registered surface still runs on the scalar tier.
        for label, n, delta in points:
            algorithm, params = ROWS[label]
            result = resolve_algorithm(algorithm)(
                _graph(n, delta), backend="reference", seed=7, **params
            )
            print(
                "smoke %-16s n=%-6d Delta=%-3d rounds=%-6s colors=%-5s "
                "(reference tier)"
                % (label, n, delta, result.rounds, result.num_colors)
            )
        print("frontier smoke OK: %d algorithms, scalar tier" % len(points))
        return
    entries = run_grid(points)
    for entry in entries:
        print(
            "smoke %-16s n=%-6d Delta=%-3d rounds=%-6s colors=%-5s %0.1fx"
            % (
                entry["algorithm"],
                entry["n"],
                entry["delta"],
                entry["rounds"],
                entry["num_colors"],
                entry["speedup"],
            )
        )
    print("frontier smoke OK: %d algorithms, parity asserted" % len(entries))


if __name__ == "__main__":
    if "--smoke" in sys.argv:
        _smoke()
    elif not numpy_available():
        raise SystemExit("NumPy unavailable; install with `pip install repro[fast]`")
    else:
        write_results(run_grid())
