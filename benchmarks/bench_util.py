"""Shared helpers for the benchmark harness.

Each benchmark regenerates one of the paper's quantitative claims (DESIGN.md
section 3 maps experiment ids to claims).  Helpers here format the
paper-vs-measured tables, write them under ``benchmarks/results/`` and echo
them to stdout (run pytest with ``-s`` to see them live).
"""

import os

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def format_table(title, headers, rows):
    """Render a fixed-width table."""
    widths = [
        max(len(str(h)), *(len(str(r[i])) for r in rows)) if rows else len(str(h))
        for i, h in enumerate(headers)
    ]
    lines = [title, ""]
    lines.append("  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(str(c).ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def report(exp_id, title, headers, rows, notes=""):
    """Print and persist one experiment table."""
    text = format_table("[%s] %s" % (exp_id, title), headers, rows)
    if notes:
        text += "\n\n" + notes
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, "%s.txt" % exp_id)
    with open(path, "w") as handle:
        handle.write(text + "\n")
    print("\n" + text + "\n")
    return text
