"""[E-ENGINE] Reference vs batch engine throughput on the AG stage.

Times the scalar reference engine against the vectorized
:class:`~repro.runtime.fast_engine.BatchColoringEngine` on an (n, Delta)
grid, verifying the outputs stay identical while measuring rounds/sec.
Writes the machine-readable ``BENCH_engine.json`` at the repo root so the
perf trajectory is tracked PR-over-PR, plus the usual table under
``benchmarks/results/``.

Run directly (``python benchmarks/bench_engine_speed.py``) or via pytest
(``pytest benchmarks/bench_engine_speed.py -s``).
"""

import json
import os
import time

import pytest

from bench_util import report

from repro.analysis import is_proper_coloring
from repro.core import AdditiveGroupColoring
from repro.core.ag import ag_prime_for
from repro.graphgen import circulant_graph
from repro.runtime import BatchColoringEngine, ColoringEngine
from repro.runtime.csr import numpy_available

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
JSON_PATH = os.path.join(REPO_ROOT, "BENCH_engine.json")

# (n, Delta): circulant graphs are Delta-regular, deterministic, and cheap to
# build, so the grid isolates engine cost rather than generator cost.
GRID = (
    (2000, 16),
    (8000, 32),
    (20000, 64),
)

B_RESIDUES = 5


def _grid_graph_and_initial(n, delta):
    graph = circulant_graph(n, tuple(range(1, delta // 2 + 1)))
    assert graph.max_degree == delta
    # Crowd the second coordinate into a few residues: every vertex starts in
    # conflict and the cascade takes several rounds to die out, so the
    # measurement reflects sustained per-round cost rather than one-shot
    # setup.  Proper because adjacent vertices (distance <= Delta/2 < q on
    # the ring) get distinct first coordinates.
    q = ag_prime_for(n, delta)
    initial = [(v % q) * q + (v % B_RESIDUES) for v in range(n)]
    return graph, initial


def _time_run(engine_cls, graph, initial):
    engine = engine_cls(graph)
    start = time.perf_counter()
    result = engine.run(
        AdditiveGroupColoring(), initial, in_palette_size=max(initial) + 1
    )
    elapsed = time.perf_counter() - start
    return result, elapsed


def run_grid(grid=GRID):
    """Measure every grid point; returns the list of result dicts."""
    entries = []
    for n, delta in grid:
        graph, initial = _grid_graph_and_initial(n, delta)
        # Warm the per-graph CSR cache: it is built once per topology and
        # shared by every subsequent run, so it is not per-run engine cost.
        graph.csr()
        ref_result, ref_elapsed = _time_run(ColoringEngine, graph, initial)
        bat_result, bat_elapsed = _time_run(BatchColoringEngine, graph, initial)
        assert is_proper_coloring(graph, ref_result.int_colors)
        assert bat_result.colors == ref_result.colors
        assert bat_result.rounds_used == ref_result.rounds_used
        rounds = ref_result.rounds_used
        entries.append(
            {
                "n": n,
                "delta": delta,
                "m": graph.m,
                "rounds": rounds,
                "stage": "additive-group",
                "reference_seconds": round(ref_elapsed, 6),
                "batch_seconds": round(bat_elapsed, 6),
                "reference_rounds_per_sec": round(rounds / max(ref_elapsed, 1e-9), 3),
                "batch_rounds_per_sec": round(rounds / max(bat_elapsed, 1e-9), 3),
                "speedup": round(ref_elapsed / max(bat_elapsed, 1e-9), 2),
            }
        )
    return entries


def write_results(entries):
    """Persist BENCH_engine.json (repo root) and the human-readable table."""
    payload = {
        "benchmark": "engine-speed",
        "stage": "additive-group",
        "units": {"seconds": "wall clock", "speedup": "reference/batch"},
        "entries": entries,
    }
    with open(JSON_PATH, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    rows = [
        (
            e["n"],
            e["delta"],
            e["m"],
            e["rounds"],
            round(e["reference_seconds"] * 1000, 1),
            round(e["batch_seconds"] * 1000, 1),
            e["reference_rounds_per_sec"],
            e["batch_rounds_per_sec"],
            "%.1fx" % e["speedup"],
        )
        for e in entries
    ]
    report(
        "E-ENGINE",
        "Reference vs batch engine (AG stage, %d-residue conflict start)"
        % B_RESIDUES,
        ("n", "Delta", "m", "rounds", "ref ms", "batch ms",
         "ref rounds/s", "batch rounds/s", "speedup"),
        rows,
        notes="BENCH_engine.json at the repo root carries the same data "
        "machine-readably for PR-over-PR tracking.",
    )
    return payload


@pytest.mark.requires_numpy
def test_engine_speed_grid():
    if not numpy_available():
        pytest.skip("NumPy unavailable (or disabled via REPRO_DISABLE_NUMPY)")
    entries = run_grid()
    write_results(entries)
    big = [e for e in entries if e["n"] >= 20000 and e["delta"] >= 64]
    assert big, "grid must include the n>=20000, Delta>=64 acceptance point"
    for entry in big:
        assert entry["speedup"] >= 10, entry


if __name__ == "__main__":
    if not numpy_available():
        raise SystemExit("NumPy unavailable; install with `pip install repro[fast]`")
    write_results(run_grid())
