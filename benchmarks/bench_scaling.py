"""[E-SCALE] Implementation scaling: per-round work is linear in m.

Not a paper claim but an adoption requirement: the simulator must not hide
accidental quadratic work.  Uses pytest-benchmark's actual timing (multiple
rounds) on the headline pipeline at three sizes; the companion assertion
checks the cost-per-edge stays within a small factor across an 16x size
range.
"""

import time

from bench_util import report

from repro import delta_plus_one_coloring
from repro.analysis import is_proper_coloring
from repro.graphgen import random_regular

SIZES = (128, 512, 2048)
DEGREE = 8


def time_once(n):
    graph = random_regular(n, DEGREE, seed=n)
    start = time.perf_counter()
    result = delta_plus_one_coloring(graph)
    elapsed = time.perf_counter() - start
    assert is_proper_coloring(graph, result.colors)
    return elapsed, graph.m, result.total_rounds


def test_pipeline_wall_time_midsize(benchmark):
    graph = random_regular(512, DEGREE, seed=512)

    def run():
        return delta_plus_one_coloring(graph)

    result = benchmark(run)
    assert max(result.colors) <= DEGREE


def test_per_edge_cost_is_flat(benchmark):
    def sweep():
        rows = []
        for n in SIZES:
            elapsed, m, rounds = time_once(n)
            rows.append((n, m, rounds, round(elapsed * 1000, 1),
                         round(1e6 * elapsed / (m * max(1, rounds)), 2)))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    report(
        "E-SCALE",
        "Implementation scaling: (Delta+1)-pipeline cost per edge-round",
        ("n", "m", "rounds", "wall ms", "us per edge-round"),
        rows,
        notes="The per-edge-round cost must stay ~flat across a 16x size range.",
    )
    costs = [r[4] for r in rows]
    assert max(costs) <= 12 * max(0.01, min(costs))
