"""[E-AG] Corollary 3.5: the Additive-Group algorithm's guarantees.

From a proper k-coloring with k = Theta(Delta^2), AG produces a proper
q-coloring, q = O(sqrt(k)), within q rounds, staying proper every round.
Measured: rounds vs Delta (linear), output palette vs sqrt(k), and the
worst-case round count over adversarially spread initial colorings.
"""

import random

from bench_util import report

from repro.analysis import is_proper_coloring
from repro.core.ag import AdditiveGroupColoring
from repro.graphgen import random_regular
from repro.runtime import ColoringEngine

DELTAS = (4, 8, 16, 24, 32, 48)
N = 144


def spread_coloring(graph, k, seed):
    rng = random.Random(seed)
    spread = sorted(rng.sample(range(k), graph.n))
    return [spread[v] for v in range(graph.n)]


def run_sweep():
    rows = []
    measured = {}
    for delta in DELTAS:
        graph = random_regular(N, delta, seed=delta)
        k = max((2 * delta + 1) ** 2, N)  # k = Theta(Delta^2), >= n colors
        worst_rounds = 0
        stage = None
        for trial in range(3):
            engine = ColoringEngine(graph, check_proper_each_round=True)
            stage = AdditiveGroupColoring()
            result = engine.run(
                stage,
                spread_coloring(graph, k, seed=trial),
                in_palette_size=k,
            )
            assert is_proper_coloring(graph, result.int_colors)
            worst_rounds = max(worst_rounds, result.rounds_used)
        measured[delta] = (worst_rounds, stage.q, k)
        rows.append((delta, k, stage.q, worst_rounds, stage.q))
    return rows, measured


def test_ag_rounds_and_palette(benchmark):
    rows, measured = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    report(
        "E-AG",
        "AG: k=Theta(Delta^2) colors -> q colors within q rounds (n=%d)" % N,
        ("Delta", "k (input colors)", "q (output colors)", "rounds (worst of 3)", "paper bound (q)"),
        rows,
        notes="Coloring verified proper after every single round (Lemma 3.2).",
    )
    for delta, (rounds, q, k) in measured.items():
        assert rounds <= q  # Corollary 3.5
        assert q * q >= k and q <= 2 * (2 * delta + 1)  # q = O(sqrt(k))
    # Linear shape in Delta: rounds grow no faster than ~2x per Delta doubling.
    assert measured[48][0] <= 14 * 48
