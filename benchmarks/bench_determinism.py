"""[E-DET] Section 1.2.1: why the self-stabilizing algorithms are deterministic.

"We note that the fact that our algorithms are deterministic is particularly
useful in this setting.  Indeed, this prevents the possibility that
adversarial faults will manipulate random bits of the algorithm."

Executable form: a randomized trial-coloring whose PRNG state lives in RAM
(it must live *somewhere*) is permanently deadlocked by a single fault that
clones one vertex's RAM onto a neighbor — the pair flips identical coins
forever.  The paper's deterministic algorithm breaks the same symmetry
through its ROM-resident IDs and recovers within its usual bound.
"""

from bench_util import report

from repro.baselines import RandomTrialSelfStabColoring
from repro.runtime.graph import DynamicGraph
from repro.selfstab import SelfStabEngine, SelfStabExactColoring

OBSERVATION_ROUNDS = 300


def k2():
    g = DynamicGraph(2, 1)
    g.add_vertex(0)
    g.add_vertex(1)
    g.add_edge(0, 1)
    return g


def run_duel():
    rows = []

    # Randomized, RAM-seeded: clone fault -> permanent deadlock.
    engine = SelfStabEngine(k2(), RandomTrialSelfStabColoring(2, 1))
    engine.run_to_quiescence(max_rounds=200)
    engine.corrupt(0, engine.rams[1])
    symmetric = True
    for _ in range(OBSERVATION_ROUNDS):
        engine.step()
        symmetric = symmetric and engine.rams[0] == engine.rams[1]
    rows.append(
        (
            "randomized (RNG state in RAM)",
            "clone neighbor's RAM",
            "DEADLOCKED >%d rounds" % OBSERVATION_ROUNDS
            if symmetric and not engine.is_legal()
            else "recovered",
        )
    )
    randomized_stuck = symmetric and not engine.is_legal()

    # Deterministic (the paper): same fault, bounded recovery.
    det = SelfStabEngine(k2(), SelfStabExactColoring(2, 1))
    det.run_to_quiescence()
    det.corrupt(0, det.rams[1])
    rounds = det.run_to_quiescence()
    rows.append(
        (
            "this paper (deterministic)",
            "clone neighbor's RAM",
            "recovered in %d rounds" % rounds,
        )
    )
    return rows, randomized_stuck, det.is_legal()


def test_determinism_matters(benchmark):
    rows, randomized_stuck, deterministic_ok = benchmark.pedantic(
        run_duel, rounds=1, iterations=1
    )
    report(
        "E-DET",
        "One RAM-clone fault: RAM-seeded randomness vs the paper's determinism",
        ("algorithm", "fault", "outcome"),
        rows,
        notes=(
            "Adversarial faults can manipulate RAM-resident random bits into "
            "permanent symmetry; ROM IDs + determinism cannot be trapped."
        ),
    )
    assert randomized_stuck
    assert deterministic_ok
