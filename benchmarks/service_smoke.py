"""CI smoke for the experiment service: daemon, durable registry, re-run parity.

Boots a real ``repro-coloring serve`` daemon on a unix socket, then drives
the acceptance path end to end through :class:`repro.api.ServiceClient`:

1. health-poll until the daemon answers;
2. submit a small cor36 job and poll it to ``done``;
3. ``rerun`` it and assert the second summary is **bit-identical**;
4. tail the run's telemetry stream and check the lifecycle records;
5. restart the daemon and assert both runs are still listed (the registry
   is durable) and a post-restart re-run still reproduces the summary.

Artifacts (registry DB + per-run telemetry) land in ``service-smoke/`` for
upload.  Exit code 0 = every assertion held.
"""

import argparse
import os
import shutil
import subprocess
import sys
import time


def _wait_for(predicate, what, timeout=30.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        try:
            value = predicate()
        except Exception:
            value = None
        if value:
            return value
        time.sleep(0.1)
    raise SystemExit("service smoke: timed out waiting for %s" % what)


def _spawn_daemon(db, sock, workers):
    argv = [
        sys.executable,
        "-m",
        "repro.cli",
        "serve",
        "--db",
        db,
        "--socket",
        sock,
        "--workers",
        str(workers),
    ]
    return subprocess.Popen(argv)


def main(argv=None):
    """Run the smoke; returns the process exit code."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workers", type=int, default=2, help="daemon pool size")
    parser.add_argument(
        "--dir", default="service-smoke", help="scratch/artifact directory"
    )
    args = parser.parse_args(argv)

    from repro.api import ServiceClient

    shutil.rmtree(args.dir, ignore_errors=True)
    os.makedirs(args.dir)
    db = os.path.join(args.dir, "registry.sqlite")
    sock = os.path.join(args.dir, "svc.sock")
    spec = {
        "algorithm": "cor36",
        "graph": {"family": "regular", "n": 64, "degree": 6, "seed": 1},
        "seed": 1,
    }

    daemon = _spawn_daemon(db, sock, args.workers)
    client = ServiceClient("unix:" + sock)
    try:
        health = _wait_for(lambda: client.health(), "daemon health")
        assert health["status"] == "ok", health

        first = client.submit(spec, wait=True, timeout=120)
        assert first["status"] == "done", first
        assert first["summary"]["num_colors"] <= 7, first["summary"]

        second = client.rerun(first["id"], wait=True, timeout=120)
        assert second["status"] == "done", second
        assert second["rerun_of"] == first["id"], second
        assert second["summary"] == first["summary"], (
            "re-run summary diverged:\n%r\n%r" % (first["summary"], second["summary"])
        )

        events = list(client.tail(first["id"]))
        kinds = {record.get("type") for record in events}
        assert {"run.started", "run.finished", "snapshot"} <= kinds, sorted(kinds)

        listed = client.runs(algorithm="cor36", status="done")
        assert {run["id"] for run in listed} == {first["id"], second["id"]}, listed
    finally:
        daemon.terminate()
        daemon.wait(timeout=30)

    # Durability: a fresh daemon over the same registry sees both runs and
    # still reproduces the stored spec bit-identically.
    daemon = _spawn_daemon(db, sock, args.workers)
    try:
        _wait_for(lambda: client.health(), "restarted daemon health")
        survivors = client.runs(status="done")
        assert {run["id"] for run in survivors} == {first["id"], second["id"]}, survivors
        third = client.rerun(first["job_id"], wait=True, timeout=120)
        assert third["summary"] == first["summary"], third
    finally:
        daemon.terminate()
        daemon.wait(timeout=30)

    print(
        "service smoke OK: runs %s re-ran bit-identically across a daemon restart"
        % sorted([first["id"], second["id"], third["id"]])
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
