"""[E-RADIUS] The adjustment-radius table of the paper, measured.

The paper claims adjustment radii 1 (vertex coloring, both palettes),
2 (MIS), 2 (edge coloring, via radius-1 line-graph coloring), and
3 (maximal matching, via radius-2 line-graph MIS).  This bench injects many
localized faults into stabilized systems on paths (where distances are
unambiguous) and reports the maximum and mean observed radius per problem.
"""

from bench_util import report

from repro.runtime.backends import resolve_backend
from repro.selfstab import (
    SelfStabColoring,
    SelfStabEdgeColoring,
    SelfStabExactColoring,
    SelfStabMaximalMatching,
    SelfStabMIS,
)

from bench_selfstab_coloring import dynamic_path

PATH_N = 40
FAULT_SITES = tuple(range(6, 34, 3))


def _vertex_radii(factory, fake_ram):
    g = dynamic_path(PATH_N)
    algorithm = factory(PATH_N, 2)
    engine = resolve_backend("selfstab", "auto")(g, algorithm)
    engine.run_to_quiescence()
    radii = []
    for victim in FAULT_SITES:
        value = fake_ram(engine, victim)
        engine.corrupt(victim, value)
        engine.reset_touched()
        engine.corrupt(victim, value)
        engine.run_to_quiescence()
        radii.append(engine.adjustment_radius([victim]))
    return radii


def _line_radii(wrapper_factory, fake_ram):
    base = dynamic_path(PATH_N)
    wrapper = wrapper_factory(base)
    wrapper.run_to_quiescence()
    radii = []
    edges = base.edges()
    for index in range(4, len(edges) - 4, 4):
        mid = edges[index]
        slot = wrapper.mirror.slot(*mid)
        value = fake_ram(wrapper, slot)
        wrapper.engine.corrupt(slot, value)
        wrapper.engine.reset_touched()
        wrapper.engine.corrupt(slot, value)
        wrapper.run_to_quiescence()
        touched_vertices = set()
        for s in wrapper.engine.touched:
            u, v = wrapper.mirror.edge_of(s)
            touched_vertices.update((u, v))
        distances = base.bfs_distances(set(mid))
        radii.append(
            max((distances.get(v, 99) for v in touched_vertices), default=0)
        )
    return radii


def run_radius_table():
    rows = []

    def steal_color(engine, victim):
        neighbor = engine.graph.neighbors(victim)[0]
        return engine.rams[neighbor]

    def fake_mis(engine, victim):
        return (engine.rams[victim][0], "MIS")

    for label, factory, fake, claim in (
        ("O(Delta)-coloring", SelfStabColoring, steal_color, 1),
        ("exact (Delta+1)-coloring", SelfStabExactColoring, steal_color, 1),
        ("MIS", SelfStabMIS, fake_mis, 2),
    ):
        radii = _vertex_radii(factory, fake)
        rows.append(
            (label, claim, max(radii), round(sum(radii) / len(radii), 2))
        )

    def steal_line_state(wrapper, slot):
        line = wrapper.mirror.line
        neighbor = line.neighbors(slot)[0]
        return wrapper.engine.rams[neighbor]

    def fake_line_mis(wrapper, slot):
        return (wrapper.engine.rams[slot][0], "MIS")

    for label, factory, fake, claim in (
        (
            "(2D-1)-edge-coloring",
            lambda base: SelfStabEdgeColoring(base, exact=False),
            steal_line_state,
            2,
        ),
        ("maximal matching", SelfStabMaximalMatching, fake_line_mis, 3),
    ):
        radii = _line_radii(factory, fake)
        rows.append(
            (label, claim, max(radii), round(sum(radii) / len(radii), 2))
        )
    return rows


def test_adjustment_radius_table(benchmark):
    rows = benchmark.pedantic(run_radius_table, rounds=1, iterations=1)
    report(
        "E-RADIUS",
        "Adjustment radii: paper claims vs measured (paths, n=%d, %d faults each)"
        % (PATH_N, len(FAULT_SITES)),
        ("problem", "claimed radius", "max measured", "mean measured"),
        rows,
    )
    for label, claim, worst, _ in rows:
        assert worst <= claim, label
