"""[E-SETLOCAL] Section 1.2.3: the SET-LOCAL (weak LOCAL) model.

In SET-LOCAL a vertex sees only the *set* of neighbor colors — no IDs, no
multiplicities, no per-port attribution.  The engine enforces this
structurally (frozensets).  Starting from a proper O(Delta^2)-coloring,
measured rounds to reach Delta+1 colors:

* AG + standard reduction (this paper): O(Delta) — the first linear-in-Delta
  algorithm applicable to this model;
* Kuhn–Wattenhofer: O(Delta log Delta) — the previous best [62, 47, 33].

Also validates AG's output equals its LOCAL-mode output (the algorithm
genuinely never uses more than the color set).
"""

from bench_util import report

from repro.analysis import is_proper_coloring
from repro.baselines import KuhnWattenhoferReduction
from repro.core import AdditiveGroupColoring, StandardColorReduction
from repro.graphgen import random_regular
from repro.linial import LinialColoring
from repro.runtime import ColoringEngine, ColoringPipeline, Visibility

DELTAS = (4, 8, 16, 24, 32)
N = 132


def setlocal_start(graph):
    """A proper O(Delta^2)-coloring (SET-LOCAL assumes one is given)."""
    engine = ColoringEngine(graph, visibility=Visibility.SET_LOCAL)
    stage = LinialColoring()
    result = engine.run(stage, list(range(graph.n)))
    return result.int_colors, stage.out_palette_size


def run_sweep():
    rows = []
    data = {}
    for delta in DELTAS:
        graph = random_regular(N, delta, seed=delta)
        start, palette = setlocal_start(graph)

        paper = ColoringPipeline(
            [AdditiveGroupColoring(), StandardColorReduction()]
        ).run(graph, start, in_palette_size=palette, visibility=Visibility.SET_LOCAL)
        assert is_proper_coloring(graph, paper.colors)
        assert max(paper.colors) <= delta

        kw = ColoringPipeline([KuhnWattenhoferReduction()]).run(
            graph, start, in_palette_size=palette, visibility=Visibility.SET_LOCAL
        )
        assert is_proper_coloring(graph, kw.colors)
        assert max(kw.colors) <= delta

        data[delta] = (paper.total_rounds, kw.total_rounds)
        rows.append((delta, palette, paper.total_rounds, kw.total_rounds))
    return rows, data


def run_mode_equivalence():
    graph = random_regular(N, 8, seed=99)
    start, palette = setlocal_start(graph)
    outputs = []
    for visibility in (Visibility.LOCAL, Visibility.SET_LOCAL):
        engine = ColoringEngine(graph, visibility=visibility)
        result = engine.run(
            AdditiveGroupColoring(), start, in_palette_size=palette
        )
        outputs.append(result.int_colors)
    return outputs


def test_setlocal_linear_vs_barrier(benchmark):
    rows, data = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    report(
        "E-SETLOCAL",
        "SET-LOCAL model: O(Delta^2)-coloring -> Delta+1, rounds (n=%d)" % N,
        ("Delta", "start palette", "this paper (AG+std)", "Kuhn-Wattenhofer"),
        rows,
        notes=(
            "Both run under structurally-enforced set visibility.  Lower "
            "bound in this model: Omega(Delta^{1/3}) [33]."
        ),
    )
    big = DELTAS[-1]
    assert data[big][0] < data[big][1]  # linear beats the SV barrier
    for delta, (paper_rounds, _) in data.items():
        assert paper_rounds <= 8 * delta + 12


def test_ag_identical_in_both_models(benchmark):
    local, setlocal = benchmark.pedantic(
        run_mode_equivalence, rounds=1, iterations=1
    )
    assert local == setlocal
