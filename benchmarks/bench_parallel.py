"""[E-PARALLEL] Sharded job-runner throughput: sequential vs 4-worker sweeps.

Runs the same multi-seed Corollary 3.6 sweep twice at every (n, Delta) grid
point — once inline on one process, once sharded across four workers through
a persistent :class:`repro.parallel.JobRunner` — asserting bit-identical
outcomes (a job is a pure function of its spec) while measuring wall clock.
Writes the machine-readable ``BENCH_parallel.json`` at the repo root, plus
the usual table under ``benchmarks/results/``.

Both timed phases run *warm* so they compare compute, not setup:

* the worker pool is forked once and exercised with a warm-up map before the
  first timed point (no fork/import cost inside a measurement);
* every grid point's graphs are prewarmed into the parent graph cache before
  either phase, so the sequential pass reads the cache and the parallel pass
  ships the same CSR arrays to workers zero-copy through the shared-memory
  plane — neither pays graph generation inside the timing window.

The speedup column is a *machine property*: it tracks the host's usable core
count, so every entry records its own ``cpus`` and the regression gate only
compares speedups measured on a machine of the same width (on a single-core
container the honest ratio is <= ~1.0x — the parity assertions still bite).

Run directly (``python benchmarks/bench_parallel.py``), via pytest
(``pytest benchmarks/bench_parallel.py -s``), or as the CI smoke check
(``python benchmarks/bench_parallel.py --smoke``: two tiny jobs, two
workers, parity asserted, nothing written).
"""

import json
import os
import sys
import time

import pytest

from bench_util import report

from repro.parallel import JobRunner, build_graph, run_many, sweep_specs

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
JSON_PATH = os.path.join(REPO_ROOT, "BENCH_parallel.json")

#: (n, Delta) grid; each point fans out JOBS_PER_POINT seeded jobs.  The
#: last point is the large-n acceptance entry: sparse, so the shared-memory
#: plane (not graph generation) dominates the fan-out cost.
GRID = (
    (2000, 16),
    (8000, 32),
    (20000, 64),
    (100000, 8),
)

SMOKE_GRID = ((300, 8),)

JOBS_PER_POINT = 4
WORKERS = 4

#: Cache headroom for the bench: the largest grid point holds four ~145 MB
#: graphs at once, beyond the 512 MiB default byte budget.
_CACHE_ENV = {
    "REPRO_GRAPH_CACHE_SIZE": "16",
    "REPRO_GRAPH_CACHE_BYTES": str(4 << 30),
}


def _sweep(n, delta, jobs=JOBS_PER_POINT):
    """The job list for one grid point: ``jobs`` seeds of cor36 at (n, Delta)."""
    return sweep_specs([n], [delta], list(range(1, jobs + 1)))


def _deterministic_view(outcome):
    """The machine-independent part of one outcome (drops wall times)."""
    data = outcome.to_dict()
    data.pop("seconds", None)
    return data


def run_grid(grid=GRID):
    """Measure every grid point warm; returns the list of result dicts."""
    for key, value in _CACHE_ENV.items():
        os.environ.setdefault(key, value)
    entries = []
    with JobRunner(workers=WORKERS) as runner:
        # Fork and import-warm the pool once, outside every timing window.
        warmup = _sweep(*SMOKE_GRID[0], jobs=2)
        runner.map_jobs(warmup)
        for n, delta in grid:
            specs = _sweep(n, delta)
            # Prewarm the parent graph cache: the sequential pass then reads
            # it directly and the parallel pass exports the cached CSR arrays
            # through the shm plane, so neither phase times graph generation.
            for spec in specs:
                build_graph(spec.graph)
            start = time.perf_counter()
            sequential = run_many(specs, workers=1)
            sequential_elapsed = time.perf_counter() - start
            start = time.perf_counter()
            parallel = runner.map_jobs(specs)
            parallel_elapsed = time.perf_counter() - start
            assert all(o.ok for o in sequential), [
                o.error for o in sequential if not o.ok
            ]
            assert [_deterministic_view(o) for o in parallel] == [
                _deterministic_view(o) for o in sequential
            ], "parallel outcomes must be bit-identical to sequential"
            entries.append(
                {
                    "n": n,
                    "delta": delta,
                    "jobs": len(specs),
                    "workers": WORKERS,
                    "cpus": os.cpu_count() or 1,
                    # The speedup below is only meaningful with this many
                    # real cores; check_regression.py skips the speedup
                    # assertion (and says so) on narrower machines.
                    "min_cpus": WORKERS,
                    "rounds": [o.rounds for o in sequential],
                    "num_colors": [o.num_colors for o in sequential],
                    "sequential_seconds": round(sequential_elapsed, 6),
                    "parallel_seconds": round(parallel_elapsed, 6),
                    "speedup": round(
                        sequential_elapsed / max(parallel_elapsed, 1e-9), 2
                    ),
                }
            )
    return entries


def write_results(entries):
    """Persist BENCH_parallel.json (repo root) and the human-readable table."""
    payload = {
        "benchmark": "parallel-runner",
        "sweep": "cor36 on random_regular, %d seeded jobs per grid point"
        % JOBS_PER_POINT,
        "units": {
            "seconds": "wall clock for the whole sweep (warm pool, warm graph cache)",
            "speedup": "sequential/parallel at %d workers" % WORKERS,
        },
        "cpus": os.cpu_count() or 1,
        "entries": entries,
    }
    with open(JSON_PATH, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    rows = [
        (
            e["n"],
            e["delta"],
            e["jobs"],
            e["workers"],
            e["cpus"],
            round(e["sequential_seconds"] * 1000, 1),
            round(e["parallel_seconds"] * 1000, 1),
            "%.2fx" % e["speedup"],
        )
        for e in entries
    ]
    report(
        "E-PARALLEL",
        "Sequential vs %d-worker sharded sweep (cor36, %d jobs per point, warm)"
        % (WORKERS, JOBS_PER_POINT),
        ("n", "Delta", "jobs", "workers", "cpus", "seq ms", "par ms", "speedup"),
        rows,
        notes="BENCH_parallel.json at the repo root carries the same data "
        "machine-readably; the speedup column scales with each entry's own "
        "core count (cpus column) — a 1-cpu container honestly reports <=1x, "
        "and the regression gate skips speedup comparisons across machines "
        "of different widths.",
    )
    return payload


def run_smoke():
    """Tiny parity pass for CI: two jobs, two workers, no files written.

    Works with or without NumPy and multiprocessing — the runner degrades to
    inline execution, and the bit-identity assertion is the point.
    """
    for n, delta in SMOKE_GRID:
        specs = _sweep(n, delta, jobs=2)
        sequential = run_many(specs, workers=1)
        parallel = run_many(specs, workers=2)
        assert all(o.ok for o in sequential), [o.error for o in sequential]
        assert [_deterministic_view(o) for o in parallel] == [
            _deterministic_view(o) for o in sequential
        ]
        print(
            "smoke: %d-job sweep identical sequential vs sharded at n=%d" % (len(specs), n)
        )


def test_parallel_throughput_grid():
    """Full-grid run: writes the baseline, gates scale when cores exist."""
    entries = run_grid()
    write_results(entries)
    big = [e for e in entries if e["n"] >= 100000]
    assert big, "grid must include the n>=100000 acceptance point"
    if (os.cpu_count() or 1) >= WORKERS:
        # With a warm pool and warm graph cache, sharding pure compute
        # across real cores must beat inline execution on every
        # non-trivial point.
        for entry in entries:
            if entry["n"] >= 8000:
                assert entry["speedup"] > 1.0, entry


if __name__ == "__main__":
    if "--smoke" in sys.argv[1:]:
        run_smoke()
        raise SystemExit(0)
    write_results(run_grid())
