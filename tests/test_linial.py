"""Tests for the Linial family: the plan, the step, the stage, Cole–Vishkin."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import is_proper_coloring
from repro.graphgen import cycle_graph, gnp_graph, path_graph, random_regular
from repro.linial import (
    LinialColoring,
    cole_vishkin_three_coloring,
    linial_next_color,
    linial_plan,
)
from repro.linial.plan import integer_root_ceiling
from repro.mathutil import is_prime, log_star
from repro.runtime import ColoringEngine, Visibility
from tests.conftest import assert_proper, id_coloring


class TestIntegerRoot:
    @given(
        st.integers(min_value=1, max_value=10 ** 12),
        st.integers(min_value=1, max_value=10),
    )
    @settings(max_examples=100)
    def test_minimal_root(self, m, k):
        r = integer_root_ceiling(m, k)
        assert r ** k >= m
        assert r == 1 or (r - 1) ** k < m


class TestPlan:
    def test_plan_parameters_sound(self):
        for m, delta in [(10 ** 6, 10), (500, 4), (10 ** 9, 3), (100, 50)]:
            plan = linial_plan(m, delta)
            current = m
            for it in plan:
                assert is_prime(it.q)
                assert it.q ** (it.degree + 1) >= current  # injective encoding
                assert it.q >= it.degree * delta + 1  # conflict-free point exists
                assert it.out_palette < current  # progress
                current = it.out_palette

    def test_fixpoint_is_o_delta_squared(self):
        for delta in (2, 5, 10, 30):
            plan = linial_plan(10 ** 7, delta)
            assert plan[-1].out_palette <= 40 * (delta + 1) ** 2

    def test_length_tracks_log_star(self):
        delta = 4
        for exponent in (2, 4, 8):
            m = 10 ** exponent
            plan = linial_plan(m, delta)
            assert len(plan) <= log_star(m) + 4

    def test_already_small_palette_gives_empty_plan(self):
        assert linial_plan(10, 10) == []

    def test_plan_is_memoized(self):
        from repro.linial.plan import _plan_cached

        _plan_cached.cache_clear()
        first = linial_plan(10 ** 6, 10)
        before = _plan_cached.cache_info()
        second = linial_plan(10 ** 6, 10)
        after = _plan_cached.cache_info()
        assert after.hits == before.hits + 1
        # Fresh list per call (callers may extend it), shared iteration
        # objects underneath (the primality search ran once).
        assert first is not second
        assert all(a is b for a, b in zip(first, second))

    def test_plan_copies_are_independent(self):
        first = linial_plan(10 ** 4, 5)
        first.append("sentinel")
        assert "sentinel" not in linial_plan(10 ** 4, 5)


class TestStep:
    def test_distinct_from_neighbors(self):
        q, d = 11, 1
        mine = linial_next_color(5, [7, 9, 3], q, d)
        for c in (7, 9, 3):
            assert mine != linial_next_color(c, [5], q, d) or True  # sanity only
        assert 0 <= mine < q * q

    def test_pairwise_consistency(self):
        """Simultaneous application on a clique of colors stays proper."""
        q, d = 13, 1
        colors = [0, 1, 2, 3, 4]
        new = [
            linial_next_color(c, [x for x in colors if x != c], q, d) for c in colors
        ]
        assert len(set(new)) == len(new)

    def test_forbidden_colors_avoided(self):
        q, d = 13, 1
        unrestricted = linial_next_color(5, [7], q, d)
        restricted = linial_next_color(5, [7], q, d, forbidden=frozenset([unrestricted]))
        assert restricted != unrestricted

    def test_undersized_field_raises(self):
        # Degree-1 polynomials, 3 neighbors pinning every point of GF(2).
        with pytest.raises(ValueError):
            linial_next_color(0, [1, 2, 3], 2, 1)


class TestLinialStage:
    def test_reduces_large_id_space(self):
        # Large ID space, small Delta: the log* regime.
        graph = cycle_graph(64)
        ids = [v * 9973 + 17 for v in range(graph.n)]  # sparse IDs
        m = max(ids) + 1
        engine = ColoringEngine(graph, check_proper_each_round=True)
        stage = LinialColoring()
        result = engine.run(stage, ids, in_palette_size=m)
        assert_proper(graph, result.int_colors, "Linial output")
        assert stage.out_palette_size <= 40 * (graph.max_degree + 1) ** 2
        assert result.rounds_used <= log_star(m) + 4

    @pytest.mark.parametrize(
        "graph",
        [path_graph(40), gnp_graph(50, 0.1, seed=1), random_regular(48, 4, seed=2)],
        ids=["path", "gnp", "regular"],
    )
    def test_proper_every_round(self, graph):
        engine = ColoringEngine(graph, check_proper_each_round=True)
        stage = LinialColoring()
        result = engine.run(stage, id_coloring(graph))
        assert is_proper_coloring(graph, result.int_colors)

    def test_works_in_set_local(self):
        graph = gnp_graph(40, 0.1, seed=3)
        a = ColoringEngine(graph, visibility=Visibility.LOCAL).run(
            LinialColoring(), id_coloring(graph)
        )
        b = ColoringEngine(graph, visibility=Visibility.SET_LOCAL).run(
            LinialColoring(), id_coloring(graph)
        )
        assert a.int_colors == b.int_colors

    @given(st.integers(min_value=0, max_value=10 ** 6))
    @settings(max_examples=20, deadline=None)
    def test_random_graphs(self, seed):
        rng = random.Random(seed)
        n = rng.randint(2, 35)
        graph = gnp_graph(n, rng.uniform(0, 0.25), seed=seed)
        engine = ColoringEngine(graph, check_proper_each_round=True)
        stage = LinialColoring()
        result = engine.run(stage, id_coloring(graph))
        assert is_proper_coloring(graph, result.int_colors)
        assert max(result.int_colors) < stage.out_palette_size


def path_pseudoforest(n):
    """Nodes 0..n-1 in a path; parent = next node, last is a root."""
    return [i + 1 if i + 1 < n else None for i in range(n)]


def cycle_pseudoforest(n):
    return [(i + 1) % n for i in range(n)]


class TestColeVishkin:
    def _assert_proper(self, parents, colors):
        for v, parent in enumerate(parents):
            if parent is not None and parent != v:
                assert colors[v] != colors[parent], (v, parent, colors)

    def test_path(self):
        parents = path_pseudoforest(50)
        colors, rounds = cole_vishkin_three_coloring(parents, range(50), 50)
        assert set(colors) <= {0, 1, 2}
        self._assert_proper(parents, colors)

    def test_cycle(self):
        parents = cycle_pseudoforest(33)
        colors, rounds = cole_vishkin_three_coloring(parents, range(33), 33)
        assert set(colors) <= {0, 1, 2}
        self._assert_proper(parents, colors)

    def test_two_cycle(self):
        parents = [1, 0]
        colors, _ = cole_vishkin_three_coloring(parents, [0, 1], 2)
        assert colors[0] != colors[1]

    def test_singleton(self):
        colors, _ = cole_vishkin_three_coloring([None], [0], 1)
        assert colors[0] in (0, 1, 2)

    def test_empty(self):
        assert cole_vishkin_three_coloring([], [], 0) == ([], 0)

    def test_rounds_are_log_star(self):
        n = 10 ** 4
        parents = path_pseudoforest(n)
        _, rounds = cole_vishkin_three_coloring(parents, range(n), n)
        assert rounds <= log_star(n) + 10

    def test_sparse_labels(self):
        n = 40
        labels = [v * 123457 for v in range(n)]
        parents = cycle_pseudoforest(n)
        colors, _ = cole_vishkin_three_coloring(parents, labels, max(labels) + 1)
        self._assert_proper(parents, colors)
        assert set(colors) <= {0, 1, 2}

    @given(st.integers(min_value=0, max_value=10 ** 6))
    @settings(max_examples=30, deadline=None)
    def test_random_path_cycle_mixes(self, seed):
        rng = random.Random(seed)
        parents = []
        offset = 0
        # Build a disjoint union of random paths and cycles.
        for _ in range(rng.randint(1, 4)):
            size = rng.randint(1, 12)
            if rng.random() < 0.5 or size < 3:
                parents.extend(
                    offset + i + 1 if i + 1 < size else None for i in range(size)
                )
            else:
                parents.extend(offset + ((i + 1) % size) for i in range(size))
            offset += size
        n = len(parents)
        labels = rng.sample(range(10 * n + 10), n)
        colors, _ = cole_vishkin_three_coloring(parents, labels, 10 * n + 10)
        assert set(colors) <= {0, 1, 2}
        self._assert_proper(parents, colors)
