"""Tests for the O(1)-words self-stabilizing coloring variant."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lowmem.workspace import WorkspaceOverflowError, bits_for_range
from repro.selfstab import FaultCampaign, SelfStabColoring, SelfStabEngine
from repro.selfstab.lowmem import SelfStabColoringConstantMemory
from tests.test_selfstab_coloring import build_dynamic


class TestEquivalence:
    @given(st.integers(min_value=0, max_value=10 ** 6))
    @settings(max_examples=25, deadline=None)
    def test_transition_bit_identical_to_reference(self, seed):
        """Same inputs -> same outputs as the plain SelfStabColoring."""
        rng = random.Random(seed)
        n, delta = 40, 5
        reference = SelfStabColoring(n, delta)
        lowmem = SelfStabColoringConstantMemory(n, delta)
        total = reference.plan.total_size
        for _ in range(12):
            vertex = rng.randrange(n)
            # Random mix of valid colors and garbage.
            def rand_color():
                if rng.random() < 0.15:
                    return rng.choice([-3, total + 17, 10 ** 12])
                return rng.randrange(total)

            ram = rand_color()
            neighborhood = tuple(rand_color() for _ in range(rng.randint(0, delta)))
            assert reference.transition(
                vertex, ram, neighborhood
            ) == lowmem.transition(vertex, ram, neighborhood)

    def test_full_runs_agree(self):
        g1 = build_dynamic(30, 5, 0.2, seed=31)
        g2 = build_dynamic(30, 5, 0.2, seed=31)
        e1 = SelfStabEngine(g1, SelfStabColoring(30, 5))
        e2 = SelfStabEngine(g2, SelfStabColoringConstantMemory(30, 5))
        r1 = e1.run_to_quiescence()
        r2 = e2.run_to_quiescence()
        assert r1 == r2
        assert e1.rams == e2.rams


class TestMemoryBound:
    def test_peak_words_constant_across_sizes(self):
        peaks = []
        for n, delta, seed in [(20, 3, 1), (60, 6, 2), (120, 8, 3)]:
            g = build_dynamic(n, delta, 0.15, seed=seed)
            algorithm = SelfStabColoringConstantMemory(n, delta)
            engine = SelfStabEngine(g, algorithm)
            engine.run_to_quiescence()
            campaign = FaultCampaign(seed=seed)
            campaign.corrupt_random_rams(engine, n // 2)
            engine.run_to_quiescence()
            peaks.append(algorithm.peak_words)
        assert max(peaks) <= 10
        assert max(peaks) - min(peaks) <= 4

    def test_budget_enforcement_live(self):
        g = build_dynamic(20, 4, 0.2, seed=4)
        algorithm = SelfStabColoringConstantMemory(20, 4, bit_limit=2)
        engine = SelfStabEngine(g, algorithm)
        with pytest.raises(WorkspaceOverflowError):
            engine.step()

    def test_generous_budget_suffices(self):
        g = build_dynamic(24, 4, 0.2, seed=5)
        word = bits_for_range(24)
        algorithm = SelfStabColoringConstantMemory(24, 4, bit_limit=12 * word)
        engine = SelfStabEngine(g, algorithm)
        engine.run_to_quiescence()
        assert engine.is_legal()


class TestStabilization:
    def test_recovers_like_the_reference(self):
        g = build_dynamic(30, 5, 0.2, seed=6)
        algorithm = SelfStabColoringConstantMemory(30, 5)
        engine = SelfStabEngine(g, algorithm)
        engine.run_to_quiescence()
        campaign = FaultCampaign(seed=7)
        for _ in range(2):
            campaign.corrupt_random_rams(engine, 12)
            rounds = engine.run_to_quiescence()
            assert engine.is_legal()
            assert rounds <= algorithm.stabilization_bound()


class TestExactConstantMemory:
    @given(st.integers(min_value=0, max_value=10 ** 6))
    @settings(max_examples=25, deadline=None)
    def test_transition_bit_identical_to_reference(self, seed):
        from repro.selfstab import SelfStabExactColoring
        from repro.selfstab.lowmem import SelfStabExactColoringConstantMemory

        rng = random.Random(seed)
        n, delta = 40, 5
        reference = SelfStabExactColoring(n, delta)
        lowmem = SelfStabExactColoringConstantMemory(n, delta)
        total = reference.plan.total_size
        for _ in range(10):
            vertex = rng.randrange(n)

            def rand_color():
                if rng.random() < 0.15:
                    return rng.choice([-3, total + 17, 10 ** 12])
                return rng.randrange(total)

            ram = rand_color()
            neighborhood = tuple(rand_color() for _ in range(rng.randint(0, delta)))
            assert reference.transition(
                vertex, ram, neighborhood
            ) == lowmem.transition(vertex, ram, neighborhood)

    def test_exact_runs_agree_and_constant_memory(self):
        from repro.selfstab import SelfStabExactColoring
        from repro.selfstab.lowmem import SelfStabExactColoringConstantMemory

        peaks = []
        for n, delta, seed in [(20, 3, 41), (60, 6, 42)]:
            g1 = build_dynamic(n, delta, 0.2, seed=seed)
            g2 = build_dynamic(n, delta, 0.2, seed=seed)
            e1 = SelfStabEngine(g1, SelfStabExactColoring(n, delta))
            algo2 = SelfStabExactColoringConstantMemory(n, delta)
            e2 = SelfStabEngine(g2, algo2)
            assert e1.run_to_quiescence() == e2.run_to_quiescence()
            assert e1.rams == e2.rams
            campaign = FaultCampaign(seed)
            campaign.corrupt_random_rams(e2, n // 2)
            e2.run_to_quiescence()
            assert e2.is_legal()
            peaks.append(algo2.peak_words)
        assert max(peaks) <= 10


class TestMISConstantMemory:
    @given(st.integers(min_value=0, max_value=10 ** 6))
    @settings(max_examples=20, deadline=None)
    def test_transition_bit_identical_to_reference(self, seed):
        from repro.selfstab import SelfStabMIS
        from repro.selfstab.lowmem import SelfStabMISConstantMemory

        rng = random.Random(seed)
        n, delta = 30, 4
        reference = SelfStabMIS(n, delta)
        lowmem = SelfStabMISConstantMemory(n, delta)
        total = reference.coloring.plan.total_size
        statuses = ["MIS", "NOTMIS", "UND", "garbage"]

        def rand_ram():
            color = rng.randrange(total) if rng.random() > 0.1 else ("x",)
            if rng.random() < 0.1:
                return color  # malformed (not a pair)
            return (color, rng.choice(statuses))

        for _ in range(10):
            vertex = rng.randrange(n)
            ram = rand_ram()
            neighborhood = tuple(rand_ram() for _ in range(rng.randint(0, delta)))
            assert reference.transition(
                vertex, ram, neighborhood
            ) == lowmem.transition(vertex, ram, neighborhood)

    def test_full_mis_run_agrees_with_constant_memory(self):
        from repro.selfstab import SelfStabMIS
        from repro.selfstab.lowmem import SelfStabMISConstantMemory

        g1 = build_dynamic(24, 4, 0.2, seed=51)
        g2 = build_dynamic(24, 4, 0.2, seed=51)
        e1 = SelfStabEngine(g1, SelfStabMIS(24, 4))
        algo2 = SelfStabMISConstantMemory(24, 4)
        e2 = SelfStabEngine(g2, algo2)
        assert e1.run_to_quiescence() == e2.run_to_quiescence()
        assert e1.rams == e2.rams
        assert algo2.peak_words <= 10
