"""The out-of-core shard store and streaming writers.

The two load-bearing properties: **bit-identity** — the streaming writers
emit exactly the CSR the in-memory generators build, including the
repair-loop tail of ``random_regular`` — and **self-containment** — each
shard's localized CSR plus its halo table reconstructs the global adjacency
exactly.
"""

import json
import os
import tempfile

import pytest

from repro.graphgen import gnp_graph, random_regular
from repro.oocore.store import (
    MemoryBudgetError,
    PlaneStore,
    ShardedCSRGraph,
    default_shards,
    parse_bytes,
    partition_ranges,
)
from repro.oocore.writers import (
    ensure_sharded,
    shard_static_graph,
    write_gnp,
    write_random_regular,
)
from repro.runtime.csr import numpy_available

pytestmark = pytest.mark.skipif(
    not numpy_available(), reason="the out-of-core tier needs NumPy"
)


def _tmp():
    return tempfile.mkdtemp(prefix="oocore-test-")


def _assert_same_csr(graph, sharded):
    import numpy as np

    csr = graph.csr()
    assert sharded.n == graph.n
    assert sharded.m == graph.m
    assert sharded.max_degree == graph.max_degree
    assert np.array_equal(np.array(sharded._indptr_memmap()), csr.indptr)
    assert np.array_equal(np.array(sharded._indices_memmap()), csr.indices)


class TestParseBytes:
    def test_suffixes(self):
        assert parse_bytes("512") == 512
        assert parse_bytes("2K") == 2048
        assert parse_bytes("3M") == 3 << 20
        assert parse_bytes("1.5G") == int(1.5 * (1 << 30))
        assert parse_bytes(42) == 42

    def test_garbage_raises(self):
        with pytest.raises(ValueError):
            parse_bytes("lots")


class TestPartitionRanges:
    def test_covers_and_partitions(self):
        import numpy as np

        degrees = [0, 5, 1, 9, 2, 2, 7, 0, 3, 1]
        indptr = np.concatenate([[0], np.cumsum(degrees)])
        for shards in (1, 2, 3, 4, 10, 99):
            ranges = partition_ranges(np, indptr, 10, shards)
            # Contiguous, disjoint, covering [0, n).
            assert ranges[0][0] == 0
            assert ranges[-1][1] == 10
            for (a, b), (c, d) in zip(ranges, ranges[1:]):
                assert b == c
                assert a < b and c < d

    def test_empty_graph(self):
        import numpy as np

        assert partition_ranges(np, np.zeros(1, dtype=np.int64), 0, 4) == [(0, 0)]


class TestStreamingWriters:
    @pytest.mark.parametrize(
        "n,d,seed",
        [(40, 3, 1), (12, 6, 7), (30, 4, 42), (10, 9, 0), (8, 0, 3),
         (25, 2, 11), (50, 7, 5)],
    )
    def test_random_regular_bit_identical(self, n, d, seed):
        # n=12, d=6 and friends exercise the defect-repair loop heavily; the
        # writer replays the generator's RNG consumption exactly.
        graph = random_regular(n, d, seed=seed)
        sharded = write_random_regular(_tmp(), n, d, seed, shards=4)
        _assert_same_csr(graph, sharded)

    def test_random_regular_complete_case(self):
        graph = random_regular(6, 5, seed=2)
        sharded = write_random_regular(_tmp(), 6, 5, 2, shards=3)
        _assert_same_csr(graph, sharded)

    @pytest.mark.parametrize(
        "n,p,seed",
        [(50, 0.1, 1), (20, 0.0, 2), (12, 1.0, 3), (64, 0.35, 9), (33, 0.5, 4)],
    )
    def test_gnp_bit_identical(self, n, p, seed):
        graph = gnp_graph(n, p, seed=seed)
        sharded = write_gnp(_tmp(), n, p, seed, shards=4)
        _assert_same_csr(graph, sharded)

    def test_invalid_parameters_match_generator_errors(self):
        with pytest.raises(ValueError):
            write_random_regular(_tmp(), 5, 3, 1)  # n * d odd
        with pytest.raises(ValueError):
            write_random_regular(_tmp(), 4, 4, 1)  # d >= n
        # gnp_graph accepts any p (clamped by the comparison); the writer
        # must mirror that, not add validation of its own.
        _assert_same_csr(gnp_graph(10, 1.5, seed=1), write_gnp(_tmp(), 10, 1.5, 1))

    def test_shard_static_graph(self):
        graph = random_regular(30, 4, seed=8)
        sharded = shard_static_graph(graph, _tmp(), shards=3)
        _assert_same_csr(graph, sharded)


class TestShardLocalization:
    def test_local_csr_reconstructs_global_adjacency(self):
        import numpy as np

        graph = random_regular(48, 5, seed=6)
        sharded = shard_static_graph(graph, _tmp(), shards=5)
        seen = {}
        for shard_id in range(sharded.shards):
            local = sharded.local(shard_id)
            k, h = local.k, local.halo.shape[0]
            csr = local.csr()
            assert csr.n == k + h
            # Halo rows have no slots of their own.
            assert int(local.indptr_local[-1]) == int(local.indptr_local[k])
            # De-localizing every slot must give back the global neighbor.
            table = np.concatenate([
                np.arange(local.lo, local.hi, dtype=np.int64), local.halo
            ])
            globals_back = table[local.lindices]
            assert np.array_equal(globals_back, local.global_indices())
            for row in range(k):
                v = local.lo + row
                a, b = int(local.indptr_local[row]), int(local.indptr_local[row + 1])
                seen[v] = tuple(int(x) for x in globals_back[a:b])
        for v in range(graph.n):
            assert seen[v] == tuple(graph.neighbors(v))

    def test_halo_is_sorted_unique_out_of_range(self):
        import numpy as np

        sharded = shard_static_graph(random_regular(40, 6, seed=3), _tmp(), shards=4)
        for shard_id in range(sharded.shards):
            local = sharded.local(shard_id)
            halo = local.halo
            assert np.array_equal(halo, np.unique(halo))
            assert not ((halo >= local.lo) & (halo < local.hi)).any()

    def test_forward_mask_uses_global_order(self):
        # The local CSR's own forward mask is wrong for global semantics
        # (halo local ids always exceed owned ids); every consumer must go
        # through global_indices()/owner_globals().  Each global forward
        # edge appears exactly once across all shards.
        sharded = shard_static_graph(random_regular(36, 5, seed=9), _tmp(), shards=4)
        forward = set()
        for shard_id in range(sharded.shards):
            local = sharded.local(shard_id)
            fwd = local.global_indices() > local.owner_globals()
            rows = local.owner_globals()[fwd]
            nbrs = local.global_indices()[fwd]
            for u, v in zip(rows.tolist(), nbrs.tolist()):
                assert u < v
                assert (u, v) not in forward
                forward.add((u, v))
        assert len(forward) == sharded.m

    def test_edges_property_matches_static_graph(self):
        graph = random_regular(30, 4, seed=12)
        sharded = shard_static_graph(graph, _tmp(), shards=3)
        assert sorted(sharded.edges) == sorted(
            (min(u, v), max(u, v)) for u, v in graph.edges
        )


class TestShardedGraphFormat:
    def test_open_round_trip(self):
        path = _tmp()
        write_random_regular(path, 24, 3, seed=4, shards=3)
        reopened = ShardedCSRGraph.open(path)
        graph = random_regular(24, 3, seed=4)
        _assert_same_csr(graph, reopened)
        assert reopened.shards >= 1
        assert reopened.total_halo() == reopened.halo_offsets[-1]

    def test_open_rejects_format_mismatch(self):
        path = _tmp()
        write_random_regular(path, 10, 3, seed=1, shards=2)
        meta = json.load(open(os.path.join(path, "meta.json")))
        meta["format"] = 999
        with open(os.path.join(path, "meta.json"), "w") as handle:
            json.dump(meta, handle)
        with pytest.raises(ValueError):
            ShardedCSRGraph.open(path)

    def test_static_graph_queries(self):
        graph = random_regular(20, 4, seed=2)
        sharded = shard_static_graph(graph, _tmp(), shards=2)
        assert list(sharded.vertices()) == list(range(20))
        for v in (0, 7, 19):
            assert sharded.degree(v) == graph.degree(v)
            assert sharded.neighbors(v) == tuple(graph.neighbors(v))

    def test_default_shards_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_OOCORE_SHARDS", "7")
        assert default_shards(1000, 5000) == 7
        monkeypatch.delenv("REPRO_OOCORE_SHARDS")
        assert default_shards(100, 200) == 1


class TestEnsureSharded:
    def test_disk_cache_hits(self, monkeypatch):
        root = _tmp()
        monkeypatch.setenv("REPRO_OOCORE_DIR", root)
        spec = {"family": "regular", "n": 30, "degree": 4, "seed": 5}
        first = ensure_sharded(spec, shards=3)
        second = ensure_sharded(spec, shards=3)
        assert first.path == second.path
        _assert_same_csr(random_regular(30, 4, seed=5), second)

    def test_distinct_specs_distinct_dirs(self, monkeypatch):
        monkeypatch.setenv("REPRO_OOCORE_DIR", _tmp())
        a = ensure_sharded({"family": "regular", "n": 30, "degree": 4, "seed": 5})
        b = ensure_sharded({"family": "regular", "n": 30, "degree": 4, "seed": 6})
        assert a.path != b.path

    def test_non_streaming_family_falls_back(self, monkeypatch):
        monkeypatch.setenv("REPRO_OOCORE_DIR", _tmp())
        from repro.graphgen import cycle_graph

        sharded = ensure_sharded({"family": "cycle", "n": 12}, shards=2)
        _assert_same_csr(cycle_graph(12), sharded)


class TestPlaneStore:
    def test_double_buffer_round_trip(self):
        import numpy as np

        store = PlaneStore(_tmp(), 10, 2)
        store.view(0, 0)[:] = np.arange(10)
        store.view(1, 1)[:] = np.arange(10) * 2
        assert np.array_equal(store.view(0, 0), np.arange(10))
        assert len(store.buffer(0)) == 2
        store.release_resident()  # must not lose data
        assert np.array_equal(store.view(1, 1), np.arange(10) * 2)
        paths = [p for row in store.paths for p in row]
        assert all(os.path.exists(p) for p in paths)
        store.close()
        assert not any(os.path.exists(p) for p in paths)

    def test_empty_plane(self):
        store = PlaneStore(_tmp(), 0, 3)
        assert store.view(0, 2).shape == (0,)
        store.close()


class TestMemoryBudget:
    def test_budget_error_type(self):
        assert issubclass(MemoryBudgetError, RuntimeError)
