"""Backend registry, shared result protocol, deprecation shims, obs.absorb."""

import pytest

from repro import graphgen, obs
from repro.obs.core import Histogram, Telemetry
from repro.runtime.backends import (
    BACKEND_KINDS,
    backend_names,
    register_backend,
    resolve_backend,
)
from repro.runtime.csr import numpy_available
from repro.runtime.engine import ColoringEngine
from repro.runtime.results import Result, is_result, summarize


def _graph(n=40, d=4, seed=1):
    return graphgen.random_regular(n, d, seed=seed)


class TestBackendRegistry:
    def test_kinds_and_names(self):
        assert set(BACKEND_KINDS) == {"engine", "selfstab"}
        for kind in BACKEND_KINDS:
            names = backend_names(kind)
            assert names[0] == "auto"
            assert set(names) >= {"auto", "batch", "reference"}

    def test_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown backend kind"):
            backend_names("gpu")
        with pytest.raises(ValueError, match="unknown backend kind"):
            resolve_backend("gpu", "auto")

    def test_unknown_backend_message_is_compatible(self):
        # tests elsewhere match on the "unknown backend" substring; keep it.
        with pytest.raises(ValueError, match="unknown backend"):
            resolve_backend("engine", "cuda")

    def test_reference_engine_construction(self):
        engine = resolve_backend("engine", "reference")(_graph())
        assert type(engine) is ColoringEngine

    def test_batch_requires_numpy(self):
        factory = resolve_backend("engine", "batch")
        if numpy_available():
            from repro.runtime.fast_engine import BatchColoringEngine

            assert isinstance(factory(_graph()), BatchColoringEngine)
        else:
            with pytest.raises(RuntimeError, match="NumPy"):
                factory(_graph())

    def test_selfstab_construction(self):
        from repro.runtime.graph import DynamicGraph
        from repro.selfstab import SelfStabExactColoring

        graph = DynamicGraph.from_static(_graph())
        algorithm = SelfStabExactColoring(graph.n_bound, graph.delta_bound)
        engine = resolve_backend("selfstab", "auto")(graph, algorithm)
        assert engine.run_to_quiescence() >= 0

    def test_register_custom_backend(self):
        sentinel = object()
        register_backend("engine", "custom-test", lambda graph, **kw: sentinel)
        try:
            assert "custom-test" in backend_names("engine")
            assert resolve_backend("engine", "custom-test")(_graph()) is sentinel
        finally:
            from repro.runtime import backends

            backends._FACTORIES.pop(("engine", "custom-test"), None)


class TestDeprecationShims:
    def test_make_engine_shim_is_gone(self):
        # The 2.0 removal promised by the deprecation cycle: the registry is
        # the only construction path now.
        import repro.runtime
        import repro.runtime.fast_engine as fast_engine

        assert not hasattr(fast_engine, "make_engine")
        assert not hasattr(repro.runtime, "make_engine")
        assert "make_engine" not in repro.runtime.__all__

    def test_make_selfstab_engine_shim_is_gone(self):
        import repro.selfstab
        import repro.selfstab.fast_engine as fast_engine

        assert not hasattr(fast_engine, "make_selfstab_engine")
        assert not hasattr(repro.selfstab, "make_selfstab_engine")
        assert "make_selfstab_engine" not in repro.selfstab.__all__

    def test_core_pipeline_reexports_recipes(self):
        import repro.core.pipeline as old
        import repro.recipes as new

        for name in new.__all__:
            assert getattr(old, name) is getattr(new, name)


class TestResultProtocol:
    def test_every_result_class_satisfies_protocol(self):
        from repro.recipes import delta_plus_one_coloring, one_plus_eps_delta_coloring

        graph = _graph()
        pipeline_result = delta_plus_one_coloring(graph)
        sublinear_result = one_plus_eps_delta_coloring(graph)
        engine = resolve_backend("engine", "reference")(graph)
        from repro.core.ag import AdditiveGroupColoring

        run_result = engine.run(AdditiveGroupColoring(), list(range(graph.n)))
        from repro.edge import edge_coloring_congest

        edge_result = edge_coloring_congest(_graph(24, 4))
        for result in (pipeline_result, sublinear_result, run_result, edge_result):
            assert is_result(result)
            assert isinstance(result, Result)
            envelope = summarize(result, detail=True)
            assert envelope["kind"] == type(result).__name__
            assert envelope["rounds"] == result.rounds
            assert envelope["payload"] == result.to_dict()

    def test_lowmem_report_protocol(self):
        from repro.lowmem import delta_plus_one_coloring_low_memory

        report = delta_plus_one_coloring_low_memory(_graph(24, 4))
        assert is_result(report)
        assert summarize(report)["num_colors"] == report.num_colors

    def test_rounds_aliases_agree(self):
        from repro.recipes import delta_plus_one_coloring

        result = delta_plus_one_coloring(_graph())
        assert result.rounds == result.total_rounds

    def test_summarize_rejects_non_results(self):
        with pytest.raises(TypeError, match="does not satisfy the result protocol"):
            summarize((1, 2, 3))
        assert not is_result(object())

    def test_duck_typed_membership(self):
        class Duck:
            colors = [0]
            rounds = 1

            def to_dict(self):
                return {"colors": [0]}

        assert isinstance(Duck(), Result)
        assert summarize(Duck())["rounds"] == 1


class TestAbsorb:
    def test_absorb_events_and_snapshot(self):
        worker = Telemetry(clock=lambda: 0.0)
        worker.counter("engine.runs", 2, backend="batch")
        worker.gauge("selfstab.max_message_bits", 17)
        worker.histogram("span.run", 1.5)
        worker.histogram("span.run", 0.5)
        worker.event("engine.run", stage="ag", rounds=3)
        records = list(worker.events) + [worker.snapshot()]

        parent = Telemetry(clock=lambda: 0.0)
        parent.event("parent.start")
        parent.histogram("span.run", 4.0)
        absorbed = parent.absorb(records, job="j1")
        assert absorbed == len(records)
        stitched = parent.events_of("engine.run")
        assert stitched[0]["job"] == "j1"
        assert stitched[0]["source_seq"] == 0
        assert stitched[0]["seq"] == 1
        assert parent.counter_value("engine.runs", backend="batch") == 2
        agg = parent.histograms[parent._key("span.run", {})]
        assert agg.count == 3
        assert agg.total == 6.0
        assert agg.minimum == 0.5 and agg.maximum == 4.0

    def test_absorb_is_additive_across_workers(self):
        parent = Telemetry(clock=lambda: 0.0)
        for _ in range(3):
            worker = Telemetry(clock=lambda: 0.0)
            worker.counter("parallel.work")
            parent.absorb([worker.snapshot()])
        assert parent.counter_value("parallel.work") == 3

    def test_null_telemetry_absorb_is_noop(self):
        null = obs.core.NullTelemetry()
        assert null.absorb([{"type": "x"}]) == 0

    def test_histogram_merge_from_histogram(self):
        a, b = Histogram(), Histogram()
        a.record(1.0)
        b.record(3.0)
        b.record(5.0)
        a.merge(b)
        assert (a.count, a.total, a.minimum, a.maximum) == (3, 9.0, 1.0, 5.0)
        empty = Histogram()
        a.merge(empty)  # merging an empty aggregate changes nothing
        assert a.count == 3
