"""Tests for the hand-crafted worst-case attack patterns."""

import pytest

from repro.selfstab import (
    SelfStabColoring,
    SelfStabEngine,
    SelfStabExactColoring,
    SelfStabMIS,
)
from repro.selfstab.adversary import TargetedAttacks
from tests.test_selfstab_coloring import build_dynamic, dynamic_path


@pytest.mark.parametrize(
    "factory", [SelfStabColoring, SelfStabExactColoring, SelfStabMIS]
)
class TestAttackRecovery:
    def test_color_theft_chain(self, factory):
        g = dynamic_path(30)
        algorithm = factory(30, 2)
        engine = SelfStabEngine(g, algorithm)
        engine.run_to_quiescence()
        TargetedAttacks.steal_colors_along_path(engine, list(range(5, 25)))
        rounds = engine.run_to_quiescence()
        assert engine.is_legal()
        assert rounds <= algorithm.stabilization_bound()

    def test_clone_everything(self, factory):
        g = build_dynamic(24, 4, 0.2, seed=61)
        algorithm = factory(24, 4)
        engine = SelfStabEngine(g, algorithm)
        engine.run_to_quiescence()
        TargetedAttacks.clone_everything(engine)
        rounds = engine.run_to_quiescence()
        assert engine.is_legal()
        assert rounds <= algorithm.stabilization_bound()

    def test_descent_interruption(self, factory):
        g = build_dynamic(24, 4, 0.2, seed=62)
        algorithm = factory(24, 4)
        engine = SelfStabEngine(g, algorithm)
        victims = g.vertices()[:5]
        TargetedAttacks.descent_interruption(engine, victims, rounds_between=2)
        rounds = engine.run_to_quiescence()
        assert engine.is_legal()
        assert rounds <= algorithm.stabilization_bound()

    def test_isolate_and_reconnect(self, factory):
        g = build_dynamic(24, 4, 0.2, seed=63)
        algorithm = factory(24, 4)
        engine = SelfStabEngine(g, algorithm)
        engine.run_to_quiescence()
        TargetedAttacks.isolate_and_reconnect(engine, g.vertices()[0])
        engine.run_to_quiescence()
        assert engine.is_legal()


class TestAttackScopes:
    def test_theft_chain_does_not_cascade(self):
        """The chain attack cannot propagate past its own footprint + 1."""
        g = dynamic_path(60)
        algorithm = SelfStabColoring(60, 2)
        engine = SelfStabEngine(g, algorithm)
        engine.run_to_quiescence()
        engine.reset_touched()
        victims = TargetedAttacks.steal_colors_along_path(
            engine, list(range(20, 30))
        )
        engine.run_to_quiescence()
        assert engine.adjustment_radius(victims) <= 1

    def test_clone_returns_all_vertices(self):
        g = build_dynamic(10, 3, 0.3, seed=64)
        algorithm = SelfStabColoring(10, 3)
        engine = SelfStabEngine(g, algorithm)
        hit = TargetedAttacks.clone_everything(engine)
        assert set(hit) == set(g.vertices())
        assert len(set(engine.rams.values())) == 1

    def test_empty_graph_attacks_are_noops(self):
        from repro.runtime.graph import DynamicGraph

        g = DynamicGraph(4, 2)
        engine = SelfStabEngine(g, SelfStabColoring(4, 2))
        assert TargetedAttacks.clone_everything(engine) == []
        assert TargetedAttacks.steal_colors_along_path(engine, [0, 1]) == []
        assert TargetedAttacks.isolate_and_reconnect(engine, 0) == []
