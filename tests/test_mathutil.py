"""Unit and property tests for repro.mathutil."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mathutil import (
    GFPolynomial,
    eval_poly_mod,
    int_to_poly_coeffs,
    is_prime,
    log_star,
    next_prime,
    next_prime_at_least,
    primes_up_to,
    tower,
)


class TestLogStar:
    def test_known_values(self):
        assert log_star(1) == 0
        assert log_star(2) == 1
        assert log_star(4) == 2
        assert log_star(16) == 3
        assert log_star(65536) == 4
        assert log_star(65535) == 3  # just below the tower boundary

    def test_tower_inverse(self):
        for height in range(5):
            assert log_star(tower(height)) == height

    def test_monotone_nondecreasing(self):
        values = [log_star(n) for n in range(1, 2000)]
        assert values == sorted(values)

    def test_nonpositive_inputs(self):
        assert log_star(0) == 0
        assert log_star(-5) == 0
        assert log_star(1.5) == 0

    def test_tower_rejects_negative(self):
        with pytest.raises(ValueError):
            tower(-1)

    @given(st.integers(min_value=2, max_value=10 ** 9))
    def test_recurrence(self, n):
        assert log_star(n) == 1 + log_star(math.log2(n))


class TestPrimes:
    def test_small_primes(self):
        assert [p for p in range(30) if is_prime(p)] == [
            2, 3, 5, 7, 11, 13, 17, 19, 23, 29,
        ]

    def test_primes_up_to_matches_is_prime(self):
        assert primes_up_to(500) == [p for p in range(501) if is_prime(p)]

    def test_primes_up_to_edge_cases(self):
        assert primes_up_to(1) == []
        assert primes_up_to(2) == [2]

    def test_next_prime_strict(self):
        assert next_prime(2) == 3
        assert next_prime(13) == 17
        assert next_prime(0) == 2
        assert next_prime(-10) == 2

    def test_next_prime_at_least_inclusive(self):
        assert next_prime_at_least(13) == 13
        assert next_prime_at_least(14) == 17
        assert next_prime_at_least(1) == 2

    @given(st.integers(min_value=0, max_value=10 ** 5))
    @settings(max_examples=60)
    def test_next_prime_at_least_is_minimal_prime(self, n):
        p = next_prime_at_least(n)
        assert is_prime(p)
        assert p >= n
        assert not any(is_prime(x) for x in range(max(2, n), p))

    def test_bertrand_postulate_range(self):
        # The AG family relies on a prime in [x, 2x]; spot-check Bertrand.
        for x in range(2, 2000, 37):
            assert next_prime_at_least(x) <= 2 * x


class TestGFPolynomials:
    def test_digit_encoding_roundtrip(self):
        q, degree = 7, 3
        seen = set()
        for value in range(q ** (degree + 1)):
            coeffs = int_to_poly_coeffs(value, degree, q)
            assert len(coeffs) == degree + 1
            assert all(0 <= c < q for c in coeffs)
            assert coeffs not in seen
            seen.add(coeffs)

    def test_encoding_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            int_to_poly_coeffs(27, 2, 3)
        with pytest.raises(ValueError):
            int_to_poly_coeffs(-1, 2, 3)

    def test_eval_matches_naive(self):
        q = 11
        coeffs = (3, 0, 7, 1)
        for x in range(q):
            naive = sum(c * x ** i for i, c in enumerate(coeffs)) % q
            assert eval_poly_mod(coeffs, x, q) == naive

    @given(
        st.integers(min_value=0, max_value=10 ** 4),
        st.integers(min_value=0, max_value=10 ** 4),
    )
    @settings(max_examples=80)
    def test_distinct_polys_agree_on_at_most_degree_points(self, c1, c2):
        q, degree = 23, 2
        c1 %= q ** (degree + 1)
        c2 %= q ** (degree + 1)
        if c1 == c2:
            return
        p1 = GFPolynomial.from_color(c1, degree, q)
        p2 = GFPolynomial.from_color(c2, degree, q)
        agreements = sum(1 for x in range(q) if p1(x) == p2(x))
        assert agreements <= degree

    def test_gfpolynomial_equality_and_hash(self):
        a = GFPolynomial((1, 2, 3), 5)
        b = GFPolynomial((6, 7, 8), 5)  # reduces to (1, 2, 3)
        assert a == b
        assert hash(a) == hash(b)
        assert a != GFPolynomial((1, 2, 3), 7)

    def test_gfpolynomial_degree(self):
        assert GFPolynomial.from_color(12, 3, 5).degree == 3
