"""Unit tests for the Mod-Linial interval plan (repro.selfstab.plan)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.selfstab.plan import IntervalPlan


def make_plan(n_bound=100, delta_bound=5):
    q = IntervalPlan.landing_field_for(delta_bound, 10 ** 6, 2 * delta_bound + 1)
    # Use a generous landing field so construction always succeeds.
    from repro.selfstab.coloring import SelfStabColoring

    return SelfStabColoring(n_bound, delta_bound).plan


class TestLayout:
    def test_intervals_partition_the_range(self):
        plan = make_plan()
        assert plan.offsets[0] == 0
        for j in range(1, plan.levels):
            assert plan.offsets[j] == plan.offsets[j - 1] + plan.sizes[j - 1]
        assert plan.total_size == plan.offsets[-1] + plan.sizes[-1]

    def test_level_of_boundaries(self):
        plan = make_plan()
        for j in range(plan.levels):
            assert plan.level_of(plan.offsets[j]) == j
            assert plan.level_of(plan.offsets[j] + plan.sizes[j] - 1) == j

    def test_level_of_invalid_values(self):
        plan = make_plan()
        assert plan.level_of(-1) is None
        assert plan.level_of(plan.total_size) is None
        assert plan.level_of("junk") is None
        assert plan.level_of(None) is None
        assert plan.level_of(3.5) is None

    def test_id_slots_are_top_interval(self):
        plan = make_plan(n_bound=50)
        for vertex in (0, 25, 49):
            color = plan.reset_color(vertex)
            assert plan.level_of(color) == plan.levels - 1
            level, local = plan.to_local(color)
            assert local == vertex

    def test_to_global_validates_range(self):
        plan = make_plan()
        with pytest.raises(ValueError):
            plan.to_global(0, plan.sizes[0])
        with pytest.raises(ValueError):
            plan.to_global(1, -1)

    def test_round_trip(self):
        plan = make_plan()
        for j in range(plan.levels):
            for local in (0, plan.sizes[j] // 2, plan.sizes[j] - 1):
                color = plan.to_global(j, local)
                assert plan.to_local(color) == (j, local)


class TestDescentChain:
    def test_iteration_palettes_chain(self):
        plan = make_plan(n_bound=10 ** 5, delta_bound=4)
        for level in range(2, plan.levels):
            iteration = plan.descent_iteration(level)
            assert iteration.in_palette == plan.sizes[level]
            assert iteration.out_palette == plan.sizes[level - 1]

    def test_no_descent_for_core_levels(self):
        plan = make_plan()
        with pytest.raises(ValueError):
            plan.descent_iteration(0)
        with pytest.raises(ValueError):
            plan.descent_iteration(1)

    def test_levels_track_log_star(self):
        from repro.mathutil import log_star

        small = make_plan(n_bound=64, delta_bound=3)
        large = make_plan(n_bound=10 ** 6, delta_bound=3)
        assert large.levels <= small.levels + log_star(10 ** 6) + 3


class TestLandingValidation:
    def test_undersized_field_rejected(self):
        with pytest.raises(ValueError):
            IntervalPlan(100, 5, core_size=10, landing_q=2, landing_points=100)

    def test_insufficient_points_rejected(self):
        with pytest.raises(ValueError):
            IntervalPlan(100, 5, core_size=10, landing_q=1000, landing_points=3)

    def test_landing_field_for_satisfies_both(self):
        for delta in (1, 4, 9, 20):
            for i1 in (10, 500, 10 ** 5):
                q = IntervalPlan.landing_field_for(delta, i1)
                assert q ** 3 >= i1
                assert q >= 4 * delta + 2


class TestPropertyBased:
    @given(
        st.integers(min_value=2, max_value=3000),
        st.integers(min_value=1, max_value=12),
    )
    @settings(max_examples=40, deadline=None)
    def test_every_color_classifies_uniquely(self, n_bound, delta_bound):
        from repro.selfstab.coloring import SelfStabColoring

        plan = SelfStabColoring(n_bound, delta_bound).plan
        probes = {0, 1, plan.total_size - 1, plan.total_size // 2}
        probes.update(plan.offsets)
        for color in probes:
            level = plan.level_of(color)
            assert level is not None
            assert plan.offsets[level] <= color < plan.offsets[level] + plan.sizes[level]
