"""The sharded job runner: determinism, timeout, retry, fallback, stitching.

The load-bearing property is *bit-identity*: a job is a pure function of its
spec, so sequential and multi-process execution must produce byte-equal
outcomes (wall time aside).  Everything else — per-job timeouts that reclaim
a stuck worker, bounded retries, the inline fallback, telemetry stitched
into the parent stream — is exercised around that invariant.
"""

import time

import pytest

import repro
from repro import obs
from repro.parallel import (
    JobRunner,
    JobSpec,
    build_graph,
    execute_job,
    register_algorithm,
    run_many,
    sweep_specs,
)
from repro.parallel.jobs import _ALGORITHMS
from repro.parallel.runner import _multiprocessing_context
from repro.runtime.csr import numpy_available


def _fork_available():
    context = _multiprocessing_context()
    return context is not None and getattr(context, "get_start_method", lambda: "")() == "fork"


def _specs(count, n=120, degree=6):
    return [
        JobSpec(algorithm="cor36", graph={"family": "regular", "n": n, "degree": degree, "seed": s}, seed=s)
        for s in range(1, count + 1)
    ]


def _deterministic(outcome):
    data = outcome.to_dict()
    data.pop("seconds")
    return data


@pytest.fixture
def scratch_algorithm():
    """Register a throwaway algorithm; unregister afterwards."""
    registered = []

    def add(name, fn):
        register_algorithm(name, fn)
        registered.append(name)
        return fn

    yield add
    for name in registered:
        _ALGORITHMS.pop(name, None)


class TestDeterminism:
    def test_parallel_bit_identical_to_sequential(self):
        if not numpy_available():
            pytest.skip("auto mode falls back to inline without NumPy")
        if not _fork_available():
            pytest.skip("no usable multiprocessing context")
        specs = _specs(6)
        sequential = run_many(specs, workers=1)
        parallel = run_many(specs, workers=4, mode="process")
        assert [_deterministic(o) for o in parallel] == [
            _deterministic(o) for o in sequential
        ]
        assert all(o.ok for o in sequential)

    def test_chunked_dispatch_preserves_order_and_results(self):
        if not numpy_available() or not _fork_available():
            pytest.skip("process mode unavailable")
        specs = _specs(5, n=60, degree=4)
        plain = run_many(specs, workers=2, mode="process")
        chunked = run_many(specs, workers=2, mode="process", chunk_size=2)
        assert [_deterministic(o) for o in plain] == [_deterministic(o) for o in chunked]
        assert [o.spec.seed for o in chunked] == [s.seed for s in specs]

    def test_inline_mode_matches_process_mode(self):
        specs = _specs(3, n=60, degree=4)
        inline = run_many(specs, mode="inline")
        assert all(o.ok for o in inline)
        if numpy_available() and _fork_available():
            process = run_many(specs, workers=2, mode="process")
            assert [_deterministic(o) for o in process] == [
                _deterministic(o) for o in inline
            ]

    def test_outcome_surface(self):
        outcome = repro.run(
            {"algorithm": "cor36", "graph": {"family": "regular", "n": 80, "degree": 6, "seed": 2}, "seed": 2}
        )
        assert outcome.ok
        graph = build_graph({"family": "regular", "n": 80, "degree": 6, "seed": 2})
        assert outcome.num_colors <= graph.max_degree + 1
        assert len(outcome.colors) == 80
        assert outcome.rounds > 0
        assert outcome.attempts == 1
        assert outcome.to_dict()["job"]["seed"] == 2


class TestTimeout:
    def test_stuck_job_times_out_and_pool_recovers(self, scratch_algorithm):
        if not _fork_available():
            pytest.skip("fork start method required to inherit the sleeper")

        def sleeper(graph, backend="auto", seed=1, **params):
            time.sleep(30)

        scratch_algorithm("sleeper", sleeper)
        stuck = JobSpec(algorithm="sleeper", graph={"family": "path", "n": 4})
        fine = JobSpec(algorithm="cor36", graph={"family": "regular", "n": 60, "degree": 4, "seed": 1}, seed=1)
        with JobRunner(workers=2, timeout=0.5, retries=0, mode="process") as runner:
            outcomes = runner.map_jobs([stuck, fine])
            assert not outcomes[0].ok
            assert outcomes[0].timed_out
            assert outcomes[0].error["kind"] == "TimeoutError"
            # The pool was terminated to reclaim the stuck worker; the
            # runner must still finish (and re-run) the undelivered job.
            assert outcomes[1].ok
            # ... and stay usable for the next batch.
            again = runner.submit(fine)
            assert again.ok

    def test_timeout_respects_retry_budget(self, scratch_algorithm):
        if not _fork_available():
            pytest.skip("fork start method required to inherit the sleeper")

        def sleeper(graph, backend="auto", seed=1, **params):
            time.sleep(30)

        scratch_algorithm("sleeper2", sleeper)
        spec = JobSpec(algorithm="sleeper2", graph={"family": "path", "n": 4})
        with JobRunner(workers=2, timeout=0.3, retries=1, mode="process") as runner:
            outcome = runner.submit(spec)
        assert outcome.timed_out
        assert outcome.attempts == 2  # first try + one bounded retry


class TestRetry:
    def test_persistent_failure_is_bounded(self, scratch_algorithm):
        def boom(graph, backend="auto", seed=1, **params):
            raise RuntimeError("always broken")

        scratch_algorithm("boom", boom)
        outcome = repro.run({"algorithm": "boom"}, retries=2)
        assert not outcome.ok
        assert outcome.attempts == 3
        assert outcome.error["kind"] == "RuntimeError"
        assert "always broken" in outcome.error["message"]

    def test_transient_failure_recovers_inline(self, scratch_algorithm):
        calls = {"count": 0}

        def flaky(graph, backend="auto", seed=1, **params):
            calls["count"] += 1
            if calls["count"] == 1:
                raise RuntimeError("transient")
            from repro.recipes import delta_plus_one_coloring

            return delta_plus_one_coloring(graph, backend=backend)

        scratch_algorithm("flaky", flaky)
        outcome = repro.run({"algorithm": "flaky", "graph": {"family": "regular", "n": 60, "degree": 4, "seed": 1}}, retries=1)
        assert outcome.ok
        assert outcome.attempts == 2

    def test_unknown_algorithm_is_an_error_outcome(self):
        outcome = repro.run({"algorithm": "no-such-thing"}, retries=0)
        assert not outcome.ok
        assert outcome.error["kind"] == "ValueError"
        assert "unknown algorithm" in outcome.error["message"]

    def test_unknown_runner_mode_rejected(self):
        with pytest.raises(ValueError, match="unknown runner mode"):
            JobRunner(mode="threads")


class TestTelemetryStitching:
    def test_worker_segments_merge_into_parent_stream(self):
        specs = _specs(3, n=60, degree=4)
        with obs.capture() as tel:
            outcomes = run_many(specs, workers=2)
        assert all(o.ok for o in outcomes)
        job_events = tel.events_of("parallel.job")
        assert [e["job"] for e in job_events] == [s.job_id for s in specs]
        assert tel.counter_value("parallel.jobs", ok=True) == 3
        # Worker-side engine events arrive tagged with their job id and in
        # job order, with fresh parent-local sequence numbers.
        engine_events = tel.events_of("engine.run")
        assert engine_events, "worker telemetry was not stitched"
        assert {e["job"] for e in engine_events} == {s.job_id for s in specs}
        seqs = [e["seq"] for e in tel.events]
        assert seqs == sorted(seqs) == list(range(len(seqs)))
        assert all("source_seq" in e for e in engine_events)

    def test_no_parent_collector_means_no_worker_capture(self):
        envelope = execute_job(_specs(1, n=40, degree=4)[0], collect_telemetry=False)
        assert envelope["ok"]
        assert envelope["telemetry"] == []


class TestSweep:
    def test_sweep_specs_cartesian_product(self):
        specs = sweep_specs([100, 200], [4, 8], [1, 2, 3])
        assert len(specs) == 12
        assert {(s.graph["n"], s.graph["degree"], s.seed) for s in specs} == {
            (n, d, s) for n in (100, 200) for d in (4, 8) for s in (1, 2, 3)
        }

    def test_run_sweep_outcomes(self):
        outcomes = repro.run_sweep([60], [4], [1, 2], workers=2)
        assert len(outcomes) == 2
        assert all(o.ok for o in outcomes)

    def test_selfstab_job(self):
        outcome = repro.run(
            {"algorithm": "selfstab", "graph": {"family": "regular", "n": 24, "degree": 4, "seed": 1}, "seed": 1}
        )
        assert outcome.ok, outcome.error
        assert outcome.summary["payload"]["legal"]
        assert outcome.num_colors <= 5


class TestSpecRoundTrip:
    def test_to_dict_from_dict_identity(self):
        spec = JobSpec(
            algorithm="exact",
            graph={"family": "gnp", "n": 50, "prob": 0.2, "seed": 7},
            backend="reference",
            seed=7,
            params={"check_proper_each_round": True},
            label="my-job",
        )
        clone = JobSpec.from_dict(spec.to_dict())
        assert clone.to_dict() == spec.to_dict()
        assert clone.job_id == "my-job"

    def test_job_id_is_descriptive(self):
        spec = JobSpec(algorithm="cor36", graph={"family": "regular", "n": 99, "degree": 5}, seed=4)
        assert spec.job_id == "cor36-regular-n99-degree5-s4"

    def test_unknown_graph_family(self):
        with pytest.raises(ValueError, match="unknown graph family"):
            build_graph({"family": "mobius"})

    def test_edges_family(self):
        graph = build_graph({"family": "edges", "n": 3, "edges": [(0, 1), (1, 2)]})
        assert graph.n == 3 and graph.m == 2
