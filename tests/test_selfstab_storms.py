"""Fault storms *during* convergence.

The fully-dynamic adversary need not wait for quiescence: faults may hit in
every round, "as soon one after another as one wishes" (Section 1.2.1).
Stabilization time is measured from the *last* fault, so these tests
interleave faults with rounds mid-convergence and only require legality
within the bound after the storm ends.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.selfstab import (
    FaultCampaign,
    SelfStabColoring,
    SelfStabEngine,
    SelfStabExactColoring,
    SelfStabMIS,
)
from tests.test_selfstab_coloring import build_dynamic


def storm_then_stabilize(engine, campaign, rng, storm_rounds):
    """Interleave one fault with every round for ``storm_rounds`` rounds."""
    for _ in range(storm_rounds):
        action = rng.randrange(3)
        if action == 0:
            campaign.corrupt_random_rams(engine, rng.randint(1, 4))
        elif action == 1:
            campaign.churn_edges(engine, removals=1, additions=1)
        else:
            campaign.churn_vertices(engine, crashes=1, spawns=1)
        engine.step()  # the algorithm keeps running under fire
    return engine.run_to_quiescence()


@pytest.mark.parametrize(
    "factory", [SelfStabColoring, SelfStabExactColoring, SelfStabMIS]
)
class TestStormsDuringConvergence:
    def test_per_round_faults_then_recovery(self, factory):
        g = build_dynamic(30, 5, 0.2, seed=21)
        algorithm = factory(30, 5)
        engine = SelfStabEngine(g, algorithm)
        campaign = FaultCampaign(seed=22)
        rng = random.Random(23)
        rounds = storm_then_stabilize(engine, campaign, rng, storm_rounds=20)
        assert engine.is_legal()
        assert rounds <= algorithm.stabilization_bound()

    def test_storm_mid_descent(self, factory):
        """Corrupt while vertices are still descending the Linial intervals."""
        g = build_dynamic(30, 5, 0.2, seed=24)
        algorithm = factory(30, 5)
        engine = SelfStabEngine(g, algorithm)
        campaign = FaultCampaign(seed=25)
        engine.step()  # one round only: mid-descent
        campaign.corrupt_random_rams(engine, 15)
        engine.step()
        campaign.corrupt_random_rams(engine, 15)
        rounds = engine.run_to_quiescence()
        assert engine.is_legal()
        assert rounds <= algorithm.stabilization_bound()

    def test_repeated_catastrophes(self, factory):
        g = build_dynamic(24, 4, 0.22, seed=26)
        algorithm = factory(24, 4)
        engine = SelfStabEngine(g, algorithm)
        for _ in range(3):
            for v in g.vertices():
                engine.corrupt(v, 0 if factory is not SelfStabMIS else (0, "MIS"))
            engine.step()
        rounds = engine.run_to_quiescence()
        assert engine.is_legal()
        assert rounds <= algorithm.stabilization_bound()


class TestStormsPropertyBased:
    @given(st.integers(min_value=0, max_value=10 ** 6))
    @settings(max_examples=10, deadline=None)
    def test_random_interleavings(self, seed):
        rng = random.Random(seed)
        n = rng.randint(8, 24)
        delta = rng.randint(2, 5)
        g = build_dynamic(n, delta, rng.uniform(0.1, 0.3), seed=seed)
        algorithm = SelfStabExactColoring(n, delta)
        engine = SelfStabEngine(g, algorithm)
        campaign = FaultCampaign(seed=seed)
        rounds = storm_then_stabilize(
            engine, campaign, rng, storm_rounds=rng.randint(3, 15)
        )
        assert engine.is_legal()
        assert rounds <= algorithm.stabilization_bound()

    @given(st.integers(min_value=0, max_value=10 ** 6))
    @settings(max_examples=8, deadline=None)
    def test_stabilization_measured_from_last_fault_only(self, seed):
        """Quiescence reached twice: after a storm and after a second storm —
        the second recovery must not depend on the first storm's history."""
        rng = random.Random(seed)
        n = rng.randint(10, 22)
        g = build_dynamic(n, 4, 0.2, seed=seed)
        algorithm = SelfStabColoring(n, 4)
        engine = SelfStabEngine(g, algorithm)
        campaign = FaultCampaign(seed=seed + 1)
        first = storm_then_stabilize(engine, campaign, rng, 6)
        second = storm_then_stabilize(engine, campaign, rng, 6)
        assert engine.is_legal()
        bound = algorithm.stabilization_bound()
        assert first <= bound and second <= bound
