"""Tests for the LocallyIterativeColoring base-class contract."""

import math

import pytest

from repro.runtime.algorithm import LocallyIterativeColoring, NetworkInfo


class MinimalStage(LocallyIterativeColoring):
    name = "minimal"

    @property
    def out_palette_size(self):
        self._require_configured()
        return self.info.in_palette_size

    @property
    def rounds_bound(self):
        return 1

    def step(self, round_index, color, neighbor_colors):
        return color


class TestDefaults:
    def test_encode_decode_default_identity(self):
        stage = MinimalStage()
        stage.configure(NetworkInfo(10, 3, 7))
        assert stage.encode_initial(5) == 5
        assert stage.decode_final(5) == 5

    def test_is_final_default_false(self):
        stage = MinimalStage()
        assert stage.is_final(0) is False

    def test_message_bits_default_log_palette(self):
        stage = MinimalStage()
        stage.configure(NetworkInfo(10, 3, 100))
        assert stage.message_bits(0) == math.ceil(math.log2(100))

    def test_message_bits_floor_of_one(self):
        stage = MinimalStage()
        stage.configure(NetworkInfo(10, 3, 1))
        assert stage.message_bits(0) == 1

    def test_require_configured_raises(self):
        stage = MinimalStage()
        with pytest.raises(RuntimeError):
            stage.out_palette_size

    def test_repr_reports_configuration_state(self):
        stage = MinimalStage()
        assert "configured=False" in repr(stage)
        stage.configure(NetworkInfo(4, 2, 3))
        assert "configured=True" in repr(stage)

    def test_class_flags_defaults(self):
        stage = MinimalStage()
        assert stage.maintains_proper is True
        assert stage.uniform_step is False


class TestNetworkInfoValidation:
    @pytest.mark.parametrize(
        "args", [(-1, 1, 1), (1, -1, 1), (1, 1, 0)]
    )
    def test_invalid(self, args):
        with pytest.raises(ValueError):
            NetworkInfo(*args)

    def test_repr(self):
        info = NetworkInfo(10, 3, 7)
        assert "n=10" in repr(info)
        assert "max_degree=3" in repr(info)
