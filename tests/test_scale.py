"""Moderate-scale smoke tests: the library at thousands of vertices.

Not micro-benchmarks (those live in benchmarks/) — these pin down that
nothing in the implementation is accidentally quadratic in n for sparse
graphs, and that the claimed round bounds hold at scale.
"""

import time

from repro import delta_plus_one_coloring, delta_plus_one_exact_no_reduction
from repro.analysis import is_proper_coloring
from repro.graphgen import cycle_graph, random_regular
from repro.mathutil import log_star


class TestScale:
    def test_cycle_with_sixteen_thousand_vertices(self):
        graph = cycle_graph(16384)
        start = time.time()
        result = delta_plus_one_coloring(graph)
        elapsed = time.time() - start
        assert is_proper_coloring(graph, result.colors)
        assert max(result.colors) <= 2
        assert result.total_rounds <= 2 * 8 + log_star(16384) + 8
        assert elapsed < 30  # linear-ish work per round

    def test_regular_thousand_vertices(self):
        graph = random_regular(1000, 8, seed=1)
        result = delta_plus_one_exact_no_reduction(graph)
        assert is_proper_coloring(graph, result.colors)
        assert max(result.colors) <= 8
        assert result.total_rounds <= 14 * 8 + log_star(1000) + 16

    def test_rounds_flat_across_scale(self):
        rounds = []
        for n in (256, 1024, 4096):
            graph = cycle_graph(n)
            rounds.append(delta_plus_one_coloring(graph).total_rounds)
        assert max(rounds) - min(rounds) <= 3

    def test_selfstab_at_scale(self):
        import random

        from repro.runtime.graph import DynamicGraph
        from repro.selfstab import FaultCampaign, SelfStabColoring, SelfStabEngine

        n, delta = 400, 6
        graph = DynamicGraph(n, delta)
        rng = random.Random(2)
        for v in range(n):
            graph.add_vertex(v)
        attempts = 0
        while attempts < 4 * n:
            u, v = rng.randrange(n), rng.randrange(n)
            attempts += 1
            if (
                u != v
                and not graph.has_edge(u, v)
                and graph.degree(u) < delta
                and graph.degree(v) < delta
            ):
                graph.add_edge(u, v)
        algorithm = SelfStabColoring(n, delta)
        engine = SelfStabEngine(graph, algorithm)
        engine.run_to_quiescence()
        campaign = FaultCampaign(3)
        campaign.corrupt_random_rams(engine, n)
        rounds = engine.run_to_quiescence()
        assert engine.is_legal()
        assert rounds <= algorithm.stabilization_bound()
