"""Unit tests for the extended hybrid core of SelfStabExactColoring."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.selfstab.exact import SelfStabExactColoring


def make_algorithm(delta=5, n=60):
    return SelfStabExactColoring(n, delta)


def all_core_states(algorithm):
    n, p = algorithm.n_colors, algorithm.p
    states = [("L", 0, a) for a in range(n)]
    states += [("L", 1, a) for a in range(n)]
    states += [("H", b, a) for b in range(1, p) for a in range(p)]
    return states


class TestEncoding:
    def test_encode_decode_bijection_over_entire_core(self):
        algorithm = make_algorithm()
        seen = set()
        for state in all_core_states(algorithm):
            local = algorithm._encode_core(state)
            assert 0 <= local < algorithm.plan.core_size
            assert local not in seen
            seen.add(local)
            assert algorithm._decode_core(local) == state
        assert len(seen) == algorithm.plan.core_size

    def test_low_states_occupy_bottom_range(self):
        algorithm = make_algorithm()
        n = algorithm.n_colors
        for a in range(n):
            assert algorithm._encode_core(("L", 0, a)) == a
            assert algorithm._encode_core(("L", 1, a)) == n + a


class TestCoreStep:
    def test_low_final_absorbing(self):
        algorithm = make_algorithm()
        state = ("L", 0, 2)
        nbrs = [("L", 1, 2), ("H", 3, 2), ("L", 0, 1)]
        assert algorithm._core_step(state, nbrs) == state

    def test_low_working_rotates_on_low_conflict(self):
        algorithm = make_algorithm()
        n = algorithm.n_colors
        out = algorithm._core_step(("L", 1, 2), [("L", 0, 2)])
        assert out == ("L", 1, 3 % n)

    def test_low_working_ignores_high(self):
        algorithm = make_algorithm()
        out = algorithm._core_step(("L", 1, 2), [("H", 3, 2)])
        assert out == ("L", 0, 2)

    def test_high_gated_by_low_working(self):
        algorithm = make_algorithm()
        p = algorithm.p
        out = algorithm._core_step(("H", 2, 1), [("L", 1, 4)])
        assert out == ("H", 2, (1 + 2) % p)

    def test_high_blocked_above_two_n_keeps_rotating(self):
        """The extended-hybrid guard: a >= 2N cannot land even if conflict-free."""
        algorithm = make_algorithm()
        n, p = algorithm.n_colors, algorithm.p
        a = 2 * n  # valid since p > 2N for the landing field
        out = algorithm._core_step(("H", 3, a), [])
        assert out == ("H", 3, (a + 3) % p)

    def test_high_lands_final_below_n(self):
        algorithm = make_algorithm()
        out = algorithm._core_step(("H", 3, 2), [])
        assert out == ("L", 0, 2)

    def test_high_lands_working_between_n_and_two_n(self):
        algorithm = make_algorithm()
        n = algorithm.n_colors
        out = algorithm._core_step(("H", 3, n + 2), [])
        assert out == ("L", 1, 2)

    def test_high_conflicts_with_low_final_same_a(self):
        algorithm = make_algorithm()
        p = algorithm.p
        out = algorithm._core_step(("H", 3, 2), [("L", 0, 2)])
        assert out == ("H", 3, (2 + 3) % p)

    def test_high_ignores_low_final_different_a(self):
        algorithm = make_algorithm()
        out = algorithm._core_step(("H", 3, 2), [("L", 0, 1)])
        assert out == ("L", 0, 2)


class TestStepOptionsContract:
    """S' correctness: the actual next state is always among the advertised
    options, for every state and any neighborhood."""

    @given(st.integers(min_value=0, max_value=10 ** 6))
    @settings(max_examples=60, deadline=None)
    def test_next_state_in_options(self, seed):
        rng = random.Random(seed)
        algorithm = make_algorithm(delta=rng.randint(1, 6))
        states = all_core_states(algorithm)
        state = rng.choice(states)
        neighborhood = [rng.choice(states) for _ in range(rng.randint(0, 6))]
        nxt = algorithm._core_step(state, neighborhood)
        options = algorithm._core_step_options(state)
        assert nxt in options

    @given(st.integers(min_value=0, max_value=10 ** 6))
    @settings(max_examples=40, deadline=None)
    def test_options_at_most_two(self, seed):
        rng = random.Random(seed)
        algorithm = make_algorithm(delta=rng.randint(1, 6))
        state = rng.choice(all_core_states(algorithm))
        assert 1 <= len(algorithm._core_step_options(state)) <= 2


class TestLanding:
    def test_arrivals_are_high_states(self):
        algorithm = make_algorithm()
        local = algorithm._land(5, [7, 9], [])
        state = algorithm._decode_core(local)
        assert state[0] == "H"
        assert 1 <= state[1] < algorithm.p

    def test_forbidden_high_slots_avoided(self):
        algorithm = make_algorithm()
        unrestricted = algorithm._land(5, [7], [])
        restricted = algorithm._land(5, [7], [unrestricted])
        assert restricted != unrestricted

    def test_landing_point_capacity(self):
        """With max forbidden load (2 per neighbor, Delta neighbors) a
        landing point still exists."""
        algorithm = make_algorithm(delta=5)
        neighbors_lvl1 = list(range(1, 6))
        forbidden = []
        # Worst case: 2 * Delta distinct H-slots blocked.
        for b in range(1, 6):
            for a in (0, 1):
                forbidden.append(algorithm._encode_core(("H", b, a)))
        local = algorithm._land(0, neighbors_lvl1, forbidden)
        assert algorithm._decode_core(local)[0] == "H"


class TestMessageSizes:
    def test_visible_state_is_one_small_int(self):
        """Self-stab messages are single colors: O(log n) bits (the paper's
        'small messages' claim for the self-stabilizing setting)."""
        algorithm = make_algorithm(n=200, delta=6)
        for vertex in (0, 7, 199):
            ram = algorithm.fresh_ram(vertex)
            visible = algorithm.visible(vertex, ram)
            assert isinstance(visible, int)
            assert 0 <= visible < algorithm.plan.total_size
        assert algorithm.plan.total_size <= 200 ** 3  # poly(n) => O(log n) bits
