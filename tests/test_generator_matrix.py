"""Every generator family × every major entry point — the compatibility matrix.

Cheap but broad: ensures no graph family trips an edge case in any of the
library's top-level algorithms.
"""

import pytest

from repro import (
    delta_plus_one_coloring,
    delta_plus_one_exact_no_reduction,
    graphgen,
    one_plus_eps_delta_coloring,
)
from repro.analysis import (
    is_maximal_independent_set,
    is_maximal_matching,
    is_proper_coloring,
    is_proper_edge_coloring,
)
from repro.apps import locally_iterative_maximal_matching, locally_iterative_mis
from repro.baselines import bek_delta_plus_one
from repro.edge import edge_coloring_congest

FAMILIES = [
    ("path", lambda: graphgen.path_graph(18)),
    ("cycle", lambda: graphgen.cycle_graph(17)),
    ("complete", lambda: graphgen.complete_graph(8)),
    ("star", lambda: graphgen.star_graph(12)),
    ("grid", lambda: graphgen.grid_graph(4, 5)),
    ("hypercube", lambda: graphgen.hypercube_graph(4)),
    ("tree", lambda: graphgen.random_tree(24, seed=1)),
    ("gnp", lambda: graphgen.gnp_graph(24, 0.2, seed=2)),
    ("regular", lambda: graphgen.random_regular(20, 4, seed=3)),
    ("bounded", lambda: graphgen.bounded_degree_random(24, 4, 30, seed=4)),
    ("bipartite", lambda: graphgen.random_bipartite(10, 12, 0.25, seed=5)),
    ("unit-disk", lambda: graphgen.unit_disk_graph(24, 0.3, seed=6, degree_cap=5)),
    ("barbell", lambda: graphgen.barbell_of_cliques(5, 4)),
    ("caterpillar", lambda: graphgen.caterpillar_graph(6, 3)),
    ("complete-bipartite", lambda: graphgen.complete_bipartite_graph(5, 7)),
    ("circulant", lambda: graphgen.circulant_graph(18, (1, 4))),
    (
        "disconnected",
        lambda: graphgen.disjoint_union(
            [graphgen.cycle_graph(5), graphgen.path_graph(4)]
        ),
    ),
]


@pytest.fixture(params=FAMILIES, ids=lambda pair: pair[0])
def family_graph(request):
    """One representative graph per generator family."""
    return request.param[1]()


class TestMatrix:
    def test_vertex_colorings(self, family_graph):
        graph = family_graph
        for runner in (
            delta_plus_one_coloring,
            delta_plus_one_exact_no_reduction,
        ):
            result = runner(graph)
            assert is_proper_coloring(graph, result.colors)
            assert max(result.colors, default=0) <= graph.max_degree
        bek = bek_delta_plus_one(graph)
        assert is_proper_coloring(graph, bek.colors)

    def test_sublinear_coloring(self, family_graph):
        graph = family_graph
        result = one_plus_eps_delta_coloring(graph)
        assert is_proper_coloring(graph, result.colors)

    def test_edge_coloring_and_matching(self, family_graph):
        graph = family_graph
        if graph.m == 0:
            return
        edges = edge_coloring_congest(graph)
        assert is_proper_edge_coloring(graph, edges.edge_colors)
        matching = locally_iterative_maximal_matching(graph, edges)
        assert is_maximal_matching(graph, matching.edges)

    def test_mis(self, family_graph):
        graph = family_graph
        result = locally_iterative_mis(graph)
        assert is_maximal_independent_set(graph, result.members)
