"""Every example script must run clean end-to-end."""

import importlib.util
import io
import os
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), os.pardir, "examples")

EXAMPLES = [
    "quickstart",
    "sensor_network_tdma",
    "dynamic_network_selfstab",
    "link_scheduling_edge_coloring",
    "anonymous_setlocal",
    "cluster_head_election",
    "p2p_gossip_schedule",
    "reproduce_paper",
]


def load_example(name):
    path = os.path.join(EXAMPLES_DIR, name + ".py")
    spec = importlib.util.spec_from_file_location("example_" + name, path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.mark.parametrize("name", EXAMPLES)
def test_example_runs(name, capsys, monkeypatch):
    module = load_example(name)
    module.main()
    captured = capsys.readouterr()
    assert captured.out.strip(), "example %s produced no output" % name


def test_every_example_file_is_covered():
    present = {
        fname[:-3]
        for fname in os.listdir(EXAMPLES_DIR)
        if fname.endswith(".py")
    }
    assert present == set(EXAMPLES)


def test_collect_results_builds_report(tmp_path):
    """The report collector stitches whatever tables exist."""
    import importlib.util

    path = os.path.join(
        os.path.dirname(__file__), os.pardir, "benchmarks", "collect_results.py"
    )
    spec = importlib.util.spec_from_file_location("collect_results", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)

    results = tmp_path / "results"
    results.mkdir()
    (results / "T1.txt").write_text("[T1] demo table\nrow")
    text = module.collect(str(results))
    assert "[T1] demo table" in text
    assert "Missing" in text  # the other ids have not been run

    import pytest as _pytest

    empty = tmp_path / "empty"
    empty.mkdir()
    with _pytest.raises(FileNotFoundError):
        module.collect(str(empty))
