"""Tests for the synchronous engine, visibility modes, metrics, pipelines."""

import pytest

from repro.errors import ImproperColoringError, PaletteOverflowError
from repro.graphgen import cycle_graph, path_graph, star_graph
from repro.runtime import (
    ColoringEngine,
    ColoringPipeline,
    LocallyIterativeColoring,
    NetworkInfo,
    Visibility,
)


class IdentityStage(LocallyIterativeColoring):
    name = "identity"

    @property
    def out_palette_size(self):
        return self.info.in_palette_size

    @property
    def rounds_bound(self):
        return 3

    def step(self, round_index, color, neighbor_colors):
        return color


class DecrementStage(LocallyIterativeColoring):
    """Shifts every color down by one per round until 0 — not proper-safe."""

    name = "decrement"
    maintains_proper = False

    @property
    def out_palette_size(self):
        return self.info.in_palette_size

    @property
    def rounds_bound(self):
        return self.info.in_palette_size

    def step(self, round_index, color, neighbor_colors):
        return max(0, color - 1)

    def is_final(self, color):
        return color == 0


class VisibilityProbe(LocallyIterativeColoring):
    """Records the neighborhood container type it was handed."""

    name = "probe"
    maintains_proper = False

    def __init__(self):
        super().__init__()
        self.seen_types = set()

    @property
    def out_palette_size(self):
        return self.info.in_palette_size

    @property
    def rounds_bound(self):
        return 1

    def step(self, round_index, color, neighbor_colors):
        self.seen_types.add(type(neighbor_colors))
        return color


class CollidingStage(LocallyIterativeColoring):
    """Claims properness but makes everything color 0 — must be caught."""

    name = "colliding"
    maintains_proper = True

    @property
    def out_palette_size(self):
        return self.info.in_palette_size

    @property
    def rounds_bound(self):
        return 2

    def step(self, round_index, color, neighbor_colors):
        return 0


class OverflowStage(IdentityStage):
    name = "overflow"

    @property
    def out_palette_size(self):
        return 1


class TestEngineBasics:
    def test_runs_full_bound_without_finality(self):
        g = path_graph(4)
        result = ColoringEngine(g).run(IdentityStage(), [0, 1, 0, 1])
        assert result.rounds_used == 3
        assert result.int_colors == [0, 1, 0, 1]

    def test_early_stop_on_finality(self):
        g = path_graph(3)
        result = ColoringEngine(g).run(DecrementStage(), [0, 2, 1])
        assert result.rounds_used == 2
        assert result.int_colors == [0, 0, 0]

    def test_zero_rounds_if_initially_final(self):
        g = path_graph(3)
        result = ColoringEngine(g).run(DecrementStage(), [0, 0, 0])
        assert result.rounds_used == 0

    def test_initial_coloring_length_checked(self):
        g = path_graph(3)
        with pytest.raises(ValueError):
            ColoringEngine(g).run(IdentityStage(), [0, 1])

    def test_history_recording(self):
        g = path_graph(3)
        engine = ColoringEngine(g, record_history=True)
        result = engine.run(DecrementStage(), [2, 1, 0])
        assert result.history[0] == [2, 1, 0]
        assert result.history[-1] == [0, 0, 0]
        assert len(result.history) == result.rounds_used + 1

    def test_max_rounds_override(self):
        g = path_graph(3)
        result = ColoringEngine(g).run(DecrementStage(), [5, 5, 5], max_rounds=2)
        assert result.rounds_used == 2
        assert result.int_colors == [3, 3, 3]

    def test_improper_claim_detected(self):
        g = path_graph(3)
        engine = ColoringEngine(g, check_proper_each_round=True)
        with pytest.raises(ImproperColoringError):
            engine.run(CollidingStage(), [0, 1, 2])

    def test_improper_initial_detected(self):
        g = path_graph(2)
        engine = ColoringEngine(g, check_proper_each_round=True)
        with pytest.raises(ImproperColoringError):
            engine.run(IdentityStage(), [1, 1])

    def test_palette_overflow_detected(self):
        g = path_graph(2)
        with pytest.raises(PaletteOverflowError):
            ColoringEngine(g).run(OverflowStage(), [0, 1])


class TestVisibility:
    def test_local_mode_passes_tuple(self):
        g = star_graph(5)
        probe = VisibilityProbe()
        ColoringEngine(g, visibility=Visibility.LOCAL).run(probe, [0, 1, 1, 1, 1])
        assert probe.seen_types == {tuple}

    def test_set_local_mode_passes_frozenset(self):
        g = star_graph(5)
        probe = VisibilityProbe()
        ColoringEngine(g, visibility=Visibility.SET_LOCAL).run(probe, [0, 1, 1, 1, 1])
        assert probe.seen_types == {frozenset}


class TestMetrics:
    def test_message_and_bit_accounting(self):
        g = cycle_graph(6)  # m = 6
        result = ColoringEngine(g).run(IdentityStage(), [0, 1, 0, 1, 0, 1])
        assert result.metrics.total_rounds == 3
        # 2 * m messages per round
        assert all(r.messages == 12 for r in result.metrics.rounds)
        # default payload: ceil(log2(palette=2)) = 1 bit
        assert result.metrics.total_bits == 3 * 12 * 1

    def test_changed_vertices_counted(self):
        g = path_graph(3)
        result = ColoringEngine(g).run(DecrementStage(), [2, 0, 1])
        assert [r.changed_vertices for r in result.metrics.rounds] == [2, 1]

    def test_bits_per_edge(self):
        g = cycle_graph(4)
        result = ColoringEngine(g).run(IdentityStage(), [0, 1, 0, 1])
        assert result.metrics.bits_per_edge(g.m) == pytest.approx(
            result.metrics.total_bits / 4
        )


class TestNetworkInfo:
    def test_engine_configures_stage(self):
        g = star_graph(4)
        stage = IdentityStage()
        ColoringEngine(g).run(stage, [0, 1, 2, 3])
        assert stage.info.n == 4
        assert stage.info.max_degree == 3
        assert stage.info.in_palette_size == 4

    def test_explicit_palette_respected(self):
        g = path_graph(2)
        stage = IdentityStage()
        ColoringEngine(g).run(stage, [0, 1], in_palette_size=10)
        assert stage.info.in_palette_size == 10

    def test_invalid_info_rejected(self):
        with pytest.raises(ValueError):
            NetworkInfo(-1, 2, 3)
        with pytest.raises(ValueError):
            NetworkInfo(3, 2, 0)

    def test_unconfigured_stage_raises(self):
        stage = IdentityStage()
        with pytest.raises(RuntimeError):
            stage.message_bits(0)


class TestPipeline:
    def test_stages_chain_palettes(self):
        g = path_graph(4)
        pipeline = ColoringPipeline([IdentityStage(), IdentityStage()])
        result = pipeline.run(g, [0, 1, 2, 3])
        assert result.total_rounds == 6
        assert result.colors == [0, 1, 2, 3]
        assert len(result.stage_results) == 2

    def test_factories_materialized(self):
        g = path_graph(2)
        pipeline = ColoringPipeline([IdentityStage])
        result = pipeline.run(g, [0, 1])
        assert result.colors == [0, 1]

    def test_empty_pipeline_rejected(self):
        with pytest.raises(ValueError):
            ColoringPipeline([])

    def test_rounds_by_stage(self):
        g = path_graph(3)
        pipeline = ColoringPipeline([DecrementStage()])
        result = pipeline.run(g, [2, 1, 0])
        assert result.rounds_by_stage() == {"decrement": 2}
