"""Tests for the round-tracing subsystem."""

import io

import pytest

from repro.core import AdditiveGroupColoring, ThreeDimensionalAG
from repro.cli import main
from repro.graphgen import circulant_graph, gnp_graph, random_regular
from repro.trace import _second_coordinate_conflicts, format_trace, trace_run


class TestTraceRun:
    def test_round_count_matches_run(self):
        graph = random_regular(40, 6, seed=1)
        trace = trace_run(graph, AdditiveGroupColoring(), list(range(graph.n)))
        assert len(trace) == trace.run.rounds_used + 1

    def test_initial_round_has_no_changes(self):
        graph = gnp_graph(30, 0.2, seed=2)
        trace = trace_run(graph, AdditiveGroupColoring(), list(range(graph.n)))
        assert trace.rounds[0].round_index == 0
        assert trace.rounds[0].changed == 0

    def test_finalized_monotone_nondecreasing(self):
        graph = random_regular(40, 8, seed=3)
        trace = trace_run(graph, AdditiveGroupColoring(), list(range(graph.n)))
        finals = [r.finalized for r in trace]
        assert finals == sorted(finals)
        assert finals[-1] == graph.n

    def test_last_round_conflict_free(self):
        graph = gnp_graph(30, 0.25, seed=4)
        trace = trace_run(graph, AdditiveGroupColoring(), list(range(graph.n)))
        assert trace.rounds[-1].conflicts == 0

    def test_3ag_traceable(self):
        graph = gnp_graph(25, 0.2, seed=5)
        trace = trace_run(graph, ThreeDimensionalAG(), list(range(graph.n)))
        assert trace.rounds[-1].finalized == graph.n

    def test_sudden_palette_drop(self):
        """The paper's signature: the palette collapses only at the end."""
        graph = random_regular(60, 8, seed=6)
        stage = AdditiveGroupColoring()
        trace = trace_run(graph, stage, list(range(graph.n)))
        start_colors = trace.rounds[0].distinct_colors
        end_colors = trace.rounds[-1].distinct_colors
        assert end_colors <= stage.q
        assert start_colors > 2 * end_colors


class TestSecondCoordinateConflicts:
    """Pin the conflict-key rule: AG-family tuples compare on their *last*
    coordinate, scalar colors compare wholesale."""

    def test_ag_pairs_compare_on_last_coordinate(self):
        graph = circulant_graph(4, (1,))  # a 4-cycle
        pair_colors = [(0, 7), (1, 7), (2, 5), (3, 6)]
        # Vertices 0 and 1 share second coordinate 7 across edge (0, 1):
        # exactly one conflict, even though the full tuples differ.
        assert _second_coordinate_conflicts(graph, pair_colors) == 1

    def test_longer_tuples_use_last_coordinate(self):
        graph = circulant_graph(4, (1,))
        colors = [(9, 0, 3), (8, 1, 3), (7, 2, 4), (6, 3, 5)]
        assert _second_coordinate_conflicts(graph, colors) == 1

    def test_scalar_colors_compare_wholesale(self):
        graph = circulant_graph(4, (1,))
        assert _second_coordinate_conflicts(graph, [7, 7, 5, 6]) == 1
        assert _second_coordinate_conflicts(graph, [0, 1, 2, 3]) == 0

    def test_mixed_pairs_and_scalars(self):
        # Finalized AG vertices carry bare ints while active ones carry
        # pairs; a pair conflicts with a scalar when its last coordinate
        # matches the scalar.
        graph = circulant_graph(4, (1,))
        colors = [(0, 5), 5, (1, 2), 3]
        assert _second_coordinate_conflicts(graph, colors) == 1


class TestTraceBackends:
    @pytest.mark.requires_numpy
    def test_trace_run_parity_across_backends(self):
        graph = random_regular(40, 6, seed=17)
        ref = trace_run(
            graph, AdditiveGroupColoring(), list(range(graph.n)), backend="reference"
        )
        bat = trace_run(
            graph, AdditiveGroupColoring(), list(range(graph.n)), backend="batch"
        )
        assert len(ref) == len(bat)
        for a, b in zip(ref, bat):
            assert (
                a.round_index,
                a.changed,
                a.finalized,
                a.conflicts,
                a.distinct_colors,
            ) == (
                b.round_index,
                b.changed,
                b.finalized,
                b.conflicts,
                b.distinct_colors,
            )
        assert ref.run.int_colors == bat.run.int_colors

    @pytest.mark.requires_numpy
    def test_trace_pipeline_parity_across_backends(self):
        from repro.core import StandardColorReduction
        from repro.trace import trace_pipeline

        graph = random_regular(32, 4, seed=82)
        results = {}
        for backend in ("reference", "batch"):
            traces = trace_pipeline(
                graph,
                [AdditiveGroupColoring(), StandardColorReduction()],
                list(range(graph.n)),
                backend=backend,
            )
            results[backend] = [
                (stage.name, [
                    (r.round_index, r.changed, r.finalized, r.conflicts)
                    for r in trace
                ], trace.run.int_colors)
                for stage, trace in traces
            ]
        assert results["reference"] == results["batch"]

    def test_cli_trace_accepts_backend_flag(self):
        out = io.StringIO()
        code = main(
            ["trace", "--n", "24", "--degree", "4", "--stage", "ag",
             "--backend", "reference"],
            out=out,
        )
        assert code == 0
        assert "finished in" in out.getvalue()


class TestFormatting:
    def test_format_contains_all_rounds(self):
        graph = gnp_graph(20, 0.2, seed=7)
        trace = trace_run(graph, AdditiveGroupColoring(), list(range(graph.n)))
        text = format_trace(trace, graph)
        for entry in trace:
            assert "\n%5d " % entry.round_index in "\n" + text
        assert "finished in" in text

    def test_cli_trace_commands(self):
        for stage in ("ag", "3ag", "hybrid"):
            out = io.StringIO()
            code = main(
                ["trace", "--n", "24", "--degree", "4", "--stage", stage], out=out
            )
            assert code == 0
            assert "finished in" in out.getvalue()


class TestSelfStabTrace:
    def test_descent_visible_in_levels(self):
        from repro.selfstab import SelfStabColoring, SelfStabEngine
        from repro.trace import format_selfstab_trace, trace_selfstab
        from tests.test_selfstab_coloring import build_dynamic

        g = build_dynamic(24, 4, 0.2, seed=71)
        algorithm = SelfStabColoring(24, 4)
        engine = SelfStabEngine(g, algorithm)
        records = trace_selfstab(engine)
        # Starts with everyone in the top interval, ends with everyone in I0.
        top = "I%d" % (algorithm.plan.levels - 1)
        assert records[0].level_histogram == {top: 24}
        assert records[-1].level_histogram == {"I0": 24}
        assert records[-1].legal
        text = format_selfstab_trace(records)
        assert "interval occupancy" in text
        assert "I0:24" in text

    def test_corruption_shows_as_invalid(self):
        from repro.selfstab import SelfStabColoring, SelfStabEngine
        from repro.trace import trace_selfstab
        from tests.test_selfstab_coloring import build_dynamic

        g = build_dynamic(20, 4, 0.2, seed=72)
        algorithm = SelfStabColoring(20, 4)
        engine = SelfStabEngine(g, algorithm)
        engine.run_to_quiescence()
        engine.corrupt(g.vertices()[0], ("junk",))
        records = trace_selfstab(engine)
        assert records[0].level_histogram.get("invalid") == 1
        assert records[-1].legal

    def test_mis_rams_traced_via_color_field(self):
        from repro.selfstab import SelfStabEngine, SelfStabMIS
        from repro.trace import trace_selfstab
        from tests.test_selfstab_coloring import build_dynamic

        g = build_dynamic(18, 4, 0.25, seed=73)
        algorithm = SelfStabMIS(18, 4)
        engine = SelfStabEngine(g, algorithm)
        records = trace_selfstab(engine)
        assert records[-1].legal
        # The MIS algorithm exposes the coloring's plan indirectly: histogram
        # may be empty (no plan attribute on the MIS wrapper) — tolerated.
        assert isinstance(records[-1].level_histogram, dict)


class TestPipelineTrace:
    def test_stages_chain_and_render(self):
        from repro.core import AdditiveGroupColoring, StandardColorReduction
        from repro.trace import format_pipeline_trace, trace_pipeline

        graph = random_regular(32, 4, seed=81)
        traces = trace_pipeline(
            graph,
            [AdditiveGroupColoring(), StandardColorReduction()],
            list(range(graph.n)),
        )
        assert [stage.name for stage, _ in traces] == [
            "additive-group",
            "standard-reduction",
        ]
        # Output of stage 1 is the input palette of stage 2.
        final = traces[-1][1].run.int_colors
        assert max(final) <= graph.max_degree
        text = format_pipeline_trace(traces, graph)
        assert "stage: additive-group" in text
        assert "stage: standard-reduction" in text
