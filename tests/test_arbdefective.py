"""Tests for ArbAG (Section 6) and its finalization orientation."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import arbdefect_upper_bound
from repro.core.arbdefective import ArbAGColoring, finalization_orientation
from repro.defective import DefectiveLinialColoring
from repro.graphgen import complete_graph, gnp_graph, random_regular
from repro.runtime import ColoringEngine
from tests.conftest import id_coloring


def run_defective_then_arb(graph, tolerance):
    engine = ColoringEngine(graph)
    defective = DefectiveLinialColoring(tolerance)
    dres = engine.run(defective, id_coloring(graph))
    arb = ArbAGColoring(tolerance)
    ares = engine.run(arb, dres.int_colors, in_palette_size=defective.out_palette_size)
    return defective, arb, ares


class TestLemma61Convergence:
    @pytest.mark.parametrize("tolerance", [1, 2, 4])
    def test_everyone_finalizes_within_bound(self, tolerance):
        graph = random_regular(60, 8, seed=1)
        defective, arb, result = run_defective_then_arb(graph, tolerance)
        r = -(-graph.max_degree // tolerance)
        assert result.rounds_used <= 2 * r + 1
        assert all(fr is not None for _, _, _, fr in result.colors)
        assert max(result.int_colors) < arb.q

    def test_palette_is_o_delta_over_p(self):
        graph = random_regular(64, 16, seed=2)
        delta = graph.max_degree
        for tolerance in (2, 4):
            _, arb, result = run_defective_then_arb(graph, tolerance)
            r = -(-delta // tolerance)
            assert arb.q <= 4 * r + 12


class TestLemma62Arbdefect:
    @pytest.mark.parametrize("tolerance", [1, 2, 4, 8])
    def test_class_degeneracy_bounded(self, tolerance):
        graph = random_regular(60, 12, seed=3)
        defective, arb, result = run_defective_then_arb(graph, tolerance)
        # arbdefect <= out-degree bound <= tolerance + input defect (+ ties,
        # which are inside the tolerance count).
        bound = 2 * (tolerance + defective.defect_bound) + 1
        assert arbdefect_upper_bound(graph, result.int_colors) <= bound

    def test_orientation_out_degree_bounded(self):
        graph = random_regular(60, 12, seed=4)
        tolerance = 3
        defective, arb, result = run_defective_then_arb(graph, tolerance)
        orientation = finalization_orientation(graph, result.colors)
        worst = max(len(o) for o in orientation)
        assert worst <= tolerance + defective.defect_bound

    def test_orientation_is_acyclic(self):
        graph = gnp_graph(40, 0.2, seed=5)
        _, _, result = run_defective_then_arb(graph, 2)
        orientation = finalization_orientation(graph, result.colors)
        # Kahn's algorithm must consume every vertex.
        out_deg = [len(o) for o in orientation]
        incoming = [[] for _ in range(graph.n)]
        for v, outs in enumerate(orientation):
            for u in outs:
                incoming[u].append(v)
        frontier = [v for v in range(graph.n) if out_deg[v] == 0]
        seen = 0
        while frontier:
            u = frontier.pop()
            seen += 1
            for w in incoming[u]:
                out_deg[w] -= 1
                if out_deg[w] == 0:
                    frontier.append(w)
        assert seen == graph.n

    def test_orientation_covers_exactly_intra_class_edges(self):
        graph = gnp_graph(35, 0.25, seed=6)
        _, _, result = run_defective_then_arb(graph, 2)
        orientation = finalization_orientation(graph, result.colors)
        oriented_pairs = {
            tuple(sorted((v, u))) for v, outs in enumerate(orientation) for u in outs
        }
        intra = {
            (u, v)
            for u, v in graph.edges
            if result.int_colors[u] == result.int_colors[v]
        }
        assert oriented_pairs == intra

    def test_orientation_requires_finalized_colors(self):
        graph = complete_graph(4)
        with pytest.raises(ValueError):
            finalization_orientation(
                graph, [(1, 0, 0, None), (1, 0, 1, None), (0, 1, 2, 0), (0, 2, 3, 0)]
            )


class TestStepSemantics:
    def _configured(self, tolerance=2, delta=6, palette=196):
        from repro.runtime.algorithm import NetworkInfo

        stage = ArbAGColoring(tolerance)
        stage.configure(NetworkInfo(50, delta, palette))
        return stage

    def test_tolerated_conflicts_finalize(self):
        stage = self._configured(tolerance=2)
        color = (3, 5, 40, None)
        nbrs = ((1, 5, 18, None), (2, 5, 31, None))  # 2 conflicts == tolerance
        out = stage.step(4, color, nbrs)
        assert out == (0, 5, 40, 5)

    def test_excess_conflicts_rotate(self):
        stage = self._configured(tolerance=1)
        q = stage.q
        color = (3, 5, 40, None)
        nbrs = ((1, 5, 18, None), (2, 5, 31, None))
        assert stage.step(0, color, nbrs) == (3, (3 + 5) % q, 40, None)

    def test_same_original_color_not_counted(self):
        stage = self._configured(tolerance=1)
        color = (3, 5, 40, None)
        nbrs = ((3, 5, 40, None), (3, 5, 40, None), (1, 5, 7, None))
        # Only the different-orig neighbor counts: 1 <= tolerance.
        assert stage.step(2, color, nbrs)[0] == 0

    def test_finalized_is_absorbing(self):
        stage = self._configured()
        color = (0, 5, 40, 3)
        assert stage.step(9, color, ((1, 5, 7, None),) * 5) == color

    def test_a_zero_final_from_start(self):
        stage = self._configured()
        encoded = stage.encode_initial(4)  # a == 0 since 4 < q
        assert encoded[0] == 0 and encoded[3] == 0
        assert stage.is_final(encoded)

    def test_invalid_tolerance(self):
        with pytest.raises(ValueError):
            ArbAGColoring(0)


class TestPropertyBased:
    @given(st.integers(min_value=0, max_value=10 ** 6))
    @settings(max_examples=20, deadline=None)
    def test_random_graphs_full_pipeline(self, seed):
        rng = random.Random(seed)
        n = rng.randint(4, 36)
        graph = gnp_graph(n, rng.uniform(0, 0.3), seed=seed)
        tolerance = rng.randint(1, 4)
        defective, arb, result = run_defective_then_arb(graph, tolerance)
        r = -(-graph.max_degree // tolerance) if graph.max_degree else 0
        assert result.rounds_used <= 2 * r + 1
        assert arbdefect_upper_bound(graph, result.int_colors) <= 2 * (
            tolerance + defective.defect_bound
        ) + 1
        orientation = finalization_orientation(graph, result.colors)
        assert max((len(o) for o in orientation), default=0) <= (
            tolerance + defective.defect_bound
        )
