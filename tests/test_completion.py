"""Unit tests for the arbdefective-class completion and its result objects."""

import pytest

from repro.core.pipeline import (
    SublinearColoringResult,
    complete_arbdefective_to_proper,
)
from repro.graphgen import cycle_graph, path_graph
from repro.runtime.graph import StaticGraph


class TestCompleteArbdefective:
    def test_single_class_chain(self):
        graph = path_graph(4)
        orientation = [[], [0], [1], [2]]  # a chain: acts take 4 rounds
        colors, rounds = complete_arbdefective_to_proper(
            graph, orientation, class_of=[0, 0, 0, 0], class_palette=2
        )
        assert rounds == 4
        for u, v in graph.edges:
            assert colors[u] != colors[v]

    def test_parallel_classes_share_rounds(self):
        graph = StaticGraph(4, [(0, 1), (2, 3)])
        orientation = [[], [0], [], [2]]
        colors, rounds = complete_arbdefective_to_proper(
            graph, orientation, class_of=[0, 0, 1, 1], class_palette=2
        )
        assert rounds == 2  # both components progress simultaneously
        assert colors[0] != colors[1] and colors[2] != colors[3]

    def test_disjoint_palettes_per_class(self):
        graph = StaticGraph(2, [(0, 1)])
        orientation = [[], []]
        colors, _ = complete_arbdefective_to_proper(
            graph, orientation, class_of=[0, 1], class_palette=3
        )
        assert colors[0] // 3 == 0 and colors[1] // 3 == 1

    def test_palette_overflow_detected(self):
        graph = StaticGraph(3, [(0, 1), (0, 2), (1, 2)])
        orientation = [[], [0], [0, 1]]  # vertex 2 has 2 out-neighbors
        with pytest.raises(AssertionError):
            complete_arbdefective_to_proper(
                graph, orientation, class_of=[0, 0, 0], class_palette=2
            )

    def test_cyclic_orientation_detected(self):
        graph = cycle_graph(3)
        orientation = [[1], [2], [0]]
        with pytest.raises(AssertionError):
            complete_arbdefective_to_proper(
                graph, orientation, class_of=[0, 0, 0], class_palette=4
            )

    def test_no_vertices(self):
        graph = StaticGraph(0, [])
        colors, rounds = complete_arbdefective_to_proper(graph, [], [], 1)
        assert colors == [] and rounds == 0


class TestSublinearResult:
    def test_accounting(self):
        result = SublinearColoringResult(
            colors=[0, 1, 2],
            palette_size=9,
            stage_rounds={"defective-linial": 2, "arb-ag": 3, "class-completion": 4},
            out_degree_bound=2,
        )
        assert result.total_rounds == 9
        assert result.ag_side_rounds == 7  # everything but the log* stage
        assert result.num_colors == 3
        assert "palette=9" in repr(result)
