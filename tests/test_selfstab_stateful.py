"""Stateful (model-based) testing of the self-stabilizing algorithms.

A hypothesis RuleBasedStateMachine drives a SelfStabEngine with an arbitrary
interleaving of rounds, RAM corruptions, topology churn and quiescence runs.
The machine-wide invariant is the paper's contract: whenever the engine is
given a clean stabilization window, the state is legal — no matter what
history preceded it.
"""

import random

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, initialize, invariant, rule

from repro.runtime.graph import DynamicGraph
from repro.selfstab import (
    FaultCampaign,
    SelfStabColoring,
    SelfStabEngine,
    SelfStabExactColoring,
    SelfStabMIS,
)

N_BOUND = 18
DELTA_BOUND = 4


def _fresh_graph(seed):
    rng = random.Random(seed)
    graph = DynamicGraph(N_BOUND, DELTA_BOUND)
    for v in range(12):
        graph.add_vertex(v)
    vertices = graph.vertices()
    for u in vertices:
        for v in vertices:
            if (
                u < v
                and rng.random() < 0.25
                and graph.degree(u) < DELTA_BOUND
                and graph.degree(v) < DELTA_BOUND
            ):
                graph.add_edge(u, v)
    return graph


class SelfStabMachine(RuleBasedStateMachine):
    @initialize(
        seed=st.integers(min_value=0, max_value=10 ** 6),
        kind=st.sampled_from(["plain", "exact", "mis"]),
    )
    def setup(self, seed, kind):
        factory = {
            "plain": SelfStabColoring,
            "exact": SelfStabExactColoring,
            "mis": SelfStabMIS,
        }[kind]
        self.graph = _fresh_graph(seed)
        self.algorithm = factory(N_BOUND, DELTA_BOUND)
        self.engine = SelfStabEngine(self.graph, self.algorithm)
        self.campaign = FaultCampaign(seed + 1)
        self.stabilized = False

    @rule(count=st.integers(min_value=1, max_value=6))
    def run_rounds(self, count):
        for _ in range(count):
            self.engine.step()
        self.stabilized = False

    @rule(count=st.integers(min_value=1, max_value=8))
    def corrupt(self, count):
        self.campaign.corrupt_random_rams(self.engine, count)
        self.stabilized = False

    @rule()
    def churn_edges(self):
        self.campaign.churn_edges(self.engine, removals=1, additions=1)
        self.stabilized = False

    @rule()
    def churn_vertices(self):
        self.campaign.churn_vertices(self.engine, crashes=1, spawns=1)
        self.stabilized = False

    @rule()
    def give_clean_window(self):
        """The contract: a fault-free window always ends legal + quiescent."""
        rounds = self.engine.run_to_quiescence()
        assert rounds <= self.algorithm.stabilization_bound() + 1
        self.stabilized = True

    @invariant()
    def legal_after_stabilization(self):
        if getattr(self, "stabilized", False):
            assert self.engine.is_legal()


TestSelfStabStateMachine = SelfStabMachine.TestCase
TestSelfStabStateMachine.settings = settings(
    max_examples=12, stateful_step_count=18, deadline=None
)


class LineWrapperMachine(RuleBasedStateMachine):
    """Model-based testing of the line-graph wrappers: arbitrary
    interleavings of rounds, edge-state corruption, base-topology churn and
    clean windows — matching and edge coloring must always return to a legal
    state when given the chance."""

    @initialize(
        seed=st.integers(min_value=0, max_value=10 ** 6),
        kind=st.sampled_from(["matching", "edge-coloring"]),
    )
    def setup(self, seed, kind):
        import random as _random

        from repro.selfstab import SelfStabEdgeColoring, SelfStabMaximalMatching

        self.rng = _random.Random(seed)
        self.base = _fresh_graph(seed + 7)
        if kind == "matching":
            self.wrapper = SelfStabMaximalMatching(self.base)
        else:
            self.wrapper = SelfStabEdgeColoring(self.base, exact=False)
        self.campaign = FaultCampaign(seed + 11)
        self.stabilized = False

    @rule(count=st.integers(min_value=1, max_value=4))
    def run_rounds(self, count):
        for _ in range(count):
            self.wrapper.step()
        self.stabilized = False

    @rule(count=st.integers(min_value=1, max_value=5))
    def corrupt_edge_states(self, count):
        self.campaign.corrupt_random_rams(self.wrapper.engine, count)
        self.stabilized = False

    @rule()
    def churn_base_edge(self):
        edges = self.base.edges()
        if edges:
            u, v = self.rng.choice(edges)
            self.base.remove_edge(u, v)
        vertices = self.base.vertices()
        candidates = [
            (a, b)
            for a in vertices
            for b in vertices
            if a < b
            and not self.base.has_edge(a, b)
            and self.base.degree(a) < self.base.delta_bound
            and self.base.degree(b) < self.base.delta_bound
        ]
        if candidates:
            self.base.add_edge(*self.rng.choice(candidates))
        self.wrapper.sync_topology()
        self.stabilized = False

    @rule()
    def give_clean_window(self):
        self.wrapper.run_to_quiescence()
        self.stabilized = True

    @invariant()
    def legal_after_stabilization(self):
        if getattr(self, "stabilized", False):
            assert self.wrapper.is_legal()


TestLineWrapperMachine = LineWrapperMachine.TestCase
TestLineWrapperMachine.settings = settings(
    max_examples=8, stateful_step_count=12, deadline=None
)
