"""The experiment service: registry durability, lifecycle, live HTTP, versioning.

Covers the service contract end to end:

* registry round-trip — a spec stored in SQLite re-runs bit-identically,
  and rows survive close/reopen (daemon restart durability);
* status transitions — ``queued -> running -> done`` on success, terminal
  ``failed`` / ``timeout`` on error and per-job budget expiry, each logged
  in ``run_events``;
* the live daemon on a unix socket — submit, poll, re-run, list/filter,
  telemetry tail, concurrent submits through :class:`ServiceClient`;
* the tolerant reader — records stamped with a newer ``schema_version``
  warn and read the known fields instead of failing.
"""

import json
import threading
import time
import warnings

import pytest

from repro.parallel.jobs import _ALGORITHMS, JobSpec, register_algorithm
from repro.runtime.results import (
    SCHEMA_VERSION,
    SchemaVersionWarning,
    check_schema_version,
)
from repro.service import ExperimentService, RunRegistry, ServiceClient
from repro.service.app import make_server
from repro.service.client import ServiceError
from repro.service.registry import MIGRATIONS, TERMINAL_STATUSES
from repro.service.wire import decode_body, spec_from_body


def _spec(n=48, seed=3, **extra):
    data = {
        "algorithm": "cor36",
        "graph": {"family": "regular", "n": n, "degree": 4, "seed": seed},
        "seed": seed,
    }
    data.update(extra)
    return JobSpec.from_dict(data)


def _fork_available():
    try:
        import multiprocessing

        return "fork" in multiprocessing.get_all_start_methods()
    except Exception:
        return False


def _wait_terminal(registry, run_id, timeout=60.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        record = registry.get(run_id)
        if record["status"] in TERMINAL_STATUSES:
            return record
        time.sleep(0.02)
    raise AssertionError("run %d never reached a terminal status" % run_id)


@pytest.fixture
def scratch_algorithm():
    """Register a throwaway algorithm; unregister afterwards."""
    registered = []

    def add(name, fn):
        register_algorithm(name, fn)
        registered.append(name)
        return fn

    yield add
    for name in registered:
        _ALGORITHMS.pop(name, None)


@pytest.fixture
def service(tmp_path):
    """An inline-mode service on a scratch registry, executor running."""
    svc = ExperimentService(
        str(tmp_path / "registry.sqlite"), workers=1, mode="inline"
    ).start()
    yield svc
    svc.close()


@pytest.fixture
def live(tmp_path):
    """A daemon serving on a unix socket + a client talking to it."""
    svc = ExperimentService(
        str(tmp_path / "registry.sqlite"), workers=1, mode="inline"
    ).start()
    sock = str(tmp_path / "svc.sock")
    server = make_server(svc, socket_path=sock)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield ServiceClient("unix:" + sock), svc
    server.shutdown()
    server.server_close()
    svc.close()


class _FakeOutcome:
    """A duck-typed JobOutcome for registry-level transition tests."""

    def __init__(self, ok=True, timed_out=False, summary=None, error=None):
        self.ok = ok
        self.timed_out = timed_out
        self.summary = summary
        self.error = error
        self.seconds = 0.01
        self.attempts = 1


class TestRegistry:
    def test_migrations_apply_once_and_persist(self, tmp_path):
        path = str(tmp_path / "registry.sqlite")
        with RunRegistry(path) as registry:
            assert registry.schema_version == len(MIGRATIONS)
            registry.create_run(_spec())
        # Reopening applies nothing new and keeps the stored run.
        with RunRegistry(path) as registry:
            assert registry.schema_version == len(MIGRATIONS)
            (record,) = registry.list_runs()
            assert record["status"] == "queued"

    def test_stored_spec_roundtrips_bit_identically(self, tmp_path):
        spec = _spec(seed=11)
        with RunRegistry(str(tmp_path / "r.sqlite")) as registry:
            record = registry.create_run(spec)
            assert JobSpec.from_dict(record["spec"]).to_dict() == spec.to_dict()
            assert record["job_id"] == spec.job_id
            assert record["schema_version"] == SCHEMA_VERSION

    def test_transitions_are_logged_in_order(self, tmp_path):
        with RunRegistry(str(tmp_path / "r.sqlite")) as registry:
            run_id = registry.create_run(_spec())["id"]
            registry.mark_running(run_id)
            registry.finish(run_id, _FakeOutcome(summary={"rounds": 1}))
            events = registry.events(run_id)
            assert [status for status, _ in events] == ["queued", "running", "done"]
            stamps = [ts for _, ts in events]
            assert stamps == sorted(stamps)
            record = registry.get(run_id)
            assert record["started"] is not None
            assert record["finished"] >= record["started"]

    def test_finish_maps_timeout_and_failure(self, tmp_path):
        with RunRegistry(str(tmp_path / "r.sqlite")) as registry:
            t_id = registry.create_run(_spec(seed=1))["id"]
            record = registry.finish(
                t_id, _FakeOutcome(ok=False, timed_out=True, error={"kind": "TimeoutError"})
            )
            assert record["status"] == "timeout"
            f_id = registry.create_run(_spec(seed=2))["id"]
            record = registry.finish(
                f_id, _FakeOutcome(ok=False, error={"kind": "ValueError", "message": "boom"})
            )
            assert record["status"] == "failed"
            assert record["error"]["kind"] == "ValueError"

    def test_list_filters_and_resolve(self, tmp_path):
        with RunRegistry(str(tmp_path / "r.sqlite")) as registry:
            small = registry.create_run(_spec(n=24, seed=1))
            big = registry.create_run(_spec(n=64, seed=1))
            assert [r["id"] for r in registry.list_runs()] == [big["id"], small["id"]]
            assert [r["id"] for r in registry.list_runs(n=24)] == [small["id"]]
            assert registry.list_runs(delta=4, status="queued", algorithm="cor36")
            assert registry.list_runs(algorithm="nope") == []
            assert registry.list_runs(since=time.time() + 60) == []
            assert registry.list_runs(limit=1) == [registry.get(big["id"])]
            # resolve: numeric ids and job-id strings (latest run wins).
            assert registry.resolve(str(small["id"]))["id"] == small["id"]
            again = registry.create_run(_spec(n=24, seed=1))
            assert registry.resolve(small["job_id"])["id"] == again["id"]
            assert registry.resolve("no-such-job") is None


class TestServiceExecution:
    def test_submit_executes_and_persists(self, service):
        record = service.submit(_spec())
        assert record["status"] == "queued"
        done = _wait_terminal(service.registry, record["id"])
        assert done["status"] == "done"
        assert done["summary"]["num_colors"] <= 5
        assert done["summary"]["schema_version"] == SCHEMA_VERSION
        events = [s for s, _ in service.registry.events(record["id"])]
        assert events == ["queued", "running", "done"]

    def test_rerun_is_bit_identical(self, service):
        first = _wait_terminal(service.registry, service.submit(_spec(seed=7))["id"])
        second = _wait_terminal(service.registry, service.rerun(first["id"])["id"])
        assert second["rerun_of"] == first["id"]
        assert second["spec"] == first["spec"]
        assert second["summary"] == first["summary"]

    def test_telemetry_file_streams_and_seals(self, service):
        import os

        done = _wait_terminal(service.registry, service.submit(_spec())["id"])
        path = service.telemetry_path(done)
        assert os.path.exists(path)
        with open(path) as handle:
            records = [json.loads(line) for line in handle if line.strip()]
        kinds = {r.get("type") for r in records}
        assert {"run.started", "run.finished", "snapshot"} <= kinds
        assert records[-1]["type"] == "snapshot"

    def test_failing_algorithm_reaches_failed(self, service, scratch_algorithm):
        def explode(graph, backend="auto", seed=1, **params):
            raise ValueError("deliberate failure")

        scratch_algorithm("svc-explode", explode)
        spec = JobSpec(algorithm="svc-explode", graph={"family": "path", "n": 4})
        record = _wait_terminal(service.registry, service.submit(spec)["id"])
        assert record["status"] == "failed"
        assert record["error"]["kind"] == "ValueError"
        events = [s for s, _ in service.registry.events(record["id"])]
        assert events[0] == "queued" and events[-1] == "failed"
        assert "running" in events

    def test_unparseable_stored_spec_reaches_failed(self, service):
        # A spec naming no registered algorithm still terminates the row.
        spec = JobSpec(algorithm="never-registered", graph={"family": "path", "n": 4})
        record = _wait_terminal(service.registry, service.submit(spec)["id"])
        assert record["status"] == "failed"

    def test_timeout_reaches_timeout_status(self, tmp_path, scratch_algorithm):
        if not _fork_available():
            pytest.skip("fork start method required to inherit the sleeper")

        def sleeper(graph, backend="auto", seed=1, **params):
            time.sleep(30)

        scratch_algorithm("svc-sleeper", sleeper)
        svc = ExperimentService(
            str(tmp_path / "registry.sqlite"),
            workers=2,
            timeout=0.3,
            retries=0,
            mode="process",
        ).start()
        try:
            spec = JobSpec(algorithm="svc-sleeper", graph={"family": "path", "n": 4})
            record = _wait_terminal(svc.registry, svc.submit(spec)["id"], timeout=90)
            assert record["status"] == "timeout"
            events = [s for s, _ in svc.registry.events(record["id"])]
            assert events[-1] == "timeout" and "running" in events
        finally:
            svc.close()

    def test_registry_survives_service_restart(self, tmp_path):
        db = str(tmp_path / "registry.sqlite")
        svc = ExperimentService(db, workers=1, mode="inline").start()
        try:
            first = _wait_terminal(svc.registry, svc.submit(_spec(seed=5))["id"])
            second = _wait_terminal(svc.registry, svc.rerun(first["id"])["id"])
        finally:
            svc.close()
        # A fresh daemon over the same file sees both runs, still done.
        svc = ExperimentService(db, workers=1, mode="inline").start()
        try:
            records = svc.registry.list_runs()
            assert {r["id"] for r in records} == {first["id"], second["id"]}
            assert all(r["status"] == "done" for r in records)
            third = _wait_terminal(svc.registry, svc.rerun(first["id"])["id"])
            assert third["summary"] == first["summary"]
        finally:
            svc.close()


class TestLiveServer:
    def test_health(self, live):
        client, _ = live
        payload = client.health()
        assert payload["status"] == "ok"
        assert "cor36" in payload["algorithms"]

    def test_submit_poll_rerun_roundtrip(self, live):
        client, _ = live
        run = client.submit(_spec(seed=9).to_dict(), wait=True, timeout=60)
        assert run["status"] == "done"
        again = client.rerun(run["id"], wait=True, timeout=60)
        assert again["status"] == "done"
        assert again["rerun_of"] == run["id"]
        assert again["summary"] == run["summary"]
        listed = client.runs(status="done")
        assert {r["id"] for r in listed} == {run["id"], again["id"]}
        assert client.runs(n=48, algorithm="cor36")
        assert client.runs(algorithm="nope") == []
        assert client.get(run["job_id"])["id"] == again["id"]

    def test_submit_unknown_algorithm_is_rejected(self, live):
        client, _ = live
        with pytest.raises(ServiceError) as info:
            client.submit({"algorithm": "nope", "graph": {"family": "path", "n": 4}})
        assert info.value.status == 400
        assert "nope" in info.value.message

    def test_unknown_run_is_404(self, live):
        client, _ = live
        with pytest.raises(ServiceError) as info:
            client.get(999)
        assert info.value.status == 404
        with pytest.raises(ServiceError):
            client.rerun(999)

    def test_tail_returns_the_runs_stream(self, live):
        client, _ = live
        run = client.submit(_spec().to_dict(), wait=True, timeout=60)
        records = list(client.tail(run["id"]))
        kinds = {r.get("type") for r in records}
        assert {"run.started", "run.finished", "snapshot"} <= kinds

    def test_tail_follow_ends_with_the_run(self, live, scratch_algorithm):
        client, _ = live

        def dawdle(graph, backend="auto", seed=1, **params):
            from repro.recipes import delta_plus_one_coloring

            time.sleep(0.3)
            return delta_plus_one_coloring(graph)

        scratch_algorithm("svc-dawdle", dawdle)
        run = client.submit(
            {"algorithm": "svc-dawdle", "graph": {"family": "cycle", "n": 12}}
        )
        records = list(client.tail(run["id"], follow=True))
        assert any(r.get("type") == "run.finished" for r in records)
        assert client.get(run["id"])["status"] == "done"

    def test_concurrent_submits_all_complete(self, live):
        client, svc = live
        results, errors = [], []

        def submit(seed):
            try:
                results.append(client.submit(_spec(n=24, seed=seed).to_dict()))
            except Exception as exc:  # pragma: no cover - failure detail
                errors.append(exc)

        threads = [threading.Thread(target=submit, args=(seed,)) for seed in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert len({r["id"] for r in results}) == 8
        for record in results:
            final = client.wait(record["id"], timeout=120)
            assert final["status"] == "done"
        assert len(client.runs(status="done", n=24)) == 8


class TestSchemaVersioning:
    def test_spec_and_summary_are_stamped(self):
        assert _spec().to_dict()["schema_version"] == SCHEMA_VERSION

    def test_newer_spec_warns_and_reads_known_fields(self):
        data = _spec(seed=4).to_dict()
        data["schema_version"] = SCHEMA_VERSION + 1
        data["from_the_future"] = {"ignored": True}
        with pytest.warns(SchemaVersionWarning, match="newer"):
            spec = JobSpec.from_dict(data)
        assert spec.seed == 4
        assert spec.algorithm == "cor36"

    def test_non_integer_stamp_warns(self):
        with pytest.warns(SchemaVersionWarning, match="non-integer"):
            assert check_schema_version({"schema_version": "v2"}) == SCHEMA_VERSION

    def test_current_stamp_is_silent(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            check_schema_version({"schema_version": SCHEMA_VERSION})
            JobSpec.from_dict(_spec().to_dict())

    def test_wire_decode_applies_the_tolerant_reader(self):
        body = json.dumps(
            {"schema_version": SCHEMA_VERSION + 3, "status": "done"}
        ).encode()
        with pytest.warns(SchemaVersionWarning):
            assert decode_body(body)["status"] == "done"
        with pytest.raises(ValueError):
            decode_body(b"not json")

    def test_submit_body_validation(self):
        spec = spec_from_body({"spec": _spec().to_dict()})
        assert spec.algorithm == "cor36"
        assert spec_from_body(_spec().to_dict()).job_id == spec.job_id
        with pytest.raises(ValueError, match="unknown algorithm"):
            spec_from_body({"algorithm": "nope", "graph": {"family": "path", "n": 4}})
        with pytest.raises(ValueError):
            spec_from_body(["not", "a", "dict"])
