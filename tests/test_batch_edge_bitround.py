"""Differential tests: edge-coloring and bit-round modules, batch vs scalar.

The Section 5 edge-coloring pipeline (line graph + CONGEST ledger) and the
Section 3 bit-channel executions (vertex and edge) now run as CSR batch
kernels.  The contract is bit-for-bit equivalence with the channel-level
references: identical edge colors, identical per-stage round counts, and
identical bit ledgers (``bits_per_edge_by_stage`` / ``bit_rounds_by_phase``
— the batch tier computes them from the channel drain's closed form, the
reference by actually shipping every bit).  The suite covers every protocol
variant, degenerate topologies, and the no-NumPy dispatch behavior.
"""

import pytest

from repro.bitround.edge_coloring import run_edge_coloring_bit_protocol
from repro.bitround.vertex_coloring import run_vertex_coloring_bit_protocol
from repro.edge.congest import edge_coloring_congest
from repro.edge.line_graph import build_line_graph
from repro.graphgen import (
    complete_graph,
    gnp_graph,
    path_graph,
    random_regular,
    star_graph,
)
from repro.parallel.jobs import resolve_algorithm
from repro.runtime.csr import numpy_available
from repro.runtime.graph import StaticGraph

requires_numpy = pytest.mark.requires_numpy
without_numpy = pytest.mark.skipif(
    numpy_available(), reason="covers the no-NumPy environment only"
)


def _skip_without_numpy():
    if not numpy_available():
        pytest.skip("NumPy unavailable (or disabled via REPRO_DISABLE_NUMPY)")


def graphs():
    yield StaticGraph(0, [])
    yield StaticGraph(3, [])  # edgeless
    yield StaticGraph(2, [(0, 1)])  # single edge
    yield path_graph(8)
    yield star_graph(6)
    yield complete_graph(5)
    yield gnp_graph(30, 0.15, seed=21)
    yield random_regular(48, 6, seed=22)


def _assert_proper_edge_coloring(graph, edge_colors):
    for v in graph.vertices():
        incident = [
            edge_colors[(min(v, u), max(v, u))] for u in graph.neighbors(v)
        ]
        assert len(incident) == len(set(incident)), v


class TestLineGraphParity:
    @requires_numpy
    def test_batch_line_graph_matches_reference(self):
        _skip_without_numpy()
        for graph in graphs():
            ref_line, ref_index = build_line_graph(graph, backend="reference")
            bat_line, bat_index = build_line_graph(graph, backend="batch")
            assert ref_index == bat_index
            assert ref_line.n == bat_line.n
            assert sorted(ref_line.edges) == sorted(bat_line.edges)


class TestCongestEdgeParity:
    @requires_numpy
    def test_cross_tier_summaries(self):
        _skip_without_numpy()
        for graph in graphs():
            for exact in (False, True):
                ref = edge_coloring_congest(
                    graph, exact=exact, backend="reference"
                )
                bat = edge_coloring_congest(graph, exact=exact, backend="batch")
                assert ref.to_dict() == bat.to_dict(), (graph.n, exact)

    @requires_numpy
    def test_coloring_is_proper_within_palette(self):
        _skip_without_numpy()
        graph = random_regular(48, 6, seed=23)
        result = edge_coloring_congest(graph, exact=True, backend="batch")
        _assert_proper_edge_coloring(graph, result.edge_colors)
        delta = graph.max_degree
        assert result.num_colors <= 2 * delta - 1


class TestBitroundVertexParity:
    @requires_numpy
    def test_cross_tier_summaries(self):
        _skip_without_numpy()
        for graph in graphs():
            ref = run_vertex_coloring_bit_protocol(graph, backend="reference")
            bat = run_vertex_coloring_bit_protocol(graph, backend="batch")
            assert ref.to_dict() == bat.to_dict(), graph.n

    @requires_numpy
    def test_ledger_phases_present(self):
        _skip_without_numpy()
        graph = random_regular(40, 4, seed=24)
        run = run_vertex_coloring_bit_protocol(graph, backend="batch")
        assert set(run.rounds_by_phase) == {
            "linial",
            "additive-group",
            "standard-reduction",
        }
        assert run.total_bit_rounds == sum(run.bit_rounds_by_phase.values())
        assert run.num_colors <= graph.max_degree + 1


class TestBitroundEdgeParity:
    @requires_numpy
    def test_cross_tier_summaries_all_variants(self):
        _skip_without_numpy()
        for graph in graphs():
            for exact in (False, True):
                for known in (False, True):
                    ref = run_edge_coloring_bit_protocol(
                        graph,
                        exact=exact,
                        neighbor_ids_known=known,
                        backend="reference",
                    )
                    bat = run_edge_coloring_bit_protocol(
                        graph,
                        exact=exact,
                        neighbor_ids_known=known,
                        backend="batch",
                    )
                    assert ref.to_dict() == bat.to_dict(), (
                        graph.n,
                        exact,
                        known,
                    )

    @requires_numpy
    def test_exact_variant_hits_2delta_minus_1(self):
        _skip_without_numpy()
        graph = random_regular(32, 4, seed=25)
        run = run_edge_coloring_bit_protocol(graph, exact=True, backend="batch")
        _assert_proper_edge_coloring(graph, run.edge_colors)
        assert run.num_colors <= 2 * graph.max_degree - 1
        # the id-exchange phase is only charged when IDs are unknown
        known = run_edge_coloring_bit_protocol(
            graph, exact=True, neighbor_ids_known=True, backend="batch"
        )
        assert "id-exchange" in run.rounds_by_phase
        assert "id-exchange" not in known.rounds_by_phase


class TestRegistryParity:
    @requires_numpy
    def test_cross_tier_summaries(self):
        _skip_without_numpy()
        graph = random_regular(40, 6, seed=26)
        graph.csr()
        for name in ("edge", "bitround", "bitround-edge"):
            fn = resolve_algorithm(name)
            ref = fn(graph, backend="reference", seed=2)
            bat = fn(graph, backend="batch", seed=2)
            assert ref.to_dict() == bat.to_dict(), name

    def test_reference_tier_runs_everywhere(self):
        graph = path_graph(10)
        for name in ("edge", "bitround", "bitround-edge"):
            result = resolve_algorithm(name)(graph, backend="reference", seed=2)
            assert result.rounds > 0
            assert result.num_colors >= 1


class TestNoNumpyDispatch:
    @without_numpy
    def test_batch_backend_raises_without_numpy(self):
        graph = path_graph(6)
        with pytest.raises(RuntimeError, match="needs NumPy"):
            edge_coloring_congest(graph, backend="batch")
        with pytest.raises(RuntimeError, match="needs NumPy"):
            run_vertex_coloring_bit_protocol(graph, backend="batch")
        with pytest.raises(RuntimeError, match="needs NumPy"):
            run_edge_coloring_bit_protocol(graph, backend="batch")

    @without_numpy
    def test_auto_backend_falls_back_to_reference(self):
        graph = path_graph(6)
        auto = run_vertex_coloring_bit_protocol(graph, backend="auto")
        ref = run_vertex_coloring_bit_protocol(graph, backend="reference")
        assert auto.to_dict() == ref.to_dict()
