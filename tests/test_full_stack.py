"""A full-stack scenario test: the life of one network, end to end.

Walks a realistic deployment through every subsystem in sequence, asserting
cross-module invariants at each step — the integration test of the whole
library rather than any one algorithm:

1. bring up a sensor field and compute TDMA slots (static exact coloring);
2. derive a link schedule (CONGEST edge coloring) and a gossip matching;
3. elect cluster heads (MIS) consistent with the coloring;
4. go dynamic: hand the same topology to the self-stabilizing stack,
   survive a fault storm, and verify the re-stabilized palette;
5. grow the network (within the ROM bounds) and re-verify;
6. cross-check every artifact with the analysis module.
"""

from repro import delta_plus_one_exact_no_reduction, graphgen
from repro.analysis import (
    is_maximal_independent_set,
    is_maximal_matching,
    is_proper_coloring,
    is_proper_edge_coloring,
    palette_histogram,
)
from repro.apps import locally_iterative_maximal_matching, locally_iterative_mis
from repro.edge import edge_coloring_congest
from repro.runtime.graph import DynamicGraph
from repro.selfstab import (
    FaultCampaign,
    SelfStabEngine,
    SelfStabExactColoring,
    SelfStabMIS,
)


class TestNetworkLifecycle:
    def test_whole_story(self):
        # 1. Static bring-up.
        field = graphgen.unit_disk_graph(n=70, radius=0.18, seed=33, degree_cap=6)
        delta = field.max_degree
        slots = delta_plus_one_exact_no_reduction(field)
        assert is_proper_coloring(field, slots.colors)
        assert max(slots.colors, default=0) <= delta
        histogram = palette_histogram(slots.colors)
        assert sum(histogram.values()) == field.n

        # 2. Link schedule + gossip matching.
        if field.m:
            schedule = edge_coloring_congest(field, exact=True)
            assert is_proper_edge_coloring(field, schedule.edge_colors)
            assert schedule.palette_size <= max(1, 2 * delta - 1)
            matching = locally_iterative_maximal_matching(field, schedule)
            assert is_maximal_matching(field, matching.edges)
            # Matched edges are a subset of slot-0..k of the schedule.
            assert set(matching.edges) <= set(schedule.edge_colors)

        # 3. Cluster heads, consistent with the slot assignment.
        heads = locally_iterative_mis(field, slots)
        assert is_maximal_independent_set(field, heads.members)

        # 4. The same topology goes dynamic.
        n_bound = field.n + 10
        delta_bound = max(delta, 4)
        dyn = DynamicGraph(n_bound, delta_bound)
        for v in field.vertices():
            dyn.add_vertex(v)
        for u, v in field.edges:
            dyn.add_edge(u, v)
        coloring = SelfStabExactColoring(n_bound, delta_bound)
        engine = SelfStabEngine(dyn, coloring)
        assert engine.run_to_quiescence() <= coloring.stabilization_bound()
        campaign = FaultCampaign(seed=34)
        campaign.corrupt_random_rams(engine, field.n)
        campaign.churn_edges(engine, removals=2, additions=2)
        assert engine.run_to_quiescence() <= coloring.stabilization_bound()
        finals = coloring.final_colors(dyn, engine.rams)
        assert max(finals.values()) <= delta_bound
        for v in dyn.vertices():
            for u in dyn.neighbors(v):
                assert finals[u] != finals[v]

        # 5. Growth within ROM bounds.
        new_nodes = [v for v in range(n_bound) if not dyn.is_present(v)][:5]
        for v in new_nodes:
            engine.spawn_vertex(v)
        anchor = dyn.vertices()[0]
        for v in new_nodes:
            if (
                dyn.degree(anchor) < delta_bound
                and dyn.degree(v) < delta_bound
            ):
                engine.add_edge(anchor, v)
        engine.run_to_quiescence()
        assert engine.is_legal()

        # 6. An MIS layer over the grown network.
        mis_algorithm = SelfStabMIS(n_bound, delta_bound)
        mis_engine = SelfStabEngine(dyn, mis_algorithm)
        mis_engine.run_to_quiescence()
        members = mis_algorithm.mis_members(dyn, mis_engine.rams)
        snapshot, index = dyn.snapshot()
        assert is_maximal_independent_set(snapshot, {index[v] for v in members})
