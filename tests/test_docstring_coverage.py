"""Documentation coverage: every public item carries a docstring.

Deliverable-level guarantee: modules, public classes, public functions and
public methods across the whole package are documented.  Dunder methods,
private names and trivially-inherited members are exempt.
"""

import importlib
import inspect
import pkgutil

import repro

EXEMPT_METHODS = {
    "__init__",  # documented at the class level
}


def iter_modules():
    yield repro
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        yield importlib.import_module(info.name)


def public_members(obj):
    for name, member in vars(obj).items():
        if name.startswith("_"):
            continue
        yield name, member


class TestDocstrings:
    def test_every_module_has_a_docstring(self):
        missing = [
            module.__name__
            for module in iter_modules()
            if not (module.__doc__ or "").strip()
        ]
        assert not missing, missing

    def test_every_public_class_and_function_documented(self):
        missing = []
        for module in iter_modules():
            for name, member in public_members(module):
                if getattr(member, "__module__", None) != module.__name__:
                    continue  # re-export; documented at its home
                if inspect.isclass(member) or inspect.isfunction(member):
                    if not (member.__doc__ or "").strip():
                        missing.append("%s.%s" % (module.__name__, name))
        assert not missing, missing

    @staticmethod
    def _inherited_doc(cls, name):
        """A documented declaration of ``name`` anywhere up the MRO counts:
        overriding an ABC's documented contract needs no restatement."""
        for base in cls.__mro__[1:]:
            attr = base.__dict__.get(name)
            if attr is None:
                continue
            func = attr
            if isinstance(attr, (staticmethod, classmethod)):
                func = attr.__func__
            elif isinstance(attr, property):
                func = attr.fget
            doc = getattr(func, "__doc__", None)
            if doc and doc.strip():
                return True
        return False

    def test_every_public_method_documented(self):
        missing = []
        for module in iter_modules():
            for cls_name, member in public_members(module):
                if not inspect.isclass(member):
                    continue
                if getattr(member, "__module__", None) != module.__name__:
                    continue
                for name, attr in vars(member).items():
                    if name.startswith("_") or name in EXEMPT_METHODS:
                        continue
                    func = attr
                    if isinstance(attr, (staticmethod, classmethod)):
                        func = attr.__func__
                    elif isinstance(attr, property):
                        func = attr.fget
                    if not inspect.isfunction(func):
                        continue
                    if (func.__doc__ or "").strip():
                        continue
                    if self._inherited_doc(member, name):
                        continue
                    missing.append(
                        "%s.%s.%s" % (module.__name__, cls_name, name)
                    )
        assert not missing, sorted(missing)
