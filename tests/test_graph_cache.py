"""The bounded LRU graph cache behind ``build_graph``.

Caching is safe because generation is deterministic in the spec and graphs
are immutable; these tests pin the accounting (hits/misses/evictions), the
LRU bound and its env knobs, the key's sensitivity to every parameter, and
— the property the shared-memory exporter relies on — that a cached graph's
CSR equals a freshly generated one even on the far side of a fork.
"""

import pytest

from repro import obs
from repro.parallel import (
    JobSpec,
    build_graph,
    clear_graph_cache,
    graph_cache_stats,
    run_many,
)
from repro.parallel.jobs import graph_key, peek_graph
from repro.parallel.runner import _multiprocessing_context
from repro.runtime.csr import numpy_available


def _spec(seed=1, n=64, degree=4, **extra):
    spec = {"family": "regular", "n": n, "degree": degree, "seed": seed}
    spec.update(extra)
    return spec


@pytest.fixture(autouse=True)
def _fresh_cache():
    clear_graph_cache()
    yield
    clear_graph_cache()


class TestAccounting:
    def test_hit_miss_counts(self):
        build_graph(_spec())
        stats = graph_cache_stats()
        assert (stats["hits"], stats["misses"], stats["entries"]) == (0, 1, 1)
        build_graph(_spec())
        stats = graph_cache_stats()
        assert (stats["hits"], stats["misses"], stats["entries"]) == (1, 1, 1)
        assert stats["bytes"] > 0

    def test_hit_returns_the_same_object(self):
        first = build_graph(_spec())
        second = build_graph(_spec())
        assert first is second

    def test_cache_false_bypasses(self):
        first = build_graph(_spec())
        fresh = build_graph(_spec(), cache=False)
        assert fresh is not first
        assert graph_cache_stats()["hits"] == 0

    def test_peek_never_builds_or_counts(self):
        assert peek_graph(_spec()) is None
        assert graph_cache_stats()["misses"] == 0
        built = build_graph(_spec())
        assert peek_graph(_spec()) is built
        assert graph_cache_stats()["hits"] == 0

    def test_counters_reach_obs(self):
        with obs.capture() as tel:
            build_graph(_spec())
            build_graph(_spec())
        assert tel.counter_value("parallel.graph_cache.misses") == 1
        assert tel.counter_value("parallel.graph_cache.hits") == 1


class TestBounds:
    def test_lru_eviction_respects_size_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_GRAPH_CACHE_SIZE", "2")
        build_graph(_spec(seed=1))
        build_graph(_spec(seed=2))
        build_graph(_spec(seed=3))  # evicts seed=1, the least recently used
        stats = graph_cache_stats()
        assert stats["entries"] == 2
        assert stats["evictions"] == 1
        assert peek_graph(_spec(seed=1)) is None
        assert peek_graph(_spec(seed=2)) is not None
        assert peek_graph(_spec(seed=3)) is not None

    def test_hit_refreshes_recency(self, monkeypatch):
        monkeypatch.setenv("REPRO_GRAPH_CACHE_SIZE", "2")
        build_graph(_spec(seed=1))
        build_graph(_spec(seed=2))
        build_graph(_spec(seed=1))  # hit: seed=1 becomes most recent
        build_graph(_spec(seed=3))  # so seed=2 is the one evicted
        assert peek_graph(_spec(seed=1)) is not None
        assert peek_graph(_spec(seed=2)) is None

    def test_size_zero_disables(self, monkeypatch):
        monkeypatch.setenv("REPRO_GRAPH_CACHE_SIZE", "0")
        first = build_graph(_spec())
        second = build_graph(_spec())
        assert first is not second
        assert graph_cache_stats()["entries"] == 0

    def test_byte_budget_keeps_oversized_graphs_out(self, monkeypatch):
        monkeypatch.setenv("REPRO_GRAPH_CACHE_BYTES", "1")
        build_graph(_spec())
        assert graph_cache_stats()["entries"] == 0


class TestKeySensitivity:
    def test_seed_and_params_distinguish_entries(self):
        base = build_graph(_spec(seed=1))
        assert build_graph(_spec(seed=2)) is not base
        assert build_graph(_spec(seed=1, degree=6)) is not base
        assert build_graph(_spec(seed=1, n=66)) is not base
        assert graph_cache_stats()["misses"] == 4

    def test_key_is_order_insensitive(self):
        a = {"family": "regular", "n": 64, "degree": 4, "seed": 1}
        b = {"seed": 1, "degree": 4, "n": 64, "family": "regular"}
        assert graph_key(a) == graph_key(b)

    def test_edges_family_is_hashable(self):
        spec = {"family": "edges", "n": 3, "edges": [[0, 1], [1, 2]]}
        key = graph_key(spec)
        assert build_graph(spec) is build_graph(spec)
        assert peek_graph(spec) is not None
        assert isinstance(hash(key), int)

    def test_unhashable_params_bypass_the_cache(self):
        spec = {"family": "regular", "n": 64, "degree": 4, "seed": 1, "weird": {"a": 1}}
        with pytest.raises(TypeError):
            graph_key(spec)
        first = build_graph(spec)
        second = build_graph(spec)
        assert first is not second
        assert graph_cache_stats()["entries"] == 0


class TestForkParity:
    def test_cached_and_fresh_csr_agree_across_fork(self):
        if not numpy_available():
            pytest.skip("CSR requires NumPy")
        context = _multiprocessing_context()
        if context is None or context.get_start_method() != "fork":
            pytest.skip("fork start method unavailable")
        spec = _spec(n=120, degree=6)
        cached = build_graph(spec)
        cached_csr = cached.csr()

        with context.Pool(processes=1) as pool:
            remote = pool.apply(_remote_csr_fields, (spec,))
        fresh = build_graph(spec, cache=False)
        fresh_csr = fresh.csr()
        for field in ("indptr", "indices", "rows", "degrees", "edge_u", "edge_v"):
            local = getattr(cached_csr, field).tolist()
            assert local == getattr(fresh_csr, field).tolist()
            assert local == remote[field]

    def test_cached_graph_outcomes_match_uncached(self):
        spec = _spec(n=120, degree=6)
        jobs = [JobSpec(algorithm="cor36", graph=spec, seed=s) for s in (1, 2)]
        build_graph(spec)  # warm: both jobs hit the cache
        warm = run_many(jobs, workers=1)
        clear_graph_cache()
        cold = run_many(jobs, workers=1)

        def views(outcomes):
            rows = []
            for outcome in outcomes:
                data = outcome.to_dict()
                data.pop("seconds")
                rows.append(data)
            return rows

        assert views(warm) == views(cold)


def _remote_csr_fields(spec):
    """Pool target: the CSR columns of the fork-inherited cached graph."""
    graph = build_graph(spec)
    csr = graph.csr()
    return {
        field: getattr(csr, field).tolist()
        for field in ("indptr", "indices", "rows", "degrees", "edge_u", "edge_v")
    }
