"""Tests for the seeded graph generators."""

import pytest

from repro import graphgen


class TestDeterministicFamilies:
    def test_path(self):
        g = graphgen.path_graph(5)
        assert (g.n, g.m, g.max_degree) == (5, 4, 2)

    def test_cycle(self):
        g = graphgen.cycle_graph(7)
        assert (g.n, g.m, g.max_degree) == (7, 7, 2)
        with pytest.raises(ValueError):
            graphgen.cycle_graph(2)

    def test_complete(self):
        g = graphgen.complete_graph(6)
        assert (g.n, g.m, g.max_degree) == (6, 15, 5)

    def test_star(self):
        g = graphgen.star_graph(8)
        assert (g.n, g.m, g.max_degree) == (8, 7, 7)

    def test_grid(self):
        g = graphgen.grid_graph(3, 4)
        assert g.n == 12
        assert g.m == 3 * 3 + 2 * 4  # horizontal + vertical
        assert g.max_degree <= 4

    def test_hypercube(self):
        g = graphgen.hypercube_graph(4)
        assert g.n == 16
        assert g.m == 32
        assert g.max_degree == 4

    def test_barbell(self):
        g = graphgen.barbell_of_cliques(5, 6)
        assert g.n == 16
        assert g.max_degree == 5  # clique degree 4 + 1 chain link


class TestRandomFamilies:
    def test_random_tree_is_tree(self):
        g = graphgen.random_tree(30, seed=11)
        assert g.m == g.n - 1
        # connected: BFS reaches everything
        assert len(g.bfs_distances([0])) == g.n

    def test_random_tree_seed_determinism(self):
        a = graphgen.random_tree(25, seed=3)
        b = graphgen.random_tree(25, seed=3)
        c = graphgen.random_tree(25, seed=4)
        assert a.edges == b.edges
        assert a.edges != c.edges

    def test_random_tree_tiny(self):
        assert graphgen.random_tree(1, seed=0).m == 0
        assert graphgen.random_tree(2, seed=0).edges == ((0, 1),)

    def test_gnp_determinism(self):
        a = graphgen.gnp_graph(40, 0.1, seed=9)
        b = graphgen.gnp_graph(40, 0.1, seed=9)
        assert a.edges == b.edges

    def test_gnp_density_extremes(self):
        assert graphgen.gnp_graph(10, 0.0, seed=1).m == 0
        assert graphgen.gnp_graph(10, 1.0, seed=1).m == 45

    def test_random_regular_degrees(self):
        g = graphgen.random_regular(24, 5, seed=2)
        assert all(g.degree(v) == 5 for v in g.vertices())

    def test_bounded_degree_respects_cap(self):
        g = graphgen.bounded_degree_random(50, delta=4, target_edges=90, seed=5)
        assert g.max_degree <= 4

    def test_bipartite_structure(self):
        g = graphgen.random_bipartite(10, 12, 0.3, seed=7)
        for u, v in g.edges:
            assert (u < 10) != (v < 10)

    def test_unit_disk_radius_zero(self):
        g = graphgen.unit_disk_graph(20, 0.0, seed=1)
        assert g.m == 0

    def test_unit_disk_degree_cap(self):
        g = graphgen.unit_disk_graph(60, 0.4, seed=1, degree_cap=5)
        assert g.max_degree <= 5

    def test_unit_disk_determinism(self):
        a = graphgen.unit_disk_graph(30, 0.3, seed=8)
        b = graphgen.unit_disk_graph(30, 0.3, seed=8)
        assert a.edges == b.edges


class TestExtendedFamilies:
    def test_caterpillar(self):
        g = graphgen.caterpillar_graph(spine=5, legs_per_vertex=3)
        assert g.n == 20
        assert g.m == g.n - 1  # a tree
        assert g.max_degree == 5  # interior spine: 2 spine + 3 legs

    def test_complete_bipartite(self):
        g = graphgen.complete_bipartite_graph(3, 5)
        assert (g.n, g.m, g.max_degree) == (8, 15, 5)
        for u, v in g.edges:
            assert (u < 3) != (v < 3)

    def test_circulant(self):
        g = graphgen.circulant_graph(12, (1, 3))
        assert g.n == 12
        assert all(g.degree(v) == 4 for v in g.vertices())

    def test_circulant_large_offset_collapses(self):
        g = graphgen.circulant_graph(6, (3,))  # i and i+3 pair up once
        assert g.m == 3

    def test_disjoint_union(self):
        a = graphgen.cycle_graph(4)
        b = graphgen.path_graph(3)
        g = graphgen.disjoint_union([a, b])
        assert g.n == 7
        assert g.m == a.m + b.m
        assert not g.has_edge(3, 4)

    def test_disjoint_union_empty(self):
        g = graphgen.disjoint_union([])
        assert g.n == 0
