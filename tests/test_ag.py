"""Tests for the Additive-Group algorithm (Section 3)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import is_proper_coloring
from repro.core.ag import AdditiveGroupColoring, ag_prime_for
from repro.graphgen import (
    complete_graph,
    cycle_graph,
    gnp_graph,
    path_graph,
    random_regular,
    star_graph,
)
from repro.mathutil.primes import is_prime
from repro.runtime import ColoringEngine, Visibility
from tests.conftest import assert_proper, id_coloring


class TestPrimeSelection:
    def test_prime_dominates_both_floors(self):
        for k, delta in [(100, 3), (4, 10), (400, 9), (1, 0)]:
            q = ag_prime_for(k, delta)
            assert is_prime(q)
            assert q * q >= k
            assert q >= 2 * delta + 1

    def test_theta_delta_squared_regime(self):
        # k = Theta(Delta^2) => q in [sqrt(k), 2 sqrt(k)] (Bertrand).
        for delta in (5, 10, 20, 40):
            k = (2 * delta + 1) ** 2
            q = ag_prime_for(k, delta)
            assert q <= 2 * (2 * delta + 1)


class TestAGOnFixedGraphs:
    @pytest.mark.parametrize(
        "graph",
        [
            path_graph(20),
            cycle_graph(21),
            star_graph(15),
            complete_graph(8),
            gnp_graph(50, 0.12, seed=1),
            random_regular(40, 6, seed=2),
        ],
        ids=["path", "cycle", "star", "clique", "gnp", "regular"],
    )
    def test_proper_every_round_and_palette(self, graph):
        engine = ColoringEngine(graph, check_proper_each_round=True)
        stage = AdditiveGroupColoring()
        result = engine.run(stage, id_coloring(graph))
        assert_proper(graph, result.int_colors, "AG output")
        assert max(result.int_colors, default=0) < stage.q
        assert result.rounds_used <= stage.q

    def test_corollary_3_5_palette_is_o_sqrt_k(self):
        graph = random_regular(60, 6, seed=3)
        delta = graph.max_degree
        k = (2 * delta + 1) ** 2
        # Build a proper k-coloring spread over the whole palette.
        rng = random.Random(0)
        base = id_coloring(graph)
        spread = sorted(rng.sample(range(k), graph.n))
        coloring = [spread[c] for c in base]
        engine = ColoringEngine(graph, check_proper_each_round=True)
        stage = AdditiveGroupColoring()
        result = engine.run(stage, coloring, in_palette_size=k)
        assert_proper(graph, result.int_colors)
        assert stage.q <= 2 * (2 * delta + 1)  # O(sqrt(k)) colors

    def test_rejects_color_outside_q_squared(self):
        graph = path_graph(2)
        stage = AdditiveGroupColoring()
        engine = ColoringEngine(graph)
        with pytest.raises(ValueError):
            engine.run(stage, [0, 10 ** 9], in_palette_size=2)


class TestAGSemantics:
    def test_step_ignores_round_index(self):
        stage = AdditiveGroupColoring()
        from repro.runtime.algorithm import NetworkInfo

        stage.configure(NetworkInfo(10, 2, 25))
        color = (2, 3)
        neighborhood = ((1, 3),)
        assert stage.step(0, color, neighborhood) == stage.step(99, color, neighborhood)
        assert stage.uniform_step

    def test_conflict_rotates_second_coordinate(self):
        stage = AdditiveGroupColoring()
        from repro.runtime.algorithm import NetworkInfo

        stage.configure(NetworkInfo(10, 2, 25))
        q = stage.q
        assert stage.step(0, (2, 3), ((4, 3),)) == (2, (3 + 2) % q)

    def test_no_conflict_finalizes(self):
        stage = AdditiveGroupColoring()
        from repro.runtime.algorithm import NetworkInfo

        stage.configure(NetworkInfo(10, 2, 25))
        assert stage.step(0, (2, 3), ((4, 1),)) == (0, 3)

    def test_finalized_vertex_is_fixed_point_of_the_uniform_step(self):
        # The self-stabilization prerequisite: running the step forever on a
        # finalized color never changes it, conflict or not.
        stage = AdditiveGroupColoring()
        from repro.runtime.algorithm import NetworkInfo

        stage.configure(NetworkInfo(10, 2, 25))
        assert stage.step(0, (0, 3), ((1, 3),)) == (0, 3)
        assert stage.step(0, (0, 3), ((1, 2),)) == (0, 3)

    def test_lemma_3_3_working_neighbors_conflict_once_per_q_rounds(self):
        # Two adjacent working vertices: second coordinates coincide at most
        # once within q rounds.
        stage = AdditiveGroupColoring()
        from repro.runtime.algorithm import NetworkInfo

        stage.configure(NetworkInfo(2, 1, 49))
        q = stage.q
        a_u, a_v = 2, 5
        conflicts = 0
        b_u = b_v = 3  # start in conflict
        for _ in range(q):
            if b_u == b_v:
                conflicts += 1
            b_u = (b_u + a_u) % q
            b_v = (b_v + a_v) % q
        assert conflicts == 1

    def test_lemma_3_4_working_vs_final_conflict_once_per_q_rounds(self):
        stage = AdditiveGroupColoring()
        from repro.runtime.algorithm import NetworkInfo

        stage.configure(NetworkInfo(2, 1, 49))
        q = stage.q
        final_b = 4
        b, a = 0, 3
        conflicts = sum(
            1
            for i in range(q)
            if (b + i * a) % q == final_b
        )
        assert conflicts == 1

    def test_message_bits_one_after_first_round(self):
        stage = AdditiveGroupColoring()
        from repro.runtime.algorithm import NetworkInfo

        stage.configure(NetworkInfo(100, 5, 121))
        assert stage.message_bits(0) > 1
        assert stage.message_bits(1) == 1
        assert stage.message_bits(50) == 1


class TestAGInSetLocal:
    def test_set_local_equals_local(self):
        graph = gnp_graph(40, 0.15, seed=4)
        initial = id_coloring(graph)
        local = ColoringEngine(graph, visibility=Visibility.LOCAL).run(
            AdditiveGroupColoring(), initial
        )
        setlocal = ColoringEngine(graph, visibility=Visibility.SET_LOCAL).run(
            AdditiveGroupColoring(), initial
        )
        assert local.int_colors == setlocal.int_colors
        assert local.rounds_used == setlocal.rounds_used

    def test_set_local_output_proper(self):
        graph = random_regular(30, 4, seed=5)
        engine = ColoringEngine(
            graph, visibility=Visibility.SET_LOCAL, check_proper_each_round=True
        )
        result = engine.run(AdditiveGroupColoring(), id_coloring(graph))
        assert is_proper_coloring(graph, result.int_colors)


class TestAGPropertyBased:
    @given(st.integers(min_value=0, max_value=10 ** 6))
    @settings(max_examples=40, deadline=None)
    def test_random_graphs_random_colorings(self, seed):
        rng = random.Random(seed)
        n = rng.randint(2, 40)
        p = rng.uniform(0.0, 0.3)
        graph = gnp_graph(n, p, seed=seed)
        delta = graph.max_degree
        k = max(n, (2 * delta + 1) ** 2)
        # Random proper coloring over [k]: perturb the identity coloring.
        palette = rng.sample(range(k), n)
        coloring = list(palette)
        engine = ColoringEngine(graph, check_proper_each_round=True)
        stage = AdditiveGroupColoring()
        result = engine.run(stage, coloring, in_palette_size=k)
        assert is_proper_coloring(graph, result.int_colors)
        assert max(result.int_colors) < stage.q
        assert result.rounds_used <= stage.q

    @given(st.integers(min_value=0, max_value=10 ** 6))
    @settings(max_examples=20, deadline=None)
    def test_running_longer_changes_nothing(self, seed):
        """The uniform step keeps finalized colorings fixed — forever."""
        graph = gnp_graph(25, 0.2, seed=seed)
        engine = ColoringEngine(graph)
        stage = AdditiveGroupColoring()
        result = engine.run(stage, id_coloring(graph))
        # Continue stepping manually from the final internal colors.
        colors = list(result.colors)
        for r in range(5):
            new = [
                stage.step(
                    result.rounds_used + r,
                    colors[v],
                    tuple(colors[u] for u in graph.neighbors(v)),
                )
                for v in graph.vertices()
            ]
            assert new == colors
