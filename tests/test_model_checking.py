"""Exhaustive model checking of the AG family on tiny graphs.

For small moduli the *entire* joint state space fits in memory, so the key
theorems can be checked over every reachable configuration, not just
sampled runs:

* **Properness is inductive** (Lemmas 3.2 / 7.1 / 7.4): from every proper
  joint state — reachable or not — one synchronous step yields a proper
  joint state.
* **Convergence**: from every proper joint state, iterating the step reaches
  an all-final fixed point within the stage's ``rounds_bound``.

This covers adversarial configurations no random test would hit (the
self-stabilizing setting can produce *any* proper intermediate state, so
induction over all of them is exactly the right property).
"""

import itertools

import pytest

from repro.core.ag import AdditiveGroupColoring
from repro.core.ag3 import ThreeDimensionalAG
from repro.core.agn import AdditiveGroupZN
from repro.core.hybrid import ExactDeltaPlusOneHybrid
from repro.graphgen import complete_graph, path_graph
from repro.runtime.algorithm import NetworkInfo


def joint_step(stage, graph, state):
    return tuple(
        stage.step(
            0,
            state[v],
            tuple(state[u] for u in graph.neighbors(v)),
        )
        for v in graph.vertices()
    )


def is_proper_state(graph, state):
    return all(state[u] != state[v] for u, v in graph.edges)


def all_proper_states(graph, vertex_states):
    for state in itertools.product(vertex_states, repeat=graph.n):
        if is_proper_state(graph, state):
            yield state


def check_inductive_properness_and_convergence(stage, graph, vertex_states):
    checked = 0
    for state in all_proper_states(graph, vertex_states):
        nxt = joint_step(stage, graph, state)
        assert is_proper_state(graph, nxt), (state, nxt)
        # Convergence within the proven bound.
        current = state
        for _ in range(stage.rounds_bound):
            if all(stage.is_final(c) for c in current):
                break
            current = joint_step(stage, graph, current)
        assert all(stage.is_final(c) for c in current), state
        assert joint_step(stage, graph, current) == current  # fixed point
        checked += 1
    return checked


class TestAGExhaustive:
    @pytest.mark.parametrize(
        "graph", [path_graph(2), path_graph(3), complete_graph(3)],
        ids=["P2", "P3", "K3"],
    )
    def test_every_proper_state(self, graph):
        stage = AdditiveGroupColoring()
        stage.configure(NetworkInfo(graph.n, graph.max_degree, 9))
        q = stage.q
        states = [(a, b) for a in range(q) for b in range(q)]
        checked = check_inductive_properness_and_convergence(stage, graph, states)
        assert checked > q ** 2  # genuinely many configurations


class TestAGNExhaustive:
    @pytest.mark.parametrize(
        "graph", [path_graph(2), path_graph(3), complete_graph(3)],
        ids=["P2", "P3", "K3"],
    )
    def test_every_proper_state(self, graph):
        stage = AdditiveGroupZN()
        stage.configure(
            NetworkInfo(graph.n, graph.max_degree, 2 * (graph.max_degree + 1))
        )
        n_mod = stage.modulus
        states = [(b, a) for b in (0, 1) for a in range(n_mod)]
        checked = check_inductive_properness_and_convergence(stage, graph, states)
        assert checked > 0


class TestHybridExhaustive:
    @pytest.mark.parametrize(
        "graph", [path_graph(2), path_graph(3), complete_graph(3)],
        ids=["P2", "P3", "K3"],
    )
    def test_every_proper_state(self, graph):
        stage = ExactDeltaPlusOneHybrid()
        stage.configure(
            NetworkInfo(graph.n, graph.max_degree, 2 * (graph.max_degree + 1))
        )
        n_c, p = stage.n_colors, stage.p
        states = (
            [("L", 0, a) for a in range(n_c)]
            + [("L", 1, a) for a in range(n_c)]
            + [("H", b, a) for b in range(1, p) for a in range(p)]
        )
        if graph.n == 3:
            # Keep K3/P3 tractable: restrict high rotations to b in {1, 2}
            # (the encode range actually produced by upstream stages is the
            # low b's; every low state is still included).
            states = (
                [("L", 0, a) for a in range(n_c)]
                + [("L", 1, a) for a in range(n_c)]
                + [("H", b, a) for b in (1, 2) for a in range(p)]
            )
        checked = check_inductive_properness_and_convergence(stage, graph, states)
        assert checked > 0


class Test3AGExhaustivePairs:
    def test_every_proper_pair_state(self):
        graph = path_graph(2)
        stage = ThreeDimensionalAG()
        stage.configure(NetworkInfo(2, 1, 8))
        p = stage.p
        # All triples is p^3 per vertex; pairs = p^6 is too many — restrict
        # the first two coordinates to a representative band but keep every
        # a (the deadlock-prone dimension is (c, b) lockstep, fully covered
        # by including all equal-(c,b) pairs).
        states = [
            (c, b, a)
            for c in range(min(p, 3))
            for b in range(min(p, 3))
            for a in range(p)
        ]
        checked = check_inductive_properness_and_convergence(stage, graph, states)
        assert checked > 0
