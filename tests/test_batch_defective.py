"""Differential tests: the defective-coloring modules' batch kernels.

:class:`DefectiveLinialColoring` (Lemma 3.4's tolerant Linial stage) and
:func:`kuhn_defective_edge_coloring` (the one-round 2-defective edge stage)
must be bit-for-bit identical between the scalar reference and the CSR
batch tier — colors, round counts, and per-round metrics rows.  The suite
also pins the tolerant step's fixed-point behavior and the Maus-style ``k``
knob that parameterizes the whole sublinear family.
"""

import pytest

from repro.analysis.invariants import coloring_defect
from repro.defective.kuhn_edge import (
    kuhn_defective_edge_arrays,
    kuhn_defective_edge_coloring,
)
from repro.defective.vertex import (
    DefectiveLinialColoring,
    defective_linial_next_color,
)
from repro.graphgen import (
    complete_graph,
    gnp_graph,
    path_graph,
    random_regular,
    star_graph,
)
from repro.parallel.jobs import resolve_algorithm
from repro.recipes import (
    _resolve_k_knob,
    one_plus_eps_delta_coloring,
    sublinear_delta_plus_one_coloring,
)
from repro.runtime.backends import resolve_backend
from repro.runtime.csr import numpy_available
from repro.runtime.graph import StaticGraph

requires_numpy = pytest.mark.requires_numpy


def _skip_without_numpy():
    if not numpy_available():
        pytest.skip("NumPy unavailable (or disabled via REPRO_DISABLE_NUMPY)")


def graphs():
    yield StaticGraph(0, [])
    yield StaticGraph(4, [])  # edgeless
    yield path_graph(10)
    yield star_graph(9)
    yield complete_graph(7)
    yield gnp_graph(50, 0.12, seed=8)
    yield random_regular(80, 8, seed=9)


def _run_defective(graph, tolerance, backend):
    engine = resolve_backend("engine", backend)(graph)
    return engine.run(
        DefectiveLinialColoring(tolerance),
        list(range(graph.n)),
        in_palette_size=max(2, graph.n),
    )


class TestDefectiveLinialParity:
    @requires_numpy
    def test_cross_tier_summaries_and_metrics(self):
        _skip_without_numpy()
        for graph in graphs():
            for tolerance in (1, 2, 4):
                ref = _run_defective(graph, tolerance, "reference")
                bat = _run_defective(graph, tolerance, "batch")
                assert ref.to_dict() == bat.to_dict(), (graph.n, tolerance)

    @requires_numpy
    def test_defect_stays_within_stage_bound(self):
        _skip_without_numpy()
        graph = random_regular(120, 10, seed=11)
        for tolerance in (1, 3):
            stage = DefectiveLinialColoring(tolerance)
            engine = resolve_backend("engine", "batch")(graph)
            run = engine.run(
                stage, list(range(graph.n)), in_palette_size=max(2, graph.n)
            )
            # configure() fills defect_bound with the run's concrete bound
            assert coloring_defect(graph, run.int_colors) <= stage.defect_bound

    def test_fixed_point_neighborhood_skips_the_scan(self):
        # All neighbors share our color: no distinctly-colored neighbor can
        # collide, so the step must return the x=0 evaluation — the same
        # answer an isolated vertex gets — instead of scanning every point.
        q, degree = 7, 2
        for color in (0, 3, 11):
            alone = defective_linial_next_color(color, [], q, degree)
            crowded = defective_linial_next_color(
                color, [color, color, color], q, degree
            )
            assert alone == crowded
            assert crowded // q == 0  # x = 0 wins with zero collisions


class TestKuhnEdgeParity:
    @requires_numpy
    def test_edge_coloring_matches_reference(self):
        _skip_without_numpy()
        for graph in graphs():
            assert kuhn_defective_edge_coloring(
                graph, backend="batch"
            ) == kuhn_defective_edge_coloring(graph, backend="reference")

    @requires_numpy
    def test_arrays_agree_with_dict_form(self):
        _skip_without_numpy()
        graph = gnp_graph(40, 0.2, seed=12)
        by_edge = kuhn_defective_edge_coloring(graph, backend="batch")
        i_arr, j_arr = kuhn_defective_edge_arrays(graph)
        for slot, edge in enumerate(graph.edges):
            assert by_edge[edge] == (int(i_arr[slot]), int(j_arr[slot]))


class TestKKnob:
    def test_mapping_is_ceil_delta_over_k(self):
        assert _resolve_k_knob(None, 1, 16) == 16
        assert _resolve_k_knob(None, 3, 16) == 6
        assert _resolve_k_knob(None, 16, 16) == 1
        assert _resolve_k_knob(None, 100, 16) == 1  # clamps at 1
        assert _resolve_k_knob(5, None, 16) == 5  # tolerance passes through

    def test_both_spellings_rejected(self):
        with pytest.raises(ValueError, match="not both"):
            _resolve_k_knob(3, 2, 16)
        with pytest.raises(ValueError, match=">= 1"):
            _resolve_k_knob(None, 0, 16)

    @requires_numpy
    def test_recipes_accept_k(self):
        _skip_without_numpy()
        graph = random_regular(60, 8, seed=13)
        small_k = one_plus_eps_delta_coloring(graph, k=1)
        large_k = one_plus_eps_delta_coloring(graph, k=8)
        # Maus direction: larger k buys rounds with palette.
        assert small_k.num_colors <= large_k.num_colors
        exact = sublinear_delta_plus_one_coloring(graph, k=2)
        assert exact.num_colors <= graph.max_degree + 1
        with pytest.raises(ValueError, match="not both"):
            one_plus_eps_delta_coloring(graph, tolerance=2, k=2)

    @requires_numpy
    def test_registry_defective_takes_k(self):
        _skip_without_numpy()
        graph = random_regular(60, 8, seed=14)
        graph.csr()
        fn = resolve_algorithm("defective")
        ref = fn(graph, backend="reference", seed=1, k=2)
        bat = fn(graph, backend="batch", seed=1, k=2)
        assert ref.to_dict() == bat.to_dict()
        with pytest.raises(ValueError, match="not both"):
            fn(graph, backend="reference", seed=1, k=2, tolerance=3)
