"""Tests for AG(N) — the exact (Delta+1) step over Z_{Delta+1} (Section 7)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import is_proper_coloring
from repro.core.agn import AdditiveGroupZN
from repro.graphgen import cycle_graph, gnp_graph, path_graph, random_regular
from repro.runtime import ColoringEngine
from repro.runtime.algorithm import NetworkInfo
from repro.baselines import greedy_coloring
from tests.conftest import assert_proper


def two_n_coloring(graph, seed):
    """A proper coloring using (up to) 2 * (Delta + 1) colors."""
    n_colors = graph.max_degree + 1
    base = greedy_coloring(graph)
    rng = random.Random(seed)
    # Randomly lift some classes into the upper half of the palette.
    lifted = [c + n_colors if rng.random() < 0.5 else c for c in base]
    return lifted


class TestExactness:
    @pytest.mark.parametrize(
        "graph",
        [
            path_graph(15),
            cycle_graph(16),
            gnp_graph(40, 0.15, seed=1),
            random_regular(30, 5, seed=2),
        ],
        ids=["path", "cycle", "gnp", "regular"],
    )
    def test_exact_delta_plus_one_within_n_rounds(self, graph):
        coloring = two_n_coloring(graph, seed=3)
        engine = ColoringEngine(graph, check_proper_each_round=True)
        stage = AdditiveGroupZN()
        result = engine.run(
            stage, coloring, in_palette_size=2 * (graph.max_degree + 1)
        )
        assert_proper(graph, result.int_colors, "AG(N) output")
        assert max(result.int_colors) <= graph.max_degree  # exactly Delta+1 colors
        assert result.rounds_used <= graph.max_degree + 1

    def test_rejects_oversized_palette(self):
        graph = path_graph(4)
        stage = AdditiveGroupZN()
        engine = ColoringEngine(graph)
        with pytest.raises(ValueError):
            engine.run(stage, [0, 1, 2, 3], in_palette_size=100)


class TestStepSemantics:
    def _configured(self, delta=4):
        stage = AdditiveGroupZN()
        stage.configure(NetworkInfo(20, delta, 2 * (delta + 1)))
        return stage

    def test_final_colors_never_move(self):
        stage = self._configured()
        assert stage.step(0, (0, 3), ((1, 3),)) == (0, 3)

    def test_conflict_includes_final_neighbors(self):
        stage = self._configured()
        n = stage.modulus
        # Working <1,3> vs finalized neighbor <0,3>: conflict, rotate by 1.
        assert stage.step(0, (1, 3), ((0, 3),)) == (1, 4 % n)

    def test_conflict_regardless_of_neighbor_b(self):
        stage = self._configured()
        n = stage.modulus
        assert stage.step(0, (1, 3), ((1, 3),)) == (1, 4 % n)

    def test_no_conflict_finalizes(self):
        stage = self._configured()
        assert stage.step(0, (1, 3), ((0, 2), (1, 4))) == (0, 3)

    def test_working_neighbors_never_collide(self):
        """Both advance by 1 mod N: initial distinctness is preserved."""
        stage = self._configured(delta=6)
        n = stage.modulus
        a_u, a_v = 2, 5
        for _ in range(3 * n):
            assert a_u != a_v
            a_u, a_v = (a_u + 1) % n, (a_v + 1) % n


class TestPropertyBased:
    @given(st.integers(min_value=0, max_value=10 ** 6))
    @settings(max_examples=40, deadline=None)
    def test_random_graphs(self, seed):
        rng = random.Random(seed)
        n = rng.randint(2, 40)
        graph = gnp_graph(n, rng.uniform(0, 0.35), seed=seed)
        coloring = two_n_coloring(graph, seed)
        engine = ColoringEngine(graph, check_proper_each_round=True)
        stage = AdditiveGroupZN()
        result = engine.run(
            stage, coloring, in_palette_size=2 * (graph.max_degree + 1)
        )
        assert is_proper_coloring(graph, result.int_colors)
        assert max(result.int_colors) <= graph.max_degree
        assert result.rounds_used <= graph.max_degree + 1


class TestBoundaryModuli:
    def test_delta_zero_single_vertices(self):
        from repro.runtime.graph import StaticGraph

        graph = StaticGraph(3, [])
        engine = ColoringEngine(graph)
        stage = AdditiveGroupZN()
        result = engine.run(stage, [0, 1, 0], in_palette_size=2)
        assert all(c == 0 for c in result.int_colors)

    def test_delta_one_matching(self):
        graph = path_graph(2)  # N = 2, palette up to 4
        engine = ColoringEngine(graph, check_proper_each_round=True)
        stage = AdditiveGroupZN()
        result = engine.run(stage, [2, 3], in_palette_size=4)
        assert sorted(result.int_colors) == [0, 1]
        assert result.rounds_used <= 2

    def test_modulus_is_delta_plus_one_not_prime(self):
        # N = 9 (composite): primality is never used by AG(N).
        graph = random_regular(20, 8, seed=44)
        engine = ColoringEngine(graph, check_proper_each_round=True)
        stage = AdditiveGroupZN()
        result = engine.run(
            stage, two_n_coloring(graph, seed=45), in_palette_size=18
        )
        assert stage.modulus == 9
        assert is_proper_coloring(graph, result.int_colors)
        assert max(result.int_colors) <= 8


class TestConflictWindowLemma:
    def test_working_vs_final_conflicts_once_per_n_rounds(self):
        """The AG(N) analogue of Lemma 3.4, measured on real histories."""
        graph = gnp_graph(24, 0.25, seed=46)
        engine = ColoringEngine(graph, record_history=True)
        stage = AdditiveGroupZN()
        result = engine.run(
            stage,
            two_n_coloring(graph, seed=47),
            in_palette_size=2 * (graph.max_degree + 1),
        )
        window = result.history[: stage.modulus + 1]
        for u, v in graph.edges:
            conflicts = sum(
                1 for colors in window if colors[u][1] == colors[v][1]
            )
            # Working pairs never conflict; working-final at most once per
            # window; final-final never (proper).  Total <= 1 within N+1.
            assert conflicts <= 2
