"""SET-LOCAL equivalence for the remaining AG-family stages.

AG and 3AG are covered in their own test modules; here AG(N), the exact
hybrid, and both color reductions are shown to produce bit-identical output
under set visibility — completing the Section 1.2.3 claim for every stage
the paper's pipelines use.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import KuhnWattenhoferReduction
from repro.core import (
    AdditiveGroupColoring,
    AdditiveGroupZN,
    ExactDeltaPlusOneHybrid,
    StandardColorReduction,
)
from repro.graphgen import gnp_graph
from repro.linial import LinialColoring
from repro.runtime import ColoringEngine, Visibility
from tests.test_agn import two_n_coloring


def run_both_modes(graph, stage_factory, initial, palette):
    outputs = []
    for visibility in (Visibility.LOCAL, Visibility.SET_LOCAL):
        engine = ColoringEngine(graph, visibility=visibility)
        run = engine.run(stage_factory(), initial, in_palette_size=palette)
        outputs.append((run.int_colors, run.rounds_used))
    return outputs


class TestSetLocalEquivalence:
    @given(st.integers(min_value=0, max_value=10 ** 6))
    @settings(max_examples=15, deadline=None)
    def test_agn(self, seed):
        rng = random.Random(seed)
        graph = gnp_graph(rng.randint(2, 30), rng.uniform(0.1, 0.3), seed=seed)
        initial = two_n_coloring(graph, seed)
        local, setlocal = run_both_modes(
            graph, AdditiveGroupZN, initial, 2 * (graph.max_degree + 1)
        )
        assert local == setlocal

    @given(st.integers(min_value=0, max_value=10 ** 6))
    @settings(max_examples=15, deadline=None)
    def test_exact_hybrid(self, seed):
        rng = random.Random(seed)
        graph = gnp_graph(rng.randint(2, 30), rng.uniform(0.1, 0.3), seed=seed)
        ag_engine = ColoringEngine(graph)
        ag = AdditiveGroupColoring()
        pre = ag_engine.run(ag, list(range(graph.n)))
        local, setlocal = run_both_modes(
            graph, ExactDeltaPlusOneHybrid, pre.int_colors, ag.out_palette_size
        )
        assert local == setlocal

    @given(st.integers(min_value=0, max_value=10 ** 6))
    @settings(max_examples=10, deadline=None)
    def test_linial_and_reductions(self, seed):
        rng = random.Random(seed)
        graph = gnp_graph(rng.randint(2, 30), rng.uniform(0.1, 0.3), seed=seed)
        initial = list(range(graph.n))
        for factory in (LinialColoring, StandardColorReduction, KuhnWattenhoferReduction):
            local, setlocal = run_both_modes(graph, factory, initial, graph.n)
            assert local == setlocal, factory.__name__
