"""Differential parity of the out-of-core engine against the batch engine.

Everything observable must match at sizes where both engines run: colors,
per-stage rounds, per-round metrics rows, error types and messages, and the
early-exit behavior.  The oocore tier earns its keep purely by scaling —
never by changing an answer.
"""

import os
import tempfile

import pytest

from repro.analysis import is_proper_coloring
from repro.graphgen import gnp_graph, random_regular
from repro.runtime.csr import numpy_available

pytestmark = pytest.mark.skipif(
    not numpy_available(), reason="the out-of-core tier needs NumPy"
)


def _sharded(graph, shards=4):
    from repro.oocore.writers import shard_static_graph

    return shard_static_graph(
        graph, tempfile.mkdtemp(prefix="oocore-engine-test-"), shards=shards
    )


def _metric_rows(result):
    return [
        (r.round_index, r.messages, r.bits, r.changed_vertices)
        for r in result.metrics.rounds
    ]


def _stage_classes():
    from repro.core.ag import AdditiveGroupColoring
    from repro.core.reductions import StandardColorReduction
    from repro.linial.core import LinialColoring

    return [LinialColoring, AdditiveGroupColoring, StandardColorReduction]


class TestStageParity:
    @pytest.mark.parametrize("stage_index", [0, 1, 2])
    @pytest.mark.parametrize("shards", [1, 3, 7])
    def test_single_stage_matches_batch(self, stage_index, shards):
        from repro.oocore.engine import OocoreColoringEngine
        from repro.runtime.fast_engine import BatchColoringEngine

        make = _stage_classes()[stage_index]
        graph = random_regular(60, 4, seed=5)
        sharded = _sharded(graph, shards=shards)
        initial = list(range(graph.n))
        batch = BatchColoringEngine(graph).run(make(), initial)
        oocore = OocoreColoringEngine(sharded).run(make(), initial)
        assert oocore.int_colors == batch.int_colors
        assert oocore.rounds_used == batch.rounds_used
        assert _metric_rows(oocore) == _metric_rows(batch)
        assert oocore.num_colors == batch.num_colors

    def test_gnp_pipeline_parity(self):
        from repro.recipes import delta_plus_one_coloring

        graph = gnp_graph(90, 0.08, seed=3)
        sharded = _sharded(graph, shards=4)
        batch = delta_plus_one_coloring(graph, backend="batch")
        oocore = delta_plus_one_coloring(sharded, backend="oocore")
        assert list(oocore.colors) == list(batch.colors)
        assert oocore.rounds_by_stage() == batch.rounds_by_stage()
        assert oocore.total_bits == batch.total_bits
        assert is_proper_coloring(graph, oocore.colors)

    def test_check_proper_each_round(self):
        from repro.core.ag import AdditiveGroupColoring
        from repro.oocore.engine import OocoreColoringEngine
        from repro.runtime.fast_engine import BatchColoringEngine

        graph = random_regular(40, 4, seed=2)
        sharded = _sharded(graph)
        initial = list(range(graph.n))
        batch = BatchColoringEngine(graph, check_proper_each_round=True).run(
            AdditiveGroupColoring(), initial
        )
        oocore = OocoreColoringEngine(
            sharded, check_proper_each_round=True
        ).run(AdditiveGroupColoring(), initial)
        assert oocore.int_colors == batch.int_colors

    def test_improper_initial_raises_identically(self):
        from repro.core.ag import AdditiveGroupColoring
        from repro.errors import ImproperColoringError
        from repro.oocore.engine import OocoreColoringEngine
        from repro.runtime.fast_engine import BatchColoringEngine

        graph = random_regular(30, 3, seed=4)
        sharded = _sharded(graph)
        improper = [0] * graph.n  # monochromatic everywhere
        with pytest.raises(ImproperColoringError) as batch_err:
            BatchColoringEngine(graph, check_proper_each_round=True).run(
                AdditiveGroupColoring(), improper, in_palette_size=graph.n
            )
        with pytest.raises(ImproperColoringError) as oocore_err:
            OocoreColoringEngine(sharded, check_proper_each_round=True).run(
                AdditiveGroupColoring(), improper, in_palette_size=graph.n
            )
        assert str(oocore_err.value) == str(batch_err.value)

    def test_max_rounds_parity(self):
        from repro.core.ag import AdditiveGroupColoring
        from repro.oocore.engine import OocoreColoringEngine
        from repro.runtime.fast_engine import BatchColoringEngine

        # Truncating AG mid-run leaves working vertices; the final decode
        # must fail identically in both engines.
        graph = random_regular(40, 5, seed=7)
        sharded = _sharded(graph)
        initial = list(range(graph.n))
        with pytest.raises(ValueError) as batch_err:
            BatchColoringEngine(graph).run(
                AdditiveGroupColoring(), initial, max_rounds=2
            )
        with pytest.raises(ValueError) as oocore_err:
            OocoreColoringEngine(sharded).run(
                AdditiveGroupColoring(), initial, max_rounds=2
            )
        assert str(oocore_err.value) == str(batch_err.value)

    def test_pool_mode_parity(self):
        from repro.linial.core import LinialColoring
        from repro.oocore.engine import OocoreColoringEngine
        from repro.runtime.fast_engine import BatchColoringEngine

        graph = random_regular(80, 5, seed=1)
        sharded = _sharded(graph, shards=4)
        initial = list(range(graph.n))
        batch = BatchColoringEngine(graph).run(LinialColoring(), initial)
        oocore = OocoreColoringEngine(sharded, workers=2).run(
            LinialColoring(), initial
        )
        assert oocore.int_colors == batch.int_colors

    def test_in_memory_graph_is_auto_sharded(self):
        from repro.linial.core import LinialColoring
        from repro.oocore.engine import OocoreColoringEngine
        from repro.runtime.fast_engine import BatchColoringEngine

        graph = random_regular(40, 4, seed=6)
        initial = list(range(graph.n))
        batch = BatchColoringEngine(graph).run(LinialColoring(), initial)
        oocore = OocoreColoringEngine(graph, shards=3).run(
            LinialColoring(), initial
        )
        assert oocore.int_colors == batch.int_colors


class TestEngineContract:
    def test_record_history_rejected(self):
        from repro.oocore.engine import OocoreColoringEngine

        sharded = _sharded(random_regular(20, 3, seed=1))
        with pytest.raises(ValueError):
            OocoreColoringEngine(sharded, record_history=True)

    def test_scalar_only_stage_rejected(self):
        from repro.oocore.engine import OocoreColoringEngine

        class ScalarOnly:
            name = "scalar-only"

        sharded = _sharded(random_regular(20, 3, seed=1))
        with pytest.raises(RuntimeError):
            OocoreColoringEngine(sharded).run(ScalarOnly(), list(range(20)))

    def test_wrong_initial_length(self):
        from repro.linial.core import LinialColoring
        from repro.oocore.engine import OocoreColoringEngine

        sharded = _sharded(random_regular(20, 3, seed=1))
        with pytest.raises(ValueError):
            OocoreColoringEngine(sharded).run(LinialColoring(), [0, 1, 2])

    def test_memory_budget_enforced(self, monkeypatch):
        from repro.linial.core import LinialColoring
        from repro.oocore.engine import OocoreColoringEngine
        from repro.oocore.store import MemoryBudgetError

        sharded = _sharded(random_regular(60, 4, seed=5), shards=2)
        monkeypatch.setenv("REPRO_OOCORE_BUDGET", "1K")
        with pytest.raises(MemoryBudgetError):
            OocoreColoringEngine(sharded).run(
                LinialColoring(), list(range(60))
            )

    def test_generous_budget_runs(self, monkeypatch):
        from repro.linial.core import LinialColoring
        from repro.oocore.engine import OocoreColoringEngine

        sharded = _sharded(random_regular(60, 4, seed=5), shards=4)
        monkeypatch.setenv("REPRO_OOCORE_BUDGET", "64M")
        result = OocoreColoringEngine(sharded).run(
            LinialColoring(), list(range(60))
        )
        assert len(result.int_colors) == 60

    def test_colors_plane_persisted(self):
        import numpy as np

        from repro.linial.core import LinialColoring
        from repro.oocore.engine import OocoreColoringEngine

        sharded = _sharded(random_regular(30, 3, seed=2))
        result = OocoreColoringEngine(sharded).run(
            LinialColoring(), list(range(30))
        )
        assert np.array_equal(
            np.array(sharded.colors_plane(mode="r")), result.int_colors_array
        )

    def test_empty_graph(self):
        from repro.graphgen import gnp_graph
        from repro.linial.core import LinialColoring
        from repro.oocore.engine import OocoreColoringEngine

        sharded = _sharded(gnp_graph(0, 0.5, seed=1), shards=2)
        result = OocoreColoringEngine(sharded).run(LinialColoring(), [])
        assert result.int_colors == []


class TestBackendRegistration:
    def test_backend_listed(self):
        from repro.runtime.backends import backend_names

        assert "oocore" in backend_names("engine")

    def test_resolve_and_run(self):
        from repro.runtime.backends import resolve_backend

        sharded = _sharded(random_regular(30, 3, seed=2))
        engine = resolve_backend("engine", "oocore")(sharded)
        from repro.linial.core import LinialColoring

        result = engine.run(LinialColoring(), list(range(30)))
        assert len(result.int_colors) == 30

    def test_job_runner_parity(self):
        from repro.parallel import JobSpec, execute_job

        spec = {"family": "regular", "n": 100, "degree": 6, "seed": 3}
        oocore = execute_job(JobSpec(algorithm="cor36", graph=spec, backend="oocore"))
        batch = execute_job(JobSpec(algorithm="cor36", graph=spec, backend="batch"))
        assert oocore["ok"], oocore["error"]
        assert (
            oocore["summary"]["payload"]["colors"]
            == batch["summary"]["payload"]["colors"]
        )
        assert oocore["summary"]["rounds"] == batch["summary"]["rounds"]


class TestShardedGreedy:
    @pytest.mark.parametrize("shards", [1, 2, 5])
    def test_bit_identical_to_first_fit(self, shards):
        from repro.baselines.greedy import greedy_coloring

        graph = random_regular(70, 6, seed=4)
        sharded = _sharded(graph, shards=shards)
        assert greedy_coloring(sharded) == greedy_coloring(graph)

    def test_gnp_parity(self):
        from repro.baselines.greedy import greedy_coloring

        graph = gnp_graph(80, 0.12, seed=6)
        sharded = _sharded(graph, shards=4)
        assert greedy_coloring(sharded) == greedy_coloring(graph)

    def test_custom_order_rejected(self):
        from repro.baselines.greedy import greedy_coloring

        sharded = _sharded(random_regular(20, 3, seed=1))
        with pytest.raises(ValueError):
            greedy_coloring(sharded, order=list(reversed(range(20))))


class TestTelemetry:
    def test_oocore_counters_emitted(self):
        from repro import obs
        from repro.linial.core import LinialColoring
        from repro.oocore.engine import OocoreColoringEngine

        sharded = _sharded(random_regular(40, 4, seed=3))
        with obs.capture() as tel:
            OocoreColoringEngine(sharded).run(LinialColoring(), list(range(40)))
        names = {c["name"] for c in tel.snapshot()["counters"]}
        assert "oocore.shard_io.bytes_read" in names
        assert "oocore.shard_io.bytes_written" in names
        assert "oocore.halo.bytes" in names
        events = [e for e in tel.events if e.get("type") == "engine.run"]
        assert events and events[-1]["backend"] == "oocore"


class TestCLI:
    def test_color_command_oocore(self, tmp_path):
        import io

        from repro.cli import main

        out = io.StringIO()
        rc = main(
            [
                "color", "--n", "100", "--degree", "5", "--oocore",
                "--shards", "4", "--memory-budget", "64M",
            ],
            out=out,
        )
        assert rc == 0
        assert "colors used: 6" in out.getvalue()
        # The flags land in the env knobs the oocore tier reads.
        assert os.environ.get("REPRO_OOCORE_SHARDS") == "4"
        assert os.environ.get("REPRO_OOCORE_BUDGET") == str(64 << 20)
