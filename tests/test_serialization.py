"""Results serialize to plain JSON — the tooling/export surface."""

import json

from repro import delta_plus_one_coloring
from repro.core import AdditiveGroupColoring
from repro.edge import edge_coloring_congest
from repro.graphgen import gnp_graph, random_regular
from repro.runtime import ColoringEngine


class TestRunResultSerialization:
    def test_round_trips_through_json(self):
        graph = gnp_graph(25, 0.2, seed=1)
        run = ColoringEngine(graph).run(
            AdditiveGroupColoring(), list(range(graph.n))
        )
        payload = json.loads(json.dumps(run.to_dict()))
        assert payload["colors"] == run.int_colors
        assert payload["rounds_used"] == run.rounds_used
        assert payload["metrics"]["total_rounds"] == run.metrics.total_rounds
        assert len(payload["metrics"]["rounds"]) == run.rounds_used

    def test_metrics_detail(self):
        graph = random_regular(20, 4, seed=2)
        run = ColoringEngine(graph).run(
            AdditiveGroupColoring(), list(range(graph.n))
        )
        detail = run.metrics.to_dict()["rounds"]
        assert all(
            set(entry) == {"round", "messages", "bits", "changed"}
            for entry in detail
        )
        assert sum(e["bits"] for e in detail) == run.metrics.total_bits


class TestPipelineSerialization:
    def test_pipeline_to_dict(self):
        graph = random_regular(32, 4, seed=3)
        result = delta_plus_one_coloring(graph)
        payload = json.loads(json.dumps(result.to_dict()))
        assert payload["num_colors"] <= graph.max_degree + 1
        assert [s["name"] for s in payload["stages"]] == [
            "linial",
            "additive-group",
            "standard-reduction",
        ]
        assert payload["total_rounds"] == result.total_rounds
        assert payload["stages"][-1]["out_palette"] == graph.max_degree + 1


class TestEdgeColoringSerialization:
    def test_edge_result_to_dict(self):
        graph = random_regular(16, 4, seed=4)
        result = edge_coloring_congest(graph)
        payload = json.loads(json.dumps(result.to_dict()))
        assert payload["palette_size"] == result.palette_size
        assert len(payload["edge_colors"]) == graph.m
        assert payload["total_bits_per_edge"] == result.total_bits_per_edge
        # Keys are "u-v" strings decodeable back to edges.
        for key in payload["edge_colors"]:
            u, v = map(int, key.split("-"))
            assert graph.has_edge(u, v)


class TestOtherResultSerializations:
    def test_bek_mis_matching_lowmem(self):
        from repro.apps import (
            locally_iterative_maximal_matching,
            locally_iterative_mis,
        )
        from repro.baselines import bek_delta_plus_one
        from repro.graphgen import cycle_graph
        from repro.lowmem import delta_plus_one_coloring_low_memory

        graph = cycle_graph(10)
        payloads = [
            bek_delta_plus_one(graph).to_dict(),
            locally_iterative_mis(graph).to_dict(),
            locally_iterative_maximal_matching(graph).to_dict(),
            delta_plus_one_coloring_low_memory(graph).to_dict(),
        ]
        for payload in payloads:
            json.dumps(payload)  # round-trippable
        assert payloads[0]["num_colors"] <= 3
        assert payloads[1]["total_rounds"] == (
            payloads[1]["coloring_rounds"] + payloads[1]["sweep_rounds"]
        )
        assert all(len(e) == 2 for e in payloads[2]["edges"])
        assert payloads[3]["peak_words"] >= 1
