"""CONGEST compliance of the vertex-coloring pipelines.

The paper's vertex algorithms are communication-frugal: Linial broadcasts a
color out of a poly(n) palette (O(log n) bits), AG broadcasts its pair once
and then a single final/rotated bit per round, the hybrid two bits.  These
tests pin the engine's accounting to those claims.
"""

import math

from repro.core import (
    AdditiveGroupColoring,
    ExactDeltaPlusOneHybrid,
    StandardColorReduction,
    ThreeDimensionalAG,
)
from repro.core.pipeline import delta_plus_one_coloring
from repro.graphgen import random_regular
from repro.linial import LinialColoring
from repro.runtime import ColoringEngine
from repro.runtime.algorithm import NetworkInfo


def congest_budget(n):
    """A CONGEST round may carry O(log n) bits; fix the constant at 4."""
    return 4 * max(1, math.ceil(math.log2(max(2, n))))


class TestPerStageMessageSizes:
    def test_ag_one_bit_rounds(self):
        stage = AdditiveGroupColoring()
        stage.configure(NetworkInfo(1000, 8, 17 * 17))
        assert stage.message_bits(0) <= congest_budget(1000)
        for r in range(1, 20):
            assert stage.message_bits(r) == 1

    def test_3ag_two_bit_rounds(self):
        stage = ThreeDimensionalAG()
        stage.configure(NetworkInfo(1000, 8, 29 ** 3))
        assert stage.message_bits(0) <= congest_budget(10 ** 6)
        for r in range(1, 20):
            assert stage.message_bits(r) == 2

    def test_hybrid_two_bit_rounds(self):
        stage = ExactDeltaPlusOneHybrid()
        stage.configure(NetworkInfo(1000, 8, 17))
        for r in range(1, 20):
            assert stage.message_bits(r) == 2

    def test_linial_messages_fit_congest(self):
        stage = LinialColoring()
        stage.configure(NetworkInfo(10 ** 5, 8, 10 ** 5))
        for r in range(stage.rounds_bound):
            assert stage.message_bits(r) <= congest_budget(10 ** 5)

    def test_standard_reduction_fits_congest(self):
        stage = StandardColorReduction()
        stage.configure(NetworkInfo(500, 8, 100))
        for r in range(stage.rounds_bound):
            assert stage.message_bits(r) <= congest_budget(500)


class TestPipelineBitTotals:
    def test_total_bits_dominated_by_first_exchanges(self):
        graph = random_regular(96, 8, seed=1)
        result = delta_plus_one_coloring(graph)
        # AG's metered bits: one full color exchange + ~1 bit per round.
        for stage, run in result.stage_results:
            if stage.name == "additive-group":
                per_edge = run.metrics.total_bits / (2 * graph.m)
                assert per_edge <= congest_budget(graph.n) + run.rounds_used

    def test_every_round_within_congest(self):
        graph = random_regular(64, 6, seed=2)
        engine = ColoringEngine(graph)
        stage = AdditiveGroupColoring()
        run = engine.run(stage, list(range(graph.n)))
        for metrics in run.metrics.rounds:
            per_message = metrics.bits / max(1, metrics.messages)
            assert per_message <= congest_budget(graph.n)
