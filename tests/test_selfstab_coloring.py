"""Tests for self-stabilizing O(Delta)- and exact (Delta+1)-coloring."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import RankGreedySelfStabColoring
from repro.runtime.graph import DynamicGraph
from repro.selfstab import (
    FaultCampaign,
    SelfStabColoring,
    SelfStabEngine,
    SelfStabExactColoring,
)


def build_dynamic(n, delta_bound, p_edge, seed):
    g = DynamicGraph(n, delta_bound)
    rng = random.Random(seed)
    for v in range(n):
        g.add_vertex(v)
    for u in range(n):
        for v in range(u + 1, n):
            if (
                rng.random() < p_edge
                and g.degree(u) < delta_bound
                and g.degree(v) < delta_bound
            ):
                g.add_edge(u, v)
    return g


def dynamic_path(n):
    g = DynamicGraph(n, 2)
    for v in range(n):
        g.add_vertex(v)
    for v in range(n - 1):
        g.add_edge(v, v + 1)
    return g


def assert_legal_coloring(algorithm, graph, rams, palette_cap):
    colors = algorithm.final_colors(graph, rams)
    for v in graph.vertices():
        assert 0 <= colors[v] < palette_cap
        for u in graph.neighbors(v):
            assert colors[u] != colors[v]


@pytest.mark.parametrize("factory", [SelfStabColoring, SelfStabExactColoring])
class TestBothVariants:
    def test_stabilizes_from_fresh_state(self, factory):
        g = build_dynamic(40, 6, 0.15, seed=1)
        algorithm = factory(40, 6)
        engine = SelfStabEngine(g, algorithm)
        rounds = engine.run_to_quiescence()
        assert engine.is_legal()
        assert rounds <= algorithm.stabilization_bound()

    def test_recovers_from_heavy_corruption(self, factory):
        g = build_dynamic(36, 6, 0.18, seed=2)
        algorithm = factory(36, 6)
        engine = SelfStabEngine(g, algorithm)
        engine.run_to_quiescence()
        campaign = FaultCampaign(seed=3)
        for _ in range(3):
            campaign.corrupt_random_rams(engine, 12)
            rounds = engine.run_to_quiescence()
            assert engine.is_legal()
            assert rounds <= algorithm.stabilization_bound()

    def test_recovers_from_topology_churn(self, factory):
        g = build_dynamic(30, 5, 0.18, seed=4)
        algorithm = factory(30, 5)
        engine = SelfStabEngine(g, algorithm)
        engine.run_to_quiescence()
        campaign = FaultCampaign(seed=5)
        for _ in range(3):
            campaign.churn_edges(engine, removals=2, additions=2)
            campaign.churn_vertices(engine, crashes=1, spawns=1)
            engine.run_to_quiescence()
            assert engine.is_legal()

    def test_all_equal_colors_worst_case(self, factory):
        """Every vertex holds the same color — maximal conflict burst."""
        g = build_dynamic(30, 5, 0.2, seed=6)
        algorithm = factory(30, 5)
        engine = SelfStabEngine(g, algorithm)
        for v in g.vertices():
            engine.corrupt(v, 0)
        rounds = engine.run_to_quiescence()
        assert engine.is_legal()
        assert rounds <= algorithm.stabilization_bound()

    def test_garbage_rams(self, factory):
        g = build_dynamic(24, 5, 0.2, seed=7)
        algorithm = factory(24, 5)
        engine = SelfStabEngine(g, algorithm)
        garbage = [None, -7, ("x",), 10 ** 12, 3.5]
        for i, v in enumerate(g.vertices()):
            engine.corrupt(v, garbage[i % len(garbage)])
        engine.run_to_quiescence()
        assert engine.is_legal()


class TestPalettes:
    def test_o_delta_palette(self):
        g = build_dynamic(40, 6, 0.15, seed=8)
        algorithm = SelfStabColoring(40, 6)
        engine = SelfStabEngine(g, algorithm)
        engine.run_to_quiescence()
        assert_legal_coloring(algorithm, g, engine.rams, algorithm.q)
        assert algorithm.q <= 8 * 6 + 12  # O(Delta) with small constant

    def test_exact_delta_plus_one_palette(self):
        g = build_dynamic(40, 6, 0.15, seed=9)
        algorithm = SelfStabExactColoring(40, 6)
        engine = SelfStabEngine(g, algorithm)
        engine.run_to_quiescence()
        assert_legal_coloring(algorithm, g, engine.rams, 6 + 1)


class TestAdjustmentRadius:
    def test_radius_one_for_coloring(self):
        """Theorem 4.3: only the fault's neighborhood may recompute."""
        g = dynamic_path(30)
        algorithm = SelfStabColoring(30, 2)
        engine = SelfStabEngine(g, algorithm)
        engine.run_to_quiescence()
        # Steal a neighbor's color in the middle of the path.
        victim = 15
        engine.corrupt(victim, engine.rams[16])
        engine.reset_touched()
        engine.corrupt(victim, engine.rams[16])
        engine.run_to_quiescence()
        assert engine.adjustment_radius([victim]) <= 1

    def test_radius_one_exact_variant(self):
        g = dynamic_path(24)
        algorithm = SelfStabExactColoring(24, 2)
        engine = SelfStabEngine(g, algorithm)
        engine.run_to_quiescence()
        victim = 11
        engine.corrupt(victim, engine.rams[12])
        engine.reset_touched()
        engine.corrupt(victim, engine.rams[12])
        engine.run_to_quiescence()
        assert engine.adjustment_radius([victim]) <= 1


class TestStabilizationScaling:
    def test_paper_beats_rank_baseline_on_all_equal_path(self):
        """The O(n) baseline cascades linearly; the paper's resets don't."""
        n = 120
        g1, g2 = dynamic_path(n), dynamic_path(n)
        paper = SelfStabColoring(n, 2)
        baseline = RankGreedySelfStabColoring(n, 2)
        e1, e2 = SelfStabEngine(g1, paper), SelfStabEngine(g2, baseline)
        for v in range(n):
            e1.corrupt(v, e1.algorithm.plan.offsets[0])  # same core color
            e2.corrupt(v, 0)
        r_paper = e1.run_to_quiescence()
        r_base = e2.run_to_quiescence(max_rounds=10 * n)
        assert e1.is_legal() and e2.is_legal()
        assert r_base > n / 4  # linear cascade
        assert r_paper < r_base / 2

    def test_stabilization_independent_of_diameter(self):
        rounds = []
        for n in (40, 80):
            g = dynamic_path(n)
            algorithm = SelfStabColoring(n, 2)
            engine = SelfStabEngine(g, algorithm)
            engine.run_to_quiescence()
            campaign = FaultCampaign(seed=10)
            campaign.corrupt_random_rams(engine, 5)
            rounds.append(engine.run_to_quiescence())
        assert abs(rounds[0] - rounds[1]) <= 12  # no linear growth in n


class TestRankBaseline:
    def test_baseline_is_correct_eventually(self):
        g = build_dynamic(30, 5, 0.2, seed=11)
        algorithm = RankGreedySelfStabColoring(30, 5)
        engine = SelfStabEngine(g, algorithm)
        rounds = engine.run_to_quiescence(max_rounds=10 * 30)
        assert engine.is_legal()
        colors = algorithm.final_colors(g, engine.rams)
        assert all(0 <= c <= 5 for c in colors.values())


class TestPropertyBased:
    @given(st.integers(min_value=0, max_value=10 ** 6))
    @settings(max_examples=10, deadline=None)
    def test_random_fault_storms(self, seed):
        rng = random.Random(seed)
        n = rng.randint(6, 26)
        delta = rng.randint(2, 5)
        g = build_dynamic(n, delta, rng.uniform(0.1, 0.3), seed=seed)
        algorithm = SelfStabExactColoring(n, delta)
        engine = SelfStabEngine(g, algorithm)
        campaign = FaultCampaign(seed=seed)
        for _ in range(3):
            campaign.corrupt_random_rams(engine, rng.randint(1, n))
            if rng.random() < 0.5:
                campaign.churn_edges(engine, removals=1, additions=1)
            engine.run_to_quiescence()
            assert engine.is_legal()
            assert_legal_coloring(algorithm, g, engine.rams, delta + 1)


class TestSetVisibilitySelfStab:
    """Section 1.2.3: the self-stabilizing algorithms also run under set
    visibility — they only ever test membership of neighbor messages."""

    @pytest.mark.parametrize("factory", [SelfStabColoring, SelfStabExactColoring])
    def test_runs_agree_under_set_visibility(self, factory):
        g1 = build_dynamic(30, 5, 0.2, seed=95)
        g2 = build_dynamic(30, 5, 0.2, seed=95)
        e1 = SelfStabEngine(g1, factory(30, 5))
        e2 = SelfStabEngine(g2, factory(30, 5), set_visibility=True)
        assert e1.run_to_quiescence() == e2.run_to_quiescence()
        assert e1.rams == e2.rams

    def test_recovery_under_set_visibility(self):
        g = build_dynamic(24, 4, 0.2, seed=96)
        algorithm = SelfStabExactColoring(24, 4)
        engine = SelfStabEngine(g, algorithm, set_visibility=True)
        engine.run_to_quiescence()
        campaign = FaultCampaign(seed=97)
        campaign.corrupt_random_rams(engine, 10)
        rounds = engine.run_to_quiescence()
        assert engine.is_legal()
        assert rounds <= algorithm.stabilization_bound()


class TestLemma41ProperEveryRound:
    """Lemma 4.1: once faults stop, the algorithm produces a proper coloring
    in *each* round — conflicting or invalid vertices reset to their unique
    ID slots within one transition, and every later state is proper."""

    @pytest.mark.parametrize("factory", [SelfStabColoring, SelfStabExactColoring])
    def test_every_post_fault_round_is_proper(self, factory):
        g = build_dynamic(28, 5, 0.2, seed=101)
        algorithm = factory(28, 5)
        engine = SelfStabEngine(g, algorithm)
        # A nasty burst: duplicate colors everywhere + garbage.
        vertices = g.vertices()
        for i, v in enumerate(vertices):
            if i % 3 == 0:
                engine.corrupt(v, 0)
            elif i % 3 == 1:
                neighbors = g.neighbors(v)
                if neighbors:
                    engine.corrupt(v, engine.rams[neighbors[0]])
            else:
                engine.corrupt(v, ("junk", i))
        # Faults stop now.  After ONE transition, and in every round after,
        # all adjacent RAM values must be pairwise distinct.
        engine.step()
        for round_index in range(algorithm.stabilization_bound()):
            for v in g.vertices():
                for u in g.neighbors(v):
                    assert engine.rams[u] != engine.rams[v], (
                        round_index,
                        u,
                        v,
                    )
            if not engine.step() and engine.is_legal():
                break
        assert engine.is_legal()

    def test_proper_every_round_under_set_visibility(self):
        g = build_dynamic(20, 4, 0.25, seed=102)
        algorithm = SelfStabColoring(20, 4)
        engine = SelfStabEngine(g, algorithm, set_visibility=True)
        for v in g.vertices():
            engine.corrupt(v, 7)
        engine.step()
        for _ in range(algorithm.stabilization_bound()):
            for v in g.vertices():
                for u in g.neighbors(v):
                    assert engine.rams[u] != engine.rams[v]
            if not engine.step() and engine.is_legal():
                break
        assert engine.is_legal()
