"""Tests for the Section 5 edge-coloring pipeline (CONGEST / Bit-Round)."""

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import is_proper_edge_coloring
from repro.edge import (
    build_line_graph,
    edge_coloring_bit_round,
    edge_coloring_congest,
)
from repro.graphgen import (
    complete_graph,
    cycle_graph,
    gnp_graph,
    grid_graph,
    path_graph,
    random_regular,
    star_graph,
)
from repro.mathutil import log_star


class TestLineGraph:
    def test_path_line_graph_is_path(self):
        g = path_graph(5)
        lg, index = build_line_graph(g)
        assert lg.n == 4
        assert lg.m == 3
        assert lg.max_degree == 2

    def test_star_line_graph_is_clique(self):
        g = star_graph(6)
        lg, _ = build_line_graph(g)
        assert lg.n == 5
        assert lg.m == 10  # K5

    def test_max_degree_bound(self):
        g = gnp_graph(30, 0.2, seed=1)
        lg, _ = build_line_graph(g)
        assert lg.max_degree <= 2 * g.max_degree - 2

    def test_edge_index_complete(self):
        g = cycle_graph(8)
        lg, index = build_line_graph(g)
        assert sorted(index.values()) == list(range(lg.n))
        assert set(index) == set(g.edges)


class TestCongestEdgeColoring:
    @pytest.mark.parametrize(
        "graph",
        [
            path_graph(12),
            cycle_graph(17),
            star_graph(10),
            complete_graph(7),
            grid_graph(4, 5),
            gnp_graph(30, 0.15, seed=1),
            random_regular(24, 5, seed=2),
        ],
        ids=["path", "cycle", "star", "clique", "grid", "gnp", "regular"],
    )
    def test_exact_two_delta_minus_one(self, graph):
        result = edge_coloring_congest(graph, exact=True)
        assert is_proper_edge_coloring(graph, result.edge_colors)
        # Palette is exactly Delta_L + 1 of the line graph, which is at most
        # (and often equal to) the classical 2 * Delta - 1.
        lg, _ = build_line_graph(graph)
        assert result.palette_size == lg.max_degree + 1
        assert result.palette_size <= 2 * graph.max_degree - 1
        assert max(result.edge_colors.values()) < result.palette_size

    def test_inexact_variant_is_o_delta(self, any_graph):
        if any_graph.m == 0:
            return
        result = edge_coloring_congest(any_graph, exact=False)
        assert is_proper_edge_coloring(any_graph, result.edge_colors)
        assert result.palette_size <= 6 * any_graph.max_degree + 8

    def test_round_complexity(self):
        for delta, n, seed in [(4, 64, 1), (6, 48, 2)]:
            graph = random_regular(n, delta, seed=seed)
            result = edge_coloring_congest(graph)
            assert result.total_rounds <= 24 * delta + log_star(graph.n) + 24

    def test_congest_message_size(self):
        graph = gnp_graph(50, 0.1, seed=3)
        result = edge_coloring_congest(graph)
        assert result.max_message_bits <= 2 * math.ceil(math.log2(graph.n)) + 8

    def test_bits_ledger_stages(self):
        graph = random_regular(20, 4, seed=4)
        result = edge_coloring_congest(graph)
        assert set(result.rounds_by_stage) == {
            "id-exchange",
            "kuhn-2-defective",
            "cole-vishkin",
            "ag",
            "exact-hybrid",
        }
        assert result.bits_per_edge_by_stage["ag"] >= result.rounds_by_stage["ag"] - 1

    def test_known_ids_skip_exchange(self):
        graph = cycle_graph(12)
        with_ids = edge_coloring_congest(graph, neighbor_ids_known=True)
        without = edge_coloring_congest(graph, neighbor_ids_known=False)
        assert "id-exchange" not in with_ids.rounds_by_stage
        assert (
            with_ids.total_bits_per_edge
            == without.total_bits_per_edge - without.bits_per_edge_by_stage["id-exchange"]
        )

    def test_empty_graph(self):
        from repro.runtime.graph import StaticGraph

        result = edge_coloring_congest(StaticGraph(4, []))
        assert result.edge_colors == {}
        assert result.total_rounds == 0

    def test_single_edge(self):
        graph = path_graph(2)
        result = edge_coloring_congest(graph)
        assert result.edge_colors == {(0, 1): 0}
        assert result.palette_size == 1


class TestBitRoundModel:
    def test_bit_rounds_are_delta_plus_log_n(self):
        for n, delta, seed in [(64, 4, 1), (128, 4, 2)]:
            graph = random_regular(n, delta, seed=seed)
            result, bit_rounds = edge_coloring_bit_round(graph)
            budget = 40 * delta + 6 * math.ceil(math.log2(n)) + 40
            assert bit_rounds <= budget

    def test_known_ids_reduce_to_log_log(self):
        graph = random_regular(96, 4, seed=3)
        _, with_ids = edge_coloring_bit_round(graph, neighbor_ids_known=True)
        _, without = edge_coloring_bit_round(graph, neighbor_ids_known=False)
        assert with_ids < without
        assert without - with_ids >= math.ceil(math.log2(graph.n)) - 1

    def test_result_still_proper(self):
        graph = gnp_graph(30, 0.2, seed=4)
        result, _ = edge_coloring_bit_round(graph)
        assert is_proper_edge_coloring(graph, result.edge_colors)


class TestPropertyBased:
    @given(st.integers(min_value=0, max_value=10 ** 6))
    @settings(max_examples=25, deadline=None)
    def test_random_graphs(self, seed):
        rng = random.Random(seed)
        n = rng.randint(2, 30)
        graph = gnp_graph(n, rng.uniform(0.05, 0.35), seed=seed)
        if graph.m == 0:
            return
        result = edge_coloring_congest(graph)
        assert is_proper_edge_coloring(graph, result.edge_colors)
        assert result.palette_size <= max(1, 2 * graph.max_degree - 1)


class TestPseudoforestCoverage:
    """Every class adjacency must be covered by exactly one parent pointer —
    the structural fact behind the head-pointer rule of Section 5 stage 3."""

    @pytest.mark.parametrize("seed", [1, 2, 3, 4])
    def test_all_class_adjacencies_covered(self, seed):
        from collections import defaultdict

        from repro.defective import kuhn_defective_edge_coloring

        graph = gnp_graph(25, 0.25, seed=seed)
        pair_of = kuhn_defective_edge_coloring(graph)
        classes = defaultdict(list)
        for edge, pair in pair_of.items():
            classes[pair].append(edge)
        for pair, class_edges in classes.items():
            incident = defaultdict(list)
            for edge in class_edges:
                incident[edge[0]].append(edge)
                incident[edge[1]].append(edge)
            # Parent pointer: class neighbor at the head (higher-ID endpoint).
            pointers = set()
            for edge in class_edges:
                u, v = edge
                head = v if graph.ids[v] > graph.ids[u] else u
                others = [e for e in incident[head] if e != edge]
                assert len(others) <= 1  # 2-defectiveness per endpoint
                for other in others:
                    pointers.add(frozenset((edge, other)))
            adjacencies = set()
            for edges_at_vertex in incident.values():
                for i in range(len(edges_at_vertex)):
                    for j in range(i + 1, len(edges_at_vertex)):
                        adjacencies.add(
                            frozenset((edges_at_vertex[i], edges_at_vertex[j]))
                        )
            assert pointers == adjacencies


class TestPipelineIdempotence:
    def test_recoloring_an_optimal_coloring_is_cheap(self):
        from repro import delta_plus_one_coloring

        graph = random_regular(48, 6, seed=5)
        first = delta_plus_one_coloring(graph)
        again = delta_plus_one_coloring(graph, initial_coloring=first.colors)
        assert max(again.colors) <= graph.max_degree
        assert again.total_rounds <= first.total_rounds
