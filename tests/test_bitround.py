"""Tests for the bit-level execution of the Section 5 protocol."""

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import is_proper_edge_coloring
from repro.bitround import (
    BitChannelNetwork,
    ChannelViolationError,
    run_edge_coloring_bit_protocol,
)
from repro.bitround.channel import decode_int, encode_int
from repro.edge import edge_coloring_congest
from repro.graphgen import (
    cycle_graph,
    gnp_graph,
    grid_graph,
    path_graph,
    random_regular,
    star_graph,
)


class TestBitChannel:
    def test_one_bit_per_round(self):
        g = path_graph(2)
        net = BitChannelNetwork(g)
        net.send(0, 1, "101")
        assert net.drain() == 3
        assert net.receive(1, 0, 3) == "101"

    def test_duplex_channels_independent(self):
        g = path_graph(2)
        net = BitChannelNetwork(g)
        net.send(0, 1, "11")
        net.send(1, 0, "0")
        rounds = net.drain()
        assert rounds == 2  # both directions flow in parallel
        assert net.receive(1, 0, 2) == "11"
        assert net.receive(0, 1, 1) == "0"

    def test_non_bit_rejected(self):
        net = BitChannelNetwork(path_graph(2))
        with pytest.raises(ChannelViolationError):
            net.send(0, 1, "2")

    def test_missing_channel_rejected(self):
        net = BitChannelNetwork(path_graph(3))
        with pytest.raises(ChannelViolationError):
            net.send(0, 2, "1")

    def test_reading_ahead_rejected(self):
        net = BitChannelNetwork(path_graph(2))
        net.send(0, 1, "1")
        with pytest.raises(ChannelViolationError):
            net.receive(1, 0, 1)  # nothing delivered yet (no tick)

    def test_broadcast(self):
        g = star_graph(4)
        net = BitChannelNetwork(g)
        net.broadcast(0, "10")
        net.drain()
        for leaf in (1, 2, 3):
            assert net.receive(leaf, 0, 2) == "10"

    def test_int_codec_roundtrip(self):
        for value in (0, 1, 5, 255):
            assert decode_int(encode_int(value, 9)) == value
        with pytest.raises(ValueError):
            encode_int(8, 3)


class TestBitProtocolMatchesCongest:
    @pytest.mark.parametrize(
        "graph",
        [
            path_graph(10),
            cycle_graph(11),
            star_graph(7),
            grid_graph(3, 5),
            gnp_graph(20, 0.2, seed=1),
            random_regular(16, 4, seed=2),
        ],
        ids=["path", "cycle", "star", "grid", "gnp", "regular"],
    )
    def test_identical_output(self, graph):
        bit_run = run_edge_coloring_bit_protocol(graph, exact=True)
        congest = edge_coloring_congest(graph, exact=True)
        assert bit_run.edge_colors == congest.edge_colors
        assert bit_run.palette_size == congest.palette_size
        assert is_proper_edge_coloring(graph, bit_run.edge_colors)

    def test_inexact_variant(self):
        graph = gnp_graph(18, 0.25, seed=3)
        bit_run = run_edge_coloring_bit_protocol(graph, exact=False)
        congest = edge_coloring_congest(graph, exact=False)
        assert bit_run.edge_colors == congest.edge_colors

    def test_empty_graph(self):
        from repro.runtime.graph import StaticGraph

        run = run_edge_coloring_bit_protocol(StaticGraph(3, []))
        assert run.edge_colors == {}


class TestBitRoundCounts:
    def test_id_phase_costs_log_n(self):
        graph = random_regular(32, 4, seed=4)
        run = run_edge_coloring_bit_protocol(graph)
        assert run.rounds_by_phase["id-exchange"] == math.ceil(math.log2(32))

    def test_known_ids_skip_phase(self):
        graph = random_regular(32, 4, seed=5)
        run = run_edge_coloring_bit_protocol(graph, neighbor_ids_known=True)
        assert "id-exchange" not in run.rounds_by_phase

    def test_ag_phase_one_bit_per_round(self):
        """AG bit-rounds equal the CONGEST AG rounds (1 bit each)."""
        graph = random_regular(24, 4, seed=6)
        bit_run = run_edge_coloring_bit_protocol(graph)
        congest = edge_coloring_congest(graph)
        assert bit_run.rounds_by_phase["ag"] == congest.rounds_by_stage["ag"]

    def test_hybrid_phase_two_bits_per_round(self):
        graph = random_regular(24, 4, seed=7)
        bit_run = run_edge_coloring_bit_protocol(graph)
        congest = edge_coloring_congest(graph)
        assert (
            bit_run.rounds_by_phase["exact-hybrid"]
            == 2 * congest.rounds_by_stage["exact-hybrid"]
        )

    def test_total_is_delta_plus_log_n_shaped(self):
        totals = {}
        for n in (32, 128):
            graph = random_regular(n, 4, seed=n)
            run = run_edge_coloring_bit_protocol(graph)
            totals[n] = run.total_bit_rounds
        # Growing n 4x adds ~the extra ID/CV bits, not a multiplicative blowup.
        assert totals[128] <= totals[32] + 40


class TestPropertyBased:
    @given(st.integers(min_value=0, max_value=10 ** 6))
    @settings(max_examples=15, deadline=None)
    def test_random_graphs_match(self, seed):
        rng = random.Random(seed)
        n = rng.randint(2, 18)
        graph = gnp_graph(n, rng.uniform(0.1, 0.4), seed=seed)
        if graph.m == 0:
            return
        bit_run = run_edge_coloring_bit_protocol(graph, exact=True)
        congest = edge_coloring_congest(graph, exact=True)
        assert bit_run.edge_colors == congest.edge_colors
        assert is_proper_edge_coloring(graph, bit_run.edge_colors)


class TestVertexBitProtocol:
    @pytest.mark.parametrize(
        "graph",
        [
            path_graph(10),
            cycle_graph(12),
            star_graph(8),
            gnp_graph(20, 0.2, seed=11),
            random_regular(16, 4, seed=12),
        ],
        ids=["path", "cycle", "star", "gnp", "regular"],
    )
    def test_identical_to_pipeline(self, graph):
        from repro import delta_plus_one_coloring
        from repro.bitround.vertex_coloring import run_vertex_coloring_bit_protocol

        run = run_vertex_coloring_bit_protocol(graph)
        reference = delta_plus_one_coloring(graph)
        assert run.colors == reference.colors
        assert max(run.colors, default=0) <= graph.max_degree

    def test_ag_phase_is_one_bit_per_round(self):
        from repro.bitround.vertex_coloring import run_vertex_coloring_bit_protocol

        graph = random_regular(24, 4, seed=13)
        run = run_vertex_coloring_bit_protocol(graph)
        # AG bit-rounds = (one pair exchange) + (one bit per AG round).
        ag_rounds = run.rounds_by_phase["additive-group"]
        ag_bits = run.bit_rounds_by_phase["additive-group"]
        pair_width = ag_bits - ag_rounds
        assert pair_width >= 1  # the single pair broadcast
        assert ag_bits <= pair_width + ag_rounds

    def test_empty_graph(self):
        from repro.bitround.vertex_coloring import run_vertex_coloring_bit_protocol
        from repro.runtime.graph import StaticGraph

        run = run_vertex_coloring_bit_protocol(StaticGraph(0, []))
        assert run.colors == []

    @given(st.integers(min_value=0, max_value=10 ** 6))
    @settings(max_examples=12, deadline=None)
    def test_random_graphs_match_pipeline(self, seed):
        from repro import delta_plus_one_coloring
        from repro.bitround.vertex_coloring import run_vertex_coloring_bit_protocol

        rng = random.Random(seed)
        n = rng.randint(2, 20)
        graph = gnp_graph(n, rng.uniform(0.1, 0.4), seed=seed)
        run = run_vertex_coloring_bit_protocol(graph)
        reference = delta_plus_one_coloring(graph)
        assert run.colors == reference.colors
