"""Tests for 3AG, the 3-dimensional Additive-Group algorithm (Section 7)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import is_proper_coloring
from repro.core.ag3 import ThreeDimensionalAG, ag3_prime_for
from repro.graphgen import complete_graph, cycle_graph, gnp_graph, random_regular
from repro.mathutil.primes import is_prime
from repro.runtime import ColoringEngine, Visibility
from repro.runtime.algorithm import NetworkInfo
from tests.conftest import assert_proper, id_coloring


class TestPrimeSelection:
    def test_cube_and_degree_floors(self):
        for k, delta in [(1000, 4), (8, 20), (30000, 2)]:
            p = ag3_prime_for(k, delta)
            assert is_prime(p)
            assert p ** 3 >= k
            assert p >= 3 * delta + 1


class TestCorollary72:
    @pytest.mark.parametrize(
        "graph",
        [
            cycle_graph(18),
            complete_graph(7),
            gnp_graph(40, 0.15, seed=1),
            random_regular(36, 4, seed=2),
        ],
        ids=["cycle", "clique", "gnp", "regular"],
    )
    def test_p_cubed_to_p_within_2p_rounds(self, graph):
        stage = ThreeDimensionalAG()
        delta = graph.max_degree
        # Build a proper coloring genuinely using the p^3 space.
        probe = ThreeDimensionalAG()
        probe.configure(NetworkInfo(graph.n, delta, graph.n))
        p = probe.p
        rng = random.Random(0)
        spread = sorted(rng.sample(range(p ** 3), graph.n))
        coloring = [spread[c] for c in id_coloring(graph)]

        engine = ColoringEngine(graph, check_proper_each_round=True)
        result = engine.run(stage, coloring, in_palette_size=p ** 3)
        assert_proper(graph, result.int_colors, "3AG output")
        assert max(result.int_colors) < stage.p
        assert result.rounds_used <= 2 * stage.p

    def test_proper_every_round_is_enforced(self):
        graph = gnp_graph(30, 0.2, seed=3)
        engine = ColoringEngine(graph, check_proper_each_round=True)
        result = engine.run(ThreeDimensionalAG(), id_coloring(graph))
        assert is_proper_coloring(graph, result.int_colors)


class TestStepSemantics:
    def _configured(self, delta=2, palette=1000):
        stage = ThreeDimensionalAG()
        stage.configure(NetworkInfo(50, delta, palette))
        return stage

    def test_first_phase_drop(self):
        stage = self._configured()
        # c != 0 and no b-conflict: drop c to 0.
        assert stage.step(0, (3, 4, 5), ((1, 2, 5),)) == (0, 4, 5)

    def test_first_phase_rotation(self):
        stage = self._configured()
        p = stage.p
        assert stage.step(0, (3, 4, 5), ((1, 4, 6),)) == (3, (4 + 3) % p, 5)

    def test_second_phase_finalize(self):
        stage = self._configured()
        assert stage.step(0, (0, 4, 5), ((0, 2, 6),)) == (0, 0, 5)

    def test_second_phase_rotation(self):
        stage = self._configured()
        p = stage.p
        assert stage.step(0, (0, 4, 5), ((0, 2, 5),)) == (0, 4, (5 + 4) % p)

    def test_final_state_is_fixed_point(self):
        stage = self._configured()
        # Even while a neighbor shares its a, <0,0,a> cannot move.
        assert stage.step(0, (0, 0, 5), ((0, 3, 5),)) == (0, 0, 5)
        assert stage.step(0, (0, 0, 5), ((0, 3, 6),)) == (0, 0, 5)

    def test_c_nonzero_cannot_drop_onto_final_zero_b(self):
        stage = self._configured()
        # A neighbor finalized at <0,0,a>: its b = 0 blocks our b = 0 drop.
        p = stage.p
        next_color = stage.step(0, (2, 0, 5), ((0, 0, 7),))
        assert next_color == (2, 2 % p, 5)

    def test_uniform_step(self):
        stage = self._configured()
        color = (1, 2, 3)
        nbrs = ((0, 2, 4),)
        assert stage.step(0, color, nbrs) == stage.step(7, color, nbrs)
        assert stage.uniform_step

    def test_lockstep_pairs_do_not_deadlock(self):
        """Equal (c, b) with different a must not block each other (see the
        reproduction note in repro.core.ag3): both drop, then phase 2
        separates them through their distinct a coordinates."""
        stage = self._configured(delta=1)
        u, v = (1, 5, 2), (1, 5, 4)
        # Phase 1: same c — no phase-1 conflict, both drop.
        u2 = stage.step(0, u, (v,))
        v2 = stage.step(0, v, (u,))
        assert u2 == (0, 5, 2) and v2 == (0, 5, 4)
        # Phase 2 converges since the a's are distinct.
        colors = [u2, v2]
        for r in range(2 * stage.p):
            colors = [
                stage.step(r, colors[0], (colors[1],)),
                stage.step(r, colors[1], (colors[0],)),
            ]
            assert colors[0] != colors[1]  # proper throughout
        assert all(stage.is_final(c) for c in colors)


class TestSetLocal:
    def test_set_local_equals_local(self):
        graph = gnp_graph(30, 0.2, seed=9)
        initial = id_coloring(graph)
        a = ColoringEngine(graph, visibility=Visibility.LOCAL).run(
            ThreeDimensionalAG(), initial
        )
        b = ColoringEngine(graph, visibility=Visibility.SET_LOCAL).run(
            ThreeDimensionalAG(), initial
        )
        assert a.int_colors == b.int_colors


class TestPropertyBased:
    @given(st.integers(min_value=0, max_value=10 ** 6))
    @settings(max_examples=30, deadline=None)
    def test_random_graphs(self, seed):
        rng = random.Random(seed)
        n = rng.randint(2, 35)
        graph = gnp_graph(n, rng.uniform(0, 0.3), seed=seed)
        engine = ColoringEngine(graph, check_proper_each_round=True)
        stage = ThreeDimensionalAG()
        result = engine.run(stage, id_coloring(graph))
        assert is_proper_coloring(graph, result.int_colors)
        assert max(result.int_colors) < stage.p
        assert result.rounds_used <= 2 * stage.p
