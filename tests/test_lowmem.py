"""Tests for the O(1)-words-per-vertex execution (end of Section 3)."""

import pytest

from repro.analysis import is_proper_coloring
from repro.graphgen import complete_graph, cycle_graph, gnp_graph, random_regular
from repro.lowmem import (
    Workspace,
    WorkspaceOverflowError,
    ag_step_low_memory,
    delta_plus_one_coloring_low_memory,
    linial_step_low_memory,
    standard_reduction_step_low_memory,
)
from repro.lowmem.workspace import bits_for_range


class TestWorkspace:
    def test_peak_tracking(self):
        ws = Workspace()
        ws.put("a", 1, 8)
        ws.put("b", 2, 8)
        assert ws.live_bits == 16
        ws.free("a")
        ws.put("c", 3, 4)
        assert ws.live_bits == 12
        assert ws.peak_bits == 16

    def test_overwrite_replaces_accounting(self):
        ws = Workspace()
        ws.put("a", 1, 8)
        ws.put("a", 2, 16)
        assert ws.live_bits == 16

    def test_budget_enforced(self):
        ws = Workspace(bit_limit=10)
        ws.put("a", 1, 8)
        with pytest.raises(WorkspaceOverflowError):
            ws.put("b", 2, 8)

    def test_budget_boundary_exactly_at_limit_passes(self):
        ws = Workspace(bit_limit=16)
        ws.put("a", 1, 8)
        ws.put("b", 2, 8)  # live == limit: inside the budget
        assert ws.live_bits == 16
        with pytest.raises(WorkspaceOverflowError):
            ws.put("c", 3, 1)  # one bit over

    def test_budget_overflow_still_stores_the_value(self):
        # The register is written before the limit check: the error message
        # names the offending register set, and a test harness can inspect
        # the state that blew the budget.
        ws = Workspace(bit_limit=10)
        ws.put("a", 1, 8)
        with pytest.raises(WorkspaceOverflowError):
            ws.put("b", 2, 8)
        assert ws.get("b") == 2
        assert ws.live_bits == 16

    def test_free_missing_register_is_a_noop(self):
        ws = Workspace()
        ws.put("a", 1, 8)
        ws.free("never-stored")
        assert ws.live_bits == 8
        ws.free("a")
        ws.free("a")  # double-free: also a no-op
        assert ws.live_bits == 0

    def test_overwrite_grow_has_no_transient_peak(self):
        # 8 -> 16 must account as a replacement (peak 16), not as a
        # transient 24-bit spike of both generations live at once.
        ws = Workspace()
        ws.put("a", 1, 8)
        ws.put("a", 2, 16)
        assert ws.live_bits == 16
        assert ws.peak_bits == 16

    def test_overwrite_shrink_keeps_old_peak(self):
        ws = Workspace()
        ws.put("a", 1, 20)
        ws.put("a", 2, 5)
        assert ws.live_bits == 5
        assert ws.peak_bits == 20

    def test_overwrite_within_budget_never_raises(self):
        # Replacing a register with a same-width value stays at the limit;
        # the subtraction must happen before the limit check.
        ws = Workspace(bit_limit=8)
        ws.put("a", 1, 8)
        ws.put("a", 2, 8)
        assert ws.live_bits == 8

    def test_negative_bits_rejected(self):
        ws = Workspace()
        with pytest.raises(ValueError):
            ws.put("a", 1, -1)

    def test_free_all(self):
        ws = Workspace()
        ws.put("a", 1, 8)
        ws.free_all()
        assert ws.live_bits == 0
        assert "a" not in ws

    def test_peak_words(self):
        ws = Workspace()
        ws.put("a", 1, 33)
        assert ws.peak_words(16) == 3

    def test_bits_for_range(self):
        assert bits_for_range(2) == 1
        assert bits_for_range(256) == 8
        assert bits_for_range(257) == 9


class TestStreamingSteps:
    def test_ag_step_matches_engine_semantics(self):
        q = 11
        ws = Workspace()
        conflict = ag_step_low_memory((2, 3), lambda: iter([(5, 3)]), q, ws)
        assert conflict == (2, 5)
        final = ag_step_low_memory((2, 3), lambda: iter([(5, 4)]), q, ws)
        assert final == (0, 3)

    def test_ag_step_memory_independent_of_degree(self):
        q = 101
        peaks = []
        for degree in (2, 50, 100):
            ws = Workspace()
            neighbors = [(i % q, (7 * i) % q) for i in range(1, degree + 1)]
            ag_step_low_memory((3, 5), lambda: iter(neighbors), q, ws)
            peaks.append(ws.peak_bits)
        assert peaks[0] == peaks[1] == peaks[2]

    def test_linial_step_matches_reference(self):
        from repro.linial.core import linial_next_color

        q, d = 13, 1
        neighbors = [7, 9, 3]
        ws = Workspace()
        streamed = linial_step_low_memory(5, lambda: iter(neighbors), q, d, ws)
        reference = linial_next_color(5, neighbors, q, d)
        assert streamed == reference

    def test_linial_step_memory_independent_of_degree(self):
        q, d = 211, 1
        peaks = []
        for degree in (3, 60, 150):
            ws = Workspace()
            neighbors = list(range(1, degree + 1))
            linial_step_low_memory(0, lambda: iter(neighbors), q, d, ws)
            peaks.append(ws.peak_bits)
        assert peaks[0] == peaks[1] == peaks[2]

    def test_standard_reduction_step(self):
        ws = Workspace()
        # Acting vertex with colors 0 and 1 taken picks 2.
        new = standard_reduction_step_low_memory(
            9, lambda: iter([0, 1, 5]), acting_color=9, target=4, workspace=ws
        )
        assert new == 2

    def test_standard_reduction_non_acting_keeps_color(self):
        ws = Workspace()
        assert (
            standard_reduction_step_low_memory(
                3, lambda: iter([0]), acting_color=9, target=4, workspace=ws
            )
            == 3
        )


class TestFullPipeline:
    @pytest.mark.parametrize(
        "graph",
        [
            cycle_graph(40),
            complete_graph(8),
            gnp_graph(48, 0.12, seed=1),
            random_regular(40, 6, seed=2),
        ],
        ids=["cycle", "clique", "gnp", "regular"],
    )
    def test_correct_coloring(self, graph):
        report = delta_plus_one_coloring_low_memory(graph)
        assert is_proper_coloring(graph, report.colors)
        assert max(report.colors) <= graph.max_degree

    def test_peak_words_constant_across_sizes(self):
        """The paper's claim: O(1) words of Theta(log n) bits each."""
        words = []
        for n, d, seed in [(24, 4, 1), (96, 8, 2), (192, 12, 3)]:
            graph = random_regular(n, d, seed=seed)
            report = delta_plus_one_coloring_low_memory(graph)
            words.append(report.peak_words)
        assert max(words) <= 12  # a fixed handful of registers
        assert max(words) - min(words) <= 4

    def test_budget_enforcement_is_live(self):
        graph = random_regular(40, 6, seed=4)
        with pytest.raises(WorkspaceOverflowError):
            delta_plus_one_coloring_low_memory(graph, bit_limit=3)

    def test_generous_budget_passes(self):
        graph = random_regular(40, 6, seed=5)
        report = delta_plus_one_coloring_low_memory(
            graph, bit_limit=20 * report_word_bits(graph)
        )
        assert is_proper_coloring(graph, report.colors)


def report_word_bits(graph):
    return bits_for_range(max(2, graph.n))
