"""Differential tests: the batch self-stab engine vs the reference engine.

The vectorized :class:`BatchSelfStabEngine` promises *bit-for-bit*
equivalence with the scalar :class:`SelfStabEngine`: identical stabilization
round counts, identical RAM dicts after every burst, identical touched sets
and adjustment radii, identical CONGEST payload meters, and identical
``NotStabilizedError`` messages.  These tests enforce that under random
corruption storms, hand-crafted catastrophes, topology churn, garbage and
exotic RAM values, both visibility disciplines, and exhaustively on small
graphs; plus the backend dispatcher's selection and fallback behavior.
"""

import random

import pytest

from repro.errors import NotStabilizedError
from repro.runtime.csr import numpy_available
from repro.runtime.graph import DynamicGraph
from repro.selfstab import (
    BatchSelfStabEngine,
    FaultCampaign,
    SelfStabColoring,
    SelfStabEdgeColoring,
    SelfStabEngine,
    SelfStabExactColoring,
    SelfStabMaximalMatching,
    SelfStabMIS,
    batch_supported,
)
from repro.runtime.backends import resolve_backend
from repro.selfstab.adversary import TargetedAttacks
from repro.selfstab.lowmem import SelfStabColoringConstantMemory


def make_selfstab_engine(graph, algorithm, set_visibility=False, backend="auto"):
    """Registry-constructed selfstab engine (successor of the removed shim)."""
    return resolve_backend("selfstab", backend)(
        graph, algorithm, set_visibility=set_visibility
    )

requires_numpy = pytest.mark.requires_numpy


def _skip_without_numpy():
    if not numpy_available():
        pytest.skip("NumPy unavailable (or disabled via REPRO_DISABLE_NUMPY)")


ALGORITHMS = (
    ("coloring", SelfStabColoring),
    ("exact", SelfStabExactColoring),
    ("mis", SelfStabMIS),
    ("mis-exact", lambda n, d: SelfStabMIS(n, d, coloring_factory=SelfStabExactColoring)),
)


def build_dynamic(n, delta_bound, p_edge, seed):
    g = DynamicGraph(n, delta_bound)
    rng = random.Random(seed)
    for v in range(n):
        g.add_vertex(v)
    for u in range(n):
        for v in range(u + 1, n):
            if (
                rng.random() < p_edge
                and g.degree(u) < delta_bound
                and g.degree(v) < delta_bound
            ):
                g.add_edge(u, v)
    return g


def dynamic_path(n):
    g = DynamicGraph(n, 2)
    for v in range(n):
        g.add_vertex(v)
    for v in range(n - 1):
        g.add_edge(v, v + 1)
    return g


GARBAGE = [
    True,
    False,
    ("junk", 3),
    None,
    "xx",
    10 ** 9,
    -7,
    2 ** 70,  # exotic: does not fit the int64 columns -> scalar round
    (5, "bogus"),
    (True, "MIS"),
    ((1, 2), "UND"),
    (3, "MIS"),
    (10 ** 9, "UND"),
    (-4, "NOTMIS"),
    (2 ** 70, "MIS"),
]


def _pair(factory, n, delta, graph_builder, set_visibility=False):
    """Two identical worlds: one reference engine, one batch engine."""
    engines = []
    for backend in ("reference", "batch"):
        graph = graph_builder()
        algorithm = factory(n, delta)
        engines.append(
            make_selfstab_engine(
                graph, algorithm, set_visibility=set_visibility, backend=backend
            )
        )
    return engines


def _assert_in_lockstep(ref, bat):
    assert bat.round_count == ref.round_count
    assert bat.max_message_bits == ref.max_message_bits
    assert bat.touched == ref.touched
    assert dict(bat.rams) == dict(ref.rams)
    assert bat.is_legal() == ref.is_legal()


@pytest.mark.parametrize("set_visibility", (False, True), ids=("local", "set-local"))
@pytest.mark.parametrize("label,factory", ALGORITHMS, ids=[a[0] for a in ALGORITHMS])
@requires_numpy
def test_parity_random_storms(label, factory, set_visibility):
    """Cold start + random corruption bursts: every observable identical."""
    n, delta = 40, 5
    ref, bat = _pair(
        factory, n, delta,
        lambda: build_dynamic(n, delta, 0.2, seed=11),
        set_visibility=set_visibility,
    )
    assert isinstance(bat, BatchSelfStabEngine)
    assert ref.run_to_quiescence() == bat.run_to_quiescence()
    _assert_in_lockstep(ref, bat)
    for seed in (1, 2):
        for engine in (ref, bat):
            FaultCampaign(seed).corrupt_random_rams(engine, n // 2)
        assert ref.run_to_quiescence() == bat.run_to_quiescence()
        _assert_in_lockstep(ref, bat)


@pytest.mark.parametrize("label,factory", ALGORITHMS, ids=[a[0] for a in ALGORITHMS])
@requires_numpy
def test_parity_garbage_and_exotic_rams(label, factory):
    """Adversarial RAM values: bools, tuples, strings, huge ints.

    Exotic ints (>= 2^61) cannot live in the int64 columns; the batch
    engine must route those rounds through the scalar step and still agree
    on everything, including the payload-bit meter for each garbage shape.
    """
    n, delta = 24, 4
    ref, bat = _pair(factory, n, delta, lambda: build_dynamic(n, delta, 0.25, seed=5))
    ref.run_to_quiescence()
    bat.run_to_quiescence()
    rng = random.Random(99)
    for burst in range(4):
        assignments = {
            rng.randrange(n): GARBAGE[rng.randrange(len(GARBAGE))]
            for _ in range(6)
        }
        for engine in (ref, bat):
            FaultCampaign(0).corrupt_many(engine, assignments)
        assert ref.run_to_quiescence() == bat.run_to_quiescence()
        _assert_in_lockstep(ref, bat)


@pytest.mark.parametrize("label,factory", ALGORITHMS, ids=[a[0] for a in ALGORITHMS])
@requires_numpy
def test_parity_catastrophe_and_error_message(label, factory):
    """All-RAM-equal symmetry bomb, and NotStabilizedError parity."""
    n, delta = 30, 4
    ref, bat = _pair(factory, n, delta, lambda: build_dynamic(n, delta, 0.25, seed=3))
    ref.run_to_quiescence()
    bat.run_to_quiescence()
    for engine in (ref, bat):
        TargetedAttacks.clone_everything(engine)
    # A 1-round budget cannot stabilize a full clone: both engines must
    # raise the *same* NotStabilizedError text (the batch engine replays
    # the failure through the scalar transition).
    errors = []
    for engine in (ref, bat):
        with pytest.raises(NotStabilizedError) as info:
            engine.run_to_quiescence(max_rounds=1)
        errors.append(str(info.value))
    assert errors[0] == errors[1]
    _assert_in_lockstep(ref, bat)
    assert ref.run_to_quiescence() == bat.run_to_quiescence()
    _assert_in_lockstep(ref, bat)


@pytest.mark.parametrize("label,factory", ALGORITHMS, ids=[a[0] for a in ALGORITHMS])
@requires_numpy
def test_parity_churn_and_rewiring(label, factory):
    """Crashes, spawns and rewiring: CSR epochs rebuild correctly."""
    n, delta = 30, 5
    ref, bat = _pair(factory, n, delta, lambda: build_dynamic(n, delta, 0.2, seed=7))
    ref.run_to_quiescence()
    bat.run_to_quiescence()
    for seed in range(3):
        for engine in (ref, bat):
            campaign = FaultCampaign(seed)
            campaign.churn_vertices(engine, crashes=2, spawns=2)
            campaign.churn_edges(engine, removals=2, additions=2)
            campaign.corrupt_random_rams(engine, 5)
        assert ref.run_to_quiescence() == bat.run_to_quiescence()
        _assert_in_lockstep(ref, bat)


@requires_numpy
def test_parity_exhaustive_tiny_graphs():
    """Every graph on <= 4 vertices, every algorithm: cold-start parity."""
    import itertools

    for n in (1, 2, 3, 4):
        pairs = list(itertools.combinations(range(n), 2))
        for bits in range(1 << len(pairs)):
            edges = [pairs[i] for i in range(len(pairs)) if bits >> i & 1]
            delta = max(1, n - 1)
            for label, factory in ALGORITHMS[:3]:
                def builder():
                    g = DynamicGraph(n, delta)
                    for v in range(n):
                        g.add_vertex(v)
                    for u, v in edges:
                        g.add_edge(u, v)
                    return g

                ref, bat = _pair(factory, n, delta, builder)
                assert ref.run_to_quiescence() == bat.run_to_quiescence(), (
                    n, bits, label
                )
                assert dict(ref.rams) == dict(bat.rams), (n, bits, label)


@requires_numpy
def test_parity_adjustment_radius():
    """Localized faults: identical touched sets -> identical radii."""
    n = 40
    ref, bat = _pair(SelfStabColoring, n, 2, lambda: dynamic_path(n))
    ref.run_to_quiescence()
    bat.run_to_quiescence()
    for victim in (5, 20, 33):
        radii = []
        for engine in (ref, bat):
            value = engine.rams[victim + 1]
            engine.corrupt(victim, value)
            engine.reset_touched()
            engine.corrupt(victim, value)
            engine.run_to_quiescence()
            radii.append(engine.adjustment_radius([victim]))
        assert radii[0] == radii[1]
        assert radii[0] <= 1


@requires_numpy
def test_parity_line_protocols():
    """Matching and edge coloring on the line-graph mirror, per backend."""
    for wrapper_factory in (
        SelfStabMaximalMatching,
        lambda base, backend: SelfStabEdgeColoring(base, backend=backend),
    ):
        results = {}
        for backend in ("reference", "batch"):
            base = build_dynamic(14, 3, 0.3, seed=21)
            wrapper = wrapper_factory(base, backend=backend)
            rounds = [wrapper.run_to_quiescence()]
            campaign = FaultCampaign(seed=2)
            campaign.corrupt_random_rams(wrapper.engine, 8)
            rounds.append(wrapper.run_to_quiescence())
            results[backend] = (rounds, dict(wrapper.engine.rams))
        assert results["reference"] == results["batch"]


@requires_numpy
def test_batch_engine_scalar_fallback_for_lowmem():
    """Unsupported algorithms run scalar rounds inside the batch engine."""
    n, delta = 20, 4
    algorithm = SelfStabColoringConstantMemory(n, delta)
    assert not batch_supported(algorithm)
    auto = make_selfstab_engine(build_dynamic(n, delta, 0.25, seed=9), algorithm)
    assert isinstance(auto, SelfStabEngine)
    assert not isinstance(auto, BatchSelfStabEngine)
    # Forcing backend="batch" still works — every round falls back.
    ref = SelfStabEngine(
        build_dynamic(n, delta, 0.25, seed=9), SelfStabColoringConstantMemory(n, delta)
    )
    bat = make_selfstab_engine(
        build_dynamic(n, delta, 0.25, seed=9),
        SelfStabColoringConstantMemory(n, delta),
        backend="batch",
    )
    assert isinstance(bat, BatchSelfStabEngine)
    assert ref.run_to_quiescence() == bat.run_to_quiescence()
    assert dict(ref.rams) == dict(bat.rams)


def test_dispatcher_backend_selection():
    graph = build_dynamic(8, 3, 0.3, seed=1)
    algorithm = SelfStabColoring(8, 3)
    assert batch_supported(algorithm)
    ref = make_selfstab_engine(graph, algorithm, backend="reference")
    assert type(ref) is SelfStabEngine
    auto = make_selfstab_engine(graph, algorithm, backend="auto")
    if numpy_available():
        assert isinstance(auto, BatchSelfStabEngine)
    else:
        assert type(auto) is SelfStabEngine
    with pytest.raises(ValueError, match="unknown backend"):
        make_selfstab_engine(graph, algorithm, backend="turbo")


def test_dispatcher_batch_requires_numpy(monkeypatch):
    monkeypatch.setenv("REPRO_DISABLE_NUMPY", "1")
    graph = build_dynamic(6, 2, 0.3, seed=1)
    algorithm = SelfStabColoring(6, 2)
    with pytest.raises(RuntimeError, match="needs NumPy"):
        make_selfstab_engine(graph, algorithm, backend="batch")
    # auto degrades gracefully to the reference engine.
    auto = make_selfstab_engine(graph, algorithm, backend="auto")
    assert type(auto) is SelfStabEngine
    assert auto.run_to_quiescence() >= 1
