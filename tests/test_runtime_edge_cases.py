"""Edge-case coverage for the runtime engine, pipeline and metrics."""

import pytest

from repro.core import AdditiveGroupColoring, StandardColorReduction
from repro.graphgen import cycle_graph, path_graph, star_graph
from repro.linial import LinialColoring
from repro.runtime import ColoringEngine, ColoringPipeline, Visibility
from repro.runtime.graph import StaticGraph
from repro.runtime.metrics import MetricsLog, RoundMetrics


class TestEngineEdgeCases:
    def test_empty_graph_run(self):
        graph = StaticGraph(0, [])
        result = ColoringEngine(graph).run(
            AdditiveGroupColoring(), [], in_palette_size=1
        )
        assert result.int_colors == []
        assert result.rounds_used == 0

    def test_max_rounds_beyond_bound_is_harmless(self):
        graph = cycle_graph(8)
        stage = AdditiveGroupColoring()
        result = ColoringEngine(graph).run(
            stage, list(range(8)), max_rounds=10 ** 4
        )
        # Early finality stops the run long before the cap.
        assert result.rounds_used <= stage.q

    def test_zero_max_rounds_returns_initial(self):
        graph = path_graph(4)
        stage = AdditiveGroupColoring()
        with pytest.raises(ValueError):
            # Non-final initial colors cannot decode.
            ColoringEngine(graph).run(stage, [5, 6, 7, 8], max_rounds=0)

    def test_configure_false_reuses_existing_configuration(self):
        from repro.runtime.algorithm import NetworkInfo

        graph = path_graph(4)
        stage = AdditiveGroupColoring()
        stage.configure(NetworkInfo(4, 2, 36))
        q_before = stage.q
        ColoringEngine(graph).run(
            stage, [0, 1, 2, 3], in_palette_size=4, configure=False
        )
        assert stage.q == q_before

    def test_isolated_vertices_have_empty_views(self):
        graph = StaticGraph(3, [(0, 1)])
        result = ColoringEngine(graph, visibility=Visibility.SET_LOCAL).run(
            AdditiveGroupColoring(), [0, 1, 2]
        )
        assert len(result.int_colors) == 3


class TestPipelineEdgeCases:
    def test_record_history_propagates(self):
        graph = cycle_graph(6)
        pipeline = ColoringPipeline([AdditiveGroupColoring(), StandardColorReduction()])
        result = pipeline.run(graph, list(range(6)), record_history=True)
        for _, run in result.stage_results:
            assert run.history is not None
            assert len(run.history) == run.rounds_used + 1

    def test_explicit_palette_override(self):
        graph = path_graph(4)
        pipeline = ColoringPipeline([AdditiveGroupColoring()])
        result = pipeline.run(graph, [0, 2, 4, 6], in_palette_size=49)
        stage = result.stage_results[0][0]
        assert stage.info.in_palette_size == 49

    def test_three_stage_chain_round_total(self):
        graph = cycle_graph(32)
        pipeline = ColoringPipeline(
            [LinialColoring(), AdditiveGroupColoring(), StandardColorReduction()]
        )
        result = pipeline.run(graph, list(range(32)))
        assert result.total_rounds == sum(result.rounds_by_stage().values())
        assert max(result.colors) <= 2


class TestMetricsEdgeCases:
    def test_bits_per_edge_zero_edges(self):
        log = MetricsLog()
        assert log.bits_per_edge(0) == 0.0

    def test_max_bits_in_round_per_message_empty(self):
        log = MetricsLog()
        assert log.max_bits_in_round_per_message() == 0

    def test_round_metrics_repr(self):
        metrics = RoundMetrics(3, 10, 20, 4)
        text = repr(metrics)
        assert "round=3" in text and "bits=20" in text

    def test_metrics_log_repr(self):
        log = MetricsLog()
        log.record(RoundMetrics(0, 4, 8, 2))
        assert "rounds=1" in repr(log)

    def test_star_message_counts(self):
        graph = star_graph(5)  # m = 4
        result = ColoringEngine(graph).run(
            AdditiveGroupColoring(), list(range(5))
        )
        for entry in result.metrics.rounds:
            assert entry.messages == 2 * graph.m
