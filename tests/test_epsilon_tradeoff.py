"""Tests for the Corollary 7.3 palette/time tradeoff (epsilon variants)."""

import pytest

from repro.analysis import is_proper_coloring
from repro.core.ag import AdditiveGroupColoring, ag_prime_for
from repro.core.ag3 import ThreeDimensionalAG, ag3_prime_for
from repro.graphgen import gnp_graph, random_regular
from repro.runtime import ColoringEngine
from tests.conftest import id_coloring


class TestPrimeSelectionWithEpsilon:
    def test_smaller_floor(self):
        delta = 20
        default = ag_prime_for(1, delta)
        squeezed = ag_prime_for(1, delta, epsilon=0.5)
        assert squeezed < default
        assert squeezed >= 1.5 * delta

    def test_epsilon_one_matches_delta_floor(self):
        delta = 16
        q = ag_prime_for(1, delta, epsilon=1.0)
        assert q >= 2 * delta + 1

    def test_invalid_epsilon(self):
        with pytest.raises(ValueError):
            ag_prime_for(10, 5, epsilon=0)
        with pytest.raises(ValueError):
            ag3_prime_for(10, 5, epsilon=-1)

    def test_3ag_floor_relaxed(self):
        delta = 20
        assert ag3_prime_for(1, delta, epsilon=0.5) < ag3_prime_for(1, delta)


class TestEpsilonAG:
    @pytest.mark.parametrize("epsilon", [0.25, 0.5, 1.0])
    def test_converges_with_smaller_palette(self, epsilon):
        graph = random_regular(60, 12, seed=int(epsilon * 100))
        delta = graph.max_degree
        engine = ColoringEngine(graph, check_proper_each_round=True)
        stage = AdditiveGroupColoring(epsilon=epsilon)
        result = engine.run(stage, id_coloring(graph))
        assert is_proper_coloring(graph, result.int_colors)
        assert result.rounds_used <= stage.rounds_bound
        # Palette within the requested slack (up to the next prime).
        assert stage.q <= ag_prime_for(graph.n, delta, epsilon=epsilon)

    def test_palette_shrinks_with_epsilon(self):
        graph = random_regular(64, 16, seed=1)
        palettes = {}
        for epsilon in (0.25, 1.0, None):
            engine = ColoringEngine(graph)
            stage = AdditiveGroupColoring(epsilon=epsilon)
            result = engine.run(stage, id_coloring(graph))
            assert is_proper_coloring(graph, result.int_colors)
            palettes[epsilon] = stage.q
        assert palettes[0.25] <= palettes[1.0] <= palettes[None]

    def test_rounds_bound_grows_as_epsilon_shrinks(self):
        from repro.runtime.algorithm import NetworkInfo

        bounds = {}
        for epsilon in (0.1, 0.5, 1.0):
            stage = AdditiveGroupColoring(epsilon=epsilon)
            stage.configure(NetworkInfo(10 ** 4, 64, 80 * 80))
            bounds[epsilon] = stage.rounds_bound
        assert bounds[0.1] > bounds[0.5] >= bounds[1.0]

    def test_effective_epsilon_at_least_requested(self):
        from repro.runtime.algorithm import NetworkInfo

        stage = AdditiveGroupColoring(epsilon=0.3)
        stage.configure(NetworkInfo(100, 40, 60 * 60))
        assert stage.effective_epsilon >= 0.3 - 1e-9


class TestEpsilon3AG:
    @pytest.mark.parametrize("epsilon", [0.5, 1.0])
    def test_converges(self, epsilon):
        graph = random_regular(48, 8, seed=int(epsilon * 10))
        engine = ColoringEngine(graph, check_proper_each_round=True)
        stage = ThreeDimensionalAG(epsilon=epsilon)
        result = engine.run(stage, id_coloring(graph))
        assert is_proper_coloring(graph, result.int_colors)
        assert max(result.int_colors) < stage.p
        assert result.rounds_used <= stage.rounds_bound

    def test_smaller_palette_than_default(self):
        graph = random_regular(48, 12, seed=3)
        stages = {}
        for epsilon in (0.5, None):
            engine = ColoringEngine(graph)
            stage = ThreeDimensionalAG(epsilon=epsilon)
            engine.run(stage, id_coloring(graph))
            stages[epsilon] = stage.p
        assert stages[0.5] < stages[None]


class TestLiteral3AGDeadlock:
    """Demonstrates why the paper's literal phase-1 rule cannot converge
    (the reproduction note in repro.core.ag3): two working neighbors with
    equal (c, b) and different a rotate b in lockstep forever."""

    def test_lockstep_pair_never_converges_under_literal_rule(self):
        p = 7

        def literal_step(color, neighbor):
            c, b, a = color
            if c != 0:
                if neighbor[1] != b:  # the paper's literal test
                    return (0, b, a)
                return (c, (b + c) % p, a)
            if neighbor[2] != a:
                return (0, 0, a)
            return (0, b, (a + b) % p)

        u, v = (1, 5, 2), (1, 5, 4)
        for _ in range(10 * p):
            u, v = literal_step(u, v), literal_step(v, u)
        # Still stuck in phase 1 with equal b's — a genuine deadlock.
        assert u[0] != 0 and v[0] != 0
        assert u[1] == v[1]

    def test_implemented_rule_converges_on_same_input(self):
        from repro.runtime.algorithm import NetworkInfo

        stage = ThreeDimensionalAG()
        stage.configure(NetworkInfo(2, 1, 300))
        u = stage.encode_initial(5 + 5 * stage.p + 1 * stage.p ** 2)
        v = stage.encode_initial(4 + 5 * stage.p + 1 * stage.p ** 2)
        assert u[:2] == v[:2]  # same (c, b), different a: the deadlock input
        for r in range(2 * stage.p):
            u, v = stage.step(r, u, (v,)), stage.step(r, v, (u,))
            assert u != v
        assert stage.is_final(u) and stage.is_final(v)
