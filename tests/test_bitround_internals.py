"""Unit tests for the bit-protocol internals (replica views, CV shipping)."""

import pytest

from repro.bitround.edge_coloring import _EndpointViews
from repro.graphgen import cycle_graph, gnp_graph, path_graph
from repro.linial.cole_vishkin import cole_vishkin_three_coloring


class TestEndpointViews:
    def test_set_both_and_get(self):
        g = path_graph(3)
        views = _EndpointViews(g)
        views.set_both((0, 1), "x")
        assert views.get(0, (0, 1)) == "x"
        assert views.get(1, (0, 1)) == "x"

    def test_incident_values_excludes_the_edge_itself(self):
        g = path_graph(3)
        views = _EndpointViews(g)
        views.set_both((0, 1), "a")
        views.set_both((1, 2), "b")
        assert list(views.incident_values(1, (0, 1))) == ["b"]
        assert list(views.incident_values(1, (1, 2))) == ["a"]
        assert list(views.incident_values(0, (0, 1))) == []

    def test_consistency_assertion_fires_on_divergence(self):
        g = path_graph(2)
        views = _EndpointViews(g)
        views.set_both((0, 1), "same")
        views.set_one(0, (0, 1), "diverged")
        with pytest.raises(AssertionError):
            views.assert_consistent()

    def test_consistency_holds_after_set_both(self):
        g = cycle_graph(4)
        views = _EndpointViews(g)
        for edge in g.edges:
            views.set_both(edge, sum(edge))
        views.assert_consistent()


class TestColeVishkinHistory:
    def test_history_lengths_match_rounds(self):
        parents = [i + 1 if i + 1 < 20 else None for i in range(20)]
        colors, rounds, history = cole_vishkin_three_coloring(
            parents, range(20), 20, return_history=True
        )
        assert len(history) == rounds
        assert history[-1][0] == colors  # final snapshot equals the output

    def test_history_spaces_monotone_nonincreasing(self):
        parents = [i + 1 if i + 1 < 50 else None for i in range(50)]
        _, _, history = cole_vishkin_three_coloring(
            parents, range(50), 50, return_history=True
        )
        spaces = [space for _, space in history]
        assert spaces == sorted(spaces, reverse=True)
        assert spaces[-1] == 6

    def test_history_labels_always_within_space(self):
        parents = [(i + 1) % 30 for i in range(30)]  # a cycle
        _, _, history = cole_vishkin_three_coloring(
            parents, range(30), 30, return_history=True
        )
        for labels, space in history:
            assert all(0 <= label < max(space, 6) for label in labels)

    def test_empty_history(self):
        assert cole_vishkin_three_coloring([], [], 0, return_history=True) == (
            [],
            0,
            [],
        )


class TestVertexProtocolPhases:
    def test_phase_keys_present(self):
        from repro.bitround.vertex_coloring import run_vertex_coloring_bit_protocol

        graph = gnp_graph(16, 0.25, seed=5)
        run = run_vertex_coloring_bit_protocol(graph)
        assert set(run.rounds_by_phase) == {
            "linial",
            "additive-group",
            "standard-reduction",
        }
        assert set(run.bit_rounds_by_phase) == set(run.rounds_by_phase)

    def test_reduction_bits_include_value_payloads(self):
        from repro.bitround.vertex_coloring import run_vertex_coloring_bit_protocol

        graph = gnp_graph(20, 0.3, seed=6)
        run = run_vertex_coloring_bit_protocol(graph)
        red_rounds = run.rounds_by_phase["standard-reduction"]
        red_bits = run.bit_rounds_by_phase["standard-reduction"]
        # Every reduction round costs at least the 1-bit change flag.
        assert red_bits >= red_rounds
