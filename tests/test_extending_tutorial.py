"""Executes the docs/extending.md tutorial code — the tutorial cannot rot.

``DoubleStepAG`` is character-for-character the worked example from the
tutorial; ``LazyAG`` is the tutorial's cautionary counterexample, kept here
to assert that it *does* violate properness exactly as documented.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import graphgen
from repro.analysis import is_proper_coloring
from repro.core.ag import AdditiveGroupColoring, ag_prime_for
from repro.errors import ImproperColoringError
from repro.runtime import ColoringEngine, LocallyIterativeColoring, Visibility
from repro.selfstab import SelfStabAlgorithm


class DoubleStepAG(LocallyIterativeColoring):
    name = "double-step-ag"
    maintains_proper = True
    uniform_step = True

    def configure(self, info):
        super().configure(info)
        self.q = ag_prime_for(info.in_palette_size, info.max_degree)

    @property
    def out_palette_size(self):
        return self.q

    @property
    def rounds_bound(self):
        return self.q

    def encode_initial(self, color):
        return (color // self.q, color % self.q)

    def step(self, round_index, color, neighbor_colors):
        a, b = color
        if any(c[1] == b for c in neighbor_colors):
            return (a, (b + 2 * a) % self.q)
        return (0, b)

    def is_final(self, color):
        return color[0] == 0

    def decode_final(self, color):
        return color[1]


class LazyAG(LocallyIterativeColoring):
    """The tutorial's WRONG variant: a calm-streak bit breaks the pair-
    distinctness invariant (see docs/extending.md)."""

    name = "lazy-ag"
    maintains_proper = True  # a false claim — the engine must catch it
    uniform_step = True

    def configure(self, info):
        super().configure(info)
        self.q = ag_prime_for(info.in_palette_size, info.max_degree)

    @property
    def out_palette_size(self):
        return self.q

    @property
    def rounds_bound(self):
        return 2 * self.q + 2

    def encode_initial(self, color):
        return (color // self.q, color % self.q, 0)

    def step(self, round_index, color, neighbor_colors):
        a, b, calm = color
        if any(c[1] == b for c in neighbor_colors):
            return (a, (b + a) % self.q, 0)
        if calm == 0 and a != 0:
            return (a, b, 1)
        return (0, b, 1)

    def is_final(self, color):
        return color[0] == 0

    def decode_final(self, color):
        return color[1]


class TestTutorialCode:
    def test_quoted_run_snippet(self):
        graph = graphgen.random_regular(48, 6, seed=1)
        engine = ColoringEngine(graph, check_proper_each_round=True)
        result = engine.run(DoubleStepAG(), list(range(graph.n)))
        assert is_proper_coloring(graph, result.int_colors)

    def test_rounds_within_bound(self):
        graph = graphgen.gnp_graph(30, 0.25, seed=2)
        engine = ColoringEngine(graph, check_proper_each_round=True)
        result = engine.run(DoubleStepAG(), list(range(graph.n)))
        assert result.rounds_used <= ag_prime_for(graph.n, graph.max_degree)

    def test_checklist_set_local(self):
        graph = graphgen.gnp_graph(30, 0.2, seed=3)
        initial = list(range(graph.n))
        runs = [
            ColoringEngine(graph, visibility=v).run(DoubleStepAG(), initial).int_colors
            for v in (Visibility.LOCAL, Visibility.SET_LOCAL)
        ]
        assert runs[0] == runs[1]

    def test_checklist_final_states_fixed(self):
        from repro.runtime.algorithm import NetworkInfo

        stage = DoubleStepAG()
        stage.configure(NetworkInfo(20, 3, 49))
        final = (0, 4)
        for nbrs in ((), ((1, 4),), ((0, 2), (3, 4))):
            assert stage.step(0, final, nbrs) == final

    def test_same_palette_as_eager_ag(self):
        graph = graphgen.random_regular(60, 8, seed=4)
        initial = list(range(graph.n))
        engine = ColoringEngine(graph)
        eager = engine.run(AdditiveGroupColoring(), initial)
        double = engine.run(DoubleStepAG(), initial)
        assert is_proper_coloring(graph, double.int_colors)
        assert max(double.int_colors) < ag_prime_for(graph.n, graph.max_degree)
        assert eager.num_colors <= double.num_colors + graph.max_degree

    @given(st.integers(min_value=0, max_value=10 ** 6))
    @settings(max_examples=20, deadline=None)
    def test_random_graphs(self, seed):
        rng = random.Random(seed)
        graph = graphgen.gnp_graph(rng.randint(2, 30), rng.uniform(0.05, 0.3), seed=seed)
        engine = ColoringEngine(graph, check_proper_each_round=True)
        stage = DoubleStepAG()
        result = engine.run(stage, list(range(graph.n)))
        assert is_proper_coloring(graph, result.int_colors)
        assert result.rounds_used <= stage.q


class TestCautionaryCounterexample:
    def test_lazy_ag_violates_properness_as_documented(self):
        """The tutorial's exact failure: the engine catches the collision."""
        graph = graphgen.random_regular(48, 6, seed=3)
        engine = ColoringEngine(graph, check_proper_each_round=True)
        with pytest.raises(ImproperColoringError):
            engine.run(LazyAG(), list(range(graph.n)))

    def test_documented_micro_trace(self):
        """The two-vertex trace from docs/extending.md, literally."""
        from repro.runtime.algorithm import NetworkInfo

        stage = LazyAG()
        stage.configure(NetworkInfo(10, 2, 25))
        u, v = (1, 2, 0), (1, 3, 0)
        u2 = stage.step(0, u, (v,))        # conflict? b=2 vs 3: no -> waits
        assert u2 == (1, 2, 1)
        # Drive the actual collision: u at (1,2,*) rotating onto v's pair.
        u, v = (1, 2, 0), (1, 3, 0)
        u = stage.step(0, u, ((0, 2, 1),))   # finalized neighbor shares b=2
        v = stage.step(0, v, ((1, 9, 0),))   # calm round: waits in place
        assert u[:2] == v[:2] == (1, 3)      # pairs collided
        u_next = stage.step(1, u, (v,))
        v_next = stage.step(1, v, (u,))
        assert u_next == v_next              # monochromatic edge — the bug


class TestTutorialStaysInSync:
    def test_doc_contains_the_exact_class(self):
        import os

        doc_path = os.path.join(
            os.path.dirname(__file__), os.pardir, "docs", "extending.md"
        )
        with open(doc_path) as handle:
            doc = handle.read()
        for fragment in (
            "class DoubleStepAG(LocallyIterativeColoring):",
            "return (a, (b + 2 * a) % self.q)",
            "## A cautionary counterexample",
            "ImproperColoringError",
        ):
            assert fragment in doc


class LocalLeaderBeacon(SelfStabAlgorithm):
    """Each vertex maintains a RAM bit: "my ID is a local maximum".

    IDs are ROM, so they are broadcast truthfully alongside the fallible
    bit; one fault-free round recomputes every bit from scratch, giving
    stabilization time 1 and adjustment radius 0.
    """

    name = "local-leader-beacon"

    def fresh_ram(self, vertex):
        return False

    def visible(self, vertex, ram):
        return (vertex, bool(ram))   # (ROM id, RAM bit)

    def transition(self, vertex, ram, neighbor_visibles):
        return all(other_id < vertex for other_id, _ in neighbor_visibles)

    def is_legal(self, graph, rams):
        for v in graph.vertices():
            expected = all(u < v for u in graph.neighbors(v))
            if bool(rams[v]) != expected:
                return False
        return True


class TestSelfStabTutorial:
    def _engine(self, seed=1):
        from repro.selfstab import SelfStabEngine
        from tests.test_selfstab_coloring import build_dynamic

        g = build_dynamic(20, 4, 0.25, seed=seed)
        return g, SelfStabEngine(g, LocalLeaderBeacon(20, 4))

    def test_stabilizes_in_one_round(self):
        g, engine = self._engine()
        rounds = engine.run_to_quiescence()
        assert engine.is_legal()
        assert rounds <= 2  # one computing round + one confirming round

    def test_survives_arbitrary_corruption(self):
        from repro.selfstab import FaultCampaign

        g, engine = self._engine(seed=2)
        engine.run_to_quiescence()
        campaign = FaultCampaign(seed=3)
        campaign.corrupt_random_rams(engine, 20)
        engine.run_to_quiescence()
        assert engine.is_legal()

    def test_adjustment_radius_zero(self):
        g, engine = self._engine(seed=4)
        engine.run_to_quiescence()
        victim = g.vertices()[0]
        engine.reset_touched()
        engine.corrupt(victim, "garbage")
        engine.run_to_quiescence()
        assert engine.adjustment_radius([victim]) == 0

    def test_doc_contains_the_exact_class(self):
        import os

        doc_path = os.path.join(
            os.path.dirname(__file__), os.pardir, "docs", "extending.md"
        )
        with open(doc_path) as handle:
            doc = handle.read()
        for fragment in (
            "class LocalLeaderBeacon(SelfStabAlgorithm):",
            "return all(other_id < vertex for other_id, _ in neighbor_visibles)",
        ):
            assert fragment in doc
