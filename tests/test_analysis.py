"""Tests for the invariant checkers."""

from repro.analysis import (
    arbdefect_upper_bound,
    coloring_defect,
    count_colors,
    edge_coloring_defect,
    is_maximal_independent_set,
    is_maximal_matching,
    is_proper_coloring,
    is_proper_edge_coloring,
    monochromatic_edges,
)
from repro.analysis.invariants import class_degeneracy
from repro.graphgen import complete_graph, cycle_graph, path_graph, star_graph
from repro.runtime.graph import StaticGraph


class TestProperColoring:
    def test_proper_and_improper(self):
        g = path_graph(3)
        assert is_proper_coloring(g, [0, 1, 0])
        assert not is_proper_coloring(g, [0, 0, 1])
        assert monochromatic_edges(g, [0, 0, 1]) == [(0, 1)]

    def test_color_counting(self):
        assert count_colors([3, 3, 5, 7]) == 3

    def test_empty_graph_always_proper(self):
        g = StaticGraph(3, [])
        assert is_proper_coloring(g, [0, 0, 0])


class TestDefect:
    def test_proper_has_zero_defect(self):
        g = cycle_graph(4)
        assert coloring_defect(g, [0, 1, 0, 1]) == 0

    def test_monochromatic_clique_defect(self):
        g = complete_graph(4)
        assert coloring_defect(g, [0, 0, 0, 0]) == 3

    def test_partial_defect(self):
        g = star_graph(5)
        assert coloring_defect(g, [0, 0, 0, 1, 1]) == 2


class TestArbdefect:
    def test_proper_coloring_zero(self):
        g = cycle_graph(6)
        assert arbdefect_upper_bound(g, [0, 1, 0, 1, 0, 1]) == 0

    def test_monochromatic_cycle_is_degeneracy_two(self):
        g = cycle_graph(6)
        assert arbdefect_upper_bound(g, [0] * 6) == 2

    def test_monochromatic_tree_is_degeneracy_one(self):
        g = path_graph(6)
        assert arbdefect_upper_bound(g, [0] * 6) == 1

    def test_class_degeneracy_by_color(self):
        g = StaticGraph(6, [(0, 1), (1, 2), (0, 2), (3, 4)])
        per_class = class_degeneracy(g, [0, 0, 0, 1, 1, 1])
        assert per_class[0] == 2  # triangle
        assert per_class[1] == 1  # one edge + isolated vertex


class TestEdgeColoring:
    def test_proper_edge_coloring(self):
        g = path_graph(3)
        assert is_proper_edge_coloring(g, {(0, 1): 0, (1, 2): 1})
        assert not is_proper_edge_coloring(g, {(0, 1): 0, (1, 2): 0})

    def test_edge_defect(self):
        g = star_graph(4)
        same = {(0, 1): 0, (0, 2): 0, (0, 3): 1}
        assert edge_coloring_defect(g, same) == 1
        proper = {(0, 1): 0, (0, 2): 1, (0, 3): 2}
        assert edge_coloring_defect(g, proper) == 0


class TestMIS:
    def test_valid_mis(self):
        g = path_graph(5)
        assert is_maximal_independent_set(g, {0, 2, 4})

    def test_not_independent(self):
        g = path_graph(3)
        assert not is_maximal_independent_set(g, {0, 1})

    def test_not_maximal(self):
        g = path_graph(5)
        assert not is_maximal_independent_set(g, {0})

    def test_star_center_alone_is_mis(self):
        g = star_graph(6)
        assert is_maximal_independent_set(g, {0})
        assert is_maximal_independent_set(g, {1, 2, 3, 4, 5})


class TestMaximalMatching:
    def test_valid_matching(self):
        g = path_graph(4)
        assert is_maximal_matching(g, [(0, 1), (2, 3)])
        assert is_maximal_matching(g, [(1, 2)])

    def test_shared_endpoint_rejected(self):
        g = path_graph(3)
        assert not is_maximal_matching(g, [(0, 1), (1, 2)])

    def test_non_maximal_rejected(self):
        g = path_graph(4)
        assert not is_maximal_matching(g, [(0, 1)])

    def test_nonexistent_edge_rejected(self):
        g = path_graph(3)
        assert not is_maximal_matching(g, [(0, 2)])


class TestArboricityBounds:
    def test_tree_bounds(self):
        from repro.analysis.invariants import arboricity_bounds

        g = path_graph(10)
        lower, upper = arboricity_bounds(g)
        assert lower == 1 and upper == 1

    def test_clique_bounds_sandwich(self):
        from repro.analysis.invariants import arboricity_bounds

        g = complete_graph(9)  # arboricity of K_n = ceil(n/2)
        lower, upper = arboricity_bounds(g)
        assert lower <= 5 <= upper + 1
        assert lower >= 4

    def test_empty_graph(self):
        from repro.analysis.invariants import nash_williams_lower_bound
        from repro.runtime.graph import StaticGraph

        assert nash_williams_lower_bound(StaticGraph(4, [])) == 0
        assert nash_williams_lower_bound(StaticGraph(1, [])) == 0

    def test_per_class_bounds(self):
        from repro.analysis.invariants import arboricity_bounds

        g = StaticGraph(6, [(0, 1), (1, 2), (0, 2), (3, 4)])
        lower, upper = arboricity_bounds(g, [0, 0, 0, 1, 1, 1])
        # Class 0 is a triangle: Nash-Williams gives ceil(3 / 2) = 2.
        assert lower == 2
        assert upper == 2

    def test_lower_never_exceeds_upper(self):
        from repro.analysis.invariants import arboricity_bounds
        from repro.graphgen import gnp_graph

        for seed in range(6):
            g = gnp_graph(25, 0.2, seed=seed)
            lower, upper = arboricity_bounds(g)
            assert lower <= upper or (g.m == 0 and lower == upper == 0)


class TestPaletteHistogram:
    def test_counts(self):
        from repro.analysis.invariants import palette_histogram

        assert palette_histogram([0, 1, 1, 2, 1]) == {0: 1, 1: 3, 2: 1}
        assert palette_histogram([]) == {}
