"""The flight recorder: timeline export, sampling profiler, worker watchdog.

Three layers under test.  The Chrome-trace exporter must place spans from
different processes on distinct ``(pid, source)`` lanes with monotonic
timestamps; the sampling profiler must deliver a dense RSS/CPU timeline
without touching the collector from its background thread until ``stop``;
and the watchdog must surface a deliberately-stalled worker *before* the
job-timeout machinery reclaims it.  The JSONL torn-tail repair and the
``comparable_view`` stripping contract (flight stamps never break parity
checks) ride along, as does the multi-stream ``absorb`` merge that the
``obs summary`` / ``obs timeline`` CLI builds on.
"""

import io
import json
import os
import sys
import time

import pytest

from repro import obs
from repro.obs import flight
from repro.cli import main as cli_main
from repro.parallel import JobRunner, JobSpec, register_algorithm, run_many
from repro.parallel.jobs import _ALGORITHMS
from repro.parallel.runner import _multiprocessing_context
from repro.runtime.csr import numpy_available

BENCH_DIR = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "benchmarks"
)
if BENCH_DIR not in sys.path:
    sys.path.insert(0, BENCH_DIR)

import check_regression  # noqa: E402


def _fork_available():
    context = _multiprocessing_context()
    return (
        context is not None
        and getattr(context, "get_start_method", lambda: "")() == "fork"
    )


def run_cli(argv):
    out = io.StringIO()
    code = cli_main(argv, out=out)
    return code, out.getvalue()


@pytest.fixture
def scratch_algorithm():
    registered = []

    def add(name, fn):
        register_algorithm(name, fn)
        registered.append(name)
        return fn

    yield add
    for name in registered:
        _ALGORITHMS.pop(name, None)


# -- identity stamping -----------------------------------------------------------------


class TestStamping:
    def test_events_and_spans_carry_ts_and_pid(self):
        with obs.capture(source="tester") as tel:
            tel.event("thing.happened", value=3)
            with tel.span("outer"):
                with tel.span("inner"):
                    pass
        for record in tel.events:
            assert isinstance(record["ts"], float)
            assert record["pid"] == os.getpid()
            assert record["source"] == "tester"
        spans = [r for r in tel.events if r["type"] == "span"]
        outer = next(r for r in spans if r["path"] == "outer")
        inner = next(r for r in spans if r["path"] == "outer/inner")
        # A span's ts is its *start*: inner nests inside outer on the axis.
        assert outer["ts"] <= inner["ts"]
        assert inner["ts"] + inner["seconds"] <= outer["ts"] + outer["seconds"] + 1e-6

    def test_explicit_stamps_win_over_setdefault(self):
        with obs.capture() as tel:
            tel.event("replayed", ts=123.5, pid=42)
        record = tel.events[-1]
        assert record["ts"] == 123.5 and record["pid"] == 42

    def test_trace_context_round_trip(self):
        with obs.capture(source="parent") as tel:
            context = tel.trace_context()
            assert context["trace_id"] == tel.trace_id
            assert context["source"] == "parent"
        assert obs.active().trace_context() is None  # null collector

    def test_snapshot_carries_identity(self):
        with obs.capture() as tel:
            tel.counter("x")
        snapshot = tel.snapshot()
        assert snapshot["pid"] == os.getpid()
        assert snapshot["trace_id"] == tel.trace_id


# -- absorb re-sequencing (two interleaved workers, nested spans) ----------------------


class TestAbsorbMerge:
    def _worker_stream(self, source, base):
        clock = iter([base + t for t in (0.0, 0.01, 0.02, 0.03, 0.05, 0.08)])
        tel = obs.Telemetry(clock=lambda: next(clock), source=source)
        tel.pid = hash(source) % 10000 + 1000  # simulate a foreign pid
        with tel.span("job"):
            with tel.span("engine.run"):
                tel.event("engine.tick", round=0)
        return tel, list(tel.events) + [tel.snapshot()]

    def test_interleaved_absorb_preserves_pairing(self):
        tel_a, records_a = self._worker_stream("w-a", 100.0)
        tel_b, records_b = self._worker_stream("w-b", 100.005)
        parent = obs.Telemetry(source="main")
        # Interleave record-by-record: absorb must not rely on contiguity.
        for ra, rb in zip(records_a, records_b):
            parent.absorb([ra], job="a")
            parent.absorb([rb], job="b")
        merged = parent.events
        # Fresh local seq, foreign seq preserved.
        assert [r["seq"] for r in merged] == list(range(len(merged)))
        assert all("source_seq" in r for r in merged)
        for source, tel in (("w-a", tel_a), ("w-b", tel_b)):
            mine = [r for r in merged if r.get("source") == source]
            assert mine, "worker stream lost in merge"
            # Stamps survive verbatim (absorb never re-stamps).
            assert {r["pid"] for r in mine} == {tel.pid}
            spans = {r["path"]: r for r in mine if r["type"] == "span"}
            outer, inner = spans["job"], spans["job/engine.run"]
            # Open/close pairing still reconstructible after the merge:
            # the child interval nests inside the parent interval.
            assert outer["ts"] <= inner["ts"]
            assert inner["ts"] + inner["seconds"] <= outer["ts"] + outer["seconds"]
            tick = next(r for r in mine if r["type"] == "engine.tick")
            assert outer["ts"] <= tick["ts"] <= outer["ts"] + outer["seconds"]
        # Counter snapshots folded: each stream contributed one span pair.
        snapshot = parent.snapshot()
        span_rows = [
            row for row in snapshot["counters"] if row["name"] == "span.count"
        ]
        if span_rows:  # span.count only exists if core counts spans
            assert sum(row["value"] for row in span_rows) >= 4

    def test_absorbed_streams_render_on_distinct_lanes(self):
        _, records_a = self._worker_stream("w-a", 50.0)
        _, records_b = self._worker_stream("w-b", 50.002)
        parent = obs.Telemetry(source="main")
        parent.absorb(records_a)
        parent.absorb(records_b)
        trace = flight.chrome_trace(parent.events)
        lanes = {
            (e["pid"], e["tid"])
            for e in trace["traceEvents"]
            if e.get("ph") == "X"
        }
        assert len(lanes) == 2


# -- JSONL durability (satellite: flushed writer, torn-tail reader) --------------------


class TestJsonlDurability:
    def test_writer_flushes_per_record(self, tmp_path):
        path = tmp_path / "stream.jsonl"
        with open(path, "w") as handle:
            writer = obs.JsonlWriter(handle)
            writer.write({"type": "a", "seq": 0})
            # Visible to a concurrent reader *before* the writer closes.
            with open(path) as reader:
                assert json.loads(reader.read()) == {"type": "a", "seq": 0}
            writer.write({"type": "b", "seq": 1})
        assert len(obs.read_jsonl(str(path))) == 2

    def test_torn_final_line_is_dropped(self, tmp_path):
        path = tmp_path / "torn.jsonl"
        with obs.capture() as tel:
            tel.event("alpha")
            tel.event("beta")
        obs.write_jsonl(tel, str(path))
        intact = obs.read_jsonl(str(path))
        with open(path, "a") as handle:
            handle.write('{"type": "gamma", "tr')  # killed mid-write
        assert obs.read_jsonl(str(path)) == intact
        with pytest.raises(ValueError, match="unparseable JSONL record"):
            obs.read_jsonl(str(path), strict=True)

    def test_mid_file_corruption_still_raises(self, tmp_path):
        path = tmp_path / "corrupt.jsonl"
        path.write_text('{"type": "a"}\nnot json at all\n{"type": "b"}\n')
        with pytest.raises(ValueError, match="line 2"):
            obs.read_jsonl(str(path))


# -- comparable_view (satellite: flight stamps never break parity) ---------------------


class TestComparableView:
    def test_flight_stamps_are_stripped(self):
        with obs.capture(source="main") as tel:
            with tel.span("engine.run", stage="linial"):
                pass
            tel.event("engine.run", stage="linial", rounds_used=3)
        view = obs.comparable_view(tel.events)
        for record in view:
            for field in ("ts", "pid", "source", "trace_id", "worker"):
                assert field not in record
        assert view[0]["path"] == "engine.run"  # structure retained

    def test_nondeterministic_record_types_are_dropped(self):
        records = [
            {"type": "engine.run", "seq": 0, "ts": 1.0, "rounds_used": 2},
            {"type": "profile.sample", "seq": 1, "ts": 1.1, "rss_bytes": 10},
            {"type": "worker.stalled", "seq": 2, "worker": 7},
            {"type": "worker.restarted", "seq": 3, "worker": 7},
            {"type": "worker.recovered", "seq": 4, "worker": 7},
            {"type": "worker.heartbeat", "seq": 5, "worker": 7},
        ]
        view = obs.comparable_view(records)
        assert [r["type"] for r in view] == ["engine.run"]

    def test_profiled_run_comparable_to_unprofiled(self, monkeypatch):
        monkeypatch.setenv("REPRO_PROFILE", "1")
        monkeypatch.setenv("REPRO_PROFILE_INTERVAL", "0.002")
        with obs.capture() as profiled:
            profiler = obs.maybe_profiler(profiled)
            with profiled.span("work"):
                time.sleep(0.01)
            profiler.stop()
        monkeypatch.delenv("REPRO_PROFILE")
        with obs.capture() as plain:
            with plain.span("work"):
                time.sleep(0.01)
        stripped = [
            {k: v for k, v in r.items() if k != "seconds"}
            for r in obs.comparable_view(profiled.events)
        ]
        stripped_plain = [
            {k: v for k, v in r.items() if k != "seconds"}
            for r in obs.comparable_view(plain.events)
        ]
        assert stripped == stripped_plain


# -- sampling profiler -----------------------------------------------------------------


class TestSamplingProfiler:
    def test_buffers_then_flushes_samples(self):
        with obs.capture() as tel:
            profiler = flight.SamplingProfiler(tel, interval=0.002)
            profiler.start()
            deadline = time.monotonic() + 0.08
            while time.monotonic() < deadline:
                sum(range(1000))
            assert not tel.events, "sampler must not touch the collector live"
            count = profiler.stop()
        samples = [r for r in tel.events if r["type"] == "profile.sample"]
        assert len(samples) == count >= 10
        for sample in samples:
            assert sample["rss_bytes"] > 0
            assert sample["cpu_seconds"] >= 0.0
        stamps = [s["ts"] for s in samples]
        assert stamps == sorted(stamps)
        gauges = {
            (row["name"]): row["value"] for row in tel.snapshot()["gauges"]
        }
        assert gauges["profile.peak_rss_bytes"] == max(
            s["rss_bytes"] for s in samples
        )
        assert gauges["profile.samples"] == len(samples)

    def test_disabled_collector_is_a_no_op(self):
        profiler = flight.SamplingProfiler(obs.active(), interval=0.001)
        assert profiler.start() is profiler
        assert profiler._thread is None
        assert profiler.stop() == 0

    def test_maybe_profiler_requires_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_PROFILE", raising=False)
        with obs.capture() as tel:
            assert obs.maybe_profiler(tel) is None
        monkeypatch.setenv("REPRO_PROFILE", "1")
        with obs.capture() as tel:
            profiler = obs.maybe_profiler(tel)
            assert profiler is not None
            # One profiler per collector: nested calls must not double-sample.
            assert obs.maybe_profiler(tel) is None
            profiler.stop()
            assert obs.maybe_profiler(tel) is not None  # slot freed after stop

    def test_registered_sampler_fields_appear(self):
        flight.register_sampler("test.gauge", lambda: {"custom_depth": 7})
        try:
            with obs.capture() as tel:
                profiler = flight.SamplingProfiler(tel, interval=0.001)
                profiler.start()
                time.sleep(0.01)
                profiler.stop()
        finally:
            flight.unregister_sampler("test.gauge")
        samples = [r for r in tel.events if r["type"] == "profile.sample"]
        assert samples and all(s["custom_depth"] == 7 for s in samples)

    def test_broken_sampler_is_swallowed(self):
        def boom():
            raise RuntimeError("bad gauge")

        flight.register_sampler("test.broken", boom)
        try:
            with obs.capture() as tel:
                with flight.SamplingProfiler(tel, interval=0.001):
                    time.sleep(0.005)
        finally:
            flight.unregister_sampler("test.broken")
        assert any(r["type"] == "profile.sample" for r in tel.events)


# -- Chrome-trace export ---------------------------------------------------------------


class TestChromeTrace:
    def test_span_becomes_complete_event(self):
        records = [
            {
                "type": "span", "seq": 0, "name": "engine.run",
                "path": "pipeline.run/engine.run", "seconds": 0.25,
                "ts": 100.0, "pid": 11, "source": "job-1", "stage": "linial",
            },
            {"type": "span", "seq": 1, "name": "pipeline.run",
             "path": "pipeline.run", "seconds": 0.5, "ts": 99.9, "pid": 11,
             "source": "job-1"},
        ]
        trace = flight.chrome_trace(records)
        complete = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        assert len(complete) == 2
        engine = next(e for e in complete if e["name"] == "engine.run")
        # Normalized to the earliest ts (99.9), in microseconds.
        assert engine["ts"] == pytest.approx(0.1e6)
        assert engine["dur"] == pytest.approx(0.25e6)
        assert engine["pid"] == 11
        assert engine["args"]["stage"] == "linial"
        names = [
            e["args"]["name"] for e in trace["traceEvents"] if e["ph"] == "M"
        ]
        assert "job-1" in names  # lane labelled by source

    def test_samples_become_counter_tracks(self):
        records = [
            {"type": "profile.sample", "seq": 0, "ts": 1.0, "pid": 5,
             "rss_bytes": 1000, "cpu_seconds": 0.5},
            {"type": "profile.sample", "seq": 1, "ts": 1.1, "pid": 5,
             "rss_bytes": 2000, "cpu_seconds": 0.6},
        ]
        trace = flight.chrome_trace(records)
        counters = [e for e in trace["traceEvents"] if e["ph"] == "C"]
        rss = [e for e in counters if e["name"] == "rss_bytes"]
        assert [e["args"]["rss_bytes"] for e in rss] == [1000, 2000]

    def test_unstamped_and_snapshot_records_are_skipped(self):
        records = [
            {"type": "span", "seq": 0, "name": "x", "seconds": 0.1},  # no ts
            {"type": "snapshot", "counters": [], "gauges": [],
             "histograms": [], "ts": 5.0},
            {"type": "note", "seq": 1, "ts": 2.0, "pid": 3, "detail": "hi"},
        ]
        trace = flight.chrome_trace(records)
        kinds = [e["ph"] for e in trace["traceEvents"] if e["ph"] != "M"]
        assert kinds == ["i"]

    def test_write_chrome_trace_is_valid_json(self, tmp_path):
        with obs.capture(source="main") as tel:
            with tel.span("alpha"):
                pass
        destination = tmp_path / "trace.json"
        count = flight.write_chrome_trace(tel.events, str(destination))
        with open(destination) as handle:
            trace = json.load(handle)
        assert len(trace["traceEvents"]) == count
        assert trace["displayTimeUnit"] == "ms"


# -- worker heartbeats and the watchdog ------------------------------------------------


class TestHeartbeatBoard:
    def test_beat_read_clear(self):
        with flight.HeartbeatBoard() as board:
            board.beat(ident=111)
            board.beat(ident=222)
            beats = board.read()
            assert set(beats) == {111, 222}
            assert all(isinstance(v, float) for v in beats.values())
            board.clear()
            assert board.read() == {}
        assert not os.path.exists(board.path)

    def test_torn_write_is_skipped(self):
        with flight.HeartbeatBoard() as board:
            board.beat(ident=1)
            with open(os.path.join(board.path, "2"), "w") as handle:
                handle.write("12.")  # parseable float prefix is fine
            with open(os.path.join(board.path, "3"), "w") as handle:
                handle.write("")  # torn to nothing
            beats = board.read()
            assert 1 in beats and 3 not in beats

    def test_beat_never_raises_on_dead_board(self):
        flight.beat("/nonexistent/board/path")  # must not raise
        flight.beat(None)
        flight.beat("")


class TestWorkerWatchdog:
    def _watchdog(self, tel, stall=0.5):
        board = flight.HeartbeatBoard()
        return flight.WorkerWatchdog(tel, board, stall_after=stall), board

    def test_stall_detected_once_then_recovery(self):
        clock = [0.0]
        with obs.capture() as tel:
            board = flight.HeartbeatBoard()
            dog = flight.WorkerWatchdog(
                tel, board, stall_after=1.0, clock=lambda: clock[0]
            )
            with board:
                with open(os.path.join(board.path, "77"), "w") as handle:
                    handle.write("0.0")
                assert dog.poll() == []  # first sighting: fresh
                clock[0] = 2.0
                assert dog.poll() == [77]  # aged past the threshold
                assert dog.poll() == [77]  # still stalled, but only one event
                with open(os.path.join(board.path, "77"), "w") as handle:
                    handle.write("1.9")
                assert dog.poll() == []  # came back on its own
        stalls = [r for r in tel.events if r["type"] == "worker.stalled"]
        assert len(stalls) == 1
        assert stalls[0]["worker"] == 77
        assert stalls[0]["stalled_seconds"] >= 1.0
        assert any(r["type"] == "worker.recovered" for r in tel.events)
        counters = {
            row["name"]: row["value"] for row in tel.snapshot()["counters"]
        }
        assert counters["parallel.worker.stalls"] == 1

    def test_restart_notice_emits_per_stalled_worker(self):
        clock = [10.0]
        with obs.capture() as tel:
            board = flight.HeartbeatBoard()
            dog = flight.WorkerWatchdog(
                tel, board, stall_after=0.5, clock=lambda: clock[0]
            )
            with board:
                with open(os.path.join(board.path, "5"), "w") as handle:
                    handle.write("10.0")
                dog.poll()
                clock[0] = 12.0
                assert dog.poll() == [5]
                dog.notice_restart()
                assert dog.restarts == 1
                assert board.read() == {}  # board cleared for fresh pids
        restarted = [r for r in tel.events if r["type"] == "worker.restarted"]
        assert [r["worker"] for r in restarted] == [5]

    def test_record_job_tallies_utilization(self):
        with obs.capture() as tel:
            dog, board = self._watchdog(tel)
            with board:
                dog.record_job(101)
                dog.record_job(101)
                dog.record_job(202)
                dog.record_job(None)  # inline outcome: no worker
        rows = {
            (row["tags"].get("worker")): row["value"]
            for row in tel.snapshot()["counters"]
            if row["name"] == "parallel.worker.jobs"
        }
        assert rows == {101: 2, 202: 1}


# -- end-to-end through the pool -------------------------------------------------------


class TestPoolIntegration:
    def test_stalled_worker_surfaces_before_timeout(self, scratch_algorithm):
        if not _fork_available():
            pytest.skip("fork start method required to inherit the sleeper")

        def slow(graph, backend="auto", seed=1, **params):
            time.sleep(30)

        scratch_algorithm("flight-slow", slow)
        spec = JobSpec(algorithm="flight-slow", graph={"family": "path", "n": 4})
        os.environ["REPRO_STALL_SECONDS"] = "0.2"
        try:
            with obs.capture() as tel:
                with JobRunner(
                    workers=2, timeout=1.5, retries=0, mode="process"
                ) as runner:
                    outcomes = runner.map_jobs([spec])
        finally:
            del os.environ["REPRO_STALL_SECONDS"]
        assert outcomes[0].timed_out
        stalled = [r for r in tel.events if r["type"] == "worker.stalled"]
        assert stalled, "watchdog must fire before the 1.5s timeout"
        # The stall notice predates the pool teardown that the timeout forces.
        restarted = [r for r in tel.events if r["type"] == "worker.restarted"]
        assert restarted and stalled[0]["seq"] < restarted[0]["seq"]
        counters = {
            row["name"]: row["value"] for row in tel.snapshot()["counters"]
        }
        assert counters["parallel.worker.stalls"] >= 1
        assert counters["parallel.worker.restarts"] >= 1

    def test_watchdog_disabled_by_env(self, scratch_algorithm):
        if not _fork_available():
            pytest.skip("fork start method required to inherit the sleeper")

        def slow(graph, backend="auto", seed=1, **params):
            time.sleep(30)

        scratch_algorithm("flight-slow2", slow)
        spec = JobSpec(algorithm="flight-slow2", graph={"family": "path", "n": 4})
        os.environ["REPRO_DISABLE_WATCHDOG"] = "1"
        os.environ["REPRO_STALL_SECONDS"] = "0.2"
        try:
            with obs.capture() as tel:
                with JobRunner(
                    workers=2, timeout=0.8, retries=0, mode="process"
                ) as runner:
                    runner.map_jobs([spec])
        finally:
            del os.environ["REPRO_DISABLE_WATCHDOG"]
            del os.environ["REPRO_STALL_SECONDS"]
        assert not any(r["type"] == "worker.stalled" for r in tel.events)

    def test_worker_spans_from_two_pids_on_distinct_lanes(
        self, scratch_algorithm, tmp_path
    ):
        if not _fork_available():
            pytest.skip("fork start method required to inherit the tracer")

        def traced(graph, backend="auto", seed=1, **params):
            with obs.active().span("traced.work"):
                time.sleep(0.3)
            return _ALGORITHMS["cor36"](graph, backend=backend, seed=seed)

        scratch_algorithm("flight-traced", traced)
        specs = [
            JobSpec(
                algorithm="flight-traced",
                graph={"family": "path", "n": 8, "seed": s},
                seed=s,
            )
            for s in (1, 2)
        ]
        with obs.capture(source="main") as tel:
            run_many(specs, workers=2, mode="process", chunk_size=1)
        jsonl = tmp_path / "pool.jsonl"
        obs.write_jsonl(tel, str(jsonl))
        trace_path = tmp_path / "pool-trace.json"
        code, text = run_cli(
            ["obs", "timeline", str(jsonl), "-o", str(trace_path)]
        )
        assert code == 0 and "trace events" in text
        with open(trace_path) as handle:
            trace = json.load(handle)
        spans = [
            e
            for e in trace["traceEvents"]
            if e.get("ph") == "X" and e["name"] == "traced.work"
        ]
        # Two workers, 0.3s each, chunk_size=1: both pids must appear.
        pids = {e["pid"] for e in spans}
        assert len(pids) == 2, "expected spans from two worker pids"
        lanes = {(e["pid"], e["tid"]) for e in spans}
        assert len(lanes) == 2
        for event in spans:
            assert isinstance(event["ts"], float) and event["ts"] >= 0.0
            assert event["dur"] >= 0.29e6


# -- the oocore profiled run (acceptance: >=10 RSS samples at n >= 10^6) ---------------


@pytest.mark.skipif(not numpy_available(), reason="oocore tier needs NumPy")
class TestOocoreProfiling:
    def test_profiled_greedy_at_one_million(self, monkeypatch):
        from repro.oocore.engine import oocore_greedy
        from repro.oocore.writers import ensure_sharded

        monkeypatch.setenv("REPRO_PROFILE", "1")
        monkeypatch.setenv("REPRO_PROFILE_INTERVAL", "0.002")
        sharded = ensure_sharded(
            {"family": "regular", "n": 1_000_000, "degree": 4, "seed": 9}
        )
        with obs.capture() as tel:
            colors = oocore_greedy(sharded)
        assert len(colors) == 1_000_000
        assert max(colors) <= 4  # first-fit on a 4-regular graph
        samples = [
            r
            for r in tel.events
            if r["type"] == "profile.sample" and r.get("rss_bytes")
        ]
        assert len(samples) >= 10, (
            "profiled oocore run must record >= 10 RSS samples, got %d"
            % len(samples)
        )
        assert max(s["rss_bytes"] for s in samples) > 0

    def test_engine_run_registers_residency_sampler(self, monkeypatch):
        from repro.linial.core import LinialColoring
        from repro.oocore.engine import OocoreColoringEngine
        from repro.oocore.writers import ensure_sharded

        monkeypatch.setenv("REPRO_PROFILE", "1")
        monkeypatch.setenv("REPRO_PROFILE_INTERVAL", "0.001")
        sharded = ensure_sharded(
            {"family": "regular", "n": 4000, "degree": 4, "seed": 3}, shards=4
        )
        with obs.capture() as tel:
            OocoreColoringEngine(sharded).run(
                LinialColoring(), list(range(sharded.n))
            )
        samples = [r for r in tel.events if r["type"] == "profile.sample"]
        assert samples
        with_residency = [s for s in samples if "oocore.shards" in s]
        assert with_residency, "oocore residency sampler never contributed"
        assert with_residency[0]["oocore.shards"] == 4
        assert with_residency[0]["oocore.plane_bytes"] > 0
        # Sampler unregistered after the run: a later profile is clean.
        assert "oocore" not in flight._SAMPLERS


# -- the telemetry-overhead gate -------------------------------------------------------


@pytest.mark.skipif(not numpy_available(), reason="probe runs the batch tier")
class TestOverheadGate:
    def test_measure_overhead_shape(self):
        measured = check_regression.measure_overhead(repeats=2)
        assert measured["null_seconds"] > 0
        assert measured["telemetry_seconds"] > 0
        assert measured["ratio"] > 0

    def test_generous_limit_passes_and_tight_limit_fails(self):
        failures, lines = check_regression.check_overhead(1000.0)
        assert failures == [] and len(lines) == 1
        failures, _ = check_regression.check_overhead(1e-9)
        assert failures and "overhead" in failures[0]


# -- CLI surface -----------------------------------------------------------------------


class TestCliSurface:
    def test_timeline_from_telemetry_file(self, tmp_path):
        jsonl = tmp_path / "run.jsonl"
        code, _ = run_cli(
            ["color", "--n", "32", "--degree", "4", "--telemetry", str(jsonl)]
        )
        assert code == 0
        trace_path = tmp_path / "trace.json"
        code, text = run_cli(["obs", "timeline", str(jsonl), "-o", str(trace_path)])
        assert code == 0
        with open(trace_path) as handle:
            trace = json.load(handle)
        spans = [e for e in trace["traceEvents"] if e.get("ph") == "X"]
        assert spans
        assert all(e["pid"] for e in spans)

    def test_timeline_to_stdout(self, tmp_path):
        jsonl = tmp_path / "run.jsonl"
        run_cli(["color", "--n", "24", "--degree", "4", "--telemetry", str(jsonl)])
        code, text = run_cli(["obs", "timeline", str(jsonl)])
        assert code == 0
        trace = json.loads(text)
        assert "traceEvents" in trace

    def test_summary_merges_multiple_files(self, tmp_path):
        first, second = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        run_cli(["color", "--n", "24", "--degree", "4", "--telemetry", str(first)])
        run_cli(["color", "--n", "32", "--degree", "4", "--telemetry", str(second)])
        code, merged = run_cli(["obs", "summary", str(first), str(second)])
        assert code == 0
        _, single = run_cli(["obs", "summary", str(first)])
        # Two engine-run streams fold into one table with both runs' rows
        # (counters/histograms merge instead, so compare the runs section).
        merged_runs = merged.split("\nspans")[0]
        single_runs = single.split("\nspans")[0]
        assert merged_runs.count("additive-group") == 2 * single_runs.count(
            "additive-group"
        )

    def test_summary_reads_stdin(self, tmp_path, monkeypatch):
        jsonl = tmp_path / "run.jsonl"
        run_cli(["color", "--n", "24", "--degree", "4", "--telemetry", str(jsonl)])
        monkeypatch.setattr("sys.stdin", io.StringIO(jsonl.read_text()))
        code, text = run_cli(["obs", "summary", "-"])
        assert code == 0
        assert "engine runs" in text

    def test_profile_flag_samples_the_run(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_PROFILE_INTERVAL", "0.002")
        monkeypatch.delenv("REPRO_PROFILE", raising=False)
        jsonl = tmp_path / "profiled.jsonl"
        code, _ = run_cli(
            ["color", "--n", "64", "--degree", "6", "--telemetry", str(jsonl),
             "--profile"]
        )
        assert code == 0
        assert "REPRO_PROFILE" not in os.environ  # scoped to the command
        records = obs.read_jsonl(str(jsonl))
        assert any(r.get("type") == "profile.sample" for r in records)
