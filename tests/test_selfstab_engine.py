"""Tests for the self-stabilizing engine and the fault adversary."""

import pytest

from repro.errors import NotStabilizedError
from repro.runtime.graph import DynamicGraph
from repro.selfstab import FaultCampaign, SelfStabAlgorithm, SelfStabEngine


class ToyConsensusZero(SelfStabAlgorithm):
    """Every vertex drives its value to 0; legal = all zero."""

    name = "toy-zero"

    def fresh_ram(self, vertex):
        return 3

    def visible(self, vertex, ram):
        return ram

    def transition(self, vertex, ram, neighbor_visibles):
        if not isinstance(ram, int) or not (0 <= ram <= 3):
            return 3
        return max(0, ram - 1)

    def is_legal(self, graph, rams):
        return all(rams[v] == 0 for v in graph.vertices())


class NeverLegal(ToyConsensusZero):
    name = "toy-never"

    def is_legal(self, graph, rams):
        return False

    def stabilization_bound(self):
        return 5


def line_of(n, delta_bound=3):
    g = DynamicGraph(n, delta_bound)
    for v in range(n):
        g.add_vertex(v)
    for v in range(n - 1):
        g.add_edge(v, v + 1)
    return g


class TestEngineBasics:
    def test_quiescence_counts_rounds(self):
        engine = SelfStabEngine(line_of(5), ToyConsensusZero(5, 3))
        rounds = engine.run_to_quiescence()
        assert rounds == 4  # 3 decrements + 1 confirming round
        assert engine.is_legal()

    def test_not_stabilized_raises(self):
        engine = SelfStabEngine(line_of(4), NeverLegal(4, 3))
        with pytest.raises(NotStabilizedError):
            engine.run_to_quiescence()

    def test_corrupt_requires_present_vertex(self):
        g = line_of(3)
        engine = SelfStabEngine(g, ToyConsensusZero(3, 3))
        g.remove_vertex(2)
        with pytest.raises(ValueError):
            engine.corrupt(2, 99)

    def test_corruption_recovery(self):
        engine = SelfStabEngine(line_of(4), ToyConsensusZero(4, 3))
        engine.run_to_quiescence()
        engine.corrupt(1, ("junk",))
        assert not engine.is_legal()
        engine.run_to_quiescence()
        assert engine.is_legal()

    def test_spawn_and_crash_manage_rams(self):
        g = DynamicGraph(6, 3)
        for v in range(4):
            g.add_vertex(v)
        for v in range(3):
            g.add_edge(v, v + 1)
        engine = SelfStabEngine(g, ToyConsensusZero(6, 3))
        engine.crash_vertex(1)
        assert 1 not in engine.rams
        engine.spawn_vertex(5)
        assert engine.rams[5] == 3
        engine.run_to_quiescence()
        assert engine.is_legal()

    def test_touched_tracking_and_radius(self):
        engine = SelfStabEngine(line_of(7), ToyConsensusZero(7, 3))
        engine.run_to_quiescence()
        engine.corrupt(3, 1)
        engine.reset_touched()
        engine.corrupt(3, 1)  # re-mark the fault source after reset
        engine.run_to_quiescence()
        assert engine.touched == {3}
        assert engine.adjustment_radius([3]) == 0

    def test_step_returns_changed_set(self):
        engine = SelfStabEngine(line_of(3), ToyConsensusZero(3, 3))
        changed = engine.step()
        assert changed == {0, 1, 2}
        engine.run_to_quiescence()
        assert engine.step() == set()


class TestFaultCampaign:
    def test_corruptions_are_applied(self):
        engine = SelfStabEngine(line_of(6), ToyConsensusZero(6, 3))
        engine.run_to_quiescence()
        campaign = FaultCampaign(seed=1)
        hit = campaign.corrupt_random_rams(engine, 4)
        assert len(hit) == 4
        engine.run_to_quiescence()
        assert engine.is_legal()

    def test_churn_respects_bounds(self):
        g = line_of(6, delta_bound=2)
        engine = SelfStabEngine(g, ToyConsensusZero(6, 2))
        campaign = FaultCampaign(seed=2)
        campaign.churn_vertices(engine, crashes=2, spawns=2)
        campaign.churn_edges(engine, removals=2, additions=2)
        assert all(g.degree(v) <= 2 for v in g.vertices())
        engine.run_to_quiescence()
        assert engine.is_legal()

    def test_campaign_deterministic(self):
        results = []
        for _ in range(2):
            engine = SelfStabEngine(line_of(6), ToyConsensusZero(6, 3))
            campaign = FaultCampaign(seed=3)
            results.append(
                (campaign.corrupt_random_rams(engine, 3), dict(engine.rams))
            )
        assert results[0] == results[1]
