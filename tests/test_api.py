"""The v1 public API facade: surface, re-exports, and versioning.

``repro.api`` is the supported contract; these tests pin down that every
promised name exists, that the :mod:`repro` root re-exports the identical
objects, and that the facade actually runs jobs — so a consumer written
against the documented surface never touches an internal module.
"""

import repro
import repro.api as api


class TestSurface:
    def test_every_promised_name_exists(self):
        for name in api.__all__:
            assert hasattr(api, name), "repro.api.%s missing" % name

    def test_root_reexports_the_same_objects(self):
        for name in api.__all__:
            assert getattr(repro, name) is getattr(api, name), name
            assert name in repro.__all__, name

    def test_api_version_is_one(self):
        assert api.API_VERSION == 1
        assert isinstance(api.SCHEMA_VERSION, int)

    def test_facade_aliases_the_internal_layers(self):
        from repro.parallel.runner import run as internal_run
        from repro.runtime.backends import resolve_backend as internal_resolve
        from repro.service.client import ServiceClient as InternalClient

        assert api.run is internal_run
        assert api.resolve_backend is internal_resolve
        assert api.ServiceClient is InternalClient


class TestFacadeRuns:
    def test_run_through_the_facade(self):
        outcome = api.run(
            api.JobSpec(
                algorithm="cor36",
                graph={"family": "regular", "n": 48, "degree": 4, "seed": 2},
                seed=2,
            )
        )
        assert outcome.ok
        assert outcome.num_colors <= 5
        assert isinstance(outcome, api.JobOutcome)
        assert outcome.summary["schema_version"] == api.SCHEMA_VERSION

    def test_registries_are_reachable(self):
        assert "cor36" in api.algorithm_names()
        assert "auto" in api.backend_names("engine")
        engine_factory = api.resolve_backend("engine", "reference")
        assert callable(engine_factory)
