"""Detailed tests for the defective-coloring plan internals."""

import pytest

from repro.defective.vertex import (
    DefectiveLinialColoring,
    defective_linial_next_color,
)
from repro.mathutil.primes import is_prime
from repro.runtime.algorithm import NetworkInfo


def configured(tolerance, n=10 ** 4, delta=16, palette=10 ** 4):
    stage = DefectiveLinialColoring(tolerance)
    stage.configure(NetworkInfo(n, delta, palette))
    return stage


class TestPlanStructure:
    def test_tolerant_fields_are_primes_with_capacity(self):
        stage = configured(tolerance=4)
        current = (
            stage.proper_plan[-1].out_palette
            if stage.proper_plan
            else stage.info.in_palette_size
        )
        for q in stage.tolerant_qs:
            assert is_prime(q)
            assert q ** 3 >= current  # injective degree-2 encoding
            current = q * q

    def test_defect_budget_is_sum_of_pigeonholes(self):
        stage = configured(tolerance=4, delta=16)
        expected = sum((2 * 16) // q for q in stage.tolerant_qs)
        assert stage.defect_bound == expected

    def test_bigger_tolerance_smaller_target(self):
        palettes = {
            p: configured(tolerance=p, delta=16).out_palette_size for p in (1, 4, 16)
        }
        assert palettes[16] <= palettes[4] <= palettes[1]

    def test_rounds_bound_counts_both_phases(self):
        stage = configured(tolerance=2)
        assert stage.rounds_bound == len(stage.proper_plan) + len(stage.tolerant_qs)

    def test_no_tolerant_steps_when_already_small(self):
        # Tiny palette: the proper plan alone may land below the target.
        stage = configured(tolerance=8, delta=16, palette=40)
        assert stage.out_palette_size <= 40
        # Defect budget only from actually-planned steps.
        assert stage.defect_bound == sum((2 * 16) // q for q in stage.tolerant_qs)


class TestTolerantStep:
    def test_picks_minimum_conflict_point(self):
        # q = 5, degree 2; neighbors chosen so x = 0 has a collision.
        q = 5
        me = 7  # digits (2, 1, 0): g(x) = 2 + x
        neighbor = 2  # digits (2, 0, 0): g(x) = 2
        out = defective_linial_next_color(me, [neighbor], q, 2)
        x, value = out // q, out % q
        # At x = 0 both evaluate to 2 — the step must prefer x > 0.
        assert x != 0
        assert value == (2 + x) % q

    def test_identical_color_neighbors_ignored(self):
        q = 5
        out_with = defective_linial_next_color(7, [7, 7, 7], q, 2)
        out_without = defective_linial_next_color(7, [], q, 2)
        assert out_with == out_without

    def test_ties_break_to_smallest_x(self):
        q = 5
        out = defective_linial_next_color(3, [], q, 2)
        assert out // q == 0  # no conflicts anywhere: x = 0 chosen
