"""Tests for the BEK/Kuhn defective-coloring baseline ([5, 44, 9])."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import is_proper_coloring
from repro.baselines import bek_delta_plus_one
from repro.graphgen import (
    complete_graph,
    cycle_graph,
    gnp_graph,
    grid_graph,
    path_graph,
    random_regular,
    star_graph,
)


class TestCorrectness:
    @pytest.mark.parametrize(
        "graph",
        [
            path_graph(20),
            cycle_graph(21),
            star_graph(16),
            complete_graph(10),
            grid_graph(5, 6),
            gnp_graph(50, 0.15, seed=1),
            random_regular(48, 8, seed=2),
            random_regular(60, 16, seed=3),
        ],
        ids=["path", "cycle", "star", "clique", "grid", "gnp", "reg8", "reg16"],
    )
    def test_proper_delta_plus_one(self, graph):
        result = bek_delta_plus_one(graph)
        assert is_proper_coloring(graph, result.colors)
        assert max(result.colors) <= graph.max_degree

    def test_empty_and_tiny(self):
        from repro.runtime.graph import StaticGraph

        assert bek_delta_plus_one(StaticGraph(0, [])).colors == []
        assert bek_delta_plus_one(StaticGraph(3, [])).colors == [0, 0, 0]

    def test_zoo(self, any_graph):
        result = bek_delta_plus_one(any_graph)
        assert is_proper_coloring(any_graph, result.colors)
        assert max(result.colors, default=0) <= any_graph.max_degree


class TestRecursionShape:
    def test_depth_grows_logarithmically(self):
        small = bek_delta_plus_one(random_regular(40, 6, seed=4))
        large = bek_delta_plus_one(random_regular(80, 24, seed=5))
        assert large.depth <= small.depth + 4
        assert large.depth >= 1  # really recursed

    def test_rounds_linear_in_delta(self):
        rounds = {}
        for delta in (8, 16, 32):
            graph = random_regular(96, delta, seed=delta)
            rounds[delta] = bek_delta_plus_one(graph).rounds
        # Quadrupling Delta must not grow rounds more than ~8x (linear-ish
        # with recursion overhead, certainly not Delta^2).
        assert rounds[32] <= 8 * max(1, rounds[8])


class TestPropertyBased:
    @given(st.integers(min_value=0, max_value=10 ** 6))
    @settings(max_examples=20, deadline=None)
    def test_random_graphs(self, seed):
        rng = random.Random(seed)
        n = rng.randint(1, 40)
        graph = gnp_graph(n, rng.uniform(0, 0.35), seed=seed)
        result = bek_delta_plus_one(graph)
        assert is_proper_coloring(graph, result.colors)
        assert max(result.colors, default=0) <= graph.max_degree
