"""The self-stabilizing algorithms use small messages (Section 5's claim
that the self-stabilizing variants keep working "still with small
messages")."""

import math

from repro.selfstab import (
    SelfStabColoring,
    SelfStabEngine,
    SelfStabExactColoring,
    SelfStabMIS,
)
from tests.test_selfstab_coloring import build_dynamic


def congest_budget(n_bound):
    return 6 * max(1, math.ceil(math.log2(max(2, n_bound))))


class TestMessageSizes:
    def test_coloring_messages_are_o_log_n(self):
        for n in (40, 160):
            g = build_dynamic(n, 5, 0.15, seed=n)
            engine = SelfStabEngine(g, SelfStabColoring(n, 5))
            engine.run_to_quiescence()
            assert engine.max_message_bits <= congest_budget(n)

    def test_exact_messages_are_o_log_n(self):
        n = 80
        g = build_dynamic(n, 5, 0.15, seed=3)
        engine = SelfStabEngine(g, SelfStabExactColoring(n, 5))
        engine.run_to_quiescence()
        assert engine.max_message_bits <= congest_budget(n)

    def test_mis_messages_add_constant_bits(self):
        n = 60
        g = build_dynamic(n, 5, 0.15, seed=4)
        engine = SelfStabEngine(g, SelfStabMIS(n, 5))
        engine.run_to_quiescence()
        assert engine.max_message_bits <= congest_budget(n) + 8 * len("NOTMIS")

    def test_payload_bits_helper(self):
        bits = SelfStabEngine._payload_bits
        assert bits(0) == 1
        assert bits(255) == 9
        assert bits(None) == 1
        assert bits((3, "MIS")) == bits(3) + 24
        assert bits(object()) == 64
