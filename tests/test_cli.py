"""Tests for the command-line interface."""

import io

import pytest

from repro.cli import build_parser, main


def run_cli(argv):
    out = io.StringIO()
    code = main(argv, out=out)
    return code, out.getvalue()


class TestColorCommand:
    def test_default_regular(self):
        code, text = run_cli(["color", "--n", "48", "--degree", "6"])
        assert code == 0
        assert "Delta=6" in text
        assert "total rounds:" in text

    def test_exact_algorithm(self):
        code, text = run_cli(
            ["color", "--n", "40", "--degree", "4", "--algorithm", "exact"]
        )
        assert code == 0
        assert "max color:   4" in text

    def test_sublinear_algorithm(self):
        code, text = run_cli(
            ["color", "--family", "gnp", "--n", "40", "--prob", "0.2",
             "--algorithm", "sublinear"]
        )
        assert code == 0
        assert "colors used:" in text

    def test_set_local_flag(self):
        code, text = run_cli(
            ["color", "--n", "36", "--degree", "4", "--set-local"]
        )
        assert code == 0

    @pytest.mark.parametrize(
        "family_args",
        [
            ["--family", "cycle", "--n", "20"],
            ["--family", "path", "--n", "15"],
            ["--family", "grid", "--rows", "4", "--cols", "5"],
            ["--family", "unit-disk", "--n", "40", "--radius", "0.2"],
            ["--family", "tree", "--n", "30"],
        ],
    )
    def test_all_families(self, family_args):
        code, text = run_cli(["color"] + family_args)
        assert code == 0
        assert "colors used:" in text


class TestEdgeColorCommand:
    def test_exact(self):
        code, text = run_cli(["edge-color", "--n", "32", "--degree", "4"])
        assert code == 0
        assert "CONGEST rounds:" in text
        assert "bits per edge:" in text

    def test_inexact(self):
        code, text = run_cli(
            ["edge-color", "--n", "32", "--degree", "4", "--no-exact"]
        )
        assert code == 0


class TestMISAndMatching:
    def test_mis(self):
        code, text = run_cli(["mis", "--family", "grid", "--rows", "5", "--cols", "5"])
        assert code == 0
        assert "MIS size:" in text

    def test_matching(self):
        code, text = run_cli(["matching", "--n", "24", "--degree", "4"])
        assert code == 0
        assert "matching size:" in text


class TestSelfStabCommand:
    def test_demo_runs(self):
        code, text = run_cli(
            ["selfstab", "--n", "24", "--delta", "4", "--bursts", "2",
             "--corruptions", "6", "--churn", "1"]
        )
        assert code == 0
        assert "cold start:" in text
        assert "burst 2:" in text
        assert "final palette:" in text


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_family_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["color", "--family", "hypergraph"])


class TestJsonOutput:
    def test_color_json(self):
        import json

        code, text = run_cli(
            ["color", "--n", "24", "--degree", "4", "--json"]
        )
        assert code == 0
        payload = json.loads(text)
        assert payload["num_colors"] <= 5
        assert "stages" in payload

    def test_sublinear_json(self):
        import json

        code, text = run_cli(
            ["color", "--family", "gnp", "--n", "24", "--prob", "0.2",
             "--algorithm", "sublinear", "--json"]
        )
        assert code == 0
        payload = json.loads(text)
        assert "stage_rounds" in payload
        assert "ag_side_rounds" in payload

    def test_edge_color_json(self):
        import json

        code, text = run_cli(["edge-color", "--n", "16", "--degree", "4", "--json"])
        assert code == 0
        payload = json.loads(text)
        assert "edge_colors" in payload
        assert payload["palette_size"] >= 1

    def test_color_json_stage_metrics_are_totals_only(self):
        # The JSON summary uses MetricsLog.to_dict(detail=False): per-stage
        # communication totals without the O(rounds) per-round rows.
        import json

        code, text = run_cli(["color", "--n", "24", "--degree", "4", "--json"])
        assert code == 0
        payload = json.loads(text)
        assert payload["stages"]
        for stage in payload["stages"]:
            metrics = stage["metrics"]
            assert "rounds" not in metrics
            assert set(metrics) == {"total_rounds", "total_messages", "total_bits"}
        assert payload["total_bits"] == sum(
            s["metrics"]["total_bits"] for s in payload["stages"]
        )


class TestParallelCommands:
    def test_color_seed_fanout(self):
        code, text = run_cli(
            ["color", "--n", "48", "--degree", "4", "--seeds", "2", "--workers", "2"]
        )
        assert code == 0
        assert "jobs: 2 ok, 0 failed" in text
        assert "cor36-regular-n48-degree4-s1" in text

    def test_color_set_local_incompatible_with_jobs(self):
        code, text = run_cli(
            ["color", "--n", "32", "--degree", "4", "--seeds", "2", "--set-local"]
        )
        assert code == 2
        assert "--set-local" in text

    def test_sweep_table(self):
        code, text = run_cli(
            ["sweep", "--n", "32,48", "--degree", "4", "--seeds", "2", "--workers", "2"]
        )
        assert code == 0
        assert "jobs: 4 ok, 0 failed" in text

    def test_sweep_json(self):
        import json

        code, text = run_cli(
            ["sweep", "--n", "24", "--degree", "4", "--seeds", "1", "--json"]
        )
        assert code == 0
        payload = json.loads(text)
        assert len(payload) == 1
        assert payload[0]["ok"]
        assert payload[0]["summary"]["num_colors"] <= 5

    def test_sweep_telemetry_stream_is_merged(self, tmp_path):
        path = str(tmp_path / "sweep.jsonl")
        code, text = run_cli(
            ["sweep", "--n", "24,32", "--degree", "4", "--seeds", "1",
             "--workers", "2", "--telemetry", path]
        )
        assert code == 0
        from repro import obs

        records = obs.read_jsonl(path)
        job_events = [r for r in records if r.get("type") == "parallel.job"]
        assert len(job_events) == 2
        engine_runs = [r for r in records if r.get("type") == "engine.run"]
        assert engine_runs and all("job" in r for r in engine_runs)
        assert any(r.get("type") == "snapshot" for r in records)

    def test_color_workers_flag(self):
        code, text = run_cli(
            ["color", "--n", "48", "--degree", "4", "--seeds", "2", "--workers", "2"]
        )
        assert code == 0
        assert "jobs: 2 ok, 0 failed" in text

    def test_sweep_workers_flag(self):
        code, text = run_cli(
            ["sweep", "--n", "32,48", "--degree", "4", "--seeds", "2", "--workers", "2"]
        )
        assert code == 0
        assert "jobs: 4 ok, 0 failed" in text

    def test_jobs_alias_removed(self):
        with pytest.raises(SystemExit):
            run_cli(["sweep", "--n", "32", "--degree", "4", "--jobs", "2"])
        with pytest.raises(SystemExit):
            run_cli(["color", "--n", "32", "--degree", "4", "--jobs", "2"])

    def test_sweep_unknown_algorithm_fails_cleanly(self):
        code, text = run_cli(
            ["sweep", "--n", "24", "--degree", "4", "--algorithm", "nope"]
        )
        assert code == 1
        assert "FAILED" in text
