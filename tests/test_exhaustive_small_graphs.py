"""Exhaustive verification on every small graph.

Every graph on 4 vertices (64 edge masks) and a deterministic sweep of
5-vertex graphs get the full treatment: both (Delta+1) pipelines, the edge
coloring, MIS and maximal matching.  Exhaustive enumeration catches corner
topologies (isolated vertices, disconnected unions, near-cliques) that
random generators rarely produce.
"""

import itertools

import pytest

from repro import delta_plus_one_coloring, delta_plus_one_exact_no_reduction
from repro.analysis import (
    is_maximal_independent_set,
    is_maximal_matching,
    is_proper_coloring,
    is_proper_edge_coloring,
)
from repro.apps import locally_iterative_maximal_matching, locally_iterative_mis
from repro.edge import edge_coloring_congest
from repro.runtime.graph import StaticGraph


def all_graphs(n):
    """Every labeled graph on n vertices."""
    pairs = list(itertools.combinations(range(n), 2))
    for mask in range(1 << len(pairs)):
        edges = [pairs[i] for i in range(len(pairs)) if mask >> i & 1]
        yield StaticGraph(n, edges)


def five_vertex_sample():
    """A deterministic stride through the 1024 graphs on 5 vertices."""
    pairs = list(itertools.combinations(range(5), 2))
    for mask in range(0, 1 << len(pairs), 7):
        edges = [pairs[i] for i in range(len(pairs)) if mask >> i & 1]
        yield StaticGraph(5, edges)


class TestEveryFourVertexGraph:
    def test_vertex_coloring_pipelines(self):
        for graph in all_graphs(4):
            for runner in (delta_plus_one_coloring, delta_plus_one_exact_no_reduction):
                result = runner(graph)
                assert is_proper_coloring(graph, result.colors), graph.edges
                assert max(result.colors, default=0) <= graph.max_degree

    def test_edge_coloring(self):
        for graph in all_graphs(4):
            if graph.m == 0:
                continue
            result = edge_coloring_congest(graph)
            assert is_proper_edge_coloring(graph, result.edge_colors), graph.edges
            assert result.palette_size <= max(1, 2 * graph.max_degree - 1)

    def test_mis_and_matching(self):
        for graph in all_graphs(4):
            mis = locally_iterative_mis(graph)
            assert is_maximal_independent_set(graph, mis.members), graph.edges
            if graph.m:
                mm = locally_iterative_maximal_matching(graph)
                assert is_maximal_matching(graph, mm.edges), graph.edges


class TestFiveVertexSweep:
    def test_vertex_coloring(self):
        for graph in five_vertex_sample():
            result = delta_plus_one_exact_no_reduction(graph)
            assert is_proper_coloring(graph, result.colors), graph.edges
            assert max(result.colors, default=0) <= graph.max_degree

    def test_edge_coloring(self):
        for graph in five_vertex_sample():
            if graph.m == 0:
                continue
            result = edge_coloring_congest(graph)
            assert is_proper_edge_coloring(graph, result.edge_colors), graph.edges
