"""Differential tests: the vectorized batch engine vs the reference engine.

The acceleration layer's contract is *bit-for-bit equivalence*: for every
covered stage, graph, and visibility mode, the batch engine must produce the
same per-round colorings (history), the same final colors, the same
``rounds_used``, and the same metrics as the scalar reference engine.  These
tests enforce that on random graphs, adversarial worst cases, and every
small graph exhaustively; plus backend-selection and fallback behavior.
"""

import itertools
import os

import pytest

from repro import graphgen
from repro.core import (
    AdditiveGroupColoring,
    AdditiveGroupZN,
    ArbAGColoring,
    ThreeDimensionalAG,
)
from repro.core.pipeline import delta_plus_one_coloring
from repro.core.reductions import StandardColorReduction
from repro.errors import PaletteOverflowError
from repro.linial.core import LinialColoring
from repro.runtime import (
    BatchColoringEngine,
    ColoringEngine,
    StaticGraph,
    Visibility,
    batch_supported,
)
from repro.runtime.backends import resolve_backend
from repro.runtime.csr import numpy_available


def make_engine(graph, backend="auto", stages=None, **kwargs):
    """Registry-constructed coloring engine (successor of the removed shim)."""
    return resolve_backend("engine", backend)(graph, stages=stages, **kwargs)


requires_numpy = pytest.mark.requires_numpy

BOTH_VISIBILITIES = (Visibility.LOCAL, Visibility.SET_LOCAL)


def _skip_without_numpy():
    if not numpy_available():
        pytest.skip("NumPy unavailable (or disabled via REPRO_DISABLE_NUMPY)")


def assert_equivalent_runs(graph, make_stage, initial, palette, visibility):
    """Run both engines and compare every observable output."""
    reference = ColoringEngine(
        graph,
        visibility=visibility,
        check_proper_each_round=make_stage().maintains_proper,
        record_history=True,
    )
    batch = BatchColoringEngine(
        graph,
        visibility=visibility,
        check_proper_each_round=make_stage().maintains_proper,
        record_history=True,
    )
    ref_result = reference.run(make_stage(), initial, in_palette_size=palette)
    bat_result = batch.run(make_stage(), initial, in_palette_size=palette)
    assert bat_result.history == ref_result.history
    assert bat_result.colors == ref_result.colors
    assert bat_result.int_colors == ref_result.int_colors
    assert bat_result.rounds_used == ref_result.rounds_used
    assert bat_result.num_colors == ref_result.num_colors
    assert bat_result.metrics.to_dict() == ref_result.metrics.to_dict()
    return ref_result


def proper_identity_coloring(graph):
    """The trivial proper n-coloring (vertex index)."""
    return list(range(graph.n)), max(1, graph.n)


def spread_small_coloring(graph):
    """A proper <= 2(Delta+1)-coloring exercising AG(N)'s high range.

    Greedy-color into Delta+1 classes, then shift every odd class up by
    N = Delta + 1 so roughly half the vertices start in the working band
    (b = 1); shifted classes stay disjoint from unshifted ones.
    """
    modulus = graph.max_degree + 1
    colors = [None] * graph.n
    for v in range(graph.n):
        used = {colors[u] for u in graph.neighbors(v) if colors[u] is not None}
        colors[v] = min(c for c in range(modulus) if c not in used)
    colors = [c + modulus if c % 2 == 1 else c for c in colors]
    return colors, 2 * modulus


DIFFERENTIAL_STAGES = [
    ("ag", AdditiveGroupColoring, proper_identity_coloring),
    ("3ag", ThreeDimensionalAG, proper_identity_coloring),
    ("agn", AdditiveGroupZN, spread_small_coloring),
    ("arb-ag-p1", lambda: ArbAGColoring(1), proper_identity_coloring),
    ("arb-ag-p3", lambda: ArbAGColoring(3), proper_identity_coloring),
    ("linial", LinialColoring, proper_identity_coloring),
    ("standard-reduction", StandardColorReduction, spread_small_coloring),
]


def random_graphs():
    return [
        ("gnp-sparse", graphgen.gnp_graph(70, 0.05, seed=11)),
        ("gnp-dense", graphgen.gnp_graph(48, 0.3, seed=12)),
        ("regular", graphgen.random_regular(60, 6, seed=13)),
        ("tree", graphgen.random_tree(50, seed=14)),
    ]


def worst_case_graphs():
    return [
        ("clique", graphgen.complete_graph(10)),
        ("star", graphgen.star_graph(24)),
        ("cycle-odd", graphgen.cycle_graph(19)),
        ("empty", graphgen.path_graph(1)),
        ("barbell", graphgen.barbell_of_cliques(5, 3)),
        ("bipartite", graphgen.complete_bipartite_graph(6, 9)),
    ]


@requires_numpy
@pytest.mark.parametrize("visibility", BOTH_VISIBILITIES, ids=lambda v: v.value)
@pytest.mark.parametrize("stage_id,make_stage,make_initial", DIFFERENTIAL_STAGES,
                         ids=[s[0] for s in DIFFERENTIAL_STAGES])
@pytest.mark.parametrize("graph_id,graph", random_graphs() + worst_case_graphs(),
                         ids=[g[0] for g in random_graphs() + worst_case_graphs()])
def test_batch_matches_reference(graph_id, graph, stage_id, make_stage,
                                 make_initial, visibility):
    _skip_without_numpy()
    initial, palette = make_initial(graph)
    assert_equivalent_runs(graph, make_stage, initial, palette, visibility)


@requires_numpy
@pytest.mark.parametrize("visibility", BOTH_VISIBILITIES, ids=lambda v: v.value)
def test_batch_matches_reference_exhaustive_small(visibility):
    """Every graph on up to 4 vertices, every AG-family stage."""
    _skip_without_numpy()
    n = 4
    all_edges = list(itertools.combinations(range(n), 2))
    for mask in range(1 << len(all_edges)):
        edges = [e for i, e in enumerate(all_edges) if mask >> i & 1]
        graph = StaticGraph(n, edges)
        for stage_id, make_stage, make_initial in DIFFERENTIAL_STAGES:
            initial, palette = make_initial(graph)
            assert_equivalent_runs(graph, make_stage, initial, palette, visibility)


@requires_numpy
def test_batch_engine_max_rounds_and_unfinished_decode():
    """max_rounds truncation raises the same decode error on both sides."""
    _skip_without_numpy()
    graph = graphgen.complete_graph(8)
    # Probe the modulus, then start every vertex in the working band (a != 0).
    probe = AdditiveGroupColoring()
    ColoringEngine(graph).run(probe, list(range(graph.n)), max_rounds=0)
    q = probe.q
    initial = [q * (v + 1) for v in range(graph.n)]
    for engine_cls in (ColoringEngine, BatchColoringEngine):
        engine = engine_cls(graph)
        with pytest.raises(ValueError) as excinfo:
            engine.run(AdditiveGroupColoring(), initial, max_rounds=0)
        assert "working stage" in str(excinfo.value)


@requires_numpy
def test_batch_engine_encode_validation_matches():
    _skip_without_numpy()
    graph = graphgen.path_graph(3)
    stage = AdditiveGroupColoring()
    bad = [0, 1, 10 ** 9]
    ref_msg = bat_msg = None
    try:
        ColoringEngine(graph).run(AdditiveGroupColoring(), bad, in_palette_size=4)
    except ValueError as exc:
        ref_msg = str(exc)
    try:
        BatchColoringEngine(graph).run(stage, bad, in_palette_size=4)
    except ValueError as exc:
        bat_msg = str(exc)
    assert ref_msg is not None and ref_msg == bat_msg


@requires_numpy
def test_batch_engine_palette_overflow_matches():
    """A lying stage overflows the palette identically on both engines."""
    _skip_without_numpy()

    class OverflowAG(AdditiveGroupColoring):
        @property
        def out_palette_size(self):
            return 1

    graph = graphgen.cycle_graph(6)
    initial = list(range(graph.n))
    messages = []
    for engine_cls in (ColoringEngine, BatchColoringEngine):
        with pytest.raises(PaletteOverflowError) as excinfo:
            engine_cls(graph).run(OverflowAG(), initial)
        messages.append(str(excinfo.value))
    assert messages[0] == messages[1]


@requires_numpy
def test_full_pipeline_identical_across_backends():
    """The end-to-end Corollary 3.6 pipeline is backend-invariant."""
    _skip_without_numpy()
    graph = graphgen.gnp_graph(60, 0.12, seed=21)
    ref = delta_plus_one_coloring(graph, backend="reference")
    bat = delta_plus_one_coloring(graph, backend="batch")
    auto = delta_plus_one_coloring(graph, backend="auto")
    assert bat.colors == ref.colors == auto.colors
    assert bat.total_rounds == ref.total_rounds == auto.total_rounds
    assert bat.to_dict() == ref.to_dict() == auto.to_dict()


# -- backend selection and fallback ---------------------------------------------


def test_batch_supported_detection():
    assert batch_supported(AdditiveGroupColoring())
    assert batch_supported(ThreeDimensionalAG())
    assert batch_supported(AdditiveGroupZN())
    assert batch_supported(ArbAGColoring(1))
    assert batch_supported(LinialColoring())
    assert batch_supported(StandardColorReduction())
    from repro.defective.vertex import DefectiveLinialColoring

    assert batch_supported(DefectiveLinialColoring(1))

    from repro.runtime.algorithm import LocallyIterativeColoring

    class _ScalarOnly(LocallyIterativeColoring):
        name = "scalar-only"
        out_palette_size = 1
        rounds_bound = 0

        def step(self, round_index, color, neighbor_colors):
            return color

    assert not batch_supported(_ScalarOnly())


def test_make_engine_reference_backend():
    graph = graphgen.path_graph(4)
    engine = make_engine(graph, backend="reference")
    assert type(engine) is ColoringEngine


def test_make_engine_rejects_unknown_backend():
    with pytest.raises(ValueError):
        make_engine(graphgen.path_graph(2), backend="warp-drive")


@requires_numpy
def test_make_engine_auto_prefers_batch():
    _skip_without_numpy()
    graph = graphgen.path_graph(4)
    assert type(make_engine(graph)) is BatchColoringEngine
    assert type(make_engine(graph, stages=[AdditiveGroupColoring()])) \
        is BatchColoringEngine


def test_make_engine_auto_falls_back_for_unsupported_stage():
    from repro.selfstab.coloring import SelfStabColoring

    graph = graphgen.path_graph(4)
    # A stage without the batch protocol sends auto to the scalar engine.
    engine = make_engine(graph, stages=[SelfStabColoring])
    assert type(engine) is ColoringEngine


def test_forced_numpy_disable_falls_back(monkeypatch):
    """REPRO_DISABLE_NUMPY=1 turns the whole layer off, results unchanged."""
    monkeypatch.setenv("REPRO_DISABLE_NUMPY", "1")
    assert not numpy_available()
    graph = graphgen.gnp_graph(40, 0.1, seed=5)
    engine = make_engine(graph)
    assert type(engine) is ColoringEngine
    with pytest.raises(RuntimeError):
        make_engine(graph, backend="batch")
    # An explicitly constructed batch engine degrades to the scalar path.
    result = BatchColoringEngine(graph).run(
        AdditiveGroupColoring(), list(range(graph.n))
    )
    monkeypatch.delenv("REPRO_DISABLE_NUMPY")
    reference = ColoringEngine(graph).run(
        AdditiveGroupColoring(), list(range(graph.n))
    )
    assert result.colors == reference.colors
    assert result.rounds_used == reference.rounds_used


@requires_numpy
def test_csr_cache_is_reused():
    _skip_without_numpy()
    graph = graphgen.cycle_graph(8)
    assert graph.csr() is graph.csr()
    csr = graph.csr()
    assert csr.n == graph.n and csr.m == graph.m
    assert csr.indices.shape[0] == 2 * graph.m
    for v in range(graph.n):
        lo, hi = int(csr.indptr[v]), int(csr.indptr[v + 1])
        assert tuple(csr.indices[lo:hi].tolist()) == graph.neighbors(v)
        assert all(int(r) == v for r in csr.rows[lo:hi])


def test_max_degree_cached_and_correct():
    graph = graphgen.gnp_graph(30, 0.2, seed=9)
    expected = max((graph.degree(v) for v in range(graph.n)), default=0)
    assert graph.max_degree == expected
    assert StaticGraph(0, []).max_degree == 0


def test_num_colors_memoized():
    graph = graphgen.cycle_graph(6)
    result = ColoringEngine(graph).run(
        AdditiveGroupColoring(), list(range(graph.n))
    )
    first = result.num_colors
    assert result.num_colors == first == len(set(result.int_colors))
    assert result._num_colors == first
