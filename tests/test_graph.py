"""Tests for the graph substrate (StaticGraph / DynamicGraph)."""

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runtime.graph import DynamicGraph, StaticGraph


class TestStaticGraph:
    def test_basic_construction(self):
        g = StaticGraph(4, [(0, 1), (1, 2), (2, 3), (1, 2)])
        assert g.n == 4
        assert g.m == 3  # duplicate collapsed
        assert g.edges == ((0, 1), (1, 2), (2, 3))
        assert g.neighbors(1) == (0, 2)
        assert g.degree(1) == 2
        assert g.max_degree == 2
        assert g.has_edge(2, 1)
        assert not g.has_edge(0, 3)

    def test_rejects_self_loops(self):
        with pytest.raises(ValueError):
            StaticGraph(3, [(1, 1)])

    def test_rejects_out_of_range_edges(self):
        with pytest.raises(ValueError):
            StaticGraph(3, [(0, 3)])

    def test_rejects_negative_n(self):
        with pytest.raises(ValueError):
            StaticGraph(-1, [])

    def test_empty_graph(self):
        g = StaticGraph(0, [])
        assert g.n == 0
        assert g.max_degree == 0
        assert list(g.vertices()) == []

    def test_default_ids_are_indices(self):
        g = StaticGraph(3, [(0, 1)])
        assert g.ids == (0, 1, 2)

    def test_custom_ids_must_be_unique(self):
        with pytest.raises(ValueError):
            StaticGraph(3, [], ids=[5, 5, 6])
        with pytest.raises(ValueError):
            StaticGraph(3, [], ids=[1, 2])

    def test_from_networkx_relabels(self):
        nx_graph = nx.Graph()
        nx_graph.add_edges_from([(10, 20), (20, 30)])
        g = StaticGraph.from_networkx(nx_graph)
        assert g.n == 3
        assert g.m == 2
        assert g.ids == (10, 20, 30)

    def test_from_networkx_nonint_labels(self):
        nx_graph = nx.Graph()
        nx_graph.add_edge("a", "b")
        g = StaticGraph.from_networkx(nx_graph)
        assert g.n == 2
        assert g.ids == (0, 1)

    def test_bfs_distances_single_source(self):
        g = StaticGraph(5, [(0, 1), (1, 2), (2, 3)])  # vertex 4 isolated
        d = g.bfs_distances([0])
        assert d == {0: 0, 1: 1, 2: 2, 3: 3}
        assert 4 not in d

    def test_bfs_distances_multi_source(self):
        g = StaticGraph(5, [(0, 1), (1, 2), (2, 3), (3, 4)])
        d = g.bfs_distances([0, 4])
        assert d[2] == 2
        assert d[1] == 1 and d[3] == 1

    def test_subgraph_induced(self):
        g = StaticGraph(5, [(0, 1), (1, 2), (2, 3), (3, 4), (0, 4)])
        sub, index = g.subgraph([0, 1, 4])
        assert sub.n == 3
        assert sub.m == 2  # (0,1) and (0,4)
        assert index == {0: 0, 1: 1, 4: 2}
        assert sub.ids == (0, 1, 4)

    @given(st.integers(min_value=0, max_value=10 ** 6))
    @settings(max_examples=30)
    def test_degree_sum_is_twice_edges(self, seed):
        import random

        rng = random.Random(seed)
        n = rng.randint(2, 30)
        edges = [
            (i, j)
            for i in range(n)
            for j in range(i + 1, n)
            if rng.random() < 0.2
        ]
        g = StaticGraph(n, edges)
        assert sum(g.degree(v) for v in g.vertices()) == 2 * g.m


class TestDynamicGraph:
    def test_vertices_lifecycle(self):
        g = DynamicGraph(5, 3)
        g.add_vertex(0)
        g.add_vertex(1)
        assert g.vertices() == [0, 1]
        g.remove_vertex(0)
        assert g.vertices() == [1]
        g.remove_vertex(0)  # idempotent
        assert g.n == 1

    def test_edges_require_present_endpoints(self):
        g = DynamicGraph(4, 2)
        g.add_vertex(0)
        with pytest.raises(ValueError):
            g.add_edge(0, 1)

    def test_degree_bound_enforced(self):
        g = DynamicGraph(5, 2)
        for v in range(4):
            g.add_vertex(v)
        g.add_edge(0, 1)
        g.add_edge(0, 2)
        with pytest.raises(ValueError):
            g.add_edge(0, 3)

    def test_remove_vertex_cleans_edges(self):
        g = DynamicGraph(4, 3)
        for v in range(3):
            g.add_vertex(v)
        g.add_edge(0, 1)
        g.add_edge(1, 2)
        g.remove_vertex(1)
        assert g.edges() == []
        assert g.neighbors(0) == ()

    def test_self_loop_rejected(self):
        g = DynamicGraph(3, 2)
        g.add_vertex(1)
        with pytest.raises(ValueError):
            g.add_edge(1, 1)

    def test_snapshot_round_trip(self):
        g = DynamicGraph(10, 4)
        for v in (2, 5, 7):
            g.add_vertex(v)
        g.add_edge(2, 5)
        g.add_edge(5, 7)
        static, index = g.snapshot()
        assert static.n == 3
        assert static.ids == (2, 5, 7)
        assert static.has_edge(index[2], index[5])
        assert static.has_edge(index[5], index[7])
        assert not static.has_edge(index[2], index[7])

    def test_bfs_over_present_subgraph(self):
        g = DynamicGraph(6, 4)
        for v in range(5):
            g.add_vertex(v)
        for a, b in [(0, 1), (1, 2), (2, 3), (3, 4)]:
            g.add_edge(a, b)
        g.remove_vertex(2)
        d = g.bfs_distances([0])
        assert d == {0: 0, 1: 1}

    def test_out_of_range_vertex(self):
        g = DynamicGraph(3, 2)
        with pytest.raises(ValueError):
            g.add_vertex(3)

    def test_edge_add_idempotent(self):
        g = DynamicGraph(3, 2)
        g.add_vertex(0)
        g.add_vertex(1)
        g.add_edge(0, 1)
        g.add_edge(1, 0)
        assert g.edges() == [(0, 1)]


class TestInterop:
    def test_to_networkx_round_trip(self):
        g = StaticGraph(5, [(0, 1), (1, 2), (3, 4)], ids=[10, 11, 12, 13, 14])
        nx_graph = g.to_networkx()
        assert set(nx_graph.nodes()) == set(range(5))
        assert set(map(tuple, map(sorted, nx_graph.edges()))) == set(g.edges)
        assert nx_graph.nodes[2]["id"] == 12
        back = StaticGraph.from_networkx(nx_graph)
        assert back.edges == g.edges

    def test_dynamic_from_static(self):
        g = StaticGraph(4, [(0, 1), (1, 2), (2, 3)])
        dynamic = DynamicGraph.from_static(g)
        assert dynamic.n == 4
        assert dynamic.edges() == list(g.edges)
        assert dynamic.delta_bound == g.max_degree

    def test_dynamic_from_static_with_slack(self):
        g = StaticGraph(3, [(0, 1)])
        dynamic = DynamicGraph.from_static(g, n_bound=10, delta_bound=5)
        assert dynamic.n_bound == 10
        dynamic.add_vertex(7)
        dynamic.add_edge(0, 7)
        assert dynamic.has_edge(0, 7)

    def test_dynamic_from_static_selfstab_ready(self):
        from repro.selfstab import SelfStabColoring, SelfStabEngine
        from repro.graphgen import random_regular

        g = random_regular(20, 4, seed=91)
        dynamic = DynamicGraph.from_static(g)
        engine = SelfStabEngine(dynamic, SelfStabColoring(20, 4))
        engine.run_to_quiescence()
        assert engine.is_legal()
