"""Tests for the exact-(Delta+1) high/low hybrid (Section 7)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import is_proper_coloring
from repro.core.ag import AdditiveGroupColoring
from repro.core.hybrid import ExactDeltaPlusOneHybrid, largest_prime_at_most
from repro.graphgen import (
    complete_graph,
    cycle_graph,
    gnp_graph,
    path_graph,
    random_regular,
    star_graph,
)
from repro.runtime import ColoringEngine
from repro.runtime.algorithm import NetworkInfo
from tests.conftest import assert_proper, id_coloring


class TestPrimeHelper:
    def test_largest_prime_at_most(self):
        assert largest_prime_at_most(10) == 7
        assert largest_prime_at_most(13) == 13
        assert largest_prime_at_most(2) == 2
        assert largest_prime_at_most(1) is None

    def test_bertrand_gives_p_above_n(self):
        for delta in range(1, 200):
            n = delta + 1
            p = largest_prime_at_most(2 * n)
            assert p is not None and p > n


def ag_then_hybrid(graph, check=True):
    """Run AG from the ID coloring, then the hybrid, returning both results."""
    engine = ColoringEngine(graph, check_proper_each_round=check)
    ag = AdditiveGroupColoring()
    ag_run = engine.run(ag, id_coloring(graph))
    hybrid = ExactDeltaPlusOneHybrid()
    hybrid_run = engine.run(
        hybrid, ag_run.int_colors, in_palette_size=ag.out_palette_size
    )
    return hybrid, hybrid_run


class TestExactColoring:
    @pytest.mark.parametrize(
        "graph",
        [
            path_graph(20),
            cycle_graph(19),
            star_graph(14),
            complete_graph(8),
            gnp_graph(45, 0.15, seed=1),
            random_regular(36, 6, seed=2),
        ],
        ids=["path", "cycle", "star", "clique", "gnp", "regular"],
    )
    def test_exactly_delta_plus_one_colors(self, graph):
        hybrid, run = ag_then_hybrid(graph)
        assert_proper(graph, run.int_colors, "hybrid output")
        assert max(run.int_colors) <= graph.max_degree
        assert run.rounds_used <= hybrid.rounds_bound

    def test_capacity_guard(self):
        graph = path_graph(3)
        hybrid = ExactDeltaPlusOneHybrid()
        engine = ColoringEngine(graph)
        with pytest.raises(ValueError):
            engine.run(hybrid, [0, 1, 2], in_palette_size=10 ** 6)


class TestStepSemantics:
    def _configured(self, delta=4):
        stage = ExactDeltaPlusOneHybrid()
        stage.configure(NetworkInfo(30, delta, 2 * (delta + 1)))
        return stage

    def test_low_final_is_absorbing(self):
        stage = self._configured()
        color = ("L", 0, 2)
        assert stage.step(0, color, (("L", 1, 2), ("H", 3, 2))) == color

    def test_low_working_ignores_high_neighbors(self):
        stage = self._configured()
        # Only the high neighbor shares a=3: the low vertex still finalizes.
        assert stage.step(0, ("L", 1, 3), (("H", 2, 3),)) == ("L", 0, 3)

    def test_low_working_conflicts_with_low(self):
        stage = self._configured()
        n = stage.n_colors
        assert stage.step(0, ("L", 1, 3), (("L", 0, 3),)) == ("L", 1, 4 % n)

    def test_high_gated_by_low_working_neighbor(self):
        stage = self._configured()
        p = stage.p
        # No conflict, but a low working neighbor exists: keep rotating.
        out = stage.step(0, ("H", 2, 5), (("L", 1, 1),))
        assert out == ("H", 2, (5 + 2) % p)

    def test_high_conflicts_with_high_same_a(self):
        stage = self._configured()
        p = stage.p
        out = stage.step(0, ("H", 2, 5), (("H", 3, 5),))
        assert out == ("H", 2, (5 + 2) % p)

    def test_high_conflicts_with_low_final_same_a(self):
        stage = self._configured()
        p = stage.p
        out = stage.step(0, ("H", 2, 3), (("L", 0, 3),))
        assert out == ("H", 2, (3 + 2) % p)

    def test_high_lands_low_final(self):
        stage = self._configured()
        out = stage.step(0, ("H", 2, 3), (("L", 0, 1),))
        assert out == ("L", 0, 3)

    def test_high_lands_low_working(self):
        stage = self._configured(delta=4)
        n = stage.n_colors
        a = n + 2  # lands in the working half
        out = stage.step(0, ("H", 2, a), ())
        assert out == ("L", 1, 2)

    def test_uniform_step(self):
        stage = self._configured()
        color = ("H", 2, 5)
        nbrs = (("H", 3, 5),)
        assert stage.step(0, color, nbrs) == stage.step(11, color, nbrs)


class TestPropertyBased:
    @given(st.integers(min_value=0, max_value=10 ** 6))
    @settings(max_examples=30, deadline=None)
    def test_random_graphs_reach_exact_palette(self, seed):
        rng = random.Random(seed)
        n = rng.randint(2, 40)
        graph = gnp_graph(n, rng.uniform(0, 0.3), seed=seed)
        hybrid, run = ag_then_hybrid(graph)
        assert is_proper_coloring(graph, run.int_colors)
        assert max(run.int_colors) <= graph.max_degree
        assert run.rounds_used <= hybrid.rounds_bound


class TestHybridReducesToAGN:
    """With an input palette <= 2N, every vertex starts low and the hybrid
    must behave exactly like AG(N) — a consistency check between the two
    implementations of the same mathematics."""

    def _roundtrip(self, seed):
        from repro.core.agn import AdditiveGroupZN
        from tests.test_agn import two_n_coloring

        rng = random.Random(seed)
        n = rng.randint(2, 30)
        graph = gnp_graph(n, rng.uniform(0.1, 0.3), seed=seed)
        coloring = two_n_coloring(graph, seed)
        palette = 2 * (graph.max_degree + 1)

        engine = ColoringEngine(graph)
        agn_run = engine.run(AdditiveGroupZN(), coloring, in_palette_size=palette)
        hybrid_run = engine.run(
            ExactDeltaPlusOneHybrid(), coloring, in_palette_size=palette
        )
        assert hybrid_run.int_colors == agn_run.int_colors
        assert hybrid_run.rounds_used == agn_run.rounds_used

    def test_low_only_inputs_match_agn(self):
        for seed in range(25):
            self._roundtrip(seed)
