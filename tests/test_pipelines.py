"""Integration tests for the end-to-end pipelines (Corollaries 3.6, Thm 6.4)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    delta_plus_one_coloring,
    delta_plus_one_exact_no_reduction,
    one_plus_eps_delta_coloring,
    sublinear_delta_plus_one_coloring,
)
from repro.analysis import is_proper_coloring
from repro.graphgen import (
    barbell_of_cliques,
    complete_graph,
    cycle_graph,
    gnp_graph,
    grid_graph,
    path_graph,
    random_regular,
    random_tree,
    star_graph,
)
from repro.mathutil import log_star
from repro.runtime import Visibility
from tests.conftest import assert_proper


class TestCorollary36:
    def test_headline_guarantee(self, any_graph):
        result = delta_plus_one_coloring(any_graph, check_proper_each_round=True)
        assert_proper(any_graph, result.colors, "Corollary 3.6")
        assert max(result.colors, default=0) <= any_graph.max_degree

    def test_round_bound_o_delta_plus_log_star(self):
        for delta, n, seed in [(4, 128, 1), (8, 96, 2), (12, 78, 3)]:
            graph = random_regular(n, delta, seed=seed)
            result = delta_plus_one_coloring(graph)
            budget = 8 * delta + log_star(n) + 12
            assert result.total_rounds <= budget, (delta, result.rounds_by_stage())

    def test_respects_supplied_initial_coloring(self):
        graph = cycle_graph(20)
        sparse_ids = [3 * v + 1 for v in range(graph.n)]
        result = delta_plus_one_coloring(graph, initial_coloring=sparse_ids)
        assert is_proper_coloring(graph, result.colors)
        assert max(result.colors) <= graph.max_degree

    def test_runs_in_set_local(self):
        graph = random_regular(40, 6, seed=4)
        result = delta_plus_one_coloring(graph, visibility=Visibility.SET_LOCAL)
        assert is_proper_coloring(graph, result.colors)
        assert max(result.colors) <= graph.max_degree

    def test_stage_order(self):
        graph = gnp_graph(40, 0.15, seed=5)
        result = delta_plus_one_coloring(graph)
        names = [stage.name for stage, _ in result.stage_results]
        assert names == ["linial", "additive-group", "standard-reduction"]


class TestSection7Exact:
    def test_exact_palette(self, any_graph):
        result = delta_plus_one_exact_no_reduction(
            any_graph, check_proper_each_round=True
        )
        assert_proper(any_graph, result.colors, "Section 7 exact")
        assert max(result.colors, default=0) <= any_graph.max_degree

    def test_stage_order(self):
        graph = gnp_graph(40, 0.15, seed=6)
        result = delta_plus_one_exact_no_reduction(graph)
        names = [stage.name for stage, _ in result.stage_results]
        assert names == ["linial", "additive-group", "exact-hybrid"]

    def test_round_bound(self):
        for delta, n, seed in [(4, 120, 7), (10, 88, 8)]:
            graph = random_regular(n, delta, seed=seed)
            result = delta_plus_one_exact_no_reduction(graph)
            assert result.total_rounds <= 12 * delta + log_star(n) + 16


class TestTheorem64Shape:
    @pytest.mark.parametrize(
        "graph",
        [
            random_regular(72, 12, seed=1),
            gnp_graph(60, 0.2, seed=2),
            grid_graph(7, 8),
            random_tree(50, seed=3),
        ],
        ids=["regular", "gnp", "grid", "tree"],
    )
    def test_proper_o_delta_palette(self, graph):
        result = one_plus_eps_delta_coloring(graph)
        assert is_proper_coloring(graph, result.colors)
        delta = graph.max_degree
        # O(Delta) palette with a moderate construction constant.
        assert result.palette_size <= max(40, 16 * (delta + 1))

    def test_ag_side_rounds_scale_sublinearly(self):
        """The Delta-dependent work is O(sqrt(Delta))-shaped, not O(Delta)."""
        small = random_regular(80, 4, seed=4)
        large = random_regular(80, 36, seed=5)
        rs = one_plus_eps_delta_coloring(small)
        rl = one_plus_eps_delta_coloring(large)
        ratio = rl.ag_side_rounds / max(1, rs.ag_side_rounds)
        delta_ratio = large.max_degree / small.max_degree  # 9x
        assert ratio < delta_ratio, (rs.stage_rounds, rl.stage_rounds)

    def test_exact_variant_reaches_delta_plus_one(self):
        graph = random_regular(48, 8, seed=6)
        result = sublinear_delta_plus_one_coloring(graph)
        assert is_proper_coloring(graph, result.colors)
        assert max(result.colors) <= graph.max_degree
        assert result.palette_size == graph.max_degree + 1

    def test_explicit_tolerance(self):
        graph = random_regular(48, 12, seed=7)
        result = one_plus_eps_delta_coloring(graph, tolerance=2)
        assert is_proper_coloring(graph, result.colors)

    def test_stage_breakdown_present(self):
        graph = gnp_graph(40, 0.2, seed=8)
        result = sublinear_delta_plus_one_coloring(graph)
        assert set(result.stage_rounds) == {
            "defective-linial",
            "arb-ag",
            "class-completion",
            "standard-reduction",
        }


class TestDegenerateGraphs:
    def test_single_vertex(self):
        graph = path_graph(1)
        result = delta_plus_one_coloring(graph)
        assert result.colors == [0]

    def test_single_edge(self):
        graph = path_graph(2)
        result = delta_plus_one_coloring(graph)
        assert sorted(result.colors) == [0, 1]

    def test_no_edges(self):
        from repro.runtime.graph import StaticGraph

        graph = StaticGraph(5, [])
        result = delta_plus_one_coloring(graph)
        assert result.colors == [0, 0, 0, 0, 0]

    def test_star_and_clique_extremes(self):
        for graph in (star_graph(25), complete_graph(10), barbell_of_cliques(5, 4)):
            result = delta_plus_one_exact_no_reduction(graph)
            assert is_proper_coloring(graph, result.colors)
            assert max(result.colors) <= graph.max_degree


class TestPropertyBased:
    @given(st.integers(min_value=0, max_value=10 ** 6))
    @settings(max_examples=25, deadline=None)
    def test_both_exact_pipelines_agree_on_guarantees(self, seed):
        rng = random.Random(seed)
        n = rng.randint(2, 40)
        graph = gnp_graph(n, rng.uniform(0, 0.3), seed=seed)
        for runner in (delta_plus_one_coloring, delta_plus_one_exact_no_reduction):
            result = runner(graph)
            assert is_proper_coloring(graph, result.colors)
            assert max(result.colors, default=0) <= graph.max_degree

    @given(st.integers(min_value=0, max_value=10 ** 6))
    @settings(max_examples=15, deadline=None)
    def test_sublinear_pipeline_random(self, seed):
        rng = random.Random(seed)
        n = rng.randint(4, 36)
        graph = gnp_graph(n, rng.uniform(0.05, 0.35), seed=seed)
        result = sublinear_delta_plus_one_coloring(graph)
        assert is_proper_coloring(graph, result.colors)
        assert max(result.colors, default=0) <= graph.max_degree
