"""Symmetry and model-separation properties of the engine and algorithms.

* **Isomorphism equivariance**: the AG family's rules depend only on colors,
  so relabeling the vertices (and permuting the initial coloring with them)
  must permute the output — the engine introduces no hidden vertex-order
  dependence.
* **Model separation**: a stage that genuinely uses multiplicities gives
  different answers under LOCAL and SET-LOCAL — demonstrating the SET-LOCAL
  enforcement is real, not cosmetic.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import AdditiveGroupColoring, ThreeDimensionalAG
from repro.graphgen import gnp_graph
from repro.runtime import ColoringEngine, LocallyIterativeColoring, Visibility
from repro.runtime.graph import StaticGraph


def permuted_graph(graph, perm):
    """Relabel vertices by ``perm`` (a list: old -> new)."""
    edges = [(perm[u], perm[v]) for u, v in graph.edges]
    return StaticGraph(graph.n, edges)


class TestIsomorphismEquivariance:
    @given(st.integers(min_value=0, max_value=10 ** 6))
    @settings(max_examples=25, deadline=None)
    def test_ag_equivariant_under_relabeling(self, seed):
        rng = random.Random(seed)
        n = rng.randint(2, 30)
        graph = gnp_graph(n, rng.uniform(0.1, 0.35), seed=seed)
        perm = list(range(n))
        rng.shuffle(perm)
        twin = permuted_graph(graph, perm)

        initial = [rng.randrange(n * n) for _ in range(n)]
        # Make it injective to be a valid coloring.
        initial = rng.sample(range(n * n), n)
        twin_initial = [0] * n
        for v in range(n):
            twin_initial[perm[v]] = initial[v]

        a = ColoringEngine(graph).run(
            AdditiveGroupColoring(), initial, in_palette_size=n * n
        )
        b = ColoringEngine(twin).run(
            AdditiveGroupColoring(), twin_initial, in_palette_size=n * n
        )
        for v in range(n):
            assert a.int_colors[v] == b.int_colors[perm[v]]

    @given(st.integers(min_value=0, max_value=10 ** 6))
    @settings(max_examples=15, deadline=None)
    def test_3ag_equivariant_under_relabeling(self, seed):
        rng = random.Random(seed)
        n = rng.randint(2, 24)
        graph = gnp_graph(n, rng.uniform(0.1, 0.3), seed=seed)
        perm = list(range(n))
        rng.shuffle(perm)
        twin = permuted_graph(graph, perm)
        initial = list(range(n))
        twin_initial = [0] * n
        for v in range(n):
            twin_initial[perm[v]] = initial[v]
        a = ColoringEngine(graph).run(ThreeDimensionalAG(), initial)
        b = ColoringEngine(twin).run(ThreeDimensionalAG(), twin_initial)
        for v in range(n):
            assert a.int_colors[v] == b.int_colors[perm[v]]


class MultiplicityCounter(LocallyIterativeColoring):
    """A deliberately non-SET-LOCAL stage: next color = count of neighbors
    sharing the majority color."""

    name = "multiplicity-counter"
    maintains_proper = False

    @property
    def out_palette_size(self):
        return self.info.n + 1

    @property
    def rounds_bound(self):
        return 1

    def step(self, round_index, color, neighbor_colors):
        values = list(neighbor_colors)
        if not values:
            return 0
        return max(values.count(v) for v in set(values))


class TestModelSeparation:
    def test_multiplicity_stage_differs_between_models(self):
        # A star: all leaves share color 1 — multiplicities matter.
        from repro.graphgen import star_graph

        graph = star_graph(6)
        initial = [0, 1, 1, 1, 1, 1]
        local = ColoringEngine(graph, visibility=Visibility.LOCAL).run(
            MultiplicityCounter(), initial
        )
        setlocal = ColoringEngine(graph, visibility=Visibility.SET_LOCAL).run(
            MultiplicityCounter(), initial
        )
        # Center sees five 1s in LOCAL but a single {1} in SET-LOCAL.
        assert local.int_colors[0] == 5
        assert setlocal.int_colors[0] == 1
        assert local.int_colors != setlocal.int_colors

    def test_ag_family_does_not_differ(self):
        graph = gnp_graph(30, 0.2, seed=9)
        initial = list(range(graph.n))
        for stage_factory in (AdditiveGroupColoring, ThreeDimensionalAG):
            local = ColoringEngine(graph, visibility=Visibility.LOCAL).run(
                stage_factory(), initial
            )
            setlocal = ColoringEngine(graph, visibility=Visibility.SET_LOCAL).run(
                stage_factory(), initial
            )
            assert local.int_colors == setlocal.int_colors
