"""Tests for the standard color reduction and the Kuhn–Wattenhofer baseline."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import is_proper_coloring
from repro.baselines import KuhnWattenhoferReduction, greedy_coloring
from repro.core.reductions import StandardColorReduction
from repro.graphgen import (
    complete_graph,
    cycle_graph,
    gnp_graph,
    path_graph,
    random_regular,
)
from repro.runtime import ColoringEngine, Visibility
from tests.conftest import assert_proper, id_coloring


class TestStandardReduction:
    @pytest.mark.parametrize(
        "graph",
        [path_graph(12), cycle_graph(13), complete_graph(7), gnp_graph(40, 0.1, seed=1)],
        ids=["path", "cycle", "clique", "gnp"],
    )
    def test_reaches_delta_plus_one(self, graph):
        engine = ColoringEngine(graph, check_proper_each_round=True)
        stage = StandardColorReduction()
        result = engine.run(stage, id_coloring(graph))
        assert_proper(graph, result.int_colors)
        assert max(result.int_colors) <= graph.max_degree
        assert result.rounds_used <= graph.n - graph.max_degree - 1 + 1

    def test_rounds_bound_is_m_minus_target(self):
        graph = path_graph(10)
        stage = StandardColorReduction()
        ColoringEngine(graph).run(stage, id_coloring(graph))
        assert stage.rounds_bound == 10 - 3

    def test_custom_target(self):
        graph = path_graph(10)
        stage = StandardColorReduction(target_palette=5)
        result = ColoringEngine(graph).run(stage, id_coloring(graph))
        assert max(result.int_colors) < 5
        assert is_proper_coloring(graph, result.int_colors)

    def test_target_below_delta_plus_one_rejected(self):
        graph = complete_graph(5)
        stage = StandardColorReduction(target_palette=3)
        with pytest.raises(ValueError):
            ColoringEngine(graph).run(stage, id_coloring(graph))

    def test_noop_when_already_small(self):
        graph = complete_graph(5)  # Delta + 1 = 5 = n
        stage = StandardColorReduction()
        result = ColoringEngine(graph).run(stage, id_coloring(graph))
        assert result.rounds_used == 0
        assert result.int_colors == id_coloring(graph)

    def test_works_in_set_local(self):
        graph = gnp_graph(30, 0.15, seed=2)
        a = ColoringEngine(graph, visibility=Visibility.LOCAL).run(
            StandardColorReduction(), id_coloring(graph)
        )
        b = ColoringEngine(graph, visibility=Visibility.SET_LOCAL).run(
            StandardColorReduction(), id_coloring(graph)
        )
        assert a.int_colors == b.int_colors


class TestKuhnWattenhofer:
    @pytest.mark.parametrize(
        "graph",
        [
            path_graph(30),
            cycle_graph(31),
            complete_graph(8),
            gnp_graph(50, 0.12, seed=3),
            random_regular(40, 6, seed=4),
        ],
        ids=["path", "cycle", "clique", "gnp", "regular"],
    )
    def test_reaches_delta_plus_one(self, graph):
        engine = ColoringEngine(graph, check_proper_each_round=True)
        stage = KuhnWattenhoferReduction()
        result = engine.run(stage, id_coloring(graph))
        assert_proper(graph, result.int_colors, "KW output")
        assert max(result.int_colors) <= graph.max_degree

    def test_round_complexity_is_delta_log_ratio(self):
        graph = random_regular(64, 4, seed=5)
        n_colors = graph.max_degree + 1
        stage = KuhnWattenhoferReduction()
        ColoringEngine(graph).run(stage, id_coloring(graph))
        iterations = len(stage.palette_schedule) - 1
        # Each iteration halves (roughly): expect Theta(log(m / N)) iterations.
        import math

        expected = math.ceil(math.log2(graph.n / n_colors)) + 2
        assert iterations <= expected
        assert stage.rounds_bound == iterations * n_colors

    def test_palette_schedule_monotone(self):
        graph = gnp_graph(60, 0.1, seed=6)
        stage = KuhnWattenhoferReduction()
        ColoringEngine(graph).run(stage, id_coloring(graph))
        schedule = stage.palette_schedule
        assert all(a > b for a, b in zip(schedule, schedule[1:]))
        assert schedule[-1] == graph.max_degree + 1

    def test_works_in_set_local(self):
        graph = gnp_graph(35, 0.15, seed=7)
        a = ColoringEngine(graph, visibility=Visibility.LOCAL).run(
            KuhnWattenhoferReduction(), id_coloring(graph)
        )
        b = ColoringEngine(graph, visibility=Visibility.SET_LOCAL).run(
            KuhnWattenhoferReduction(), id_coloring(graph)
        )
        assert a.int_colors == b.int_colors

    @given(st.integers(min_value=0, max_value=10 ** 6))
    @settings(max_examples=25, deadline=None)
    def test_random_graphs(self, seed):
        rng = random.Random(seed)
        n = rng.randint(2, 40)
        graph = gnp_graph(n, rng.uniform(0, 0.3), seed=seed)
        engine = ColoringEngine(graph, check_proper_each_round=True)
        result = engine.run(KuhnWattenhoferReduction(), id_coloring(graph))
        assert is_proper_coloring(graph, result.int_colors)
        assert max(result.int_colors) <= graph.max_degree


class TestGreedyOracle:
    def test_greedy_within_delta_plus_one(self, any_graph):
        colors = greedy_coloring(any_graph)
        assert is_proper_coloring(any_graph, colors)
        assert max(colors, default=0) <= any_graph.max_degree

    def test_greedy_respects_order(self):
        graph = path_graph(3)
        assert greedy_coloring(graph, order=[0, 1, 2]) == [0, 1, 0]
        assert greedy_coloring(graph, order=[1, 0, 2]) == [1, 0, 1]
