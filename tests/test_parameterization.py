"""Parameter relationships across the whole Delta spectrum.

Every stage derives field sizes and round bounds from ``(n, Delta, palette)``;
these properties pin the derivations for all Delta up to 200 — the regime
where off-by-one constants (prime floors, capacity margins) would hide.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.ag import AdditiveGroupColoring, ag_prime_for
from repro.core.ag3 import ThreeDimensionalAG, ag3_prime_for
from repro.core.agn import AdditiveGroupZN
from repro.core.arbdefective import ArbAGColoring
from repro.core.hybrid import ExactDeltaPlusOneHybrid, largest_prime_at_most
from repro.mathutil.primes import is_prime
from repro.runtime.algorithm import NetworkInfo
from repro.selfstab.coloring import SelfStabColoring
from repro.selfstab.exact import SelfStabExactColoring


class TestStageParameters:
    @given(st.integers(min_value=0, max_value=200))
    @settings(max_examples=80, deadline=None)
    def test_ag_modulus_relations(self, delta):
        k = max(2, (2 * delta + 1) ** 2)
        q = ag_prime_for(k, delta)
        assert is_prime(q)
        assert q * q >= k
        assert q >= 2 * delta + 1
        assert q <= 2 * (2 * delta + 1) + 20  # Bertrand-ish upper bound

    @given(st.integers(min_value=0, max_value=150))
    @settings(max_examples=60, deadline=None)
    def test_3ag_modulus_relations(self, delta):
        k = max(2, (3 * delta + 1) ** 3)
        p = ag3_prime_for(k, delta)
        assert is_prime(p)
        assert p ** 3 >= k
        assert p >= 3 * delta + 1

    @given(st.integers(min_value=0, max_value=200))
    @settings(max_examples=80, deadline=None)
    def test_hybrid_capacity_and_prime(self, delta):
        stage = ExactDeltaPlusOneHybrid()
        stage.configure(NetworkInfo(10 ** 4, delta, 2 * (delta + 1)))
        n = delta + 1
        assert stage.n_colors == n
        if delta > 0:
            assert stage.p > n  # Bertrand: a prime in (N, 2N]
            assert stage.p <= 2 * n
        assert stage.rounds_bound >= n
        # Capacity covers at least the (1+eps)Delta inputs the paper feeds it.
        assert 2 * n + stage.p * (stage.p - 1) >= 2 * n

    @given(
        st.integers(min_value=1, max_value=200),
        st.integers(min_value=1, max_value=200),
    )
    @settings(max_examples=80, deadline=None)
    def test_arbag_window_and_palette(self, delta, tolerance):
        stage = ArbAGColoring(tolerance)
        r = -(-delta // tolerance)
        stage.configure(NetworkInfo(10 ** 4, delta, max(2, (2 * r + 2) ** 2)))
        assert stage.rounds_bound == 2 * r + 1
        assert stage.q >= stage.rounds_bound + 1  # the q-window covers the run
        assert stage.q <= 4 * r + 40  # O(Delta / p)

    @given(st.integers(min_value=0, max_value=120))
    @settings(max_examples=40, deadline=None)
    def test_agn_modulus_is_exactly_n(self, delta):
        stage = AdditiveGroupZN()
        stage.configure(NetworkInfo(10 ** 3, delta, 2 * (delta + 1)))
        assert stage.modulus == delta + 1
        assert stage.out_palette_size == delta + 1
        assert stage.rounds_bound == delta + 1


class TestSelfStabParameters:
    @given(
        st.integers(min_value=2, max_value=500),
        st.integers(min_value=1, max_value=40),
    )
    @settings(max_examples=50, deadline=None)
    def test_plain_plan_consistency(self, n_bound, delta):
        algorithm = SelfStabColoring(n_bound, delta)
        plan = algorithm.plan
        assert plan.core_size == algorithm.q ** 2
        assert algorithm.q >= 4 * delta + 1  # landing needs 4*Delta+1 points
        assert algorithm.q >= 2 * delta + 1  # the AG window
        assert plan.total_size >= n_bound  # the ID interval fits everyone
        # The reset color of every vertex is valid and at the top level.
        for vertex in (0, n_bound - 1):
            assert plan.level_of(plan.reset_color(vertex)) == plan.levels - 1

    @given(
        st.integers(min_value=2, max_value=300),
        st.integers(min_value=1, max_value=30),
    )
    @settings(max_examples=40, deadline=None)
    def test_exact_plan_consistency(self, n_bound, delta):
        algorithm = SelfStabExactColoring(n_bound, delta)
        assert algorithm.n_colors == delta + 1
        assert algorithm.p >= 4 * delta + 3
        assert is_prime(algorithm.p)
        assert algorithm.plan.core_size == 2 * (delta + 1) + (
            algorithm.p - 1
        ) * algorithm.p
        assert algorithm.plan.landing_points == algorithm.p - 1


class TestPrimeHelpers:
    @given(st.integers(min_value=2, max_value=5000))
    @settings(max_examples=80, deadline=None)
    def test_largest_prime_at_most_is_maximal(self, n):
        p = largest_prime_at_most(n)
        assert is_prime(p)
        assert p <= n
        assert not any(is_prime(x) for x in range(p + 1, n + 1))
