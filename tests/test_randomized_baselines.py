"""Tests for the randomized baselines and the determinism demonstration."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import is_maximal_independent_set, is_proper_coloring
from repro.baselines import (
    RandomTrialSelfStabColoring,
    luby_mis,
    random_trial_coloring,
)
from repro.graphgen import complete_graph, cycle_graph, gnp_graph, random_regular
from repro.selfstab import SelfStabEngine, SelfStabExactColoring
from tests.test_selfstab_coloring import build_dynamic, dynamic_path


class TestLubyMIS:
    @pytest.mark.parametrize(
        "graph",
        [cycle_graph(25), complete_graph(9), gnp_graph(50, 0.15, seed=1)],
        ids=["cycle", "clique", "gnp"],
    )
    def test_valid_mis(self, graph):
        members, rounds = luby_mis(graph, seed=2)
        assert is_maximal_independent_set(graph, members)

    def test_logarithmic_rounds(self):
        graph = gnp_graph(200, 0.05, seed=3)
        _, rounds = luby_mis(graph, seed=4)
        assert rounds <= 4 * max(1, graph.n).bit_length()

    def test_deterministic_under_seed(self):
        graph = gnp_graph(40, 0.2, seed=5)
        assert luby_mis(graph, seed=6) == luby_mis(graph, seed=6)

    @given(st.integers(min_value=0, max_value=10 ** 6))
    @settings(max_examples=20, deadline=None)
    def test_random_graphs(self, seed):
        rng = random.Random(seed)
        graph = gnp_graph(rng.randint(1, 40), rng.uniform(0, 0.3), seed=seed)
        members, _ = luby_mis(graph, seed=seed)
        assert is_maximal_independent_set(graph, members)


class TestRandomTrialColoring:
    @pytest.mark.parametrize(
        "graph",
        [cycle_graph(25), complete_graph(8), random_regular(40, 6, seed=7)],
        ids=["cycle", "clique", "regular"],
    )
    def test_proper_delta_plus_one(self, graph):
        colors, rounds = random_trial_coloring(graph, seed=8)
        assert is_proper_coloring(graph, colors)
        assert max(colors) <= graph.max_degree

    def test_non_convergence_raises(self):
        graph = complete_graph(6)
        with pytest.raises(RuntimeError):
            random_trial_coloring(graph, seed=9, max_rounds=0 or 1, palette=6)


class TestDeterminismMatters:
    """Section 1.2.1: 'this prevents the possibility that adversarial faults
    will manipulate random bits of the algorithm' — executable."""

    @staticmethod
    def _k2():
        from repro.runtime.graph import DynamicGraph

        g = DynamicGraph(2, 1)
        g.add_vertex(0)
        g.add_vertex(1)
        g.add_edge(0, 1)
        return g

    def test_cloned_rng_state_deadlocks_randomized_coloring(self):
        g = self._k2()
        algorithm = RandomTrialSelfStabColoring(2, 1)
        engine = SelfStabEngine(g, algorithm)
        engine.run_to_quiescence(max_rounds=200)
        # One fault: clone vertex 1's whole RAM (color + RNG state) onto 0.
        engine.corrupt(0, engine.rams[1])
        # No further faults — yet the pair flips identical coins forever.
        for _ in range(300):
            engine.step()
            assert engine.rams[0] == engine.rams[1]  # perfect symmetry
        assert not engine.is_legal()

    def test_same_fault_is_harmless_to_the_paper_algorithm(self):
        g = self._k2()
        algorithm = SelfStabExactColoring(2, 1)
        engine = SelfStabEngine(g, algorithm)
        engine.run_to_quiescence()
        engine.corrupt(0, engine.rams[1])
        rounds = engine.run_to_quiescence()
        assert engine.is_legal()
        assert rounds <= algorithm.stabilization_bound()

    def test_randomized_variant_does_converge_without_symmetry(self):
        """Fairness check: from asymmetric states the randomized algorithm
        stabilizes fine — the vulnerability is specifically the clone."""
        g = build_dynamic(20, 4, 0.2, seed=10)
        algorithm = RandomTrialSelfStabColoring(20, 4)
        engine = SelfStabEngine(g, algorithm)
        engine.run_to_quiescence(max_rounds=400)
        assert engine.is_legal()
