"""Cross-validation against networkx as an independent oracle."""

import random

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import delta_plus_one_coloring, graphgen
from repro.analysis.invariants import _degeneracy, class_degeneracy
from repro.edge import build_line_graph, edge_coloring_congest
from repro.runtime.graph import StaticGraph


def to_networkx(graph):
    nx_graph = nx.Graph()
    nx_graph.add_nodes_from(graph.vertices())
    nx_graph.add_edges_from(graph.edges)
    return nx_graph


class TestLineGraphAgainstNetworkx:
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_line_graph_isomorphic_structure(self, seed):
        graph = graphgen.gnp_graph(20, 0.25, seed=seed)
        ours, edge_index = build_line_graph(graph)
        theirs = nx.line_graph(to_networkx(graph))
        assert ours.n == theirs.number_of_nodes()
        assert ours.m == theirs.number_of_edges()
        # Exact adjacency match under the edge_index mapping.
        for e1, e2 in theirs.edges():
            a = edge_index[tuple(sorted(e1))]
            b = edge_index[tuple(sorted(e2))]
            assert ours.has_edge(a, b)


class TestDegeneracyAgainstNetworkx:
    @given(st.integers(min_value=0, max_value=10 ** 6))
    @settings(max_examples=25, deadline=None)
    def test_degeneracy_equals_max_core_number(self, seed):
        rng = random.Random(seed)
        n = rng.randint(2, 30)
        graph = graphgen.gnp_graph(n, rng.uniform(0.05, 0.4), seed=seed)
        adjacency = {v: set(graph.neighbors(v)) for v in graph.vertices()}
        ours = _degeneracy(graph.n, adjacency)
        nx_graph = to_networkx(graph)
        theirs = max(nx.core_number(nx_graph).values()) if graph.n else 0
        assert ours == theirs

    def test_class_degeneracy_on_known_graph(self):
        graph = StaticGraph(7, [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (5, 3), (3, 6)])
        per_class = class_degeneracy(graph, [0, 0, 0, 1, 1, 1, 1])
        assert per_class == {0: 2, 1: 2}


class TestColoringAgainstNetworkxValidation:
    @given(st.integers(min_value=0, max_value=10 ** 6))
    @settings(max_examples=15, deadline=None)
    def test_pipeline_output_passes_networkx_check(self, seed):
        rng = random.Random(seed)
        n = rng.randint(2, 30)
        graph = graphgen.gnp_graph(n, rng.uniform(0.05, 0.3), seed=seed)
        result = delta_plus_one_coloring(graph)
        nx_graph = to_networkx(graph)
        coloring = {v: result.colors[v] for v in graph.vertices()}
        # networkx's notion of a valid coloring: no edge endpoints share.
        assert all(coloring[u] != coloring[v] for u, v in nx_graph.edges())
        # And never worse than networkx's own greedy heuristic bound + slack.
        nx_colors = nx.coloring.greedy_color(nx_graph, strategy="largest_first")
        assert max(coloring.values(), default=0) <= graph.max_degree
        assert max(nx_colors.values(), default=0) <= graph.max_degree

    def test_edge_coloring_is_proper_line_graph_coloring(self):
        graph = graphgen.random_regular(24, 5, seed=9)
        result = edge_coloring_congest(graph)
        nx_line = nx.line_graph(to_networkx(graph))
        colors = {tuple(sorted(e)): c for e, c in result.edge_colors.items()}
        for e1, e2 in nx_line.edges():
            assert colors[tuple(sorted(e1))] != colors[tuple(sorted(e2))]


class TestDoctests:
    def test_module_doctests(self):
        import doctest

        import repro.linial.plan
        import repro.mathutil.gf
        import repro.mathutil.logstar
        import repro.mathutil.primes

        for module in (
            repro.mathutil.logstar,
            repro.mathutil.primes,
            repro.mathutil.gf,
            repro.linial.plan,
        ):
            failures, tried = doctest.testmod(module).failed, doctest.testmod(module).attempted
            assert tried > 0
            assert failures == 0, module.__name__
