"""Unit tests for the line-graph mirror (repro.selfstab.line)."""

import pytest

from repro.runtime.graph import DynamicGraph
from repro.selfstab import SelfStabEngine, SelfStabMaximalMatching
from repro.selfstab.line import LineGraphMirror
from repro.selfstab.mis import SelfStabMIS


def triangle_base():
    g = DynamicGraph(5, 3)
    for v in range(3):
        g.add_vertex(v)
    g.add_edge(0, 1)
    g.add_edge(1, 2)
    g.add_edge(0, 2)
    return g


class TestSlots:
    def test_slot_is_order_independent(self):
        base = triangle_base()
        mirror = LineGraphMirror(base)
        assert mirror.slot(0, 1) == mirror.slot(1, 0)

    def test_slot_edge_roundtrip(self):
        base = triangle_base()
        mirror = LineGraphMirror(base)
        for u, v in base.edges():
            assert mirror.edge_of(mirror.slot(u, v)) == (u, v)

    def test_slots_are_unique(self):
        base = triangle_base()
        mirror = LineGraphMirror(base)
        slots = [mirror.slot(u, v) for u, v in base.edges()]
        assert len(slots) == len(set(slots))


class TestDesiredState:
    def test_triangle_line_graph_is_triangle(self):
        base = triangle_base()
        mirror = LineGraphMirror(base)
        vertices, edges = mirror.desired_state()
        assert len(vertices) == 3
        assert len(edges) == 3  # K3's line graph is K3

    def test_path_line_graph_is_path(self):
        base = DynamicGraph(4, 2)
        for v in range(4):
            base.add_vertex(v)
        base.add_edge(0, 1)
        base.add_edge(1, 2)
        base.add_edge(2, 3)
        mirror = LineGraphMirror(base)
        vertices, edges = mirror.desired_state()
        assert len(vertices) == 3
        assert len(edges) == 2

    def test_degree_bound_of_mirror(self):
        base = DynamicGraph(10, 4)
        mirror = LineGraphMirror(base)
        assert mirror.delta_bound == 2 * (4 - 1)


class TestSync:
    def test_sync_adds_and_removes(self):
        base = triangle_base()
        algorithm = SelfStabMIS(LineGraphMirror(base).n_bound, 4)
        mirror = LineGraphMirror(base)
        engine = SelfStabEngine(mirror.line, algorithm)
        affected = mirror.sync(engine)
        assert len(affected) == 3  # three virtual vertices appeared
        assert mirror.line.n == 3

        base.remove_edge(0, 1)
        affected = mirror.sync(engine)
        assert mirror.slot(0, 1) in affected
        assert mirror.line.n == 2
        # The crashed virtual vertex's RAM is gone.
        assert mirror.slot(0, 1) not in engine.rams

    def test_sync_is_idempotent(self):
        base = triangle_base()
        mm = SelfStabMaximalMatching(base)
        before = dict(mm.engine.rams)
        assert mm.sync_topology() == set() or mm.sync_topology() == set()
        assert mm.engine.rams == before

    def test_vertex_crash_cascades_to_mirror(self):
        base = triangle_base()
        mm = SelfStabMaximalMatching(base)
        mm.run_to_quiescence()
        base.remove_vertex(0)  # kills edges (0,1) and (0,2)
        mm.sync_topology()
        assert mm.mirror.line.n == 1
        mm.run_to_quiescence()
        assert mm.is_legal()
        assert mm.matching() == [(1, 2)]
