"""The optional Numba kernel backend: raw-kernel parity and fallback order.

The raw kernels in :mod:`repro.runtime.native` are plain-Python loop
functions, so their logic is verifiable on machines without Numba — the
differential classes here run each raw kernel against the corresponding
``step_batch`` / ``transition_batch_colors`` array kernel round by round
and require bit-identity.  The remaining classes pin the fallback order
``numba -> batch -> reference``: engine construction through the registry,
the env knobs, and graceful degradation when Numba is absent.
"""

import pytest

from repro import graphgen
from repro.core import AdditiveGroupColoring, AdditiveGroupZN, ThreeDimensionalAG
from repro.runtime import BatchColoringEngine, ColoringEngine, Visibility
from repro.runtime.algorithm import NetworkInfo
from repro.runtime.backends import backend_names, resolve_backend
from repro.runtime.csr import numpy_available, numpy_or_none
from repro.runtime.native import (
    ag3_round,
    ag_round,
    agn_round,
    engine_kernel_for,
    jit,
    native_available,
    native_default,
    selfstab_core_round,
    selfstab_kernel_for,
)


def _skip_without_numpy():
    if not numpy_available():
        pytest.skip("NumPy unavailable (or disabled via REPRO_DISABLE_NUMPY)")


def _configured(stage_cls, graph, palette):
    stage = stage_cls()
    stage.configure(NetworkInfo(graph.n, graph.max_degree, palette))
    return stage


class TestRawKernelParity:
    """Each raw loop kernel mirrors its stage's step_batch bit for bit."""

    def test_ag_round_matches_step_batch(self):
        _skip_without_numpy()
        np = numpy_or_none()
        graph = graphgen.random_regular(60, 6, seed=5)
        stage = _configured(AdditiveGroupColoring, graph, graph.n)
        csr = graph.csr()
        state = stage.batch_encode_initial(np.arange(graph.n, dtype=np.int64))
        for round_index in range(6):
            expected = stage.step_batch(round_index, state, csr, Visibility.LOCAL)
            a, b = state
            new_a, new_b = np.empty_like(a), np.empty_like(b)
            ag_round(csr.indptr, csr.indices, a, b, stage.q, new_a, new_b)
            assert new_a.tolist() == expected[0].tolist()
            assert new_b.tolist() == expected[1].tolist()
            state = expected

    def test_ag3_round_matches_step_batch(self):
        _skip_without_numpy()
        np = numpy_or_none()
        graph = graphgen.gnp_graph(50, 0.15, seed=6)
        stage = _configured(ThreeDimensionalAG, graph, graph.n)
        csr = graph.csr()
        state = stage.batch_encode_initial(np.arange(graph.n, dtype=np.int64))
        for round_index in range(8):
            expected = stage.step_batch(round_index, state, csr, Visibility.LOCAL)
            c, b, a = state
            new = tuple(np.empty_like(x) for x in state)
            ag3_round(csr.indptr, csr.indices, c, b, a, stage.p, *new)
            for got, want in zip(new, expected):
                assert got.tolist() == want.tolist()
            state = expected

    def test_agn_round_matches_step_batch(self):
        _skip_without_numpy()
        np = numpy_or_none()
        graph = graphgen.random_regular(48, 6, seed=7)
        palette = 2 * (graph.max_degree + 1)
        stage = _configured(AdditiveGroupZN, graph, palette)
        csr = graph.csr()
        # Proper greedy coloring with ~half the classes shifted into the
        # working band, as the differential suite's spread initial does.
        colors = [None] * graph.n
        for v in range(graph.n):
            used = {colors[u] for u in graph.neighbors(v) if colors[u] is not None}
            colors[v] = min(c for c in range(graph.max_degree + 1) if c not in used)
        modulus = graph.max_degree + 1
        initial = np.asarray(
            [c + modulus if c % 2 else c for c in colors], dtype=np.int64
        )
        state = stage.batch_encode_initial(initial)
        for round_index in range(8):
            expected = stage.step_batch(round_index, state, csr, Visibility.LOCAL)
            b, a = state
            new_b, new_a = np.empty_like(b), np.empty_like(a)
            agn_round(csr.indptr, csr.indices, b, a, stage.modulus, new_b, new_a)
            assert new_b.tolist() == expected[0].tolist()
            assert new_a.tolist() == expected[1].tolist()
            state = expected

    def test_selfstab_core_round_matches_transition_batch(self):
        _skip_without_numpy()
        import random

        np = numpy_or_none()
        from repro.runtime.csr import CSRAdjacency
        from repro.runtime.graph import DynamicGraph
        from repro.selfstab import SelfStabColoring
        from repro.selfstab.kernels import BatchContext

        n, delta = 40, 6
        graph = DynamicGraph(n, delta)
        rng = random.Random(9)
        for v in range(n):
            graph.add_vertex(v)
        for u in range(n):
            for v in range(u + 1, n):
                if rng.random() < 0.12 and graph.degree(u) < delta and graph.degree(v) < delta:
                    graph.add_edge(u, v)
        algorithm = SelfStabColoring(n, delta)
        csr, verts = CSRAdjacency.from_dynamic(graph)
        ctx = BatchContext(np, csr, verts, False, algorithm, lambda: None)
        q = algorithm.q
        core_top = algorithm.plan.offsets[1]
        reset_base = algorithm.plan.offsets[algorithm.plan.levels - 1]
        colors = np.asarray(
            [rng.randrange(core_top) for _ in range(csr.n)], dtype=np.int64
        )
        checked = 0
        for _ in range(30):
            in_core = bool(((colors >= 0) & (colors < core_top)).all())
            expected = algorithm.transition_batch_colors(colors, ctx)
            if in_core:
                new = np.empty_like(colors)
                selfstab_core_round(
                    csr.indptr, csr.indices, colors, q, reset_base, verts, new
                )
                assert new.tolist() == expected.tolist()
                checked += 1
            colors = expected
        assert checked >= 5, "steady-state rounds never materialized"


class TestFallbackOrder:
    def test_registry_lists_numba_for_both_kinds(self):
        assert "numba" in backend_names("engine")
        assert "numba" in backend_names("selfstab")

    def test_engine_numba_backend_without_numba_matches_batch(self):
        _skip_without_numpy()
        from repro.recipes import delta_plus_one_coloring

        graph = graphgen.random_regular(60, 6, seed=3)
        via_numba = delta_plus_one_coloring(graph, backend="numba")
        via_batch = delta_plus_one_coloring(graph, backend="batch")
        assert via_numba.to_dict() == via_batch.to_dict()

    def test_engine_numba_factory_sets_native_flag(self):
        _skip_without_numpy()
        graph = graphgen.random_regular(20, 4, seed=1)
        engine = resolve_backend("engine", "numba")(graph)
        assert isinstance(engine, BatchColoringEngine)
        assert engine.native is True

    def test_engine_numba_degrades_to_reference_without_numpy(self, monkeypatch):
        monkeypatch.setenv("REPRO_DISABLE_NUMPY", "1")
        graph = graphgen.random_regular(20, 4, seed=1)
        engine = resolve_backend("engine", "numba")(graph)
        assert isinstance(engine, ColoringEngine)
        assert not isinstance(engine, BatchColoringEngine)

    def test_selfstab_numba_factory_sets_native_flag(self):
        _skip_without_numpy()
        import random

        from repro.runtime.graph import DynamicGraph
        from repro.selfstab import BatchSelfStabEngine, SelfStabColoring

        graph = DynamicGraph(10, 4)
        for v in range(10):
            graph.add_vertex(v)
        engine = resolve_backend("selfstab", "numba")(graph, SelfStabColoring(10, 4))
        assert isinstance(engine, BatchSelfStabEngine)
        assert engine.native is True

    def test_native_engine_without_numba_is_bit_identical(self):
        """native=True with no Numba silently runs the ordinary batch rounds."""
        _skip_without_numpy()
        if native_available():
            pytest.skip("covers the no-numba degradation tier")
        np = numpy_or_none()
        graph = graphgen.random_regular(60, 6, seed=3)
        plain = BatchColoringEngine(graph, record_history=True)
        forced = BatchColoringEngine(graph, record_history=True, native=True)
        initial = list(range(graph.n))
        ref = plain.run(AdditiveGroupColoring(), initial, in_palette_size=graph.n)
        nat = forced.run(AdditiveGroupColoring(), initial, in_palette_size=graph.n)
        assert nat.colors == ref.colors
        assert nat.history == ref.history
        assert nat.rounds_used == ref.rounds_used


class TestEnvKnobs:
    def test_native_default_follows_repro_native(self, monkeypatch):
        monkeypatch.delenv("REPRO_NATIVE", raising=False)
        assert native_default() is False
        monkeypatch.setenv("REPRO_NATIVE", "1")
        assert native_default() is True

    def test_disable_env_hides_numba(self, monkeypatch):
        monkeypatch.setenv("REPRO_DISABLE_NUMBA", "1")
        assert native_available() is False
        stage = AdditiveGroupColoring()
        assert engine_kernel_for(stage) is None

    def test_jit_raises_without_numba(self, monkeypatch):
        monkeypatch.setenv("REPRO_DISABLE_NUMBA", "1")
        with pytest.raises(RuntimeError, match="numba is unavailable"):
            jit(ag_round)

    def test_kernel_lookup_covers_only_known_names(self):
        if not native_available():
            pytest.skip("adapter lookup requires Numba")
        assert engine_kernel_for(AdditiveGroupColoring()) is not None
        assert engine_kernel_for(object()) is None


@pytest.mark.skipif(not native_available(), reason="Numba not installed")
class TestCompiledKernels:
    """Only runs on machines with Numba (CI's optional-deps job)."""

    def test_compiled_ag_round_matches_raw(self):
        _skip_without_numpy()
        np = numpy_or_none()
        graph = graphgen.random_regular(40, 4, seed=2)
        stage = _configured(AdditiveGroupColoring, graph, graph.n)
        csr = graph.csr()
        a, b = stage.batch_encode_initial(np.arange(graph.n, dtype=np.int64))
        raw = (np.empty_like(a), np.empty_like(b))
        compiled = (np.empty_like(a), np.empty_like(b))
        ag_round(csr.indptr, csr.indices, a, b, stage.q, *raw)
        jit(ag_round)(csr.indptr, csr.indices, a, b, stage.q, *compiled)
        assert compiled[0].tolist() == raw[0].tolist()
        assert compiled[1].tolist() == raw[1].tolist()

    def test_native_engine_bit_identical_to_batch(self):
        _skip_without_numpy()
        from repro.recipes import delta_plus_one_coloring

        graph = graphgen.random_regular(60, 6, seed=3)
        assert (
            delta_plus_one_coloring(graph, backend="numba").to_dict()
            == delta_plus_one_coloring(graph, backend="batch").to_dict()
        )

    def test_native_selfstab_counts_native_rounds(self):
        _skip_without_numpy()
        from repro import obs
        from repro.runtime.graph import DynamicGraph
        from repro.selfstab import SelfStabColoring

        graph = DynamicGraph(16, 4)
        for v in range(16):
            graph.add_vertex(v)
        for v in range(15):
            graph.add_edge(v, v + 1)
        engine = resolve_backend("selfstab", "numba")(graph, SelfStabColoring(16, 4))
        with obs.capture() as tel:
            engine.run_to_quiescence()
        assert tel.counter_value("selfstab.native_rounds", algorithm="selfstab-coloring") > 0
