"""End-to-end batch pipeline tests: Corollary 3.6 on the vectorized path.

PR 1 established the bit-for-bit contract for the AG family; with the Linial
and standard-reduction kernels the whole headline pipeline (Linial -> AG ->
standard reduction) runs vectorized.  These tests pin down:

* full three-stage parity (``backend="batch"`` vs ``"reference"`` vs
  ``"auto"``) on graphs where Linial performs real iterations, in both
  visibility modes;
* the ndarray hand-off between stages (``RunResult.int_colors_array``) and
  the scalar fallback (``REPRO_DISABLE_NUMPY=1``) yielding identical results;
* exact scalar error messages out of the batch kernels (under-sized field,
  exhausted target palette);
* the uniform-stage fixed-point early exit behaving identically on both
  engines.
"""

import pytest

from repro import graphgen
from repro.core.pipeline import delta_plus_one_coloring
from repro.core.reductions import StandardColorReduction
from repro.linial.core import LinialColoring
from repro.runtime import (
    BatchColoringEngine,
    ColoringEngine,
    ColoringPipeline,
    StaticGraph,
    Visibility,
)
from repro.runtime.algorithm import LocallyIterativeColoring, NetworkInfo
from repro.runtime.csr import numpy_available

requires_numpy = pytest.mark.requires_numpy

BOTH_VISIBILITIES = (Visibility.LOCAL, Visibility.SET_LOCAL)


def _skip_without_numpy():
    if not numpy_available():
        pytest.skip("NumPy unavailable (or disabled via REPRO_DISABLE_NUMPY)")


def linial_heavy_graph():
    """A graph whose palette sits well above the Linial fixpoint.

    ``n >> (2 * Delta + 1)^2`` guarantees the plan contains at least one real
    iteration, so the batch Linial kernel actually executes.
    """
    graph = graphgen.random_regular(1000, 4, seed=7)
    stage = LinialColoring()
    stage.configure(NetworkInfo(graph.n, graph.max_degree, graph.n))
    assert stage.rounds_bound >= 1, "fixture must exercise a real Linial round"
    return graph


@requires_numpy
@pytest.mark.parametrize("visibility", BOTH_VISIBILITIES, ids=lambda v: v.value)
def test_three_stage_pipeline_parity(visibility):
    """Corollary 3.6 end to end: batch == reference == auto, bit for bit."""
    _skip_without_numpy()
    graph = linial_heavy_graph()
    results = {
        backend: delta_plus_one_coloring(
            graph, visibility=visibility, check_proper_each_round=True,
            backend=backend,
        )
        for backend in ("reference", "batch", "auto")
    }
    reference = results["reference"]
    assert reference.num_colors <= graph.max_degree + 1
    for backend in ("batch", "auto"):
        result = results[backend]
        assert result.colors == reference.colors
        assert result.total_rounds == reference.total_rounds
        assert result.rounds_by_stage() == reference.rounds_by_stage()
        assert result.to_dict() == reference.to_dict()


@requires_numpy
def test_pipeline_threads_ndarray_between_stages():
    """Batch stage outputs stay ndarrays across stage boundaries."""
    _skip_without_numpy()
    import numpy as np

    graph = linial_heavy_graph()
    result = delta_plus_one_coloring(graph, backend="batch")
    for _, stage_result in result.stage_results:
        assert isinstance(stage_result.int_colors_array, np.ndarray)
        assert stage_result.int_colors_array.tolist() == stage_result.int_colors
    # The public result stays a plain list regardless of the backend.
    assert isinstance(result.colors, list)
    assert all(isinstance(c, int) for c in result.colors)


def test_reference_engine_leaves_array_field_unset():
    graph = graphgen.cycle_graph(8)
    result = ColoringEngine(graph).run(
        StandardColorReduction(), [v % 4 for v in range(8)], in_palette_size=4
    )
    assert result.int_colors_array is None


def test_pipeline_accepts_list_tuple_and_array_inputs():
    graph = graphgen.cycle_graph(9)
    initial = [v % 3 for v in range(9)]
    pipeline = ColoringPipeline([StandardColorReduction])
    from_list = pipeline.run(graph, initial, in_palette_size=3)
    from_tuple = pipeline.run(graph, tuple(initial), in_palette_size=3)
    assert from_list.colors == from_tuple.colors
    assert initial == [v % 3 for v in range(9)], "input list must not be mutated"
    if numpy_available():
        import numpy as np

        from_array = pipeline.run(
            graph, np.asarray(initial, dtype=np.int64), in_palette_size=3
        )
        assert from_array.colors == from_list.colors


def test_pipeline_skips_palette_scan_when_size_given():
    """An explicit in_palette_size is used verbatim (no max() rescan)."""
    graph = graphgen.path_graph(5)
    stage = StandardColorReduction()
    pipeline = ColoringPipeline([stage])
    pipeline.run(graph, [v % 2 for v in range(5)], in_palette_size=7)
    assert stage.info.in_palette_size == 7
    assert stage.start_palette == 7


def test_pipeline_fallback_matches_reference_without_numpy(monkeypatch):
    """REPRO_DISABLE_NUMPY=1: auto degrades to the scalar path, same output."""
    monkeypatch.setenv("REPRO_DISABLE_NUMPY", "1")
    graph = graphgen.random_regular(200, 4, seed=11)
    disabled = delta_plus_one_coloring(graph, backend="auto")
    monkeypatch.delenv("REPRO_DISABLE_NUMPY")
    reference = delta_plus_one_coloring(graph, backend="reference")
    assert disabled.colors == reference.colors
    assert disabled.to_dict() == reference.to_dict()


# -- exact scalar errors out of the batch kernels --------------------------------


@requires_numpy
def test_linial_batch_out_of_field_error_matches():
    """An input color too large for GF(q)^(d+1) raises the scalar message."""
    _skip_without_numpy()
    graph = graphgen.random_regular(1000, 4, seed=7)
    bad = list(range(graph.n))
    bad[7] = 10 ** 9
    messages = []
    for engine_cls in (ColoringEngine, BatchColoringEngine):
        with pytest.raises(ValueError) as excinfo:
            engine_cls(graph).run(LinialColoring(), bad, in_palette_size=graph.n)
        messages.append(str(excinfo.value))
    assert messages[0] == messages[1]
    assert "does not fit" in messages[0]


@requires_numpy
def test_linial_batch_no_free_point_error_matches():
    """An under-sized field (lying NetworkInfo) raises the scalar message."""
    _skip_without_numpy()
    graph = graphgen.complete_graph(30)
    messages = []
    for engine_cls in (ColoringEngine, BatchColoringEngine):
        stage = LinialColoring()
        stage.configure(NetworkInfo(graph.n, 3, 900))
        with pytest.raises(ValueError) as excinfo:
            engine_cls(graph).run(
                stage, list(range(graph.n)), in_palette_size=900, configure=False
            )
        messages.append(str(excinfo.value))
    assert messages[0] == messages[1]
    assert "no conflict-free point" in messages[0]


@requires_numpy
def test_reduction_batch_exhausted_palette_error_matches():
    """A target palette below the true degree raises the scalar message."""
    _skip_without_numpy()
    graph = graphgen.complete_graph(30)
    messages = []
    for engine_cls in (ColoringEngine, BatchColoringEngine):
        stage = StandardColorReduction()
        stage.configure(NetworkInfo(graph.n, 3, graph.n))
        with pytest.raises(AssertionError) as excinfo:
            engine_cls(graph).run(
                stage, list(range(graph.n)), in_palette_size=graph.n,
                configure=False,
            )
        messages.append(str(excinfo.value))
    assert messages[0] == messages[1]
    assert "no free color" in messages[0]


# -- uniform fixed-point early exit ----------------------------------------------


class _FrozenUniformStage(LocallyIterativeColoring):
    """A uniform rule that never changes anything and never finalizes."""

    name = "frozen-uniform"
    uniform_step = True

    @property
    def out_palette_size(self):
        return self.info.in_palette_size

    @property
    def rounds_bound(self):
        return 40

    def step(self, round_index, color, neighbor_colors):
        return color

    def step_batch(self, round_index, state, csr, visibility):
        return state

    def batch_encode_initial(self, initial):
        return (initial,)

    def batch_is_final(self, state):
        from repro.runtime.csr import numpy_or_none

        return numpy_or_none().zeros(state[0].shape[0], dtype=bool)

    def batch_decode_final(self, state):
        return state[0]

    def batch_to_scalar(self, state):
        return state[0].tolist()


def test_uniform_fixed_point_early_exit_reference():
    """A global no-op round of a uniform rule stops the reference engine."""
    graph = graphgen.cycle_graph(6)
    result = ColoringEngine(graph).run(
        _FrozenUniformStage(), list(range(6)), in_palette_size=6
    )
    assert result.rounds_used == 1
    assert [r.changed_vertices for r in result.metrics.rounds] == [0]


@requires_numpy
def test_uniform_fixed_point_early_exit_parity():
    """Both engines take the identical early exit on the no-op fixed point."""
    _skip_without_numpy()
    graph = graphgen.cycle_graph(6)
    reference = ColoringEngine(graph, record_history=True).run(
        _FrozenUniformStage(), list(range(6)), in_palette_size=6
    )
    batch = BatchColoringEngine(graph, record_history=True).run(
        _FrozenUniformStage(), list(range(6)), in_palette_size=6
    )
    assert batch.rounds_used == reference.rounds_used == 1
    assert batch.history == reference.history
    assert batch.metrics.to_dict() == reference.metrics.to_dict()


def test_round_dependent_stage_survives_no_op_round():
    """Non-uniform stages must NOT early-exit on a no-op round.

    The standard reduction regularly has rounds where the acting color class
    is empty (a no-op), yet later rounds still act; the early exit must leave
    it untouched.
    """
    graph = StaticGraph(3, [(0, 1), (1, 2)])
    # Palette of size 6, colors {0, 1, 4}: round 0 (acting color 5) is a
    # global no-op, round 1 (acting color 4) recolors vertex 2.  A bogus
    # early exit after round 0 would leave color 4 in place forever.
    initial = [0, 1, 4]
    result = ColoringEngine(graph).run(
        StandardColorReduction(), initial, in_palette_size=6
    )
    assert result.rounds_used == 2
    assert [r.changed_vertices for r in result.metrics.rounds] == [0, 1]
    assert max(result.int_colors) <= graph.max_degree
    if numpy_available():
        batch = BatchColoringEngine(graph).run(
            StandardColorReduction(), initial, in_palette_size=6
        )
        assert batch.int_colors == result.int_colors
        assert batch.rounds_used == result.rounds_used
        assert batch.metrics.to_dict() == result.metrics.to_dict()
