"""Property tests mirroring the paper's lemma-level invariants on real runs.

Each test simulates an algorithm with full history recording and checks the
quantity the corresponding lemma bounds — not just the end result:

* Lemma 3.3/3.4 (AG): within the first ``q`` rounds, every (vertex, neighbor)
  pair conflicts at most twice;
* 3AG convergence: every vertex reaches ``c = 0`` within ``3*Delta + 2``
  rounds and finalizes within ``2p``;
* hybrid invariants: low working values are pairwise distinct among
  neighbors at all times, and a high vertex never lands while a low-working
  neighbor exists;
* ArbAG / Lemma 6.2: every finalized vertex's strictly-earlier-frozen
  same-class different-original neighbors number at most ``p`` plus the
  input defect.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.ag import AdditiveGroupColoring
from repro.core.ag3 import ThreeDimensionalAG
from repro.core.arbdefective import ArbAGColoring
from repro.core.hybrid import ExactDeltaPlusOneHybrid
from repro.defective import DefectiveLinialColoring
from repro.graphgen import gnp_graph, random_regular
from repro.runtime import ColoringEngine
from tests.conftest import id_coloring


class TestAGConflictWindows:
    @given(st.integers(min_value=0, max_value=10 ** 6))
    @settings(max_examples=20, deadline=None)
    def test_at_most_two_conflicts_per_pair(self, seed):
        rng = random.Random(seed)
        n = rng.randint(4, 30)
        graph = gnp_graph(n, rng.uniform(0.1, 0.35), seed=seed)
        engine = ColoringEngine(graph, record_history=True)
        stage = AdditiveGroupColoring()
        result = engine.run(stage, id_coloring(graph))
        history = result.history
        window = history[: stage.q + 1]
        for u, v in graph.edges:
            conflicts = sum(
                1 for colors in window if colors[u][1] == colors[v][1]
            )
            assert conflicts <= 2, (u, v, seed)


class Test3AGPhases:
    @given(st.integers(min_value=0, max_value=10 ** 6))
    @settings(max_examples=15, deadline=None)
    def test_c_phase_bound(self, seed):
        rng = random.Random(seed)
        n = rng.randint(4, 28)
        graph = gnp_graph(n, rng.uniform(0.1, 0.3), seed=seed)
        delta = graph.max_degree
        engine = ColoringEngine(graph, record_history=True)
        stage = ThreeDimensionalAG()
        result = engine.run(stage, id_coloring(graph))
        history = result.history
        # Every vertex's c coordinate hits 0 within 3*Delta + 2 rounds and
        # never leaves 0 afterwards.
        for v in graph.vertices():
            first_zero = next(
                (i for i, colors in enumerate(history) if colors[v][0] == 0),
                None,
            )
            assert first_zero is not None
            assert first_zero <= 3 * delta + 2
            assert all(colors[v][0] == 0 for colors in history[first_zero:])


class TestHybridInvariants:
    @given(st.integers(min_value=0, max_value=10 ** 6))
    @settings(max_examples=15, deadline=None)
    def test_low_working_distinct_and_landing_gated(self, seed):
        rng = random.Random(seed)
        n = rng.randint(4, 28)
        graph = gnp_graph(n, rng.uniform(0.1, 0.3), seed=seed)
        engine = ColoringEngine(graph, record_history=True)
        ag = AdditiveGroupColoring()
        ag_run = engine.run(ag, id_coloring(graph))
        hybrid = ExactDeltaPlusOneHybrid()
        run = engine.run(
            hybrid, ag_run.int_colors, in_palette_size=ag.out_palette_size
        )
        history = run.history
        for t, colors in enumerate(history):
            # (1) adjacent low-working values never collide
            for u, v in graph.edges:
                cu, cv = colors[u], colors[v]
                if cu[0] == "L" and cv[0] == "L" and cu[1] == 1 and cv[1] == 1:
                    assert cu[2] != cv[2], (t, u, v)
            # (2) a vertex that just left H had no low-working neighbor then
            if t == 0:
                continue
            previous = history[t - 1]
            for v in graph.vertices():
                if previous[v][0] == "H" and colors[v][0] == "L":
                    assert not any(
                        previous[u][0] == "L" and previous[u][1] == 1
                        for u in graph.neighbors(v)
                    ), (t, v)


class TestArbAGOrientationInvariant:
    @given(st.integers(min_value=0, max_value=10 ** 6))
    @settings(max_examples=15, deadline=None)
    def test_earlier_frozen_same_class_neighbors_bounded(self, seed):
        rng = random.Random(seed)
        n = rng.randint(6, 30)
        graph = gnp_graph(n, rng.uniform(0.1, 0.35), seed=seed)
        tolerance = rng.randint(1, 4)
        engine = ColoringEngine(graph)
        defective = DefectiveLinialColoring(tolerance)
        dres = engine.run(defective, id_coloring(graph))
        arb = ArbAGColoring(tolerance)
        ares = engine.run(
            arb, dres.int_colors, in_palette_size=defective.out_palette_size
        )
        for v in graph.vertices():
            _, b_v, orig_v, fr_v = ares.colors[v]
            earlier_diff_orig = sum(
                1
                for u in graph.neighbors(v)
                if ares.colors[u][1] == b_v
                and ares.colors[u][2] != orig_v
                and (ares.colors[u][3], u) < (fr_v, v)
            )
            # Lemma 6.2's counting: the frozen-earlier different-original
            # same-class neighbors were tolerated conflicts at v's freeze.
            assert earlier_diff_orig <= tolerance


class TestFinalizedStatesAreFixedPoints:
    def test_all_uniform_stages_hold_final_states(self):
        """The self-stabilization prerequisite across the AG family."""
        from repro.runtime.algorithm import NetworkInfo

        ag = AdditiveGroupColoring()
        ag.configure(NetworkInfo(100, 4, 81))
        assert ag.step(0, (0, 3), ((2, 3), (0, 1))) == (0, 3)

        ag3 = ThreeDimensionalAG()
        ag3.configure(NetworkInfo(100, 4, 1000))
        assert ag3.step(0, (0, 0, 3), ((0, 1, 3),)) == (0, 0, 3)

        hybrid = ExactDeltaPlusOneHybrid()
        hybrid.configure(NetworkInfo(100, 4, 10))
        assert hybrid.step(0, ("L", 0, 3), (("L", 1, 3),)) == ("L", 0, 3)


class TestDefectAccumulation:
    """The defective stage's per-step pigeonhole budget, checked per round."""

    @given(st.integers(min_value=0, max_value=10 ** 6))
    @settings(max_examples=12, deadline=None)
    def test_defect_grows_within_per_step_budget(self, seed):
        from repro.analysis import coloring_defect

        rng = random.Random(seed)
        n = rng.randint(8, 36)
        graph = gnp_graph(n, rng.uniform(0.1, 0.35), seed=seed)
        tolerance = rng.randint(1, 4)
        engine = ColoringEngine(graph, record_history=True)
        stage = DefectiveLinialColoring(tolerance)
        run = engine.run(stage, id_coloring(graph))
        n_proper = len(stage.proper_plan)
        budget_so_far = 0
        for index, colors in enumerate(run.history):
            defect = coloring_defect(graph, colors)
            if index <= n_proper:
                assert defect == 0, "proper phase produced defect"
            else:
                q = stage.tolerant_qs[index - n_proper - 1]
                budget_so_far += (2 * graph.max_degree) // q
                assert defect <= budget_so_far


class TestArbAGWindowRequirement:
    """ArbAG's round bound needs 2*ceil(Delta/p)+1 <= q — asserted on the
    actual configured stages across the parameter space."""

    @given(
        st.integers(min_value=1, max_value=64),
        st.integers(min_value=1, max_value=64),
    )
    @settings(max_examples=60, deadline=None)
    def test_window_fits_in_modulus(self, delta, tolerance):
        from repro.runtime.algorithm import NetworkInfo

        stage = ArbAGColoring(tolerance)
        r = -(-delta // tolerance)
        palette = max((2 * r + 2) ** 2, 4)
        stage.configure(NetworkInfo(10 ** 4, delta, palette))
        assert stage.rounds_bound <= stage.q
