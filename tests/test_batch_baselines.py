"""Differential tests: vectorized baseline modules vs their scalar references.

Every baseline this repo benchmarks against — the greedy oracle, the
randomized trial/Luby pair, Barenboim–Elkin–Kuhn, Kuhn–Wattenhofer, and the
rank-greedy self-stabilizing coloring — now has a CSR batch kernel.  The
contract is *bit-for-bit* equivalence with the scalar reference: identical
colors, identical round counts, and (for engine-run stages) identical
per-round metrics rows.  These tests enforce that across topologies, seeds
and orders, through the module functions and through the
:func:`repro.parallel.jobs.register_algorithm` registry, and pin the
backend dispatch behavior when NumPy is absent.
"""

import pytest

from repro.baselines.bek import bek_delta_plus_one
from repro.baselines.greedy import greedy_coloring
from repro.baselines.kuhn_wattenhofer import KuhnWattenhoferReduction
from repro.baselines.randomized import luby_mis, random_trial_coloring
from repro.graphgen import (
    complete_graph,
    gnp_graph,
    path_graph,
    random_regular,
    star_graph,
)
from repro.parallel.jobs import algorithm_names, resolve_algorithm
from repro.runtime.backends import resolve_backend
from repro.runtime.csr import numpy_available
from repro.runtime.graph import StaticGraph

requires_numpy = pytest.mark.requires_numpy
without_numpy = pytest.mark.skipif(
    numpy_available(), reason="covers the no-NumPy environment only"
)


def _skip_without_numpy():
    if not numpy_available():
        pytest.skip("NumPy unavailable (or disabled via REPRO_DISABLE_NUMPY)")


def graphs():
    yield StaticGraph(0, [])
    yield StaticGraph(5, [])  # edgeless
    yield path_graph(9)
    yield star_graph(7)
    yield complete_graph(6)
    yield gnp_graph(40, 0.15, seed=3)
    yield random_regular(60, 6, seed=4)
    yield random_regular(200, 12, seed=5)


class TestGreedyParity:
    @requires_numpy
    def test_natural_order(self):
        _skip_without_numpy()
        for graph in graphs():
            assert greedy_coloring(graph, backend="batch") == greedy_coloring(
                graph, backend="reference"
            )

    @requires_numpy
    def test_permuted_orders(self):
        _skip_without_numpy()
        import random

        graph = gnp_graph(50, 0.2, seed=9)
        for seed in range(5):
            order = list(range(graph.n))
            random.Random(seed).shuffle(order)
            assert greedy_coloring(
                graph, order=order, backend="batch"
            ) == greedy_coloring(graph, order=order, backend="reference")

    @requires_numpy
    def test_partial_order_falls_back_identically(self):
        _skip_without_numpy()
        graph = path_graph(8)
        order = [0, 2, 4]  # not a permutation: scalar sweep on both tiers
        assert greedy_coloring(
            graph, order=order, backend="batch"
        ) == greedy_coloring(graph, order=order, backend="reference")


class TestRandomizedParity:
    @requires_numpy
    def test_trial_coloring_across_seeds(self):
        _skip_without_numpy()
        for graph in graphs():
            if graph.n == 0:
                continue
            for seed in (1, 7, 42):
                assert random_trial_coloring(
                    graph, seed, backend="batch"
                ) == random_trial_coloring(graph, seed, backend="reference")

    @requires_numpy
    def test_trial_coloring_wide_palette(self):
        # A palette much wider than Delta+1 exercises the uniform-draw
        # fast path (mirrored Mersenne-Twister stream) on later rounds too.
        _skip_without_numpy()
        graph = random_regular(80, 8, seed=2)
        for seed in (3, 11):
            assert random_trial_coloring(
                graph, seed, palette=40, backend="batch"
            ) == random_trial_coloring(
                graph, seed, palette=40, backend="reference"
            )

    @requires_numpy
    def test_luby_mis(self):
        _skip_without_numpy()
        for graph in graphs():
            for seed in (1, 5):
                assert luby_mis(graph, seed, backend="batch") == luby_mis(
                    graph, seed, backend="reference"
                )


class TestEngineBaselineParity:
    """Engine-run baselines must match colors, rounds AND metrics rows."""

    def _run(self, stage_factory, graph, backend):
        engine = resolve_backend("engine", backend)(graph)
        return engine.run(
            stage_factory(),
            list(range(graph.n)),
            in_palette_size=max(2, graph.n),
        )

    @requires_numpy
    def test_kuhn_wattenhofer(self):
        _skip_without_numpy()
        for graph in graphs():
            ref = self._run(KuhnWattenhoferReduction, graph, "reference")
            bat = self._run(KuhnWattenhoferReduction, graph, "batch")
            assert ref.to_dict() == bat.to_dict()

    @requires_numpy
    def test_bek(self):
        _skip_without_numpy()
        for graph in graphs():
            ref = bek_delta_plus_one(graph, backend="reference")
            bat = bek_delta_plus_one(graph, backend="batch")
            assert ref.to_dict() == bat.to_dict()


class TestRegistryParity:
    """The registered job surface returns bit-identical summaries per tier."""

    NAMES = (
        "greedy",
        "random-trial",
        "bek",
        "kuhn-wattenhofer",
        "selfstab-rank",
    )

    def test_names_registered(self):
        for name in self.NAMES:
            assert name in algorithm_names()

    @requires_numpy
    def test_cross_tier_summaries(self):
        _skip_without_numpy()
        graph = random_regular(80, 6, seed=6)
        graph.csr()
        for name in self.NAMES:
            fn = resolve_algorithm(name)
            ref = fn(graph, backend="reference", seed=3)
            bat = fn(graph, backend="batch", seed=3)
            assert ref.to_dict() == bat.to_dict(), name
            assert bat.rounds == ref.rounds
            assert bat.num_colors == ref.num_colors

    def test_reference_tier_runs_everywhere(self):
        # No NumPy required: the scalar tier must work in the no-NumPy job.
        graph = path_graph(12)
        for name in self.NAMES:
            result = resolve_algorithm(name)(graph, backend="reference", seed=1)
            assert result.rounds >= 0
            assert result.num_colors >= 1


class TestNoNumpyDispatch:
    @without_numpy
    def test_batch_backend_raises_without_numpy(self):
        graph = path_graph(6)
        with pytest.raises(RuntimeError, match="needs NumPy"):
            greedy_coloring(graph, backend="batch")
        with pytest.raises(RuntimeError, match="NumPy"):
            resolve_backend("engine", "batch")(graph)

    @without_numpy
    def test_auto_backend_falls_back_to_reference(self):
        graph = path_graph(6)
        colors = greedy_coloring(graph, backend="auto")
        assert colors == greedy_coloring(graph, backend="reference")
        colors, rounds = random_trial_coloring(graph, 5, backend="auto")
        assert (colors, rounds) == random_trial_coloring(
            graph, 5, backend="reference"
        )
