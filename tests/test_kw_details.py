"""Detailed unit tests for the Kuhn–Wattenhofer reduction's internals."""

import pytest

from repro.baselines import KuhnWattenhoferReduction
from repro.graphgen import complete_graph, path_graph
from repro.runtime import ColoringEngine
from repro.runtime.algorithm import NetworkInfo


def configured(n, delta, palette):
    stage = KuhnWattenhoferReduction()
    stage.configure(NetworkInfo(n, delta, palette))
    return stage


class TestPaletteSchedule:
    def test_halving_sequence(self):
        stage = configured(1000, 3, 64)  # N = 4, blocks of 8
        # 64 -> ceil(64/8)*4 = 32 -> 16 -> 8 -> 4
        assert stage.palette_schedule == [64, 32, 16, 8, 4]

    def test_non_power_of_two(self):
        stage = configured(1000, 3, 50)  # N = 4
        # 50 -> ceil(50/8)*4 = 28 -> ceil(28/8)*4 = 16 -> 8 -> 4
        assert stage.palette_schedule == [50, 28, 16, 8, 4]

    def test_already_small(self):
        stage = configured(100, 4, 5)  # N = 5, palette already N
        assert stage.palette_schedule == [5]
        assert stage.rounds_bound == 0

    def test_between_n_and_two_n(self):
        stage = configured(100, 4, 8)  # N = 5, 8 <= 2N: one iteration
        assert stage.palette_schedule == [8, 5]
        assert stage.rounds_bound == 5

    def test_rounds_is_iterations_times_n(self):
        stage = configured(1000, 3, 64)
        assert stage.rounds_bound == 4 * 4


class TestStepMechanics:
    def test_acting_vertex_moves_into_lower_half(self):
        stage = configured(100, 2, 12)  # N = 3, blocks of 6
        # Sub-round 0 of iteration 0: acting local = 5.
        color = 1 * 6 + 5  # block 1, local 5
        new = stage.step(0, color, (1 * 6 + 0, 1 * 6 + 1))
        assert new == 1 * 6 + 2  # smallest free local in [0, 3)

    def test_non_acting_vertex_keeps_color(self):
        stage = configured(100, 2, 12)
        color = 1 * 6 + 2
        assert stage.step(0, color, ()) == color

    def test_renumbering_at_iteration_end(self):
        stage = configured(100, 2, 12)  # N = 3
        color = 1 * 6 + 2  # block 1, local 2 (< N)
        # Last sub-round of the iteration: t = N - 1 = 2.
        assert stage.step(2, color, ()) == 1 * 3 + 2

    def test_out_of_schedule_rounds_are_identity(self):
        stage = configured(100, 2, 12)
        rounds = stage.rounds_bound
        assert stage.step(rounds + 5, 2, (0, 1)) == 2

    def test_neighbors_outside_block_ignored(self):
        stage = configured(100, 2, 12)
        color = 0 * 6 + 5  # block 0 acting
        # A block-1 neighbor occupying the numeric value 0*6+0+6 = 6 is
        # outside block 0's range and must not be treated as taken.
        new = stage.step(0, color, (6, 7))
        assert new == 0  # local 0 free within block 0


class TestEndToEndInvariants:
    def test_every_iteration_shrinks_palette(self):
        graph = complete_graph(8)
        stage = KuhnWattenhoferReduction()
        ColoringEngine(graph).run(stage, list(range(8)))
        schedule = stage.palette_schedule
        assert all(a > b for a, b in zip(schedule, schedule[1:]))

    def test_path_two_coloring_reachable(self):
        graph = path_graph(20)
        stage = KuhnWattenhoferReduction()
        result = ColoringEngine(graph, check_proper_each_round=True).run(
            stage, list(range(20))
        )
        assert max(result.int_colors) <= 2
