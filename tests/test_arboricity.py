"""Tests for the H-partition and arboricity-based coloring."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import is_proper_coloring
from repro.arboricity import arboricity_coloring, h_partition
from repro.graphgen import (
    complete_graph,
    cycle_graph,
    gnp_graph,
    grid_graph,
    path_graph,
    random_tree,
)


class TestHPartition:
    def test_tree_single_ish_layers(self):
        g = random_tree(50, seed=1)
        partition = h_partition(g, arboricity_bound=1)
        assert partition.out_degree_bound == 3  # (2 + 1.0) * 1
        assert all(
            len(outs) <= 3 for outs in partition.out_neighbors
        )

    def test_layers_partition_vertices(self):
        g = gnp_graph(40, 0.2, seed=2)
        partition = h_partition(g)
        seen = [v for layer in partition.layers for v in layer]
        assert sorted(seen) == list(g.vertices())

    def test_orientation_covers_every_edge_once(self):
        g = gnp_graph(30, 0.25, seed=3)
        partition = h_partition(g)
        oriented = set()
        for v, outs in enumerate(partition.out_neighbors):
            for u in outs:
                key = (min(u, v), max(u, v))
                assert key not in oriented
                oriented.add(key)
        assert oriented == set(g.edges)

    def test_orientation_is_acyclic(self):
        g = gnp_graph(30, 0.25, seed=4)
        partition = h_partition(g)
        order = {(partition.layer_of[v], v): v for v in g.vertices()}
        for v, outs in enumerate(partition.out_neighbors):
            for u in outs:
                assert (partition.layer_of[u], u) > (partition.layer_of[v], v)

    def test_layer_count_logarithmic(self):
        small = h_partition(random_tree(32, seed=5), arboricity_bound=1)
        large = h_partition(random_tree(1024, seed=6), arboricity_bound=1)
        assert large.rounds <= small.rounds + 8

    def test_bad_parameters(self):
        g = path_graph(4)
        with pytest.raises(ValueError):
            h_partition(g, eps=0)
        with pytest.raises(ValueError):
            h_partition(g, arboricity_bound=0)

    def test_undersized_bound_stalls(self):
        g = complete_graph(10)  # arboricity 5
        with pytest.raises(AssertionError):
            h_partition(g, arboricity_bound=1)


class TestArboricityColoring:
    @pytest.mark.parametrize(
        "graph,a",
        [
            (random_tree(60, seed=7), 1),
            (cycle_graph(31), 1),
            (grid_graph(6, 7), 2),
        ],
        ids=["tree", "cycle", "grid"],
    )
    def test_small_palette_on_sparse_graphs(self, graph, a):
        colors, partition, rounds = arboricity_coloring(graph, arboricity_bound=a)
        assert is_proper_coloring(graph, colors)
        assert max(colors) <= partition.out_degree_bound
        assert partition.out_degree_bound <= 3 * a

    def test_defaults_to_degeneracy(self):
        g = gnp_graph(40, 0.15, seed=8)
        colors, partition, rounds = arboricity_coloring(g)
        assert is_proper_coloring(g, colors)

    @given(st.integers(min_value=0, max_value=10 ** 6))
    @settings(max_examples=25, deadline=None)
    def test_random_graphs(self, seed):
        rng = random.Random(seed)
        n = rng.randint(2, 35)
        g = gnp_graph(n, rng.uniform(0.05, 0.35), seed=seed)
        colors, partition, rounds = arboricity_coloring(g)
        assert is_proper_coloring(g, colors)
        assert max(colors) <= partition.out_degree_bound


class TestHPartitionCompletion:
    def test_pipeline_backend(self):
        from repro import one_plus_eps_delta_coloring
        from repro.graphgen import random_regular

        graph = random_regular(72, 12, seed=9)
        for backend in ("orientation", "hpartition"):
            result = one_plus_eps_delta_coloring(graph, completion=backend)
            assert is_proper_coloring(graph, result.colors)
            assert result.palette_size <= 40 * (graph.max_degree + 1)

    def test_unknown_backend_rejected(self):
        from repro import one_plus_eps_delta_coloring
        from repro.graphgen import cycle_graph as cg

        with pytest.raises(ValueError):
            one_plus_eps_delta_coloring(cg(10), completion="magic")

    @given(st.integers(min_value=0, max_value=10 ** 6))
    @settings(max_examples=10, deadline=None)
    def test_backends_agree_on_guarantees(self, seed):
        from repro import one_plus_eps_delta_coloring

        rng = random.Random(seed)
        n = rng.randint(6, 36)
        g = gnp_graph(n, rng.uniform(0.1, 0.3), seed=seed)
        for backend in ("orientation", "hpartition"):
            result = one_plus_eps_delta_coloring(g, completion=backend)
            assert is_proper_coloring(g, result.colors)
