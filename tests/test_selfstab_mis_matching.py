"""Tests for self-stabilizing MIS, maximal matching, and edge coloring."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import is_maximal_independent_set, is_maximal_matching
from repro.runtime.graph import DynamicGraph
from repro.selfstab import (
    FaultCampaign,
    SelfStabEdgeColoring,
    SelfStabEngine,
    SelfStabMaximalMatching,
    SelfStabMIS,
)
from tests.test_selfstab_coloring import build_dynamic, dynamic_path


def assert_valid_mis(algorithm, graph, engine):
    members = algorithm.mis_members(graph, engine.rams)
    snapshot, index = graph.snapshot()
    assert is_maximal_independent_set(snapshot, {index[v] for v in members})


class TestSelfStabMIS:
    def test_stabilizes_and_is_valid(self):
        g = build_dynamic(36, 6, 0.15, seed=1)
        algorithm = SelfStabMIS(36, 6)
        engine = SelfStabEngine(g, algorithm)
        rounds = engine.run_to_quiescence()
        assert engine.is_legal()
        assert rounds <= algorithm.stabilization_bound()
        assert_valid_mis(algorithm, g, engine)

    def test_recovers_from_status_corruption(self):
        g = build_dynamic(30, 5, 0.2, seed=2)
        algorithm = SelfStabMIS(30, 5)
        engine = SelfStabEngine(g, algorithm)
        engine.run_to_quiescence()
        # Force two adjacent vertices into the MIS simultaneously.
        edges = g.edges()
        u, v = edges[0]
        engine.corrupt(u, (engine.rams[u][0], "MIS"))
        engine.corrupt(v, (engine.rams[v][0], "MIS"))
        engine.run_to_quiescence()
        assert engine.is_legal()
        assert_valid_mis(algorithm, g, engine)

    def test_recovers_from_garbage(self):
        g = build_dynamic(24, 5, 0.2, seed=3)
        algorithm = SelfStabMIS(24, 5)
        engine = SelfStabEngine(g, algorithm)
        campaign = FaultCampaign(seed=4)
        campaign.corrupt_random_rams(engine, 10)
        engine.run_to_quiescence()
        assert engine.is_legal()

    def test_adjustment_radius_at_most_two(self):
        """Theorem 4.6: MIS changes stay within distance 2 of the fault."""
        g = dynamic_path(30)
        algorithm = SelfStabMIS(30, 2)
        engine = SelfStabEngine(g, algorithm)
        engine.run_to_quiescence()
        victim = 15
        engine.reset_touched()
        engine.corrupt(victim, (engine.rams[16][0], "MIS"))
        engine.run_to_quiescence()
        assert engine.adjustment_radius([victim]) <= 2

    def test_mis_respects_color_order(self):
        g = build_dynamic(30, 5, 0.2, seed=5)
        algorithm = SelfStabMIS(30, 5)
        engine = SelfStabEngine(g, algorithm)
        engine.run_to_quiescence()
        colors = {v: engine.rams[v][0] for v in g.vertices()}
        members = algorithm.mis_members(g, engine.rams)
        # Greedy-by-color: a non-member must have a member neighbor with a
        # smaller or equal... (at least one member neighbor, by maximality).
        for v in g.vertices():
            if v not in members:
                assert any(u in members for u in g.neighbors(v))

    def test_topology_churn(self):
        g = build_dynamic(26, 5, 0.2, seed=6)
        algorithm = SelfStabMIS(26, 5)
        engine = SelfStabEngine(g, algorithm)
        engine.run_to_quiescence()
        campaign = FaultCampaign(seed=7)
        for _ in range(3):
            campaign.churn_vertices(engine, crashes=1, spawns=1)
            campaign.churn_edges(engine, removals=1, additions=1)
            engine.run_to_quiescence()
            assert engine.is_legal()


class TestSelfStabMaximalMatching:
    def test_matching_is_maximal(self):
        base = build_dynamic(18, 4, 0.2, seed=8)
        mm = SelfStabMaximalMatching(base)
        rounds = mm.run_to_quiescence()
        assert mm.is_legal()
        snapshot, index = base.snapshot()
        matched = [
            (index[u], index[v]) for u, v in mm.matching()
        ]
        assert is_maximal_matching(snapshot, matched)

    def test_matching_survives_edge_corruption(self):
        base = build_dynamic(14, 4, 0.25, seed=9)
        mm = SelfStabMaximalMatching(base)
        mm.run_to_quiescence()
        u, v = base.edges()[0]
        mm.corrupt_edge(u, v, ("garbage", 1))
        mm.run_to_quiescence()
        assert mm.is_legal()

    def test_matching_after_topology_change(self):
        base = build_dynamic(14, 4, 0.25, seed=10)
        mm = SelfStabMaximalMatching(base)
        mm.run_to_quiescence()
        edges = base.edges()
        base.remove_edge(*edges[0])
        present = base.vertices()
        for u in present:
            for v in present:
                if (
                    u < v
                    and not base.has_edge(u, v)
                    and base.degree(u) < base.delta_bound
                    and base.degree(v) < base.delta_bound
                ):
                    base.add_edge(u, v)
                    break
            else:
                continue
            break
        mm.sync_topology()
        mm.run_to_quiescence()
        assert mm.is_legal()
        snapshot, index = base.snapshot()
        matched = [(index[u], index[v]) for u, v in mm.matching()]
        assert is_maximal_matching(snapshot, matched)


class TestSelfStabEdgeColoring:
    def test_exact_two_delta_minus_one(self):
        base = build_dynamic(14, 4, 0.25, seed=11)
        ec = SelfStabEdgeColoring(base, exact=True)
        ec.run_to_quiescence()
        assert ec.is_legal()
        colors = ec.edge_colors()
        palette_cap = 2 * 4 - 1
        assert all(0 <= c < palette_cap for c in colors.values())
        # Properness: incident edges differ.
        for u, v in base.edges():
            for w in base.neighbors(v):
                if (min(v, w), max(v, w)) != (u, v) and w != u:
                    e1 = (min(u, v), max(u, v))
                    e2 = (min(v, w), max(v, w))
                    assert colors[e1] != colors[e2]

    def test_inexact_variant(self):
        base = build_dynamic(14, 4, 0.25, seed=12)
        ec = SelfStabEdgeColoring(base, exact=False)
        ec.run_to_quiescence()
        assert ec.is_legal()

    def test_recovery_from_edge_state_corruption(self):
        base = build_dynamic(12, 3, 0.3, seed=13)
        ec = SelfStabEdgeColoring(base, exact=True)
        ec.run_to_quiescence()
        campaign = FaultCampaign(seed=14)
        campaign.corrupt_random_rams(ec.engine, 5)
        ec.run_to_quiescence()
        assert ec.is_legal()


class TestPropertyBased:
    @given(st.integers(min_value=0, max_value=10 ** 6))
    @settings(max_examples=8, deadline=None)
    def test_mis_random_storms(self, seed):
        rng = random.Random(seed)
        n = rng.randint(6, 22)
        delta = rng.randint(2, 5)
        g = build_dynamic(n, delta, rng.uniform(0.1, 0.3), seed=seed)
        algorithm = SelfStabMIS(n, delta)
        engine = SelfStabEngine(g, algorithm)
        campaign = FaultCampaign(seed=seed)
        for _ in range(2):
            campaign.corrupt_random_rams(engine, rng.randint(1, n))
            engine.run_to_quiescence()
            assert engine.is_legal()
            assert_valid_mis(algorithm, g, engine)


class TestLineGraphAdjustmentRadii:
    def _stable_path_matching(self, n):
        base = dynamic_path(n)
        mm = SelfStabMaximalMatching(base)
        mm.run_to_quiescence()
        return base, mm

    def test_matching_radius_at_most_three_in_base_graph(self):
        """Theorem 4.7 discussion: MM adjustment radius 3 (base-graph hops).

        A radius-2 MIS disturbance on the line graph maps to at most 3 hops
        between base vertices.
        """
        base, mm = self._stable_path_matching(24)
        edges = base.edges()
        mid = edges[len(edges) // 2]
        slot = mm.mirror.slot(*mid)
        # Force the virtual vertex into the matching illegally.
        fake = (mm.engine.rams[slot][0], "MIS")
        mm.engine.corrupt(slot, fake)
        mm.engine.reset_touched()
        mm.engine.corrupt(slot, fake)
        mm.run_to_quiescence()
        touched_slots = mm.engine.touched
        touched_vertices = set()
        for s in touched_slots:
            u, v = mm.mirror.edge_of(s)
            touched_vertices.update((u, v))
        distances = base.bfs_distances(set(mid))
        radius = max(
            (distances.get(v, float("inf")) for v in touched_vertices), default=0
        )
        assert radius <= 3

    def test_edge_coloring_radius_at_most_two_in_base_graph(self):
        """Line-graph coloring has radius 1 -> base-graph radius <= 2."""
        base = dynamic_path(24)
        ec = SelfStabEdgeColoring(base, exact=False)
        ec.run_to_quiescence()
        edges = base.edges()
        mid = edges[len(edges) // 2]
        neighbor_edge = edges[len(edges) // 2 + 1]
        stolen = ec.engine.rams[ec.mirror.slot(*neighbor_edge)]
        slot = ec.mirror.slot(*mid)
        ec.engine.corrupt(slot, stolen)
        ec.engine.reset_touched()
        ec.engine.corrupt(slot, stolen)
        ec.run_to_quiescence()
        touched_vertices = set()
        for s in ec.engine.touched:
            u, v = ec.mirror.edge_of(s)
            touched_vertices.update((u, v))
        distances = base.bfs_distances(set(mid))
        radius = max(
            (distances.get(v, float("inf")) for v in touched_vertices), default=0
        )
        assert radius <= 2


class TestMISWithExactColoringCore:
    def test_mis_over_exact_coloring_factory(self):
        from repro.selfstab import SelfStabExactColoring

        g = build_dynamic(24, 4, 0.22, seed=15)
        algorithm = SelfStabMIS(24, 4, coloring_factory=SelfStabExactColoring)
        engine = SelfStabEngine(g, algorithm)
        rounds = engine.run_to_quiescence()
        assert engine.is_legal()
        assert rounds <= algorithm.stabilization_bound()
        assert_valid_mis(algorithm, g, engine)

    def test_mis_exact_recovers_from_faults(self):
        from repro.selfstab import SelfStabExactColoring

        g = build_dynamic(20, 4, 0.25, seed=16)
        algorithm = SelfStabMIS(20, 4, coloring_factory=SelfStabExactColoring)
        engine = SelfStabEngine(g, algorithm)
        engine.run_to_quiescence()
        campaign = FaultCampaign(seed=17)
        campaign.corrupt_random_rams(engine, 8)
        engine.run_to_quiescence()
        assert engine.is_legal()


class TestEndpointCopyConsistency:
    """Section 4.2's copy rule: the greater endpoint copies the smaller's
    state, so only authoritative-copy faults can influence the algorithm."""

    def test_secondary_copy_fault_heals_without_algorithmic_effect(self):
        base = build_dynamic(14, 4, 0.25, seed=81)
        mm = SelfStabMaximalMatching(base)
        mm.run_to_quiescence()
        before = dict(mm.engine.rams)
        u, v = base.edges()[0]
        mm.corrupt_edge_copy(u, v, holder=max(u, v), ram=("junk",))
        assert not mm.is_legal()  # copies inconsistent
        mm.engine.reset_touched()
        rounds = mm.run_to_quiescence()
        assert mm.is_legal()
        assert mm.engine.rams == before  # healed by the copy, no recompute
        assert rounds <= 1 or not mm.engine.touched

    def test_primary_copy_fault_reaches_the_algorithm(self):
        base = build_dynamic(14, 4, 0.25, seed=82)
        mm = SelfStabMaximalMatching(base)
        mm.run_to_quiescence()
        u, v = base.edges()[0]
        mm.corrupt_edge_copy(u, v, holder=min(u, v), ram=("junk",))
        slot = mm.mirror.slot(u, v)
        assert mm.engine.rams[slot] == ("junk",)
        mm.run_to_quiescence()
        assert mm.is_legal()

    def test_non_endpoint_holder_rejected(self):
        base = build_dynamic(10, 3, 0.3, seed=83)
        ec = SelfStabEdgeColoring(base, exact=False)
        u, v = base.edges()[0]
        other = next(w for w in base.vertices() if w not in (u, v))
        with pytest.raises(ValueError):
            ec.corrupt_edge_copy(u, v, holder=other, ram=0)

    def test_edge_coloring_secondary_desync_also_heals(self):
        base = build_dynamic(12, 3, 0.3, seed=84)
        ec = SelfStabEdgeColoring(base, exact=False)
        ec.run_to_quiescence()
        u, v = base.edges()[0]
        ec.corrupt_edge_copy(u, v, holder=max(u, v), ram=-1)
        assert not ec.is_legal()
        ec.run_to_quiescence()
        assert ec.is_legal()


class TestConstantMemoryEdgeColoring:
    def test_line_wrapper_with_o1_memory_core(self):
        base = build_dynamic(12, 3, 0.3, seed=91)
        ec = SelfStabEdgeColoring(base, exact=True, constant_memory=True)
        ec.run_to_quiescence()
        assert ec.is_legal()
        assert ec.algorithm.peak_words <= 10
        colors = ec.edge_colors()
        assert all(0 <= c < 2 * 3 - 1 for c in colors.values())

    def test_o1_memory_matches_reference(self):
        base1 = build_dynamic(12, 3, 0.3, seed=92)
        base2 = build_dynamic(12, 3, 0.3, seed=92)
        reference = SelfStabEdgeColoring(base1, exact=True)
        metered = SelfStabEdgeColoring(base2, exact=True, constant_memory=True)
        assert reference.run_to_quiescence() == metered.run_to_quiescence()
        assert reference.edge_colors() == metered.edge_colors()
