"""Meta-consistency of the repository's reproduction index.

DESIGN.md section 3 maps every experiment id to a benchmark file; these
tests keep docs and code from drifting apart.
"""

import os
import re

REPO_ROOT = os.path.join(os.path.dirname(__file__), os.pardir)


def read(path):
    with open(os.path.join(REPO_ROOT, path)) as handle:
        return handle.read()


class TestDesignIndex:
    def test_every_indexed_bench_file_exists(self):
        design = read("DESIGN.md")
        files = set(re.findall(r"benchmarks/(bench_\w+\.py)", design))
        assert files, "DESIGN.md lists no bench targets?"
        for fname in files:
            assert os.path.exists(
                os.path.join(REPO_ROOT, "benchmarks", fname)
            ), fname

    def test_every_bench_file_is_indexed_or_helper(self):
        design = read("DESIGN.md")
        indexed = set(re.findall(r"benchmarks/(bench_\w+\.py)", design))
        present = {
            f
            for f in os.listdir(os.path.join(REPO_ROOT, "benchmarks"))
            if f.startswith("bench_") and f.endswith(".py") and f != "bench_util.py"
        }
        missing = present - indexed
        assert not missing, "bench files absent from DESIGN.md: %s" % missing

    def test_collector_order_covers_all_report_ids(self):
        import importlib.util

        spec = importlib.util.spec_from_file_location(
            "collect_results",
            os.path.join(REPO_ROOT, "benchmarks", "collect_results.py"),
        )
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        # Every exp id passed to report(...) in a bench file must be ordered.
        ids = set()
        bench_dir = os.path.join(REPO_ROOT, "benchmarks")
        for fname in os.listdir(bench_dir):
            if fname.startswith("bench_") and fname != "bench_util.py":
                text = read(os.path.join("benchmarks", fname))
                ids.update(re.findall(r'report\(\s*\n?\s*"([^"]+)"', text))
        missing = ids - set(module.ORDER)
        assert not missing, "experiment ids missing from collect_results.ORDER: %s" % missing


class TestDocsConsistency:
    def test_experiments_mentions_every_known_deviation_module(self):
        experiments = read("EXPERIMENTS.md")
        for module in ("repro/core/ag3.py", "repro/selfstab/exact.py"):
            assert module in experiments

    def test_readme_points_to_docs(self):
        readme = read("README.md")
        for doc in ("docs/models.md", "docs/algorithms.md", "docs/api.md"):
            assert doc in readme
            assert os.path.exists(os.path.join(REPO_ROOT, doc))

    def test_design_has_paper_identity_check(self):
        design = read("DESIGN.md")
        assert "Paper identity check" in design


class TestPaperMap:
    def test_every_mapped_module_exists(self):
        paper_map = read("docs/paper-map.md")
        for match in re.findall(r"`((?:core|selfstab|linial|defective|edge|bitround|lowmem|arboricity|baselines|runtime|mathutil|analysis|apps)/[\w/]+\.py)`", paper_map):
            assert os.path.exists(
                os.path.join(REPO_ROOT, "src", "repro", match)
            ), match

    def test_every_mapped_test_file_exists(self):
        paper_map = read("docs/paper-map.md")
        for match in set(re.findall(r"`(test_\w+\.py)", paper_map)):
            assert os.path.exists(
                os.path.join(REPO_ROOT, "tests", match)
            ), match

    def test_every_mapped_experiment_id_has_results_entry(self):
        import importlib.util

        paper_map = read("docs/paper-map.md")
        spec = importlib.util.spec_from_file_location(
            "collect_results",
            os.path.join(REPO_ROOT, "benchmarks", "collect_results.py"),
        )
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        ids = set(re.findall(r"`(E-[\w-]+|T1)`", paper_map))
        known = set(module.ORDER)
        missing = {i for i in ids if i not in known}
        assert not missing, missing
