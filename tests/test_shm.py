"""The shared-memory fan-out plane: lifecycle, parity, degradation.

The two load-bearing properties are *no leaks* — every ``/dev/shm`` entry
the parent creates is gone after the runner closes, times out, or falls
back inline — and *bit-identity*: outcomes through the shm plane equal the
by-value outcomes byte for byte (``REPRO_DISABLE_SHM=1`` is the
differential escape hatch).
"""

import os
import time

import pytest

from repro.parallel import JobRunner, JobSpec, build_graph, clear_graph_cache, run_many
from repro.parallel.jobs import _ALGORITHMS
from repro.parallel.runner import _multiprocessing_context
from repro.parallel.shm import (
    COLORS_KEY,
    SEGMENT_PREFIX,
    SegmentManager,
    ShmPlane,
    attach_graph,
    export_graph,
    offload_colors,
    restore_colors,
    shm_available,
)
from repro.parallel import register_algorithm
from repro.runtime.csr import numpy_available
from repro.graphgen import random_regular


def _fork_available():
    context = _multiprocessing_context()
    return context is not None and getattr(context, "get_start_method", lambda: "")() == "fork"


def _needs_shm():
    if not shm_available():
        pytest.skip("shared memory or NumPy unavailable")


def _shm_leaks():
    """Names of leaked repro segments visible in /dev/shm (Linux only)."""
    if not os.path.isdir("/dev/shm"):
        return []
    return sorted(e for e in os.listdir("/dev/shm") if e.startswith(SEGMENT_PREFIX))


def _specs(count, n=120, degree=6, seed=None):
    """``count`` jobs; ``seed`` pins one shared topology across all of them."""
    return [
        JobSpec(
            algorithm="cor36",
            graph={"family": "regular", "n": n, "degree": degree, "seed": seed if seed is not None else s},
            seed=s,
        )
        for s in range(1, count + 1)
    ]


def _deterministic(outcome):
    data = outcome.to_dict()
    data.pop("seconds")
    return data


@pytest.fixture
def scratch_algorithm():
    """Register a throwaway algorithm; unregister afterwards."""
    registered = []

    def add(name, fn):
        register_algorithm(name, fn)
        registered.append(name)
        return fn

    yield add
    for name in registered:
        _ALGORITHMS.pop(name, None)


@pytest.fixture(autouse=True)
def _fresh_graph_cache():
    """Keep cross-test cache state out of the export-policy assertions."""
    clear_graph_cache()
    yield
    clear_graph_cache()


class TestSegmentManager:
    def test_create_get_release_roundtrip(self):
        _needs_shm()
        manager = SegmentManager()
        segment = manager.create(64)
        assert segment.name.startswith(SEGMENT_PREFIX)
        assert manager.get(segment.name) is segment
        assert manager.names() == [segment.name]
        assert len(manager) == 1
        manager.release(segment.name)
        assert manager.get(segment.name) is None
        assert len(manager) == 0
        # Idempotent: a second release of the same name is a no-op.
        manager.release(segment.name)
        assert _shm_leaks() == []

    def test_close_releases_everything(self):
        _needs_shm()
        manager = SegmentManager()
        names = [manager.create(32).name for _ in range(3)]
        assert len(manager) == 3
        manager.close()
        assert len(manager) == 0
        for name in names:
            assert name not in _shm_leaks()


class TestSharedGraphView:
    def _exported_view(self, manager, graph):
        meta = export_graph(manager, graph)
        assert meta is not None
        return meta, attach_graph(meta)

    def test_query_surface_matches_static_graph(self):
        _needs_shm()
        manager = SegmentManager()
        try:
            graph = random_regular(80, 6, seed=3)
            meta, view = self._exported_view(manager, graph)
            assert view.n == graph.n
            assert view.m == graph.m
            assert view.max_degree == graph.max_degree
            assert list(view.ids) == list(graph.ids)
            assert list(view.vertices()) == list(graph.vertices())
            for v in graph.vertices():
                assert view.neighbors(v) == tuple(graph.neighbors(v))
                assert view.degree(v) == graph.degree(v)
            assert view.edges == tuple(graph.edges)
            assert view.has_edge(*graph.edges[0])
            u, w = graph.edges[0]
            assert not view.has_edge(u, u)
            assert view.bfs_distances([0]) == graph.bfs_distances([0])
            sub_view, index_view = view.subgraph(range(10))
            sub_ref, index_ref = graph.subgraph(range(10))
            assert index_view == index_ref
            assert sub_view.n == sub_ref.n
            assert sorted(sub_view.edges) == sorted(sub_ref.edges)
            view.detach()
        finally:
            manager.close()

    def test_csr_from_arrays_matches_fresh_csr(self):
        _needs_shm()
        manager = SegmentManager()
        try:
            graph = random_regular(60, 4, seed=7)
            meta, view = self._exported_view(manager, graph)
            shared = view.csr()
            fresh = graph.csr()
            for field in ("indptr", "indices", "rows", "degrees", "edge_u", "edge_v"):
                assert getattr(shared, field).tolist() == getattr(fresh, field).tolist()
            assert shared.n == fresh.n and shared.m == fresh.m
            view.detach()
        finally:
            manager.close()


class TestColorPlane:
    def _meta(self, manager, capacity):
        segment = manager.create(capacity * 8)
        return {"segment": segment.name, "capacity": capacity}

    def _envelope(self, colors):
        return {"ok": True, "summary": {"payload": {"colors": colors}}}

    def test_offload_restore_roundtrip(self):
        _needs_shm()
        manager = SegmentManager()
        try:
            meta = self._meta(manager, 8)
            colors = [5, 1, 3, 2, 0, 4]
            envelope = self._envelope(list(colors))
            offload_colors(envelope, meta)
            marker = envelope["summary"]["payload"]["colors"]
            assert marker == {COLORS_KEY: len(colors)}
            restore_colors(envelope, meta, manager)
            assert envelope["summary"]["payload"]["colors"] == colors
        finally:
            manager.close()

    @pytest.mark.parametrize(
        "colors",
        [
            [0.5, 1.0],  # floats
            [0, 1, 2, 3, 4, 5, 6, 7, 8],  # longer than capacity
            {"not": "a list"},
            [1 << 70],  # overflows int64
        ],
    )
    def test_unrepresentable_colors_stay_by_value(self, colors):
        _needs_shm()
        manager = SegmentManager()
        try:
            meta = self._meta(manager, 8)
            envelope = self._envelope(colors)
            offload_colors(envelope, meta)
            assert envelope["summary"]["payload"]["colors"] == colors
        finally:
            manager.close()

    def test_failed_envelope_untouched(self):
        _needs_shm()
        manager = SegmentManager()
        try:
            meta = self._meta(manager, 8)
            envelope = {"ok": False, "summary": None, "error": {"kind": "X"}}
            offload_colors(envelope, meta)
            assert envelope["summary"] is None
        finally:
            manager.close()


class TestExportPolicy:
    def test_unique_topologies_ship_by_value(self):
        _needs_shm()
        manager = SegmentManager()
        try:
            specs = _specs(3)  # three distinct graph seeds, nothing cached
            payloads = [{"spec": s.to_dict()} for s in specs]
            plane = ShmPlane(manager)
            plane.annotate(specs, payloads)
            assert all("shm_graph" not in p for p in payloads)
            # Color segments are tiny and always created.
            assert all("shm_colors" in p for p in payloads)
            plane.close()
        finally:
            manager.close()
        assert _shm_leaks() == []

    def test_shared_topology_exports_one_refcounted_segment(self):
        _needs_shm()
        manager = SegmentManager()
        try:
            specs = _specs(3, seed=1)  # one topology, three algorithm seeds
            payloads = [{"spec": s.to_dict()} for s in specs]
            plane = ShmPlane(manager)
            plane.annotate(specs, payloads)
            names = {p["shm_graph"]["segment"] for p in payloads}
            assert len(names) == 1
            (name,) = names
            assert plane._graph_refs[name] == 3
            # Finalizing each job decrements; the segment dies with the last.
            for index in range(3):
                assert manager.get(name) is not None
                plane.finalize(index, {"ok": True, "summary": {"payload": {}}})
            assert manager.get(name) is None
        finally:
            manager.close()
        assert _shm_leaks() == []

    def test_cached_topology_exports_even_for_single_job(self):
        _needs_shm()
        specs = _specs(1)
        build_graph(specs[0].graph)  # parent cache holds the topology
        manager = SegmentManager()
        try:
            payloads = [{"spec": specs[0].to_dict()}]
            plane = ShmPlane(manager)
            plane.annotate(specs, payloads)
            assert "shm_graph" in payloads[0]
            plane.close()
        finally:
            manager.close()
        assert _shm_leaks() == []

    def test_budget_exhaustion_degrades_to_by_value(self):
        _needs_shm()
        manager = SegmentManager()
        try:
            specs = _specs(2, seed=1)
            payloads = [{"spec": s.to_dict()} for s in specs]
            plane = ShmPlane(manager, budget=8)  # too small for anything
            plane.annotate(specs, payloads)
            assert all("shm_graph" not in p for p in payloads)
            assert all("shm_colors" not in p for p in payloads)
            plane.close()
        finally:
            manager.close()


class TestRunnerLifecycle:
    def test_no_leaks_after_runner_exit(self):
        _needs_shm()
        if not _fork_available():
            pytest.skip("process mode unavailable")
        specs = _specs(4, seed=1)
        with JobRunner(workers=2, mode="process") as runner:
            outcomes = runner.map_jobs(specs)
        assert all(o.ok for o in outcomes)
        assert _shm_leaks() == []

    def test_no_leaks_after_timeout_pool_rebuild(self, scratch_algorithm):
        _needs_shm()
        if not _fork_available():
            pytest.skip("fork start method required to inherit the sleeper")

        def sleeper(graph, backend="auto", seed=1, **params):
            time.sleep(30)

        scratch_algorithm("shm_sleeper", sleeper)
        stuck = JobSpec(algorithm="shm_sleeper", graph={"family": "path", "n": 4})
        fine = _specs(2, seed=1)
        with JobRunner(workers=2, timeout=0.5, retries=0, mode="process") as runner:
            outcomes = runner.map_jobs([stuck] + fine)
            assert outcomes[0].timed_out
            assert all(o.ok for o in outcomes[1:])
        assert _shm_leaks() == []

    def test_no_leaks_in_inline_fallback(self):
        _needs_shm()
        outcomes = run_many(_specs(2, seed=1), workers=1)
        assert all(o.ok for o in outcomes)
        assert _shm_leaks() == []

    def test_workers_receive_shared_graph_view(self, scratch_algorithm):
        _needs_shm()
        if not _fork_available():
            pytest.skip("fork start method required to inherit the recorder")

        class Probe:
            def __init__(self, graph):
                self.colors = [0] * graph.n
                self.rounds = 0
                self.graph_type = type(graph).__name__

            def to_dict(self):
                return {"graph_type": self.graph_type}

        def recorder(graph, backend="auto", seed=1, **params):
            return Probe(graph)

        scratch_algorithm("shm_recorder", recorder)
        specs = [
            JobSpec(
                algorithm="shm_recorder",
                graph={"family": "regular", "n": 60, "degree": 4, "seed": 1},
                seed=s,
            )
            for s in (1, 2)
        ]
        with JobRunner(workers=2, mode="process") as runner:
            outcomes = runner.map_jobs(specs)
        assert all(o.ok for o in outcomes)
        kinds = {o.summary["payload"]["graph_type"] for o in outcomes}
        assert kinds == {"SharedGraphView"}
        assert _shm_leaks() == []

    def test_shm_disabled_is_bit_identical(self, monkeypatch):
        if not numpy_available() or not _fork_available():
            pytest.skip("process mode unavailable")
        specs = _specs(3, seed=1)
        baseline = run_many(specs, workers=2, mode="process", shm=False)
        monkeypatch.setenv("REPRO_DISABLE_SHM", "1")
        disabled = run_many(specs, workers=2, mode="process")
        monkeypatch.delenv("REPRO_DISABLE_SHM")
        enabled = run_many(specs, workers=2, mode="process")
        views = [[_deterministic(o) for o in outcomes] for outcomes in (baseline, disabled, enabled)]
        assert views[0] == views[1] == views[2]
        assert all(o.ok for o in baseline)
        assert _shm_leaks() == []

    def test_shm_true_without_support_raises(self, monkeypatch):
        if not _fork_available():
            pytest.skip("process mode unavailable")
        monkeypatch.setenv("REPRO_DISABLE_SHM", "1")
        specs = _specs(2, seed=1)
        with pytest.raises(RuntimeError, match="shared-memory"):
            run_many(specs, workers=2, mode="process", shm=True)


class TestCleanupOrdering:
    """Satellite: segment teardown stays leak-free in the ugly paths."""

    def test_forked_child_close_closes_inherited_mappings(self):
        _needs_shm()
        if not _fork_available():
            pytest.skip("fork start method required")
        manager = SegmentManager()
        try:
            segment = manager.create(64)
            name = segment.name
            read_fd, write_fd = os.pipe()
            pid = os.fork()
            if pid == 0:  # child
                os.close(read_fd)
                try:
                    manager.close()
                    # close() in the child must drop the mapping but must
                    # NOT unlink: the parent still owns the segment.
                    ok = len(manager) == 0 and os.path.exists("/dev/shm/" + name)
                    os.write(write_fd, b"1" if ok else b"0")
                finally:
                    os._exit(0)
            os.close(write_fd)
            verdict = os.read(read_fd, 1)
            os.close(read_fd)
            os.waitpid(pid, 0)
            assert verdict == b"1"
            # The parent's bookkeeping is untouched by the child's close.
            assert manager.get(name) is segment
        finally:
            manager.close()
        assert _shm_leaks() == []

    def test_cleanup_survives_a_raising_manager(self):
        _needs_shm()
        from repro.parallel.shm import _cleanup_managers

        bad = SegmentManager()
        good = SegmentManager()
        try:
            name = good.create(32).name

            def explode():
                raise BufferError("view still exported")

            bad.close = explode
            _cleanup_managers()
            # The raising manager must not stop the healthy one.
            assert name not in _shm_leaks()
        finally:
            del bad.close
            bad.close()
            good.close()
        assert _shm_leaks() == []

    def test_partition_runner_releases_halo_segments(self):
        _needs_shm()
        if not _fork_available():
            pytest.skip("process mode unavailable")
        import tempfile

        from repro.core.ag import AdditiveGroupColoring
        from repro.oocore.engine import OocoreColoringEngine
        from repro.oocore.writers import shard_static_graph

        graph = random_regular(80, 5, seed=3)
        sharded = shard_static_graph(
            graph, tempfile.mkdtemp(prefix="shm-partition-test-"), shards=4
        )
        result = OocoreColoringEngine(sharded, workers=2).run(
            AdditiveGroupColoring(), list(range(80))
        )
        assert len(result.int_colors) == 80
        assert _shm_leaks() == []

    def test_partition_runner_cleans_up_after_worker_failure(self):
        _needs_shm()
        if not _fork_available():
            pytest.skip("process mode unavailable")
        import tempfile

        from repro.core.ag import AdditiveGroupColoring
        from repro.errors import ImproperColoringError
        from repro.oocore.engine import OocoreColoringEngine
        from repro.oocore.writers import shard_static_graph

        graph = random_regular(60, 4, seed=2)
        sharded = shard_static_graph(
            graph, tempfile.mkdtemp(prefix="shm-partition-test-"), shards=4
        )
        engine = OocoreColoringEngine(
            sharded, workers=2, check_proper_each_round=True
        )
        with pytest.raises(ImproperColoringError):
            engine.run(
                AdditiveGroupColoring(), [0] * 60, in_palette_size=60
            )
        assert _shm_leaks() == []
