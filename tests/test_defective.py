"""Tests for defective colorings (vertex and Kuhn's edge variant)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import coloring_defect, edge_coloring_defect
from repro.defective import DefectiveLinialColoring, kuhn_defective_edge_coloring
from repro.graphgen import (
    complete_graph,
    cycle_graph,
    gnp_graph,
    path_graph,
    random_regular,
    star_graph,
)
from repro.runtime import ColoringEngine
from tests.conftest import id_coloring


class TestDefectiveVertexColoring:
    @pytest.mark.parametrize("tolerance", [1, 2, 4])
    def test_defect_within_planned_bound(self, tolerance):
        graph = random_regular(60, 8, seed=1)
        engine = ColoringEngine(graph)
        stage = DefectiveLinialColoring(tolerance)
        result = engine.run(stage, id_coloring(graph))
        defect = coloring_defect(graph, result.int_colors)
        assert defect <= stage.defect_bound
        assert max(result.int_colors) < stage.out_palette_size

    def test_palette_shrinks_with_tolerance(self):
        graph = random_regular(64, 16, seed=2)
        palettes = {}
        for tolerance in (1, 4, 16):
            stage = DefectiveLinialColoring(tolerance)
            ColoringEngine(graph).run(stage, id_coloring(graph))
            palettes[tolerance] = stage.out_palette_size
        assert palettes[16] <= palettes[4] <= palettes[1]

    def test_target_palette_is_quadratic_in_delta_over_p(self):
        graph = random_regular(64, 16, seed=3)
        delta = graph.max_degree
        for tolerance in (2, 4):
            stage = DefectiveLinialColoring(tolerance)
            ColoringEngine(graph).run(stage, id_coloring(graph))
            r = -(-delta // tolerance)
            assert stage.out_palette_size <= (4 * r + 10) ** 2

    def test_tolerance_one_still_bounded(self):
        graph = gnp_graph(40, 0.15, seed=4)
        stage = DefectiveLinialColoring(1)
        result = ColoringEngine(graph).run(stage, id_coloring(graph))
        assert coloring_defect(graph, result.int_colors) <= stage.defect_bound

    def test_invalid_tolerance(self):
        with pytest.raises(ValueError):
            DefectiveLinialColoring(0)

    def test_rounds_are_log_star_plus_constant(self):
        graph = cycle_graph(200)
        stage = DefectiveLinialColoring(2)
        result = ColoringEngine(graph).run(stage, id_coloring(graph))
        from repro.mathutil import log_star

        assert result.rounds_used <= log_star(graph.n) + 8

    @given(st.integers(min_value=0, max_value=10 ** 6))
    @settings(max_examples=20, deadline=None)
    def test_random_graphs(self, seed):
        rng = random.Random(seed)
        n = rng.randint(4, 40)
        graph = gnp_graph(n, rng.uniform(0, 0.3), seed=seed)
        tolerance = rng.randint(1, 5)
        stage = DefectiveLinialColoring(tolerance)
        result = ColoringEngine(graph).run(stage, id_coloring(graph))
        assert coloring_defect(graph, result.int_colors) <= stage.defect_bound
        assert max(result.int_colors) < stage.out_palette_size


class TestKuhnDefectiveEdgeColoring:
    @pytest.mark.parametrize(
        "graph",
        [
            path_graph(12),
            cycle_graph(15),
            star_graph(9),
            complete_graph(7),
            gnp_graph(30, 0.2, seed=1),
            random_regular(24, 5, seed=2),
        ],
        ids=["path", "cycle", "star", "clique", "gnp", "regular"],
    )
    def test_two_defective_pairs(self, graph):
        colors = kuhn_defective_edge_coloring(graph)
        assert set(colors) == set(graph.edges)
        delta = graph.max_degree
        for i, j in colors.values():
            assert 0 <= i < max(1, delta) and 0 <= j < max(1, delta)
        # At each endpoint at most one *other* incident edge shares the color.
        assert edge_coloring_defect(graph, colors) <= 1

    def test_color_classes_are_paths_and_cycles(self):
        graph = gnp_graph(40, 0.2, seed=3)
        colors = kuhn_defective_edge_coloring(graph)
        by_color = {}
        for edge, color in colors.items():
            by_color.setdefault(color, []).append(edge)
        for edges in by_color.values():
            # Each vertex is met by at most 2 edges of the class.
            count = {}
            for u, v in edges:
                count[u] = count.get(u, 0) + 1
                count[v] = count.get(v, 0) + 1
            assert all(c <= 2 for c in count.values())

    def test_outgoing_incoming_disjointness(self):
        """At any vertex, outgoing edges get distinct i; incoming distinct j."""
        graph = random_regular(20, 4, seed=4)
        colors = kuhn_defective_edge_coloring(graph)
        ids = graph.ids
        for v in graph.vertices():
            out_is, in_js = [], []
            for u in graph.neighbors(v):
                key = (v, u) if v < u else (u, v)
                i, j = colors[key]
                if ids[v] < ids[u]:
                    out_is.append(i)
                else:
                    in_js.append(j)
            assert len(out_is) == len(set(out_is))
            assert len(in_js) == len(set(in_js))

    def test_empty_graph(self):
        from repro.runtime.graph import StaticGraph

        assert kuhn_defective_edge_coloring(StaticGraph(3, [])) == {}
