"""Golden-output regression tests.

The algorithms are fully deterministic, so fixed seeds pin down exact
outputs.  Any change to these values means an (intentional or not) change
to algorithm behavior — update deliberately.
"""

from repro import delta_plus_one_coloring, delta_plus_one_exact_no_reduction
from repro.core import AdditiveGroupColoring, ThreeDimensionalAG
from repro.edge import edge_coloring_congest
from repro.graphgen import cycle_graph, path_graph, random_regular
from repro.runtime import ColoringEngine


class TestGoldenOutputs:
    def test_ag_on_small_cycle(self):
        graph = cycle_graph(8)
        engine = ColoringEngine(graph)
        stage = AdditiveGroupColoring()
        run = engine.run(stage, list(range(8)))
        assert stage.q == 5
        assert run.int_colors == [0, 1, 2, 3, 4, 0, 1, 2]
        assert run.rounds_used == 1

    def test_3ag_on_small_path(self):
        graph = path_graph(6)
        engine = ColoringEngine(graph)
        stage = ThreeDimensionalAG()
        run = engine.run(stage, list(range(6)))
        assert stage.p == 7
        assert run.int_colors == [0, 1, 2, 3, 4, 5]
        assert run.rounds_used == 0  # colors < p are final triples already

    def test_pipeline_on_seeded_regular_graph(self):
        graph = random_regular(24, 4, seed=7)
        result = delta_plus_one_coloring(graph)
        assert result.total_rounds == 8
        assert result.colors == [
            0, 1, 2, 3, 4, 1, 1, 2, 0, 1, 0, 0,
            2, 2, 3, 4, 0, 1, 1, 3, 3, 0, 2, 3,
        ]

    def test_exact_pipeline_on_seeded_regular_graph(self):
        graph = random_regular(24, 4, seed=7)
        result = delta_plus_one_exact_no_reduction(graph)
        assert result.total_rounds == 9
        assert result.colors == [
            0, 1, 2, 3, 4, 0, 1, 2, 3, 1, 1, 0,
            2, 2, 3, 4, 1, 1, 4, 3, 4, 0, 2, 3,
        ]

    def test_edge_coloring_on_small_cycle(self):
        graph = cycle_graph(6)
        result = edge_coloring_congest(graph)
        assert result.palette_size == 3
        assert result.edge_colors == {
            (0, 1): 0,
            (0, 5): 2,
            (1, 2): 2,
            (2, 3): 0,
            (3, 4): 1,
            (4, 5): 0,
        }
