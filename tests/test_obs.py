"""Tests for the structured telemetry layer (repro.obs) and the bench
regression gate built on top of it."""

import io
import json
import os
import sys

import pytest

from repro import obs
from repro.cli import main
from repro.core import AdditiveGroupColoring
from repro.core.pipeline import delta_plus_one_coloring
from repro.graphgen import circulant_graph, random_regular
from repro.obs.core import NullTelemetry, Telemetry, _NULL_SPAN
from repro.obs.exporters import (
    comparable_view,
    prometheus_text,
    read_jsonl,
    summary_table,
    write_jsonl,
)
from repro.runtime import ColoringEngine
from repro.runtime.backends import resolve_backend
from repro.runtime.csr import numpy_available
from repro.runtime.metrics import MetricsLog, RoundMetrics

BENCH_DIR = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "benchmarks")
if BENCH_DIR not in sys.path:
    sys.path.insert(0, BENCH_DIR)

import check_regression  # noqa: E402

requires_numpy = pytest.mark.requires_numpy


def run_cli(argv):
    out = io.StringIO()
    code = main(argv, out=out)
    return code, out.getvalue()


class TestTelemetryCore:
    def test_counters_aggregate_by_name_and_tags(self):
        tel = Telemetry()
        tel.counter("runs", stage="ag")
        tel.counter("runs", 4, stage="ag")
        tel.counter("runs", stage="linial")
        assert tel.counter_value("runs", stage="ag") == 5
        assert tel.counter_value("runs", stage="linial") == 1
        assert tel.counter_value("runs", stage="missing") == 0

    def test_gauges_last_write_wins(self):
        tel = Telemetry()
        tel.gauge("bits", 7)
        tel.gauge("bits", 12)
        assert tel.snapshot()["gauges"] == [
            {"name": "bits", "tags": {}, "value": 12}
        ]

    def test_histograms_aggregate(self):
        tel = Telemetry()
        for value in (2.0, 4.0, 6.0):
            tel.histogram("radius", value)
        (row,) = tel.snapshot()["histograms"]
        assert row["count"] == 3
        assert row["total"] == 12.0
        assert row["min"] == 2.0
        assert row["max"] == 6.0
        assert row["mean"] == 4.0

    def test_spans_nest_and_record_paths(self):
        tel = Telemetry()
        with tel.span("outer"):
            with tel.span("inner", stage="ag") as inner:
                inner.set(rounds=3)
        paths = [e["path"] for e in tel.events_of("span")]
        assert paths == ["outer/inner", "outer"]
        inner_event = tel.events_of("span")[0]
        assert inner_event["stage"] == "ag"
        assert inner_event["rounds"] == 3
        assert inner_event["seconds"] >= 0.0
        # Span durations feed the span.<name> histograms.
        names = {row["name"] for row in tel.snapshot()["histograms"]}
        assert names == {"span.outer", "span.inner"}

    def test_span_records_error_type(self):
        tel = Telemetry()
        with pytest.raises(ValueError):
            with tel.span("failing"):
                raise ValueError("boom")
        (record,) = tel.events_of("span")
        assert record["error"] == "ValueError"

    def test_events_are_ordered(self):
        tel = Telemetry()
        tel.event("a", x=1)
        tel.event("b", x=2)
        assert [e["seq"] for e in tel.events] == [0, 1]


class TestNullCollector:
    def test_default_collector_is_disabled(self):
        tel = obs.active()
        assert isinstance(tel, NullTelemetry)
        assert not tel.enabled

    def test_noop_span_is_shared_and_nests(self):
        tel = NullTelemetry()
        outer = tel.span("outer", stage="x")
        inner = tel.span("inner")
        assert outer is inner is _NULL_SPAN
        with outer:
            with inner as sp:
                sp.set(rounds=1)

    def test_noop_collector_records_nothing_during_a_run(self):
        graph = random_regular(24, 4, seed=9)
        assert isinstance(obs.active(), NullTelemetry)
        delta_plus_one_coloring(graph)
        assert obs.active().snapshot()["counters"] == []

    def test_capture_restores_previous_collector(self):
        before = obs.active()
        with obs.capture() as tel:
            assert obs.active() is tel
            assert tel.enabled
        assert obs.active() is before

    def test_configure_and_disable(self):
        tel = obs.configure()
        try:
            assert obs.active() is tel
        finally:
            previous = obs.disable()
        assert previous is tel
        assert not obs.active().enabled


class TestEngineTelemetry:
    def test_run_record_matches_metrics_exactly(self):
        # Acceptance point: n=2000, Delta=32 — the JSONL record's totals and
        # per-round rows must equal MetricsLog bit for bit.
        graph = circulant_graph(2000, tuple(range(1, 17)))
        assert graph.max_degree == 32
        with obs.capture() as tel:
            result = delta_plus_one_coloring(graph)
        runs = tel.events_of("engine.run")
        assert len(runs) == 3  # linial, additive-group, standard-reduction
        for record, (stage, stage_result) in zip(runs, result.stage_results):
            metrics = stage_result.metrics
            assert record["stage"] == stage.name
            assert record["rounds_used"] == stage_result.rounds_used
            assert record["total_messages"] == metrics.total_messages
            assert record["total_bits"] == metrics.total_bits
            assert len(record["rounds"]) == len(metrics.rounds)
            for row, round_metrics in zip(record["rounds"], metrics.rounds):
                assert row["round"] == round_metrics.round_index
                assert row["messages"] == round_metrics.messages
                assert row["bits"] == round_metrics.bits
                assert row["changed"] == round_metrics.changed_vertices
                assert 0 <= row["finalized"] <= graph.n
                assert row["conflicts"] >= 0
        # The pipeline summary agrees with the stage records.
        (pipeline_record,) = tel.events_of("pipeline.run")
        assert pipeline_record["total_messages"] == result.total_messages
        assert pipeline_record["total_bits"] == result.total_bits
        assert pipeline_record["total_rounds"] == result.total_rounds

    def test_per_stage_spans_present(self):
        graph = random_regular(40, 6, seed=3)
        with obs.capture() as tel:
            delta_plus_one_coloring(graph)
        spans = tel.events_of("span")
        stage_spans = [s for s in spans if s["name"] == "pipeline.stage"]
        assert [s["stage"] for s in stage_spans] == [
            "linial",
            "additive-group",
            "standard-reduction",
        ]
        assert all(s["path"] == "pipeline.run/pipeline.stage" for s in stage_spans)
        assert all("handoff" in s and "out_palette" in s for s in stage_spans)
        assert spans[-1]["name"] == "pipeline.run"

    def test_last_round_is_conflict_free_and_fully_final(self):
        graph = random_regular(30, 4, seed=5)
        with obs.capture() as tel:
            engine = ColoringEngine(graph)
            engine.run(AdditiveGroupColoring(), list(range(graph.n)))
        (record,) = tel.events_of("engine.run")
        assert record["backend"] == "reference"
        last = record["rounds"][-1]
        assert last["conflicts"] == 0
        assert last["finalized"] == graph.n

    @staticmethod
    def _deterministic_records(tel):
        # Events, with timing/backend fields stripped, plus the snapshot's
        # counters and gauges.  Histograms stay out: engine.run_seconds and
        # the span.* duration histograms aggregate wall-clock values that
        # legitimately differ between backends.
        snapshot = tel.snapshot()
        return comparable_view(
            list(tel.events)
            + [{"counters": snapshot["counters"], "gauges": snapshot["gauges"]}]
        )

    @requires_numpy
    def test_telemetry_identical_across_backends(self):
        if not numpy_available():
            pytest.skip("NumPy unavailable")
        graph = circulant_graph(300, (1, 2, 3, 4))
        with obs.capture() as ref_tel:
            delta_plus_one_coloring(graph, backend="reference")
        with obs.capture() as bat_tel:
            delta_plus_one_coloring(graph, backend="batch")
        assert self._deterministic_records(ref_tel) == self._deterministic_records(
            bat_tel
        )

    @requires_numpy
    def test_fallback_to_scalar_is_reported(self):
        if not numpy_available():
            pytest.skip("NumPy unavailable")
        from repro.baselines import KuhnWattenhoferReduction

        class ScalarOnlyKW(KuhnWattenhoferReduction):
            step_batch = None  # opt out of the inherited batch kernel

        graph = random_regular(24, 4, seed=11)
        engine = resolve_backend("engine", "batch")(graph)
        stage = ScalarOnlyKW()
        with obs.capture() as tel:
            engine.run(stage, [v % 7 for v in range(graph.n)], in_palette_size=7)
        (fallback,) = tel.events_of("engine.fallback")
        assert fallback["reason"] == "no-step-batch"
        assert tel.counter_value("engine.fallback_scalar", stage=stage.name) == 1
        (run_record,) = tel.events_of("engine.run")
        assert run_record["backend"] == "reference"


class TestSelfStabTelemetry:
    def _engine(self, seed=21, backend="reference"):
        from repro.selfstab import SelfStabColoring
        from tests.test_selfstab_coloring import build_dynamic

        graph = build_dynamic(24, 4, 0.2, seed=seed)
        algorithm = SelfStabColoring(24, 4)
        return resolve_backend("selfstab", backend)(graph, algorithm)

    def test_stabilization_record(self):
        engine = self._engine()
        with obs.capture() as tel:
            rounds = engine.run_to_quiescence()
        (record,) = tel.events_of("selfstab.run")
        assert record["rounds_used"] == rounds
        assert record["stabilized"] is True
        assert record["legal"] is True
        assert record["max_message_bits"] == engine.max_message_bits
        assert len(record["rounds"]) == rounds
        assert record["rounds"][-1]["changed"] == 0
        (span,) = tel.events_of("span")
        assert span["name"] == "selfstab.stabilize"

    def test_corruption_events_and_radius_histogram(self):
        engine = self._engine(seed=22)
        engine.run_to_quiescence()
        victim = engine.graph.vertices()[0]
        with obs.capture() as tel:
            engine.corrupt(victim, ("junk",))
            engine.reset_touched()
            engine.run_to_quiescence()
            engine.adjustment_radius([victim])
        assert tel.counter_value(
            "selfstab.corruptions", algorithm=engine.algorithm.name
        ) == 1
        (corrupt_event,) = tel.events_of("selfstab.corrupt")
        assert corrupt_event["vertex"] == victim
        radii = [
            row
            for row in tel.snapshot()["histograms"]
            if row["name"] == "selfstab.adjustment_radius"
        ]
        assert len(radii) == 1 and radii[0]["count"] == 1

    @requires_numpy
    def test_selfstab_telemetry_identical_across_backends(self):
        if not numpy_available():
            pytest.skip("NumPy unavailable")
        records = {}
        for backend in ("reference", "batch"):
            engine = self._engine(seed=23, backend=backend)
            with obs.capture() as tel:
                engine.run_to_quiescence()
            snapshot = tel.snapshot()
            records[backend] = comparable_view(
                list(tel.events)
                + [{"counters": snapshot["counters"], "gauges": snapshot["gauges"]}]
            )
            # SelfStabColoring is batch-capable: the batch engine must not
            # silently route rounds through the scalar fallback.
            assert tel.counter_value(
                "selfstab.fallback_scalar", algorithm=engine.algorithm.name
            ) == 0
        assert records["reference"] == records["batch"]


class TestExporters:
    def _collect(self):
        graph = random_regular(24, 4, seed=13)
        with obs.capture() as tel:
            delta_plus_one_coloring(graph)
        return tel

    def test_jsonl_round_trips(self, tmp_path):
        tel = self._collect()
        path = tmp_path / "run.jsonl"
        lines = write_jsonl(tel, str(path))
        raw = path.read_text().splitlines()
        assert len(raw) == lines == len(tel.events) + 1
        records = [json.loads(line) for line in raw]
        assert records[-1]["type"] == "snapshot"
        assert read_jsonl(str(path)) == records

    def test_jsonl_accepts_handles(self):
        tel = self._collect()
        sink = io.StringIO()
        write_jsonl(tel, sink)
        records = read_jsonl(io.StringIO(sink.getvalue()))
        assert records[-1]["type"] == "snapshot"

    def test_prometheus_text(self):
        tel = self._collect()
        text = prometheus_text(tel)
        assert '# TYPE repro_engine_runs counter' in text
        assert 'repro_engine_runs{stage="additive-group"} 1' in text
        assert "repro_span_pipeline_run_count" in text
        assert "repro_span_pipeline_run_sum" in text

    def test_summary_table(self):
        tel = self._collect()
        text = summary_table(tel)
        assert "engine runs" in text
        assert "additive-group" in text
        assert "pipeline.run/pipeline.stage" in text
        assert "counters" in text

    def test_summary_table_empty_stream(self):
        assert summary_table([]) == "no telemetry records\n"

    def test_comparable_view_strips_nondeterminism(self):
        records = [
            {
                "type": "engine.run",
                "backend": "batch",
                "wall_seconds": 0.5,
                "rounds": [{"round": 0, "seconds": 0.1, "changed": 3}],
            }
        ]
        (stripped,) = comparable_view(records)
        assert stripped == {"type": "engine.run", "rounds": [{"round": 0, "changed": 3}]}


class TestMetricsDetail:
    def _log(self):
        log = MetricsLog()
        log.record(RoundMetrics(0, 10, 40, 5))
        log.record(RoundMetrics(1, 10, 40, 2))
        return log

    def test_detail_false_omits_rounds(self):
        log = self._log()
        summary = log.to_dict(detail=False)
        assert "rounds" not in summary
        assert summary["total_rounds"] == 2
        assert summary["total_messages"] == 20
        assert summary["total_bits"] == 80

    def test_detail_default_keeps_rounds(self):
        log = self._log()
        assert len(log.to_dict()["rounds"]) == 2

    def test_cli_json_uses_detail_false(self):
        code, text = run_cli(["color", "--n", "24", "--degree", "4", "--json"])
        assert code == 0
        payload = json.loads(text)
        for stage in payload["stages"]:
            assert "rounds" not in stage["metrics"]
            assert "total_messages" in stage["metrics"]
        assert payload["total_messages"] == sum(
            s["metrics"]["total_messages"] for s in payload["stages"]
        )


class TestCLITelemetry:
    def test_color_telemetry_flag(self, tmp_path):
        path = tmp_path / "run.jsonl"
        code, text = run_cli(
            ["color", "--n", "48", "--degree", "6", "--telemetry", str(path)]
        )
        assert code == 0
        assert "telemetry: wrote" in text
        records = read_jsonl(str(path))
        assert any(r["type"] == "engine.run" for r in records)
        assert any(r["type"] == "pipeline.run" for r in records)
        assert records[-1]["type"] == "snapshot"
        # The global collector is restored to the no-op one afterwards.
        assert not obs.active().enabled

    def test_selfstab_telemetry_flag(self, tmp_path):
        path = tmp_path / "selfstab.jsonl"
        code, text = run_cli(
            ["selfstab", "--n", "24", "--delta", "4", "--bursts", "1",
             "--corruptions", "4", "--telemetry", str(path)]
        )
        assert code == 0
        records = read_jsonl(str(path))
        kinds = {r["type"] for r in records}
        assert "selfstab.run" in kinds
        assert "selfstab.corrupt" in kinds

    def test_json_output_stays_pure_json(self, tmp_path):
        path = tmp_path / "run.jsonl"
        code, text = run_cli(
            ["color", "--n", "24", "--degree", "4", "--json",
             "--telemetry", str(path)]
        )
        assert code == 0
        json.loads(text)  # no telemetry note mixed into the payload
        assert path.exists()

    def test_obs_summary_and_prom(self, tmp_path):
        path = tmp_path / "run.jsonl"
        run_cli(["color", "--n", "48", "--degree", "6", "--telemetry", str(path)])
        code, text = run_cli(["obs", "summary", str(path)])
        assert code == 0
        assert "engine runs" in text
        code, text = run_cli(["obs", "prom", str(path)])
        assert code == 0
        assert "repro_engine_runs" in text

    def test_obs_prom_without_snapshot_fails(self, tmp_path):
        path = tmp_path / "broken.jsonl"
        path.write_text('{"type": "engine.run"}\n')
        code, text = run_cli(["obs", "prom", str(path)])
        assert code == 1


class TestRegressionGate:
    BASE = {
        "benchmark": "engine-speed",
        "entries": [
            {
                "n": 2000, "delta": 16, "m": 16000, "rounds": 2,
                "batch_seconds": 0.01, "speedup": 10.0,
            }
        ],
    }

    def _measured(self, **overrides):
        entry = dict(self.BASE["entries"][0])
        entry.update(overrides)
        return [entry]

    def test_within_tolerance_passes(self):
        failures, _ = check_regression.compare(
            "engine", self.BASE["entries"],
            self._measured(batch_seconds=0.012, speedup=9.0), tolerance=0.5,
        )
        assert failures == []

    def test_wall_clock_regression_fails(self):
        failures, _ = check_regression.compare(
            "engine", self.BASE["entries"],
            self._measured(batch_seconds=0.02), tolerance=0.5,
        )
        assert any("wall-clock regression" in f for f in failures)

    def test_speedup_regression_fails(self):
        failures, _ = check_regression.compare(
            "engine", self.BASE["entries"],
            self._measured(speedup=5.0), tolerance=0.5,
        )
        assert any("speedup regression" in f for f in failures)

    def test_deterministic_drift_ignores_tolerance(self):
        failures, _ = check_regression.compare(
            "engine", self.BASE["entries"],
            self._measured(rounds=3), tolerance=100.0,
        )
        assert any("deterministic field" in f for f in failures)

    def test_missing_baseline_entry_is_skipped(self):
        failures, lines = check_regression.compare(
            "engine", self.BASE["entries"],
            self._measured(n=4000), tolerance=0.5,
        )
        assert failures == []
        assert any("no baseline entry" in line for line in lines)

    def test_structural_validation_catches_bad_baseline(self, tmp_path):
        (tmp_path / "BENCH_engine.json").write_text("{not json")
        payload, errors = check_regression.load_baseline("engine", str(tmp_path))
        assert payload is None and errors
        (tmp_path / "BENCH_engine.json").write_text('{"entries": []}')
        payload, errors = check_regression.load_baseline("engine", str(tmp_path))
        assert errors

    @requires_numpy
    def test_doctored_baseline_fails_end_to_end(self, tmp_path):
        if not numpy_available():
            pytest.skip("NumPy unavailable")
        # Doctor the committed baseline far below any plausible measurement
        # (10x, not 2x — cold-vs-warm run variance on a loaded box can reach
        # 1.5x, exactly the tolerance margin); the gate must exit non-zero.
        measured = check_regression.measure("engine", [(2000, 16)])
        with open(os.path.join(check_regression.REPO_ROOT, "BENCH_engine.json")) as fh:
            baseline = json.load(fh)
        for entry in baseline["entries"]:
            for m in measured:
                if (entry["n"], entry["delta"]) == (m["n"], m["delta"]):
                    entry["batch_seconds"] = m["batch_seconds"] / 10.0
        (tmp_path / "BENCH_engine.json").write_text(json.dumps(baseline))
        code = check_regression.main(
            ["--smoke", "--bench", "engine", "--baseline-dir", str(tmp_path)]
        )
        assert code == 1

    @requires_numpy
    def test_committed_baselines_pass_smoke(self, capsys):
        if not numpy_available():
            pytest.skip("NumPy unavailable")
        # Generous tolerance: this must hold on any healthy machine, exactly
        # like the CI gate.
        code = check_regression.main(["--smoke", "--tolerance", "4.0"])
        assert code == 0
        assert "no regressions" in capsys.readouterr().out
