"""Tests for the static MIS / maximal-matching applications."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps import (
    locally_iterative_maximal_matching,
    locally_iterative_mis,
    matching_from_edge_coloring,
    mis_from_coloring,
)
from repro.analysis import is_maximal_independent_set, is_maximal_matching
from repro.baselines import greedy_coloring
from repro.graphgen import (
    complete_graph,
    cycle_graph,
    gnp_graph,
    path_graph,
    random_regular,
    star_graph,
)
from repro.mathutil import log_star


class TestMISFromColoring:
    def test_path_sweep(self):
        graph = path_graph(6)
        colors = [0, 1, 0, 1, 0, 1]
        members, rounds = mis_from_coloring(graph, colors, 2)
        assert members == {0, 2, 4}
        assert rounds == 2

    def test_star_center_first(self):
        graph = star_graph(8)
        colors = [0] + [1] * 7
        members, _ = mis_from_coloring(graph, colors, 2)
        assert members == {0}

    def test_star_leaves_first(self):
        graph = star_graph(8)
        colors = [1] + [0] * 7
        members, _ = mis_from_coloring(graph, colors, 2)
        assert members == set(range(1, 8))

    def test_any_greedy_coloring_works(self, any_graph):
        colors = greedy_coloring(any_graph)
        members, _ = mis_from_coloring(any_graph, colors)
        assert is_maximal_independent_set(any_graph, members)


class TestLocallyIterativeMIS:
    @pytest.mark.parametrize(
        "graph",
        [
            cycle_graph(25),
            complete_graph(9),
            gnp_graph(50, 0.12, seed=1),
            random_regular(48, 6, seed=2),
        ],
        ids=["cycle", "clique", "gnp", "regular"],
    )
    def test_valid_mis(self, graph):
        result = locally_iterative_mis(graph)
        assert is_maximal_independent_set(graph, result.members)

    def test_round_bound(self):
        graph = random_regular(96, 8, seed=3)
        result = locally_iterative_mis(graph)
        assert result.sweep_rounds == graph.max_degree + 1
        assert result.total_rounds <= 10 * graph.max_degree + log_star(graph.n) + 16

    @given(st.integers(min_value=0, max_value=10 ** 6))
    @settings(max_examples=20, deadline=None)
    def test_random_graphs(self, seed):
        rng = random.Random(seed)
        n = rng.randint(1, 40)
        graph = gnp_graph(n, rng.uniform(0, 0.3), seed=seed)
        result = locally_iterative_mis(graph)
        assert is_maximal_independent_set(graph, result.members)


class TestMatchingFromEdgeColoring:
    def test_path_sweep(self):
        graph = path_graph(4)
        edge_colors = {(0, 1): 0, (1, 2): 1, (2, 3): 0}
        matched, rounds = matching_from_edge_coloring(graph, edge_colors, 2)
        assert sorted(matched) == [(0, 1), (2, 3)]
        assert rounds == 2

    def test_classes_never_conflict(self):
        from repro.edge import edge_coloring_congest

        graph = cycle_graph(8)
        # The precondition: a proper edge coloring (classes are matchings).
        edge_colors = edge_coloring_congest(graph).edge_colors
        matched, _ = matching_from_edge_coloring(graph, edge_colors)
        used = set()
        for u, v in matched:
            assert u not in used and v not in used
            used.update((u, v))
        assert is_maximal_matching(graph, matched)


class TestLocallyIterativeMatching:
    @pytest.mark.parametrize(
        "graph",
        [
            path_graph(15),
            cycle_graph(16),
            gnp_graph(30, 0.2, seed=4),
            random_regular(24, 5, seed=5),
        ],
        ids=["path", "cycle", "gnp", "regular"],
    )
    def test_valid_maximal_matching(self, graph):
        result = locally_iterative_maximal_matching(graph)
        assert is_maximal_matching(graph, result.edges)

    def test_round_accounting(self):
        graph = random_regular(40, 6, seed=6)
        result = locally_iterative_maximal_matching(graph)
        assert result.sweep_rounds <= 2 * graph.max_degree - 1
        assert result.total_rounds < 60 * graph.max_degree

    @given(st.integers(min_value=0, max_value=10 ** 6))
    @settings(max_examples=15, deadline=None)
    def test_random_graphs(self, seed):
        rng = random.Random(seed)
        n = rng.randint(2, 28)
        graph = gnp_graph(n, rng.uniform(0.05, 0.3), seed=seed)
        if graph.m == 0:
            return
        result = locally_iterative_maximal_matching(graph)
        assert is_maximal_matching(graph, result.edges)


class TestClassSweepStage:
    def test_runs_in_set_local(self):
        from repro.apps.mis import ClassSweepMIS
        from repro.baselines import greedy_coloring
        from repro.runtime import ColoringEngine, Visibility

        graph = gnp_graph(30, 0.2, seed=9)
        colors = greedy_coloring(graph)
        outputs = []
        for visibility in (Visibility.LOCAL, Visibility.SET_LOCAL):
            engine = ColoringEngine(graph, visibility=visibility)
            run = engine.run(
                ClassSweepMIS(), colors, in_palette_size=max(colors) + 1
            )
            outputs.append(run.int_colors)
        assert outputs[0] == outputs[1]
        members = {v for v in graph.vertices() if outputs[0][v] == 1}
        assert is_maximal_independent_set(graph, members)

    def test_undecided_vertex_rejected_at_decode(self):
        from repro.apps.mis import ClassSweepMIS

        stage = ClassSweepMIS()
        with pytest.raises(ValueError):
            stage.decode_final((3, None))

    def test_stage_round_accounting(self):
        from repro.apps.mis import ClassSweepMIS
        from repro.baselines import greedy_coloring
        from repro.runtime import ColoringEngine

        graph = cycle_graph(12)
        colors = greedy_coloring(graph)
        engine = ColoringEngine(graph)
        run = engine.run(ClassSweepMIS(), colors, in_palette_size=max(colors) + 1)
        assert run.rounds_used <= max(colors) + 1
