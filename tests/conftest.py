"""Shared fixtures and helpers for the test suite.

Set ``REPRO_THOROUGH=1`` to load a hypothesis profile with a 300-example
budget.  (Tests that pin their own ``@settings(max_examples=...)`` keep
their explicit budgets; rerun individual modules with
``--hypothesis-seed=random`` for fresh exploration of those.)
"""

import os

import pytest
from hypothesis import settings

from repro import graphgen
from repro.analysis import is_proper_coloring

settings.register_profile("default", settings())
settings.register_profile(
    "thorough", settings(max_examples=300, deadline=None)
)
settings.load_profile(
    "thorough" if os.environ.get("REPRO_THOROUGH") == "1" else "default"
)


def standard_graphs():
    """A representative zoo of small graphs used across test modules."""
    return [
        ("empty", graphgen.path_graph(1)),
        ("edge", graphgen.path_graph(2)),
        ("path", graphgen.path_graph(25)),
        ("cycle-even", graphgen.cycle_graph(24)),
        ("cycle-odd", graphgen.cycle_graph(25)),
        ("star", graphgen.star_graph(20)),
        ("clique", graphgen.complete_graph(9)),
        ("grid", graphgen.grid_graph(5, 6)),
        ("hypercube", graphgen.hypercube_graph(4)),
        ("tree", graphgen.random_tree(40, seed=7)),
        ("gnp-sparse", graphgen.gnp_graph(60, 0.05, seed=3)),
        ("gnp-dense", graphgen.gnp_graph(40, 0.3, seed=4)),
        ("regular", graphgen.random_regular(48, 6, seed=5)),
        ("bipartite", graphgen.random_bipartite(20, 25, 0.15, seed=6)),
        ("barbell", graphgen.barbell_of_cliques(6, 8)),
        ("caterpillar", graphgen.caterpillar_graph(8, 4)),
        ("complete-bipartite", graphgen.complete_bipartite_graph(6, 9)),
        ("circulant", graphgen.circulant_graph(30, (1, 3, 7))),
        ("disconnected", graphgen.disjoint_union(
            [graphgen.cycle_graph(7), graphgen.complete_graph(5), graphgen.path_graph(6)]
        )),
    ]


def pytest_collection_modifyitems(config, items):
    """Skip ``requires_numpy`` tests when the batch backend cannot run.

    This is the no-numpy job's switch: running the suite with NumPy absent
    (or ``REPRO_DISABLE_NUMPY=1``) must leave every remaining test green on
    the pure-Python fallback.
    """
    from repro.runtime.csr import numpy_available

    if numpy_available():
        return
    skip = pytest.mark.skip(
        reason="NumPy absent or disabled (REPRO_DISABLE_NUMPY=1)"
    )
    for item in items:
        if "requires_numpy" in item.keywords:
            item.add_marker(skip)


@pytest.fixture(params=standard_graphs(), ids=lambda pair: pair[0])
def any_graph(request):
    """Parametrized fixture running a test over the whole graph zoo."""
    return request.param[1]


def assert_proper(graph, colors, context=""):
    """Assert the coloring is proper with a helpful failure message."""
    assert is_proper_coloring(graph, colors), "improper coloring %s: %r" % (
        context,
        [(u, v) for u, v in graph.edges if colors[u] == colors[v]][:5],
    )


def id_coloring(graph):
    """The trivial n-coloring by vertex index."""
    return list(range(graph.n))
