"""Bit-serialized full-duplex edge channels.

Each directed edge carries a FIFO of pending bits; one synchronous bit-round
delivers exactly one bit per direction per edge (idle directions deliver
nothing).  Senders enqueue whole bit strings; receivers read fully-delivered
prefixes.  The network counts global bit-rounds — the Bit-Round model's time
measure — and refuses anything that is not a bit.
"""

from collections import deque

__all__ = ["BitChannelNetwork", "ChannelViolationError"]


class ChannelViolationError(RuntimeError):
    """A protocol attempted a non-bit transmission."""


class BitChannelNetwork:
    """One-bit-per-edge-per-round message fabric over a StaticGraph."""

    def __init__(self, graph):
        self.graph = graph
        self.bit_rounds = 0
        # (sender, receiver) -> pending bits / delivered bits.
        self._pending = {}
        self._delivered = {}
        for u, v in graph.edges:
            for direction in ((u, v), (v, u)):
                self._pending[direction] = deque()
                self._delivered[direction] = deque()

    # -- sending -----------------------------------------------------------------

    def send(self, sender, receiver, bits):
        """Enqueue a bit string (e.g. ``"1011"``) from sender to receiver."""
        key = (sender, receiver)
        if key not in self._pending:
            raise ChannelViolationError(
                "no channel from %r to %r" % (sender, receiver)
            )
        for bit in bits:
            if bit not in "01":
                raise ChannelViolationError("non-bit payload %r" % (bit,))
            self._pending[key].append(bit)

    def broadcast(self, sender, bits):
        """Send the same bit string to every neighbor."""
        for neighbor in self.graph.neighbors(sender):
            self.send(sender, neighbor, bits)

    # -- rounds ------------------------------------------------------------------

    def tick(self):
        """One bit-round: deliver at most one bit per direction."""
        for key, queue in self._pending.items():
            if queue:
                self._delivered[key].append(queue.popleft())
        self.bit_rounds += 1

    def drain(self):
        """Run bit-rounds until every queue is empty; return rounds used."""
        used = 0
        while any(queue for queue in self._pending.values()):
            self.tick()
            used += 1
        return used

    # -- receiving ---------------------------------------------------------------

    def receive(self, receiver, sender, count):
        """Consume exactly ``count`` delivered bits from sender's stream.

        Raises if fewer bits have arrived — a protocol logic error (reading
        ahead of the channel).
        """
        key = (sender, receiver)
        delivered = self._delivered[key]
        if len(delivered) < count:
            raise ChannelViolationError(
                "receiver %r expected %d bits from %r, only %d delivered"
                % (receiver, count, sender, len(delivered))
            )
        return "".join(delivered.popleft() for _ in range(count))

    def delivered_count(self, receiver, sender):
        """Bits delivered from sender and not yet consumed by receiver."""
        return len(self._delivered[(sender, receiver)])


def encode_int(value, width):
    """Fixed-width big-endian binary encoding."""
    if value < 0 or value >= (1 << width):
        raise ValueError("value %d does not fit in %d bits" % (value, width))
    return format(value, "0%db" % width)


def decode_int(bits):
    """Parse a big-endian binary string (empty -> 0)."""
    return int(bits, 2) if bits else 0
