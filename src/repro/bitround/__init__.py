"""A real Bit-Round execution of the Section 5 edge-coloring protocol.

The Kothapalli et al. Bit-Round model allows each vertex to send **one bit
per edge per round**.  :mod:`repro.edge.congest` accounts the protocol's bit
cost analytically; this package goes further and *runs* it: every message is
serialized into bits, pushed through :class:`~repro.bitround.channel.
BitChannelNetwork` (which structurally enforces the one-bit-per-direction-
per-round constraint), and parsed by the receiving endpoint.  The resulting
edge coloring is identical to the CONGEST pipeline's, and the global
bit-round counter realizes the ``O(Delta + log n)`` bound of Theorem 5.3 as
an actual execution rather than a ledger.
"""

from repro.bitround.channel import BitChannelNetwork, ChannelViolationError
from repro.bitround.edge_coloring import BitRoundEdgeColoringRun, run_edge_coloring_bit_protocol
from repro.bitround.vertex_coloring import (
    VertexBitProtocolRun,
    run_vertex_coloring_bit_protocol,
)

__all__ = [
    "BitChannelNetwork",
    "ChannelViolationError",
    "BitRoundEdgeColoringRun",
    "run_edge_coloring_bit_protocol",
    "VertexBitProtocolRun",
    "run_vertex_coloring_bit_protocol",
]
