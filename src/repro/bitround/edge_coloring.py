"""The Section 5 edge-coloring protocol executed bit-by-bit.

Every piece of information an endpoint uses about the other side arrives
through the :class:`~repro.bitround.channel.BitChannelNetwork` as actual
bits; both endpoints of an edge maintain replicas of the edge color that
stay synchronized *only* through those bits:

1. **ID exchange** — every vertex streams its ``ceil(log2 n)``-bit ID over
   every incident edge (skippable when IDs are pre-shared).
2. **Kuhn 2-defective coloring** — the tail streams its out-index, the head
   its in-index (``ceil(log2 Delta)`` bits each way).
3. **Cole–Vishkin** — per CV iteration, the head endpoint recomputes the
   edge's label (it is incident to the parent edge, so it holds both labels)
   and streams it to the tail; label widths shrink geometrically.
4. **AG phase** — per round each endpoint sends **one bit** ("some edge at
   my side shares our second coordinate"); the OR of the two bits drives the
   identical rotate/finalize update on both replicas.
5. **Exact hybrid phase** — per round each endpoint sends **two bits**
   (conflict-at-my-side, low-working-at-my-side) and both replicas apply the
   high/low hybrid rule.

The run records per-phase bit-round counts and asserts replica consistency;
its output is bit-identical to :func:`repro.edge.congest.
edge_coloring_congest` (tested), realizing Theorem 5.3's ``O(Delta + log n)``
Bit-Round bound as an execution.
"""

import math

from repro.bitround.channel import BitChannelNetwork, decode_int, encode_int
from repro.core.hybrid import ExactDeltaPlusOneHybrid
from repro.core.ag import ag_prime_for
from repro.defective.kuhn_edge import kuhn_defective_edge_coloring
from repro.edge.line_graph import build_line_graph
from repro.linial.cole_vishkin import cole_vishkin_three_coloring
from repro.runtime.algorithm import NetworkInfo
from repro.runtime.csr import numpy_or_none
from repro.runtime.results import Result

__all__ = ["BitRoundEdgeColoringRun", "run_edge_coloring_bit_protocol"]


def _bits(x):
    return max(1, math.ceil(math.log2(max(2, x))))


class BitRoundEdgeColoringRun:
    """Outcome of the bit-level execution."""

    def __init__(self, edge_colors, palette_size, rounds_by_phase):
        self.edge_colors = edge_colors
        self.palette_size = palette_size
        self.rounds_by_phase = dict(rounds_by_phase)

    @property
    def total_bit_rounds(self):
        """Bit-rounds summed over all phases: O(Delta + log n)."""
        return sum(self.rounds_by_phase.values())

    @property
    def rounds(self):
        """Alias of :attr:`total_bit_rounds` (the shared result protocol)."""
        return self.total_bit_rounds

    @property
    def colors(self):
        """Alias of :attr:`edge_colors` (the shared result protocol)."""
        return self.edge_colors

    @property
    def num_colors(self):
        """Distinct edge colors used (at most 2 * Delta - 1)."""
        return len(set(self.edge_colors.values()))

    def to_dict(self):
        """JSON-serializable summary; edge keys become "u-v" strings."""
        return {
            "edge_colors": {
                "%d-%d" % edge: color for edge, color in self.edge_colors.items()
            },
            "palette_size": self.palette_size,
            "rounds_by_phase": dict(self.rounds_by_phase),
            "total_bit_rounds": self.total_bit_rounds,
        }

    def __repr__(self):
        return "BitRoundEdgeColoringRun(colors=%d, bit_rounds=%d)" % (
            len(set(self.edge_colors.values())),
            self.total_bit_rounds,
        )


Result.register(BitRoundEdgeColoringRun)


class _EndpointViews:
    """The two per-endpoint replicas of every edge's state."""

    def __init__(self, graph):
        self.graph = graph
        self.state = {}  # (endpoint, edge) -> value

    def set_both(self, edge, value):
        u, v = edge
        self.state[(u, edge)] = value
        self.state[(v, edge)] = value

    def set_one(self, endpoint, edge, value):
        self.state[(endpoint, edge)] = value

    def get(self, endpoint, edge):
        return self.state[(endpoint, edge)]

    def incident_values(self, endpoint, excluding):
        for w in self.graph.neighbors(endpoint):
            edge = (endpoint, w) if endpoint < w else (w, endpoint)
            if edge != excluding:
                yield self.state[(endpoint, edge)]

    def assert_consistent(self):
        for u, v in self.graph.edges:
            edge = (u, v)
            assert self.state[(u, edge)] == self.state[(v, edge)], (
                "replica divergence on %r" % (edge,)
            )


def run_edge_coloring_bit_protocol(graph, exact=True, neighbor_ids_known=False,
                                   backend="auto"):
    """Execute the whole pipeline through bit channels.

    ``backend`` picks the execution tier: the reference tier streams every
    bit through a :class:`~repro.bitround.channel.BitChannelNetwork` and
    checks both endpoints' replicas after every round, while the batch tier
    runs the same per-phase update rules as array kernels over the line
    graph's CSR and computes the ledger from the channel's closed form
    (``drain()`` returns the widest message any direction carries).  Both
    tiers return bit-identical colors, palettes, and per-phase bit-round
    counts.

    Returns a :class:`BitRoundEdgeColoringRun`.
    """
    np = None if backend == "reference" else numpy_or_none()
    if np is not None and hasattr(graph, "csr"):
        return _batch(graph, np, exact, neighbor_ids_known)
    if np is None and backend == "batch":
        raise RuntimeError(
            "backend='batch' needs NumPy; install it with `pip install repro[fast]`"
        )
    return _reference(graph, exact, neighbor_ids_known)


def _batch(graph, np, exact, neighbor_ids_known):
    """Array-kernel tier over the line graph; ledgers via drain closed forms."""
    from repro.defective.kuhn_edge import kuhn_defective_edge_arrays
    from repro.runtime.engine import Visibility

    edges = graph.edges
    delta = graph.max_degree
    if not edges:
        return BitRoundEdgeColoringRun({}, max(1, 2 * delta - 1), {})
    rounds = {}

    # -- Phase 0: IDs (one id-width broadcast; every direction is loaded) ------
    if not neighbor_ids_known:
        rounds["id-exchange"] = _bits(graph.n)

    # -- Phase 1: Kuhn pairs (one index-width message per direction) -----------
    i_arr, j_arr = kuhn_defective_edge_arrays(graph)
    rounds["kuhn-2-defective"] = _bits(max(1, delta))
    pair_of = {
        edge: pair
        for edge, pair in zip(edges, zip(i_arr.tolist(), j_arr.tolist()))
    }

    # -- Phase 2: Cole–Vishkin (per round, the widest label crossing) ----------
    line_graph, edge_index = build_line_graph(graph, backend="batch")
    k_of, per_edge_history, max_rounds = _cv_class_histories(
        graph, pair_of, edge_index
    )
    histories = list(per_edge_history.values())
    rounds["cole-vishkin"] = sum(
        max(_bits(h[min(r, len(h) - 1)][1]) for h in histories)
        for r in range(max_rounds)
    )

    # -- Phase 3: AG, one bit per round ----------------------------------------
    base = max(1, delta)
    palette = 3 * base * base
    k_vec = np.fromiter(
        (k_of[edge] for edge in edges), dtype=np.int64, count=len(edges)
    )
    init = (i_arr * base + j_arr) * 3 + k_vec
    csr_l = line_graph.csr()
    q = ag_prime_for(palette, line_graph.max_degree)
    a = init // q
    b = init % q
    ag_rounds = 0
    while bool((a != 0).any()):
        conflict = csr_l.any_per_vertex(csr_l.gather(b) == csr_l.owner_values(b))
        b = np.where(conflict, (b + a) % q, b)
        a = np.where(conflict, a, 0)
        ag_rounds += 1
    rounds["ag"] = ag_rounds
    colors = b
    palette = q

    # -- Phase 4: exact hybrid, two bits per round ------------------------------
    if exact:
        hybrid = ExactDeltaPlusOneHybrid()
        hybrid.configure(NetworkInfo(line_graph.n, line_graph.max_degree, palette))
        state = hybrid.batch_encode_initial(colors)
        hybrid_rounds = 0
        while not bool(hybrid.batch_is_final(state).all()):
            state = hybrid.step_batch(hybrid_rounds // 2, state, csr_l,
                                      Visibility.LOCAL)
            hybrid_rounds += 2
        rounds["exact-hybrid"] = hybrid_rounds
        palette = hybrid.out_palette_size
        colors = hybrid.batch_decode_final(state)

    edge_colors = dict(zip(edges, colors.tolist()))
    return BitRoundEdgeColoringRun(edge_colors, palette, rounds)


def _reference(graph, exact, neighbor_ids_known):
    """Channel-level tier: every bit really crosses a FIFO edge channel."""
    edges = graph.edges
    delta = graph.max_degree
    if not edges:
        return BitRoundEdgeColoringRun({}, max(1, 2 * delta - 1), {})

    network = BitChannelNetwork(graph)
    rounds = {}

    # -- Phase 0: IDs ----------------------------------------------------------
    id_width = _bits(graph.n)
    known_ids = {}
    if neighbor_ids_known:
        for v in graph.vertices():
            for u in graph.neighbors(v):
                known_ids[(v, u)] = graph.ids[u]
    else:
        for v in graph.vertices():
            network.broadcast(v, encode_int(graph.ids[v], id_width))
        rounds["id-exchange"] = network.drain()
        for v in graph.vertices():
            for u in graph.neighbors(v):
                known_ids[(v, u)] = decode_int(network.receive(v, u, id_width))
                assert known_ids[(v, u)] == graph.ids[u]

    # -- Phase 1: Kuhn 2-defective pairs ----------------------------------------
    index_width = _bits(max(1, delta))
    views = _EndpointViews(graph)
    # Local, deterministic index assignment (rank of the other endpoint's ID).
    for v in graph.vertices():
        out_neighbors = sorted(
            (u for u in graph.neighbors(v) if known_ids[(v, u)] > graph.ids[v]),
            key=lambda u: known_ids[(v, u)],
        )
        in_neighbors = sorted(
            (u for u in graph.neighbors(v) if known_ids[(v, u)] < graph.ids[v]),
            key=lambda u: known_ids[(v, u)],
        )
        for rank, u in enumerate(out_neighbors):
            network.send(v, u, encode_int(rank, index_width))
            edge = (v, u) if v < u else (u, v)
            views.set_one(v, edge, ("i", rank))
        for rank, u in enumerate(in_neighbors):
            network.send(v, u, encode_int(rank, index_width))
            edge = (v, u) if v < u else (u, v)
            views.set_one(v, edge, ("j", rank))
    rounds["kuhn-2-defective"] = network.drain()
    pair_of = {}
    for u, v in edges:
        edge = (u, v)
        tail, head = (u, v) if graph.ids[u] < graph.ids[v] else (v, u)
        i_rank = views.get(tail, edge)[1]
        j_rank_received = decode_int(network.receive(tail, head, index_width))
        # The head's view: receives the tail's i.
        i_rank_received = decode_int(network.receive(head, tail, index_width))
        assert i_rank_received == i_rank
        pair_of[edge] = (i_rank, j_rank_received)
        views.set_both(edge, pair_of[edge])
    reference = kuhn_defective_edge_coloring(graph)
    assert pair_of == reference  # the local rule equals the global one

    # -- Phase 2: Cole–Vishkin over the channels ---------------------------------
    line_graph, edge_index = build_line_graph(graph)
    k_of, cv_bit_rounds = _cole_vishkin_over_channels(
        graph, network, pair_of, edge_index, views
    )
    rounds["cole-vishkin"] = cv_bit_rounds

    base = max(1, delta)
    palette = 3 * base * base
    for edge in edges:
        i, j = pair_of[edge]
        views.set_both(edge, (i * base + j) * 3 + k_of[edge])
    views.assert_consistent()

    # -- Phase 3: AG, one bit per round -------------------------------------------
    q = ag_prime_for(palette, line_graph.max_degree)
    for edge in edges:
        c = views.get(edge[0], edge)
        views.set_both(edge, (c // q, c % q))
    ag_rounds = 0
    while any(views.get(u, (u, v))[0] != 0 for u, v in edges):
        own_test = {}
        for u, v in edges:
            edge = (u, v)
            _, b = views.get(u, edge)
            for endpoint, other in ((u, v), (v, u)):
                conflict_here = any(
                    nb == b for _, nb in views.incident_values(endpoint, edge)
                )
                own_test[(endpoint, edge)] = conflict_here
                network.send(endpoint, other, "1" if conflict_here else "0")
        ag_rounds += network.drain()
        pending = {}
        for u, v in edges:
            edge = (u, v)
            a, b = views.get(u, edge)
            bit_from_v = network.receive(u, v, 1)
            bit_from_u = network.receive(v, u, 1)
            conflict = (
                bit_from_v == "1"
                or bit_from_u == "1"
                or own_test[(u, edge)]
                or own_test[(v, edge)]
            )
            pending[edge] = (a, (b + a) % q) if conflict else (0, b)
        for edge, state in pending.items():
            views.set_both(edge, state)
        views.assert_consistent()
    rounds["ag"] = ag_rounds
    for edge in edges:
        views.set_both(edge, views.get(edge[0], edge)[1])
    palette = q

    # -- Phase 4: exact hybrid, two bits per round ---------------------------------
    if exact:
        hybrid = ExactDeltaPlusOneHybrid()
        hybrid.configure(NetworkInfo(line_graph.n, line_graph.max_degree, palette))
        for edge in edges:
            views.set_both(edge, hybrid.encode_initial(views.get(edge[0], edge)))
        hybrid_rounds = 0
        while any(not hybrid.is_final(views.get(u, (u, v))) for u, v in edges):
            own_test = {}
            for u, v in edges:
                edge = (u, v)
                state = views.get(u, edge)
                for endpoint, other in ((u, v), (v, u)):
                    conflict_here, low_here = _hybrid_local_tests(
                        hybrid, state, views.incident_values(endpoint, edge)
                    )
                    own_test[(endpoint, edge)] = (conflict_here, low_here)
                    network.send(
                        endpoint,
                        other,
                        ("1" if conflict_here else "0")
                        + ("1" if low_here else "0"),
                    )
            hybrid_rounds += network.drain()
            pending = {}
            for u, v in edges:
                edge = (u, v)
                state = views.get(u, edge)
                from_v = network.receive(u, v, 2)
                from_u = network.receive(v, u, 2)
                local_u = own_test[(u, edge)]
                local_v = own_test[(v, edge)]
                conflict = (
                    from_v[0] == "1"
                    or from_u[0] == "1"
                    or local_u[0]
                    or local_v[0]
                )
                low_working = (
                    from_v[1] == "1"
                    or from_u[1] == "1"
                    or local_u[1]
                    or local_v[1]
                )
                pending[edge] = _hybrid_apply(hybrid, state, conflict, low_working)
            for edge, state in pending.items():
                views.set_both(edge, state)
            views.assert_consistent()
        rounds["exact-hybrid"] = hybrid_rounds
        palette = hybrid.out_palette_size
        for edge in edges:
            views.set_both(edge, hybrid.decode_final(views.get(edge[0], edge)))

    edge_colors = {edge: views.get(edge[0], edge) for edge in edges}
    return BitRoundEdgeColoringRun(edge_colors, palette, rounds)


def _cv_class_histories(graph, pair_of, edge_index):
    """Per-class CV with full history; the rounds each label update crossed.

    Returns ``(k_of, per_edge_history, max_rounds)`` where
    ``per_edge_history[edge]`` is the list of ``(label, space)`` the edge's
    head computed per CV round.  Shared by both execution tiers: the
    reference tier ships every history row over the channel, the batch tier
    folds the same rows into the ledger closed form.
    """
    from collections import defaultdict

    classes = defaultdict(list)
    for edge, pair in pair_of.items():
        classes[pair].append(edge)
    incident_by_class = defaultdict(lambda: defaultdict(list))
    for edge, pair in pair_of.items():
        incident_by_class[pair][edge[0]].append(edge)
        incident_by_class[pair][edge[1]].append(edge)

    k_of = {}
    label_space = max(2, len(graph.edges))
    per_edge_history = {}  # edge -> list of (label, space)
    max_rounds = 0
    for pair, class_edges in classes.items():
        index = {edge: i for i, edge in enumerate(sorted(class_edges))}
        parents = [None] * len(class_edges)
        for edge, i in index.items():
            u, v = edge
            head = v if graph.ids[v] > graph.ids[u] else u
            others = [e for e in incident_by_class[pair][head] if e != edge]
            if others:
                parents[i] = index[others[0]]
        labels = [edge_index[edge] for edge in sorted(class_edges)]
        colors, _, history = cole_vishkin_three_coloring(
            parents, labels, label_space, return_history=True
        )
        for edge, i in index.items():
            k_of[edge] = colors[i]
            per_edge_history[edge] = [(row[i], space) for row, space in history]
        max_rounds = max(max_rounds, len(history))
    return k_of, per_edge_history, max_rounds


def _cole_vishkin_over_channels(graph, network, pair_of, edge_index, views):
    """CV labels computed per class; every label update crosses the channel.

    The head endpoint of each edge (incident to the parent edge, so it holds
    both labels) owns the label computation; per CV round it streams the
    *actual updated label* to the tail, whose replica must match — asserted
    after every round.  Label widths follow the shrinking space schedule, so
    the bit-rounds consumed equal Lemma 5.2's ledger.
    """
    k_of, per_edge_history, max_rounds = _cv_class_histories(
        graph, pair_of, edge_index
    )

    # Ship every round's label from head to tail; the tail replica decodes
    # and must agree with the computed history.
    total = 0
    for r in range(max_rounds):
        widths = {}
        for edge in graph.edges:
            history = per_edge_history[edge]
            label, space = history[min(r, len(history) - 1)]
            width = _bits(space)
            u, v = edge
            head = v if graph.ids[v] > graph.ids[u] else u
            tail = u if head == v else v
            network.send(head, tail, encode_int(label, width))
            widths[edge] = (tail, head, width, label)
        total += network.drain()
        for edge, (tail, head, width, label) in widths.items():
            received = decode_int(network.receive(tail, head, width))
            assert received == label
    return k_of, total


def _hybrid_local_tests(hybrid, state, incident_states):
    """(conflict-at-this-endpoint, low-working-at-this-endpoint)."""
    incident_states = tuple(incident_states)  # consumed twice below
    tag, b, a = state
    low_here = any(nt == hybrid.LOW and nb == 1 for nt, nb, _ in incident_states)
    if tag == hybrid.LOW:
        conflict_here = any(
            nt == hybrid.LOW and na == a for nt, _, na in incident_states
        )
    else:
        conflict_here = any(
            (nt == hybrid.HIGH and na == a)
            or (nt == hybrid.LOW and nb == 0 and na == a)
            for nt, nb, na in incident_states
        )
    return conflict_here, low_here


def _hybrid_apply(hybrid, state, conflict, low_working):
    """The hybrid update from the OR-combined endpoint tests."""
    tag, b, a = state
    n, p = hybrid.n_colors, hybrid.p
    if tag == hybrid.LOW:
        if b == 0:
            return state
        if conflict:
            return (hybrid.LOW, 1, (a + 1) % n)
        return (hybrid.LOW, 0, a)
    if conflict or low_working:
        return (hybrid.HIGH, b, (a + b) % p)
    if a < n:
        return (hybrid.LOW, 0, a)
    return (hybrid.LOW, 1, a - n)
