"""Corollary 3.6 executed through bit channels.

The communication-efficiency claim of Section 3 ("it is enough to send only
one bit indicating whether its color became final or that it changed
according to the rule") made executable for *vertex* coloring:

1. **Linial rounds** — each vertex broadcasts its current color, serialized
   at the round's palette width; receivers deserialize into per-neighbor
   replicas.
2. **AG pair exchange** — one broadcast of the initial pair, then
3. **AG rounds** — exactly **one bit** per neighbor per round
   (``1`` = rotated, ``0`` = finalized): a receiver holding the neighbor's
   replica ``(a, b)`` applies ``(a, b + a)`` or ``(0, b)`` itself.
4. **Standard reduction rounds** — a vertex of the acting class broadcasts
   its freshly picked color (palette-width bits); everyone else broadcasts a
   single ``0`` "no change" bit, so receivers know whether to read a value.

Per-neighbor replicas are asserted equal to the true colors after every
round; the final coloring is bit-identical to
:func:`repro.core.pipeline.delta_plus_one_coloring` on the same graph.
"""

import math

from repro.bitround.channel import BitChannelNetwork, decode_int, encode_int
from repro.core.ag import AdditiveGroupColoring
from repro.core.reductions import StandardColorReduction
from repro.linial.core import LinialColoring, linial_next_color, linial_round_batch
from repro.runtime.algorithm import NetworkInfo
from repro.runtime.csr import numpy_or_none
from repro.runtime.results import Result

__all__ = ["VertexBitProtocolRun", "run_vertex_coloring_bit_protocol"]


def _bits(x):
    return max(1, math.ceil(math.log2(max(2, x))))


class VertexBitProtocolRun:
    """Outcome of the bit-level vertex-coloring execution."""

    def __init__(self, colors, rounds_by_phase, bit_rounds_by_phase):
        self.colors = colors
        self.rounds_by_phase = dict(rounds_by_phase)
        self.bit_rounds_by_phase = dict(bit_rounds_by_phase)

    @property
    def total_bit_rounds(self):
        """Bit-rounds summed over all phases."""
        return sum(self.bit_rounds_by_phase.values())

    @property
    def rounds(self):
        """Communication rounds summed over phases (the result protocol)."""
        return sum(self.rounds_by_phase.values())

    @property
    def num_colors(self):
        """Distinct colors used (at most Delta + 1)."""
        return len(set(self.colors))

    def to_dict(self):
        """JSON-serializable summary."""
        return {
            "colors": list(self.colors),
            "num_colors": self.num_colors,
            "rounds_by_phase": dict(self.rounds_by_phase),
            "bit_rounds_by_phase": dict(self.bit_rounds_by_phase),
            "rounds": self.rounds,
            "total_bit_rounds": self.total_bit_rounds,
        }

    def __repr__(self):
        return "VertexBitProtocolRun(colors=%d, bit_rounds=%d)" % (
            self.num_colors,
            self.total_bit_rounds,
        )


Result.register(VertexBitProtocolRun)


def run_vertex_coloring_bit_protocol(graph, backend="auto"):
    """Execute Linial -> AG -> standard reduction over bit channels.

    ``backend`` picks the execution tier.  The reference tier pushes every
    bit through a real :class:`BitChannelNetwork` and asserts per-neighbor
    replica consistency after every round; the batch tier runs the identical
    update rules as array kernels and computes each phase's bit-round count
    from the channel's closed form (``drain()`` returns the longest pending
    queue, i.e. the widest message any direction carries that round).  Both
    tiers return bit-identical colors, round counts, and ledgers.
    """
    np = None if backend == "reference" else numpy_or_none()
    if np is not None and hasattr(graph, "csr"):
        return _batch(graph, np)
    if np is None and backend == "batch":
        raise RuntimeError(
            "backend='batch' needs NumPy; install it with `pip install repro[fast]`"
        )
    return _reference(graph)


def _batch(graph, np):
    """Array-kernel tier: same rules, ledgers from the drain closed form."""
    from repro.runtime.engine import Visibility

    n = graph.n
    if n == 0:
        return VertexBitProtocolRun([], {}, {})
    delta = graph.max_degree
    csr = graph.csr()
    has_edges = csr.indices.shape[0] > 0
    colors = np.arange(n, dtype=np.int64)
    palette = max(2, n)
    rounds = {}
    bit_rounds = {}

    # -- Phase 1: Linial (one palette-width broadcast per iteration) -----------
    linial = LinialColoring()
    linial.configure(NetworkInfo(n, delta, palette))
    linial_bits = 0
    for index, iteration in enumerate(linial.plan):
        if has_edges:
            linial_bits += _bits(palette)
        colors = linial_round_batch(
            linial, index, colors, csr, Visibility.LOCAL,
            iteration.q, iteration.degree,
        )
        palette = iteration.out_palette
    rounds["linial"] = len(linial.plan)
    bit_rounds["linial"] = linial_bits

    # -- Phase 2: AG (one pair broadcast, then one bit per round) --------------
    ag = AdditiveGroupColoring()
    ag.configure(NetworkInfo(n, delta, palette))
    q = ag.q
    ag_bits = _bits(palette) if has_edges else 0
    a = colors // q
    b = colors % q
    ag_rounds = 0
    while bool((a != 0).any()):
        conflict = csr.any_per_vertex(csr.gather(b) == csr.owner_values(b))
        rotated = conflict & (a != 0)
        b = np.where(rotated, (b + a) % q, b)
        a = np.where(rotated, a, 0)
        if has_edges:
            ag_bits += 1
        ag_rounds += 1
    colors = b
    palette = q
    rounds["additive-group"] = ag_rounds
    bit_rounds["additive-group"] = ag_bits

    # -- Phase 3: standard reduction (flag bit + value when anyone acts) -------
    reduction = StandardColorReduction()
    reduction.configure(NetworkInfo(n, delta, palette))
    target = reduction.target
    width = _bits(palette)
    red_rounds = 0
    red_bits = 0
    deg_pos = csr.degrees > 0
    state = (colors,)
    for t in range(max(0, palette - target)):
        acting = palette - 1 - t
        if bool(((state[0] == acting) & deg_pos).any()):
            red_bits += 1 + width
        elif has_edges:
            red_bits += 1
        state = reduction.step_batch(t, state, csr, Visibility.LOCAL)
        red_rounds += 1
    rounds["standard-reduction"] = red_rounds
    bit_rounds["standard-reduction"] = red_bits

    return VertexBitProtocolRun(state[0].tolist(), rounds, bit_rounds)


def _reference(graph):
    """Channel-level tier: every bit really crosses a FIFO edge channel."""
    n = graph.n
    if n == 0:
        return VertexBitProtocolRun([], {}, {})
    delta = graph.max_degree
    network = BitChannelNetwork(graph)
    colors = list(range(n))
    palette = max(2, n)
    # replicas[(v, u)] = v's belief about u's current color.
    replicas = {}
    rounds = {}
    bit_rounds = {}

    def broadcast_colors(width):
        for v in graph.vertices():
            network.broadcast(v, encode_int(colors[v], width))
        used = network.drain()
        for v in graph.vertices():
            for u in graph.neighbors(v):
                replicas[(v, u)] = decode_int(network.receive(v, u, width))
        return used

    def assert_replicas():
        for v in graph.vertices():
            for u in graph.neighbors(v):
                assert replicas[(v, u)] == colors[u], (v, u)

    # -- Phase 1: Linial -----------------------------------------------------------
    linial = LinialColoring()
    linial.configure(NetworkInfo(n, delta, palette))
    linial_bits = 0
    for iteration in linial.plan:
        linial_bits += broadcast_colors(_bits(palette))
        assert_replicas()
        colors = [
            linial_next_color(
                colors[v],
                [replicas[(v, u)] for u in graph.neighbors(v)],
                iteration.q,
                iteration.degree,
            )
            for v in graph.vertices()
        ]
        palette = iteration.out_palette
    rounds["linial"] = len(linial.plan)
    bit_rounds["linial"] = linial_bits

    # -- Phase 2: AG with 1-bit rounds -----------------------------------------------
    ag = AdditiveGroupColoring()
    ag.configure(NetworkInfo(n, delta, palette))
    q = ag.q
    pair_bits = broadcast_colors(_bits(palette))
    assert_replicas()
    pairs = [(c // q, c % q) for c in colors]
    pair_replicas = {
        key: (c // q, c % q) for key, c in replicas.items()
    }
    ag_rounds = 0
    ag_bits = pair_bits
    while any(a != 0 for a, _ in pairs):
        decisions = []
        for v in graph.vertices():
            a, b = pairs[v]
            conflict = any(
                pair_replicas[(v, u)][1] == b for u in graph.neighbors(v)
            )
            rotated = conflict and a != 0
            decisions.append(rotated)
            network.broadcast(v, "1" if rotated else "0")
        ag_bits += network.drain()
        ag_rounds += 1
        for v in graph.vertices():
            a, b = pairs[v]
            pairs[v] = (a, (b + a) % q) if decisions[v] else (0, b)
        for v in graph.vertices():
            for u in graph.neighbors(v):
                bit = network.receive(v, u, 1)
                ra, rb = pair_replicas[(v, u)]
                pair_replicas[(v, u)] = (
                    (ra, (rb + ra) % q) if bit == "1" else (0, rb)
                )
        for v in graph.vertices():
            for u in graph.neighbors(v):
                assert pair_replicas[(v, u)] == pairs[u], (v, u)
    colors = [b for _, b in pairs]
    replicas = {key: rb for key, (_, rb) in pair_replicas.items()}
    palette = q
    rounds["additive-group"] = ag_rounds
    bit_rounds["additive-group"] = ag_bits

    # -- Phase 3: standard reduction --------------------------------------------------
    reduction = StandardColorReduction()
    reduction.configure(NetworkInfo(n, delta, palette))
    target = reduction.target
    width = _bits(palette)
    red_rounds = 0
    red_bits = 0
    for t in range(max(0, palette - target)):
        acting = palette - 1 - t
        new_colors = list(colors)
        for v in graph.vertices():
            if colors[v] == acting and colors[v] >= target:
                taken = {replicas[(v, u)] for u in graph.neighbors(v)}
                pick = 0
                while pick in taken:
                    pick += 1
                new_colors[v] = pick
                network.broadcast(v, "1" + encode_int(pick, width))
            else:
                network.broadcast(v, "0")
        red_bits += network.drain()
        red_rounds += 1
        colors = new_colors
        for v in graph.vertices():
            for u in graph.neighbors(v):
                flag = network.receive(v, u, 1)
                if flag == "1":
                    replicas[(v, u)] = decode_int(network.receive(v, u, width))
        assert_replicas()
    rounds["standard-reduction"] = red_rounds
    bit_rounds["standard-reduction"] = red_bits

    return VertexBitProtocolRun(colors, rounds, bit_rounds)
