"""Seeded workload graphs.

Every generator takes an explicit ``seed`` where randomness is involved and
returns a :class:`~repro.runtime.graph.StaticGraph`, so benchmark tables are
reproducible bit-for-bit.  The families cover the paper's motivating
scenarios: bounded-degree ad-hoc / sensor networks (unit-disk,
bounded-degree random), classical worst cases (cliques, barbells), and the
structured graphs (paths, cycles, trees, grids, hypercubes) whose known
chromatic structure makes test assertions sharp.
"""

import math
import random

from repro.runtime.csr import numpy_or_none
from repro.runtime.graph import StaticGraph

__all__ = [
    "path_graph",
    "cycle_graph",
    "complete_graph",
    "star_graph",
    "grid_graph",
    "hypercube_graph",
    "random_tree",
    "gnp_graph",
    "random_regular",
    "bounded_degree_random",
    "random_bipartite",
    "unit_disk_graph",
    "barbell_of_cliques",
    "caterpillar_graph",
    "complete_bipartite_graph",
    "circulant_graph",
    "disjoint_union",
]


def path_graph(n):
    """Path on ``n`` vertices (Delta = 2 for n >= 3)."""
    return StaticGraph(n, [(i, i + 1) for i in range(n - 1)])


def cycle_graph(n):
    """Cycle on ``n`` vertices; the classical Cole–Vishkin workload."""
    if n < 3:
        raise ValueError("cycle needs at least 3 vertices")
    edges = [(i, (i + 1) % n) for i in range(n)]
    return StaticGraph(n, edges)


def complete_graph(n):
    """Clique K_n: Delta = n - 1 and chromatic number n — the tightest palette."""
    edges = [(i, j) for i in range(n) for j in range(i + 1, n)]
    return StaticGraph(n, edges)


def star_graph(n):
    """Star with one center and ``n - 1`` leaves (Delta = n - 1, 2-colorable)."""
    if n < 1:
        raise ValueError("star needs at least 1 vertex")
    return StaticGraph(n, [(0, i) for i in range(1, n)])


def grid_graph(rows, cols):
    """rows x cols grid (Delta <= 4); a plausible mesh-network topology."""
    n = rows * cols

    def vid(r, c):
        return r * cols + c

    edges = []
    for r in range(rows):
        for c in range(cols):
            if c + 1 < cols:
                edges.append((vid(r, c), vid(r, c + 1)))
            if r + 1 < rows:
                edges.append((vid(r, c), vid(r + 1, c)))
    return StaticGraph(n, edges)


def hypercube_graph(dim):
    """dim-dimensional hypercube (n = 2^dim, Delta = dim)."""
    n = 1 << dim
    edges = []
    for v in range(n):
        for b in range(dim):
            u = v ^ (1 << b)
            if u > v:
                edges.append((v, u))
    return StaticGraph(n, edges)


def random_tree(n, seed):
    """Uniform random labeled tree via a Pruefer sequence."""
    if n <= 1:
        return StaticGraph(n, [])
    if n == 2:
        return StaticGraph(2, [(0, 1)])
    rng = random.Random(seed)
    pruefer = [rng.randrange(n) for _ in range(n - 2)]
    degree = [1] * n
    for v in pruefer:
        degree[v] += 1
    edges = []
    import heapq

    leaves = [v for v in range(n) if degree[v] == 1]
    heapq.heapify(leaves)
    for v in pruefer:
        leaf = heapq.heappop(leaves)
        edges.append((leaf, v))
        degree[leaf] -= 1
        degree[v] -= 1
        if degree[v] == 1:
            heapq.heappush(leaves, v)
    last = [v for v in range(n) if degree[v] == 1]
    edges.append((last[0], last[1]))
    return StaticGraph(n, edges)


# The NumPy fast paths below continue the seed's exact MT19937 stream:
# CPython's random.Random and numpy's RandomState share the generator and
# the 53-bit double recipe, so transplanting the 624-word state produces
# bit-identical draws — and therefore bit-identical graphs — with and
# without NumPy (REPRO_DISABLE_NUMPY flips between them in CI).


def _np_rng(rng, np):
    """A RandomState continuing ``rng``'s MT19937 stream exactly."""
    internal = rng.getstate()[1]
    state = np.random.RandomState()
    state.set_state(
        ("MT19937", np.array(internal[:-1], dtype=np.uint32), internal[-1])
    )
    return state


def _np_rng_sync_back(rng, np_state):
    """Hand the stream back so later scalar draws continue where NumPy left off."""
    _, key, pos = np_state.get_state()[:3]
    rng.setstate((3, tuple(int(word) for word in key) + (pos,), None))


# Per-block draw cap for the G(n, p) fast path (32 MB of doubles).
_GNP_BLOCK = 1 << 22


def gnp_graph(n, p, seed):
    """Erdos–Renyi G(n, p)."""
    rng = random.Random(seed)
    np = numpy_or_none()
    if np is None:
        edges = [
            (i, j) for i in range(n) for j in range(i + 1, n) if rng.random() < p
        ]
        return StaticGraph(n, edges)
    state = _np_rng(rng, np)
    edges = []
    start_row = 0
    while start_row < n - 1:
        # Rows [start_row, end_row): one uniform draw per pair (i, j), j > i,
        # in the scalar loop's row-major order.
        end_row = start_row
        count = 0
        while end_row < n - 1 and count + (n - 1 - end_row) <= _GNP_BLOCK:
            count += n - 1 - end_row
            end_row += 1
        if end_row == start_row:  # a single row exceeding the block cap
            end_row += 1
            count = n - 1 - start_row
        lengths = np.arange(n - 1 - start_row, n - 1 - end_row, -1, dtype=np.int64)
        starts = np.zeros(end_row - start_row, dtype=np.int64)
        np.cumsum(lengths[:-1], out=starts[1:])
        hits = np.nonzero(state.random_sample(count) < p)[0]
        if hits.size:
            row_idx = np.searchsorted(starts, hits, side="right") - 1
            i_arr = row_idx + start_row
            j_arr = i_arr + 1 + (hits - starts[row_idx])
            edges.extend(zip(i_arr.tolist(), j_arr.tolist()))
        start_row = end_row
    return StaticGraph(n, edges)


def random_regular(n, d, seed):
    """Random d-regular graph: seeded stub matching plus switch repair.

    ``n * d`` must be even and ``0 <= d < n``.  Shuffles the ``n * d`` vertex
    stubs with one uniform key per stub, pairs them up, then repairs
    self-loops and duplicate edges with random degree-preserving switches
    (each commit strictly shrinks the defect set).  The key draws and the
    stable sort are vectorized under NumPy; the repair phase is shared, so
    the graph is identical in both modes.
    """
    if n * d % 2:
        raise ValueError("n * d must be even for a d-regular graph")
    if not 0 <= d < n:
        raise ValueError("need 0 <= d < n (got d=%d, n=%d)" % (d, n))
    if d == 0:
        return StaticGraph(n, [])
    if d == n - 1:
        return complete_graph(n)
    rng = random.Random(seed)
    stub_count = n * d
    np = numpy_or_none()
    if np is None:
        keys = [rng.random() for _ in range(stub_count)]
        order = sorted(range(stub_count), key=keys.__getitem__)
        owners = [stub // d for stub in order]
    else:
        state = _np_rng(rng, np)
        keys = state.random_sample(stub_count)
        _np_rng_sync_back(rng, state)
        owners = (np.argsort(keys, kind="stable") // d).tolist()
    npairs = stub_count // 2
    pairs = [(owners[2 * t], owners[2 * t + 1]) for t in range(npairs)]

    def norm(u, v):
        return (u, v) if u < v else (v, u)

    counts = {}
    for u, v in pairs:
        if u != v:
            key = norm(u, v)
            counts[key] = counts.get(key, 0) + 1
    stack = [
        t
        for t in range(npairs - 1, -1, -1)
        if pairs[t][0] == pairs[t][1] or counts[norm(*pairs[t])] > 1
    ]
    attempts = 0
    limit = 200 * npairs + 1000
    while stack:
        t = stack.pop()
        u, v = pairs[t]
        if u != v and counts[norm(u, v)] == 1:
            continue  # healed by an earlier switch
        while True:
            attempts += 1
            if attempts > limit:
                raise RuntimeError(
                    "random_regular(%d, %d, seed=%r) failed to repair the "
                    "stub matching" % (n, d, seed)
                )
            s = rng.randrange(npairs)
            if s == t:
                continue
            x, y = pairs[s]
            # Switch (u, v), (x, y) -> (u, y), (x, v) when it stays simple.
            if u == y or x == v:
                continue
            if u != v:
                counts[norm(u, v)] -= 1
            if x != y:
                counts[norm(x, y)] -= 1
            new_a, new_b = norm(u, y), norm(x, v)
            if new_a != new_b and not counts.get(new_a) and not counts.get(new_b):
                counts[new_a] = 1
                counts[new_b] = 1
                pairs[t] = (u, y)
                pairs[s] = (x, v)
                break
            if u != v:
                counts[norm(u, v)] += 1
            if x != y:
                counts[norm(x, y)] += 1
    edges = sorted(key for key, count in counts.items() if count)
    return StaticGraph(n, edges)


def bounded_degree_random(n, delta, target_edges, seed):
    """Random graph with a hard degree cap ``delta``.

    Repeatedly draws endpoint pairs and keeps those that respect the cap —
    the natural model of an ad-hoc network whose radios support at most
    ``delta`` links.  May return fewer than ``target_edges`` edges on dense
    requests.
    """
    rng = random.Random(seed)
    degree = [0] * n
    edge_set = set()
    attempts = 0
    max_attempts = 50 * max(1, target_edges)
    while len(edge_set) < target_edges and attempts < max_attempts:
        attempts += 1
        u = rng.randrange(n)
        v = rng.randrange(n)
        if u == v:
            continue
        key = (u, v) if u < v else (v, u)
        if key in edge_set:
            continue
        if degree[u] >= delta or degree[v] >= delta:
            continue
        edge_set.add(key)
        degree[u] += 1
        degree[v] += 1
    return StaticGraph(n, sorted(edge_set))


def random_bipartite(n_left, n_right, p, seed):
    """Random bipartite graph; left vertices are ``0..n_left-1``."""
    rng = random.Random(seed)
    n = n_left + n_right
    edges = [
        (i, n_left + j)
        for i in range(n_left)
        for j in range(n_right)
        if rng.random() < p
    ]
    return StaticGraph(n, edges)


def unit_disk_graph(n, radius, seed, degree_cap=None):
    """Random points in the unit square; edges below ``radius``.

    The canonical wireless / sensor-network topology from the paper's
    motivation.  ``degree_cap`` optionally drops excess edges (farthest
    first) to enforce a radio fan-out limit.
    """
    rng = random.Random(seed)
    points = [(rng.random(), rng.random()) for _ in range(n)]
    candidates = []
    for i in range(n):
        for j in range(i + 1, n):
            dx = points[i][0] - points[j][0]
            dy = points[i][1] - points[j][1]
            dist = math.hypot(dx, dy)
            if dist <= radius:
                candidates.append((dist, i, j))
    candidates.sort()
    degree = [0] * n
    edges = []
    for dist, i, j in candidates:
        if degree_cap is not None and (
            degree[i] >= degree_cap or degree[j] >= degree_cap
        ):
            continue
        edges.append((i, j))
        degree[i] += 1
        degree[j] += 1
    return StaticGraph(n, edges)


def barbell_of_cliques(clique_size, path_length):
    """Two cliques joined by a path: high Delta plus long diameter.

    Stresses the independence of the AG phase (driven by Delta) from the
    topology's diameter.
    """
    k = clique_size
    n = 2 * k + path_length
    edges = []
    for i in range(k):
        for j in range(i + 1, k):
            edges.append((i, j))
            edges.append((k + path_length + i, k + path_length + j))
    chain = [k - 1] + [k + i for i in range(path_length)] + [k + path_length]
    for a, b in zip(chain, chain[1:]):
        edges.append((a, b))
    return StaticGraph(n, edges)


def caterpillar_graph(spine, legs_per_vertex):
    """A spine path with ``legs_per_vertex`` pendant leaves per spine vertex.

    Trees with high-degree internal vertices: Delta = legs + 2, arboricity 1.
    """
    n = spine * (1 + legs_per_vertex)
    edges = [(i, i + 1) for i in range(spine - 1)]
    next_leaf = spine
    for s in range(spine):
        for _ in range(legs_per_vertex):
            edges.append((s, next_leaf))
            next_leaf += 1
    return StaticGraph(n, edges)


def complete_bipartite_graph(a, b):
    """K_{a,b}: Delta = max(a, b), chromatic number 2 — palette-pressure test."""
    edges = [(i, a + j) for i in range(a) for j in range(b)]
    return StaticGraph(a + b, edges)


def circulant_graph(n, offsets):
    """Circulant C_n(offsets): vertex i adjacent to i +- d for d in offsets.

    Regular, vertex-transitive, adjustable degree: a cheap expander-like
    family for stress tests (Delta = 2 * len(offsets) when offsets < n/2).
    """
    edge_set = set()
    for i in range(n):
        for d in offsets:
            j = (i + d) % n
            if i != j:
                edge_set.add((i, j) if i < j else (j, i))
    return StaticGraph(n, sorted(edge_set))


def disjoint_union(graphs):
    """The disjoint union of several graphs (index-shifted)."""
    edges = []
    offset = 0
    total = 0
    for g in graphs:
        edges.extend((u + offset, v + offset) for u, v in g.edges)
        offset += g.n
        total += g.n
    return StaticGraph(total, edges)
