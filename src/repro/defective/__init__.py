"""Defective colorings — relaxed colorings that tolerate bounded conflicts.

* :mod:`repro.defective.vertex` — the p-defective ``O((Delta/p)^2)``-vertex-
  coloring in ``log* n + O(1)`` rounds (the role played by [BEK, SICOMP'14]
  in Section 6), realized as Linial-style polynomial steps whose point
  selection *minimizes* conflicts instead of forbidding them.
* :mod:`repro.defective.kuhn_edge` — Kuhn's one-round 2-defective
  ``Delta^2``-edge-coloring via edge orientation (the first stage of the
  Section 5 CONGEST edge-coloring pipeline).
"""

from repro.defective.vertex import DefectiveLinialColoring
from repro.defective.kuhn_edge import kuhn_defective_edge_coloring

__all__ = ["DefectiveLinialColoring", "kuhn_defective_edge_coloring"]
