"""p-defective ``O((Delta/p)^2)``-coloring in ``log* n + O(1)`` rounds.

Section 6 starts ArbAG from a ``p``-defective ``O((Delta/p)^2)``-coloring
computed by the algorithm of Barenboim–Elkin–Kuhn [9].  We reproduce that
guarantee with the same machinery as our Linial stage: a proper Linial
cascade down to ``O(Delta^2)`` colors, followed by O(1) *tolerant* Linial
steps.  A tolerant step encodes colors as degree-2 polynomials over GF(q) and
each vertex picks the evaluation point with the *fewest* collisions with its
distinctly-colored neighbors; by pigeonhole some point has at most
``floor(2 * Delta / q)`` collisions, so a step with ``q = Theta(Delta / p)``
adds at most ``O(p)`` defect while squaring down the palette towards
``O((Delta/p)^2)``.

Already-equal neighbors stay tolerated (they may or may not separate later);
the accumulated defect is the sum of the per-step pigeonhole bounds, exposed
as :attr:`DefectiveLinialColoring.defect_bound` and asserted in tests.
"""

from repro.linial.plan import integer_root_ceiling, linial_plan
from repro.mathutil.gf import eval_poly_mod, int_to_poly_coeffs
from repro.mathutil.primes import next_prime_at_least
from repro.runtime.algorithm import LocallyIterativeColoring

__all__ = ["DefectiveLinialColoring", "defective_linial_next_color"]

_TOLERANT_DEGREE = 2


def defective_linial_next_color(color, neighbor_colors, q, degree):
    """One tolerant Linial step: the point with the fewest collisions.

    Returns ``x * q + g(x)`` for the ``x`` minimizing the number of
    distinctly-colored neighbors whose polynomial agrees with ours at ``x``
    (ties broken towards smaller ``x``).
    """
    mine = int_to_poly_coeffs(color, degree, q)
    neighbor_polys = [
        int_to_poly_coeffs(c, degree, q) for c in set(neighbor_colors) if c != color
    ]
    best_x, best_value, best_count = 0, eval_poly_mod(mine, 0, q), None
    for x in range(q):
        value = eval_poly_mod(mine, x, q)
        count = sum(
            1 for other in neighbor_polys if eval_poly_mod(other, x, q) == value
        )
        if best_count is None or count < best_count:
            best_x, best_value, best_count = x, value, count
        if best_count == 0:
            break
    return best_x * q + best_value


class DefectiveLinialColoring(LocallyIterativeColoring):
    """``m`` colors to a ``O(p)``-defective ``O((Delta/p)^2)``-coloring.

    Parameters
    ----------
    tolerance:
        The defect parameter ``p`` (``1 <= p``).  ``p = 1`` degenerates to an
        essentially-proper Linial run; ``p = sqrt(Delta)`` is the setting of
        Section 6's headline result.
    """

    name = "defective-linial"
    maintains_proper = False
    uniform_step = False

    def __init__(self, tolerance):
        super().__init__()
        if tolerance < 1:
            raise ValueError("tolerance must be >= 1")
        self.tolerance = tolerance
        self.proper_plan = None
        self.tolerant_qs = None
        self.defect_bound = None

    def configure(self, info):
        super().configure(info)
        delta = info.max_degree
        self.proper_plan = linial_plan(info.in_palette_size, delta)
        proper_out = (
            self.proper_plan[-1].out_palette
            if self.proper_plan
            else info.in_palette_size
        )
        # Target palette: (smallest prime >= 2 * ceil(Delta/p) + 2) squared,
        # which is what ArbAG wants to see as its input space.
        r = -(-delta // self.tolerance) if delta else 0
        target_q = next_prime_at_least(max(2 * r + 2, 2))
        target = target_q * target_q
        qs = []
        bound = 0
        m = proper_out
        while m > target:
            q = next_prime_at_least(
                max(integer_root_ceiling(m, _TOLERANT_DEGREE + 1), target_q)
            )
            if q * q >= m:
                break
            qs.append(q)
            bound += (_TOLERANT_DEGREE * delta) // q
            m = q * q
        self.tolerant_qs = qs
        self.defect_bound = bound
        self._final_palette = m

    @property
    def out_palette_size(self):
        self._require_configured()
        return self._final_palette

    @property
    def rounds_bound(self):
        self._require_configured()
        return len(self.proper_plan) + len(self.tolerant_qs)

    def step(self, round_index, color, neighbor_colors):
        n_proper = len(self.proper_plan)
        if round_index < n_proper:
            iteration = self.proper_plan[round_index]
            from repro.linial.core import linial_next_color

            return linial_next_color(
                color, neighbor_colors, iteration.q, iteration.degree
            )
        tolerant_index = round_index - n_proper
        if tolerant_index >= len(self.tolerant_qs):
            return color
        q = self.tolerant_qs[tolerant_index]
        return defective_linial_next_color(
            color, neighbor_colors, q, _TOLERANT_DEGREE
        )
