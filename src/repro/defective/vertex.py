"""p-defective ``O((Delta/p)^2)``-coloring in ``log* n + O(1)`` rounds.

Section 6 starts ArbAG from a ``p``-defective ``O((Delta/p)^2)``-coloring
computed by the algorithm of Barenboim–Elkin–Kuhn [9].  We reproduce that
guarantee with the same machinery as our Linial stage: a proper Linial
cascade down to ``O(Delta^2)`` colors, followed by O(1) *tolerant* Linial
steps.  A tolerant step encodes colors as degree-2 polynomials over GF(q) and
each vertex picks the evaluation point with the *fewest* collisions with its
distinctly-colored neighbors; by pigeonhole some point has at most
``floor(2 * Delta / q)`` collisions, so a step with ``q = Theta(Delta / p)``
adds at most ``O(p)`` defect while squaring down the palette towards
``O((Delta/p)^2)``.

Already-equal neighbors stay tolerated (they may or may not separate later);
the accumulated defect is the sum of the per-step pigeonhole bounds, exposed
as :attr:`DefectiveLinialColoring.defect_bound` and asserted in tests.
"""

from repro.linial.plan import integer_root_ceiling, linial_plan
from repro.mathutil.gf import (
    batch_eval_points,
    batch_poly_coeffs,
    eval_poly_mod,
    int_to_poly_coeffs,
)
from repro.mathutil.primes import next_prime_at_least
from repro.runtime.algorithm import LocallyIterativeColoring

__all__ = ["DefectiveLinialColoring", "defective_linial_next_color"]

_TOLERANT_DEGREE = 2


def defective_linial_next_color(color, neighbor_colors, q, degree):
    """One tolerant Linial step: the point with the fewest collisions.

    Returns ``x * q + g(x)`` for the ``x`` minimizing the number of
    distinctly-colored neighbors whose polynomial agrees with ours at ``x``
    (ties broken towards smaller ``x``).
    """
    mine = int_to_poly_coeffs(color, degree, q)
    neighbor_polys = [
        int_to_poly_coeffs(c, degree, q) for c in set(neighbor_colors) if c != color
    ]
    if not neighbor_polys:
        # Fixed-point neighborhood (no distinctly-colored neighbor can ever
        # collide): x = 0 wins with count 0, so skip the per-point scan.
        return eval_poly_mod(mine, 0, q)
    best_x, best_value, best_count = 0, eval_poly_mod(mine, 0, q), None
    for x in range(q):
        value = eval_poly_mod(mine, x, q)
        count = sum(
            1 for other in neighbor_polys if eval_poly_mod(other, x, q) == value
        )
        if best_count is None or count < best_count:
            best_x, best_value, best_count = x, value, count
        if best_count == 0:
            break
    return best_x * q + best_value


class DefectiveLinialColoring(LocallyIterativeColoring):
    """``m`` colors to a ``O(p)``-defective ``O((Delta/p)^2)``-coloring.

    Parameters
    ----------
    tolerance:
        The defect parameter ``p`` (``1 <= p``).  ``p = 1`` degenerates to an
        essentially-proper Linial run; ``p = sqrt(Delta)`` is the setting of
        Section 6's headline result.
    """

    name = "defective-linial"
    maintains_proper = False
    uniform_step = False

    def __init__(self, tolerance):
        super().__init__()
        if tolerance < 1:
            raise ValueError("tolerance must be >= 1")
        self.tolerance = tolerance
        self.proper_plan = None
        self.tolerant_qs = None
        self.defect_bound = None

    def configure(self, info):
        super().configure(info)
        delta = info.max_degree
        self.proper_plan = linial_plan(info.in_palette_size, delta)
        proper_out = (
            self.proper_plan[-1].out_palette
            if self.proper_plan
            else info.in_palette_size
        )
        # Target palette: (smallest prime >= 2 * ceil(Delta/p) + 2) squared,
        # which is what ArbAG wants to see as its input space.
        r = -(-delta // self.tolerance) if delta else 0
        target_q = next_prime_at_least(max(2 * r + 2, 2))
        target = target_q * target_q
        qs = []
        bound = 0
        m = proper_out
        while m > target:
            q = next_prime_at_least(
                max(integer_root_ceiling(m, _TOLERANT_DEGREE + 1), target_q)
            )
            if q * q >= m:
                break
            qs.append(q)
            bound += (_TOLERANT_DEGREE * delta) // q
            m = q * q
        self.tolerant_qs = qs
        self.defect_bound = bound
        self._final_palette = m

    @property
    def out_palette_size(self):
        self._require_configured()
        return self._final_palette

    @property
    def rounds_bound(self):
        self._require_configured()
        return len(self.proper_plan) + len(self.tolerant_qs)

    def step(self, round_index, color, neighbor_colors):
        n_proper = len(self.proper_plan)
        if round_index < n_proper:
            iteration = self.proper_plan[round_index]
            from repro.linial.core import linial_next_color

            return linial_next_color(
                color, neighbor_colors, iteration.q, iteration.degree
            )
        tolerant_index = round_index - n_proper
        if tolerant_index >= len(self.tolerant_qs):
            return color
        q = self.tolerant_qs[tolerant_index]
        return defective_linial_next_color(
            color, neighbor_colors, q, _TOLERANT_DEGREE
        )

    @property
    def uniform_after(self):
        """Past the schedule the step is the identity — a uniform tail.

        Both engines use this for the fixed-point early exit (the same break
        the ``uniform_step`` stages get): once a round at or past this index
        changes nothing, no later round can.  Callers that run this stage
        with a generous ``max_rounds`` no longer re-enter the per-neighbor
        scan of :func:`defective_linial_next_color` on every tail round.
        """
        self._require_configured()
        return len(self.proper_plan) + len(self.tolerant_qs)

    # -- batch protocol (see repro.runtime.fast_engine) -------------------------
    #
    # State: the current color as a single int64 array.  Proper rounds reuse
    # the shared Linial kernel; tolerant rounds evaluate every candidate
    # point's collision count against the *deduplicated* distinctly-colored
    # neighbor polynomials (the scalar rule counts per distinct color, so
    # SET-LOCAL and LOCAL agree after the dedup) and argmin with ties to the
    # smallest point — exactly the scalar best-count scan.

    def batch_encode_initial(self, initial):
        """Vectorized ``encode_initial`` (identity, like the scalar path)."""
        return (initial,)

    def step_batch(self, round_index, state, csr, visibility):
        """Vectorized ``step``: planned Linial round or tolerant repick."""
        from repro.linial.core import linial_round_batch

        (colors,) = state
        n_proper = len(self.proper_plan)
        if round_index < n_proper:
            iteration = self.proper_plan[round_index]
            new_colors = linial_round_batch(
                self, round_index, colors, csr, visibility,
                iteration.q, iteration.degree,
            )
            return (new_colors,)
        tolerant_index = round_index - n_proper
        if tolerant_index >= len(self.tolerant_qs):
            return state
        q = self.tolerant_qs[tolerant_index]
        return (self._tolerant_round_batch(round_index, colors, csr, visibility, q),)

    def _tolerant_round_batch(self, round_index, colors, csr, visibility, q):
        from repro.runtime.csr import numpy_or_none

        np = numpy_or_none()
        degree = _TOLERANT_DEGREE
        limit = q ** (degree + 1)
        out_of_field = (colors < 0) | (colors >= limit)
        if bool(out_of_field.any()):
            # Replay in vertex order for the scalar encoder's exact error.
            from repro.runtime.fast_engine import scalar_replay_round

            scalar_replay_round(self, round_index, colors.tolist(), csr, visibility)
            raise AssertionError(
                "batch tolerant kernel rejected a round the scalar step accepts"
            )
        n = csr.n
        coeffs = batch_poly_coeffs(colors, degree, q)
        nbr = csr.gather(colors)
        sel = csr.distinct_slot_mask(nbr) & (nbr != csr.owner_values(colors))
        rows = csr.rows[sel]
        nbr_idx = csr.indices[sel]
        own_vals = batch_eval_points(coeffs, np.arange(q, dtype=np.int64), q)
        # Scan points smallest-first with a collapsing pending set: a vertex
        # is decided the moment it sees a zero-collision point (the scalar
        # loop's early break), and only pending vertices' slots are touched
        # afterwards — so the expected slot work is a small multiple of m,
        # not m * q.  A neighbor's polynomial is that neighbor's own
        # polynomial, so its values come from ``own_vals`` by gather.
        best_x = np.zeros(n, dtype=np.int64)
        best_count = np.full(n, np.iinfo(np.int64).max, dtype=np.int64)
        pending = np.ones(n, dtype=bool)
        for x in range(q):
            column = own_vals[:, x]
            agree = column[nbr_idx] == column[rows]
            count = np.bincount(rows[agree], minlength=n)
            better = pending & (count < best_count)
            best_x[better] = x
            best_count[better] = count[better]
            pending &= best_count > 0
            if not bool(pending.any()):
                break
            keep = pending[rows]
            rows = rows[keep]
            nbr_idx = nbr_idx[keep]
        return best_x * q + own_vals[np.arange(n), best_x]

    def batch_is_final(self, state):
        """Vectorized ``is_final`` (never final, like the scalar path)."""
        from repro.runtime.csr import numpy_or_none

        np = numpy_or_none()
        return np.zeros(state[0].shape[0], dtype=bool)

    def batch_decode_final(self, state):
        """Vectorized ``decode_final`` (identity, like the scalar path)."""
        return state[0]

    def batch_to_scalar(self, state):
        """The state as the scalar engine's plain-int color list."""
        return state[0].tolist()
