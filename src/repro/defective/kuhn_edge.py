"""Kuhn's one-round 2-defective ``Delta^2``-edge-coloring (Section 5, stage 1).

Orient every edge towards its higher-ID endpoint.  Each vertex assigns its
outgoing edges distinct colors from ``{0, ..., Delta-1}`` and, independently,
its incoming edges distinct colors from the same range.  An edge's color is
the pair ``<i, j>``: ``i`` from its tail, ``j`` from its head.

At any vertex, two outgoing edges differ in ``i`` and two incoming edges
differ in ``j``, so at most one *other* incident edge can share an edge's
full pair — the coloring is 2-defective in the line graph, and each color
class is a disjoint union of paths and cycles (each vertex touches at most 2
class edges).  Everything is decided in one communication round with
``O(log n)``-bit messages (the exchanged IDs/indices), matching Lemma 5.2's
accounting.
"""

__all__ = ["kuhn_defective_edge_coloring"]


def kuhn_defective_edge_coloring(graph):
    """Return ``{(u, v): (i, j)}`` with ``u < v``, a 2-defective edge coloring.

    ``i`` is assigned by the lower-ID endpoint (tail of the orientation
    towards higher IDs), ``j`` by the higher-ID endpoint.  Colors are in
    ``range(Delta) x range(Delta)`` (``Delta^2`` pairs).
    """
    ids = graph.ids
    colors = {}
    out_counter = [0] * graph.n
    in_counter = [0] * graph.n
    # Deterministic processing order: edges sorted by (tail id, head id) so
    # each vertex hands out 0, 1, 2, ... in a well-defined sequence.
    oriented = []
    for u, v in graph.edges:
        tail, head = (u, v) if ids[u] < ids[v] else (v, u)
        oriented.append((ids[tail], ids[head], tail, head, (u, v) if u < v else (v, u)))
    for _, _, tail, head, key in sorted(oriented):
        i = out_counter[tail]
        out_counter[tail] += 1
        j = in_counter[head]
        in_counter[head] += 1
        colors[key] = (i, j)
    return colors
