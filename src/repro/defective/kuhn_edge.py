"""Kuhn's one-round 2-defective ``Delta^2``-edge-coloring (Section 5, stage 1).

Orient every edge towards its higher-ID endpoint.  Each vertex assigns its
outgoing edges distinct colors from ``{0, ..., Delta-1}`` and, independently,
its incoming edges distinct colors from the same range.  An edge's color is
the pair ``<i, j>``: ``i`` from its tail, ``j`` from its head.

At any vertex, two outgoing edges differ in ``i`` and two incoming edges
differ in ``j``, so at most one *other* incident edge can share an edge's
full pair — the coloring is 2-defective in the line graph, and each color
class is a disjoint union of paths and cycles (each vertex touches at most 2
class edges).  Everything is decided in one communication round with
``O(log n)``-bit messages (the exchanged IDs/indices), matching Lemma 5.2's
accounting.
"""

from repro.runtime.csr import numpy_or_none

__all__ = ["kuhn_defective_edge_coloring", "kuhn_defective_edge_arrays"]


def kuhn_defective_edge_coloring(graph, backend="auto"):
    """Return ``{(u, v): (i, j)}`` with ``u < v``, a 2-defective edge coloring.

    ``i`` is assigned by the lower-ID endpoint (tail of the orientation
    towards higher IDs), ``j`` by the higher-ID endpoint.  Colors are in
    ``range(Delta) x range(Delta)`` (``Delta^2`` pairs).  ``backend`` picks
    the execution tier (``auto``/``batch``/``reference``); the batch path
    computes the same counters with two sorts over the edge arrays and is
    bit-identical to the reference sweep.
    """
    np = None if backend == "reference" else numpy_or_none()
    if np is None:
        if backend == "batch":
            raise RuntimeError(
                "backend='batch' needs NumPy; install it with `pip install repro[fast]`"
            )
        return _reference(graph)
    if not hasattr(graph, "csr"):
        return _reference(graph)
    i, j = kuhn_defective_edge_arrays(graph)
    return dict(zip(graph.edges, zip(i.tolist(), j.tolist())))


def kuhn_defective_edge_arrays(graph):
    """The ``(i, j)`` pairs as two int64 arrays aligned with ``graph.edges``.

    The array form of :func:`kuhn_defective_edge_coloring`, used by the batch
    edge-coloring paths to skip the dict materialization.  Requires NumPy.
    """
    np = numpy_or_none()
    csr = graph.csr()
    m = csr.edge_u.shape[0]
    if m == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    ids = np.asarray(graph.ids, dtype=np.int64)
    swap = ids[csr.edge_u] > ids[csr.edge_v]
    tail = np.where(swap, csr.edge_v, csr.edge_u)
    head = np.where(swap, csr.edge_u, csr.edge_v)
    # Processing order: (tail id, head id) ascending — IDs are unique, so
    # equal-tail runs are contiguous and ``i`` is the rank within the run.
    order = np.lexsort((ids[head], ids[tail]))
    slots = np.arange(m, dtype=np.int64)
    i = slots - _run_starts(np, tail[order], slots)
    # ``j`` counts each head's incoming edges in the same processing order; a
    # stable sort by head keeps that order inside every head's run.
    by_head = np.argsort(head[order], kind="stable")
    rank_in_head = slots - _run_starts(np, head[order][by_head], slots)
    j = np.empty(m, dtype=np.int64)
    j[by_head] = rank_in_head
    # Undo the processing permutation so slot k describes graph.edges[k].
    i_aligned = np.empty(m, dtype=np.int64)
    j_aligned = np.empty(m, dtype=np.int64)
    i_aligned[order] = i
    j_aligned[order] = j
    return i_aligned, j_aligned


def _run_starts(np, values, slots):
    """Per-slot start index of the contiguous run of equal ``values``."""
    new_run = np.empty(values.shape[0], dtype=bool)
    new_run[0] = True
    np.not_equal(values[1:], values[:-1], out=new_run[1:])
    return np.maximum.accumulate(np.where(new_run, slots, 0))


def _reference(graph):
    ids = graph.ids
    colors = {}
    out_counter = [0] * graph.n
    in_counter = [0] * graph.n
    # Deterministic processing order: edges sorted by (tail id, head id) so
    # each vertex hands out 0, 1, 2, ... in a well-defined sequence.
    oriented = []
    for u, v in graph.edges:
        tail, head = (u, v) if ids[u] < ids[v] else (v, u)
        oriented.append((ids[tail], ids[head], tail, head, (u, v) if u < v else (v, u)))
    for _, _, tail, head, key in sorted(oriented):
        i = out_counter[tail]
        out_counter[tail] += 1
        j = in_counter[head]
        in_counter[head] += 1
        colors[key] = (i, j)
    return colors
