"""The standard (greedy) color reduction.

Classical locally-iterative primitive (see e.g. Barenboim–Elkin's monograph,
Chapter 3): given a proper ``m``-coloring with ``m > Delta + 1``, eliminate
the highest color class one round at a time — in round ``t`` every vertex of
color ``m - 1 - t`` (they form an independent set, so they act without
coordination) re-colors itself with the smallest color in ``[0, Delta]``
missing from its neighborhood.  After ``m - Delta - 1`` rounds the palette is
exactly ``[0, Delta]``.

Corollary 3.6 runs this after AG to go from ``q = O(Delta)`` colors to
``Delta + 1``, keeping the whole pipeline locally-iterative.  The rule only
needs the *set* of neighbor colors, so it runs in SET-LOCAL too.
"""

from repro.runtime.algorithm import LocallyIterativeColoring

__all__ = ["StandardColorReduction"]


class StandardColorReduction(LocallyIterativeColoring):
    """Proper ``m``-coloring to proper ``(Delta+1)``-coloring in ``m - Delta - 1`` rounds."""

    name = "standard-reduction"
    maintains_proper = True
    uniform_step = False  # the acting class depends on the round number

    def __init__(self, target_palette=None):
        """``target_palette`` defaults to ``Delta + 1`` (its minimum legal value)."""
        super().__init__()
        self._requested_target = target_palette
        self.target = None
        self.start_palette = None

    def configure(self, info):
        super().configure(info)
        minimum = info.max_degree + 1
        self.target = self._requested_target or minimum
        if self.target < minimum:
            raise ValueError(
                "target palette %d below Delta + 1 = %d" % (self.target, minimum)
            )
        self.start_palette = max(info.in_palette_size, self.target)

    @property
    def out_palette_size(self):
        self._require_configured()
        return self.target

    @property
    def rounds_bound(self):
        self._require_configured()
        return max(0, self.start_palette - self.target)

    def step(self, round_index, color, neighbor_colors):
        acting_color = self.start_palette - 1 - round_index
        if color != acting_color or color < self.target:
            return color
        taken = set(neighbor_colors)
        for candidate in range(self.target):
            if candidate not in taken:
                return candidate
        raise AssertionError(
            "no free color among %d for a vertex with <= Delta = %d neighbors"
            % (self.target, self.info.max_degree)
        )

    def is_final(self, color):
        # A color below the target can still be *kept*, but never changed, so
        # once every vertex is below the target the run may stop.
        return color < self.target

    # -- batch protocol (see repro.runtime.fast_engine) -------------------------
    #
    # State: the current color as a single int64 array.  Only the acting
    # color class does any work: a boolean occupancy matrix (one row per
    # acting vertex, one column per color in [0, target)) is scattered
    # straight from the CSR neighborhood, and the smallest missing color is
    # an argmin over it.  Membership in the taken set ignores multiplicity,
    # so the kernel is identical in LOCAL and SET-LOCAL.

    def batch_encode_initial(self, initial):
        """Vectorized ``encode_initial`` (identity, like the scalar path)."""
        return (initial,)

    def step_batch(self, round_index, state, csr, visibility):
        """Vectorized ``step``: recolor the acting class off an occupancy matrix."""
        from repro.runtime.csr import numpy_or_none

        np = numpy_or_none()
        (colors,) = state
        acting_color = self.start_palette - 1 - round_index
        if acting_color < self.target:
            return state
        acting = colors == acting_color
        count = int(acting.sum())
        if count == 0:
            return state
        compact = np.cumsum(acting) - 1
        occupied = np.zeros((count, self.target), dtype=bool)
        slot_sel = acting[csr.rows]
        neighbor = csr.gather(colors)[slot_sel]
        owner = compact[csr.rows[slot_sel]]
        in_target = (neighbor >= 0) & (neighbor < self.target)
        occupied[owner[in_target], neighbor[in_target]] = True
        if bool(occupied.all(axis=1).any()):
            raise AssertionError(
                "no free color among %d for a vertex with <= Delta = %d neighbors"
                % (self.target, self.info.max_degree)
            )
        new_colors = colors.copy()
        new_colors[acting] = np.argmin(occupied, axis=1)
        return (new_colors,)

    def batch_is_final(self, state):
        """Vectorized ``is_final``: below-target colors can never change."""
        return state[0] < self.target

    def batch_decode_final(self, state):
        """Vectorized ``decode_final`` (identity, like the scalar path)."""
        return state[0]

    def batch_to_scalar(self, state):
        """The state as the scalar engine's plain-int color list."""
        return state[0].tolist()
