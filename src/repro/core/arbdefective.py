"""ArbAG — the arbdefective Additive-Group algorithm (Section 6).

Identical in structure to AG, with one relaxation: a vertex finalizes as soon
as at most ``p`` *distinctly-originally-colored* neighbors share its second
coordinate (AG is the special case ``p = 0``... with threshold "none").
Starting from a ``O(p)``-defective ``O((Delta/p)^2)``-coloring, the modulus
shrinks to ``q = Theta(Delta / p)`` and the round count to
``2 * ceil(Delta / p) + 1``: if a vertex had more than ``p`` conflicts in
every one of those rounds it would own more than ``Delta`` neighbors, since
each distinctly-colored neighbor can conflict with it at most twice inside a
``q``-round window (Lemma 6.1).

The output is not proper — it is an ``O(p)``-arbdefective
``O(Delta/p)``-coloring (Lemma 6.2): orient every intra-class edge towards
the endpoint that finalized first (ties to the smaller vertex).  A vertex's
out-neighbors were already frozen when it froze, so they were counted inside
its ``<= p`` tolerated conflicts, plus at most the input defect of
same-original-color neighbors; bounded out-degree acyclic orientations mean
bounded arboricity.  :func:`finalization_orientation` extracts exactly this
orientation, which the sublinear pipelines of Theorem 6.4 consume.

Internal colors are 4-tuples ``(a, b, orig, fr)``: the AG pair, the original
color (the defective coloring's class, used for the different-original test —
an extra ``O(log Delta)`` bits per message, CONGEST-harmless), and the
finalization round (``None`` while working).
"""

from repro.linial.plan import integer_root_ceiling
from repro.mathutil.primes import next_prime_at_least
from repro.runtime.algorithm import LocallyIterativeColoring

__all__ = ["ArbAGColoring", "finalization_orientation"]


class ArbAGColoring(LocallyIterativeColoring):
    """``O((Delta/p)^2)`` colors to an O(p)-arbdefective O(Delta/p)-coloring.

    Parameters
    ----------
    tolerance:
        The conflict budget ``p >= 1``.
    """

    name = "arb-ag"
    maintains_proper = False  # the whole point: the coloring is arbdefective
    uniform_step = False  # the finalization round is recorded in the color

    def __init__(self, tolerance):
        super().__init__()
        if tolerance < 1:
            raise ValueError("tolerance must be >= 1")
        self.tolerance = tolerance
        self.q = None

    def configure(self, info):
        super().configure(info)
        r = -(-info.max_degree // self.tolerance) if info.max_degree else 0
        self.q = next_prime_at_least(
            max(2 * r + 2, integer_root_ceiling(info.in_palette_size, 2), 2)
        )

    @property
    def out_palette_size(self):
        self._require_configured()
        return self.q

    @property
    def rounds_bound(self):
        """Lemma 6.1: ``2 * ceil(Delta / p) + 1`` rounds."""
        self._require_configured()
        r = -(-self.info.max_degree // self.tolerance) if self.info.max_degree else 0
        return 2 * r + 1

    def encode_initial(self, color):
        self._require_configured()
        q = self.q
        if not (0 <= color < q * q):
            raise ValueError("input color %d does not fit in q^2 = %d" % (color, q * q))
        a, b = color // q, color % q
        # A vertex with a == 0 cannot rotate; it is committed to class b from
        # the start.  No distinctly-colored neighbor shares (0, b) initially,
        # so it contributes nothing to anyone's early out-degree.
        fr = 0 if a == 0 else None
        return (a, b, color, fr)

    def step(self, round_index, color, neighbor_colors):
        a, b, orig, fr = color
        if fr is not None:
            return color
        conflicts = sum(
            1 for _, nb, norig, _ in neighbor_colors if nb == b and norig != orig
        )
        if conflicts <= self.tolerance:
            return (0, b, orig, round_index + 1)
        return (a, (a + b) % self.q, orig, None)

    def is_final(self, color):
        return color[3] is not None

    def decode_final(self, color):
        a, b, orig, fr = color
        if fr is None:
            raise ValueError("vertex has not finalized: %r" % (color,))
        return b

    def message_bits(self, round_index):
        if round_index == 0:
            return super().message_bits(round_index)
        # 1 bit (final/rotated) + the original color tag piggybacked once is
        # enough in principle; we charge the conservative O(log Delta) for
        # carrying (b, orig) deltas.
        import math

        return max(1, math.ceil(math.log2(max(2, self.q))))

    # -- batch protocol (see repro.runtime.fast_engine) -------------------------
    #
    # State: (a, b, orig, fr) as four int64 arrays, with ``fr = -1`` standing
    # in for the scalar ``None`` (any real finalization round is >= 0).
    # Unlike the rest of the AG family this rule *counts* conflicts, so in
    # SET-LOCAL the neighborhood must first collapse to distinct colors —
    # identical 4-tuples from different neighbors are one message.

    def batch_encode_initial(self, initial):
        """Vectorized ``encode_initial``: int64 input colors to the state arrays."""
        import numpy as np

        self._require_configured()
        q = self.q
        bad = (initial < 0) | (initial >= q * q)
        if bool(bad.any()):
            first = int(initial[int(bad.argmax())])
            raise ValueError(
                "input color %d does not fit in q^2 = %d" % (first, q * q)
            )
        a = initial // q
        b = initial % q
        # a == 0 cannot rotate: committed (fr = 0) from the start, exactly as
        # the scalar encode_initial.
        fr = np.where(a == 0, 0, -1)
        return (a, b, initial.copy(), fr)

    def step_batch(self, round_index, state, csr, visibility):
        """Vectorized ``step``: advance every vertex one round on the CSR view."""
        import numpy as np

        from repro.runtime.engine import Visibility

        a, b, orig, fr = state
        conflict_slots = (csr.gather(b) == csr.owner_values(b)) & (
            csr.gather(orig) != csr.owner_values(orig)
        )
        if visibility is Visibility.SET_LOCAL:
            conflict_slots &= csr.distinct_slot_mask(
                csr.gather(a), csr.gather(b), csr.gather(orig), csr.gather(fr)
            )
        conflicts = csr.count_per_vertex(conflict_slots)
        working = fr < 0
        finalize = working & (conflicts <= self.tolerance)
        rotate = working & ~finalize
        new_a = np.where(finalize, 0, a)
        new_b = np.where(rotate, (a + b) % self.q, b)
        new_fr = np.where(finalize, round_index + 1, fr)
        return (new_a, new_b, orig, new_fr)

    def batch_is_final(self, state):
        """Vectorized ``is_final``: boolean finality mask over the state."""
        return state[3] >= 0

    def batch_decode_final(self, state):
        """Vectorized ``decode_final``: decoded color array (scalar errors kept)."""
        a, b, orig, fr = state
        working = fr < 0
        if bool(working.any()):
            v = int(working.argmax())
            raise ValueError(
                "vertex has not finalized: %r"
                % ((int(a[v]), int(b[v]), int(orig[v]), None),)
            )
        return b

    def batch_to_scalar(self, state):
        """The state as the scalar engine's internal color list."""
        a, b, orig, fr = state
        return [
            (av, bv, ov, None if fv < 0 else fv)
            for av, bv, ov, fv in zip(
                a.tolist(), b.tolist(), orig.tolist(), fr.tolist()
            )
        ]


def finalization_orientation(graph, internal_colors):
    """Orient intra-class edges towards the earlier-finalizing endpoint.

    Parameters
    ----------
    graph:
        The :class:`~repro.runtime.graph.StaticGraph` ArbAG ran on.
    internal_colors:
        The final internal colors (``RunResult.colors``): 4-tuples
        ``(a, b, orig, fr)`` with ``fr`` set.

    Returns
    -------
    list[list[int]]:
        ``out[v]`` = the out-neighbors of ``v`` inside its color class.  The
        order ``(fr, vertex)`` is total, so the orientation is acyclic, and
        Lemma 6.2 bounds every out-degree by ``O(p)``.
    """
    out = [[] for _ in range(graph.n)]
    for u, v in graph.edges:
        au, bu, ou, fu = internal_colors[u]
        av, bv, ov, fv = internal_colors[v]
        if bu != bv:
            continue
        if fu is None or fv is None:
            raise ValueError("orientation requires a fully finalized run")
        if (fu, u) < (fv, v):
            out[v].append(u)
        else:
            out[u].append(v)
    return out
