"""AG over the additive group ``Z_{Delta+1}`` — the exact (Delta+1) step.

Section 7 observes that primality of the modulus is only needed while
*working* vertices must drift apart; if the starting point is a proper
``(1 + eps) * Delta``-coloring with ``eps <= 1`` (at most ``2 * (Delta + 1)``
colors), colors can be written as ``<b, a>`` with ``b in {0, 1}`` and
``a in Z_N``, ``N = Delta + 1``, and the AG step run with arithmetic modulo
the (not necessarily prime) ``N``:

* ``b == 0``: the color is final, forever;
* ``b == 1``: if some neighbor has the same ``a`` (*regardless of its* ``b``),
  rotate ``<1, (a + 1) mod N>``; otherwise finalize ``<0, a>``.

Two working neighbors start with distinct ``a`` (their pairs differ and both
have ``b = 1``) and both advance by exactly 1 each round, so they never
collide; a working vertex passes each finalized neighbor's ``a`` at most once
per ``N`` rounds, and with at most ``Delta < N`` finalized neighbors some
round in every window of ``N`` is conflict-free.  Hence an exact
``(Delta+1)``-coloring in ``N = Delta + 1`` rounds, with the coloring proper
(as pairs) throughout — no standard color reduction needed.
"""

from repro.runtime.algorithm import LocallyIterativeColoring

__all__ = ["AdditiveGroupZN"]


class AdditiveGroupZN(LocallyIterativeColoring):
    """``<= 2(Delta+1)`` colors to exactly ``Delta + 1`` in ``Delta + 1`` rounds."""

    name = "ag-zn"
    maintains_proper = True
    uniform_step = True

    def __init__(self):
        super().__init__()
        self.modulus = None

    def configure(self, info):
        super().configure(info)
        self.modulus = info.max_degree + 1
        if info.in_palette_size > 2 * self.modulus:
            raise ValueError(
                "AG(N) needs a (1+eps)Delta-coloring with eps <= 1: "
                "got %d colors > 2 * (Delta + 1) = %d"
                % (info.in_palette_size, 2 * self.modulus)
            )

    @property
    def out_palette_size(self):
        self._require_configured()
        return self.modulus

    @property
    def rounds_bound(self):
        self._require_configured()
        return self.modulus

    def encode_initial(self, color):
        self._require_configured()
        n = self.modulus
        if not (0 <= color < 2 * n):
            raise ValueError("input color %d out of range [0, %d)" % (color, 2 * n))
        return (color // n, color % n)

    def step(self, round_index, color, neighbor_colors):
        b, a = color
        if b == 0:
            return color
        if any(na == a for _, na in neighbor_colors):
            return (1, (a + 1) % self.modulus)
        return (0, a)

    def is_final(self, color):
        return color[0] == 0

    def decode_final(self, color):
        b, a = color
        if b != 0:
            raise ValueError("vertex still working: %r" % (color,))
        return a

    def message_bits(self, round_index):
        if round_index == 0:
            return super().message_bits(round_index)
        return 1

    # -- batch protocol (see repro.runtime.fast_engine) -------------------------
    #
    # State: (b, a) as two int64 arrays.  The conflict test ("some neighbor
    # has the same a, regardless of its b") is pure existence, so the kernel
    # is visibility-independent.

    def batch_encode_initial(self, initial):
        """Vectorized ``encode_initial``: int64 input colors to the state arrays."""
        self._require_configured()
        n = self.modulus
        bad = (initial < 0) | (initial >= 2 * n)
        if bool(bad.any()):
            first = int(initial[int(bad.argmax())])
            raise ValueError("input color %d out of range [0, %d)" % (first, 2 * n))
        return (initial // n, initial % n)

    def step_batch(self, round_index, state, csr, visibility):
        """Vectorized ``step``: advance every vertex one round on the CSR view."""
        import numpy as np

        b, a = state
        conflict = csr.any_per_vertex(csr.gather(a) == csr.owner_values(a))
        working = b != 0
        new_b = np.where(working & ~conflict, 0, b)
        new_a = np.where(working & conflict, (a + 1) % self.modulus, a)
        return (new_b, new_a)

    def batch_is_final(self, state):
        """Vectorized ``is_final``: boolean finality mask over the state."""
        return state[0] == 0

    def batch_decode_final(self, state):
        """Vectorized ``decode_final``: decoded color array (scalar errors kept)."""
        b, a = state
        working = b != 0
        if bool(working.any()):
            v = int(working.argmax())
            raise ValueError(
                "vertex still working: %r" % ((int(b[v]), int(a[v])),)
            )
        return a
