"""The Additive-Group (AG) coloring algorithm — Section 3 of the paper.

Given a proper ``k``-coloring with ``k = Theta(Delta^2)``, pick a prime ``q``
with ``q >= sqrt(k)`` and ``q > 2 * Delta`` and write every color ``i`` as the
pair ``<a, b> = <i // q, i mod q>`` over ``Z_q``.  Every round, every vertex
in parallel applies one uniform rule:

* if some neighbor shares the vertex's second coordinate ``b`` (a *conflict*,
  Definition 3.1), rotate: ``<a, (b + a) mod q>``;
* otherwise *finalize*: ``<0, b>``.

Because ``q`` is prime, two working neighbors' second coordinates drift apart
at rate ``(a - a') != 0`` and can coincide at most once per ``q`` rounds
(Lemma 3.3); a working vertex passes a finalized neighbor's fixed ``b`` at
most once per ``q`` rounds (Lemma 3.4).  So each neighbor blocks at most two
of the first ``q > 2 * Delta`` rounds and every vertex finds a conflict-free
round and finalizes within ``q`` rounds (Corollary 3.5).  The coloring is
proper after every round (Lemma 3.2) — the locally-iterative contract.

The rule never inspects the round number, neighbor identities, or
multiplicities: it runs unchanged in the SET-LOCAL model and is the engine of
the self-stabilizing algorithms in Section 4.  After the first color
exchange, a single bit per neighbor per round ("final" vs "rotated") keeps
neighbor color views synchronized, which is what the CONGEST/Bit-Round edge
coloring of Section 5 exploits; :meth:`message_bits` reflects that.
"""

import math

from repro.mathutil.primes import next_prime_at_least
from repro.runtime.algorithm import LocallyIterativeColoring

__all__ = ["AdditiveGroupColoring", "ag_prime_for"]


def ag_prime_for(in_palette_size, max_degree, epsilon=None):
    """Return the AG modulus: the smallest prime ``q`` with ``q^2 >= k`` and
    ``q >= 2 * Delta + 1``.

    With ``k = Theta(Delta^2)`` this lands in ``[sqrt(k), 2 * sqrt(k)]`` as in
    Section 3 (Bertrand's postulate); for smaller ``k`` the ``2 * Delta + 1``
    floor keeps Lemmas 3.3/3.4 valid.

    With ``epsilon`` set (Corollary 7.3's tradeoff), the degree floor relaxes
    to ``(1 + epsilon) * Delta``: a smaller output palette, paid for with
    ``1 + ceil(1/epsilon)`` convergence phases of ``q`` rounds each.
    """
    if epsilon is None:
        degree_floor = 2 * max_degree + 1
    else:
        if epsilon <= 0:
            raise ValueError("epsilon must be positive")
        degree_floor = int(math.ceil((1 + epsilon) * max_degree)) + 1
    floor = max(
        math.isqrt(max(0, in_palette_size - 1)) + 1,
        degree_floor,
        2,
    )
    return next_prime_at_least(floor)


class AdditiveGroupColoring(LocallyIterativeColoring):
    """One uniform locally-iterative step: rotate on conflict, else finalize.

    Input: proper coloring with ``k <= q^2`` colors.  Output: proper
    ``q``-coloring, ``q = O(sqrt(k) + Delta)``, within ``q`` rounds.

    Internal colors are pairs ``(a, b)`` with ``0 <= a, b < q``; a color is
    final once ``a == 0``.

    ``epsilon`` enables the Corollary 7.3 tradeoff: the modulus floor drops
    from ``2 * Delta + 1`` to ``(1 + epsilon) * Delta``, shrinking the output
    palette, while convergence takes ``1 + ceil(1/epsilon_eff)`` phases of
    ``q`` rounds (a vertex failing to finalize in a phase must have had
    ``>= (q - Delta)`` neighbors finalize during it; finalized neighbors
    block at most one round of each later phase).
    """

    name = "additive-group"
    maintains_proper = True
    uniform_step = True

    def __init__(self, epsilon=None):
        super().__init__()
        self.epsilon = epsilon
        self.q = None

    def configure(self, info):
        super().configure(info)
        self.q = ag_prime_for(info.in_palette_size, info.max_degree, self.epsilon)

    @property
    def effective_epsilon(self):
        """The realized slack ``q / Delta - 1`` (>= the requested epsilon)."""
        self._require_configured()
        delta = max(1, self.info.max_degree)
        return self.q / delta - 1

    @property
    def out_palette_size(self):
        self._require_configured()
        return self.q

    @property
    def rounds_bound(self):
        """Corollary 3.5 (``q`` rounds) or 7.3 (``O(q / epsilon)`` rounds)."""
        self._require_configured()
        if self.epsilon is None or self.q >= 2 * self.info.max_degree + 1:
            return self.q
        phases = 1 + math.ceil(1.0 / max(1e-9, self.effective_epsilon))
        return phases * self.q

    def encode_initial(self, color):
        self._require_configured()
        if not (0 <= color < self.q * self.q):
            raise ValueError(
                "input color %d does not fit in q^2 = %d" % (color, self.q * self.q)
            )
        return (color // self.q, color % self.q)

    def step(self, round_index, color, neighbor_colors):
        a, b = color
        conflict = any(nb == b for _, nb in neighbor_colors)
        if conflict:
            return (a, (b + a) % self.q)
        return (0, b)

    def is_final(self, color):
        return color[0] == 0

    def decode_final(self, color):
        a, b = color
        if a != 0:
            raise ValueError("vertex still in working stage: %r" % (color,))
        return b

    def message_bits(self, round_index):
        """Full color once, then the 1-bit final/rotated indicator.

        Section 3: "it is enough to send only one bit indicating whether its
        color became final or that it changed according to the rule".
        """
        if round_index == 0:
            return super().message_bits(round_index)
        return 1

    # -- batch protocol (see repro.runtime.fast_engine) -------------------------
    #
    # State: (a, b) as two int64 arrays.  The conflict test is pure existence
    # over the neighborhood, so the kernel is identical in LOCAL and
    # SET-LOCAL (multiplicities never matter).

    def batch_encode_initial(self, initial):
        """Vectorized ``encode_initial``: int64 input colors to the state arrays."""
        self._require_configured()
        q = self.q
        bad = (initial < 0) | (initial >= q * q)
        if bool(bad.any()):
            first = int(initial[int(bad.argmax())])
            raise ValueError(
                "input color %d does not fit in q^2 = %d" % (first, q * q)
            )
        return (initial // q, initial % q)

    def step_batch(self, round_index, state, csr, visibility):
        """Vectorized ``step``: advance every vertex one round on the CSR view."""
        import numpy as np

        a, b = state
        conflict = csr.any_per_vertex(csr.gather(b) == csr.owner_values(b))
        new_a = np.where(conflict, a, 0)
        new_b = np.where(conflict, (b + a) % self.q, b)
        return (new_a, new_b)

    def batch_is_final(self, state):
        """Vectorized ``is_final``: boolean finality mask over the state."""
        return state[0] == 0

    def batch_decode_final(self, state):
        """Vectorized ``decode_final``: decoded color array (scalar errors kept)."""
        a, b = state
        working = a != 0
        if bool(working.any()):
            v = int(working.argmax())
            raise ValueError(
                "vertex still in working stage: %r" % ((int(a[v]), int(b[v])),)
            )
        return b
