"""The paper's primary contribution: the Additive-Group coloring family.

* :mod:`repro.core.ag` — the Additive-Group (AG) algorithm of Section 3:
  ``Theta(Delta^2)`` colors down to ``O(Delta)`` in ``O(Delta)`` rounds,
  locally-iterative, proper every round, one uniform step.
* :mod:`repro.core.ag3` — the 3-dimensional variant 3AG of Section 7
  (``p^3 -> p`` colors in ``O(p)`` rounds, still one uniform step).
* :mod:`repro.core.agn` — AG over the additive group ``Z_{Delta+1}``
  (not necessarily a field), turning a ``<= 2(Delta+1)``-coloring into an
  exact (Delta+1)-coloring.
* :mod:`repro.core.hybrid` — the high/low-color hybrid of Section 7 that
  reaches exactly ``Delta + 1`` colors without the standard color reduction.
* :mod:`repro.core.arbdefective` — ArbAG (Section 6): the conflict-tolerant
  variant computing ``O(p)``-arbdefective ``O(Delta/p)``-colorings.
* :mod:`repro.core.reductions` — the classical standard color reduction.
* :mod:`repro.core.pipeline` — ready-made end-to-end colorings
  (Corollary 3.6, Section 7 exact, Theorem 6.4 sublinear).
"""

from repro.core.ag import AdditiveGroupColoring
from repro.core.ag3 import ThreeDimensionalAG
from repro.core.agn import AdditiveGroupZN
from repro.core.hybrid import ExactDeltaPlusOneHybrid
from repro.core.arbdefective import ArbAGColoring
from repro.core.reductions import StandardColorReduction
from repro.core.pipeline import (
    delta_plus_one_coloring,
    delta_plus_one_exact_no_reduction,
    one_plus_eps_delta_coloring,
    sublinear_delta_plus_one_coloring,
)

__all__ = [
    "AdditiveGroupColoring",
    "ThreeDimensionalAG",
    "AdditiveGroupZN",
    "ExactDeltaPlusOneHybrid",
    "ArbAGColoring",
    "StandardColorReduction",
    "delta_plus_one_coloring",
    "delta_plus_one_exact_no_reduction",
    "one_plus_eps_delta_coloring",
    "sublinear_delta_plus_one_coloring",
]
