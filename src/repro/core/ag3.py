"""3AG — the 3-dimensional Additive-Group algorithm (Section 7).

Reduces a proper ``p^3``-coloring to a proper ``p``-coloring in ``O(p)``
rounds with one uniform step (no phases), which is what makes it deployable
in self-stabilizing settings where different vertices cannot be assumed to be
in the same phase.

Colors are triples ``<c, b, a>`` over ``Z_p``.  The step (pseudocode 3AG(p)):

* while ``c != 0``: if no neighbor *with a different first coordinate* shares
  ``b``, drop to ``<0, b, a>``; otherwise rotate the middle coordinate
  ``<c, b + c, a>``;
* once ``c == 0``: if no neighbor shares ``a``, finalize to ``<0, 0, a>``;
  otherwise rotate the last coordinate ``<0, b, a + b>``.

**Reproduction note.**  The paper's pseudocode tests plain ``b_v != b_u`` in
the first phase.  Taken literally that deadlocks: two adjacent working
vertices with identical ``(c, b)`` but different ``a`` (possible in any
proper ``p^3``-coloring) rotate ``b`` in lockstep and block each other
forever, contradicting the convergence claim "each neighbor conflicts at
most three times".  The convergence analysis implicitly assumes colliding
``b``-values drift apart, i.e. that only *different-``c``* neighbors count as
phase-1 conflicts — which is the rule implemented here.  Lockstep pairs then
drop to ``<0, b, a>`` together (distinct because their ``a`` differ) and
phase 2 separates them through their distinct ``a`` coordinates.  With this
reading, Lemma 7.1's properness case analysis goes through verbatim (a
``c != 0`` vertex still cannot drop onto a finalized ``<0, 0, a>`` neighbor:
that neighbor has ``b = 0`` and first coordinate ``0 != c``, so it blocks the
drop), and the round count is the paper's: every vertex reaches ``c == 0``
within ``3 * Delta + 1`` rounds (a neighbor blocks as a working vertex, as a
dropped vertex with frozen ``b``, and as a finalized vertex with ``b = 0`` —
at most three windows) and finalizes within ``2 * Delta + 1`` more, so ``2p``
rounds suffice for ``p >= 3 * Delta + 1`` (Corollary 7.2; the paper works
with the same ``p >= 3 * Delta + 1`` assumption).
"""

import math

from repro.mathutil.primes import next_prime_at_least
from repro.runtime.algorithm import LocallyIterativeColoring

__all__ = ["ThreeDimensionalAG", "ag3_prime_for"]


def ag3_prime_for(in_palette_size, max_degree, epsilon=None):
    """Smallest prime ``p`` with ``p^3 >= k`` and ``p >= 3 * Delta + 1``.

    With ``epsilon`` (Corollary 7.3) the degree floor relaxes to
    ``(1 + epsilon) * Delta`` at the cost of extra convergence phases.
    """
    cube_floor = 2
    while cube_floor ** 3 < in_palette_size:
        cube_floor += 1
    if epsilon is None:
        degree_floor = 3 * max_degree + 1
    else:
        if epsilon <= 0:
            raise ValueError("epsilon must be positive")
        degree_floor = int(math.ceil((1 + epsilon) * max_degree)) + 1
    return next_prime_at_least(max(cube_floor, degree_floor, 2))


class ThreeDimensionalAG(LocallyIterativeColoring):
    """``p^3`` colors to ``p`` colors in ``2p`` rounds, one uniform step."""

    name = "3ag"
    maintains_proper = True
    uniform_step = True

    def __init__(self, epsilon=None):
        super().__init__()
        self.epsilon = epsilon
        self.p = None

    def configure(self, info):
        super().configure(info)
        self.p = ag3_prime_for(info.in_palette_size, info.max_degree, self.epsilon)

    @property
    def out_palette_size(self):
        self._require_configured()
        return self.p

    @property
    def rounds_bound(self):
        """Corollary 7.2: ``2p`` rounds for ``p >= 3 * Delta + 1``; Corollary
        7.3: a factor ``O(1/epsilon)`` more when the palette is squeezed."""
        self._require_configured()
        if self.epsilon is None or self.p >= 3 * self.info.max_degree + 1:
            return 2 * self.p
        delta = max(1, self.info.max_degree)
        eff = max(1e-9, self.p / delta - 1)
        phases = 2 * (1 + math.ceil(1.0 / eff))
        return phases * self.p

    def encode_initial(self, color):
        self._require_configured()
        p = self.p
        if not (0 <= color < p ** 3):
            raise ValueError("input color %d does not fit in p^3 = %d" % (color, p ** 3))
        return (color // (p * p), (color // p) % p, color % p)

    def step(self, round_index, color, neighbor_colors):
        c, b, a = color
        p = self.p
        if c != 0:
            if all(nb != b or nc == c for nc, nb, _ in neighbor_colors):
                return (0, b, a)
            return (c, (b + c) % p, a)
        if all(na != a for _, _, na in neighbor_colors):
            return (0, 0, a)
        return (0, b, (a + b) % p)

    def is_final(self, color):
        c, b, _ = color
        return c == 0 and b == 0

    def decode_final(self, color):
        c, b, a = color
        if c != 0 or b != 0:
            raise ValueError("vertex has not finalized: %r" % (color,))
        return a

    def message_bits(self, round_index):
        """Full color once, then 2 bits per round (which coordinate moved).

        Section 5 uses exactly this: each endpoint sends the results of its
        two local tests (``b`` distinct? ``a`` distinct?) as 2 bits.
        """
        if round_index == 0:
            return max(1, math.ceil(math.log2(max(2, self.p ** 3))))
        return 2

    # -- batch protocol (see repro.runtime.fast_engine) -------------------------
    #
    # State: (c, b, a) as three int64 arrays.  Both conflict tests are pure
    # existence over the neighborhood, so the kernel is visibility-independent.

    def batch_encode_initial(self, initial):
        """Vectorized ``encode_initial``: int64 input colors to the state arrays."""
        self._require_configured()
        p = self.p
        bad = (initial < 0) | (initial >= p ** 3)
        if bool(bad.any()):
            first = int(initial[int(bad.argmax())])
            raise ValueError(
                "input color %d does not fit in p^3 = %d" % (first, p ** 3)
            )
        return (initial // (p * p), (initial // p) % p, initial % p)

    def step_batch(self, round_index, state, csr, visibility):
        """Vectorized ``step``: advance every vertex one round on the CSR view."""
        import numpy as np

        c, b, a = state
        p = self.p
        nc, nb, na = csr.gather(c), csr.gather(b), csr.gather(a)
        # Phase-1 conflict: a *different-c* neighbor shares b (see the
        # reproduction note above); phase-2 conflict: a neighbor shares a.
        phase1 = csr.any_per_vertex(
            (nb == csr.owner_values(b)) & (nc != csr.owner_values(c))
        )
        phase2 = csr.any_per_vertex(na == csr.owner_values(a))
        working = c != 0
        new_c = np.where(working & phase1, c, 0)
        new_b = np.where(
            working,
            np.where(phase1, (b + c) % p, b),
            np.where(phase2, b, 0),
        )
        new_a = np.where(working, a, np.where(phase2, (a + b) % p, a))
        return (new_c, new_b, new_a)

    def batch_is_final(self, state):
        """Vectorized ``is_final``: boolean finality mask over the state."""
        c, b, _ = state
        return (c == 0) & (b == 0)

    def batch_decode_final(self, state):
        """Vectorized ``decode_final``: decoded color array (scalar errors kept)."""
        c, b, a = state
        unfinished = (c != 0) | (b != 0)
        if bool(unfinished.any()):
            v = int(unfinished.argmax())
            raise ValueError(
                "vertex has not finalized: %r"
                % ((int(c[v]), int(b[v]), int(a[v])),)
            )
        return a
