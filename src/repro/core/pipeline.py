"""Deprecated location of the end-to-end recipes; see :mod:`repro.recipes`.

The ready-made pipelines (Corollary 3.6, the Section 7 exact variant, the
Theorem 6.4 arbdefective routes) now live in :mod:`repro.recipes` — the old
``repro.core.pipeline`` name collided confusingly with
:mod:`repro.runtime.pipeline` (the stage-composition machinery).  This shim
keeps the historical import path working; new code should import from
``repro.recipes``.
"""

from repro.recipes import (  # noqa: F401  (re-exported compatibility names)
    SublinearColoringResult,
    complete_arbdefective_to_proper,
    delta_plus_one_coloring,
    delta_plus_one_exact_no_reduction,
    one_plus_eps_delta_coloring,
    sublinear_delta_plus_one_coloring,
)

__all__ = [
    "delta_plus_one_coloring",
    "delta_plus_one_exact_no_reduction",
    "one_plus_eps_delta_coloring",
    "sublinear_delta_plus_one_coloring",
    "complete_arbdefective_to_proper",
    "SublinearColoringResult",
]
