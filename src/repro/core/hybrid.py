"""Exact (Delta+1)-coloring without the standard color reduction (Section 7).

The construction splits colors into *low* (below ``2N``, ``N = Delta + 1``)
and *high* (the rest).  Low-color vertices run AG(N)
(:mod:`repro.core.agn`), ignoring their high-color neighbors entirely.
High-color vertices run AG(p) over a prime ``p`` in ``(N, 2N]`` (one exists
by Bertrand's postulate) with two twists from the paper:

* a high vertex *takes into account* its finalized low neighbors when testing
  for a conflict (their values live in ``[0, N)``, so they can only collide
  with a high vertex about to land there), and
* a high vertex is *not allowed to finalize* while it still has a
  non-finalized low-color neighbor; if it wants to finalize but may not, it
  keeps rotating ``<b, a + b>`` instead (Lemma 7.4 shows this keeps the
  coloring proper).

When a high vertex finally lands on value ``a``, it simply *becomes* a
low-color vertex (working if ``a >= N``, final if ``a < N``) and continues
with AG(N).  Lows converge within ``N`` rounds of appearing; highs converge a
constant number of ``p``-round phases later (Corollary 7.3 with
``eps = p / Delta - 1``), so the whole stage takes ``O(Delta)`` rounds and
ends with every vertex holding a final color in ``[0, Delta]`` — an exact
(Delta+1)-coloring, reached with one palette-monotone uniform rule and no
round counter, which is why the same machinery self-stabilizes (Theorem 7.5).

Internal colors are tagged triples: ``("L", 0, a)`` final, ``("L", 1, a)``
low working, ``("H", b, a)`` high working with rotation step ``b >= 1``.
"""

import math

from repro.runtime.algorithm import LocallyIterativeColoring

__all__ = ["ExactDeltaPlusOneHybrid", "largest_prime_at_most"]


def largest_prime_at_most(n):
    """Return the largest prime ``<= n`` (None if there is none)."""
    from repro.mathutil.primes import is_prime

    candidate = n
    while candidate >= 2:
        if is_prime(candidate):
            return candidate
        candidate -= 1
    return None


class ExactDeltaPlusOneHybrid(LocallyIterativeColoring):
    """High/low hybrid: any ``<= 2N + p(p-1)``-coloring to exactly ``Delta+1``."""

    name = "exact-hybrid"
    maintains_proper = True
    uniform_step = True

    LOW = "L"
    HIGH = "H"

    def __init__(self):
        super().__init__()
        self.n_colors = None  # N = Delta + 1
        self.p = None

    def configure(self, info):
        super().configure(info)
        n = info.max_degree + 1
        p = largest_prime_at_most(2 * n)
        if p is None or p <= info.max_degree:
            # Only possible for Delta = 0 where N = 1, 2N = 2, p = 2 > 0. Guard anyway.
            p = 2
        self.n_colors = n
        self.p = p
        capacity = 2 * n + p * (p - 1)
        # Delta = 0: no edges, so no conflicts ever arise and every vertex
        # finalizes to color 0 immediately; any input palette is acceptable.
        if info.max_degree > 0 and info.in_palette_size > capacity:
            raise ValueError(
                "hybrid stage capacity is %d colors (2N + p(p-1), N=%d, p=%d); "
                "got %d — reduce with AG first" % (capacity, n, p, info.in_palette_size)
            )

    @property
    def out_palette_size(self):
        self._require_configured()
        return self.n_colors

    @property
    def rounds_bound(self):
        """N rounds for lows + O(1) phases of p rounds for highs + N more."""
        self._require_configured()
        n, p = self.n_colors, self.p
        delta = self.info.max_degree
        phases = 2 + math.ceil(delta / max(1, p - n))
        return n + phases * p + n

    def encode_initial(self, color):
        self._require_configured()
        n, p = self.n_colors, self.p
        if color < 0:
            raise ValueError("negative color")
        if color < 2 * n:
            return (self.LOW, color // n, color % n)
        j = color - 2 * n
        return (self.HIGH, j // p + 1, j % p)

    def step(self, round_index, color, neighbor_colors):
        tag, b, a = color
        if tag == self.LOW:
            return self._low_step(b, a, neighbor_colors)
        return self._high_step(b, a, neighbor_colors)

    def _low_step(self, b, a, neighbor_colors):
        """AG(N), ignoring high-color neighbors (the paper's rule)."""
        if b == 0:
            return (self.LOW, 0, a)
        conflict = any(
            tag == self.LOW and na == a for tag, _, na in neighbor_colors
        )
        if conflict:
            return (self.LOW, 1, (a + 1) % self.n_colors)
        return (self.LOW, 0, a)

    def _high_step(self, b, a, neighbor_colors):
        """AG(p) with low-aware conflicts and the finalization gate."""
        has_low_working = any(
            tag == self.LOW and nb == 1 for tag, nb, _ in neighbor_colors
        )
        conflict = any(
            (tag == self.HIGH and na == a)
            or (tag == self.LOW and nb == 0 and na == a)
            for tag, nb, na in neighbor_colors
        )
        if conflict or has_low_working:
            return (self.HIGH, b, (a + b) % self.p)
        # Land in the low color space and continue as a low vertex.
        if a < self.n_colors:
            return (self.LOW, 0, a)
        return (self.LOW, 1, a - self.n_colors)

    def is_final(self, color):
        tag, b, _ = color
        return tag == self.LOW and b == 0

    def decode_final(self, color):
        tag, b, a = color
        if tag != self.LOW or b != 0:
            raise ValueError("vertex has not finalized: %r" % (color,))
        return a

    def message_bits(self, round_index):
        if round_index == 0:
            return super().message_bits(round_index)
        return 2

    # -- batch protocol (see repro.runtime.fast_engine) -------------------------
    #
    # State: three int64 columns (tag, b, a) with tag 0 = LOW, 1 = HIGH.
    # Every rule is an existence test over the neighbor multiset, so one
    # kernel serves LOCAL and SET-LOCAL; component-wise column equality is
    # exactly tuple equality, so the engine's conflict/properness checks work
    # unchanged.

    _TAG_LOW = 0
    _TAG_HIGH = 1

    def batch_encode_initial(self, initial):
        """Vectorized ``encode_initial`` (same validation as the scalar path)."""
        from repro.runtime.csr import numpy_or_none

        np = numpy_or_none()
        n, p = self.n_colors, self.p
        if bool((initial < 0).any()):
            raise ValueError("negative color")
        low = initial < 2 * n
        j = initial - 2 * n
        tag = np.where(low, self._TAG_LOW, self._TAG_HIGH)
        b = np.where(low, initial // n, j // p + 1)
        a = np.where(low, initial % n, j % p)
        return (tag, b, a)

    def step_batch(self, round_index, state, csr, visibility):
        """Vectorized ``step``: one uniform hybrid round for all vertices."""
        from repro.runtime.csr import numpy_or_none

        np = numpy_or_none()
        tag, b, a = state
        n, p = self.n_colors, self.p
        nbr_tag = csr.gather(tag)
        nbr_b = csr.gather(b)
        nbr_a = csr.gather(a)
        own_a = csr.owner_values(a)
        nbr_low = nbr_tag == self._TAG_LOW
        same_a = nbr_a == own_a
        low_conflict = csr.any_per_vertex(nbr_low & same_a)
        low_working = csr.any_per_vertex(nbr_low & (nbr_b == 1))
        high_conflict = csr.any_per_vertex(
            same_a & (~nbr_low | (nbr_b == 0))
        )

        low = tag == self._TAG_LOW
        high = ~low
        new_tag = tag.copy()
        new_b = b.copy()
        new_a = a.copy()

        rotate = low & (b != 0) & low_conflict
        settle = low & (b != 0) & ~low_conflict
        new_b[rotate] = 1
        new_a[rotate] = (a[rotate] + 1) % n
        new_b[settle] = 0

        stay = high & (high_conflict | low_working)
        new_a[stay] = (a[stay] + b[stay]) % p
        land = high & ~stay
        new_tag[land] = self._TAG_LOW
        land_low = land & (a < n)
        land_high = land & (a >= n)
        new_b[land_low] = 0
        new_b[land_high] = 1
        new_a[land_high] = a[land_high] - n
        return (new_tag, new_b, new_a)

    def batch_is_final(self, state):
        """Vectorized ``is_final``: low and settled."""
        tag, b, _ = state
        return (tag == self._TAG_LOW) & (b == 0)

    def batch_decode_final(self, state):
        """Vectorized ``decode_final`` with the scalar path's exact error."""
        from repro.runtime.csr import numpy_or_none

        np = numpy_or_none()
        not_final = ~self.batch_is_final(state)
        if bool(not_final.any()):
            v = int(np.argmax(not_final))
            raise ValueError(
                "vertex has not finalized: %r" % (self._scalar_color(state, v),)
            )
        return state[2]

    def _scalar_color(self, state, v):
        tag, b, a = state
        label = self.LOW if int(tag[v]) == self._TAG_LOW else self.HIGH
        return (label, int(b[v]), int(a[v]))

    def batch_to_scalar(self, state):
        """The state as the scalar engine's tagged-triple color list."""
        tag, b, a = state
        low = self.LOW
        high = self.HIGH
        return [
            (low if t == self._TAG_LOW else high, bv, av)
            for t, bv, av in zip(tag.tolist(), b.tolist(), a.tolist())
        ]
