"""Exact (Delta+1)-coloring without the standard color reduction (Section 7).

The construction splits colors into *low* (below ``2N``, ``N = Delta + 1``)
and *high* (the rest).  Low-color vertices run AG(N)
(:mod:`repro.core.agn`), ignoring their high-color neighbors entirely.
High-color vertices run AG(p) over a prime ``p`` in ``(N, 2N]`` (one exists
by Bertrand's postulate) with two twists from the paper:

* a high vertex *takes into account* its finalized low neighbors when testing
  for a conflict (their values live in ``[0, N)``, so they can only collide
  with a high vertex about to land there), and
* a high vertex is *not allowed to finalize* while it still has a
  non-finalized low-color neighbor; if it wants to finalize but may not, it
  keeps rotating ``<b, a + b>`` instead (Lemma 7.4 shows this keeps the
  coloring proper).

When a high vertex finally lands on value ``a``, it simply *becomes* a
low-color vertex (working if ``a >= N``, final if ``a < N``) and continues
with AG(N).  Lows converge within ``N`` rounds of appearing; highs converge a
constant number of ``p``-round phases later (Corollary 7.3 with
``eps = p / Delta - 1``), so the whole stage takes ``O(Delta)`` rounds and
ends with every vertex holding a final color in ``[0, Delta]`` — an exact
(Delta+1)-coloring, reached with one palette-monotone uniform rule and no
round counter, which is why the same machinery self-stabilizes (Theorem 7.5).

Internal colors are tagged triples: ``("L", 0, a)`` final, ``("L", 1, a)``
low working, ``("H", b, a)`` high working with rotation step ``b >= 1``.
"""

import math

from repro.runtime.algorithm import LocallyIterativeColoring

__all__ = ["ExactDeltaPlusOneHybrid", "largest_prime_at_most"]


def largest_prime_at_most(n):
    """Return the largest prime ``<= n`` (None if there is none)."""
    from repro.mathutil.primes import is_prime

    candidate = n
    while candidate >= 2:
        if is_prime(candidate):
            return candidate
        candidate -= 1
    return None


class ExactDeltaPlusOneHybrid(LocallyIterativeColoring):
    """High/low hybrid: any ``<= 2N + p(p-1)``-coloring to exactly ``Delta+1``."""

    name = "exact-hybrid"
    maintains_proper = True
    uniform_step = True

    LOW = "L"
    HIGH = "H"

    def __init__(self):
        super().__init__()
        self.n_colors = None  # N = Delta + 1
        self.p = None

    def configure(self, info):
        super().configure(info)
        n = info.max_degree + 1
        p = largest_prime_at_most(2 * n)
        if p is None or p <= info.max_degree:
            # Only possible for Delta = 0 where N = 1, 2N = 2, p = 2 > 0. Guard anyway.
            p = 2
        self.n_colors = n
        self.p = p
        capacity = 2 * n + p * (p - 1)
        # Delta = 0: no edges, so no conflicts ever arise and every vertex
        # finalizes to color 0 immediately; any input palette is acceptable.
        if info.max_degree > 0 and info.in_palette_size > capacity:
            raise ValueError(
                "hybrid stage capacity is %d colors (2N + p(p-1), N=%d, p=%d); "
                "got %d — reduce with AG first" % (capacity, n, p, info.in_palette_size)
            )

    @property
    def out_palette_size(self):
        self._require_configured()
        return self.n_colors

    @property
    def rounds_bound(self):
        """N rounds for lows + O(1) phases of p rounds for highs + N more."""
        self._require_configured()
        n, p = self.n_colors, self.p
        delta = self.info.max_degree
        phases = 2 + math.ceil(delta / max(1, p - n))
        return n + phases * p + n

    def encode_initial(self, color):
        self._require_configured()
        n, p = self.n_colors, self.p
        if color < 0:
            raise ValueError("negative color")
        if color < 2 * n:
            return (self.LOW, color // n, color % n)
        j = color - 2 * n
        return (self.HIGH, j // p + 1, j % p)

    def step(self, round_index, color, neighbor_colors):
        tag, b, a = color
        if tag == self.LOW:
            return self._low_step(b, a, neighbor_colors)
        return self._high_step(b, a, neighbor_colors)

    def _low_step(self, b, a, neighbor_colors):
        """AG(N), ignoring high-color neighbors (the paper's rule)."""
        if b == 0:
            return (self.LOW, 0, a)
        conflict = any(
            tag == self.LOW and na == a for tag, _, na in neighbor_colors
        )
        if conflict:
            return (self.LOW, 1, (a + 1) % self.n_colors)
        return (self.LOW, 0, a)

    def _high_step(self, b, a, neighbor_colors):
        """AG(p) with low-aware conflicts and the finalization gate."""
        has_low_working = any(
            tag == self.LOW and nb == 1 for tag, nb, _ in neighbor_colors
        )
        conflict = any(
            (tag == self.HIGH and na == a)
            or (tag == self.LOW and nb == 0 and na == a)
            for tag, nb, na in neighbor_colors
        )
        if conflict or has_low_working:
            return (self.HIGH, b, (a + b) % self.p)
        # Land in the low color space and continue as a low vertex.
        if a < self.n_colors:
            return (self.LOW, 0, a)
        return (self.LOW, 1, a - self.n_colors)

    def is_final(self, color):
        tag, b, _ = color
        return tag == self.LOW and b == 0

    def decode_final(self, color):
        tag, b, a = color
        if tag != self.LOW or b != 0:
            raise ValueError("vertex has not finalized: %r" % (color,))
        return a

    def message_bits(self, round_index):
        if round_index == 0:
            return super().message_bits(round_index)
        return 2
