"""End-to-end coloring recipes.

This module is the canonical home of the ready-made pipelines (it was
``repro.core.pipeline``, a name that collided confusingly with
:mod:`repro.runtime.pipeline`, the stage-composition machinery; the old
import path keeps working as a shim).

* :func:`delta_plus_one_coloring` — **Corollary 3.6**, the headline result:
  Linial (``log* n + O(1)`` rounds) -> AG (``O(Delta)``) -> standard color
  reduction (``O(Delta)``); a locally-iterative (Delta+1)-coloring in
  ``O(Delta) + log* n`` rounds.
* :func:`delta_plus_one_exact_no_reduction` — **Section 7**: the same but
  finishing with the AG(p)/AG(N) high/low hybrid instead of the standard
  reduction, reaching exactly ``Delta + 1`` colors with uniform AG-style
  steps only (the building block of the self-stabilizing Theorem 7.5).
* :func:`one_plus_eps_delta_coloring` — **Theorem 6.4, first part** (shape):
  defective coloring (``log* n + O(1)``) -> ArbAG (``O(Delta/p)``) ->
  parallel per-class completion along ArbAG's finalization orientation.
  With ``p = Theta(sqrt(Delta))`` the AG-side round count is
  ``O(sqrt(Delta))``; the palette is ``C * Delta`` for a construction
  constant ``C`` (the paper reaches ``(1 + eps) * Delta`` for arbitrarily
  small ``eps`` by plugging ArbAG into the finer machinery of [3], which we
  approximate — see DESIGN.md's substitution notes).
* :func:`sublinear_delta_plus_one_coloring` — **Theorem 6.4, second part**
  (shape): the previous pipeline completed to exactly ``Delta + 1`` colors
  with a standard reduction.  The reduction costs ``O(Delta)`` rounds; the
  genuinely sublinear exact completion of [22] is out of scope (documented
  in EXPERIMENTS.md).
"""

from repro.core.ag import AdditiveGroupColoring
from repro.core.arbdefective import ArbAGColoring, finalization_orientation
from repro.core.hybrid import ExactDeltaPlusOneHybrid
from repro.core.reductions import StandardColorReduction
from repro.defective.vertex import DefectiveLinialColoring
from repro.linial.core import LinialColoring
from repro.runtime.backends import resolve_backend
from repro.runtime.pipeline import ColoringPipeline
from repro.runtime.results import Result

__all__ = [
    "delta_plus_one_coloring",
    "delta_plus_one_exact_no_reduction",
    "one_plus_eps_delta_coloring",
    "sublinear_delta_plus_one_coloring",
    "complete_arbdefective_to_proper",
    "SublinearColoringResult",
]


def _initial_id_coloring(graph):
    """The trivial n-coloring from unique IDs (normalized to ranks)."""
    ids = graph.ids
    if isinstance(ids, range) and ids == range(graph.n):
        # Identity ids (every generated graph, every sharded graph): the
        # ranks are the ids.  Skips an O(n log n) Python sort that dominates
        # setup at out-of-core sizes.
        return list(range(graph.n))
    order = sorted(range(graph.n), key=lambda v: ids[v])
    rank = [0] * graph.n
    for position, v in enumerate(order):
        rank[v] = position
    return rank


def _palette_size(initial_coloring, graph):
    """``max + 1`` of the initial colors, ndarray-aware (no Python scan)."""
    if not graph.n:
        return 1
    if hasattr(initial_coloring, "max"):
        return int(initial_coloring.max()) + 1
    return max(initial_coloring) + 1


def delta_plus_one_coloring(
    graph,
    initial_coloring=None,
    visibility=None,
    check_proper_each_round=False,
    backend="auto",
):
    """Corollary 3.6: a locally-iterative (Delta+1)-coloring, O(Delta)+log* n.

    Returns the :class:`~repro.runtime.pipeline.PipelineResult`; the final
    coloring uses colors in ``[0, Delta]``.  ``backend`` selects the engine
    (see :mod:`repro.runtime.backends`).
    """
    if initial_coloring is None:
        initial_coloring = _initial_id_coloring(graph)
    pipeline = ColoringPipeline(
        [LinialColoring(), AdditiveGroupColoring(), StandardColorReduction()]
    )
    return pipeline.run(
        graph,
        initial_coloring,
        in_palette_size=_palette_size(initial_coloring, graph),
        visibility=visibility,
        check_proper_each_round=check_proper_each_round,
        backend=backend,
    )


def delta_plus_one_exact_no_reduction(
    graph,
    initial_coloring=None,
    visibility=None,
    check_proper_each_round=False,
    backend="auto",
):
    """Section 7: exact (Delta+1)-coloring via the AG(p)/AG(N) hybrid."""
    if initial_coloring is None:
        initial_coloring = _initial_id_coloring(graph)
    pipeline = ColoringPipeline(
        [LinialColoring(), AdditiveGroupColoring(), ExactDeltaPlusOneHybrid()]
    )
    return pipeline.run(
        graph,
        initial_coloring,
        in_palette_size=_palette_size(initial_coloring, graph),
        visibility=visibility,
        check_proper_each_round=check_proper_each_round,
        backend=backend,
    )


class SublinearColoringResult:
    """Outcome of the arbdefective-based pipelines of Theorem 6.4."""

    def __init__(self, colors, palette_size, stage_rounds, out_degree_bound):
        self.colors = colors
        self.palette_size = palette_size
        self.stage_rounds = dict(stage_rounds)
        self.out_degree_bound = out_degree_bound

    @property
    def total_rounds(self):
        """Rounds summed over every stage."""
        return sum(self.stage_rounds.values())

    @property
    def rounds(self):
        """Alias of :attr:`total_rounds` (the shared result protocol)."""
        return self.total_rounds

    @property
    def ag_side_rounds(self):
        """Rounds spent in the Delta-dependent (non-log*) stages."""
        return sum(
            rounds
            for name, rounds in self.stage_rounds.items()
            if name not in ("defective-linial",)
        )

    @property
    def num_colors(self):
        """Distinct colors actually used (<= palette_size)."""
        return len(set(self.colors))

    def to_dict(self):
        """JSON-serializable summary."""
        return {
            "colors": list(self.colors),
            "palette_size": self.palette_size,
            "num_colors": self.num_colors,
            "stage_rounds": dict(self.stage_rounds),
            "total_rounds": self.total_rounds,
            "ag_side_rounds": self.ag_side_rounds,
            "out_degree_bound": self.out_degree_bound,
        }

    def __repr__(self):
        return "SublinearColoringResult(rounds=%d, palette=%d, colors=%d)" % (
            self.total_rounds,
            self.palette_size,
            self.num_colors,
        )


Result.register(SublinearColoringResult)


def complete_arbdefective_to_proper(graph, orientation, class_of, class_palette):
    """Color each arbdefective class in parallel along its orientation.

    Every vertex whose in-class out-neighbors are already colored picks the
    smallest color of its class's private palette not used by an out-neighbor.
    Out-neighbors finalized no later than the vertex did (ArbAG's
    finalization orientation), so in-class in-neighbors are provably
    uncolored when the vertex acts, and ``out_degree + 1`` colors per class
    always suffice.

    Returns ``(colors, rounds)`` where ``colors[v]`` is
    ``class_of[v] * class_palette + local`` and ``rounds`` is the number of
    act-iterations (one synchronous round each).
    """
    n = graph.n
    local = [None] * n
    remaining = set(range(n))
    rounds = 0
    while remaining:
        acting = [
            v
            for v in remaining
            if all(local[u] is not None for u in orientation[v])
        ]
        if not acting:
            raise AssertionError("orientation is cyclic — cannot happen")
        for v in acting:
            taken = {local[u] for u in orientation[v]}
            if len(taken) >= class_palette:
                raise AssertionError(
                    "out-degree %d exceeds class palette %d"
                    % (len(taken), class_palette)
                )
            local[v] = min(c for c in range(class_palette) if c not in taken)
        remaining.difference_update(acting)
        rounds += 1
    colors = [class_of[v] * class_palette + local[v] for v in range(n)]
    return colors, rounds


def _hpartition_completion(graph, class_of, num_classes):
    """Color every arbdefective class in parallel via its own H-partition.

    Each class induces a bounded-arboricity subgraph (Lemma 6.2); the
    Barenboim–Elkin H-partition colors it with ``(2+eps)*a + 1`` colors.
    Classes run in parallel with disjoint palettes, so the round count is
    the max over classes and the palette the max class palette times the
    class count.
    """
    from repro.arboricity.hpartition import arboricity_coloring

    colors = [None] * graph.n
    worst_rounds = 0
    class_palette = 1
    for cid in range(num_classes):
        members = [v for v in graph.vertices() if class_of[v] == cid]
        if not members:
            continue
        subgraph, index = graph.subgraph(members)
        sub_colors, partition, rounds = arboricity_coloring(subgraph)
        worst_rounds = max(worst_rounds, rounds)
        class_palette = max(class_palette, partition.out_degree_bound + 1)
        for v in members:
            colors[v] = sub_colors[index[v]]
    final = [
        class_of[v] * class_palette + (colors[v] or 0) for v in range(graph.n)
    ]
    return final, worst_rounds, class_palette


def _resolve_k_knob(tolerance, k, delta):
    """Fold the Maus-style ``k`` knob into ArbAG's ``tolerance`` budget.

    The family has one tradeoff dial — Maus (2021) phrases it as an
    ``O(k * Delta)``-coloring in ``O(Delta / k) + log*(n)`` rounds — and in
    this pipeline the dial is ArbAG's conflict budget ``p``, which plays the
    role of ``Delta / k``: a *small* ``k`` (near the ``Delta + 1`` regime)
    maps to a large budget, few colors and many rounds, a large ``k`` to a
    small budget, more colors and fewer conflict rounds.  ``k`` and
    ``tolerance`` are two spellings of the same dial; passing both is an
    error.
    """
    if k is None:
        return tolerance
    if tolerance is not None:
        raise ValueError("pass either k or tolerance, not both")
    if k < 1:
        raise ValueError("k must be >= 1")
    return max(1, -(-int(delta) // int(k)))


def one_plus_eps_delta_coloring(
    graph,
    tolerance=None,
    initial_coloring=None,
    completion="orientation",
    backend="auto",
    k=None,
):
    """Theorem 6.4 shape: proper O(Delta)-coloring in O(sqrt(Delta) + log* n).

    ``tolerance`` is ArbAG's conflict budget ``p`` (default
    ``ceil(sqrt(Delta))``, the headline setting); ``k`` is the same dial
    under its Maus (2021) name — ``O(k * Delta)`` colors against
    ``O(Delta / k) + log*(n)`` rounds — and the two spellings are mutually
    exclusive.  ``completion`` selects the per-class proper-coloring
    backend:

    * ``"orientation"`` (default) — greedy along ArbAG's finalization
      orientation (``out-degree + 1`` colors per class, depth-bound rounds);
    * ``"hpartition"`` — the Barenboim–Elkin H-partition on each class
      subgraph (``(2+eps)*a + 1`` colors per class, ``O(log n)``-layer
      rounds) — the [3]-style backend.

    Returns a :class:`SublinearColoringResult`.
    """
    delta = graph.max_degree
    tolerance = _resolve_k_knob(tolerance, k, delta)
    if tolerance is None:
        tolerance = max(1, int(round(delta ** 0.5)))
    if initial_coloring is None:
        initial_coloring = _initial_id_coloring(graph)
    if completion not in ("orientation", "hpartition"):
        raise ValueError("unknown completion backend %r" % completion)

    engine = resolve_backend("engine", backend)(graph)
    stage_rounds = {}

    defective = DefectiveLinialColoring(tolerance)
    defective_run = engine.run(
        defective,
        initial_coloring,
        in_palette_size=_palette_size(initial_coloring, graph),
    )
    stage_rounds["defective-linial"] = defective_run.rounds_used

    arb = ArbAGColoring(tolerance)
    arb_run = engine.run(
        arb, defective_run.int_colors, in_palette_size=defective.out_palette_size
    )
    stage_rounds["arb-ag"] = arb_run.rounds_used

    orientation = finalization_orientation(graph, arb_run.colors)
    out_degree_bound = max((len(o) for o in orientation), default=0)
    class_of = arb_run.int_colors
    if completion == "orientation":
        class_palette = out_degree_bound + 1
        colors, completion_rounds = complete_arbdefective_to_proper(
            graph, orientation, class_of, class_palette
        )
    else:
        colors, completion_rounds, class_palette = _hpartition_completion(
            graph, class_of, arb.out_palette_size
        )
    stage_rounds["class-completion"] = completion_rounds

    palette_size = arb.out_palette_size * class_palette
    return SublinearColoringResult(colors, palette_size, stage_rounds, out_degree_bound)


def sublinear_delta_plus_one_coloring(
    graph, tolerance=None, initial_coloring=None, backend="auto", k=None
):
    """Theorem 6.4 shape, exact variant: finish with a standard reduction.

    The reduction from ``C * Delta`` to ``Delta + 1`` colors costs
    ``O(Delta)`` rounds, so only the arbdefective front-end is sublinear —
    see EXPERIMENTS.md for the honest accounting versus [22].  ``k`` is the
    Maus-style tradeoff knob (alias of ``tolerance``, mutually exclusive).
    """
    partial = one_plus_eps_delta_coloring(
        graph, tolerance=tolerance, initial_coloring=initial_coloring,
        backend=backend, k=k,
    )
    engine = resolve_backend("engine", backend)(graph)
    reduction = StandardColorReduction()
    run = engine.run(
        reduction, partial.colors, in_palette_size=partial.palette_size
    )
    stage_rounds = dict(partial.stage_rounds)
    stage_rounds["standard-reduction"] = run.rounds_used
    return SublinearColoringResult(
        run.int_colors,
        reduction.out_palette_size,
        stage_rounds,
        partial.out_degree_bound,
    )
