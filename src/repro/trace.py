"""Round-by-round execution tracing.

``trace_run`` executes a locally-iterative stage with history recording and
distills each round into a :class:`RoundTrace`: how many vertices are
finalized, how many conflicts remain, how the palette is shrinking, which
vertices moved.  ``format_trace`` renders the whole run as a compact text
timeline — the fastest way to *see* the AG dynamics (conflict counts
collapse geometrically; the palette suddenly drops at the end, exactly the
"suddenly reduce to Delta+1 in the last few rounds" phenomenon the paper's
introduction describes).

Also exposed through the CLI: ``repro-coloring trace ...``.
"""

from repro.runtime.backends import resolve_backend

__all__ = [
    "RoundTrace",
    "TraceResult",
    "trace_run",
    "format_trace",
    "SelfStabRoundTrace",
    "trace_selfstab",
    "format_selfstab_trace",
    "trace_pipeline",
    "format_pipeline_trace",
]


class RoundTrace:
    """Summary of one round of a traced run."""

    __slots__ = (
        "round_index",
        "changed",
        "finalized",
        "conflicts",
        "distinct_colors",
    )

    def __init__(self, round_index, changed, finalized, conflicts, distinct_colors):
        self.round_index = round_index
        self.changed = changed
        self.finalized = finalized
        self.conflicts = conflicts
        self.distinct_colors = distinct_colors

    def __repr__(self):
        return (
            "RoundTrace(round=%d, changed=%d, finalized=%d, conflicts=%d, "
            "colors=%d)" % (
                self.round_index,
                self.changed,
                self.finalized,
                self.conflicts,
                self.distinct_colors,
            )
        )


class TraceResult:
    """A traced run: the RunResult plus per-round summaries."""

    def __init__(self, run, rounds):
        self.run = run
        self.rounds = rounds

    def __iter__(self):
        return iter(self.rounds)

    def __len__(self):
        return len(self.rounds)


def _second_coordinate_conflicts(graph, colors):
    """AG-style conflicts: same second coordinate across an edge.

    AG-family internal colors are tuples whose *last* coordinate is the one
    a proper coloring must separate (the AG pair ``(a1, a2)``, the tagged
    hybrid states alike); scalar colors are compared wholesale.
    """
    def key(color):
        if isinstance(color, tuple) and len(color) >= 2:
            return color[-1]
        return color

    return sum(1 for u, v in graph.edges if key(colors[u]) == key(colors[v]))


def trace_run(
    graph,
    stage,
    initial_coloring,
    in_palette_size=None,
    visibility=None,
    backend="auto",
):
    """Run ``stage`` with history and return a :class:`TraceResult`.

    ``backend`` selects the engine through the
    :mod:`repro.runtime.backends` registry; because the batch engine
    records bit-for-bit identical histories, traces agree across backends
    (asserted in the test suite).
    """
    kwargs = {"record_history": True, "backend": backend}
    if visibility is not None:
        kwargs["visibility"] = visibility
    backend = kwargs.pop("backend")
    engine = resolve_backend("engine", backend)(graph, **kwargs)
    run = engine.run(stage, initial_coloring, in_palette_size=in_palette_size)
    rounds = []
    for index, colors in enumerate(run.history):
        finalized = sum(1 for c in colors if stage.is_final(c))
        rounds.append(
            RoundTrace(
                round_index=index,
                changed=(
                    sum(
                        1
                        for v in graph.vertices()
                        if colors[v] != run.history[index - 1][v]
                    )
                    if index
                    else 0
                ),
                finalized=finalized,
                conflicts=_second_coordinate_conflicts(graph, colors),
                distinct_colors=len(set(colors)),
            )
        )
    return TraceResult(run, rounds)


def format_trace(trace, graph, title="trace"):
    """Render a traced run as a text timeline."""
    lines = ["%s (n=%d, m=%d, Delta=%d)" % (title, graph.n, graph.m, graph.max_degree)]
    lines.append(
        "%5s  %8s  %9s  %9s  %7s" % ("round", "changed", "finalized", "conflicts", "colors")
    )
    n = graph.n
    for entry in trace:
        bar = "#" * min(40, entry.conflicts)
        lines.append(
            "%5d  %8d  %6d/%-3d %9d  %7d  %s"
            % (
                entry.round_index,
                entry.changed,
                entry.finalized,
                n,
                entry.conflicts,
                entry.distinct_colors,
                bar,
            )
        )
    lines.append(
        "finished in %d rounds with %d colors"
        % (trace.run.rounds_used, trace.run.num_colors)
    )
    return "\n".join(lines)


class SelfStabRoundTrace:
    """Summary of one self-stabilizing round."""

    __slots__ = ("round_index", "changed", "legal", "level_histogram")

    def __init__(self, round_index, changed, legal, level_histogram):
        self.round_index = round_index
        self.changed = changed
        self.legal = legal
        self.level_histogram = level_histogram

    def __repr__(self):
        return "SelfStabRoundTrace(round=%d, changed=%d, legal=%s, levels=%r)" % (
            self.round_index,
            self.changed,
            self.legal,
            self.level_histogram,
        )


def _level_histogram(engine):
    """Interval occupancy, for algorithms exposing an IntervalPlan."""
    plan = getattr(engine.algorithm, "plan", None)
    if plan is None:
        return {}
    histogram = {}
    for v in engine.graph.vertices():
        ram = engine.rams.get(v)
        color = ram[0] if isinstance(ram, tuple) and len(ram) == 2 else ram
        level = plan.level_of(color) if hasattr(plan, "level_of") else None
        key = "I%d" % level if level is not None else "invalid"
        histogram[key] = histogram.get(key, 0) + 1
    return histogram


def trace_selfstab(engine, max_rounds=None):
    """Run a SelfStabEngine to quiescence, recording each round.

    Returns a list of :class:`SelfStabRoundTrace`: watch corrupted vertices
    fall to "invalid", reset into the top interval, and drain level by level
    into the core.
    """
    bound = max_rounds or engine.algorithm.stabilization_bound()
    records = [
        SelfStabRoundTrace(0, 0, engine.is_legal(), _level_histogram(engine))
    ]
    for index in range(1, bound + 2):
        changed = engine.step()
        records.append(
            SelfStabRoundTrace(
                index, len(changed), engine.is_legal(), _level_histogram(engine)
            )
        )
        if not changed and records[-1].legal:
            break
    return records


def format_selfstab_trace(records, title="self-stabilization trace"):
    """Render a self-stabilization trace as a text timeline."""
    lines = [title]
    lines.append("%5s  %8s  %6s  %s" % ("round", "changed", "legal", "interval occupancy"))
    for entry in records:
        occupancy = "  ".join(
            "%s:%d" % (k, v) for k, v in sorted(entry.level_histogram.items())
        )
        lines.append(
            "%5d  %8d  %6s  %s"
            % (entry.round_index, entry.changed, entry.legal, occupancy)
        )
    return "\n".join(lines)


def trace_pipeline(graph, stages, initial_coloring, in_palette_size=None, backend="auto"):
    """Trace a multi-stage pipeline; returns a list of (stage, TraceResult).

    Each stage is traced with full history, and its decoded output feeds the
    next stage — the multi-stage analogue of :func:`trace_run`.  ``backend``
    is forwarded to every stage's :func:`trace_run`.
    """
    colors = list(initial_coloring)
    palette = in_palette_size
    if palette is None:
        palette = (max(colors) + 1) if colors else 1
    traces = []
    for stage in stages:
        trace = trace_run(graph, stage, colors, in_palette_size=palette, backend=backend)
        traces.append((stage, trace))
        colors = trace.run.int_colors
        palette = stage.out_palette_size
    return traces


def format_pipeline_trace(traces, graph):
    """Render every stage's timeline back to back."""
    blocks = [
        format_trace(trace, graph, title="stage: %s" % stage.name)
        for stage, trace in traces
    ]
    return ("\n" + "-" * 60 + "\n").join(blocks)
