"""The versioned public API: everything this project supports, in one module.

``repro.api`` is the v1 contract surface.  Code written against the names
in this module's ``__all__`` keeps working across releases of the same
major version; every other module in the package is an internal layer that
may move without notice (``docs/api.md`` spells out the policy).  The
:mod:`repro` root re-exports this surface, so ``from repro import run`` and
``from repro.api import run`` are the same name.

The v1 surface is the *experiment contract* — specs in, results out:

* **describe** — :class:`JobSpec` (a run by value) and
  :func:`register_algorithm` / :func:`algorithm_names` to extend the
  algorithm registry, :func:`resolve_backend` / :func:`backend_names` for
  the execution-backend registry;
* **execute** — :func:`run` / :func:`run_many` / :func:`run_sweep` /
  :class:`JobRunner` for in-process execution, :class:`ServiceClient`
  against a ``repro serve`` daemon;
* **inspect** — :class:`JobOutcome`, the structural :class:`Result`
  protocol, :func:`summarize`, and :data:`SCHEMA_VERSION` (the tolerant-
  reader stamp on every serialized spec, summary, and wire body).

Quickstart::

    from repro.api import JobSpec, run

    outcome = run(JobSpec(algorithm="cor36",
                          graph={"family": "regular", "n": 256, "degree": 8},
                          seed=1))
    assert outcome.ok and outcome.num_colors <= 8 + 1

or against a daemon::

    from repro.api import ServiceClient

    client = ServiceClient("unix:svc.sock")
    record = client.submit(JobSpec(algorithm="cor36",
                                   graph={"family": "regular", "n": 256,
                                          "degree": 8}).to_dict(),
                           wait=True)
"""

from repro.parallel.jobs import (
    JobOutcome,
    JobSpec,
    algorithm_names,
    register_algorithm,
)
from repro.parallel.runner import JobRunner, run, run_many, run_sweep
from repro.runtime.backends import backend_names, resolve_backend
from repro.runtime.results import (
    SCHEMA_VERSION,
    Result,
    SchemaVersionWarning,
    summarize,
)
from repro.service.client import ServiceClient, ServiceError

#: Major version of this API surface; bumps only with breaking changes.
API_VERSION = 1

__all__ = [
    "API_VERSION",
    "JobOutcome",
    "JobRunner",
    "JobSpec",
    "Result",
    "SCHEMA_VERSION",
    "SchemaVersionWarning",
    "ServiceClient",
    "ServiceError",
    "algorithm_names",
    "backend_names",
    "register_algorithm",
    "resolve_backend",
    "run",
    "run_many",
    "run_sweep",
    "summarize",
]
