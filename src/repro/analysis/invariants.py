"""Checkers for colorings, independent sets, and matchings.

Definitions follow Section 2 of the paper:

* a coloring is *proper* if no edge is monochromatic;
* a *d-defective p-coloring* allows each vertex up to ``d`` same-colored
  neighbors;
* a *b-arbdefective p-coloring* requires every color class to induce a
  subgraph of arboricity at most ``b``.  Arboricity is expensive to compute
  exactly, so :func:`arbdefect_upper_bound` reports each class's degeneracy,
  which sandwiches arboricity (``arboricity <= degeneracy <= 2*arboricity - 1``
  for nonempty graphs) — exactly the right tool for asserting the O(p) bound
  of Lemma 6.2.
"""

from collections import defaultdict

__all__ = [
    "is_proper_coloring",
    "monochromatic_edges",
    "count_colors",
    "max_color",
    "coloring_defect",
    "class_degeneracy",
    "arbdefect_upper_bound",
    "is_proper_edge_coloring",
    "edge_coloring_defect",
    "is_maximal_independent_set",
    "is_maximal_matching",
    "nash_williams_lower_bound",
    "palette_histogram",
    "arboricity_bounds",
]


def monochromatic_edges(graph, colors):
    """Return the list of edges whose endpoints share a color."""
    return [(u, v) for u, v in graph.edges if colors[u] == colors[v]]


def is_proper_coloring(graph, colors):
    """Return True iff no edge is monochromatic."""
    return all(colors[u] != colors[v] for u, v in graph.edges)


def count_colors(colors):
    """Return the number of distinct colors used."""
    return len(set(colors))


def max_color(colors):
    """Return the largest color value (colorings over int palettes)."""
    return max(colors) if len(colors) else 0


def coloring_defect(graph, colors):
    """Return the defect: the max number of same-colored neighbors of any vertex.

    A proper coloring has defect 0; a d-defective coloring has defect <= d.
    """
    worst = 0
    for v in graph.vertices():
        same = sum(1 for u in graph.neighbors(v) if colors[u] == colors[v])
        worst = max(worst, same)
    return worst


def _degeneracy(n_vertices, adjacency):
    """Degeneracy of the graph given as {vertex: set(neighbors)}."""
    if n_vertices == 0:
        return 0
    degrees = {v: len(neighbors) for v, neighbors in adjacency.items()}
    buckets = defaultdict(set)
    for v, d in degrees.items():
        buckets[d].add(v)
    removed = set()
    degeneracy = 0
    for _ in range(n_vertices):
        d = 0
        while not buckets.get(d):
            d += 1
        v = buckets[d].pop()
        degeneracy = max(degeneracy, d)
        removed.add(v)
        for u in adjacency[v]:
            if u in removed:
                continue
            buckets[degrees[u]].discard(u)
            degrees[u] -= 1
            buckets[degrees[u]].add(u)
    return degeneracy


def class_degeneracy(graph, colors):
    """Return ``{color: degeneracy of the induced class subgraph}``.

    Degeneracy upper-bounds arboricity within a factor < 2, so this is the
    practical arbdefect measure.
    """
    classes = defaultdict(list)
    for v in graph.vertices():
        classes[colors[v]].append(v)
    result = {}
    for color, members in classes.items():
        member_set = set(members)
        adjacency = {
            v: {u for u in graph.neighbors(v) if u in member_set} for v in members
        }
        result[color] = _degeneracy(len(members), adjacency)
    return result


def arbdefect_upper_bound(graph, colors):
    """Return the max class degeneracy: an upper bound proxy for arbdefect.

    ``arboricity(H) <= degeneracy(H)`` for every graph ``H``, hence a coloring
    whose classes all have degeneracy <= b is b-arbdefective.
    """
    per_class = class_degeneracy(graph, colors)
    return max(per_class.values()) if per_class else 0


def is_proper_edge_coloring(graph, edge_colors):
    """Return True iff no two incident edges share a color.

    ``edge_colors`` maps each edge ``(u, v)`` with ``u < v`` to a color.
    """
    for v in graph.vertices():
        seen = set()
        for u in graph.neighbors(v):
            e = (v, u) if v < u else (u, v)
            c = edge_colors[e]
            if c in seen:
                return False
            seen.add(c)
    return True


def edge_coloring_defect(graph, edge_colors):
    """Max number of same-colored incident edges over all (edge, endpoint) pairs.

    Kuhn's orientation-based first stage of Section 5 promises defect 2 in the
    line graph: at each endpoint, at most one *other* incident edge shares the
    color.  This function returns the max count of other same-colored edges
    incident to either endpoint of any edge.
    """
    worst = 0
    for v in graph.vertices():
        by_color = defaultdict(int)
        for u in graph.neighbors(v):
            e = (v, u) if v < u else (u, v)
            by_color[edge_colors[e]] += 1
        for count in by_color.values():
            worst = max(worst, count - 1)
    return worst


def is_maximal_independent_set(graph, members):
    """Return True iff ``members`` (a set of vertices) is an MIS.

    Independence: no edge inside.  Maximality: every non-member has a member
    neighbor.
    """
    member_set = set(members)
    for u, v in graph.edges:
        if u in member_set and v in member_set:
            return False
    for v in graph.vertices():
        if v in member_set:
            continue
        if not any(u in member_set for u in graph.neighbors(v)):
            return False
    return True


def is_maximal_matching(graph, matched_edges):
    """Return True iff ``matched_edges`` is a maximal matching.

    No two matched edges share an endpoint, and every unmatched edge is
    incident to a matched one.
    """
    matched = {tuple(sorted(e)) for e in matched_edges}
    saturated = set()
    for u, v in matched:
        if not graph.has_edge(u, v):
            return False
        if u in saturated or v in saturated:
            return False
        saturated.add(u)
        saturated.add(v)
    for u, v in graph.edges:
        if (u, v) not in matched and u not in saturated and v not in saturated:
            return False
    return True


def nash_williams_lower_bound(graph):
    """A lower bound on arboricity: ceil(m / (n - 1)) on the whole graph.

    Nash-Williams: arboricity = max over subgraphs H of
    ceil(m_H / (n_H - 1)); the whole graph gives a cheap lower bound that
    complements the degeneracy upper bound of :func:`arbdefect_upper_bound`.
    """
    if graph.n <= 1 or graph.m == 0:
        return 0
    return -(-graph.m // (graph.n - 1))


def palette_histogram(colors):
    """Return ``{color: count}`` — the class sizes of a coloring."""
    histogram = {}
    for color in colors:
        histogram[color] = histogram.get(color, 0) + 1
    return histogram


def arboricity_bounds(graph, colors=None):
    """Return ``(lower, upper)`` bounds on arboricity.

    With ``colors`` given, bounds the *arbdefect* instead: the max over color
    classes of that class's bounds.
    """
    if colors is None:
        adjacency = {v: set(graph.neighbors(v)) for v in graph.vertices()}
        upper = _degeneracy(graph.n, adjacency)
        return nash_williams_lower_bound(graph), upper
    per_class = class_degeneracy(graph, colors)
    upper = max(per_class.values()) if per_class else 0
    lower = 0
    classes = {}
    for v in graph.vertices():
        classes.setdefault(colors[v], []).append(v)
    for members in classes.values():
        member_set = set(members)
        m_class = sum(
            1 for u, v in graph.edges if u in member_set and v in member_set
        )
        if len(members) > 1 and m_class:
            lower = max(lower, -(-m_class // (len(members) - 1)))
    return lower, upper
