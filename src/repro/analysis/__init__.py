"""Verification utilities: the executable forms of the paper's definitions.

Every guarantee the paper states — proper colorings, defective and
arbdefective colorings, MIS/MM validity, palette sizes — has a checker here
that tests and benchmarks call after (and during) runs.
"""

from repro.analysis.invariants import (
    arbdefect_upper_bound,
    arboricity_bounds,
    coloring_defect,
    count_colors,
    edge_coloring_defect,
    is_maximal_independent_set,
    is_maximal_matching,
    is_proper_coloring,
    is_proper_edge_coloring,
    max_color,
    monochromatic_edges,
    nash_williams_lower_bound,
    palette_histogram,
)

__all__ = [
    "is_proper_coloring",
    "monochromatic_edges",
    "count_colors",
    "max_color",
    "coloring_defect",
    "arbdefect_upper_bound",
    "arboricity_bounds",
    "nash_williams_lower_bound",
    "palette_histogram",
    "is_proper_edge_coloring",
    "edge_coloring_defect",
    "is_maximal_independent_set",
    "is_maximal_matching",
]
