"""Bounded-arboricity machinery (the Barenboim–Elkin H-partition).

ArbAG's output (Section 6) is a coloring whose classes have arboricity
``O(p)`` — and the classical consumer of bounded arboricity is the
H-partition of Barenboim–Elkin (PODC'08): peel vertices of degree at most
``(2 + eps) * a`` repeatedly; ``O(log n)`` layers result, and orienting
every edge towards the lower layer (ties towards the higher ID) gives an
acyclic orientation with out-degree at most ``(2 + eps) * a``, from which a
``(2 + eps) * a + 1``-coloring follows greedily along the orientation.

This package provides that machinery both standalone (a useful library
feature for any low-arboricity workload) and as the alternative
class-completion backend for the Theorem 6.4 pipelines.
"""

from repro.arboricity.hpartition import (
    HPartition,
    arboricity_coloring,
    h_partition,
)

__all__ = ["HPartition", "h_partition", "arboricity_coloring"]
