"""H-partition and arboricity-based coloring (Barenboim–Elkin, PODC'08).

Nash-Williams: a graph of arboricity ``a`` has at most ``a * (n - 1)``
edges, so *some* vertex has degree below ``2a`` — in fact at least an
``eps / (2 + eps)`` fraction have degree at most ``(2 + eps) * a``.  Peeling
those repeatedly partitions ``V`` into ``O(log n)`` layers ``H_1, ..., H_l``
(one synchronous round each: a vertex only needs its remaining degree).

Orient every edge from its lower-layer endpoint to the higher-layer one
(ties: towards the higher index).  Every vertex's out-neighbors lie in its
own or later layers, i.e. they were *not yet peeled* when it was — at most
``(2 + eps) * a`` of them.  The order (layer, index) is total, so the
orientation is acyclic, and greedy coloring along it needs only
``floor((2 + eps) * a) + 1`` colors.
"""

from repro.analysis.invariants import _degeneracy

__all__ = ["HPartition", "h_partition", "arboricity_coloring"]


class HPartition:
    """The layers and the induced orientation.

    Attributes
    ----------
    layers:
        ``layers[i]`` = the vertex list peeled in round ``i``.
    layer_of:
        Per-vertex layer index.
    out_neighbors:
        The acyclic orientation: ``out_neighbors[v]`` are v's neighbors in
        strictly later layers, or the same layer with a larger index.
    out_degree_bound:
        The proven cap ``floor((2 + eps) * a)``.
    rounds:
        Peeling rounds consumed (= number of layers): O(log n).
    """

    def __init__(self, layers, layer_of, out_neighbors, out_degree_bound):
        self.layers = layers
        self.layer_of = layer_of
        self.out_neighbors = out_neighbors
        self.out_degree_bound = out_degree_bound

    @property
    def rounds(self):
        """Peeling rounds consumed (= number of layers)."""
        return len(self.layers)

    def __repr__(self):
        return "HPartition(layers=%d, out_degree_bound=%d)" % (
            len(self.layers),
            self.out_degree_bound,
        )


def _default_arboricity_bound(graph):
    """Degeneracy: a certified upper bound on arboricity (within 2x)."""
    adjacency = {v: set(graph.neighbors(v)) for v in graph.vertices()}
    return max(1, _degeneracy(graph.n, adjacency))


def h_partition(graph, arboricity_bound=None, eps=1.0):
    """Compute the H-partition; returns an :class:`HPartition`.

    ``arboricity_bound`` defaults to the graph's degeneracy (a safe,
    locally-computable-in-theory stand-in for ``a``); ``eps > 0`` trades the
    degree threshold against the number of layers.
    """
    if eps <= 0:
        raise ValueError("eps must be positive")
    if arboricity_bound is None:
        arboricity_bound = _default_arboricity_bound(graph)
    if arboricity_bound < 1:
        raise ValueError("arboricity bound must be >= 1")
    threshold = int((2 + eps) * arboricity_bound)

    remaining = set(graph.vertices())
    degree = {v: graph.degree(v) for v in remaining}
    layers = []
    layer_of = {}
    while remaining:
        peeled = [v for v in remaining if degree[v] <= threshold]
        if not peeled:
            raise AssertionError(
                "peeling stalled: the arboricity bound %d is too small"
                % arboricity_bound
            )
        for v in peeled:
            layer_of[v] = len(layers)
        layers.append(sorted(peeled))
        remaining.difference_update(peeled)
        for v in peeled:
            for u in graph.neighbors(v):
                if u in remaining:
                    degree[u] -= 1

    out_neighbors = []
    for v in graph.vertices():
        outs = [
            u
            for u in graph.neighbors(v)
            if (layer_of[u], u) > (layer_of[v], v)
        ]
        out_neighbors.append(outs)
    return HPartition(layers, layer_of, out_neighbors, threshold)


def arboricity_coloring(graph, arboricity_bound=None, eps=1.0):
    """Proper coloring with ``floor((2+eps)*a) + 1`` colors via the H-partition.

    Returns ``(colors, partition, rounds)`` where ``rounds`` counts the
    peeling rounds plus the act-when-out-neighbors-colored sweeps of the
    greedy phase (each a synchronous round in the simulated network).
    """
    partition = h_partition(graph, arboricity_bound, eps)
    n = graph.n
    palette = partition.out_degree_bound + 1
    colors = [None] * n
    remaining = set(range(n))
    greedy_rounds = 0
    while remaining:
        acting = [
            v
            for v in remaining
            if all(colors[u] is not None for u in partition.out_neighbors[v])
        ]
        if not acting:
            raise AssertionError("orientation is cyclic — cannot happen")
        for v in acting:
            taken = {colors[u] for u in partition.out_neighbors[v]}
            color = 0
            while color in taken:
                color += 1
            if color >= palette:
                raise AssertionError(
                    "out-degree exceeded the (2+eps)a bound — cannot happen"
                )
            colors[v] = color
        remaining.difference_update(acting)
        greedy_rounds += 1
    # Properness: for any edge one endpoint is the other's out-neighbor and
    # acted later, avoiding the earlier one's color.
    return colors, partition, partition.rounds + greedy_rounds
