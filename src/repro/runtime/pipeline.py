"""Stage composition.

The headline algorithm (Corollary 3.6) is a three-stage pipeline:
Linial (``n -> O(Delta^2)`` colors, ``log* n + O(1)`` rounds), then the
Additive-Group algorithm (``O(Delta^2) -> O(Delta)``, ``O(Delta)`` rounds),
then the standard color reduction (``O(Delta) -> Delta + 1``, ``O(Delta)``
rounds).  :class:`ColoringPipeline` wires such sequences together: each
stage's decoded output palette becomes the next stage's input palette.

Stages may be actual stage objects or zero-argument factories (useful when a
stage's constructor wants nothing but the pipeline should build a fresh one
per run).
"""

from repro.obs import core as obs
from repro.runtime.backends import resolve_backend
from repro.runtime.results import Result

__all__ = ["PipelineResult", "ColoringPipeline"]


class PipelineResult:
    """Outcome of a full pipeline run.

    Attributes
    ----------
    colors:
        Final integer coloring, indexed by vertex.
    stage_results:
        List of ``(stage, RunResult)`` pairs in execution order.
    """

    def __init__(self, colors, stage_results):
        self.colors = colors
        self.stage_results = stage_results

    @property
    def total_rounds(self):
        """Rounds summed over every stage."""
        return sum(result.rounds_used for _, result in self.stage_results)

    @property
    def rounds(self):
        """Alias of :attr:`total_rounds` (the shared result protocol)."""
        return self.total_rounds

    @property
    def total_bits(self):
        """Bits summed over every stage."""
        return sum(result.metrics.total_bits for _, result in self.stage_results)

    @property
    def total_messages(self):
        """Messages summed over every stage."""
        return sum(result.metrics.total_messages for _, result in self.stage_results)

    @property
    def num_colors(self):
        """Distinct colors in the pipeline's final coloring."""
        return len(set(self.colors))

    def rounds_by_stage(self):
        """Return ``{stage name: rounds used}`` preserving execution order."""
        return {stage.name: result.rounds_used for stage, result in self.stage_results}

    def to_dict(self):
        """JSON-serializable summary of the whole pipeline run.

        Per-stage communication totals come from
        ``MetricsLog.to_dict(detail=False)`` — totals only, no per-round
        rows, so the payload stays O(stages) even for Delta-round runs.
        """
        return {
            "colors": list(self.colors),
            "num_colors": self.num_colors,
            "total_rounds": self.total_rounds,
            "total_messages": self.total_messages,
            "total_bits": self.total_bits,
            "stages": [
                {
                    "name": stage.name,
                    "rounds": result.rounds_used,
                    "out_palette": stage.out_palette_size,
                    "bits": result.metrics.total_bits,
                    "metrics": result.metrics.to_dict(detail=False),
                }
                for stage, result in self.stage_results
            ],
        }

    def __repr__(self):
        return "PipelineResult(rounds=%d, colors=%d)" % (
            self.total_rounds,
            self.num_colors,
        )


Result.register(PipelineResult)


class ColoringPipeline:
    """A sequence of locally-iterative stages run back to back."""

    def __init__(self, stages):
        self._stages = list(stages)
        if not self._stages:
            raise ValueError("pipeline needs at least one stage")

    @staticmethod
    def _materialize(stage_or_factory):
        from repro.runtime.algorithm import LocallyIterativeColoring

        if isinstance(stage_or_factory, LocallyIterativeColoring):
            return stage_or_factory
        if callable(stage_or_factory):
            return stage_or_factory()
        return stage_or_factory

    def run(
        self,
        graph,
        initial_coloring,
        in_palette_size=None,
        visibility=None,
        check_proper_each_round=False,
        record_history=False,
        backend="auto",
    ):
        """Run every stage in order and return a :class:`PipelineResult`.

        ``backend`` selects the engine through the
        :mod:`~repro.runtime.backends` registry: ``"auto"`` uses the
        vectorized batch engine when NumPy is available, falling back to the
        scalar path per-stage; ``"batch"`` / ``"reference"`` force a side.

        The run is batch-aware end-to-end: when a stage executes on the
        vectorized path its decoded int64 array feeds the next stage directly
        (no round-trip through the Python color list), the graph's cached CSR
        view is shared by every stage, and a stage that falls back to the
        scalar path transparently receives a plain list again.
        """
        kwargs = {
            "check_proper_each_round": check_proper_each_round,
            "record_history": record_history,
        }
        if visibility is not None:
            kwargs["visibility"] = visibility
        engine = resolve_backend("engine", backend)(graph, **kwargs)

        # Lists pass through uncopied (stages never mutate their input) and
        # ndarrays go straight to the batch engine; only other sequence types
        # need materializing.
        colors = initial_coloring
        if not isinstance(colors, list) and not hasattr(colors, "tolist"):
            colors = list(colors)
        palette = in_palette_size
        if palette is None:
            # Only scan for the maximum when the caller did not tell us.
            if len(colors) == 0:
                palette = 1
            elif hasattr(colors, "max"):
                palette = int(colors.max()) + 1
            else:
                palette = max(colors) + 1

        tel = obs.active()
        stage_results = []
        with tel.span(
            "pipeline.run", stages=len(self._stages), n=graph.n, m=graph.m
        ):
            for index, stage_or_factory in enumerate(self._stages):
                stage = self._materialize(stage_or_factory)
                with tel.span(
                    "pipeline.stage", stage=stage.name, index=index
                ) as stage_span:
                    result = engine.run(stage, colors, in_palette_size=palette)
                    stage_results.append((stage, result))
                    colors = (
                        result.int_colors_array
                        if result.int_colors_array is not None
                        else result.int_colors
                    )
                    if tel.enabled:
                        stage_span.set(
                            rounds=result.rounds_used,
                            in_palette=palette,
                            out_palette=stage.out_palette_size,
                            handoff=(
                                "ndarray"
                                if result.int_colors_array is not None
                                else "list"
                            ),
                        )
                    palette = stage.out_palette_size
        pipeline_result = PipelineResult(stage_results[-1][1].int_colors, stage_results)
        if tel.enabled:
            tel.event(
                "pipeline.run",
                stages=[
                    {
                        "name": stage.name,
                        "rounds": result.rounds_used,
                        "out_palette": stage.out_palette_size,
                        "messages": result.metrics.total_messages,
                        "bits": result.metrics.total_bits,
                    }
                    for stage, result in stage_results
                ],
                total_rounds=pipeline_result.total_rounds,
                total_messages=pipeline_result.total_messages,
                total_bits=pipeline_result.total_bits,
                num_colors=pipeline_result.num_colors,
            )
        return pipeline_result
