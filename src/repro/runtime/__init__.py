"""Synchronous message-passing substrate.

This package is the "distributed network" the paper's algorithms run on:

* :mod:`repro.runtime.graph` — immutable :class:`StaticGraph` topology views
  and the mutable :class:`DynamicGraph` used by the fully-dynamic
  self-stabilizing setting,
* :mod:`repro.runtime.engine` — the synchronous round engine for
  locally-iterative colorings, with LOCAL (multiset of neighbor colors) and
  SET-LOCAL (set of neighbor colors, no multiplicities, no sender identity)
  visibility modes,
* :mod:`repro.runtime.algorithm` — the locally-iterative algorithm interface,
* :mod:`repro.runtime.pipeline` — stage composition (e.g. Linial then AG then
  standard reduction, Corollary 3.6),
* :mod:`repro.runtime.metrics` — rounds / messages / bits accounting used for
  the CONGEST and Bit-Round claims,
* :mod:`repro.runtime.csr` / :mod:`repro.runtime.fast_engine` — the optional
  NumPy acceleration layer: CSR adjacency views and the vectorized
  :class:`BatchColoringEngine`,
* :mod:`repro.runtime.backends` — the unified backend registry: engines of
  every kind are constructed through
  ``resolve_backend(kind, backend)(graph, ...)``,
* :mod:`repro.runtime.results` — the shared result protocol (``colors``,
  ``rounds``, ``to_dict()``) every execution result satisfies, so the
  :mod:`repro.parallel` job runner and the CLI serialize results uniformly.

The engine structurally enforces the locally-iterative contract: a vertex's
``step`` receives only its own color and the collection of neighbor colors.
"""

from repro.runtime.graph import StaticGraph, DynamicGraph
from repro.runtime.algorithm import LocallyIterativeColoring, NetworkInfo
from repro.runtime.engine import ColoringEngine, RunResult, Visibility
from repro.runtime.fast_engine import BatchColoringEngine, batch_supported
from repro.runtime.pipeline import ColoringPipeline, PipelineResult
from repro.runtime.metrics import RoundMetrics, MetricsLog
from repro.runtime.backends import (
    BACKEND_KINDS,
    backend_names,
    register_backend,
    resolve_backend,
)
from repro.runtime.results import Result, is_result, summarize

__all__ = [
    "StaticGraph",
    "DynamicGraph",
    "LocallyIterativeColoring",
    "NetworkInfo",
    "ColoringEngine",
    "BatchColoringEngine",
    "batch_supported",
    "RunResult",
    "Visibility",
    "ColoringPipeline",
    "PipelineResult",
    "RoundMetrics",
    "MetricsLog",
    "BACKEND_KINDS",
    "backend_names",
    "register_backend",
    "resolve_backend",
    "Result",
    "is_result",
    "summarize",
]
