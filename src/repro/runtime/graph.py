"""Graph topologies for the simulator.

:class:`StaticGraph` is the immutable adjacency view handed to algorithms in
the static setting; :class:`DynamicGraph` supports the topology churn of the
fully-dynamic self-stabilizing setting (vertices crash, appear, and links
change arbitrarily, as long as the published bounds on ``n`` and ``Delta``
hold — Section 1.2.1).

Vertices are integers.  A static graph's vertex set is ``range(n)``; a dynamic
graph's vertex set is an arbitrary subset of ``range(n_bound)`` so that crashes
and re-appearances keep stable identities.
"""

from collections import deque

__all__ = ["StaticGraph", "DynamicGraph"]


class StaticGraph:
    """Immutable undirected graph on vertices ``0..n-1``.

    Parameters
    ----------
    n:
        Number of vertices.
    edges:
        Iterable of ``(u, v)`` pairs.  Self-loops are rejected; duplicate
        edges are collapsed.
    ids:
        Optional sequence of unique vertex identifiers (the ``id(v)`` of the
        paper).  Defaults to the vertex index itself.
    """

    __slots__ = ("n", "_adjacency", "_edges", "ids", "_id_set", "_max_degree", "_csr")

    # Below this many input edges the plain-Python constructor wins; above
    # it the array path (same validation, dedup, and sorted structures)
    # avoids the per-edge set churn.
    _BULK_EDGES = 2048

    def __init__(self, n, edges, ids=None):
        if n < 0:
            raise ValueError("n must be non-negative")
        is_array = hasattr(edges, "ndim")  # ndarray input skips listification
        if not (is_array or isinstance(edges, (list, tuple))):
            edges = list(edges)
        if (is_array or len(edges) >= self._BULK_EDGES) and self._bulk_init(n, edges):
            pass
        else:
            adjacency = [set() for _ in range(n)]
            edge_set = set()
            for u, v in edges:
                if u == v:
                    raise ValueError("self-loop (%d, %d) not allowed" % (u, v))
                if not (0 <= u < n and 0 <= v < n):
                    raise ValueError(
                        "edge (%d, %d) out of range for n=%d" % (u, v, n)
                    )
                key = (u, v) if u < v else (v, u)
                if key in edge_set:
                    continue
                edge_set.add(key)
                adjacency[u].add(v)
                adjacency[v].add(u)
            self.n = n
            self._adjacency = tuple(
                tuple(sorted(neighbors)) for neighbors in adjacency
            )
            self._edges = tuple(sorted(edge_set))
            self._max_degree = max(
                (len(neighbors) for neighbors in self._adjacency), default=0
            )
            self._csr = None
        if ids is None:
            self.ids = tuple(range(n))
        else:
            self.ids = tuple(ids)
            if len(self.ids) != n:
                raise ValueError("ids must have length n")
            if len(set(self.ids)) != n:
                raise ValueError("ids must be unique")
        self._id_set = frozenset(self.ids)

    def _bulk_init(self, n, edges):
        """Array-path constructor body; returns False when NumPy is off.

        Bit-identical to the per-edge loop: same first-error messages (the
        first offending edge in input order, self-loop checked before range),
        same dedup, the same sorted adjacency tuples and edge tuple.  Also
        pre-builds the CSR view from the arrays already in hand, so the first
        ``csr()`` call is free.

        The Python-side structures (``_adjacency``/``_edges``) are built
        lazily from the CSR on first access — batch pipelines that only ever
        touch ``csr()`` (e.g. engine runs on a line graph) never pay for the
        per-vertex tuple materialization.
        """
        from repro.runtime.csr import numpy_or_none

        np = numpy_or_none()
        if np is None:
            return False
        try:
            arr = np.asarray(edges)
        except (ValueError, TypeError):
            return False
        if arr.ndim != 2 or arr.shape[1] != 2 or arr.dtype.kind not in "iu":
            return False  # ragged / non-integer input: scalar path semantics
        arr = arr.astype(np.int64, copy=False)
        u, v = arr[:, 0], arr[:, 1]
        bad = (u == v) | (u < 0) | (u >= n) | (v < 0) | (v >= n)
        if bool(bad.any()):
            k = int(np.argmax(bad))
            uk, vk = int(u[k]), int(v[k])
            if uk == vk:
                raise ValueError("self-loop (%d, %d) not allowed" % (uk, vk))
            raise ValueError("edge (%d, %d) out of range for n=%d" % (uk, vk, n))
        lo = np.minimum(u, v)
        hi = np.maximum(u, v)
        key = np.unique(lo * n + hi)  # sorted == lexicographic (lo, hi)
        edge_u = key // n
        edge_v = key % n
        src = np.concatenate([edge_u, edge_v])
        dst = np.concatenate([edge_v, edge_u])
        order = np.lexsort((dst, src))
        dst = dst[order]
        degrees = np.bincount(src, minlength=n)
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(degrees, out=indptr[1:])
        self.n = n
        self._adjacency = None
        self._edges = None
        self._max_degree = int(degrees.max()) if n else 0
        from repro.runtime.csr import CSRAdjacency

        self._csr = CSRAdjacency(
            n,
            int(key.shape[0]),
            indptr,
            dst,
            np.repeat(np.arange(n, dtype=np.int64), degrees),
            degrees,
            edge_u,
            edge_v,
        )
        return True

    def _materialize(self):
        """Build the Python adjacency/edge tuples from the CSR (lazy path)."""
        csr = self._csr
        bounds = csr.indptr.tolist()
        flat = csr.indices.tolist()
        self._adjacency = tuple(
            tuple(flat[bounds[i]:bounds[i + 1]]) for i in range(self.n)
        )
        self._edges = tuple(zip(csr.edge_u.tolist(), csr.edge_v.tolist()))

    # -- construction helpers -------------------------------------------------

    @classmethod
    def from_networkx(cls, nx_graph, ids=None):
        """Build a :class:`StaticGraph` from a networkx graph.

        Nodes are relabeled to ``0..n-1`` in sorted order; the original labels
        become the vertex ids unless ``ids`` overrides them.
        """
        nodes = sorted(nx_graph.nodes())
        index = {node: i for i, node in enumerate(nodes)}
        edges = [(index[u], index[v]) for u, v in nx_graph.edges()]
        if ids is None:
            try:
                ids = [int(node) for node in nodes]
                if len(set(ids)) != len(ids):
                    ids = list(range(len(nodes)))
            except (TypeError, ValueError):
                ids = list(range(len(nodes)))
        return cls(len(nodes), edges, ids=ids)

    def to_networkx(self):
        """Export to a networkx Graph (vertex ids become node attributes)."""
        import networkx as nx

        nx_graph = nx.Graph()
        for v in self.vertices():
            nx_graph.add_node(v, id=self.ids[v])
        nx_graph.add_edges_from(self.edges)
        return nx_graph

    # -- queries --------------------------------------------------------------

    def vertices(self):
        """Return the vertex range ``0..n-1``."""
        return range(self.n)

    def neighbors(self, v):
        """Return the sorted tuple of neighbors of ``v``."""
        if self._adjacency is None:
            self._materialize()
        return self._adjacency[v]

    def degree(self, v):
        """Return the degree of ``v``."""
        if self._adjacency is None:
            return int(self._csr.degrees[v])
        return len(self._adjacency[v])

    @property
    def edges(self):
        """Return the sorted tuple of edges as ``(u, v)`` with ``u < v``."""
        if self._edges is None:
            self._materialize()
        return self._edges

    @property
    def m(self):
        """Return the number of edges."""
        if self._edges is None:
            return self._csr.m
        return len(self._edges)

    @property
    def max_degree(self):
        """Return the maximum degree ``Delta`` (0 for the empty graph).

        Cached at construction — the engine and every stage's ``configure``
        query it repeatedly, and the graph is immutable.
        """
        return self._max_degree

    def csr(self):
        """Return the cached :class:`~repro.runtime.csr.CSRAdjacency` view.

        Built lazily on first use and cached for the lifetime of the graph
        (the graph is immutable, so the arrays never go stale).  Requires
        NumPy (the ``repro[fast]`` extra); raises :class:`RuntimeError` with
        an install hint when it is missing.
        """
        if self._csr is None:
            from repro.runtime.csr import CSRAdjacency

            self._csr = CSRAdjacency.from_graph(self)
        return self._csr

    def has_edge(self, u, v):
        """Return True iff ``(u, v)`` is an edge."""
        if self._adjacency is None:
            self._materialize()
        return v in self._adjacency[u]

    def bfs_distances(self, sources):
        """Return a dict of BFS distances from the closest vertex in ``sources``.

        Vertices unreachable from every source are absent from the result.
        Used to measure adjustment radii (distance from the closest fault).
        """
        if self._adjacency is None:
            self._materialize()
        distances = {}
        queue = deque()
        for source in sources:
            if source not in distances:
                distances[source] = 0
                queue.append(source)
        while queue:
            u = queue.popleft()
            for w in self._adjacency[u]:
                if w not in distances:
                    distances[w] = distances[u] + 1
                    queue.append(w)
        return distances

    def subgraph(self, vertex_subset):
        """Return the induced subgraph on ``vertex_subset``.

        The result is a new :class:`StaticGraph` whose vertex ``i`` corresponds
        to the ``i``-th smallest vertex of the subset; the mapping is returned
        alongside.

        Returns
        -------
        (StaticGraph, dict):
            The induced subgraph and the ``original -> new`` index map.
        """
        ordered = sorted(set(vertex_subset))
        index = {v: i for i, v in enumerate(ordered)}
        edges = [
            (index[u], index[v])
            for u, v in self.edges
            if u in index and v in index
        ]
        ids = [self.ids[v] for v in ordered]
        return StaticGraph(len(ordered), edges, ids=ids), index

    def __repr__(self):
        return "StaticGraph(n=%d, m=%d, max_degree=%d)" % (
            self.n,
            self.m,
            self.max_degree,
        )


class DynamicGraph:
    """Mutable undirected graph for the fully-dynamic self-stabilizing setting.

    The graph lives inside hard bounds ``n_bound`` (vertex identities are
    ``0..n_bound-1``) and ``delta_bound`` (no vertex may exceed that degree).
    These bounds mirror the ROM-resident ``n`` and ``Delta`` of Section 4: the
    adversary may rewire anything, but never beyond them.
    """

    def __init__(self, n_bound, delta_bound):
        if n_bound < 0:
            raise ValueError("n_bound must be non-negative")
        if delta_bound < 0:
            raise ValueError("delta_bound must be non-negative")
        self.n_bound = n_bound
        self.delta_bound = delta_bound
        self._present = set()
        self._adjacency = {v: set() for v in range(n_bound)}

    @classmethod
    def from_static(cls, graph, n_bound=None, delta_bound=None):
        """Seed a dynamic graph with a static topology.

        Bounds default to the static graph's own ``n`` and ``max_degree``.
        """
        dynamic = cls(
            n_bound if n_bound is not None else graph.n,
            delta_bound if delta_bound is not None else graph.max_degree,
        )
        for v in graph.vertices():
            dynamic.add_vertex(v)
        for u, v in graph.edges:
            dynamic.add_edge(u, v)
        return dynamic

    # -- mutation -------------------------------------------------------------

    def add_vertex(self, v):
        """Make vertex ``v`` present (idempotent)."""
        self._check_vertex(v)
        self._present.add(v)

    def remove_vertex(self, v):
        """Crash vertex ``v``, removing its incident edges (idempotent)."""
        self._check_vertex(v)
        if v not in self._present:
            return
        for u in list(self._adjacency[v]):
            self._adjacency[u].discard(v)
        self._adjacency[v].clear()
        self._present.discard(v)

    def add_edge(self, u, v):
        """Add the edge ``(u, v)``; both endpoints must be present.

        Raises :class:`ValueError` if the edge would violate ``delta_bound``.
        """
        if u == v:
            raise ValueError("self-loop not allowed")
        for w in (u, v):
            self._check_vertex(w)
            if w not in self._present:
                raise ValueError("vertex %d is not present" % w)
        if v in self._adjacency[u]:
            return
        if len(self._adjacency[u]) >= self.delta_bound:
            raise ValueError("adding edge would exceed delta_bound at %d" % u)
        if len(self._adjacency[v]) >= self.delta_bound:
            raise ValueError("adding edge would exceed delta_bound at %d" % v)
        self._adjacency[u].add(v)
        self._adjacency[v].add(u)

    def remove_edge(self, u, v):
        """Remove the edge ``(u, v)`` (idempotent)."""
        self._check_vertex(u)
        self._check_vertex(v)
        self._adjacency[u].discard(v)
        self._adjacency[v].discard(u)

    # -- queries --------------------------------------------------------------

    def _check_vertex(self, v):
        if not (0 <= v < self.n_bound):
            raise ValueError("vertex %d out of range for n_bound=%d" % (v, self.n_bound))

    def vertices(self):
        """Return the sorted list of present vertices."""
        return sorted(self._present)

    def is_present(self, v):
        """Return True iff vertex ``v`` is currently present."""
        return v in self._present

    def neighbors(self, v):
        """Return the sorted tuple of present neighbors of ``v``."""
        return tuple(sorted(self._adjacency[v]))

    def degree(self, v):
        """Return the present degree of ``v``."""
        return len(self._adjacency[v])

    @property
    def n(self):
        """Return the number of present vertices."""
        return len(self._present)

    def edges(self):
        """Return the sorted list of present edges as ``(u, v)``, ``u < v``."""
        result = []
        for u in self._present:
            for v in self._adjacency[u]:
                if u < v:
                    result.append((u, v))
        return sorted(result)

    def has_edge(self, u, v):
        """Return True iff ``(u, v)`` is a present edge."""
        return v in self._adjacency.get(u, ())

    def snapshot(self):
        """Return a :class:`StaticGraph` of the present subgraph.

        Vertex ``i`` of the snapshot is the ``i``-th smallest present vertex;
        its id is the original vertex number.  The mapping is returned too.
        """
        ordered = self.vertices()
        index = {v: i for i, v in enumerate(ordered)}
        edges = [(index[u], index[v]) for u, v in self.edges()]
        static = StaticGraph(len(ordered), edges, ids=ordered)
        return static, index

    def bfs_distances(self, sources):
        """BFS distances over the present subgraph from the closest source."""
        distances = {}
        queue = deque()
        for source in sources:
            if source in self._present and source not in distances:
                distances[source] = 0
                queue.append(source)
        while queue:
            u = queue.popleft()
            for w in self._adjacency[u]:
                if w not in distances:
                    distances[w] = distances[u] + 1
                    queue.append(w)
        return distances

    def __repr__(self):
        return "DynamicGraph(n=%d/%d, delta_bound=%d)" % (
            self.n,
            self.n_bound,
            self.delta_bound,
        )
