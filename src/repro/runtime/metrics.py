"""Round / message / bit accounting.

The CONGEST and Bit-Round claims of Section 5 are about *communication*, not
just rounds: the AG phase of the edge-coloring algorithm exchanges a single
bit per edge per round, and the total bit complexity is ``O(Delta + log n)``
per edge.  The engine logs one :class:`RoundMetrics` per round so benchmarks
can regenerate those numbers.
"""

__all__ = ["RoundMetrics", "MetricsLog"]


class RoundMetrics:
    """Communication counters for a single synchronous round."""

    __slots__ = ("round_index", "messages", "bits", "changed_vertices")

    def __init__(self, round_index, messages, bits, changed_vertices):
        self.round_index = round_index
        self.messages = messages
        self.bits = bits
        self.changed_vertices = changed_vertices

    def __repr__(self):
        return "RoundMetrics(round=%d, messages=%d, bits=%d, changed=%d)" % (
            self.round_index,
            self.messages,
            self.bits,
            self.changed_vertices,
        )


class MetricsLog:
    """Accumulated per-round metrics for one run."""

    def __init__(self):
        self.rounds = []

    def record(self, metrics):
        """Append one round's counters."""
        self.rounds.append(metrics)

    @property
    def total_rounds(self):
        """Number of recorded rounds."""
        return len(self.rounds)

    @property
    def total_messages(self):
        """Messages summed over the run."""
        return sum(r.messages for r in self.rounds)

    @property
    def total_bits(self):
        """Bits summed over the run."""
        return sum(r.bits for r in self.rounds)

    def bits_per_edge(self, m):
        """Average bits exchanged per edge over the run (both directions)."""
        if m == 0:
            return 0.0
        return self.total_bits / m

    def max_bits_in_round_per_message(self):
        """Largest per-message payload over all rounds (CONGEST check)."""
        worst = 0
        for r in self.rounds:
            if r.messages:
                worst = max(worst, r.bits // r.messages)
        return worst

    def to_dict(self, detail=True):
        """JSON-serializable summary.

        With ``detail=True`` (default) the per-round rows are included; with
        ``detail=False`` only the totals are emitted — large runs serialize
        in O(1) instead of O(rounds), which is what CLI summaries and bench
        records want.
        """
        summary = {
            "total_rounds": self.total_rounds,
            "total_messages": self.total_messages,
            "total_bits": self.total_bits,
        }
        if detail:
            summary["rounds"] = [
                {
                    "round": r.round_index,
                    "messages": r.messages,
                    "bits": r.bits,
                    "changed": r.changed_vertices,
                }
                for r in self.rounds
            ]
        return summary

    def __repr__(self):
        return "MetricsLog(rounds=%d, messages=%d, bits=%d)" % (
            self.total_rounds,
            self.total_messages,
            self.total_bits,
        )
