"""The locally-iterative algorithm interface.

A locally-iterative algorithm (Szegedy–Vishwanathan [62]) maintains a proper
coloring every round; each vertex computes its next color from its current
color and the colors of its neighbors only.  This module pins that contract
down as an abstract class with a small, explicit surface:

* ``configure(info)`` — receive the graph-level parameters a real network
  node would know (``n``, ``Delta``, input palette size) and derive field
  sizes etc.;
* ``encode_initial(color)`` — map an integer input color into the algorithm's
  internal color space (e.g. AG's ``<a, b>`` pairs);
* ``step(round_index, color, neighbor_colors)`` — the per-round rule.
  ``neighbor_colors`` is an opaque iterable of colors: a tuple in the LOCAL
  mode, a frozenset in the SET-LOCAL mode.  Algorithms that only inspect
  membership/sets work unchanged in SET-LOCAL;
* ``decode_final(color)`` — map an internal color back to an integer in
  ``range(out_palette_size)``.

``round_index`` exists because classical locally-iterative algorithms
(Linial, Kuhn–Wattenhofer color reductions) use round-dependent rules.  The
AG family deliberately ignores it — the same uniform step runs forever —
which is precisely what makes it self-stabilizing.
"""

import math
from abc import ABC, abstractmethod

__all__ = ["NetworkInfo", "LocallyIterativeColoring"]


class NetworkInfo:
    """Graph-level parameters known to every node.

    Mirrors the ROM contents of Section 4: the number of vertices ``n`` (or an
    upper bound), the maximum degree ``max_degree`` (Delta, or an upper
    bound), and the size of the palette the input coloring lives in.
    """

    __slots__ = ("n", "max_degree", "in_palette_size")

    def __init__(self, n, max_degree, in_palette_size):
        if n < 0 or max_degree < 0 or in_palette_size < 1:
            raise ValueError("invalid network info")
        self.n = n
        self.max_degree = max_degree
        self.in_palette_size = in_palette_size

    def __repr__(self):
        return "NetworkInfo(n=%d, max_degree=%d, in_palette_size=%d)" % (
            self.n,
            self.max_degree,
            self.in_palette_size,
        )


class LocallyIterativeColoring(ABC):
    """Base class for one stage of a locally-iterative coloring computation.

    Subclasses must call ``super().configure(info)`` (or set ``self.info``)
    and then fill in :attr:`out_palette_size` and :attr:`rounds_bound`.

    Attributes
    ----------
    maintains_proper:
        True (default) if the stage keeps the coloring proper in every round;
        ArbAG sets this to False because it maintains an *arbdefective*
        coloring instead.
    uniform_step:
        True if ``step`` ignores ``round_index`` (AG family); such stages can
        run forever and are the ones reusable verbatim for self-stabilization.
    """

    name = "locally-iterative-stage"
    maintains_proper = True
    uniform_step = False

    #: Round index from which ``step`` ignores ``round_index`` (a uniform
    #: tail).  ``None`` means no such tail is declared.  Schedule-driven
    #: stages whose rule degenerates to the identity past their schedule
    #: (defective Linial, Kuhn–Wattenhofer) set this so the engines can apply
    #: the same fixed-point early exit that ``uniform_step`` stages get.
    uniform_after = None

    def __init__(self):
        self.info = None

    def configure(self, info):
        """Bind the stage to a network; must be called before any stepping."""
        self.info = info

    def _require_configured(self):
        if self.info is None:
            raise RuntimeError("%s.configure() must be called first" % type(self).__name__)

    # -- palette --------------------------------------------------------------

    @property
    @abstractmethod
    def out_palette_size(self):
        """Number of colors the stage's *final* coloring may use."""

    @property
    @abstractmethod
    def rounds_bound(self):
        """Worst-case number of rounds the stage needs (its proven bound)."""

    # -- the locally-iterative contract ---------------------------------------

    def encode_initial(self, color):
        """Map an input color (int) into the internal color space.

        Default: identity (for stages whose colors are plain ints).
        """
        return color

    @abstractmethod
    def step(self, round_index, color, neighbor_colors):
        """Return the vertex's next color given the 1-hop colors."""

    def decode_final(self, color):
        """Map an internal final color back to ``range(out_palette_size)``."""
        return color

    def is_final(self, color):
        """Return True if this color can no longer change (enables early stop).

        Default: never signal finality; the engine then runs the full
        ``rounds_bound`` or stops at a global fixed point.
        """
        return False

    # -- bandwidth accounting ---------------------------------------------------

    def message_bits(self, round_index):
        """Bits each vertex sends per neighbor in the given round.

        Default: enough to broadcast a color out of the larger of the input
        and output palettes.  Stages with cheaper updates (AG's single
        final/changed bit) override this.
        """
        self._require_configured()
        palette = max(self.info.in_palette_size, self.out_palette_size, 2)
        return max(1, math.ceil(math.log2(palette)))

    def __repr__(self):
        return "%s(configured=%s)" % (type(self).__name__, self.info is not None)
