"""The synchronous round engine.

One engine instance wraps one :class:`~repro.runtime.graph.StaticGraph` and
executes locally-iterative stages on it, round by round.  All vertices update
simultaneously: the new color of ``v`` is a function of the *current* colors
of its closed neighborhood only.

Visibility modes
----------------
LOCAL:
    ``step`` receives the tuple of neighbor colors (a multiset; order is the
    engine's adjacency order and carries no information an algorithm may use).
SET_LOCAL:
    ``step`` receives a frozenset of neighbor colors — identical messages from
    different neighbors are indistinguishable and multiplicities are lost.
    This is the weak LOCAL model of Hefetz et al. [33] discussed in
    Section 1.2.3; algorithms that run unchanged here inherit the model's
    strong lower bounds as context for their upper bounds.
"""

import enum
import time

from repro.errors import ImproperColoringError, PaletteOverflowError
from repro.obs import core as obs
from repro.runtime.algorithm import NetworkInfo
from repro.runtime.metrics import MetricsLog, RoundMetrics
from repro.runtime.results import Result

__all__ = ["Visibility", "RunResult", "ColoringEngine"]


class Visibility(enum.Enum):
    """What a vertex sees of its neighborhood each round."""

    LOCAL = "local"
    SET_LOCAL = "set-local"


class RunResult:
    """Outcome of running one stage to completion.

    Attributes
    ----------
    colors:
        Final internal colors, indexed by vertex.
    int_colors:
        Final colors decoded to ``range(out_palette_size)``.
    rounds_used:
        Number of rounds actually executed (early stop counts the executed
        rounds only).
    metrics:
        :class:`~repro.runtime.metrics.MetricsLog` for the run.
    history:
        Per-round list of internal colorings (only if recording was enabled);
        ``history[0]`` is the encoded initial coloring.
    int_colors_array:
        ``int_colors`` as an int64 NumPy array when the run came off the
        vectorized batch path, ``None`` otherwise.  Pipelines use it to keep
        the color vector an ndarray across stage boundaries.
    """

    def __init__(self, colors, int_colors, rounds_used, metrics, history):
        self.colors = colors
        self.int_colors = int_colors
        self.rounds_used = rounds_used
        self.metrics = metrics
        self.history = history
        self.int_colors_array = None
        self._num_colors = None

    @property
    def num_colors(self):
        """Distinct decoded colors in the final coloring (memoized)."""
        if self._num_colors is None:
            self._num_colors = len(set(self.int_colors))
        return self._num_colors

    @property
    def rounds(self):
        """Alias of :attr:`rounds_used` (the shared result protocol)."""
        return self.rounds_used

    def to_dict(self, detail=True):
        """JSON-serializable summary (history omitted; colors decoded).

        ``detail`` is forwarded to :meth:`MetricsLog.to_dict`: pass False to
        omit the per-round metric rows.
        """
        return {
            "colors": list(self.int_colors),
            "rounds_used": self.rounds_used,
            "num_colors": self.num_colors,
            "metrics": self.metrics.to_dict(detail=detail),
        }

    def __repr__(self):
        return "RunResult(rounds=%d, colors=%d)" % (self.rounds_used, self.num_colors)


Result.register(RunResult)


class ColoringEngine:
    """Runs locally-iterative stages on a fixed topology.

    Parameters
    ----------
    graph:
        The :class:`~repro.runtime.graph.StaticGraph` to run on.
    visibility:
        LOCAL (default) or SET_LOCAL.
    check_proper_each_round:
        If True, verify after every round that stages claiming
        ``maintains_proper`` indeed kept the coloring proper, and raise
        :class:`~repro.errors.ImproperColoringError` otherwise.  This is the
        executable form of Lemmas 3.2 / 7.1 / 7.4.
    record_history:
        If True, keep the full per-round coloring history on the result.
    """

    def __init__(
        self,
        graph,
        visibility=Visibility.LOCAL,
        check_proper_each_round=False,
        record_history=False,
    ):
        self.graph = graph
        self.visibility = visibility
        self.check_proper_each_round = check_proper_each_round
        self.record_history = record_history

    # -- helpers ---------------------------------------------------------------

    def _neighborhood_view(self, colors, v):
        neighbor_colors = tuple(colors[u] for u in self.graph.neighbors(v))
        if self.visibility is Visibility.SET_LOCAL:
            return frozenset(neighbor_colors)
        return neighbor_colors

    def _assert_proper(self, colors, round_index):
        for u, v in self.graph.edges:
            if colors[u] == colors[v]:
                raise ImproperColoringError(round_index, (u, v), colors[u])

    # -- execution ---------------------------------------------------------------

    def run(
        self,
        stage,
        initial_coloring,
        in_palette_size=None,
        max_rounds=None,
        configure=True,
    ):
        """Execute ``stage`` from the given integer initial coloring.

        Parameters
        ----------
        stage:
            A :class:`~repro.runtime.algorithm.LocallyIterativeColoring`.
        initial_coloring:
            Sequence of input colors (ints), indexed by vertex.
        in_palette_size:
            Size of the input palette; defaults to ``max(initial) + 1``.
        max_rounds:
            Cap on rounds; defaults to ``stage.rounds_bound``.
        configure:
            If True (default) the engine configures the stage with this
            graph's :class:`~repro.runtime.algorithm.NetworkInfo`.

        The stage stops early as soon as every vertex reports
        ``stage.is_final(color)``.
        """
        # The span wraps the whole run (rounds, decode, telemetry record) so
        # a merged trace shows one engine.run bar per stage execution nested
        # under its pipeline.stage; free when telemetry is disabled.
        with obs.active().span(
            "engine.run", stage=getattr(stage, "name", "stage"), backend="reference"
        ):
            return self._run_scalar(
                stage, initial_coloring, in_palette_size, max_rounds, configure
            )

    def _run_scalar(
        self, stage, initial_coloring, in_palette_size, max_rounds, configure
    ):
        graph = self.graph
        if len(initial_coloring) != graph.n:
            raise ValueError("initial coloring must assign a color to every vertex")
        if in_palette_size is None:
            in_palette_size = (max(initial_coloring) + 1) if graph.n else 1
        if configure:
            stage.configure(NetworkInfo(graph.n, graph.max_degree, in_palette_size))

        colors = [stage.encode_initial(c) for c in initial_coloring]
        metrics = MetricsLog()
        history = [list(colors)] if self.record_history else None

        tel = obs.active()
        recording = tel.enabled
        run_start = time.perf_counter() if recording else 0.0
        round_rows = [] if recording else None

        if self.check_proper_each_round and stage.maintains_proper:
            self._assert_proper(colors, -1)

        bound = stage.rounds_bound if max_rounds is None else max_rounds
        rounds_used = 0
        for round_index in range(bound):
            if all(stage.is_final(colors[v]) for v in graph.vertices()):
                break
            if recording:
                round_start = time.perf_counter()
            new_colors = [
                stage.step(round_index, colors[v], self._neighborhood_view(colors, v))
                for v in graph.vertices()
            ]
            changed = sum(
                1 for v in graph.vertices() if new_colors[v] != colors[v]
            )
            messages = 2 * graph.m
            bits = messages * stage.message_bits(round_index)
            metrics.record(RoundMetrics(round_index, messages, bits, changed))
            colors = new_colors
            rounds_used += 1
            if recording:
                round_rows.append(
                    {
                        "round": round_index,
                        "messages": messages,
                        "bits": bits,
                        "changed": changed,
                        "finalized": sum(1 for c in colors if stage.is_final(c)),
                        "conflicts": sum(
                            1 for u, v in graph.edges if colors[u] == colors[v]
                        ),
                        "seconds": time.perf_counter() - round_start,
                    }
                )
            if self.record_history:
                history.append(list(colors))
            if self.check_proper_each_round and stage.maintains_proper:
                self._assert_proper(colors, round_index)
            if changed == 0 and (
                stage.uniform_step
                or (
                    stage.uniform_after is not None
                    and round_index >= stage.uniform_after
                )
            ):
                # Fixed point of a round-independent rule (or of a stage's
                # declared uniform tail): every later round would repeat this
                # no-op verbatim, so stop.  The batch engine applies the
                # identical early exit.
                break

        int_colors = [stage.decode_final(c) for c in colors]
        out = stage.out_palette_size
        for v, c in enumerate(int_colors):
            if not (0 <= c < out):
                raise PaletteOverflowError(
                    "vertex %d got color %r outside palette of size %d (stage %s)"
                    % (v, c, out, stage.name)
                )
        if recording:
            self._record_run(
                tel, stage, "reference", in_palette_size, rounds_used, metrics,
                round_rows, time.perf_counter() - run_start,
            )
        return RunResult(colors, int_colors, rounds_used, metrics, history)

    def _record_run(
        self, tel, stage, backend, in_palette, rounds_used, metrics, round_rows,
        wall_seconds,
    ):
        """Emit the per-run telemetry record (shared by both engine paths)."""
        graph = self.graph
        tel.event(
            "engine.run",
            stage=stage.name,
            backend=backend,
            n=graph.n,
            m=graph.m,
            delta=graph.max_degree,
            in_palette=in_palette,
            out_palette=stage.out_palette_size,
            rounds_used=rounds_used,
            total_messages=metrics.total_messages,
            total_bits=metrics.total_bits,
            rounds=round_rows,
            wall_seconds=wall_seconds,
        )
        tel.counter("engine.runs", stage=stage.name)
        tel.counter("engine.rounds", rounds_used, stage=stage.name)
        tel.histogram("engine.run_seconds", wall_seconds, stage=stage.name)
