"""The shared result protocol.

Every execution layer in the repository returns its own result class —
:class:`~repro.runtime.engine.RunResult` (one stage),
:class:`~repro.runtime.pipeline.PipelineResult` (a stage chain),
:class:`~repro.recipes.SublinearColoringResult` (the Theorem 6.4 routes),
:class:`~repro.edge.congest.EdgeColoringResult` (the CONGEST edge
coloring), :class:`~repro.lowmem.runner.LowMemoryReport` (the metered
low-memory run), the :mod:`repro.apps` results, ...  They all now satisfy
one small structural protocol so the :mod:`repro.parallel` job runner and
the CLI can serialize any job result uniformly:

``colors``
    The final output — a vertex-indexed sequence for vertex problems, an
    ``{edge: color}`` mapping for edge problems.
``rounds``
    Total synchronous rounds executed.
``to_dict()``
    A JSON-serializable payload.

:class:`Result` is a structural ABC: ``isinstance(obj, Result)`` is True
for *any* object exposing the three members, no inheritance required.
:func:`summarize` builds the uniform envelope the job runner ships across
process boundaries.
"""

import abc

__all__ = ["Result", "RESULT_PROTOCOL", "is_result", "summarize"]

#: The members every result must expose.
RESULT_PROTOCOL = ("colors", "rounds", "to_dict")


class Result(abc.ABC):
    """Structural base class of every execution result.

    Membership is duck-typed: a class (or instance) with ``colors``,
    ``rounds`` and ``to_dict`` passes ``isinstance`` / ``issubclass``
    checks against :class:`Result` without registering or inheriting.
    """

    __slots__ = ()

    @classmethod
    def __subclasshook__(cls, other):
        """Accept any class exposing the full result protocol.

        Returns ``NotImplemented`` (rather than False) on a miss so that
        classes carrying protocol members as instance attributes can still
        opt in through ``Result.register``.
        """
        if cls is not Result:
            return NotImplemented
        if all(
            any(member in base.__dict__ for base in other.__mro__)
            for member in RESULT_PROTOCOL
        ):
            return True
        return NotImplemented


def is_result(obj):
    """True iff ``obj`` satisfies the result protocol.

    Checks the class first (declared properties / registration), then the
    instance itself — classes that assign ``colors`` in ``__init__`` pass
    without any registration ceremony.
    """
    return isinstance(obj, Result) or all(
        hasattr(obj, member) for member in RESULT_PROTOCOL
    )


def summarize(result, detail=False):
    """The uniform JSON-able envelope for any protocol-compliant result.

    ``detail=True`` forwards to ``to_dict(detail=True)`` on results that
    support the flag (per-round metric rows); the default keeps the payload
    small enough to ship between worker processes.

    Raises :class:`TypeError` for objects outside the protocol, naming the
    missing members — the error a custom job algorithm sees when it returns
    a bare tuple instead of a result object.
    """
    if not is_result(result):
        missing = [m for m in RESULT_PROTOCOL if not hasattr(result, m)]
        raise TypeError(
            "%r does not satisfy the result protocol (missing: %s)"
            % (type(result).__name__, ", ".join(missing) or "nothing?")
        )
    try:
        payload = result.to_dict(detail=detail)
    except TypeError:
        payload = result.to_dict()
    num_colors = getattr(result, "num_colors", None)
    return {
        "kind": type(result).__name__,
        "rounds": result.rounds,
        "num_colors": num_colors,
        "payload": payload,
    }
