"""The shared result protocol.

Every execution layer in the repository returns its own result class —
:class:`~repro.runtime.engine.RunResult` (one stage),
:class:`~repro.runtime.pipeline.PipelineResult` (a stage chain),
:class:`~repro.recipes.SublinearColoringResult` (the Theorem 6.4 routes),
:class:`~repro.edge.congest.EdgeColoringResult` (the CONGEST edge
coloring), :class:`~repro.lowmem.runner.LowMemoryReport` (the metered
low-memory run), the :mod:`repro.apps` results, ...  They all now satisfy
one small structural protocol so the :mod:`repro.parallel` job runner and
the CLI can serialize any job result uniformly:

``colors``
    The final output — a vertex-indexed sequence for vertex problems, an
    ``{edge: color}`` mapping for edge problems.
``rounds``
    Total synchronous rounds executed.
``to_dict()``
    A JSON-serializable payload.

:class:`Result` is a structural ABC: ``isinstance(obj, Result)`` is True
for *any* object exposing the three members, no inheritance required.
:func:`summarize` builds the uniform envelope the job runner ships across
process boundaries.
"""

import abc
import warnings

__all__ = [
    "Result",
    "RESULT_PROTOCOL",
    "SCHEMA_VERSION",
    "SchemaVersionWarning",
    "check_schema_version",
    "is_result",
    "summarize",
]

#: The members every result must expose.
RESULT_PROTOCOL = ("colors", "rounds", "to_dict")

#: Version stamp of the serialized wire formats (JobSpec dicts, summarize
#: envelopes, the service's run records).  Bump when a dict layout changes
#: incompatibly; readers tolerate newer stamps (see check_schema_version).
SCHEMA_VERSION = 1


class SchemaVersionWarning(RuntimeWarning):
    """A serialized record carries a newer ``schema_version`` than this reader.

    Emitted by :func:`check_schema_version`; reading proceeds on the known
    fields (the tolerant-reader rule), so registries and wire peers written
    by a newer release stay loadable — only genuinely unknown layouts are
    at risk, and the warning names the versions involved.
    """


def check_schema_version(data, kind="record"):
    """Tolerant-reader guard over a serialized dict's ``schema_version``.

    Returns the version the record claims (``SCHEMA_VERSION`` when the field
    is absent — every pre-versioning producer wrote format 1).  A *newer*
    stamp than this reader supports emits :class:`SchemaVersionWarning` and
    reading continues on the fields the reader knows; it never raises, which
    is what lets the SQLite run registry and the service wire format evolve
    without breaking stored runs.
    """
    if not isinstance(data, dict):
        return SCHEMA_VERSION
    version = data.get("schema_version", SCHEMA_VERSION)
    if not isinstance(version, int):
        warnings.warn(
            "ignoring non-integer schema_version %r on %s" % (version, kind),
            SchemaVersionWarning,
            stacklevel=2,
        )
        return SCHEMA_VERSION
    if version > SCHEMA_VERSION:
        warnings.warn(
            "%s written with schema_version %d, newer than the supported %d; "
            "reading the known fields only" % (kind, version, SCHEMA_VERSION),
            SchemaVersionWarning,
            stacklevel=2,
        )
    return version


class Result(abc.ABC):
    """Structural base class of every execution result.

    Membership is duck-typed: a class (or instance) with ``colors``,
    ``rounds`` and ``to_dict`` passes ``isinstance`` / ``issubclass``
    checks against :class:`Result` without registering or inheriting.
    """

    __slots__ = ()

    @classmethod
    def __subclasshook__(cls, other):
        """Accept any class exposing the full result protocol.

        Returns ``NotImplemented`` (rather than False) on a miss so that
        classes carrying protocol members as instance attributes can still
        opt in through ``Result.register``.
        """
        if cls is not Result:
            return NotImplemented
        if all(
            any(member in base.__dict__ for base in other.__mro__)
            for member in RESULT_PROTOCOL
        ):
            return True
        return NotImplemented


def is_result(obj):
    """True iff ``obj`` satisfies the result protocol.

    Checks the class first (declared properties / registration), then the
    instance itself — classes that assign ``colors`` in ``__init__`` pass
    without any registration ceremony.
    """
    return isinstance(obj, Result) or all(
        hasattr(obj, member) for member in RESULT_PROTOCOL
    )


def summarize(result, detail=False):
    """The uniform JSON-able envelope for any protocol-compliant result.

    ``detail=True`` forwards to ``to_dict(detail=True)`` on results that
    support the flag (per-round metric rows); the default keeps the payload
    small enough to ship between worker processes.

    Raises :class:`TypeError` for objects outside the protocol, naming the
    missing members — the error a custom job algorithm sees when it returns
    a bare tuple instead of a result object.
    """
    if not is_result(result):
        missing = [m for m in RESULT_PROTOCOL if not hasattr(result, m)]
        raise TypeError(
            "%r does not satisfy the result protocol (missing: %s)"
            % (type(result).__name__, ", ".join(missing) or "nothing?")
        )
    try:
        payload = result.to_dict(detail=detail)
    except TypeError:
        payload = result.to_dict()
    num_colors = getattr(result, "num_colors", None)
    return {
        "schema_version": SCHEMA_VERSION,
        "kind": type(result).__name__,
        "rounds": result.rounds,
        "num_colors": num_colors,
        "payload": payload,
    }
