"""Optional Numba-jitted kernels for the hottest per-round loops.

The batch engines replaced per-vertex Python calls with NumPy array ops; the
remaining cost is the handful of full-array temporaries each round allocates
(gather, compare, bincount, where).  The kernels here fuse a whole round
into one cache-friendly pass over the CSR arrays — the AG-family one-shot
steps (additive-group, 3AG, AG(N)) and the self-stabilizing coloring's
steady-state round, which between them dominate every benchmark profile.

Structure, in fallback order (``numba -> batch -> reference``):

* Each kernel is written as a **plain-Python loop function** over ``int64``
  arrays.  Without Numba the raw functions still run (slowly) under plain
  NumPy indexing — which is how the differential tests verify kernel logic
  on machines where Numba is not installed.
* :func:`engine_kernel_for` / :func:`selfstab_kernel_for` return an adapter
  only when Numba is importable (and ``REPRO_DISABLE_NUMBA`` is unset);
  compilation is lazy, per function, on first call.
* A kernel may decline a round at runtime by returning ``None`` — the
  self-stabilizing kernel only covers the all-level-0 steady state, and the
  engine then runs the ordinary NumPy batch round.  Output is bit-identical
  in every case: the kernels mirror the ``step_batch`` array semantics
  exactly, and the differential suites run against them under
  ``REPRO_NATIVE=1``.

Nothing here imports ``numba`` at module import time; the module is safe to
load in every environment, including ``REPRO_DISABLE_NUMPY=1``.
"""

import os

from repro.runtime.csr import numpy_or_none

__all__ = [
    "numba_or_none",
    "native_available",
    "native_default",
    "engine_kernel_for",
    "selfstab_kernel_for",
    "greedy_kernel",
]

_DISABLE_ENV = "REPRO_DISABLE_NUMBA"
_FORCE_ENV = "REPRO_NATIVE"


def numba_or_none():
    """The ``numba`` module, or None if unavailable or disabled.

    ``REPRO_DISABLE_NUMBA=1`` makes the native layer behave as if Numba were
    not installed (the differential knob, mirroring ``REPRO_DISABLE_NUMPY``).
    """
    if os.environ.get(_DISABLE_ENV) == "1":
        return None
    try:
        import numba
    except ImportError:
        return None
    return numba


def native_available():
    """True iff native kernels can actually compile and run."""
    return numba_or_none() is not None and numpy_or_none() is not None


def native_default():
    """Engine-level default for the ``native`` flag (``REPRO_NATIVE=1``).

    The env knob lets the existing differential parity suites exercise the
    Numba path without any test changes — CI's optional-deps job sets it.
    """
    return os.environ.get(_FORCE_ENV) == "1"


# -- the raw kernels ------------------------------------------------------------------
#
# Plain functions over int64 arrays, written in the scalar subset Numba's
# nopython mode compiles directly.  Each mirrors its stage's step_batch
# array semantics exactly (same where-conditions, same modular arithmetic).


def ag_round(indptr, indices, a, b, q, new_a, new_b):
    """AdditiveGroupColoring.step_batch: rotate on a shared-b conflict."""
    for v in range(a.shape[0]):
        bv = b[v]
        conflict = False
        for s in range(indptr[v], indptr[v + 1]):
            if b[indices[s]] == bv:
                conflict = True
                break
        if conflict:
            new_a[v] = a[v]
            new_b[v] = (bv + a[v]) % q
        else:
            new_a[v] = 0
            new_b[v] = bv


def ag3_round(indptr, indices, c, b, a, p, new_c, new_b, new_a):
    """ThreeDimensionalAG.step_batch: the two-phase (c, b, a) descent."""
    for v in range(c.shape[0]):
        cv, bv, av = c[v], b[v], a[v]
        phase1 = False
        phase2 = False
        for s in range(indptr[v], indptr[v + 1]):
            u = indices[s]
            if b[u] == bv and c[u] != cv:
                phase1 = True
            if a[u] == av:
                phase2 = True
        if cv != 0:
            if phase1:
                new_c[v] = cv
                new_b[v] = (bv + cv) % p
            else:
                new_c[v] = 0
                new_b[v] = bv
            new_a[v] = av
        else:
            new_c[v] = 0
            if phase2:
                new_b[v] = bv
                new_a[v] = (av + bv) % p
            else:
                new_b[v] = 0
                new_a[v] = av


def agn_round(indptr, indices, b, a, modulus, new_b, new_a):
    """AdditiveGroupZN.step_batch: increment on a shared-a conflict."""
    for v in range(b.shape[0]):
        av = a[v]
        conflict = False
        for s in range(indptr[v], indptr[v + 1]):
            if a[indices[s]] == av:
                conflict = True
                break
        if b[v] != 0:
            if conflict:
                new_b[v] = b[v]
                new_a[v] = (av + 1) % modulus
            else:
                new_b[v] = 0
                new_a[v] = av
        else:
            new_b[v] = b[v]
            new_a[v] = av


def selfstab_core_round(indptr, indices, colors, q, reset_base, vertex_ids, new):
    """One SelfStabColoring round in the all-level-0 steady state.

    Valid only when every color sits in the core interval ``[0, q*q)`` (the
    adapter checks): Check-Error resets exact-equal conflicts to the ID
    slot; everyone else takes the uniform AG step against the *old* neighbor
    colors, exactly as ``transition_batch_colors`` does.
    """
    for v in range(colors.shape[0]):
        cv = colors[v]
        bv = cv % q
        exact = False
        core = False
        for s in range(indptr[v], indptr[v + 1]):
            cu = colors[indices[s]]
            if cu == cv:
                exact = True
                break
            if cu % q == bv:
                core = True
        if exact:
            new[v] = reset_base + vertex_ids[v]
        elif core:
            av = cv // q
            new[v] = av * q + (bv + av) % q
        else:
            new[v] = bv


def greedy_assign(indptr, indices, order, stamp, colors):
    """Sequential first-fit greedy over ``order`` (the oracle's exact rule).

    ``stamp`` is an ``int64`` scratch array of at least ``max_degree + 2``
    entries, initialized to ``-1``; ``colors`` starts at ``-1`` everywhere.
    Marks each visited vertex's taken colors with its order position, then
    takes the smallest unstamped color — identical to the set-based loop of
    :func:`repro.baselines.greedy_coloring` for every (even partial or
    repeating) order.
    """
    for i in range(order.shape[0]):
        v = order[i]
        for s in range(indptr[v], indptr[v + 1]):
            c = colors[indices[s]]
            if c >= 0:
                stamp[c] = i
        c = 0
        while stamp[c] == i:
            c += 1
        colors[v] = c


# -- lazy compilation -----------------------------------------------------------------

_COMPILED = {}


def jit(fn):
    """The Numba-compiled version of a raw kernel, compiled on first use.

    Raises when Numba is unavailable — callers gate on
    :func:`native_available` first.
    """
    compiled = _COMPILED.get(fn)
    if compiled is None:
        numba = numba_or_none()
        if numba is None:
            raise RuntimeError("numba is unavailable; native kernels cannot compile")
        compiled = numba.njit(cache=True)(fn)
        _COMPILED[fn] = compiled
    return compiled


# -- adapters: step_batch / transition_batch signatures -------------------------------


def _ag_adapter(stage, round_index, state, csr, visibility):
    np = numpy_or_none()
    a, b = state
    new_a = np.empty_like(a)
    new_b = np.empty_like(b)
    jit(ag_round)(csr.indptr, csr.indices, a, b, stage.q, new_a, new_b)
    return (new_a, new_b)


def _ag3_adapter(stage, round_index, state, csr, visibility):
    np = numpy_or_none()
    c, b, a = state
    new_c = np.empty_like(c)
    new_b = np.empty_like(b)
    new_a = np.empty_like(a)
    jit(ag3_round)(csr.indptr, csr.indices, c, b, a, stage.p, new_c, new_b, new_a)
    return (new_c, new_b, new_a)


def _agn_adapter(stage, round_index, state, csr, visibility):
    np = numpy_or_none()
    b, a = state
    new_b = np.empty_like(b)
    new_a = np.empty_like(a)
    jit(agn_round)(csr.indptr, csr.indices, b, a, stage.modulus, new_b, new_a)
    return (new_b, new_a)


# All three AG-family rules are existence-based over the neighbor multiset,
# so one kernel serves both LOCAL and SET-LOCAL visibility (the same
# argument the NumPy kernels rely on).
_ENGINE_ADAPTERS = {
    "additive-group": _ag_adapter,
    "3ag": _ag3_adapter,
    "ag-zn": _agn_adapter,
}


def engine_kernel_for(stage):
    """A native ``step_batch`` replacement for ``stage``, or None.

    None means "no coverage": Numba missing/disabled, or the stage is not
    one of the fused AG-family kernels — the engine then runs the ordinary
    NumPy batch round (the ``batch`` tier of the fallback order).
    """
    if not native_available():
        return None
    return _ENGINE_ADAPTERS.get(getattr(stage, "name", None))


def _selfstab_coloring_adapter(algorithm, state, ctx):
    np = ctx.np
    (colors,) = state
    plan = algorithm.plan
    # Steady state only: every color in the core interval I_0 = [0, q*q).
    # (offsets[0] == 0 by construction.)  Outside it — during cold-start
    # descent or right after a corruption burst — decline and let the full
    # NumPy round handle the interval plan.
    if colors.size and not bool(((colors >= 0) & (colors < plan.offsets[1])).all()):
        return None
    new = np.empty_like(colors)
    jit(selfstab_core_round)(
        ctx.csr.indptr,
        ctx.csr.indices,
        colors,
        algorithm.q,
        plan.offsets[plan.levels - 1],
        ctx.vertices,
        new,
    )
    return (new,), colors != new


_SELFSTAB_ADAPTERS = {
    "selfstab-coloring": _selfstab_coloring_adapter,
}


def greedy_kernel():
    """The compiled sequential greedy kernel, or None without Numba.

    Unlike the engine adapters this is not round-granular — the whole
    first-fit sweep is one fused loop, called directly by
    :func:`repro.baselines.greedy_coloring`.
    """
    if not native_available():
        return None
    return jit(greedy_assign)


def selfstab_kernel_for(algorithm):
    """A native ``transition_batch`` replacement for ``algorithm``, or None.

    The adapter itself may also return None per round (partial coverage);
    the engine falls back to the algorithm's NumPy kernel for that round.
    """
    if not native_available():
        return None
    return _SELFSTAB_ADAPTERS.get(getattr(algorithm, "name", None))
