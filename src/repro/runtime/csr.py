"""Compressed-sparse-row adjacency for the vectorized batch engine.

The reference engine rebuilds a Python tuple of neighbor colors per vertex
per round — O(n * Delta) interpreter work.  :class:`CSRAdjacency` flattens
the adjacency lists once into three NumPy arrays so a whole round becomes a
handful of array operations:

``indices``
    All neighbor lists concatenated in vertex order (length ``2 * m``).
``indptr``
    ``indices[indptr[v]:indptr[v + 1]]`` are the neighbors of ``v``.
``rows``
    ``rows[i]`` is the vertex that owns slot ``i`` of ``indices`` (the
    expansion of ``repeat(arange(n), degrees)``), so per-vertex reductions
    are one ``bincount`` away.

``edge_u`` / ``edge_v`` mirror ``StaticGraph.edges`` (sorted, ``u < v``) for
vectorized properness checks.

NumPy is an optional dependency (the ``repro[fast]`` extra); this module is
only imported once a caller actually asks for a CSR view, and everything
else in the package works without it.
"""

import os

__all__ = ["CSRAdjacency", "numpy_or_none", "numpy_available"]

_DISABLE_ENV = "REPRO_DISABLE_NUMPY"


def numpy_or_none():
    """Return the ``numpy`` module, or ``None`` if unavailable/disabled.

    Setting ``REPRO_DISABLE_NUMPY=1`` makes the whole acceleration layer
    behave as if NumPy were not installed — the CI knob that keeps the
    pure-Python fallback honest without a second virtualenv.
    """
    if os.environ.get(_DISABLE_ENV) == "1":
        return None
    try:
        import numpy
    except ImportError:
        return None
    return numpy


def numpy_available():
    """True iff the batch backend can run (NumPy importable and not disabled)."""
    return numpy_or_none() is not None


def _require_numpy():
    np = numpy_or_none()
    if np is None:
        raise RuntimeError(
            "the batch engine needs NumPy; install it with `pip install repro[fast]`"
            " (or unset %s)" % _DISABLE_ENV
        )
    return np


class CSRAdjacency:
    """Immutable CSR view of a :class:`~repro.runtime.graph.StaticGraph`.

    Build via :meth:`from_graph` (or, preferably, the cached
    ``StaticGraph.csr()``).  All arrays are ``int64``.
    """

    __slots__ = ("n", "m", "indptr", "indices", "rows", "degrees", "edge_u", "edge_v")

    def __init__(self, n, m, indptr, indices, rows, degrees, edge_u, edge_v):
        self.n = n
        self.m = m
        self.indptr = indptr
        self.indices = indices
        self.rows = rows
        self.degrees = degrees
        self.edge_u = edge_u
        self.edge_v = edge_v

    @classmethod
    def from_graph(cls, graph):
        """Flatten ``graph``'s adjacency into CSR arrays."""
        np = _require_numpy()
        n = graph.n
        degrees = np.fromiter(
            (graph.degree(v) for v in range(n)), dtype=np.int64, count=n
        )
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(degrees, out=indptr[1:])
        total = int(indptr[-1])
        indices = np.fromiter(
            (u for v in range(n) for u in graph.neighbors(v)),
            dtype=np.int64,
            count=total,
        )
        rows = np.repeat(np.arange(n, dtype=np.int64), degrees)
        edges = graph.edges
        if edges:
            edge_arr = np.asarray(edges, dtype=np.int64)
            edge_u, edge_v = edge_arr[:, 0], edge_arr[:, 1]
        else:
            edge_u = np.zeros(0, dtype=np.int64)
            edge_v = np.zeros(0, dtype=np.int64)
        return cls(n, len(edges), indptr, indices, rows, degrees, edge_u, edge_v)

    @classmethod
    def from_dynamic(cls, graph):
        """Compact CSR over a :class:`~repro.runtime.graph.DynamicGraph`.

        Dynamic graphs have an arbitrary present subset of ``range(n_bound)``,
        so the view is *compacted*: CSR vertex ``i`` is the ``i``-th smallest
        present vertex.  Returns ``(csr, vertices)`` where ``vertices`` is the
        ``int64`` array mapping compact index back to the original vertex id.
        The view is a snapshot — the batch self-stabilization engine rebuilds
        it once per topology epoch (crash / spawn / rewire), not per round.
        """
        from itertools import chain

        np = _require_numpy()
        verts = graph.vertices()
        n = len(verts)
        verts_arr = np.asarray(verts, dtype=np.int64)
        degrees = np.fromiter(
            (graph.degree(v) for v in verts), dtype=np.int64, count=n
        )
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(degrees, out=indptr[1:])
        total = int(indptr[-1])
        raw = np.fromiter(
            chain.from_iterable(graph.neighbors(v) for v in verts),
            dtype=np.int64,
            count=total,
        )
        # verts is sorted, so searchsorted *is* the original-id -> compact-id
        # map; neighbors() is sorted by original id and the map is monotone,
        # so each compact neighbor list comes out sorted too.
        indices = np.searchsorted(verts_arr, raw)
        rows = np.repeat(np.arange(n, dtype=np.int64), degrees)
        # Each edge appears once with compact u < v, in row-major order —
        # the same lexicographic order graph.edges() would yield.
        forward = rows < indices
        edge_u = rows[forward]
        edge_v = indices[forward]
        csr = cls(n, edge_u.size, indptr, indices, rows, degrees, edge_u, edge_v)
        return csr, verts_arr

    @classmethod
    def from_arrays(cls, n, indptr, indices):
        """Rebuild a CSR view from bare ``indptr``/``indices`` arrays.

        The shared-memory fan-out plane ships exactly those two arrays; the
        derived columns (``rows``, ``degrees``, ``edge_u``/``edge_v``) are
        recomputed here, producing the same values ``from_graph`` would —
        forward slots in row-major order enumerate the edges in the sorted
        ``u < v`` order of ``StaticGraph.edges``.
        """
        np = _require_numpy()
        degrees = np.diff(indptr)
        rows = np.repeat(np.arange(n, dtype=np.int64), degrees)
        forward = rows < indices
        edge_u = rows[forward]
        edge_v = indices[forward]
        return cls(n, int(edge_u.size), indptr, indices, rows, degrees, edge_u, edge_v)

    # -- kernel building blocks -------------------------------------------------

    def gather(self, values):
        """Per-slot neighbor view: ``gather(x)[i] == x[indices[i]]``."""
        return values[self.indices]

    def owner_values(self, values):
        """Per-slot owner view: ``owner_values(x)[i] == x[rows[i]]``."""
        return values[self.rows]

    def count_per_vertex(self, slot_mask):
        """Count True slots per owning vertex (empty neighborhoods count 0)."""
        np = _require_numpy()
        return np.bincount(self.rows[slot_mask], minlength=self.n)

    def any_per_vertex(self, slot_mask):
        """Per-vertex OR over the owning vertex's slots."""
        return self.count_per_vertex(slot_mask) > 0

    def distinct_slot_mask(self, *slot_columns):
        """Mask keeping one slot per distinct ``(owner, *columns)`` tuple.

        This is the SET-LOCAL collapse: within each vertex's neighborhood,
        neighbors broadcasting identical colors become indistinguishable, so
        multiplicity-sensitive rules (ArbAG's conflict count) must dedupe
        before counting.  Columns are the components of the neighbor color.
        """
        np = _require_numpy()
        size = self.rows.size
        keep = np.ones(size, dtype=bool)
        if size == 0:
            return keep
        order = np.lexsort(tuple(reversed(slot_columns)) + (self.rows,))
        sorted_cols = [self.rows[order]] + [col[order] for col in slot_columns]
        differs = np.zeros(size - 1, dtype=bool)
        for col in sorted_cols:
            differs |= col[1:] != col[:-1]
        keep_sorted = np.ones(size, dtype=bool)
        keep_sorted[1:] = differs
        keep[order] = keep_sorted
        return keep

    def __repr__(self):
        return "CSRAdjacency(n=%d, m=%d)" % (self.n, self.m)
