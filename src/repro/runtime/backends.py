"""The unified execution-backend registry.

One registry constructs every execution engine, keyed by *kind*:

* ``"engine"`` — synchronous round engines for locally-iterative stages
  (:class:`~repro.runtime.engine.ColoringEngine` /
  :class:`~repro.runtime.fast_engine.BatchColoringEngine`);
* ``"selfstab"`` — self-stabilization engines
  (:class:`~repro.selfstab.engine.SelfStabEngine` /
  :class:`~repro.selfstab.fast_engine.BatchSelfStabEngine`).

Every kind exposes the same four backend names:

* ``"auto"`` — the vectorized batch engine when NumPy is available (and,
  when the caller passes the relevant hint, when the workload supports the
  batch protocol); the pure-Python reference engine otherwise;
* ``"batch"`` — force the vectorized engine; raises :class:`RuntimeError`
  when NumPy is missing;
* ``"numba"`` — the batch engine with :mod:`repro.runtime.native`'s fused
  Numba kernels enabled; degrades along ``numba -> batch -> reference``
  (no Numba: ordinary batch rounds; no NumPy: the reference engine) with
  bit-identical results at every tier;
* ``"reference"`` — force the pure-Python reference engine.

Usage::

    from repro.runtime.backends import resolve_backend

    engine = resolve_backend("engine", "auto")(graph, record_history=True)
    ss = resolve_backend("selfstab", "batch")(dynamic_graph, algorithm)

New execution backends (a GPU engine, a distributed shard, ...) plug in via
:func:`register_backend` without touching any dispatch site — the CLI and
the :mod:`repro.parallel` job runner both enumerate :func:`backend_names`
at runtime.
"""

__all__ = [
    "BACKEND_KINDS",
    "backend_names",
    "register_backend",
    "resolve_backend",
]

# (kind, backend-name) -> factory.  Factories share one calling convention
# per kind; see the builtin factories below.
_FACTORIES = {}


def register_backend(kind, name, factory):
    """Register ``factory`` as backend ``name`` of ``kind``.

    The factory must accept the kind's standard construction signature
    (``(graph, **engine_kwargs)`` for ``"engine"``, ``(graph, algorithm,
    **engine_kwargs)`` for ``"selfstab"``) and return a ready engine.
    Registering an existing ``(kind, name)`` pair overwrites it, which is
    how tests stub backends out.
    """
    _FACTORIES[(kind, name)] = factory


def backend_names(kind):
    """Sorted backend names registered for ``kind`` (``auto`` first)."""
    names = sorted(name for k, name in _FACTORIES if k == kind)
    if not names:
        raise ValueError(
            "unknown backend kind %r (choose from %s)"
            % (kind, ", ".join(sorted(BACKEND_KINDS)))
        )
    if "auto" in names:
        names.remove("auto")
        names.insert(0, "auto")
    return names


def resolve_backend(kind, backend="auto"):
    """Return the engine factory registered for ``(kind, backend)``.

    ``kind`` is ``"engine"`` or ``"selfstab"`` (plus anything registered at
    runtime); ``backend`` defaults to ``"auto"``.  Unknown kinds and unknown
    backend names both raise :class:`ValueError` listing the choices.
    """
    factory = _FACTORIES.get((kind, backend))
    if factory is None:
        names = backend_names(kind)  # raises for unknown kind
        raise ValueError(
            "unknown backend %r for kind %r (choose from %s)"
            % (backend, kind, ", ".join(names))
        )
    return factory


# -- builtin backends: the one-shot coloring engine ---------------------------------


def _numpy_missing_error():
    return RuntimeError(
        "backend='batch' needs NumPy; install it with `pip install repro[fast]`"
    )


def _engine_reference(graph, stages=None, **kwargs):
    """The pure-Python reference engine (``stages`` hint ignored)."""
    from repro.runtime.engine import ColoringEngine

    return ColoringEngine(graph, **kwargs)


def _engine_batch(graph, stages=None, **kwargs):
    """The vectorized batch engine; NumPy is mandatory here."""
    from repro.runtime.csr import numpy_available
    from repro.runtime.fast_engine import BatchColoringEngine

    if not numpy_available():
        raise _numpy_missing_error()
    return BatchColoringEngine(graph, **kwargs)


def _engine_numba(graph, stages=None, **kwargs):
    """The native-kernel engine: Numba-fused rounds on top of the batch engine.

    Degrades along the documented fallback order ``numba -> batch ->
    reference``: without Numba (or for stages with no fused kernel) the
    returned engine simply runs the ordinary NumPy batch rounds; without
    NumPy it is the pure-Python reference engine.  Results are bit-identical
    at every tier.
    """
    from repro.runtime.csr import numpy_available

    if not numpy_available():
        from repro.runtime.engine import ColoringEngine

        return ColoringEngine(graph, **kwargs)
    from repro.runtime.fast_engine import BatchColoringEngine

    return BatchColoringEngine(graph, native=True, **kwargs)


def _engine_auto(graph, stages=None, **kwargs):
    """Batch when NumPy is up and every hinted stage supports it, else
    reference.  The batch engine falls back to the scalar path per-stage, so
    the ``stages`` hint may be omitted."""
    from repro.runtime.csr import numpy_available
    from repro.runtime.fast_engine import BatchColoringEngine, batch_supported

    if numpy_available() and (
        stages is None or all(batch_supported(s) for s in stages)
    ):
        return BatchColoringEngine(graph, **kwargs)
    from repro.runtime.engine import ColoringEngine

    return ColoringEngine(graph, **kwargs)


def _engine_oocore(graph, stages=None, **kwargs):
    """The out-of-core engine over memory-mapped CSR shards.

    Accepts a :class:`~repro.oocore.store.ShardedCSRGraph` directly or any
    CSR-bearing graph (converted into scratch shards).  NumPy is mandatory:
    the out-of-core tier exists purely to scale the batch kernels past RAM
    and has no scalar fallback.
    """
    from repro.runtime.csr import numpy_available

    if not numpy_available():
        raise RuntimeError(
            "backend='oocore' needs NumPy; install it with "
            "`pip install repro[fast]`"
        )
    from repro.oocore.engine import OocoreColoringEngine

    return OocoreColoringEngine(graph, **kwargs)


# -- builtin backends: the self-stabilization engine --------------------------------


def _selfstab_reference(graph, algorithm, **kwargs):
    """The pure-Python reference self-stabilization engine."""
    from repro.selfstab.engine import SelfStabEngine

    return SelfStabEngine(graph, algorithm, **kwargs)


def _selfstab_batch(graph, algorithm, **kwargs):
    """The vectorized self-stabilization engine; NumPy is mandatory here.

    (The batch engine still falls back to the scalar step per-round for
    algorithms without the batch transition protocol.)
    """
    from repro.runtime.csr import numpy_available
    from repro.selfstab.fast_engine import BatchSelfStabEngine

    if not numpy_available():
        raise _numpy_missing_error()
    return BatchSelfStabEngine(graph, algorithm, **kwargs)


def _selfstab_numba(graph, algorithm, **kwargs):
    """Native-kernel self-stabilization engine (fallback order as ``engine``)."""
    from repro.runtime.csr import numpy_available

    if not numpy_available():
        from repro.selfstab.engine import SelfStabEngine

        return SelfStabEngine(graph, algorithm, **kwargs)
    from repro.selfstab.fast_engine import BatchSelfStabEngine

    return BatchSelfStabEngine(graph, algorithm, native=True, **kwargs)


def _selfstab_auto(graph, algorithm, **kwargs):
    """Batch when NumPy is up and the algorithm has batch transitions."""
    from repro.runtime.csr import numpy_available
    from repro.selfstab.fast_engine import BatchSelfStabEngine, batch_supported

    if numpy_available() and batch_supported(algorithm):
        return BatchSelfStabEngine(graph, algorithm, **kwargs)
    from repro.selfstab.engine import SelfStabEngine

    return SelfStabEngine(graph, algorithm, **kwargs)


register_backend("engine", "auto", _engine_auto)
register_backend("engine", "batch", _engine_batch)
register_backend("engine", "numba", _engine_numba)
register_backend("engine", "oocore", _engine_oocore)
register_backend("engine", "reference", _engine_reference)
register_backend("selfstab", "auto", _selfstab_auto)
register_backend("selfstab", "batch", _selfstab_batch)
register_backend("selfstab", "numba", _selfstab_numba)
register_backend("selfstab", "reference", _selfstab_reference)

#: The kinds shipped by the package itself.
BACKEND_KINDS = ("engine", "selfstab")
