"""The vectorized batch-step engine.

:class:`BatchColoringEngine` executes the same synchronous rounds as
:class:`~repro.runtime.engine.ColoringEngine`, but holds the whole coloring
as NumPy arrays and advances every vertex with a handful of array kernels
per round instead of ``n`` Python calls.  Output is bit-for-bit identical to
the reference engine: same per-round colorings, same ``rounds_used``, same
metrics, same exceptions — the differential suite in
``tests/test_fast_engine.py`` enforces this on every covered stage.

Batch protocol
--------------
A stage opts in by implementing ``step_batch``; the engine then also expects
the companion methods (all operate on a *state*: a tuple of parallel
``int64`` arrays, one per internal color coordinate, each of length ``n``):

``batch_encode_initial(initial)``
    Map an ``int64`` array of input colors to the initial state, with the
    same validation (and error messages) as scalar ``encode_initial``.
``step_batch(round_index, state, csr, visibility)``
    One synchronous round for all vertices; ``csr`` is the graph's
    :class:`~repro.runtime.csr.CSRAdjacency`.  Must replicate the scalar
    ``step`` exactly — including SET-LOCAL multiset collapse if the rule is
    multiplicity-sensitive (see ArbAG).
``batch_is_final(state)``
    Boolean array mirroring ``is_final``.
``batch_decode_final(state)``
    ``int64`` array of decoded colors, raising the scalar ``decode_final``
    error for the first non-final vertex.
``batch_to_scalar(state)`` (optional)
    The state as a list of the stage's scalar internal colors.  The default
    zips the coordinate arrays into tuples of Python ints, which is correct
    for every stage whose colors are plain int tuples; stages with richer
    colors (ArbAG's ``None`` finalization round) override it.

Stages without ``step_batch`` simply fall back to the scalar path — a
:class:`BatchColoringEngine` is always safe to use, and the
:mod:`repro.runtime.backends` registry is the front door that picks the
best backend (``resolve_backend("engine", "auto")``).
"""

import time

from repro.errors import ImproperColoringError, PaletteOverflowError
from repro.obs import core as obs
from repro.runtime.algorithm import NetworkInfo
from repro.runtime.csr import numpy_available, numpy_or_none
from repro.runtime.engine import ColoringEngine, RunResult, Visibility
from repro.runtime.metrics import MetricsLog, RoundMetrics

__all__ = [
    "BatchColoringEngine",
    "batch_supported",
    "scalar_replay_round",
    "BACKENDS",
]

BACKENDS = ("auto", "batch", "reference")


def batch_supported(stage):
    """True iff ``stage`` implements the batch protocol.

    A subclass can opt back out of an inherited kernel by setting
    ``step_batch = None``.
    """
    return getattr(stage, "step_batch", None) is not None


def scalar_replay_round(stage, round_index, colors, csr, visibility):
    """Re-run one round through the scalar ``step`` to surface its exact error.

    Batch kernels call this when they detect a state the scalar path would
    reject (an input color outside the field, no conflict-free point, ...):
    replaying the vertices in vertex order raises the same exception, from
    the same vertex, with the same message as the reference engine.  Returns
    silently if no scalar call raises — the caller then reports the
    batch/scalar inconsistency itself.

    ``colors`` is the round-start coloring as a plain list of scalar internal
    colors; adjacency comes from the ``csr`` view.
    """
    indptr = csr.indptr.tolist()
    indices = csr.indices.tolist()
    for v in range(csr.n):
        view = tuple(colors[u] for u in indices[indptr[v]:indptr[v + 1]])
        if visibility is Visibility.SET_LOCAL:
            view = frozenset(view)
        stage.step(round_index, colors[v], view)


class BatchColoringEngine(ColoringEngine):
    """Drop-in :class:`ColoringEngine` that vectorizes supporting stages.

    Construction, parameters, and results match the reference engine; only
    the inner loop differs.  A stage without ``step_batch`` (or a run with
    NumPy disabled) transparently uses the inherited scalar path.

    ``native=True`` routes rounds of covered stages through the Numba
    kernels of :mod:`repro.runtime.native` — bit-identical output, one fused
    pass per round instead of several array temporaries.  Stages without a
    kernel (and environments without Numba) silently keep the NumPy path:
    the documented ``numba -> batch -> reference`` fallback order.  The
    default comes from ``REPRO_NATIVE=1``, which is how CI runs the
    differential suites against the native kernels unmodified.
    """

    def __init__(
        self,
        graph,
        visibility=Visibility.LOCAL,
        check_proper_each_round=False,
        record_history=False,
        native=None,
    ):
        super().__init__(
            graph,
            visibility=visibility,
            check_proper_each_round=check_proper_each_round,
            record_history=record_history,
        )
        if native is None:
            from repro.runtime.native import native_default

            native = native_default()
        self.native = bool(native)

    def _native_step(self, stage):
        """The stage's native round kernel, or None for the NumPy path."""
        if not self.native:
            return None
        from repro.runtime import native

        return native.engine_kernel_for(stage)

    def run(
        self,
        stage,
        initial_coloring,
        in_palette_size=None,
        max_rounds=None,
        configure=True,
    ):
        """Execute ``stage``; see :meth:`ColoringEngine.run` for the contract."""
        if not batch_supported(stage) or not numpy_available():
            tel = obs.active()
            if tel.enabled:
                # Fallback-to-scalar is a first-class observability signal: a
                # batch engine quietly running scalar rounds is the #1 way to
                # lose an order of magnitude of throughput.
                reason = (
                    "no-step-batch" if not batch_supported(stage) else "no-numpy"
                )
                tel.counter("engine.fallback_scalar", stage=stage.name)
                tel.event("engine.fallback", stage=stage.name, reason=reason)
            if hasattr(initial_coloring, "tolist"):
                # An ndarray handed over by a batch-aware pipeline; the
                # scalar path wants plain Python ints.
                initial_coloring = initial_coloring.tolist()
            return super().run(
                stage,
                initial_coloring,
                in_palette_size=in_palette_size,
                max_rounds=max_rounds,
                configure=configure,
            )
        # Same engine.run span as the scalar tier (the fallback branch above
        # gets its span from ColoringEngine.run); the backend tag is stripped
        # by comparable_view so cross-tier telemetry parity holds.
        with obs.active().span(
            "engine.run", stage=getattr(stage, "name", "stage"), backend="batch"
        ):
            return self._run_batch(
                stage, initial_coloring, in_palette_size, max_rounds, configure
            )

    # -- vectorized path --------------------------------------------------------

    def _run_batch(self, stage, initial_coloring, in_palette_size, max_rounds, configure):
        np = numpy_or_none()
        graph = self.graph
        if len(initial_coloring) != graph.n:
            raise ValueError("initial coloring must assign a color to every vertex")
        # No list round-trip: an ndarray from an upstream batch stage is used
        # as-is, a plain sequence is converted once.
        initial = np.asarray(initial_coloring, dtype=np.int64)
        if in_palette_size is None:
            in_palette_size = (int(initial.max()) + 1) if graph.n else 1
        if configure:
            stage.configure(NetworkInfo(graph.n, graph.max_degree, in_palette_size))

        csr = graph.csr()
        state = stage.batch_encode_initial(initial)
        metrics = MetricsLog()
        history = [self._to_scalar(stage, state)] if self.record_history else None

        tel = obs.active()
        recording = tel.enabled
        run_start = time.perf_counter() if recording else 0.0
        round_rows = [] if recording else None

        native_step = self._native_step(stage)
        if native_step is not None and recording:
            tel.counter("engine.native_kernel", stage=stage.name)

        if self.check_proper_each_round and stage.maintains_proper:
            self._assert_proper_batch(stage, state, csr, -1)

        bound = stage.rounds_bound if max_rounds is None else max_rounds
        rounds_used = 0
        for round_index in range(bound):
            if bool(stage.batch_is_final(state).all()):
                break
            if recording:
                round_start = time.perf_counter()
            if native_step is not None:
                new_state = native_step(stage, round_index, state, csr, self.visibility)
            else:
                new_state = stage.step_batch(round_index, state, csr, self.visibility)
            changed = 0
            if graph.n:
                changed_mask = np.zeros(graph.n, dtype=bool)
                for old, new in zip(state, new_state):
                    changed_mask |= old != new
                changed = int(changed_mask.sum())
            messages = 2 * graph.m
            bits = messages * stage.message_bits(round_index)
            metrics.record(RoundMetrics(round_index, messages, bits, changed))
            state = new_state
            rounds_used += 1
            if recording:
                round_rows.append(
                    {
                        "round": round_index,
                        "messages": messages,
                        "bits": bits,
                        "changed": changed,
                        "finalized": int(stage.batch_is_final(state).sum()),
                        "conflicts": self._count_conflicts(np, csr, state),
                        "seconds": time.perf_counter() - round_start,
                    }
                )
            if self.record_history:
                history.append(self._to_scalar(stage, state))
            if self.check_proper_each_round and stage.maintains_proper:
                self._assert_proper_batch(stage, state, csr, round_index)
            if changed == 0 and (
                stage.uniform_step
                or (
                    stage.uniform_after is not None
                    and round_index >= stage.uniform_after
                )
            ):
                # Fixed point of a round-independent rule (or of a stage's
                # declared uniform tail): every later round would repeat this
                # no-op verbatim, so stop.  The reference engine applies the
                # identical early exit.
                break

        decoded = stage.batch_decode_final(state)
        int_colors = decoded.tolist()
        out = stage.out_palette_size
        bad = (decoded < 0) | (decoded >= out)
        if bool(bad.any()):
            v = int(np.argmax(bad))
            raise PaletteOverflowError(
                "vertex %d got color %r outside palette of size %d (stage %s)"
                % (v, int_colors[v], out, stage.name)
            )
        colors = self._to_scalar(stage, state)
        if recording:
            self._record_run(
                tel, stage, "batch", in_palette_size, rounds_used, metrics,
                round_rows, time.perf_counter() - run_start,
            )
        result = RunResult(colors, int_colors, rounds_used, metrics, history)
        # Batch-aware pipelines chain this array into the next stage without
        # round-tripping through the decoded Python list.
        result.int_colors_array = decoded
        return result

    @staticmethod
    def _count_conflicts(np, csr, state):
        """Edges whose endpoints hold identical internal colors (telemetry).

        Component-wise equality over the state columns — for every stage
        whose scalar colors are plain int tuples this matches the reference
        engine's full-color comparison exactly.
        """
        if csr.m == 0:
            return 0
        equal = np.ones(csr.m, dtype=bool)
        for component in state:
            equal &= component[csr.edge_u] == component[csr.edge_v]
        return int(equal.sum())

    @staticmethod
    def _to_scalar(stage, state):
        """The state as the scalar engine's internal color list."""
        if hasattr(stage, "batch_to_scalar"):
            return stage.batch_to_scalar(state)
        return list(zip(*(component.tolist() for component in state)))

    def _assert_proper_batch(self, stage, state, csr, round_index):
        np = numpy_or_none()
        if csr.m == 0:
            return
        equal = np.ones(csr.m, dtype=bool)
        for component in state:
            equal &= component[csr.edge_u] == component[csr.edge_v]
        if bool(equal.any()):
            i = int(np.argmax(equal))
            u, v = int(csr.edge_u[i]), int(csr.edge_v[i])
            colors = self._to_scalar(stage, state)
            raise ImproperColoringError(round_index, (u, v), colors[u])
