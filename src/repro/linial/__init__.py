"""Linial's coloring algorithm and relatives.

* :mod:`repro.linial.core` — the classical ``log* n + O(1)``-round reduction
  from any ``m``-coloring (e.g. the IDs) to ``O(Delta^2)`` colors via
  polynomial set systems over GF(q), as a locally-iterative stage, plus the
  single-step primitive with forbidden-color support (Excl-Linial, Section 4).
* :mod:`repro.linial.plan` — the (q, d) cascade planner: which field size and
  polynomial degree each iteration uses, derived only from ``(m, Delta)``.
* :mod:`repro.linial.cole_vishkin` — Cole–Vishkin 3-coloring of pseudoforests
  (paths/cycles), used by the edge-coloring algorithm of Section 5.
"""

from repro.linial.plan import LinialIteration, linial_plan
from repro.linial.core import LinialColoring, linial_next_color
from repro.linial.cole_vishkin import cole_vishkin_three_coloring

__all__ = [
    "LinialIteration",
    "linial_plan",
    "LinialColoring",
    "linial_next_color",
    "cole_vishkin_three_coloring",
]
