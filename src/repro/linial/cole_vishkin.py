"""Cole–Vishkin 3-coloring of pseudoforests.

The edge-coloring pipeline of Section 5 first computes Kuhn's 2-defective
``Delta^2``-edge-coloring, whose color classes consist of paths and cycles of
edges.  Each class is turned into a *pseudoforest* (every node picks at most
one "parent" among its class neighbors) and 3-colored by the classical
deterministic coin-tossing technique of Cole and Vishkin [15]:

1. **Bit reduction.**  Starting from unique labels out of a space of size
   ``L``, each node compares its label with its parent's, finds the lowest
   differing bit position ``i``, and re-labels itself ``2 * i + bit_i``.
   One round shrinks the label space from ``L`` to ``2 * ceil(log2 L)``;
   ``log* L + O(1)`` rounds reach 6 labels.  Roots compare against their own
   label with the lowest bit flipped.
2. **Shift-down + eliminate.**  Three times (for colors 5, 4, 3): every node
   adopts its parent's color (roots rotate), making all children of a node
   monochromatic; then nodes of the eliminated color pick a free color in
   ``{0, 1, 2}`` — their neighborhood now shows at most 2 distinct colors.

The routine is written against an abstract pseudoforest (``parents[i]`` is
the parent index or ``None``), so it serves both edge classes (Section 5) and
any path/cycle workload directly.
"""

__all__ = ["cole_vishkin_three_coloring"]


def _lowest_differing_bit(x, y):
    """Index of the lowest bit where x and y differ (x != y)."""
    diff = x ^ y
    return (diff & -diff).bit_length() - 1


def _bit_reduction_round(labels, parents):
    new_labels = []
    for v, label in enumerate(labels):
        parent = parents[v]
        other = labels[parent] if parent is not None else label ^ 1
        if other == label:
            # A parent pointer may be mutual (2-cycles); labels are unique so
            # this only happens for the synthetic root comparison, handled above.
            other = label ^ 1
        i = _lowest_differing_bit(label, other)
        bit = (label >> i) & 1
        new_labels.append(2 * i + bit)
    return new_labels


def _children_of(parents):
    children = [[] for _ in parents]
    for v, parent in enumerate(parents):
        if parent is not None:
            children[parent].append(v)
    return children


def _neighbors_in_pseudoforest(parents):
    children = _children_of(parents)
    neighbors = []
    for v in range(len(parents)):
        around = set(children[v])
        if parents[v] is not None:
            around.add(parents[v])
        around.discard(v)
        neighbors.append(around)
    return neighbors


def cole_vishkin_three_coloring(parents, initial_labels, label_space, return_history=False):
    """3-color a pseudoforest of maximum (undirected) degree at most 2.

    Parameters
    ----------
    parents:
        ``parents[i]`` is node ``i``'s parent index, or ``None`` for a root.
        The *undirected* pseudoforest (parent edges viewed both ways) must
        have degree at most 2 — i.e. it is a disjoint union of paths and
        cycles, which is exactly what the 2-defective edge classes give.
    initial_labels:
        Unique starting labels (IDs) drawn from ``range(label_space)``.
    label_space:
        Upper bound on initial labels; drives the ``log*`` round count.

    Returns
    -------
    (colors, rounds) or (colors, rounds, history):
        ``colors[i] in {0, 1, 2}`` proper on the pseudoforest edges, and the
        number of synchronous rounds consumed.  With ``return_history`` the
        per-round ``(labels, label_space)`` snapshots are returned too (one
        entry per communication round, post-update) — used by the Bit-Round
        execution to ship the actual label bits.
    """
    n = len(parents)
    if n == 0:
        return ([], 0, []) if return_history else ([], 0)
    labels = list(initial_labels)
    if len(labels) != n:
        raise ValueError("one label per node required")
    rounds = 0
    space = max(label_space, 2)
    history = []

    # Phase 1: iterated bit reduction down to at most 6 labels.
    while space > 6:
        labels = _bit_reduction_round(labels, parents)
        space = 2 * max(1, (space - 1).bit_length())
        rounds += 1
        history.append((list(labels), space))

    neighbors = _neighbors_in_pseudoforest(parents)
    colors = list(labels)

    # Phase 2: three shift-down + eliminate rounds remove colors 5, 4, 3.
    for eliminated in (5, 4, 3):
        shifted = []
        for v in range(n):
            parent = parents[v]
            if parent is not None and parent != v:
                shifted.append(colors[parent])
            else:
                shifted.append((colors[v] + 1) % 3)
        colors = shifted
        rounds += 1
        history.append((list(colors), 6))
        updated = list(colors)
        for v in range(n):
            if colors[v] == eliminated:
                taken = {colors[u] for u in neighbors[v]}
                updated[v] = min(c for c in (0, 1, 2) if c not in taken)
        colors = updated
        rounds += 1
        history.append((list(colors), 6))

    if return_history:
        return colors, rounds, history
    return colors, rounds
