"""Planning the Linial cascade.

One Linial iteration maps a proper ``m``-coloring to a proper
``q^2``-coloring, where colors become degree-``d`` polynomials over GF(q)
(``q^(d+1) >= m`` makes the encoding injective) and ``q >= d * Delta + 1``
guarantees every vertex a point where its polynomial differs from all of its
(at most Delta) neighbors' polynomials.

The planner picks, for each iteration, the degree ``d`` minimizing the output
palette ``q^2``, and stops at the fixpoint — an ``O(Delta^2)`` palette (for
``d = 1``, two distinct lines over GF(q) share at most one point, so
``q >= Delta + 1`` suffices, and the fixpoint palette is the square of a
prime close to ``max(Delta + 1, sqrt(m))``).  The cascade length is
``log* m + O(1)``: each step roughly replaces ``m`` by ``(Delta * log m)^2``.

The plan is a pure function of ``(m, Delta)`` — exactly the information in
every node's ROM — so all vertices compute identical plans without
communication.
"""

from functools import lru_cache

from repro.mathutil.primes import next_prime_at_least

__all__ = ["LinialIteration", "linial_plan", "integer_root_ceiling"]

_MAX_DEGREE = 64


def integer_root_ceiling(m, k):
    """Smallest integer ``r`` with ``r^k >= m`` (exact integer arithmetic)."""
    if m <= 1:
        return 1
    low, high = 1, m
    while low < high:
        mid = (low + high) // 2
        if mid ** k >= m:
            high = mid
        else:
            low = mid + 1
    return low


class LinialIteration:
    """Parameters of one Linial iteration: field size, degree, palettes."""

    __slots__ = ("q", "degree", "in_palette", "out_palette")

    def __init__(self, q, degree, in_palette):
        self.q = q
        self.degree = degree
        self.in_palette = in_palette
        self.out_palette = q * q

    def __repr__(self):
        return "LinialIteration(q=%d, d=%d, %d -> %d colors)" % (
            self.q,
            self.degree,
            self.in_palette,
            self.out_palette,
        )


def _best_iteration(m, delta):
    """Cheapest single iteration from an ``m``-coloring, or None if stuck."""
    best = None
    for d in range(1, _MAX_DEGREE + 1):
        q_floor = max(d * delta + 1, integer_root_ceiling(m, d + 1), 2)
        q = next_prime_at_least(q_floor)
        if best is None or q * q < best.out_palette:
            best = LinialIteration(q, d, m)
        if d * delta + 1 >= q_floor and d > 1:
            # Degrees beyond this point only raise the d*Delta floor.
            break
    if best is None or best.out_palette >= m:
        return None
    return best


@lru_cache(maxsize=None)
def _plan_cached(m, delta):
    """The memoized cascade as an immutable tuple (shared across callers)."""
    plan = []
    current = m
    while True:
        iteration = _best_iteration(current, delta)
        if iteration is None:
            break
        plan.append(iteration)
        current = iteration.out_palette
    return tuple(plan)


def linial_plan(m, delta):
    """Return the list of :class:`LinialIteration` reducing ``m`` to O(Delta^2).

    The cascade stops when no iteration shrinks the palette; the fixpoint is
    ``O(Delta^2)`` (a prime-squared a small constant above ``(Delta+1)^2``).

    The plan is a pure function of ``(m, delta)``, so the primality search is
    memoized: every ``configure()`` (one per stage per run, including every
    benchmark trial) after the first is a cache hit.  The returned list is a
    fresh copy; the shared :class:`LinialIteration` entries are immutable.

    >>> plan = linial_plan(10**6, 10)
    >>> plan[-1].out_palette <= 16 * 11 * 11
    True
    """
    return list(_plan_cached(m, delta))
