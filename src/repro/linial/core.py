"""Linial's algorithm as a locally-iterative stage, plus the Excl-Linial step.

The single-iteration primitive :func:`linial_next_color` is shared by:

* :class:`LinialColoring` — the static ``log* n + O(1)``-round stage used in
  Corollary 3.6's pipeline, and
* the self-stabilizing Mod-Linial of Section 4, which calls the primitive
  with a *forbidden set* (the Excl-Linial extension: with a field of size
  ``> d * Delta + |forbidden|`` there is still a point avoiding every
  neighbor's polynomial and every forbidden pair).
"""

from repro.linial.plan import linial_plan
from repro.mathutil.gf import (
    batch_eval_point,
    batch_poly_coeffs,
    eval_poly_mod,
    int_to_poly_coeffs,
)
from repro.runtime.algorithm import LocallyIterativeColoring

__all__ = ["linial_next_color", "linial_round_batch", "LinialColoring"]

# Evaluation points are processed one at a time (Horner column per point):
# almost every vertex succeeds within the first few points, so the scan
# exits early and the kernel's largest transient is a single length-n
# column — never an (n x block) value matrix, which at out-of-core shard
# sizes (multi-million-row states) dominated peak RSS.


def linial_round_batch(stage, round_index, colors, csr, visibility, q, degree):
    """One vectorized Linial iteration over all vertices (batch kernel body).

    Shared by :class:`LinialColoring` and the proper rounds of
    ``DefectiveLinialColoring``: ``stage`` is only used to replay the round
    through its scalar ``step`` when the batch kernel must surface the exact
    scalar error (out-of-field input, no conflict-free point).  Returns the
    new int64 color array.
    """
    from repro.runtime.csr import numpy_or_none

    np = numpy_or_none()
    limit = q ** (degree + 1)
    out_of_field = colors < 0
    if limit < (1 << 62):
        out_of_field |= colors >= limit
    if bool(out_of_field.any()):
        _raise_like_scalar(stage, round_index, colors, csr, visibility)
    coeffs = batch_poly_coeffs(colors, degree, q)
    n = csr.n
    new_colors = np.empty(n, dtype=np.int64)
    pending = np.ones(n, dtype=bool)
    distinct = csr.gather(colors) != csr.owner_values(colors)
    # Only distinct-colored neighbors can ever conflict; slice them once.
    distinct_rows = csr.rows[distinct]
    distinct_nbrs = csr.indices[distinct]
    for x in range(q):
        # Re-select per point: pending collapses after the first few
        # points, so later iterations gather almost nothing.
        column = batch_eval_point(coeffs, x, q)
        slot_sel = pending[distinct_rows]
        rows = distinct_rows[slot_sel]
        conflict = np.zeros(n, dtype=bool)
        if rows.size:
            agree = column[distinct_nbrs[slot_sel]] == column[rows]
            conflict[rows[agree]] = True
        free = pending & ~conflict
        new_colors[free] = x * q + column[free]
        pending &= conflict
        if not bool(pending.any()):
            break
    if bool(pending.any()):
        # Some vertex has no conflict-free point (under-sized field).
        _raise_like_scalar(stage, round_index, colors, csr, visibility)
    return new_colors


def _raise_like_scalar(stage, round_index, colors, csr, visibility):
    """Replay the round through the scalar step to raise its exact error."""
    from repro.runtime.fast_engine import scalar_replay_round

    scalar_replay_round(stage, round_index, colors.tolist(), csr, visibility)
    raise AssertionError(
        "batch Linial kernel rejected a round the scalar step accepts"
    )


def linial_next_color(color, neighbor_colors, q, degree, forbidden=frozenset()):
    """One Linial iteration for a single vertex.

    Encodes ``color`` as a degree-``degree`` polynomial ``g`` over GF(q) and
    returns the new color ``x * q + g(x)`` for the smallest evaluation point
    ``x`` where ``g`` differs from every neighbor's polynomial and the
    resulting pair is not forbidden.

    Existence: each of the ``<= Delta`` neighbor polynomials agrees with ``g``
    on at most ``degree`` points and each forbidden color rules out at most
    one point, so ``q >= degree * Delta + |forbidden| + 1`` always leaves a
    valid ``x``.  Raises :class:`ValueError` when the caller under-sized the
    field.
    """
    mine = int_to_poly_coeffs(color, degree, q)
    neighbor_polys = [
        int_to_poly_coeffs(c, degree, q) for c in set(neighbor_colors) if c != color
    ]
    for x in range(q):
        value = eval_poly_mod(mine, x, q)
        candidate = x * q + value
        if candidate in forbidden:
            continue
        if all(eval_poly_mod(other, x, q) != value for other in neighbor_polys):
            return candidate
    raise ValueError(
        "no conflict-free point in GF(%d) for degree %d with %d neighbors, "
        "%d forbidden colors" % (q, degree, len(neighbor_polys), len(forbidden))
    )


class LinialColoring(LocallyIterativeColoring):
    """``m`` colors (e.g. IDs) to ``O(Delta^2)`` colors in ``log* m + O(1)`` rounds.

    Round ``i`` applies the planned iteration ``(q_i, d_i)``; the plan is a
    pure function of ``(m, Delta)``, so every vertex derives it locally from
    ROM data.  Works in SET-LOCAL: the rule uses only the set of neighbor
    colors.
    """

    name = "linial"
    maintains_proper = True
    uniform_step = False

    def __init__(self):
        super().__init__()
        self.plan = None

    def configure(self, info):
        super().configure(info)
        self.plan = linial_plan(info.in_palette_size, info.max_degree)

    @property
    def out_palette_size(self):
        self._require_configured()
        if not self.plan:
            return self.info.in_palette_size
        return self.plan[-1].out_palette

    @property
    def rounds_bound(self):
        self._require_configured()
        return len(self.plan)

    def step(self, round_index, color, neighbor_colors):
        if round_index >= len(self.plan):
            return color
        iteration = self.plan[round_index]
        return linial_next_color(
            color, neighbor_colors, iteration.q, iteration.degree
        )

    # -- batch protocol (see repro.runtime.fast_engine) -------------------------
    #
    # State: the current color as a single int64 array.  Each round encodes
    # all n colors as one base-q coefficient matrix, evaluates every
    # candidate point with a Vandermonde-style modular matmul, and picks each
    # vertex's smallest conflict-free point with a masked scatter over the
    # CSR neighborhood.  The conflict test is pure existence over *distinct*
    # neighbor colors, so the kernel is identical in LOCAL and SET-LOCAL.

    def batch_encode_initial(self, initial):
        """Vectorized ``encode_initial`` (identity, like the scalar path)."""
        return (initial,)

    def step_batch(self, round_index, state, csr, visibility):
        """Vectorized ``step``: one planned Linial iteration for all vertices."""
        (colors,) = state
        if round_index >= len(self.plan):
            return state
        iteration = self.plan[round_index]
        new_colors = linial_round_batch(
            self, round_index, colors, csr, visibility, iteration.q, iteration.degree
        )
        return (new_colors,)

    def batch_is_final(self, state):
        """Vectorized ``is_final`` (never final, like the scalar path)."""
        from repro.runtime.csr import numpy_or_none

        np = numpy_or_none()
        return np.zeros(state[0].shape[0], dtype=bool)

    def batch_decode_final(self, state):
        """Vectorized ``decode_final`` (identity, like the scalar path)."""
        return state[0]

    def batch_to_scalar(self, state):
        """The state as the scalar engine's plain-int color list."""
        return state[0].tolist()
