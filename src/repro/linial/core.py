"""Linial's algorithm as a locally-iterative stage, plus the Excl-Linial step.

The single-iteration primitive :func:`linial_next_color` is shared by:

* :class:`LinialColoring` — the static ``log* n + O(1)``-round stage used in
  Corollary 3.6's pipeline, and
* the self-stabilizing Mod-Linial of Section 4, which calls the primitive
  with a *forbidden set* (the Excl-Linial extension: with a field of size
  ``> d * Delta + |forbidden|`` there is still a point avoiding every
  neighbor's polynomial and every forbidden pair).
"""

from repro.linial.plan import linial_plan
from repro.mathutil.gf import eval_poly_mod, int_to_poly_coeffs
from repro.runtime.algorithm import LocallyIterativeColoring

__all__ = ["linial_next_color", "LinialColoring"]


def linial_next_color(color, neighbor_colors, q, degree, forbidden=frozenset()):
    """One Linial iteration for a single vertex.

    Encodes ``color`` as a degree-``degree`` polynomial ``g`` over GF(q) and
    returns the new color ``x * q + g(x)`` for the smallest evaluation point
    ``x`` where ``g`` differs from every neighbor's polynomial and the
    resulting pair is not forbidden.

    Existence: each of the ``<= Delta`` neighbor polynomials agrees with ``g``
    on at most ``degree`` points and each forbidden color rules out at most
    one point, so ``q >= degree * Delta + |forbidden| + 1`` always leaves a
    valid ``x``.  Raises :class:`ValueError` when the caller under-sized the
    field.
    """
    mine = int_to_poly_coeffs(color, degree, q)
    neighbor_polys = [
        int_to_poly_coeffs(c, degree, q) for c in set(neighbor_colors) if c != color
    ]
    for x in range(q):
        value = eval_poly_mod(mine, x, q)
        candidate = x * q + value
        if candidate in forbidden:
            continue
        if all(eval_poly_mod(other, x, q) != value for other in neighbor_polys):
            return candidate
    raise ValueError(
        "no conflict-free point in GF(%d) for degree %d with %d neighbors, "
        "%d forbidden colors" % (q, degree, len(neighbor_polys), len(forbidden))
    )


class LinialColoring(LocallyIterativeColoring):
    """``m`` colors (e.g. IDs) to ``O(Delta^2)`` colors in ``log* m + O(1)`` rounds.

    Round ``i`` applies the planned iteration ``(q_i, d_i)``; the plan is a
    pure function of ``(m, Delta)``, so every vertex derives it locally from
    ROM data.  Works in SET-LOCAL: the rule uses only the set of neighbor
    colors.
    """

    name = "linial"
    maintains_proper = True
    uniform_step = False

    def __init__(self):
        super().__init__()
        self.plan = None

    def configure(self, info):
        super().configure(info)
        self.plan = linial_plan(info.in_palette_size, info.max_degree)

    @property
    def out_palette_size(self):
        self._require_configured()
        if not self.plan:
            return self.info.in_palette_size
        return self.plan[-1].out_palette

    @property
    def rounds_bound(self):
        self._require_configured()
        return len(self.plan)

    def step(self, round_index, color, neighbor_colors):
        if round_index >= len(self.plan):
            return color
        iteration = self.plan[round_index]
        return linial_next_color(
            color, neighbor_colors, iteration.q, iteration.degree
        )
