"""repro — Locally-iterative distributed (Delta+1)-coloring below the
Szegedy–Vishwanathan barrier.

A complete reproduction of Barenboim, Elkin, Goldenberg (PODC 2018):

* the Additive-Group (AG) coloring family — AG, 3AG, AG(N), the exact
  (Delta+1) hybrid, and the arbdefective ArbAG,
* the substrate they run on — a synchronous message-passing simulator with
  LOCAL and SET-LOCAL visibility, Linial's algorithm, defective colorings,
  Cole–Vishkin, and the classical color-reduction baselines,
* the applications — fully-dynamic self-stabilizing coloring / MIS / maximal
  matching / edge coloring, and bandwidth-efficient (2*Delta-1)-edge-coloring
  for the CONGEST and Bit-Round models.

**Public API**: the supported, versioned surface is :mod:`repro.api` —
re-exported here, so ``from repro import run`` and ``from repro.api import
run`` are the same name.  The research classes below (the AG family and
friends) plus the subpackages are the paper-facing layer; everything else
under ``repro.*`` is internal and may change between releases
(``docs/api.md`` has the full supported-vs-internal split).

Quickstart::

    from repro import delta_plus_one_coloring, graphgen

    graph = graphgen.random_regular(n=96, d=8, seed=1)
    result = delta_plus_one_coloring(graph)
    assert result.num_colors <= graph.max_degree + 1
    print(result.total_rounds, "rounds")
"""

from repro import analysis, apps, arboricity, bitround, graphgen, lowmem, obs, recipes, trace
from repro.api import (
    API_VERSION,
    JobOutcome,
    JobRunner,
    JobSpec,
    Result,
    SCHEMA_VERSION,
    SchemaVersionWarning,
    ServiceClient,
    ServiceError,
    algorithm_names,
    backend_names,
    register_algorithm,
    resolve_backend,
    run,
    run_many,
    run_sweep,
    summarize,
)
from repro.core import (
    AdditiveGroupColoring,
    AdditiveGroupZN,
    ArbAGColoring,
    ExactDeltaPlusOneHybrid,
    StandardColorReduction,
    ThreeDimensionalAG,
    delta_plus_one_coloring,
    delta_plus_one_exact_no_reduction,
    one_plus_eps_delta_coloring,
    sublinear_delta_plus_one_coloring,
)
from repro.baselines import KuhnWattenhoferReduction, greedy_coloring
from repro.linial import LinialColoring
from repro.mathutil import log_star
from repro.runtime import (
    ColoringEngine,
    ColoringPipeline,
    DynamicGraph,
    StaticGraph,
    Visibility,
)

__version__ = "1.0.0"

__all__ = [
    # -- the versioned public API (repro.api, v1) --
    "API_VERSION",
    "JobOutcome",
    "JobRunner",
    "JobSpec",
    "Result",
    "SCHEMA_VERSION",
    "SchemaVersionWarning",
    "ServiceClient",
    "ServiceError",
    "algorithm_names",
    "backend_names",
    "register_algorithm",
    "resolve_backend",
    "run",
    "run_many",
    "run_sweep",
    "summarize",
    # -- the paper-facing research layer --
    "AdditiveGroupColoring",
    "ThreeDimensionalAG",
    "AdditiveGroupZN",
    "ExactDeltaPlusOneHybrid",
    "ArbAGColoring",
    "StandardColorReduction",
    "KuhnWattenhoferReduction",
    "LinialColoring",
    "delta_plus_one_coloring",
    "delta_plus_one_exact_no_reduction",
    "one_plus_eps_delta_coloring",
    "sublinear_delta_plus_one_coloring",
    "greedy_coloring",
    "ColoringEngine",
    "ColoringPipeline",
    "StaticGraph",
    "DynamicGraph",
    "Visibility",
    "log_star",
    "analysis",
    "apps",
    "arboricity",
    "bitround",
    "graphgen",
    "lowmem",
    "recipes",
    "trace",
]
