"""(2*Delta-1)-edge-coloring with small messages (Section 5).

The pipeline: Kuhn's one-round 2-defective ``Delta^2``-edge-coloring ->
Cole–Vishkin 3-coloring of each color class (paths/cycles) -> the AG
algorithm on the line graph with *1-bit* rounds -> optionally the exact
high/low hybrid with *2-bit* rounds, landing on exactly ``2*Delta - 1``
colors.

Round and bit accounting follows Lemmas 5.1/5.2 and Theorem 5.3:
``O(Delta + log* n)`` rounds in CONGEST, ``O(Delta + log n)`` bits per edge
in the Bit-Round model (``O(Delta + log log n)`` when neighbors' IDs are
already known).
"""

from repro.edge.line_graph import build_line_graph
from repro.edge.congest import (
    EdgeColoringResult,
    edge_coloring_bit_round,
    edge_coloring_congest,
)

__all__ = [
    "build_line_graph",
    "EdgeColoringResult",
    "edge_coloring_congest",
    "edge_coloring_bit_round",
]
