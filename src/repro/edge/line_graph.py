"""Line-graph utilities.

Edge-coloring a graph ``G`` is vertex-coloring its line graph ``L(G)``:
every edge becomes a node, incident edges become adjacent.  In the LOCAL
model the reduction is free; in CONGEST it is not (which is why Section 5
works on edges directly), but the *simulation* is identical either way, so we
run our vertex stages on ``L(G)`` while accounting for bits as the real
two-endpoint protocol would.
"""

from repro.runtime.graph import StaticGraph

__all__ = ["build_line_graph"]


def build_line_graph(graph):
    """Return ``(line_graph, edge_index)`` for the given StaticGraph.

    ``line_graph`` has one vertex per edge of ``graph`` (in ``graph.edges``
    order); two are adjacent iff the edges share an endpoint.  ``edge_index``
    maps each original edge ``(u, v)`` (``u < v``) to its line-graph vertex.

    The line graph's maximum degree is at most ``2 * Delta - 2``.
    """
    edges = graph.edges
    edge_index = {edge: i for i, edge in enumerate(edges)}
    incident = [[] for _ in range(graph.n)]
    for idx, (u, v) in enumerate(edges):
        incident[u].append(idx)
        incident[v].append(idx)
    line_edges = set()
    for around in incident:
        for i in range(len(around)):
            for j in range(i + 1, len(around)):
                a, b = around[i], around[j]
                line_edges.add((a, b) if a < b else (b, a))
    line_graph = StaticGraph(len(edges), sorted(line_edges))
    return line_graph, edge_index
