"""Line-graph utilities.

Edge-coloring a graph ``G`` is vertex-coloring its line graph ``L(G)``:
every edge becomes a node, incident edges become adjacent.  In the LOCAL
model the reduction is free; in CONGEST it is not (which is why Section 5
works on edges directly), but the *simulation* is identical either way, so we
run our vertex stages on ``L(G)`` while accounting for bits as the real
two-endpoint protocol would.
"""

from repro.runtime.csr import numpy_or_none
from repro.runtime.graph import StaticGraph

__all__ = ["build_line_graph"]


def build_line_graph(graph, backend="auto"):
    """Return ``(line_graph, edge_index)`` for the given StaticGraph.

    ``line_graph`` has one vertex per edge of ``graph`` (in ``graph.edges``
    order); two are adjacent iff the edges share an endpoint.  ``edge_index``
    maps each original edge ``(u, v)`` (``u < v``) to its line-graph vertex.

    The line graph's maximum degree is at most ``2 * Delta - 2``.  The batch
    backend generates the incidence pairs with array ops (two simple edges
    share at most one endpoint, so every line edge is produced exactly once
    and the resulting :class:`StaticGraph` is identical).
    """
    edges = graph.edges
    edge_index = {edge: i for i, edge in enumerate(edges)}
    np = None if backend == "reference" else numpy_or_none()
    if np is not None and hasattr(graph, "csr") and edges:
        line_edges = _line_edges_batch(np, graph.csr())
    else:
        if np is None and backend == "batch":
            raise RuntimeError(
                "backend='batch' needs NumPy; install it with `pip install repro[fast]`"
            )
        incident = [[] for _ in range(graph.n)]
        for idx, (u, v) in enumerate(edges):
            incident[u].append(idx)
            incident[v].append(idx)
        line_edges = set()
        for around in incident:
            for i in range(len(around)):
                for j in range(i + 1, len(around)):
                    a, b = around[i], around[j]
                    line_edges.add((a, b) if a < b else (b, a))
        line_edges = sorted(line_edges)
    line_graph = StaticGraph(len(edges), line_edges)
    return line_graph, edge_index


def _line_edges_batch(np, csr):
    """All unordered pairs of edges sharing an endpoint, as an (L, 2) array."""
    m = csr.edge_u.shape[0]
    vert = np.concatenate([csr.edge_u, csr.edge_v])
    eidx = np.concatenate([np.arange(m, dtype=np.int64)] * 2)
    order = np.argsort(vert, kind="stable")
    grouped = eidx[order]
    vert = vert[order]
    slots = np.arange(vert.shape[0], dtype=np.int64)
    new_run = np.empty(vert.shape[0], dtype=bool)
    new_run[0] = True
    np.not_equal(vert[1:], vert[:-1], out=new_run[1:])
    starts = np.maximum.accumulate(np.where(new_run, slots, 0))
    boundary = np.nonzero(new_run)[0]
    sizes = np.diff(np.append(boundary, vert.shape[0]))
    run_len = np.repeat(sizes, sizes)
    offset = slots - starts
    rep = run_len - 1 - offset  # partners after this slot in its run
    total = int(rep.sum())
    if total == 0:
        return np.empty((0, 2), dtype=np.int64)
    first_pos = np.repeat(slots, rep)
    within = np.arange(total, dtype=np.int64) - np.repeat(
        np.cumsum(rep) - rep, rep
    )
    second_pos = first_pos + 1 + within
    a = grouped[first_pos]
    b = grouped[second_pos]
    pairs = np.empty((total, 2), dtype=np.int64)
    np.minimum(a, b, out=pairs[:, 0])
    np.maximum(a, b, out=pairs[:, 1])
    return pairs
