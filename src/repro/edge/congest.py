"""The Section 5 edge-coloring pipeline with CONGEST / Bit-Round accounting.

Stages (each a real distributed protocol; we simulate the color evolution and
account for the exact bits each endpoint sends per incident edge per round):

1. **ID exchange** — endpoints learn each other's IDs: ``ceil(log2 n)`` bits
   once (skippable if IDs are already known, Lemma 5.2's second case).
2. **Kuhn 2-defective coloring** — one round; each endpoint tells the other
   the local index it assigned the edge: ``ceil(log2 Delta)`` bits.
3. **Cole–Vishkin** — each 2-defective class is a union of paths/cycles of
   edges; CV 3-colors them in ``log* + O(1)`` rounds with geometrically
   shrinking labels (``log m``, then ``log log m``, ... bits).  Result: a
   proper ``3 * Delta^2``-edge-coloring.
4. **AG on the line graph** — ``O(Delta)`` rounds, *1 bit* per edge per round
   (the final/rotated flag), down to ``q = O(Delta)`` colors.
5. **Exact hybrid** (optional) — the AG(p)/AG(N) high/low hybrid on the line
   graph, ``O(Delta)`` rounds at *2 bits* per edge per round, down to exactly
   ``2 * Delta - 1`` colors.

Every intermediate coloring is proper on the line graph (checked on demand),
message payloads never exceed ``O(log n)`` bits (CONGEST), and the summed
bits per edge reproduce Lemma 5.2 / Theorem 5.3.
"""

import math
from collections import defaultdict

from repro.core.ag import AdditiveGroupColoring
from repro.core.hybrid import ExactDeltaPlusOneHybrid
from repro.defective.kuhn_edge import kuhn_defective_edge_coloring
from repro.edge.line_graph import build_line_graph
from repro.linial.cole_vishkin import cole_vishkin_three_coloring
from repro.runtime.results import Result

__all__ = ["EdgeColoringResult", "edge_coloring_congest", "edge_coloring_bit_round"]


class EdgeColoringResult:
    """Outcome of the edge-coloring pipeline.

    Attributes
    ----------
    edge_colors:
        ``{(u, v): color}`` with ``u < v`` and colors in
        ``range(palette_size)``.
    palette_size:
        ``2 * Delta - 1`` for the exact variant, ``O(Delta)`` otherwise.
    rounds_by_stage / bits_per_edge_by_stage:
        Per-stage round counts and bits sent over each edge (both directions
        summed), reproducing Lemma 5.2's ledger.
    max_message_bits:
        The largest single-round payload — the CONGEST compliance witness.
    """

    def __init__(
        self,
        edge_colors,
        palette_size,
        rounds_by_stage,
        bits_per_edge_by_stage,
        max_message_bits,
    ):
        self.edge_colors = edge_colors
        self.palette_size = palette_size
        self.rounds_by_stage = dict(rounds_by_stage)
        self.bits_per_edge_by_stage = dict(bits_per_edge_by_stage)
        self.max_message_bits = max_message_bits

    @property
    def total_rounds(self):
        """CONGEST rounds summed over all stages: O(Delta + log* n)."""
        return sum(self.rounds_by_stage.values())

    @property
    def rounds(self):
        """Alias of :attr:`total_rounds` (the shared result protocol)."""
        return self.total_rounds

    @property
    def colors(self):
        """Alias of :attr:`edge_colors` (the shared result protocol; edge
        problems expose their ``{edge: color}`` mapping here)."""
        return self.edge_colors

    @property
    def total_bits_per_edge(self):
        """Bits exchanged per edge over the run: O(Delta + log n)."""
        return sum(self.bits_per_edge_by_stage.values())

    @property
    def num_colors(self):
        """Distinct edge colors used (at most 2 * Delta - 1)."""
        return len(set(self.edge_colors.values()))

    def to_dict(self):
        """JSON-serializable summary; edge keys become "u-v" strings."""
        return {
            "edge_colors": {
                "%d-%d" % edge: color for edge, color in self.edge_colors.items()
            },
            "palette_size": self.palette_size,
            "rounds_by_stage": dict(self.rounds_by_stage),
            "bits_per_edge_by_stage": dict(self.bits_per_edge_by_stage),
            "total_rounds": self.total_rounds,
            "total_bits_per_edge": self.total_bits_per_edge,
            "max_message_bits": self.max_message_bits,
        }

    def __repr__(self):
        return "EdgeColoringResult(colors=%d, palette=%d, rounds=%d, bits/edge=%d)" % (
            self.num_colors,
            self.palette_size,
            self.total_rounds,
            self.total_bits_per_edge,
        )


Result.register(EdgeColoringResult)


def _bits(x):
    return max(1, math.ceil(math.log2(max(2, x))))


def _cole_vishkin_stage(graph, defective_colors, edge_index):
    """3-color every 2-defective class; return per-edge k in {0,1,2} + ledger.

    Each class induces paths/cycles of edges.  Every class edge points at the
    class neighbor at its *head* (the higher-ID endpoint it is oriented
    towards).  At any shared vertex, one class edge is incoming and the other
    outgoing (two incoming would share the in-index ``j``, two outgoing the
    out-index ``i``), so every class adjacency ``{e, f}`` is covered by
    exactly one pointer — a pseudoforest whose undirected edges are precisely
    the class adjacencies.  CV runs on all classes in parallel.
    """
    edges = graph.edges
    classes = defaultdict(list)
    for edge, pair in defective_colors.items():
        classes[pair].append(edge)

    # For each vertex and class, the class edges incident to it (<= 2).
    incident_by_class = defaultdict(lambda: defaultdict(list))
    for edge, pair in defective_colors.items():
        u, v = edge
        incident_by_class[pair][u].append(edge)
        incident_by_class[pair][v].append(edge)

    k_of = {}
    max_rounds = 0
    label_space = max(2, len(edges))
    for pair, class_edges in classes.items():
        index = {edge: i for i, edge in enumerate(sorted(class_edges))}
        parents = [None] * len(class_edges)
        for edge, i in index.items():
            u, v = edge
            head = v if graph.ids[v] > graph.ids[u] else u
            others = [e for e in incident_by_class[pair][head] if e != edge]
            if others:
                parents[i] = index[others[0]]
        labels = [edge_index[edge] for edge in sorted(class_edges)]
        colors, rounds = cole_vishkin_three_coloring(parents, labels, label_space)
        max_rounds = max(max_rounds, rounds)
        for edge, i in index.items():
            k_of[edge] = colors[i]

    # Bit ledger: one label exchange per CV round with shrinking label space.
    spaces = []
    space = label_space
    while space > 6:
        spaces.append(space)
        space = 2 * max(1, (space - 1).bit_length())
    cv_bits = sum(2 * _bits(s) for s in spaces) + 6 * 2 * 2
    cv_rounds = len(spaces) + 6
    return k_of, max(max_rounds, cv_rounds), cv_bits


def _run_line_stage(line_graph, stage, initial, palette, backend="reference"):
    from repro.runtime.backends import resolve_backend

    engine = resolve_backend("engine", backend)(
        line_graph, check_proper_each_round=True
    )
    return engine.run(stage, initial, in_palette_size=palette)


def edge_coloring_congest(graph, exact=True, neighbor_ids_known=False,
                          backend="auto"):
    """(2*Delta-1)- (or O(Delta)-) edge-coloring in O(Delta + log* n) rounds.

    Parameters
    ----------
    exact:
        If True (default) finish with the hybrid for exactly ``2*Delta - 1``
        colors (Theorem 5.3); otherwise stop after AG with ``O(Delta)``
        colors (Lemma 5.1).
    neighbor_ids_known:
        Skip the initial ID exchange (Lemma 5.2, second statement).
    backend:
        Execution tier for the Kuhn stage, the line-graph build, and the
        line-graph engine runs (``auto``/``batch``/``numba``/``reference``);
        every tier returns the identical result.

    Returns an :class:`EdgeColoringResult`.
    """
    delta = graph.max_degree
    edges = graph.edges
    if not edges:
        return EdgeColoringResult({}, max(1, 2 * delta - 1), {}, {}, 0)

    rounds = {}
    bits = {}

    id_bits = _bits(graph.n)
    if not neighbor_ids_known:
        rounds["id-exchange"] = 1
        bits["id-exchange"] = 2 * id_bits

    defective = kuhn_defective_edge_coloring(graph, backend=backend)
    rounds["kuhn-2-defective"] = 1
    bits["kuhn-2-defective"] = 2 * _bits(max(1, delta))

    line_graph, edge_index = build_line_graph(graph, backend=backend)
    k_of, cv_rounds, cv_bits = _cole_vishkin_stage(graph, defective, edge_index)
    rounds["cole-vishkin"] = cv_rounds
    bits["cole-vishkin"] = cv_bits

    # Proper 3 * Delta^2 coloring of the line graph.
    base = max(1, delta)
    initial = [0] * line_graph.n
    for edge, (i, j) in defective.items():
        initial[edge_index[edge]] = (i * base + j) * 3 + k_of[edge]
    palette = 3 * base * base

    ag = AdditiveGroupColoring()
    ag_run = _run_line_stage(line_graph, ag, initial, palette, backend=backend)
    rounds["ag"] = ag_run.rounds_used
    bits["ag"] = 2 * _bits(palette) + 2 * max(0, ag_run.rounds_used - 1)

    colors = ag_run.int_colors
    palette = ag.out_palette_size
    max_message = max(id_bits, _bits(3 * base * base))

    if exact:
        hybrid = ExactDeltaPlusOneHybrid()
        hybrid_run = _run_line_stage(
            line_graph, hybrid, colors, palette, backend=backend
        )
        rounds["exact-hybrid"] = hybrid_run.rounds_used
        bits["exact-hybrid"] = 2 * 2 * hybrid_run.rounds_used
        colors = hybrid_run.int_colors
        palette = hybrid.out_palette_size  # Delta_L + 1 = 2 * Delta - 1

    edge_colors = {edge: colors[edge_index[edge]] for edge in edges}
    return EdgeColoringResult(edge_colors, palette, rounds, bits, max_message)


def edge_coloring_bit_round(graph, exact=True, neighbor_ids_known=False,
                            backend="auto"):
    """The same protocol, costed for the Bit-Round model.

    In the Bit-Round model a vertex sends *one bit* per edge per round, so a
    stage that exchanges ``B`` bits over an edge costs ``B`` rounds.  Total:
    ``O(Delta + log n)`` rounds (``O(Delta + log log n)`` with known IDs),
    Theorem 5.3.

    Returns ``(result, bit_rounds)``: the coloring plus the Bit-Round round
    count (= the per-edge one-direction bit total).
    """
    result = edge_coloring_congest(
        graph, exact=exact, neighbor_ids_known=neighbor_ids_known,
        backend=backend,
    )
    # Per-edge bits are summed over both directions; each direction's bits
    # flow in parallel, so Bit-Round rounds = one-direction bits.
    bit_rounds = sum(
        -(-stage_bits // 2) for stage_bits in result.bits_per_edge_by_stage.values()
    )
    return result, bit_rounds
