"""Library-wide exception types."""

__all__ = [
    "ReproError",
    "ImproperColoringError",
    "PaletteOverflowError",
    "NotStabilizedError",
]


class ReproError(Exception):
    """Base class for all library errors."""


class ImproperColoringError(ReproError):
    """A coloring that must be proper has two equal-colored neighbors.

    Raised by the engine when a stage that claims ``maintains_proper`` emits a
    monochromatic edge — i.e. a violation of Lemma 3.2 / 7.1 / 7.4.
    """

    def __init__(self, round_index, edge, color):
        self.round_index = round_index
        self.edge = edge
        self.color = color
        super().__init__(
            "edge %r monochromatic with color %r after round %d"
            % (edge, color, round_index)
        )


class PaletteOverflowError(ReproError):
    """A stage produced a final color outside its declared output palette."""


class NotStabilizedError(ReproError):
    """A self-stabilizing run failed to reach a legal state within its bound."""
