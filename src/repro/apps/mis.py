"""Maximal independent set from a proper coloring.

The classical color-class sweep: in round ``i`` every vertex of color ``i``
with no MIS neighbor joins the MIS.  Distinct colors make simultaneous joins
of neighbors impossible, and after ``C`` rounds every vertex either joined
or has a joined neighbor.  Combined with Corollary 3.6's coloring this gives
a locally-iterative MIS in ``O(Delta + log* n)`` rounds — the static
counterpart of the self-stabilizing Theorem 4.5.
"""

from repro.analysis.invariants import is_maximal_independent_set
from repro.core.pipeline import delta_plus_one_coloring
from repro.runtime.algorithm import LocallyIterativeColoring

__all__ = [
    "MISResult",
    "ClassSweepMIS",
    "mis_from_coloring",
    "locally_iterative_mis",
]


class ClassSweepMIS(LocallyIterativeColoring):
    """The color-class sweep as an engine stage.

    Internal colors are ``(color, status)`` with status in
    ``{None, "MIS", "NOTMIS"}``; in round ``r`` the vertices of color ``r``
    decide.  Runs on the ordinary engine (and therefore in SET-LOCAL — the
    rule only inspects the set of neighbor states).  ``decode_final`` maps
    members to 1 and non-members to 0.
    """

    name = "class-sweep-mis"
    maintains_proper = False  # the "colors" carry statuses, not a coloring

    @property
    def out_palette_size(self):
        return 2

    @property
    def rounds_bound(self):
        return self.info.in_palette_size

    def encode_initial(self, color):
        return (color, None)

    def step(self, round_index, color, neighbor_colors):
        own, status = color
        if status is not None or own != round_index:
            return color
        has_mis_neighbor = any(s == "MIS" for _, s in neighbor_colors)
        return (own, "NOTMIS" if has_mis_neighbor else "MIS")

    def is_final(self, color):
        return color[1] is not None

    def decode_final(self, color):
        if color[1] is None:
            raise ValueError("vertex never decided: %r" % (color,))
        return 1 if color[1] == "MIS" else 0


class MISResult:
    """An MIS plus its round accounting."""

    def __init__(self, members, coloring_rounds, sweep_rounds):
        self.members = frozenset(members)
        self.coloring_rounds = coloring_rounds
        self.sweep_rounds = sweep_rounds

    @property
    def total_rounds(self):
        """Coloring rounds plus sweep rounds."""
        return self.coloring_rounds + self.sweep_rounds

    def to_dict(self):
        """JSON-serializable summary."""
        return {
            "members": sorted(self.members),
            "coloring_rounds": self.coloring_rounds,
            "sweep_rounds": self.sweep_rounds,
            "total_rounds": self.total_rounds,
        }

    def __repr__(self):
        return "MISResult(size=%d, rounds=%d)" % (len(self.members), self.total_rounds)


def mis_from_coloring(graph, colors, num_colors=None):
    """Sweep the color classes; return ``(members, rounds)``.

    ``colors`` must be a proper coloring.  The sweep is executed through the
    ordinary synchronous engine as a :class:`ClassSweepMIS` stage — one round
    per color class (empty classes cost a round too, matching what a vertex
    with only local knowledge runs).
    """
    from repro.runtime.engine import ColoringEngine

    if num_colors is None:
        num_colors = (max(colors) + 1) if len(colors) else 0
    if graph.n == 0:
        return set(), num_colors
    engine = ColoringEngine(graph)
    run = engine.run(
        ClassSweepMIS(), list(colors), in_palette_size=max(1, num_colors)
    )
    members = {v for v in graph.vertices() if run.int_colors[v] == 1}
    return members, num_colors


def locally_iterative_mis(graph, coloring_result=None):
    """MIS in ``O(Delta + log* n)`` rounds via Corollary 3.6 + class sweep."""
    if coloring_result is None:
        coloring_result = delta_plus_one_coloring(graph)
    members, sweep_rounds = mis_from_coloring(
        graph, coloring_result.colors, graph.max_degree + 1
    )
    result = MISResult(members, coloring_result.total_rounds, sweep_rounds)
    assert is_maximal_independent_set(graph, result.members)
    return result
