"""Maximal matching from a proper edge coloring.

The line-graph analogue of the MIS sweep: in round ``i`` every edge of color
``i`` whose endpoints are both unmatched joins the matching.  Edges of one
color class form a matching (no shared endpoints), so joins never conflict,
and after all classes every edge has a matched endpoint.  With the Section 5
edge coloring this is an ``O(Delta + log* n)``-round maximal matching that
needs only the small messages of the CONGEST model.
"""

from repro.analysis.invariants import is_maximal_matching
from repro.edge.congest import edge_coloring_congest

__all__ = [
    "MatchingResult",
    "matching_from_edge_coloring",
    "locally_iterative_maximal_matching",
]


class MatchingResult:
    """A maximal matching plus its round accounting."""

    def __init__(self, edges, coloring_rounds, sweep_rounds):
        self.edges = tuple(sorted(edges))
        self.coloring_rounds = coloring_rounds
        self.sweep_rounds = sweep_rounds

    @property
    def total_rounds(self):
        """Edge-coloring rounds plus sweep rounds."""
        return self.coloring_rounds + self.sweep_rounds

    def to_dict(self):
        """JSON-serializable summary."""
        return {
            "edges": [list(edge) for edge in self.edges],
            "coloring_rounds": self.coloring_rounds,
            "sweep_rounds": self.sweep_rounds,
            "total_rounds": self.total_rounds,
        }

    def __repr__(self):
        return "MatchingResult(size=%d, rounds=%d)" % (
            len(self.edges),
            self.total_rounds,
        )


def matching_from_edge_coloring(graph, edge_colors, num_colors=None):
    """Sweep the edge-color classes; return ``(matched_edges, rounds)``.

    ``edge_colors`` must be a *proper* edge coloring (each class a matching)
    — exactly what Section 5 provides.  Executed through the synchronous
    engine as a :class:`~repro.apps.mis.ClassSweepMIS` stage on the line
    graph: a matching is an independent set of edges, and the edge-color
    classes are the sweep order.
    """
    from repro.apps.mis import ClassSweepMIS
    from repro.edge.line_graph import build_line_graph
    from repro.runtime.engine import ColoringEngine

    if num_colors is None:
        num_colors = (max(edge_colors.values()) + 1) if edge_colors else 0
    if not edge_colors:
        return [], num_colors
    line_graph, edge_index = build_line_graph(graph)
    initial = [0] * line_graph.n
    for edge, color in edge_colors.items():
        initial[edge_index[edge]] = color
    engine = ColoringEngine(line_graph)
    run = engine.run(
        ClassSweepMIS(), initial, in_palette_size=max(1, num_colors)
    )
    matched = [
        edge for edge, slot in edge_index.items() if run.int_colors[slot] == 1
    ]
    return matched, num_colors


def locally_iterative_maximal_matching(graph, edge_result=None):
    """Maximal matching in ``O(Delta + log* n)`` CONGEST rounds."""
    if edge_result is None:
        edge_result = edge_coloring_congest(graph, exact=True)
    matched, sweep_rounds = matching_from_edge_coloring(
        graph, edge_result.edge_colors, edge_result.palette_size
    )
    result = MatchingResult(matched, edge_result.total_rounds, sweep_rounds)
    assert is_maximal_matching(graph, result.edges)
    return result
