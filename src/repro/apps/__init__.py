"""Classical symmetry-breaking applications built on the coloring core.

A proper C-coloring yields an MIS in C extra rounds (color classes join in
color order — exactly the reduction the self-stabilizing Section 4.2 runs
forever), and an edge coloring yields a maximal matching the same way on the
line graph.  With the paper's O(Delta + log* n) colorings these give
O(Delta + log* n) MIS and maximal matching, locally-iterative end to end.
"""

from repro.apps.mis import MISResult, locally_iterative_mis, mis_from_coloring
from repro.apps.matching import (
    MatchingResult,
    locally_iterative_maximal_matching,
    matching_from_edge_coloring,
)

__all__ = [
    "MISResult",
    "mis_from_coloring",
    "locally_iterative_mis",
    "MatchingResult",
    "matching_from_edge_coloring",
    "locally_iterative_maximal_matching",
]
