"""Centralized sequential greedy coloring — the correctness oracle.

Not a distributed algorithm: it exists so tests can compare distributed
results against the classical guarantee that greedy in any order uses at
most Delta + 1 colors.
"""

__all__ = ["greedy_coloring"]


def greedy_coloring(graph, order=None):
    """Greedy (Delta+1)-coloring in the given vertex order (default: 0..n-1).

    Returns a list of colors in ``range(Delta + 1)``.
    """
    n = graph.n
    if order is None:
        order = range(n)
    colors = [None] * n
    for v in order:
        taken = {colors[u] for u in graph.neighbors(v) if colors[u] is not None}
        color = 0
        while color in taken:
            color += 1
        colors[v] = color
    return colors
