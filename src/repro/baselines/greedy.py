"""Centralized sequential greedy coloring — the correctness oracle.

Not a distributed algorithm: it exists so tests can compare distributed
results against the classical guarantee that greedy in any order uses at
most Delta + 1 colors.

The oracle is itself on the fast path now: sequential first-fit in order
``pi`` equals *wave-parallel* first-fit over the acyclic orientation that
directs every edge from its earlier endpoint (in ``pi``) to its later one.
A vertex is *ready* once all its earlier neighbors are colored; ready
vertices of one wave are pairwise non-adjacent (an edge between them would
make one the earlier neighbor of the other), so a whole wave can pick its
smallest free color from one boolean occupancy matrix — bit-identical to
the sequential sweep, in ``depth(pi)`` array rounds instead of ``n`` Python
steps.  With Numba available the sweep instead runs as one fused raw loop
(:func:`repro.runtime.native.greedy_assign`).
"""

from repro.runtime.csr import numpy_or_none

__all__ = ["greedy_coloring"]


def greedy_coloring(graph, order=None, backend="auto"):
    """Greedy (Delta+1)-coloring in the given vertex order (default: 0..n-1).

    Returns a list of colors in ``range(Delta + 1)`` (entries stay ``None``
    for vertices a partial ``order`` never visits).  All backends produce
    bit-identical output: ``reference`` is the plain Python sweep, ``batch``
    the wave-parallel NumPy path, ``numba`` the fused native loop, ``auto``
    the best available.
    """
    if backend == "oocore" or type(graph).__name__ == "ShardedCSRGraph":
        # Out-of-core graphs never materialize a full CSR; the sharded
        # first-fit sweep is bit-identical to this function's natural order.
        from repro.oocore.engine import oocore_greedy
        from repro.oocore.store import ShardedCSRGraph

        if not isinstance(graph, ShardedCSRGraph):
            raise TypeError(
                "backend='oocore' greedy needs a ShardedCSRGraph; "
                "shard the graph with repro.oocore.writers first"
            )
        return oocore_greedy(graph, order=order)
    n = graph.n
    np = None if backend == "reference" else numpy_or_none()
    if np is None:
        if backend == "batch":
            raise RuntimeError(
                "backend='batch' needs NumPy; install it with `pip install repro[fast]`"
            )
        return _greedy_reference(graph, order)
    order_list = list(range(n)) if order is None else list(order)
    csr = graph.csr()
    if backend in ("auto", "numba"):
        from repro.runtime.native import greedy_kernel, native_default

        if backend == "numba" or native_default():
            kernel = greedy_kernel()
            if kernel is not None:
                order_arr = np.asarray(order_list, dtype=np.int64)
                colors = np.full(n, -1, dtype=np.int64)
                stamp = np.full(graph.max_degree + 2, -1, dtype=np.int64)
                kernel(csr.indptr, csr.indices, order_arr, stamp, colors)
                return [c if c >= 0 else None for c in colors.tolist()]
    if sorted(order_list) != list(range(n)):
        # Partial or repeating orders revisit vertices; the wave argument
        # needs a permutation.  These only appear in tiny oracle checks.
        return _greedy_reference(graph, order_list)
    return _greedy_waves(np, csr, order_list, graph.max_degree + 1)


def _greedy_reference(graph, order):
    if order is None:
        order = range(graph.n)
    colors = [None] * graph.n
    for v in order:
        taken = {colors[u] for u in graph.neighbors(v) if colors[u] is not None}
        color = 0
        while color in taken:
            color += 1
        colors[v] = color
    return colors


def _greedy_waves(np, csr, order_list, palette):
    n = csr.n
    pos = np.empty(n, dtype=np.int64)
    pos[np.asarray(order_list, dtype=np.int64)] = np.arange(n, dtype=np.int64)
    earlier = pos[csr.indices] < pos[csr.rows]  # slot: neighbor precedes owner
    # Split the adjacency into earlier/later halves (slot order is
    # preserved).  A ready vertex's earlier neighbors are all colored and
    # its later ones never are, so each half serves exactly one purpose per
    # edge: occupancy (earlier half) and readiness countdown (later half).
    e_counts = csr.count_per_vertex(earlier)
    e_indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(e_counts, out=e_indptr[1:])
    e_indices = csr.indices[earlier].astype(np.int32)
    l_indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(csr.degrees - e_counts, out=l_indptr[1:])
    l_indices = csr.indices[~earlier].astype(np.int32)

    def gather(indptr, indices, rows, repeats):
        """Concatenated rows of a CSR half, plus ``repeats`` spread per slot."""
        starts = indptr[rows]
        lens = indptr[rows + 1] - starts
        total = int(lens.sum())
        if total == 0:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty
        shift = np.cumsum(lens) - lens
        slot = np.repeat(starts - shift, lens) + np.arange(total, dtype=np.int64)
        spread = np.repeat(repeats, lens) if repeats is not None else None
        return indices[slot], spread

    indeg = e_counts.copy()
    colors = np.full(n, -1, dtype=np.int32)
    # Kahn-style frontier sweep: a vertex enters the wave exactly when its
    # last earlier neighbor gets colored, so each wave touches only its own
    # adjacency slots — total work O(m), not O(m * depth).
    wave = np.nonzero(indeg == 0)[0]
    indeg[wave] = -1  # colored vertices never re-enter
    remaining = n
    while wave.size:
        k = wave.size
        taken, key_base = gather(
            e_indptr, e_indices, wave, np.arange(k, dtype=np.int64) * palette
        )
        occupancy = np.bincount(key_base + colors[taken], minlength=k * palette)
        colors[wave] = (occupancy.reshape(k, palette) == 0).argmax(axis=1)
        remaining -= k
        if remaining == 0:
            break
        later, _ = gather(l_indptr, l_indices, wave, None)
        if later.size:
            indeg -= np.bincount(later, minlength=n)
        wave = np.nonzero(indeg == 0)[0]
        indeg[wave] = -1
    return colors.tolist()
