"""Baseline algorithms the paper compares against.

* :mod:`repro.baselines.kuhn_wattenhofer` — the O(Delta log Delta)
  locally-iterative color reduction of Szegedy–Vishwanathan / Kuhn–
  Wattenhofer: the best locally-iterative bound *before* this paper, i.e.
  the Szegedy–Vishwanathan barrier itself (Table 1 row 2).
* :mod:`repro.baselines.greedy` — the centralized sequential greedy
  (Delta+1)-coloring, used as a correctness oracle in tests.
* ``repro.core.reductions.StandardColorReduction`` — together with Linial it
  forms the O(Delta^2 + log* n) row of Table 1.
* :mod:`repro.baselines.selfstab_rank` — a classical O(n)-stabilization
  self-stabilizing coloring in the style surveyed by Guellati–Kheddouci
  [29], the point of comparison for Theorem 4.3.
"""

from repro.baselines.kuhn_wattenhofer import KuhnWattenhoferReduction
from repro.baselines.greedy import greedy_coloring
from repro.baselines.selfstab_rank import RankGreedySelfStabColoring
from repro.baselines.bek import BEKResult, bek_delta_plus_one
from repro.baselines.randomized import (
    RandomTrialSelfStabColoring,
    luby_mis,
    random_trial_coloring,
)

__all__ = [
    "KuhnWattenhoferReduction",
    "greedy_coloring",
    "RankGreedySelfStabColoring",
    "BEKResult",
    "bek_delta_plus_one",
    "luby_mis",
    "random_trial_coloring",
    "RandomTrialSelfStabColoring",
]
