"""Randomized baselines, and why the paper insists on determinism.

The classical randomized symmetry breakers converge in ``O(log n)`` rounds
with high probability:

* :func:`luby_mis` — Luby's MIS: every round, undecided vertices draw a
  random priority; local maxima join, neighbors of joiners leave.
* :func:`random_trial_coloring` — trial coloring: every round, uncolored
  vertices propose a uniformly random color from their free palette and keep
  it if no neighbor proposed the same.

Both are *incomparable* to the paper's deterministic ``f(Delta) + log* n``
bounds (faster for huge Delta, slower for small), and — the paper's §1.2.1
point — they are fragile in the self-stabilizing setting: random bits must
live somewhere, and if the generator state sits in fault-prone RAM, "this
prevents the possibility that adversarial faults will manipulate random bits
of the algorithm" fails.  :class:`RandomTrialSelfStabColoring` makes that
executable: its PRNG state is RAM, and a single fault that clones one
vertex's ``(color, rng_state)`` onto a neighbor creates two vertices that
flip *identical* coins forever — a permanent symmetric deadlock that no
amount of fault-free time repairs.  The paper's deterministic algorithms
break the same symmetry instantly through their ROM-resident IDs.
"""

import random

from repro.selfstab.engine import SelfStabAlgorithm

__all__ = ["luby_mis", "random_trial_coloring", "RandomTrialSelfStabColoring"]


def luby_mis(graph, seed, max_rounds=None):
    """Luby's randomized MIS; returns ``(members, rounds)``."""
    rng = random.Random(seed)
    undecided = set(graph.vertices())
    members = set()
    rounds = 0
    cap = max_rounds or (8 * max(1, graph.n).bit_length() + 40)
    while undecided and rounds < cap:
        priority = {v: rng.random() for v in undecided}
        joiners = {
            v
            for v in undecided
            if all(
                u not in undecided or priority[v] > priority[u]
                for u in graph.neighbors(v)
            )
        }
        members.update(joiners)
        removed = set(joiners)
        for v in joiners:
            removed.update(u for u in graph.neighbors(v) if u in undecided)
        undecided.difference_update(removed)
        rounds += 1
    if undecided:
        raise RuntimeError("Luby did not converge within %d rounds" % cap)
    return members, rounds


def random_trial_coloring(graph, seed, palette=None, max_rounds=None):
    """Randomized trial (Delta+1)-coloring; returns ``(colors, rounds)``."""
    rng = random.Random(seed)
    if palette is None:
        palette = graph.max_degree + 1
    colors = [None] * graph.n
    rounds = 0
    cap = max_rounds or (8 * max(1, graph.n).bit_length() + 40)
    while any(c is None for c in colors) and rounds < cap:
        proposals = {}
        for v in graph.vertices():
            if colors[v] is not None:
                continue
            taken = {colors[u] for u in graph.neighbors(v) if colors[u] is not None}
            free = [c for c in range(palette) if c not in taken]
            proposals[v] = rng.choice(free)
        for v, proposal in proposals.items():
            clash = any(
                proposals.get(u) == proposal or colors[u] == proposal
                for u in graph.neighbors(v)
            )
            if not clash:
                colors[v] = proposal
        rounds += 1
    if any(c is None for c in colors):
        raise RuntimeError("trial coloring did not converge within %d rounds" % cap)
    return colors, rounds


class RandomTrialSelfStabColoring(SelfStabAlgorithm):
    """Self-stabilizing trial coloring whose PRNG state lives in RAM.

    RAM: ``(color, rng_counter, rng_salt)``.  A vertex in conflict re-draws
    a free color pseudo-randomly from ``hash((salt, counter, color))`` and
    increments the counter — note the draw deliberately involves *no ROM
    identity*: all its entropy (the salt) is fault-prone RAM, exactly the
    design the paper warns about.  With distinct salts the algorithm
    converges quickly (coin flips are independent); but one fault that
    clones a vertex's RAM onto a neighbor makes the pair flip *identical*
    coins forever — a permanent symmetric deadlock no amount of fault-free
    time repairs.
    """

    name = "selfstab-random-trial"

    def __init__(self, n_bound, delta_bound):
        super().__init__(n_bound, delta_bound)
        self.palette = delta_bound + 1

    def fresh_ram(self, vertex):
        return (0, 0, vertex)  # color, rng counter, rng salt (RAM entropy)

    def visible(self, vertex, ram):
        return ram

    @staticmethod
    def _sanitize(ram):
        if (
            isinstance(ram, tuple)
            and len(ram) == 3
            and all(isinstance(field, int) for field in ram)
        ):
            return ram
        return (0, 0, 0)

    def transition(self, vertex, ram, neighbor_visibles):
        color, counter, salt = self._sanitize(ram)
        color %= self.palette
        neighbor_colors = {
            self._sanitize(nv)[0] % self.palette for nv in neighbor_visibles
        }
        if color not in neighbor_colors:
            return (color, counter, salt)
        # Conflicted: flip a RAM-seeded coin whether to act, then re-draw a
        # free color from RAM-resident randomness only.  (hash of an int
        # tuple is deterministic across processes.)
        rng = random.Random(hash((salt, counter, color)))
        if rng.random() < 0.5:
            return (color, counter + 1, salt)  # stand still this round
        free = [c for c in range(self.palette) if c not in neighbor_colors]
        draw = free[rng.randrange(len(free))]
        return (draw, counter + 1, salt)

    def is_legal(self, graph, rams):
        for v in graph.vertices():
            color = self._sanitize(rams.get(v))[0] % self.palette
            for u in graph.neighbors(v):
                if self._sanitize(rams[u])[0] % self.palette == color:
                    return False
        return True

    def final_colors(self, graph, rams):
        """Colors in ``[0, Delta]`` extracted from the RAM states."""
        return {
            v: self._sanitize(rams[v])[0] % self.palette for v in graph.vertices()
        }
